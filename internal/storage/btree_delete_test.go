package storage

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// checkInvariants walks the whole tree and fails on any structural
// violation: key order within and across nodes, child/key arity, occupancy
// (≥ btMinKeys for every non-root node), uniform leaf depth, and a leaf
// chain that visits exactly the tree's keys in order.
func checkInvariants(t *testing.T, bt *BTree) {
	t.Helper()
	leafDepth := -1
	var leaves []*btNode
	var walk func(n *btNode, depth int, lo, hi string)
	walk = func(n *btNode, depth int, lo, hi string) {
		if n != bt.root && len(n.keys) < btMinKeys {
			t.Fatalf("node underflow: %d keys < %d (keys %v)", len(n.keys), btMinKeys, n.keys)
		}
		if len(n.keys) > btreeOrder {
			t.Fatalf("node overflow: %d keys", len(n.keys))
		}
		if !sort.StringsAreSorted(n.keys) {
			t.Fatalf("unsorted node keys %v", n.keys)
		}
		for _, k := range n.keys {
			if k < lo || (hi != "" && k >= hi) {
				t.Fatalf("key %q outside separator bounds [%q, %q)", k, lo, hi)
			}
		}
		if n.leaf {
			if len(n.values) != len(n.keys) {
				t.Fatalf("leaf has %d values for %d keys", len(n.values), len(n.keys))
			}
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				t.Fatalf("ragged leaves: depth %d vs %d", depth, leafDepth)
			}
			leaves = append(leaves, n)
			return
		}
		if len(n.children) != len(n.keys)+1 {
			t.Fatalf("internal node has %d children for %d keys", len(n.children), len(n.keys))
		}
		for i, c := range n.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = n.keys[i-1]
			}
			if i < len(n.keys) {
				chi = n.keys[i]
			}
			walk(c, depth+1, clo, chi)
		}
	}
	walk(bt.root, 1, "", "")

	// The leaf chain must thread the in-order leaves exactly, and carry
	// exactly size keys.
	n := bt.root
	for !n.leaf {
		n = n.children[0]
	}
	total, i := 0, 0
	for ; n != nil; n = n.next {
		if i >= len(leaves) || leaves[i] != n {
			t.Fatal("leaf chain diverges from in-order leaves (stale next pointer after merge?)")
		}
		i++
		total += len(n.keys)
	}
	if i != len(leaves) {
		t.Fatalf("leaf chain visits %d of %d leaves", i, len(leaves))
	}
	if total != bt.size {
		t.Fatalf("leaves hold %d keys, size says %d", total, bt.size)
	}
}

// TestBTreeDeleteRootCollapse: draining a multi-level tree shrinks it back
// — depth falls as keys go, ending at a single empty leaf root — and the
// surviving prefix stays fully scannable at every step.
func TestBTreeDeleteRootCollapse(t *testing.T) {
	bt := NewBTree()
	const n = 4000
	for _, k := range rand.New(rand.NewSource(3)).Perm(n) {
		bt.Put(fmt.Sprintf("k%06d", k), k)
	}
	if bt.Depth() < 3 {
		t.Fatalf("setup: depth = %d, want ≥ 3", bt.Depth())
	}
	for k := n - 1; k >= 0; k-- {
		if !bt.Delete(fmt.Sprintf("k%06d", k)) {
			t.Fatalf("k%06d missing", k)
		}
		if k%997 == 0 {
			checkInvariants(t, bt)
		}
	}
	if bt.Len() != 0 || bt.Depth() != 1 {
		t.Fatalf("drained tree: len %d depth %d, want 0 and 1", bt.Len(), bt.Depth())
	}
	if _, _, ok := bt.Min(); ok {
		t.Fatal("Min on drained tree")
	}
	checkInvariants(t, bt)
	// The drained tree is still a working tree.
	bt.Put("x", 1)
	if v, ok := bt.Get("x"); !ok || v != 1 {
		t.Fatal("drained tree unusable")
	}
}

// TestBTreeDeleteMergePaths hits both borrow directions and sibling merges:
// deleting every other key starves alternating leaves, forcing borrows
// first, merges once both siblings sit at minimum.
func TestBTreeDeleteMergePaths(t *testing.T) {
	bt := NewBTree()
	const n = 2048
	for i := 0; i < n; i++ {
		bt.Put(fmt.Sprintf("k%06d", i), i)
	}
	depthBefore := bt.Depth()
	for i := 0; i < n; i += 2 {
		bt.Delete(fmt.Sprintf("k%06d", i))
	}
	checkInvariants(t, bt)
	for i := 1; i < n; i += 4 {
		bt.Delete(fmt.Sprintf("k%06d", i))
	}
	checkInvariants(t, bt)
	if bt.Len() != n/4 {
		t.Fatalf("len = %d, want %d", bt.Len(), n/4)
	}
	if bt.Depth() >= depthBefore && depthBefore > 2 {
		t.Fatalf("depth %d did not shrink from %d after deleting 3/4 of keys", bt.Depth(), depthBefore)
	}
	// Remaining keys are exactly i ≡ 3 (mod 4).
	want := 0
	bt.Scan("", "", func(k string, v any) bool {
		if v.(int)%4 != 3 {
			t.Fatalf("unexpected survivor %q", k)
		}
		want++
		return true
	})
	if want != n/4 {
		t.Fatalf("scan visited %d, want %d", want, n/4)
	}
}

// TestBTreeRangeScanAcrossDeletes: range scans spanning leaves that were
// split by inserts and then merged by deletes must stay exact — the leaf
// chain is the scan's spine and every merge splices it.
func TestBTreeRangeScanAcrossDeletes(t *testing.T) {
	bt := NewBTree()
	const n = 1000
	for _, k := range rand.New(rand.NewSource(11)).Perm(n) {
		bt.Put(fmt.Sprintf("k%06d", k), k)
	}
	r := rand.New(rand.NewSource(12))
	alive := map[int]bool{}
	for i := 0; i < n; i++ {
		alive[i] = true
	}
	for i := 0; i < 700; i++ {
		k := r.Intn(n)
		if alive[k] {
			delete(alive, k)
			if !bt.Delete(fmt.Sprintf("k%06d", k)) {
				t.Fatalf("k%06d missing", k)
			}
		}
	}
	checkInvariants(t, bt)
	for trial := 0; trial < 50; trial++ {
		lo := r.Intn(n)
		hi := lo + r.Intn(n-lo) + 1
		var got []string
		bt.Scan(fmt.Sprintf("k%06d", lo), fmt.Sprintf("k%06d", hi), func(k string, v any) bool {
			got = append(got, k)
			return true
		})
		var want []string
		for k := lo; k < hi; k++ {
			if alive[k] {
				want = append(want, fmt.Sprintf("k%06d", k))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("range [%d,%d): scanned %d keys, want %d", lo, hi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("range [%d,%d) position %d: %q != %q", lo, hi, i, got[i], want[i])
			}
		}
	}
}

// TestBTreeDeleteRandomizedOracle: long random insert/delete churn against
// a map oracle, with full structural invariant checks along the way.
func TestBTreeDeleteRandomizedOracle(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		bt := NewBTree()
		ref := map[string]int{}
		for step := 0; step < 6000; step++ {
			k := fmt.Sprintf("k%04d", r.Intn(900))
			if r.Intn(5) < 3 { // insert-biased so the tree grows, then churns
				bt.Put(k, step)
				ref[k] = step
			} else {
				_, inRef := ref[k]
				if bt.Delete(k) != inRef {
					t.Fatalf("seed %d step %d: delete(%q) disagrees with oracle", seed, step, k)
				}
				delete(ref, k)
			}
			if step%1499 == 0 {
				checkInvariants(t, bt)
			}
		}
		checkInvariants(t, bt)
		if bt.Len() != len(ref) {
			t.Fatalf("seed %d: len %d vs oracle %d", seed, bt.Len(), len(ref))
		}
		for k, v := range ref {
			if got, ok := bt.Get(k); !ok || got != v {
				t.Fatalf("seed %d: Get(%q) = %v,%v want %v", seed, k, got, ok, v)
			}
		}
	}
}
