// Package storage provides the physical data structures the data-model
// facet (§5) chooses among: an in-memory B+-tree (ordered access), a hash
// index (point access), and heap rows — the "containers and access paths"
// of §5.1. The Chestnut-style synthesizer (package chestnut) picks between
// them using a cost model.
package storage

import "sort"

const (
	btreeOrder = 32             // max keys per node
	btMinKeys  = btreeOrder / 2 // min keys per non-root node after rebalancing
)

// BTree is an in-memory B+-tree keyed by string with opaque values. Leaves
// are linked for range scans.
type BTree struct {
	root *btNode
	size int
}

type btNode struct {
	leaf     bool
	keys     []string
	children []*btNode // internal nodes
	values   []any     // leaves
	next     *btNode   // leaf chain
}

// NewBTree returns an empty tree.
func NewBTree() *BTree {
	return &BTree{root: &btNode{leaf: true}}
}

// Len returns the number of keys.
func (t *BTree) Len() int { return t.size }

// Get returns the value for key.
func (t *BTree) Get(key string) (any, bool) {
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, key)]
	}
	i := sort.SearchStrings(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		return n.values[i], true
	}
	return nil, false
}

// childIndex picks the subtree for key: keys[i] is the smallest key of
// children[i+1].
func childIndex(keys []string, key string) int {
	return sort.Search(len(keys), func(i int) bool { return key < keys[i] })
}

// Put inserts or updates key.
func (t *BTree) Put(key string, val any) {
	midKey, right := t.root.insert(key, val, t)
	if right != nil {
		t.root = &btNode{
			keys:     []string{midKey},
			children: []*btNode{t.root, right},
		}
	}
}

// insert returns a (separator, right-sibling) pair when the node split.
func (n *btNode) insert(key string, val any, t *BTree) (string, *btNode) {
	if n.leaf {
		i := sort.SearchStrings(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			n.values[i] = val
			return "", nil
		}
		n.keys = append(n.keys, "")
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.values = append(n.values, nil)
		copy(n.values[i+1:], n.values[i:])
		n.values[i] = val
		t.size++
		if len(n.keys) > btreeOrder {
			return n.splitLeaf()
		}
		return "", nil
	}
	ci := childIndex(n.keys, key)
	midKey, right := n.children[ci].insert(key, val, t)
	if right == nil {
		return "", nil
	}
	n.keys = append(n.keys, "")
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = midKey
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = right
	if len(n.keys) > btreeOrder {
		return n.splitInternal()
	}
	return "", nil
}

func (n *btNode) splitLeaf() (string, *btNode) {
	mid := len(n.keys) / 2
	right := &btNode{
		leaf:   true,
		keys:   append([]string{}, n.keys[mid:]...),
		values: append([]any{}, n.values[mid:]...),
		next:   n.next,
	}
	n.keys = n.keys[:mid]
	n.values = n.values[:mid]
	n.next = right
	return right.keys[0], right
}

func (n *btNode) splitInternal() (string, *btNode) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &btNode{
		keys:     append([]string{}, n.keys[mid+1:]...),
		children: append([]*btNode{}, n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return sep, right
}

// Delete removes key, returning whether it was present. Underflowing nodes
// are rebalanced on the way back up — borrow from a sibling that can spare
// a key, else merge with one (splicing the leaf chain) — and an internal
// root left with a single child drops a level, so occupancy stays ≥
// btMinKeys per non-root node and depth tracks size in both directions.
func (t *BTree) Delete(key string) bool {
	if !t.root.delete(key, t) {
		return false
	}
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0] // root collapse
	}
	return true
}

func (n *btNode) delete(key string, t *BTree) bool {
	if n.leaf {
		i := sort.SearchStrings(n.keys, key)
		if i >= len(n.keys) || n.keys[i] != key {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.values = append(n.values[:i], n.values[i+1:]...)
		t.size--
		return true
	}
	ci := childIndex(n.keys, key)
	if !n.children[ci].delete(key, t) {
		return false
	}
	n.rebalanceChild(ci)
	return true
}

// rebalanceChild restores the occupancy invariant for children[ci] after a
// deletion below it. Separators above a deleted key may go stale; that is
// harmless — they remain valid navigation bounds (the deleted key's former
// subtree still holds exactly the keys ≥ the separator).
func (n *btNode) rebalanceChild(ci int) {
	c := n.children[ci]
	if len(c.keys) >= btMinKeys {
		return
	}
	if ci > 0 && len(n.children[ci-1].keys) > btMinKeys {
		// Borrow from the left sibling: its last key moves over; internal
		// nodes rotate through the separator.
		l := n.children[ci-1]
		last := len(l.keys) - 1
		if c.leaf {
			c.keys = append([]string{l.keys[last]}, c.keys...)
			c.values = append([]any{l.values[last]}, c.values...)
			l.keys, l.values = l.keys[:last], l.values[:last]
			n.keys[ci-1] = c.keys[0]
		} else {
			c.keys = append([]string{n.keys[ci-1]}, c.keys...)
			c.children = append([]*btNode{l.children[last+1]}, c.children...)
			n.keys[ci-1] = l.keys[last]
			l.keys, l.children = l.keys[:last], l.children[:last+1]
		}
		return
	}
	if ci < len(n.children)-1 && len(n.children[ci+1].keys) > btMinKeys {
		// Borrow from the right sibling: its first key moves over.
		r := n.children[ci+1]
		if c.leaf {
			c.keys = append(c.keys, r.keys[0])
			c.values = append(c.values, r.values[0])
			r.keys = append(r.keys[:0], r.keys[1:]...)
			r.values = append(r.values[:0], r.values[1:]...)
			n.keys[ci] = r.keys[0]
		} else {
			c.keys = append(c.keys, n.keys[ci])
			c.children = append(c.children, r.children[0])
			n.keys[ci] = r.keys[0]
			r.keys = append(r.keys[:0], r.keys[1:]...)
			r.children = append(r.children[:0], r.children[1:]...)
		}
		return
	}
	// No sibling can spare a key: merge with one (left-preferring). Both
	// nodes are at or below minimum, so the result never overflows (leaf:
	// ≤ 2·min-1; internal: ≤ 2·min keys including the pulled-down
	// separator).
	li := ci
	if li > 0 {
		li--
	}
	if li == len(n.children)-1 {
		return // single child: only legal at the root, which collapses
	}
	l, r := n.children[li], n.children[li+1]
	if l.leaf {
		l.keys = append(l.keys, r.keys...)
		l.values = append(l.values, r.values...)
		l.next = r.next
	} else {
		l.keys = append(l.keys, n.keys[li])
		l.keys = append(l.keys, r.keys...)
		l.children = append(l.children, r.children...)
	}
	n.keys = append(n.keys[:li], n.keys[li+1:]...)
	n.children = append(n.children[:li+1], n.children[li+2:]...)
}

// Scan visits all (key, value) pairs with startKey <= key < endKey in key
// order; an empty endKey means "to the end". Return false from f to stop.
func (t *BTree) Scan(startKey, endKey string, f func(key string, val any) bool) {
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, startKey)]
	}
	for n != nil {
		for i, k := range n.keys {
			if k < startKey {
				continue
			}
			if endKey != "" && k >= endKey {
				return
			}
			if !f(k, n.values[i]) {
				return
			}
		}
		n = n.next
	}
}

// Min returns the smallest key, if any.
func (t *BTree) Min() (string, any, bool) {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	if len(n.keys) == 0 {
		return "", nil, false
	}
	return n.keys[0], n.values[0], true
}

// Depth returns the tree height (diagnostics / cost model input).
func (t *BTree) Depth() int {
	d := 1
	n := t.root
	for !n.leaf {
		d++
		n = n.children[0]
	}
	return d
}
