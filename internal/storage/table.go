package storage

import (
	"fmt"
	"strings"
)

// Row is a record: column name → value.
type Row map[string]any

// Layout names a physical organization for a table — the container choices
// of §5.1 that Chestnut enumerates.
type Layout int

// Layouts.
const (
	// LayoutHeap is an unordered row list: cheapest writes, O(n) lookups.
	LayoutHeap Layout = iota
	// LayoutHash adds a hash index on the key column: O(1) point lookups.
	LayoutHash
	// LayoutBTree stores rows in a B+-tree on the key: point + range.
	LayoutBTree
)

func (l Layout) String() string {
	switch l {
	case LayoutHeap:
		return "heap"
	case LayoutHash:
		return "hash"
	default:
		return "btree"
	}
}

// Table is a physical table with a primary layout and optional secondary
// hash indexes. Access-path statistics are recorded for the cost model.
type Table struct {
	Name   string
	KeyCol string
	layout Layout

	heap      []Row
	hash      map[string]Row
	tree      *BTree
	secondary map[string]map[string][]Row // col → value → rows

	// Stats counts operations by access path, for cost-model calibration
	// and the E3 experiment's "rows touched" reporting.
	Stats AccessStats
}

// AccessStats counts physical work.
type AccessStats struct {
	PointLookups uint64
	Scans        uint64
	RowsTouched  uint64
	Inserts      uint64
}

// NewTable creates a table with the given layout.
func NewTable(name, keyCol string, layout Layout) *Table {
	t := &Table{Name: name, KeyCol: keyCol, layout: layout, secondary: map[string]map[string][]Row{}}
	switch layout {
	case LayoutHash:
		t.hash = map[string]Row{}
	case LayoutBTree:
		t.tree = NewBTree()
	}
	return t
}

// Layout returns the table's physical layout.
func (t *Table) Layout() Layout { return t.layout }

func keyString(v any) string { return fmt.Sprint(v) }

// AddSecondaryIndex builds a hash index on a non-key column.
func (t *Table) AddSecondaryIndex(col string) {
	idx := map[string][]Row{}
	t.scanAll(func(r Row) bool {
		k := keyString(r[col])
		idx[k] = append(idx[k], r)
		return true
	})
	t.secondary[col] = idx
}

// Insert adds a row (upsert on primary key for hash/btree layouts).
func (t *Table) Insert(r Row) {
	t.Stats.Inserts++
	key := keyString(r[t.KeyCol])
	switch t.layout {
	case LayoutHeap:
		t.heap = append(t.heap, r)
	case LayoutHash:
		t.hash[key] = r
	case LayoutBTree:
		t.tree.Put(key, r)
	}
	for col, idx := range t.secondary {
		k := keyString(r[col])
		idx[k] = append(idx[k], r)
	}
}

// Len returns the row count.
func (t *Table) Len() int {
	switch t.layout {
	case LayoutHeap:
		return len(t.heap)
	case LayoutHash:
		return len(t.hash)
	default:
		return t.tree.Len()
	}
}

// Lookup finds rows where col == val, using the best access path available:
// primary structure for the key column, a secondary index when present, or
// a full scan otherwise.
func (t *Table) Lookup(col string, val any) []Row {
	k := keyString(val)
	if col == t.KeyCol {
		switch t.layout {
		case LayoutHash:
			t.Stats.PointLookups++
			t.Stats.RowsTouched++
			if r, ok := t.hash[k]; ok {
				return []Row{r}
			}
			return nil
		case LayoutBTree:
			t.Stats.PointLookups++
			t.Stats.RowsTouched += uint64(t.tree.Depth())
			if v, ok := t.tree.Get(k); ok {
				return []Row{v.(Row)}
			}
			return nil
		}
	}
	if idx, ok := t.secondary[col]; ok {
		t.Stats.PointLookups++
		rows := idx[k]
		t.Stats.RowsTouched += uint64(len(rows))
		return rows
	}
	// Fallback: full scan.
	var out []Row
	t.Stats.Scans++
	t.scanAll(func(r Row) bool {
		t.Stats.RowsTouched++
		if keyString(r[col]) == k {
			out = append(out, r)
		}
		return true
	})
	return out
}

// Range returns rows with lo <= key < hi (string order); only the B+-tree
// layout supports it natively, other layouts scan.
func (t *Table) Range(lo, hi string) []Row {
	var out []Row
	if t.layout == LayoutBTree {
		t.Stats.Scans++
		t.tree.Scan(lo, hi, func(k string, v any) bool {
			t.Stats.RowsTouched++
			out = append(out, v.(Row))
			return true
		})
		return out
	}
	t.Stats.Scans++
	t.scanAll(func(r Row) bool {
		t.Stats.RowsTouched++
		k := keyString(r[t.KeyCol])
		if k >= lo && (hi == "" || k < hi) {
			out = append(out, r)
		}
		return true
	})
	return out
}

func (t *Table) scanAll(f func(Row) bool) {
	switch t.layout {
	case LayoutHeap:
		for _, r := range t.heap {
			if !f(r) {
				return
			}
		}
	case LayoutHash:
		for _, r := range t.hash {
			if !f(r) {
				return
			}
		}
	case LayoutBTree:
		t.tree.Scan("", "", func(k string, v any) bool { return f(v.(Row)) })
	}
}

// ScanAll visits every row (a full table scan, counted in stats).
func (t *Table) ScanAll(f func(Row) bool) {
	t.Stats.Scans++
	t.scanAll(func(r Row) bool {
		t.Stats.RowsTouched++
		return f(r)
	})
}

// String summarizes the physical design.
func (t *Table) String() string {
	var secs []string
	for col := range t.secondary {
		secs = append(secs, col)
	}
	sec := ""
	if len(secs) > 0 {
		sec = " secondary(" + strings.Join(secs, ",") + ")"
	}
	return fmt.Sprintf("%s[%s on %s%s]", t.Name, t.layout, t.KeyCol, sec)
}
