package storage

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBTreeBasics(t *testing.T) {
	bt := NewBTree()
	bt.Put("b", 2)
	bt.Put("a", 1)
	bt.Put("c", 3)
	if bt.Len() != 3 {
		t.Fatalf("len = %d", bt.Len())
	}
	if v, ok := bt.Get("b"); !ok || v != 2 {
		t.Fatalf("Get(b) = %v %v", v, ok)
	}
	bt.Put("b", 20) // update
	if v, _ := bt.Get("b"); v != 20 {
		t.Fatal("update lost")
	}
	if bt.Len() != 3 {
		t.Fatal("update changed size")
	}
	if _, ok := bt.Get("zz"); ok {
		t.Fatal("phantom key")
	}
	if k, v, ok := bt.Min(); !ok || k != "a" || v != 1 {
		t.Fatalf("Min = %v %v %v", k, v, ok)
	}
}

func TestBTreeSplitsAndOrder(t *testing.T) {
	bt := NewBTree()
	r := rand.New(rand.NewSource(7))
	keys := r.Perm(5000)
	for _, k := range keys {
		bt.Put(fmt.Sprintf("k%06d", k), k)
	}
	if bt.Len() != 5000 {
		t.Fatalf("len = %d", bt.Len())
	}
	if bt.Depth() < 3 {
		t.Fatalf("depth = %d; 5000 keys at order 32 must split", bt.Depth())
	}
	var got []string
	bt.Scan("", "", func(k string, v any) bool {
		got = append(got, k)
		return true
	})
	if !sort.StringsAreSorted(got) {
		t.Fatal("scan out of order")
	}
	if len(got) != 5000 {
		t.Fatalf("scan visited %d keys", len(got))
	}
}

func TestBTreeRangeScan(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 100; i++ {
		bt.Put(fmt.Sprintf("k%02d", i), i)
	}
	var got []string
	bt.Scan("k10", "k20", func(k string, v any) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 10 || got[0] != "k10" || got[9] != "k19" {
		t.Fatalf("range scan = %v", got)
	}
	// Early stop.
	count := 0
	bt.Scan("", "", func(k string, v any) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestBTreeDelete(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 200; i++ {
		bt.Put(fmt.Sprintf("k%03d", i), i)
	}
	if !bt.Delete("k100") || bt.Delete("k100") {
		t.Fatal("delete semantics wrong")
	}
	if _, ok := bt.Get("k100"); ok {
		t.Fatal("deleted key still present")
	}
	if bt.Len() != 199 {
		t.Fatalf("len = %d", bt.Len())
	}
}

// Property: B+-tree matches a reference map under random ops.
func TestBTreeMatchesMapQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bt := NewBTree()
		ref := map[string]int{}
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("k%02d", r.Intn(60))
			switch r.Intn(3) {
			case 0, 1:
				bt.Put(k, i)
				ref[k] = i
			case 2:
				delete(ref, k)
				bt.Delete(k)
			}
		}
		if bt.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := bt.Get(k)
			if !ok || got != v {
				return false
			}
		}
		// Scan order and completeness.
		var scanned []string
		bt.Scan("", "", func(k string, v any) bool {
			scanned = append(scanned, k)
			return true
		})
		return sort.StringsAreSorted(scanned) && len(scanned) == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTableLayouts(t *testing.T) {
	for _, layout := range []Layout{LayoutHeap, LayoutHash, LayoutBTree} {
		tbl := NewTable("users", "id", layout)
		for i := 0; i < 50; i++ {
			tbl.Insert(Row{"id": fmt.Sprintf("u%02d", i), "age": i % 5})
		}
		if tbl.Len() != 50 {
			t.Fatalf("%v: len = %d", layout, tbl.Len())
		}
		rows := tbl.Lookup("id", "u07")
		if len(rows) != 1 || rows[0]["age"] != 2 {
			t.Fatalf("%v: lookup = %v", layout, rows)
		}
		if got := tbl.Lookup("id", "zz"); len(got) != 0 {
			t.Fatalf("%v: phantom row", layout)
		}
		// Non-key lookup without index: scan path.
		if got := tbl.Lookup("age", 3); len(got) != 10 {
			t.Fatalf("%v: age lookup = %d rows", layout, len(got))
		}
	}
}

func TestTableUpsertOnKeyedLayouts(t *testing.T) {
	for _, layout := range []Layout{LayoutHash, LayoutBTree} {
		tbl := NewTable("t", "id", layout)
		tbl.Insert(Row{"id": "a", "v": 1})
		tbl.Insert(Row{"id": "a", "v": 2})
		if tbl.Len() != 1 {
			t.Fatalf("%v: upsert created duplicate", layout)
		}
		if tbl.Lookup("id", "a")[0]["v"] != 2 {
			t.Fatalf("%v: upsert kept old row", layout)
		}
	}
}

func TestSecondaryIndexUsedAndMaintained(t *testing.T) {
	tbl := NewTable("users", "id", LayoutHash)
	for i := 0; i < 100; i++ {
		tbl.Insert(Row{"id": fmt.Sprintf("u%03d", i), "country": fmt.Sprintf("c%d", i%4)})
	}
	tbl.AddSecondaryIndex("country")
	before := tbl.Stats
	rows := tbl.Lookup("country", "c1")
	if len(rows) != 25 {
		t.Fatalf("indexed lookup = %d rows", len(rows))
	}
	if tbl.Stats.Scans != before.Scans {
		t.Fatal("secondary lookup fell back to a scan")
	}
	// Index maintained across later inserts.
	tbl.Insert(Row{"id": "u999", "country": "c1"})
	if len(tbl.Lookup("country", "c1")) != 26 {
		t.Fatal("secondary index went stale")
	}
}

func TestRangeQueries(t *testing.T) {
	bt := NewTable("t", "id", LayoutBTree)
	heap := NewTable("t", "id", LayoutHeap)
	for i := 0; i < 100; i++ {
		r := Row{"id": fmt.Sprintf("k%02d", i)}
		bt.Insert(r)
		heap.Insert(r)
	}
	a, b := bt.Range("k10", "k20"), heap.Range("k10", "k20")
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("range = %d / %d rows", len(a), len(b))
	}
	// BTree range touches ~10 rows; heap touches all 100.
	if bt.Stats.RowsTouched >= heap.Stats.RowsTouched {
		t.Fatalf("btree range (%d) should touch fewer rows than heap (%d)",
			bt.Stats.RowsTouched, heap.Stats.RowsTouched)
	}
}

func TestAccessStatsDistinguishPaths(t *testing.T) {
	hash := NewTable("t", "id", LayoutHash)
	heap := NewTable("t", "id", LayoutHeap)
	for i := 0; i < 1000; i++ {
		r := Row{"id": fmt.Sprintf("k%04d", i)}
		hash.Insert(r)
		heap.Insert(r)
	}
	hash.Lookup("id", "k0500")
	heap.Lookup("id", "k0500")
	if hash.Stats.RowsTouched != 1 {
		t.Fatalf("hash point lookup touched %d rows", hash.Stats.RowsTouched)
	}
	if heap.Stats.RowsTouched != 1000 {
		t.Fatalf("heap lookup touched %d rows, expected full scan", heap.Stats.RowsTouched)
	}
}
