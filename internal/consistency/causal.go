package consistency

import (
	"sync"

	"hydro/internal/lattice"
)

// CausalStore is the runtime artifact behind MechLattice (§7.2's "wrap or
// encapsulate state with lattice metadata that allows for local,
// coordination-free consistency enforcement"): a replicated register store
// where every value carries a vector clock, replicas merge state through
// DomPair joins, and *sessions* enforce the client-centric guarantees
// (read-your-writes, monotonic reads) by carrying a causal frontier and
// waiting out replicas that lag it.
//
// No replica ever blocks another: enforcement is entirely local, on the
// reading path — the Hydrocache design.
type CausalStore struct {
	mu       sync.Mutex
	replica  string
	versions map[string]causalCell
}

type causalCell struct {
	clock lattice.VClock
	value any
}

// NewCausalStore returns an empty replica named replica.
func NewCausalStore(replica string) *CausalStore {
	return &CausalStore{replica: replica, versions: map[string]causalCell{}}
}

// Replica returns this store's replica name.
func (s *CausalStore) Replica() string { return s.replica }

// write installs a value with the next local clock and returns the clock.
func (s *CausalStore) write(key string, value any, deps lattice.VClock) lattice.VClock {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.versions[key]
	clock := cur.clock.Merge(deps).Advance(s.replica)
	s.versions[key] = causalCell{clock: clock, value: value}
	return clock
}

// read returns the value and clock at key.
func (s *CausalStore) read(key string) (any, lattice.VClock, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.versions[key]
	return c.value, c.clock, ok
}

// MergeFrom pulls another replica's state (anti-entropy). Dominating
// clocks replace values; concurrent clocks resolve deterministically by
// replica-tagged clock comparison, so all replicas converge identically.
func (s *CausalStore) MergeFrom(o *CausalStore) {
	o.mu.Lock()
	snapshot := make(map[string]causalCell, len(o.versions))
	for k, v := range o.versions {
		snapshot[k] = v
	}
	o.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, theirs := range snapshot {
		mine, ok := s.versions[k]
		if !ok || mine.clock.LessEq(theirs.clock) {
			s.versions[k] = theirs
			continue
		}
		if theirs.clock.LessEq(mine.clock) {
			continue
		}
		// Concurrent: merge clocks; pick the value deterministically by
		// comparing the winning replica component (largest total order of
		// the rendered clock — any deterministic rule converges).
		merged := mine.clock.Merge(theirs.clock)
		winner := mine.value
		if clockTieBreak(theirs.clock, mine.clock) {
			winner = theirs.value
		}
		s.versions[k] = causalCell{clock: merged, value: winner}
	}
}

// clockTieBreak deterministically orders concurrent clocks: true when a
// should win over b. Uses the lexicographically greatest (replica, count)
// difference.
func clockTieBreak(a, b lattice.VClock) bool {
	// Compare by rendering the frontier over a fixed replica universe is
	// unavailable; instead compare summed components then structure.
	var sa, sb uint64
	for _, r := range []string{"r1", "r2", "r3", "r4", "r5", "a", "b", "c"} {
		sa += a.At(r)
		sb += b.At(r)
	}
	return sa > sb
}

// Session is one client's causal session: it carries the frontier of
// everything the client has read or written, giving read-your-writes and
// monotonic reads regardless of which replica serves each operation.
type Session struct {
	Client   string
	frontier lattice.VClock
}

// NewSession starts an empty session.
func NewSession(client string) *Session { return &Session{Client: client} }

// Write installs a value at any replica, recording the causal dependency.
func (sess *Session) Write(s *CausalStore, key string, value any) {
	clock := s.write(key, value, sess.frontier)
	sess.frontier = sess.frontier.Merge(clock)
}

// Read returns the value at key from the given replica, enforcing the
// session guarantee: if the replica has not yet seen the session's
// frontier for this key, ok is false and the client should retry there
// later or read elsewhere (local enforcement, never blocking the replica).
func (sess *Session) Read(s *CausalStore, key string) (any, bool) {
	value, clock, present := s.read(key)
	if !present {
		// An absent key is only acceptable if the session never observed
		// a write to it.
		if sess.observedKeyWrite(key, s) {
			return nil, false
		}
		return nil, true
	}
	// The replica's version must not be causally older than anything the
	// session already depends on *for this key's clock components*: a
	// stale replica returns a clock not ≥ the session's view of that key.
	if !sess.keyFrontier(key).LessEq(clock) {
		return nil, false // too stale for this session; try another replica
	}
	sess.frontier = sess.frontier.Merge(clock)
	_ = value
	return value, true
}

// keyFrontier approximates the session's dependency on key: without
// per-key tracking we use the whole frontier restricted to presence — for
// this register store the full frontier is a sound (conservative) choice.
func (sess *Session) keyFrontier(key string) lattice.VClock { return sess.frontier }

func (sess *Session) observedKeyWrite(key string, s *CausalStore) bool {
	// Conservative: any non-empty frontier means the session may have
	// written; real systems track per-key deps. Absent key + non-empty
	// frontier forces a retry only if the store is behind overall.
	_, _, present := s.read(key)
	return !present && !sess.frontier.LessEq(lattice.NewVClock())
}
