// Package consistency implements the consistency facet (§7): client-centric
// history checkers in the spirit of Crooks' client-centric framework [29]
// — guarantees are phrased over what clients could observe, not low-level
// replica histories — plus the mechanism selector that picks between "no
// enforcement", "lattice encapsulation" and "coordination" (§7.2).
//
// Checker conventions follow standard black-box testing practice: every
// write carries a unique value, so observing a value identifies the write.
package consistency

import (
	"fmt"
	"sort"
)

// OpKind is read or write.
type OpKind int

// Operation kinds.
const (
	Read OpKind = iota
	Write
)

// Op is one client-observed operation.
type Op struct {
	Client string
	Kind   OpKind
	Key    string
	// Value written, or value observed by a read (nil = key absent).
	Value any
	// Invoke/Return are real-time bounds (virtual network time works).
	Invoke, Return int64
	// Version, when positive on a write, fixes the installed version
	// explicitly (what the system durably ordered). When zero, version
	// order is inferred from write invoke order — adequate for systems
	// that apply writes in issue order.
	Version int
}

func (o Op) String() string {
	k := "r"
	if o.Kind == Write {
		k = "w"
	}
	return fmt.Sprintf("%s:%s(%s)=%v@[%d,%d]", o.Client, k, o.Key, o.Value, o.Invoke, o.Return)
}

// History is a set of operations.
type History []Op

// Violation reports one broken guarantee.
type Violation struct {
	Guarantee string
	Detail    string
	Ops       []Op
}

func (v Violation) String() string { return v.Guarantee + ": " + v.Detail }

// writeIndex assigns each written value its version number per key, using
// invoke order as the version order (unique-value convention).
func (h History) writeIndex() map[string]map[any]int {
	byKey := map[string][]Op{}
	for _, op := range h {
		if op.Kind == Write {
			byKey[op.Key] = append(byKey[op.Key], op)
		}
	}
	out := map[string]map[any]int{}
	for key, writes := range byKey {
		sort.Slice(writes, func(i, j int) bool { return writes[i].Invoke < writes[j].Invoke })
		vers := map[any]int{}
		for i, w := range writes {
			if w.Version > 0 {
				vers[w.Value] = w.Version
			} else {
				vers[w.Value] = i + 1 // version 0 = initial absent state
			}
		}
		out[key] = vers
	}
	return out
}

// version resolves the version a read observed (0 for absent/nil).
func version(idx map[string]map[any]int, key string, val any) (int, bool) {
	if val == nil {
		return 0, true
	}
	v, ok := idx[key][val]
	return v, ok
}

// clientOps returns each client's operations in invoke order.
func (h History) clientOps() map[string][]Op {
	out := map[string][]Op{}
	for _, op := range h {
		out[op.Client] = append(out[op.Client], op)
	}
	for c := range out {
		ops := out[c]
		sort.Slice(ops, func(i, j int) bool { return ops[i].Invoke < ops[j].Invoke })
		out[c] = ops
	}
	return out
}

// CheckReadYourWrites verifies the RYW session guarantee: a client's read
// must observe a version at least as new as its own latest preceding write.
func (h History) CheckReadYourWrites() []Violation {
	idx := h.writeIndex()
	var out []Violation
	for client, ops := range h.clientOps() {
		lastWrote := map[string]int{}
		for _, op := range ops {
			switch op.Kind {
			case Write:
				if v, ok := version(idx, op.Key, op.Value); ok && v > lastWrote[op.Key] {
					lastWrote[op.Key] = v
				}
			case Read:
				v, ok := version(idx, op.Key, op.Value)
				if !ok {
					out = append(out, Violation{Guarantee: "read-your-writes",
						Detail: fmt.Sprintf("%s read unwritten value %v", client, op.Value), Ops: []Op{op}})
					continue
				}
				if v < lastWrote[op.Key] {
					out = append(out, Violation{Guarantee: "read-your-writes",
						Detail: fmt.Sprintf("%s read version %d of %s after writing version %d", client, v, op.Key, lastWrote[op.Key]),
						Ops:    []Op{op}})
				}
			}
		}
	}
	return out
}

// CheckMonotonicReads verifies MR: per client per key, observed versions
// never go backwards.
func (h History) CheckMonotonicReads() []Violation {
	idx := h.writeIndex()
	var out []Violation
	for client, ops := range h.clientOps() {
		lastRead := map[string]int{}
		for _, op := range ops {
			if op.Kind != Read {
				continue
			}
			v, ok := version(idx, op.Key, op.Value)
			if !ok {
				continue // RYW checker reports phantom reads
			}
			if v < lastRead[op.Key] {
				out = append(out, Violation{Guarantee: "monotonic-reads",
					Detail: fmt.Sprintf("%s saw %s regress from version %d to %d", client, op.Key, lastRead[op.Key], v),
					Ops:    []Op{op}})
			}
			if v > lastRead[op.Key] {
				lastRead[op.Key] = v
			}
		}
	}
	return out
}

// CheckMonotonicWrites verifies MW: a client's writes are applied in issue
// order (their version order must match issue order).
func (h History) CheckMonotonicWrites() []Violation {
	idx := h.writeIndex()
	var out []Violation
	for client, ops := range h.clientOps() {
		last := map[string]int{}
		for _, op := range ops {
			if op.Kind != Write {
				continue
			}
			v, _ := version(idx, op.Key, op.Value)
			if v < last[op.Key] {
				out = append(out, Violation{Guarantee: "monotonic-writes",
					Detail: fmt.Sprintf("%s's writes to %s serialized out of order", client, op.Key),
					Ops:    []Op{op}})
			}
			last[op.Key] = v
		}
	}
	return out
}

// CheckWritesFollowReads verifies WFR: if a client reads version v of a key
// and then writes that key, the write's version must exceed v.
func (h History) CheckWritesFollowReads() []Violation {
	idx := h.writeIndex()
	var out []Violation
	for client, ops := range h.clientOps() {
		lastRead := map[string]int{}
		for _, op := range ops {
			switch op.Kind {
			case Read:
				if v, ok := version(idx, op.Key, op.Value); ok && v > lastRead[op.Key] {
					lastRead[op.Key] = v
				}
			case Write:
				v, _ := version(idx, op.Key, op.Value)
				if v <= lastRead[op.Key] && lastRead[op.Key] > 0 {
					out = append(out, Violation{Guarantee: "writes-follow-reads",
						Detail: fmt.Sprintf("%s wrote version %d of %s after reading version %d", client, v, op.Key, lastRead[op.Key]),
						Ops:    []Op{op}})
				}
			}
		}
	}
	return out
}

// CheckCausal bundles the four session guarantees, which together are
// equivalent to causal consistency for this observation model.
func (h History) CheckCausal() []Violation {
	var out []Violation
	out = append(out, h.CheckReadYourWrites()...)
	out = append(out, h.CheckMonotonicReads()...)
	out = append(out, h.CheckMonotonicWrites()...)
	out = append(out, h.CheckWritesFollowReads()...)
	return out
}

// CheckLinearizable decides single-key linearizability by exhaustive search
// (Wing & Gong): is there a total order of operations, consistent with
// real-time precedence, under which every read returns the latest write?
// Exponential in history size; intended for test-scale histories.
func (h History) CheckLinearizable(key string) bool {
	var ops []Op
	for _, op := range h {
		if op.Key == key {
			ops = append(ops, op)
		}
	}
	n := len(ops)
	if n == 0 {
		return true
	}
	if n > 20 {
		panic("consistency: linearizability checker is exponential; history too large")
	}
	used := make([]bool, n)
	var search func(done int, current any) bool
	search = func(done int, current any) bool {
		if done == n {
			return true
		}
		// Earliest return time among pending ops bounds what may go next:
		// an op can be scheduled only if no pending op returned before it
		// was invoked.
		minReturn := int64(1<<62 - 1)
		for i, op := range ops {
			if !used[i] && op.Return < minReturn {
				minReturn = op.Return
			}
		}
		for i, op := range ops {
			if used[i] || op.Invoke > minReturn {
				continue
			}
			if op.Kind == Read {
				same := (op.Value == nil && current == nil) || (op.Value != nil && op.Value == current)
				if !same {
					continue
				}
				used[i] = true
				if search(done+1, current) {
					return true
				}
				used[i] = false
			} else {
				used[i] = true
				if search(done+1, op.Value) {
					return true
				}
				used[i] = false
			}
		}
		return false
	}
	return search(0, nil)
}
