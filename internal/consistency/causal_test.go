package consistency

import (
	"fmt"
	"testing"
)

func TestCausalReadYourWritesAcrossReplicas(t *testing.T) {
	r1, r2 := NewCausalStore("r1"), NewCausalStore("r2")
	sess := NewSession("alice")
	sess.Write(r1, "x", "v1")

	// r2 has not seen the write: it must refuse (stale for this session),
	// never return old data.
	if _, ok := sess.Read(r2, "x"); ok {
		t.Fatal("stale replica served a session that depends on a newer write")
	}
	// Anti-entropy catches r2 up; now the read succeeds with the value.
	r2.MergeFrom(r1)
	v, ok := sess.Read(r2, "x")
	if !ok || v != "v1" {
		t.Fatalf("read after catch-up = %v %v", v, ok)
	}
}

func TestCausalMonotonicReads(t *testing.T) {
	r1, r2 := NewCausalStore("r1"), NewCausalStore("r2")
	writer := NewSession("writer")
	writer.Write(r1, "x", "v1")
	r2.MergeFrom(r1)
	writer.Write(r1, "x", "v2")

	reader := NewSession("reader")
	// First read from the fresh replica sees v2.
	v, ok := reader.Read(r1, "x")
	if !ok || v != "v2" {
		t.Fatalf("first read = %v %v", v, ok)
	}
	// A later read from the lagging replica must refuse rather than
	// regress to v1.
	if v, ok := reader.Read(r2, "x"); ok && v == "v1" {
		t.Fatal("monotonic reads violated: session regressed to v1")
	}
	r2.MergeFrom(r1)
	if v, ok := reader.Read(r2, "x"); !ok || v != "v2" {
		t.Fatalf("read after merge = %v %v", v, ok)
	}
}

func TestCausalConcurrentWritesConverge(t *testing.T) {
	r1, r2 := NewCausalStore("r1"), NewCausalStore("r2")
	a, b := NewSession("a"), NewSession("b")
	a.Write(r1, "k", "from-a")
	b.Write(r2, "k", "from-b")
	// Bidirectional anti-entropy in both orders on fresh pairs must agree.
	r1.MergeFrom(r2)
	r2.MergeFrom(r1)
	r1.MergeFrom(r2)
	v1, c1, _ := r1.read("k")
	v2, c2, _ := r2.read("k")
	if v1 != v2 {
		t.Fatalf("replicas diverged: %v vs %v", v1, v2)
	}
	if !c1.Equal(c2) {
		t.Fatal("clocks diverged")
	}
}

func TestCausalFreshSessionReadsAnything(t *testing.T) {
	r1 := NewCausalStore("r1")
	w := NewSession("w")
	w.Write(r1, "x", 1)
	fresh := NewSession("fresh")
	if v, ok := fresh.Read(r1, "x"); !ok || v != 1 {
		t.Fatalf("fresh session read = %v %v", v, ok)
	}
	// Absent key reads succeed for sessions with no dependencies.
	if _, ok := NewSession("f2").Read(r1, "nope"); !ok {
		t.Fatal("fresh session should read absent keys as absent")
	}
}

// The mechanism is validated by this package's own client-centric
// checkers: a history generated through CausalStore sessions passes
// CheckCausal even with lagging replicas in the mix.
func TestCausalStoreHistoryPassesCheckers(t *testing.T) {
	r1, r2 := NewCausalStore("r1"), NewCausalStore("r2")
	var h History
	now := int64(0)
	stamp := func() int64 { now++; return now }

	record := func(client string, kind OpKind, key string, val any) {
		inv := stamp()
		h = append(h, Op{Client: client, Kind: kind, Key: key, Value: val, Invoke: inv, Return: stamp()})
	}

	// One writer, one reader: with concurrent writers an LWW register may
	// legitimately arbitrate away a session's own write, which the
	// unique-version checker convention would misreport; single-writer
	// histories must satisfy RYW and MR exactly.
	sessions := map[string]*Session{
		"alice": NewSession("alice"),
		"bob":   NewSession("bob"),
	}
	stores := []*CausalStore{r1, r2}
	version := 0
	for i := 0; i < 40; i++ {
		client := []string{"alice", "bob"}[i%2]
		sess := sessions[client]
		store := stores[i%2]
		if i%3 == 0 && client == "alice" {
			version++
			val := fmt.Sprintf("v%d", version)
			sess.Write(store, "x", val)
			record(client, Write, "x", val)
		} else {
			// Retry across replicas until a read is admissible, merging
			// state to make progress (the client driver's job).
			for attempts := 0; ; attempts++ {
				v, ok := sess.Read(store, "x")
				if ok {
					record(client, Read, "x", v)
					break
				}
				store.MergeFrom(stores[(i+1)%2])
				if attempts > 3 {
					t.Fatal("session could not make progress")
				}
			}
		}
		// Occasional background anti-entropy.
		if i%5 == 0 {
			r2.MergeFrom(r1)
			r1.MergeFrom(r2)
		}
	}
	if v := h.CheckReadYourWrites(); len(v) != 0 {
		t.Fatalf("RYW violations: %v", v)
	}
	if v := h.CheckMonotonicReads(); len(v) != 0 {
		t.Fatalf("MR violations: %v", v)
	}
}
