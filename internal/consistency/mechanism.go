package consistency

import (
	"fmt"
	"sort"

	"hydro/internal/hlang"
)

// Mechanism is an enforcement strategy for a handler's consistency spec —
// the three broad approaches of §7.2.
type Mechanism int

// Mechanisms, cheapest first.
const (
	// MechNone: no enforcement needed — CALM analysis proved the handler
	// monotone, so any replica may act independently.
	MechNone Mechanism = iota
	// MechLattice: wrap state in lattice metadata (vector clocks / causal
	// cells) for local, coordination-free enforcement (Cloudburst/
	// Hydrocache style).
	MechLattice
	// MechCoordination: serialize through a coordination protocol (Paxos
	// log or 2PC) — the heavyweight fallback.
	MechCoordination
)

func (m Mechanism) String() string {
	switch m {
	case MechNone:
		return "none (CALM: monotone)"
	case MechLattice:
		return "lattice-encapsulation"
	default:
		return "coordination"
	}
}

// Choice records the selected mechanism and why.
type Choice struct {
	Handler   string
	Level     hlang.ConsistencyLevel
	Mono      hlang.Monotonicity
	Mechanism Mechanism
	Why       string
	// LocalOnly is set when a serializable handler's non-monotone state is
	// touched by no other handler, so local serialization suffices (§7's
	// vaccinate observation).
	LocalOnly bool
}

// Select picks an enforcement mechanism for every handler, given the
// program and its monotonicity analysis. This is the decision procedure
// Hydrolysis uses for the consistency facet.
func Select(p *hlang.Program, a *hlang.Analysis) map[string]Choice {
	// Build var → set of handlers touching it, for the locality analysis.
	varTouchers := map[string]map[string]bool{}
	touch := func(v, h string) {
		if varTouchers[v] == nil {
			varTouchers[v] = map[string]bool{}
		}
		varTouchers[v][h] = true
	}
	for name, info := range a.Handlers {
		for _, v := range info.WritesVars {
			touch(v, name)
		}
		for _, v := range info.ReadsVars {
			touch(v, name)
		}
	}

	out := map[string]Choice{}
	for _, h := range p.Handlers {
		info := a.Handlers[h.Name]
		level := h.Consistency
		if level == "" {
			level = hlang.Eventual
		}
		c := Choice{Handler: h.Name, Level: level, Mono: info.Mono}
		switch {
		case info.Mono == hlang.Monotone && level != hlang.Serializable:
			c.Mechanism = MechNone
			c.Why = "monotone handler: CALM guarantees coordination-free determinism"
		case info.Mono == hlang.Monotone && level == hlang.Serializable:
			// Monotone operations commute; serializability comes free.
			c.Mechanism = MechNone
			c.Why = "monotone handler: all operations reorderable, trivially serializable"
		case level == hlang.Eventual:
			c.Mechanism = MechLattice
			c.Why = "non-monotone but eventual: lattice metadata resolves divergence"
		case level == hlang.Causal:
			c.Mechanism = MechLattice
			c.Why = "causal: vector-clock encapsulation enforces session order locally"
		default: // serializable + non-monotone
			c.Mechanism = MechCoordination
			c.Why = "non-monotone serializable handler: coordination required"
			// §7's refinement: if every var this handler reads or writes
			// is private to it, serialization is local — no cross-handler
			// coordination.
			private := true
			for _, v := range append(info.WritesVars, info.ReadsVars...) {
				for other := range varTouchers[v] {
					if other != h.Name {
						private = false
					}
				}
			}
			if private && len(info.WritesVars) > 0 {
				c.LocalOnly = true
				c.Why = "serializable but state is handler-private: local serialization suffices (no distributed coordination)"
			}
		}
		out[h.Name] = c
	}
	return out
}

// Report renders the choices sorted by handler name.
func Report(choices map[string]Choice) string {
	names := make([]string, 0, len(choices))
	for n := range choices {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for _, n := range names {
		c := choices[n]
		local := ""
		if c.LocalOnly {
			local = " [local]"
		}
		s += fmt.Sprintf("%-14s %-12s %-13s -> %s%s\n      %s\n", n, c.Level, c.Mono, c.Mechanism, local, c.Why)
	}
	return s
}
