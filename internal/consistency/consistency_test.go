package consistency

import (
	"strings"
	"testing"

	"hydro/internal/hlang"
)

func TestReadYourWrites(t *testing.T) {
	ok := History{
		{Client: "c1", Kind: Write, Key: "x", Value: "v1", Invoke: 1, Return: 2},
		{Client: "c1", Kind: Read, Key: "x", Value: "v1", Invoke: 3, Return: 4},
	}
	if v := ok.CheckReadYourWrites(); len(v) != 0 {
		t.Fatalf("false positive: %v", v)
	}
	bad := History{
		{Client: "c1", Kind: Write, Key: "x", Value: "v1", Invoke: 1, Return: 2},
		{Client: "c1", Kind: Write, Key: "x", Value: "v2", Invoke: 3, Return: 4},
		{Client: "c1", Kind: Read, Key: "x", Value: "v1", Invoke: 5, Return: 6}, // stale own-write
	}
	if v := bad.CheckReadYourWrites(); len(v) == 0 {
		t.Fatal("missed RYW violation")
	}
}

func TestMonotonicReads(t *testing.T) {
	bad := History{
		{Client: "w", Kind: Write, Key: "x", Value: "v1", Invoke: 1, Return: 2},
		{Client: "w", Kind: Write, Key: "x", Value: "v2", Invoke: 3, Return: 4},
		{Client: "r", Kind: Read, Key: "x", Value: "v2", Invoke: 5, Return: 6},
		{Client: "r", Kind: Read, Key: "x", Value: "v1", Invoke: 7, Return: 8}, // regress
	}
	if v := bad.CheckMonotonicReads(); len(v) != 1 {
		t.Fatalf("violations = %v", v)
	}
	// Reading the same version twice is fine.
	ok := History{
		{Client: "w", Kind: Write, Key: "x", Value: "v1", Invoke: 1, Return: 2},
		{Client: "r", Kind: Read, Key: "x", Value: "v1", Invoke: 3, Return: 4},
		{Client: "r", Kind: Read, Key: "x", Value: "v1", Invoke: 5, Return: 6},
	}
	if v := ok.CheckMonotonicReads(); len(v) != 0 {
		t.Fatalf("false positive: %v", v)
	}
}

func TestMonotonicWritesAndWFR(t *testing.T) {
	// Explicit install versions: the system serialized c1's write *before*
	// the v2 it had already read — a WFR violation.
	bad := History{
		{Client: "w", Kind: Write, Key: "x", Value: "v1", Invoke: 1, Return: 2, Version: 1},
		{Client: "w", Kind: Write, Key: "x", Value: "v2", Invoke: 3, Return: 4, Version: 3},
		{Client: "c1", Kind: Read, Key: "x", Value: "v2", Invoke: 5, Return: 6},
		{Client: "c1", Kind: Write, Key: "x", Value: "mine", Invoke: 7, Return: 8, Version: 2},
	}
	if v := bad.CheckWritesFollowReads(); len(v) == 0 {
		t.Fatal("missed WFR violation")
	}
	okMW := History{
		{Client: "c1", Kind: Write, Key: "x", Value: "a", Invoke: 1, Return: 2},
		{Client: "c1", Kind: Write, Key: "x", Value: "b", Invoke: 3, Return: 4},
	}
	if v := okMW.CheckMonotonicWrites(); len(v) != 0 {
		t.Fatalf("false positive MW: %v", v)
	}
	// The system reordered c1's own writes: MW violation.
	badMW := History{
		{Client: "c1", Kind: Write, Key: "x", Value: "a", Invoke: 1, Return: 2, Version: 2},
		{Client: "c1", Kind: Write, Key: "x", Value: "b", Invoke: 3, Return: 4, Version: 1},
	}
	if v := badMW.CheckMonotonicWrites(); len(v) == 0 {
		t.Fatal("missed MW violation")
	}
}

func TestCausalBundle(t *testing.T) {
	h := History{
		{Client: "c1", Kind: Write, Key: "x", Value: "v1", Invoke: 1, Return: 2},
		{Client: "c1", Kind: Read, Key: "x", Value: "v1", Invoke: 3, Return: 4},
	}
	if v := h.CheckCausal(); len(v) != 0 {
		t.Fatalf("causal false positive: %v", v)
	}
}

func TestLinearizableAccepts(t *testing.T) {
	h := History{
		{Client: "a", Kind: Write, Key: "x", Value: "v1", Invoke: 1, Return: 5},
		{Client: "b", Kind: Read, Key: "x", Value: nil, Invoke: 2, Return: 3}, // overlaps: may order before write
		{Client: "b", Kind: Read, Key: "x", Value: "v1", Invoke: 6, Return: 7},
	}
	if !h.CheckLinearizable("x") {
		t.Fatal("valid history rejected")
	}
}

func TestLinearizableRejectsStaleRead(t *testing.T) {
	h := History{
		{Client: "a", Kind: Write, Key: "x", Value: "v1", Invoke: 1, Return: 2},
		{Client: "b", Kind: Read, Key: "x", Value: nil, Invoke: 3, Return: 4}, // strictly after write: stale
	}
	if h.CheckLinearizable("x") {
		t.Fatal("stale read accepted as linearizable")
	}
}

func TestLinearizableConcurrentWrites(t *testing.T) {
	h := History{
		{Client: "a", Kind: Write, Key: "x", Value: "va", Invoke: 1, Return: 10},
		{Client: "b", Kind: Write, Key: "x", Value: "vb", Invoke: 1, Return: 10},
		{Client: "c", Kind: Read, Key: "x", Value: "va", Invoke: 11, Return: 12},
		{Client: "c", Kind: Read, Key: "x", Value: "vb", Invoke: 13, Return: 14},
	}
	// va then vb is a valid order only if vb serialized after va but reads
	// come after both returns... read va then vb requires order va,vb with
	// reads interleaved — but both writes returned by t=10, so reads at
	// t>10 must see the final value; seeing va then vb is impossible if
	// both writes precede both reads... actually write order (vb, va)
	// would make reads va,va. Order (va,vb): reads after both see vb only.
	if h.CheckLinearizable("x") {
		t.Fatal("impossible interleaving accepted")
	}
}

func TestSerializableAcyclic(t *testing.T) {
	txns := []TxnRecord{
		{ID: "t1", Writes: map[string]int{"x": 1}},
		{ID: "t2", Reads: map[string]int{"x": 1}, Writes: map[string]int{"y": 1}},
		{ID: "t3", Reads: map[string]int{"y": 1}},
	}
	ok, cyc := CheckSerializable(txns)
	if !ok {
		t.Fatalf("acyclic DSG flagged: %v", cyc)
	}
}

func TestSerializableDetectsWriteSkew(t *testing.T) {
	// Classic write skew: t1 reads x@0 writes y@1; t2 reads y@0 writes x@1.
	txns := []TxnRecord{
		{ID: "t1", Reads: map[string]int{"x": 0}, Writes: map[string]int{"y": 1}},
		{ID: "t2", Reads: map[string]int{"y": 0}, Writes: map[string]int{"x": 1}},
	}
	ok, cyc := CheckSerializable(txns)
	if ok {
		t.Fatal("write skew accepted as serializable")
	}
	if len(cyc) < 2 {
		t.Fatalf("counterexample cycle too short: %v", cyc)
	}
}

func TestSerializableLostUpdate(t *testing.T) {
	// Both read x@0 and both write x: versions 1 and 2. t1 rw→ t2 (read 0,
	// next version 1 by t1... construct: t1 writes x@1, t2 writes x@2, both
	// read x@0: t2 rw→ t1 (t2 read 0, t1 installed 1) and ww t1→t2.
	txns := []TxnRecord{
		{ID: "t1", Reads: map[string]int{"x": 0}, Writes: map[string]int{"x": 1}},
		{ID: "t2", Reads: map[string]int{"x": 0}, Writes: map[string]int{"x": 2}},
	}
	if ok, _ := CheckSerializable(txns); ok {
		t.Fatal("lost update accepted")
	}
}

func TestMechanismSelection(t *testing.T) {
	p, err := hlang.Parse(hlang.CovidSource)
	if err != nil {
		t.Fatal(err)
	}
	a := hlang.Analyze(p)
	choices := Select(p, a)
	if choices["add_person"].Mechanism != MechNone {
		t.Fatalf("add_person: %+v", choices["add_person"])
	}
	if choices["diagnosed"].Mechanism != MechNone {
		t.Fatalf("diagnosed: %+v", choices["diagnosed"])
	}
	v := choices["vaccinate"]
	if v.Mechanism != MechCoordination {
		t.Fatalf("vaccinate: %+v", v)
	}
	// The §7 observation: vaccinate is the only toucher of vaccine_count,
	// so serialization is local.
	if !v.LocalOnly {
		t.Fatalf("vaccinate should be LocalOnly: %+v", v)
	}
	rep := Report(choices)
	if !strings.Contains(rep, "vaccinate") || !strings.Contains(rep, "local") {
		t.Fatalf("report:\n%s", rep)
	}
}

func TestMechanismSharedVarNeedsCoordination(t *testing.T) {
	src := `
var stock: int = 10
on sell(n: int) consistency(serializable) { stock := stock - 1 }
on restock(n: int) { stock := stock + 1 }
`
	p, err := hlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	choices := Select(p, hlang.Analyze(p))
	if choices["sell"].LocalOnly {
		t.Fatal("sell shares stock with restock; local serialization is unsound")
	}
	if choices["sell"].Mechanism != MechCoordination {
		t.Fatalf("sell: %+v", choices["sell"])
	}
}

func TestMechanismCausalUsesLattice(t *testing.T) {
	src := `
table log(id: int)
var last: int = 0
on append(id: int) consistency(causal) {
    merge log(id)
    last := id
}
`
	p, err := hlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	choices := Select(p, hlang.Analyze(p))
	if choices["append"].Mechanism != MechLattice {
		t.Fatalf("append: %+v", choices["append"])
	}
}
