package consistency

import (
	"fmt"
	"sort"

	"hydro/internal/hlang"
)

// This file implements the two remaining §7 analyses:
//
//   - Metaconsistency (§7.2): a public API call may cross several internal
//     handlers with different consistency specs. Composition paths are
//     found by dataflow analysis over `send` targets; a path where a
//     strong handler forwards work through a weaker one silently
//     downgrades the guarantee the caller observes, so it is flagged.
//   - Invariant confluence (§7.1): an application invariant needs no
//     coordination if it is preserved by lattice merge of any two
//     invariant-satisfying states. CheckInvariantConfluence bounded-checks
//     this with randomized state pairs.

// levelRank orders consistency levels for comparison.
func levelRank(l hlang.ConsistencyLevel) int {
	switch l {
	case hlang.Serializable:
		return 2
	case hlang.Causal:
		return 1
	default:
		return 0
	}
}

// MetaIssue is one flagged composition path.
type MetaIssue struct {
	// Path is the handler chain, public entry first.
	Path []string
	// DeclaredAt is the strongest level declared along the path.
	Declared hlang.ConsistencyLevel
	// WeakestLink is the weakest level on the path.
	WeakestLink hlang.ConsistencyLevel
	// Where is the handler providing only WeakestLink.
	Where string
}

func (m MetaIssue) String() string {
	return fmt.Sprintf("path %v declares %s but %s provides only %s",
		m.Path, m.Declared, m.Where, m.WeakestLink)
}

// CheckMeta finds composition paths whose observable consistency is weaker
// than the entry handler's declared level. Paths are discovered statically
// from send targets that are themselves handlers (the conservative static
// analysis §7.2 calls "easy to do"). Monotone handlers provide any level
// for free (their effects commute), so they never weaken a path.
func CheckMeta(p *hlang.Program, a *hlang.Analysis) []MetaIssue {
	level := func(name string) hlang.ConsistencyLevel {
		h := p.Handler(name)
		if h == nil || h.Consistency == "" {
			return hlang.Eventual
		}
		return h.Consistency
	}
	var issues []MetaIssue
	// DFS over send edges from each handler, carrying the entry's level.
	var entries []string
	for _, h := range p.Handlers {
		entries = append(entries, h.Name)
	}
	sort.Strings(entries)
	for _, entry := range entries {
		declared := level(entry)
		if levelRank(declared) == 0 {
			continue // nothing to uphold
		}
		seen := map[string]bool{entry: true}
		var dfs func(cur string, path []string)
		dfs = func(cur string, path []string) {
			info := a.Handlers[cur]
			if info == nil {
				return
			}
			for _, target := range info.SendsTo {
				tgt := p.Handler(target)
				if tgt == nil || seen[target] {
					continue // external mailbox or already visited
				}
				seen[target] = true
				nextPath := append(append([]string{}, path...), target)
				tInfo := a.Handlers[target]
				// Monotone handlers uphold anything; non-monotone ones
				// provide only their own declared level.
				if tInfo != nil && tInfo.Mono == hlang.NonMonotone &&
					levelRank(level(target)) < levelRank(declared) {
					issues = append(issues, MetaIssue{
						Path:        nextPath,
						Declared:    declared,
						WeakestLink: level(target),
						Where:       target,
					})
				}
				dfs(target, nextPath)
			}
		}
		dfs(entry, []string{entry})
	}
	return issues
}

// MergeFn joins two opaque states (must be a lattice join over the state
// representation).
type MergeFn func(a, b any) any

// Invariant is a predicate over one state.
type Invariant func(state any) bool

// ConfluenceResult reports a bounded invariant-confluence check.
type ConfluenceResult struct {
	Confluent bool
	Trials    int
	// Counterexample states (both satisfy the invariant; the merge does
	// not) when Confluent is false.
	Left, Right, Merged any
}

// CheckInvariantConfluence samples `trials` pairs of invariant-satisfying
// states from gen and checks that their merge still satisfies the
// invariant. Confluent invariants need no coordination (§7.1: "invariants
// are a powerful way to specify what guarantees are necessary"); a
// counterexample means Hydrolysis must coordinate the involved handlers.
// gen is called with a trial index and must return a state; states failing
// the invariant are skipped (rejection sampling).
func CheckInvariantConfluence(gen func(i int) any, inv Invariant, merge MergeFn, trials int) ConfluenceResult {
	res := ConfluenceResult{Confluent: true}
	var pool []any
	for i := 0; len(pool) < trials*2 && i < trials*20; i++ {
		s := gen(i)
		if inv(s) {
			pool = append(pool, s)
		}
	}
	for i := 0; i+1 < len(pool); i += 2 {
		l, r := pool[i], pool[i+1]
		m := merge(l, r)
		res.Trials++
		if !inv(m) {
			return ConfluenceResult{Confluent: false, Trials: res.Trials, Left: l, Right: r, Merged: m}
		}
	}
	return res
}
