package consistency

import (
	"fmt"
	"sort"
)

// TxnRecord is one committed transaction's read and write sets, with the
// versions read and installed (unique-version convention).
type TxnRecord struct {
	ID     string
	Reads  map[string]int // key → version observed
	Writes map[string]int // key → version installed
}

// CheckSerializable builds the direct serialization graph (DSG) over the
// committed transactions and reports whether it is acyclic — Adya-style
// serializability testing. Edge kinds:
//
//	ww: Ti installs version v of k, Tj installs the next version
//	wr: Ti installs version v of k, Tj reads v
//	rw: Ti reads version v of k, Tj installs version v+1 (anti-dependency)
func CheckSerializable(txns []TxnRecord) (bool, []string) {
	// installer[key][version] = txn index
	installer := map[string]map[int]int{}
	for i, t := range txns {
		for k, v := range t.Writes {
			if installer[k] == nil {
				installer[k] = map[int]int{}
			}
			installer[k][v] = i
		}
	}
	edges := map[int]map[int]bool{}
	addEdge := func(from, to int) {
		if from == to {
			return
		}
		if edges[from] == nil {
			edges[from] = map[int]bool{}
		}
		edges[from][to] = true
	}
	for i, t := range txns {
		for k, v := range t.Writes {
			// ww: previous installer → me; me → next installer.
			if prev, ok := installer[k][v-1]; ok {
				addEdge(prev, i)
			}
			if next, ok := installer[k][v+1]; ok {
				addEdge(i, next)
			}
		}
		for k, v := range t.Reads {
			// wr: the installer of what I read → me.
			if w, ok := installer[k][v]; ok && v > 0 {
				addEdge(w, i)
			}
			// rw: me → installer of the next version.
			if next, ok := installer[k][v+1]; ok {
				addEdge(i, next)
			}
		}
	}
	// Cycle detection via DFS with colors.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(txns))
	var cyc []string
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		// Deterministic order for reproducible counterexamples.
		var succs []int
		for v := range edges[u] {
			succs = append(succs, v)
		}
		sort.Ints(succs)
		for _, v := range succs {
			switch color[v] {
			case gray:
				cyc = append(cyc, fmt.Sprintf("%s→%s", txns[u].ID, txns[v].ID))
				return true
			case white:
				if dfs(v) {
					cyc = append(cyc, fmt.Sprintf("%s→%s", txns[u].ID, txns[v].ID))
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for i := range txns {
		if color[i] == white && dfs(i) {
			// Reverse for readability (edges were collected unwinding).
			for l, r := 0, len(cyc)-1; l < r; l, r = l+1, r-1 {
				cyc[l], cyc[r] = cyc[r], cyc[l]
			}
			return false, cyc
		}
	}
	return true, nil
}
