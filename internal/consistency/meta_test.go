package consistency

import (
	"math/rand"
	"strings"
	"testing"

	"hydro/internal/hlang"
	"hydro/internal/lattice"
)

func TestCheckMetaFlagsDowngrade(t *testing.T) {
	// A serializable entry forwards through a weaker non-monotone handler.
	src := `
var balance: int = 0
var audit_seq: int = 0
on transfer(amt: int) consistency(serializable) {
    balance := balance - amt
    send record(amt)
}
on record(amt: int) {
    audit_seq := audit_seq + 1
}
`
	p, err := hlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	issues := CheckMeta(p, hlang.Analyze(p))
	if len(issues) != 1 {
		t.Fatalf("issues = %v, want exactly one", issues)
	}
	if issues[0].Where != "record" || issues[0].Declared != hlang.Serializable {
		t.Fatalf("issue = %+v", issues[0])
	}
	if !strings.Contains(issues[0].String(), "record") {
		t.Fatalf("String() = %q", issues[0])
	}
}

func TestCheckMetaMonotoneLinksAreFree(t *testing.T) {
	// Forwarding through a *monotone* handler never weakens the path:
	// monotone effects commute with anything.
	src := `
table log(id: int)
var balance: int = 0
on transfer(amt: int) consistency(serializable) {
    balance := balance - amt
    send journal(amt)
}
on journal(id: int) {
    merge log(id)
}
`
	p, err := hlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if issues := CheckMeta(p, hlang.Analyze(p)); len(issues) != 0 {
		t.Fatalf("monotone link flagged: %v", issues)
	}
}

func TestCheckMetaTransitivePaths(t *testing.T) {
	// The downgrade is two hops away: entry → relay (monotone) → sink
	// (non-monotone, eventual).
	src := `
table buf(id: int)
var x: int = 0
var y: int = 0
on entry(id: int) consistency(serializable) {
    x := x + 1
    send relay(id)
}
on relay(id: int) {
    merge buf(id)
    send sink(id)
}
on sink(id: int) {
    y := y + 1
}
`
	p, err := hlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	issues := CheckMeta(p, hlang.Analyze(p))
	if len(issues) != 1 || issues[0].Where != "sink" {
		t.Fatalf("issues = %v", issues)
	}
	if len(issues[0].Path) != 3 {
		t.Fatalf("path = %v, want entry→relay→sink", issues[0].Path)
	}
}

func TestCheckMetaEventualEntriesIgnored(t *testing.T) {
	src := `
var x: int = 0
on a(id: int) { send b(id) }
on b(id: int) { x := x + 1 }
`
	p, err := hlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if issues := CheckMeta(p, hlang.Analyze(p)); len(issues) != 0 {
		t.Fatalf("eventual entry flagged: %v", issues)
	}
}

// --- invariant confluence (§7.1) ---

func TestGrowOnlySetInvariantConfluent(t *testing.T) {
	// "Referential integrity over grow-only data": members ⊆ people. Both
	// sets only grow, and merge is pointwise union, so the invariant is
	// confluent — no coordination needed.
	type state struct{ people, members lattice.Set[int] }
	r := rand.New(rand.NewSource(1))
	gen := func(i int) any {
		p := lattice.NewSet[int]()
		m := lattice.NewSet[int]()
		for j := 0; j < r.Intn(6); j++ {
			x := r.Intn(10)
			p = p.Add(x)
			if r.Intn(2) == 0 {
				m = m.Add(x)
			}
		}
		return state{people: p, members: m}
	}
	inv := func(s any) bool {
		st := s.(state)
		return st.members.LessEq(st.people)
	}
	merge := func(a, b any) any {
		x, y := a.(state), b.(state)
		return state{people: x.people.Merge(y.people), members: x.members.Merge(y.members)}
	}
	res := CheckInvariantConfluence(gen, inv, merge, 200)
	if !res.Confluent {
		t.Fatalf("grow-only referential integrity must be confluent: %+v", res)
	}
	if res.Trials < 100 {
		t.Fatalf("too few trials: %d", res.Trials)
	}
}

func TestNonNegativeBalanceNotConfluent(t *testing.T) {
	// The classic: balance = credits - debits (two grow-only counters),
	// invariant balance >= 0. Each state alone can satisfy it while the
	// merge (pointwise max of both counters) violates it — so the paper's
	// vaccinate-style decrement needs coordination.
	type state struct {
		credits, debits lattice.Map[string, lattice.Max[uint64]]
	}
	r := rand.New(rand.NewSource(2))
	gen := func(i int) any {
		c := lattice.NewMap[string, lattice.Max[uint64]]()
		d := lattice.NewMap[string, lattice.Max[uint64]]()
		c = c.Put("shared", lattice.NewMax(uint64(10)))
		// Replica-local debits against the shared credit.
		rep := []string{"r1", "r2"}[r.Intn(2)]
		d = d.Put(rep, lattice.NewMax(uint64(r.Intn(11))))
		return state{credits: c, debits: d}
	}
	balance := func(s state) int64 {
		var c, d uint64
		for _, k := range s.credits.Keys() {
			v, _ := s.credits.Get(k)
			c += v.V
		}
		for _, k := range s.debits.Keys() {
			v, _ := s.debits.Get(k)
			d += v.V
		}
		return int64(c) - int64(d)
	}
	inv := func(s any) bool { return balance(s.(state)) >= 0 }
	merge := func(a, b any) any {
		x, y := a.(state), b.(state)
		return state{credits: x.credits.Merge(y.credits), debits: x.debits.Merge(y.debits)}
	}
	res := CheckInvariantConfluence(gen, inv, merge, 300)
	if res.Confluent {
		t.Fatal("non-negative balance with distributed debits must not be confluent")
	}
	if res.Left == nil || res.Merged == nil {
		t.Fatal("counterexample not reported")
	}
}
