package transducer

import "hydro/internal/datalog"

// Tx is a handler's view of one tick: reads come from the immutable
// snapshot, writes are staged and applied at end of tick. This is what
// makes handler bodies order-independent within a tick.
type Tx struct {
	rt       *Runtime
	snapDB   *datalog.Database
	snapVars map[string]any
	eff      *effects
	msg      Message
	aborted  bool
	mark     effectMark
	// ensureQueries runs the registered query program against the
	// snapshot on first use (lazy per-tick fixpoint).
	ensureQueries func()
}

type tableRow struct {
	table string
	row   datalog.Tuple
}

type fieldMerge struct {
	table string
	key   []any
	col   int
	value any
}

// effects accumulates a tick's staged mutations across all handler
// invocations.
type effects struct {
	inserts     []tableRow
	fieldMerges []fieldMerge
	assigns     map[string]any
	assignKeys  []string // insertion order, for truncate
	deletes     []tableRow
	sends       []Message
}

// effectMark snapshots effect counts so an aborted handler's staged effects
// can be discarded.
type effectMark struct {
	inserts, merges, assigns, deletes, sends int
}

func (e *effects) mark() effectMark {
	return effectMark{len(e.inserts), len(e.fieldMerges), len(e.assignKeys), len(e.deletes), len(e.sends)}
}

func (e *effects) truncate(m effectMark) {
	e.inserts = e.inserts[:m.inserts]
	e.fieldMerges = e.fieldMerges[:m.merges]
	for _, k := range e.assignKeys[m.assigns:] {
		delete(e.assigns, k)
	}
	e.assignKeys = e.assignKeys[:m.assigns]
	e.deletes = e.deletes[:m.deletes]
	e.sends = e.sends[:m.sends]
}

// newTx is created per message by the runtime; handlers never construct one.
func (rt *Runtime) newTx(snapDB *datalog.Database, snapVars map[string]any, eff *effects, msg Message) *Tx {
	return &Tx{rt: rt, snapDB: snapDB, snapVars: snapVars, eff: eff, msg: msg, mark: eff.mark()}
}

// Msg returns the message being handled.
func (tx *Tx) Msg() Message { return tx.msg }

// Query returns the snapshot contents of a relation (table or compiled
// query) as of the start of the tick, fixpoint included.
func (tx *Tx) Query(name string) []datalog.Tuple {
	tx.lazyQueries()
	rel := tx.snapDB.Get(name)
	if rel == nil {
		return nil
	}
	return rel.Tuples()
}

// QueryWhere returns snapshot tuples whose columns at pos equal vals.
func (tx *Tx) QueryWhere(name string, pos []int, vals []any) []datalog.Tuple {
	tx.lazyQueries()
	rel := tx.snapDB.Get(name)
	if rel == nil {
		return nil
	}
	return rel.Lookup(pos, vals)
}

// ReadVar reads a scalar variable from the snapshot.
func (tx *Tx) ReadVar(name string) any { return tx.snapVars[name] }

// Derive evaluates one datalog rule against the tick snapshot (which
// contains the fixpoint of the registered queries, computed on demand).
// The rule is compiled on the fly; handlers that fire the same rule on
// every message should compile it once and use DerivePrepared.
func (tx *Tx) Derive(rule datalog.Rule) ([]datalog.Tuple, error) {
	tx.lazyQueries()
	return datalog.Derive(tx.snapDB, rule)
}

// DerivePrepared evaluates a rule compiled once with datalog.PrepareRule
// against the tick snapshot, binding the rule's declared variables from
// bound — the zero-recompilation path compiled rule-driven sends use.
func (tx *Tx) DerivePrepared(pr *datalog.PreparedRule, bound map[string]any) ([]datalog.Tuple, error) {
	tx.lazyQueries()
	return pr.Derive(tx.snapDB, bound)
}

func (tx *Tx) lazyQueries() {
	if tx.ensureQueries != nil {
		tx.ensureQueries()
	}
}

// MergeTuple stages a (monotonic) tuple insertion.
func (tx *Tx) MergeTuple(table string, row datalog.Tuple) {
	tx.eff.inserts = append(tx.eff.inserts, tableRow{table: table, row: row})
}

// MergeField stages a (monotonic) lattice merge into one column of the row
// identified by key.
func (tx *Tx) MergeField(table string, key []any, col int, value any) {
	tx.eff.fieldMerges = append(tx.eff.fieldMerges, fieldMerge{table: table, key: key, col: col, value: value})
}

// Assign stages a (non-monotonic) scalar overwrite.
func (tx *Tx) Assign(name string, value any) {
	if _, ok := tx.eff.assigns[name]; !ok {
		tx.eff.assignKeys = append(tx.eff.assignKeys, name)
	}
	tx.eff.assigns[name] = value
}

// Delete stages a (non-monotonic) tuple removal.
func (tx *Tx) Delete(table string, row datalog.Tuple) {
	tx.eff.deletes = append(tx.eff.deletes, tableRow{table: table, row: row})
}

// Send stages an asynchronous message. Mailbox may be "node/mailbox" to
// address another transducer through the cluster transport.
func (tx *Tx) Send(mailbox string, payload datalog.Tuple) {
	tx.eff.sends = append(tx.eff.sends, Message{Mailbox: mailbox, Payload: payload})
}

// Reply stages a response to the current message's implicit response
// mailbox (mailbox + "<response>"), correlated by message ID — the sugar
// described under "Handlers" in §3.1.
func (tx *Tx) Reply(values ...any) {
	payload := append(datalog.Tuple{tx.msg.ID}, values...)
	box := tx.msg.Mailbox + "<response>"
	if tx.msg.From != "" && tx.msg.From != "external" && tx.msg.From != tx.rt.Name {
		box = tx.msg.From + "/" + box
	}
	tx.eff.sends = append(tx.eff.sends, Message{Mailbox: box, Payload: payload})
}

// Abort discards every effect this handler invocation has staged — used by
// compiled `require(...)` invariants.
func (tx *Tx) Abort() { tx.aborted = true }
