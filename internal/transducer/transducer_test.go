package transducer

import (
	"math/rand"
	"testing"

	"hydro/internal/datalog"
)

func fixedDelay(r *rand.Rand) int { return 1 }

func newTestRuntime() *Runtime {
	rt := New("n1", 42)
	rt.SetDelay(fixedDelay)
	rt.RegisterTable(TableSchema{
		Name:  "people",
		Arity: 3, // pid, covid, vaccinated
		Key:   []int{0},
		LatticeMerge: map[int]func(a, b any) any{
			1: orMerge,
			2: orMerge,
		},
		Zero: func(key []any) datalog.Tuple { return datalog.Tuple{key[0], false, false} },
	})
	return rt
}

func orMerge(a, b any) any { return a.(bool) || b.(bool) }

func TestMutationsDeferredToEndOfTick(t *testing.T) {
	rt := newTestRuntime()
	var sawDuringTick int
	rt.RegisterHandler("add", func(tx *Tx, msg Message) {
		tx.MergeTuple("people", datalog.Tuple{msg.Payload[0], false, false})
		// Within the tick the snapshot must not show this tick's inserts.
		sawDuringTick = len(tx.Query("people"))
	})
	rt.Inject("add", datalog.Tuple{int64(1)})
	rt.Inject("add", datalog.Tuple{int64(2)})
	rt.Tick()
	if sawDuringTick != 0 {
		t.Fatalf("handler saw %d rows mid-tick, want 0 (snapshot semantics)", sawDuringTick)
	}
	if rt.Table("people").Len() != 2 {
		t.Fatalf("after tick: %d rows, want 2", rt.Table("people").Len())
	}
}

func TestFieldMergeMonotoneAndAutoCreate(t *testing.T) {
	rt := newTestRuntime()
	rt.RegisterHandler("diagnose", func(tx *Tx, msg Message) {
		tx.MergeField("people", []any{msg.Payload[0]}, 1, true)
	})
	// Auto-create: merging into a missing row materializes the zero row.
	rt.Inject("diagnose", datalog.Tuple{int64(7)})
	rt.Tick()
	if !rt.Table("people").Contains(datalog.Tuple{int64(7), true, false}) {
		t.Fatalf("rows = %v", rt.Table("people").Tuples())
	}
	// Merging false over true must not regress (or-lattice).
	rt.RegisterHandler("undiagnose", func(tx *Tx, msg Message) {
		tx.MergeField("people", []any{msg.Payload[0]}, 1, false)
	})
	rt.Inject("undiagnose", datalog.Tuple{int64(7)})
	rt.Tick()
	if !rt.Table("people").Contains(datalog.Tuple{int64(7), true, false}) {
		t.Fatal("or-lattice merge regressed")
	}
}

func TestSendsInvisibleUntilLaterTick(t *testing.T) {
	rt := newTestRuntime()
	var got []Message
	rt.RegisterHandler("ping", func(tx *Tx, msg Message) {
		tx.Send("pong", datalog.Tuple{"hello"})
	})
	rt.RegisterHandler("pong", func(tx *Tx, msg Message) {
		got = append(got, msg)
	})
	rt.Inject("ping", datalog.Tuple{int64(1)})
	rt.Tick() // handles ping, send staged
	if len(got) != 0 {
		t.Fatal("send visible in same tick")
	}
	rt.Tick() // delivery (delay=1) and handling
	if len(got) != 1 || got[0].Payload[0] != "hello" {
		t.Fatalf("pong got %v", got)
	}
}

func TestReplyCorrelation(t *testing.T) {
	rt := newTestRuntime()
	rt.RegisterHandler("ask", func(tx *Tx, msg Message) {
		tx.Reply("answer")
	})
	id := rt.Inject("ask", datalog.Tuple{})
	rt.Tick()
	rt.Tick()
	resp := rt.Drain("ask<response>")
	if len(resp) != 1 {
		t.Fatalf("responses = %v", resp)
	}
	if resp[0].Payload[0] != id || resp[0].Payload[1] != "answer" {
		t.Fatalf("payload = %v, want [%d answer]", resp[0].Payload, id)
	}
}

func TestAbortDiscardsEffects(t *testing.T) {
	rt := newTestRuntime()
	rt.RegisterVar("count", int64(0))
	rt.RegisterHandler("guarded", func(tx *Tx, msg Message) {
		tx.MergeTuple("people", datalog.Tuple{msg.Payload[0], false, false})
		tx.Assign("count", tx.ReadVar("count").(int64)+1)
		tx.Send("side", datalog.Tuple{"never"})
		if msg.Payload[0].(int64) < 0 {
			tx.Abort()
		}
	})
	rt.Inject("guarded", datalog.Tuple{int64(-5)}) // aborts
	rt.Inject("guarded", datalog.Tuple{int64(5)})  // commits
	rt.Tick()
	if rt.Table("people").Len() != 1 {
		t.Fatalf("people = %v", rt.Table("people").Tuples())
	}
	if rt.Var("count").(int64) != 1 {
		t.Fatalf("count = %v", rt.Var("count"))
	}
	if rt.Stats().Aborted != 1 {
		t.Fatalf("aborted = %d", rt.Stats().Aborted)
	}
	rt.Tick()
	if len(rt.Drain("side")) != 1 {
		t.Fatal("committed handler's send lost or aborted handler's send leaked")
	}
}

func TestQueriesRunToFixpointPerTick(t *testing.T) {
	rt := newTestRuntime()
	rt.RegisterTable(TableSchema{Name: "edge", Arity: 2})
	prog, err := datalog.NewProgram(
		datalog.Rule{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}},
			Body: []datalog.Literal{{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}}},
		},
		datalog.Rule{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("z")}},
			Body: []datalog.Literal{
				{Atom: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}},
				{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("y"), datalog.V("z")}}},
			},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	rt.RegisterQueries(prog)
	rt.RegisterHandler("add_edge", func(tx *Tx, msg Message) {
		tx.MergeTuple("edge", msg.Payload)
	})
	var reach []datalog.Tuple
	rt.RegisterHandler("probe", func(tx *Tx, msg Message) {
		reach = tx.QueryWhere("path", []int{0}, []any{msg.Payload[0]})
	})
	rt.Inject("add_edge", datalog.Tuple{"a", "b"})
	rt.Inject("add_edge", datalog.Tuple{"b", "c"})
	rt.Tick()
	rt.Inject("probe", datalog.Tuple{"a"})
	rt.Tick()
	if len(reach) != 2 {
		t.Fatalf("path(a, _) = %v, want 2 rows", reach)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []datalog.Tuple {
		rt := newTestRuntime()
		rt.RegisterHandler("add", func(tx *Tx, msg Message) {
			tx.MergeTuple("people", datalog.Tuple{msg.Payload[0], false, false})
			tx.Send("echo", msg.Payload)
		})
		rt.RegisterHandler("echo", func(tx *Tx, msg Message) {
			tx.MergeField("people", []any{msg.Payload[0]}, 2, true)
		})
		for i := int64(0); i < 10; i++ {
			rt.Inject("add", datalog.Tuple{i})
		}
		rt.RunUntilIdle(50)
		return rt.Table("people").Tuples()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("non-deterministic row count")
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("row %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestAssignLastWriteWinsDeterministically(t *testing.T) {
	rt := newTestRuntime()
	rt.RegisterVar("x", int64(0))
	rt.RegisterHandler("seta", func(tx *Tx, msg Message) { tx.Assign("x", msg.Payload[0]) })
	rt.Inject("seta", datalog.Tuple{int64(1)})
	rt.Inject("seta", datalog.Tuple{int64(2)})
	rt.Tick()
	// Both staged in one tick: the later message in mailbox order wins;
	// the point is determinism, asserted by repetition.
	first := rt.Var("x")
	for i := 0; i < 5; i++ {
		rt2 := newTestRuntime()
		rt2.RegisterVar("x", int64(0))
		rt2.RegisterHandler("seta", func(tx *Tx, msg Message) { tx.Assign("x", msg.Payload[0]) })
		rt2.Inject("seta", datalog.Tuple{int64(1)})
		rt2.Inject("seta", datalog.Tuple{int64(2)})
		rt2.Tick()
		if rt2.Var("x") != first {
			t.Fatal("conflicting assigns resolved non-deterministically")
		}
	}
}

func TestDeleteAppliedAfterInserts(t *testing.T) {
	rt := newTestRuntime()
	rt.RegisterHandler("addrm", func(tx *Tx, msg Message) {
		tx.MergeTuple("people", datalog.Tuple{msg.Payload[0], false, false})
		tx.Delete("people", datalog.Tuple{msg.Payload[0], false, false})
	})
	rt.Inject("addrm", datalog.Tuple{int64(1)})
	rt.Tick()
	if rt.Table("people").Len() != 0 {
		t.Fatal("delete must apply after insert within the same tick")
	}
}

func TestRemoteRouting(t *testing.T) {
	rt := newTestRuntime()
	var remote []Message
	rt.Remote = func(node string, msg Message) {
		if node != "n2" {
			t.Fatalf("routed to %q", node)
		}
		remote = append(remote, msg)
	}
	rt.RegisterHandler("go", func(tx *Tx, msg Message) {
		tx.Send("n2/inbox", datalog.Tuple{"x"})
	})
	rt.Inject("go", datalog.Tuple{})
	rt.Tick()
	rt.Tick()
	if len(remote) != 1 || remote[0].Mailbox != "inbox" {
		t.Fatalf("remote = %v", remote)
	}
}

func TestIdleAndRunUntilIdle(t *testing.T) {
	rt := newTestRuntime()
	rt.RegisterHandler("a", func(tx *Tx, msg Message) { tx.Send("b", datalog.Tuple{}) })
	rt.RegisterHandler("b", func(tx *Tx, msg Message) {})
	if !rt.Idle() {
		t.Fatal("fresh runtime should be idle")
	}
	rt.Inject("a", datalog.Tuple{})
	if rt.Idle() {
		t.Fatal("pending message should make runtime busy")
	}
	n := rt.RunUntilIdle(20)
	if n >= 20 || !rt.Idle() {
		t.Fatalf("did not quiesce: %d ticks", n)
	}
}

// TestPeekReturnsCopy is the regression test for the mailbox aliasing bug:
// Peek used to return the live slice backing the mailbox, so callers could
// mutate queued messages (or have their view shifted by later deliveries).
func TestPeekReturnsCopy(t *testing.T) {
	rt := newTestRuntime()
	rt.Inject("box", datalog.Tuple{int64(1)})
	rt.Inject("box", datalog.Tuple{int64(2)})
	peeked := rt.Peek("box")
	if len(peeked) != 2 {
		t.Fatalf("peeked %d messages, want 2", len(peeked))
	}
	peeked[0].Payload[0] = int64(99) // element-level write through the copy
	peeked[1].Mailbox = "elsewhere"
	drained := rt.Drain("box")
	if drained[0].Payload[0] != int64(1) || drained[1].Mailbox != "box" {
		t.Fatalf("mutating the peeked slice reached the mailbox: %v", drained)
	}
	if rt.Peek("missing") != nil {
		t.Fatal("peek of a missing mailbox must be nil")
	}
}

func tcQueries(t testing.TB) *datalog.Program {
	prog, err := datalog.NewProgram(
		datalog.Rule{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}},
			Body: []datalog.Literal{{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}}},
		},
		datalog.Rule{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("z")}},
			Body: []datalog.Literal{
				{Atom: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}},
				{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("y"), datalog.V("z")}}},
			},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestIncrementalTickMatchesFullEval runs the same randomized op stream —
// edge merges, edge deletes, keyed upserts, and query probes — through a
// full-eval runtime and an incremental runtime, and requires every probe
// result and final table to agree. This is the transducer-level leg of the
// three-way differential property.
func TestIncrementalTickMatchesFullEval(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		mk := func(incremental bool) (*Runtime, *[][]datalog.Tuple) {
			rt := New("n1", seed)
			rt.SetDelay(fixedDelay)
			rt.RegisterTable(TableSchema{Name: "edge", Arity: 2})
			rt.RegisterTable(TableSchema{
				Name: "people", Arity: 3, Key: []int{0},
				LatticeMerge: map[int]func(a, b any) any{1: orMerge, 2: orMerge},
				Zero:         func(key []any) datalog.Tuple { return datalog.Tuple{key[0], false, false} },
			})
			if incremental {
				if err := rt.RegisterQueriesIncremental(tcQueries(t)); err != nil {
					t.Fatal(err)
				}
			} else {
				rt.RegisterQueries(tcQueries(t))
			}
			probes := &[][]datalog.Tuple{}
			rt.RegisterHandler("add_edge", func(tx *Tx, msg Message) { tx.MergeTuple("edge", msg.Payload) })
			rt.RegisterHandler("del_edge", func(tx *Tx, msg Message) { tx.Delete("edge", msg.Payload) })
			rt.RegisterHandler("diagnose", func(tx *Tx, msg Message) {
				tx.MergeField("people", []any{msg.Payload[0]}, 1, true)
			})
			rt.RegisterHandler("probe", func(tx *Tx, msg Message) {
				*probes = append(*probes, tx.Query("path"))
			})
			return rt, probes
		}
		full, fullProbes := mk(false)
		incr, incrProbes := mk(true)
		r := rand.New(rand.NewSource(seed))
		for op := 0; op < 60; op++ {
			var box string
			var payload datalog.Tuple
			switch r.Intn(4) {
			case 0, 1:
				box, payload = "add_edge", datalog.Tuple{int64(r.Intn(8)), int64(r.Intn(8))}
			case 2:
				box, payload = "del_edge", datalog.Tuple{int64(r.Intn(8)), int64(r.Intn(8))}
			default:
				box, payload = "diagnose", datalog.Tuple{int64(r.Intn(8))}
			}
			full.Inject(box, payload)
			incr.Inject(box, payload)
			if r.Intn(3) == 0 {
				full.Inject("probe", datalog.Tuple{})
				incr.Inject("probe", datalog.Tuple{})
			}
			full.Tick()
			incr.Tick()
		}
		full.Inject("probe", datalog.Tuple{})
		incr.Inject("probe", datalog.Tuple{})
		full.Tick()
		incr.Tick()
		if len(*fullProbes) != len(*incrProbes) {
			t.Fatalf("seed %d: probe counts diverge: %d vs %d", seed, len(*fullProbes), len(*incrProbes))
		}
		for i := range *fullProbes {
			f, n := (*fullProbes)[i], (*incrProbes)[i]
			if len(f) != len(n) {
				t.Fatalf("seed %d probe %d: path has %d vs %d rows\nfull: %v\nincr: %v", seed, i, len(f), len(n), f, n)
			}
			for j := range f {
				if !f[j].Equal(n[j]) {
					t.Fatalf("seed %d probe %d row %d: %v vs %v", seed, i, j, f[j], n[j])
				}
			}
		}
		for _, table := range []string{"edge", "people"} {
			f, n := full.Table(table).Tuples(), incr.Table(table).Tuples()
			if len(f) != len(n) {
				t.Fatalf("seed %d: table %s: %d vs %d rows", seed, table, len(f), len(n))
			}
			for j := range f {
				if !f[j].Equal(n[j]) {
					t.Fatalf("seed %d: table %s row %d: %v vs %v", seed, table, j, f[j], n[j])
				}
			}
		}
	}
}

// TestRegisterQueriesLeavesIncrementalMode: re-registering queries with
// the plain API must drop the old incremental evaluator, not keep serving
// the previous program's maintained fixpoint.
func TestRegisterQueriesLeavesIncrementalMode(t *testing.T) {
	rt := New("n1", 1)
	rt.SetDelay(fixedDelay)
	rt.RegisterTable(TableSchema{Name: "edge", Arity: 2})
	if err := rt.RegisterQueriesIncremental(tcQueries(t)); err != nil {
		t.Fatal(err)
	}
	p2, err := datalog.NewProgram(datalog.Rule{
		Head: datalog.Atom{Pred: "rev", Args: []datalog.Term{datalog.V("y"), datalog.V("x")}},
		Body: []datalog.Literal{{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.RegisterQueries(p2)
	var rev, path []datalog.Tuple
	rt.RegisterHandler("add_probe", func(tx *Tx, msg Message) {
		tx.MergeTuple("edge", msg.Payload)
		rev = tx.Query("rev")
		path = tx.Query("path")
	})
	rt.Inject("add_probe", datalog.Tuple{"a", "b"})
	rt.Tick()
	rt.Inject("add_probe", datalog.Tuple{"b", "c"})
	rt.Tick()
	if len(rev) != 1 || !rev[0].Equal(datalog.Tuple{"b", "a"}) {
		t.Fatalf("new program not evaluated after re-registration: rev = %v", rev)
	}
	if len(path) != 0 {
		t.Fatalf("old incremental fixpoint still served: path = %v", path)
	}
}

// TestRegisterQueriesReplacementPurgesStaleFixpoint is the regression test
// for the stale-fixpoint case: an incremental program materializes its
// derived relations directly into the runtime database, so replacing it
// mid-stream — after ticks have populated the fixpoint — must purge those
// tuples. Before the purge, a successor full-eval program reusing the same
// head predicate would fold the old fixpoint into every snapshot as if it
// were base data, and a successor incremental program would be rejected
// outright ("derived ... already holds base tuples").
func TestRegisterQueriesReplacementPurgesStaleFixpoint(t *testing.T) {
	mk := func() *Runtime {
		rt := New("n1", 1)
		rt.SetDelay(fixedDelay)
		rt.RegisterTable(TableSchema{Name: "edge", Arity: 2})
		if err := rt.RegisterQueriesIncremental(tcQueries(t)); err != nil {
			t.Fatal(err)
		}
		rt.RegisterHandler("add_edge", func(tx *Tx, msg Message) { tx.MergeTuple("edge", msg.Payload) })
		rt.Inject("add_edge", datalog.Tuple{"a", "b"})
		rt.Inject("add_edge", datalog.Tuple{"b", "c"})
		rt.Tick()
		if rt.Table("path").Len() != 3 {
			t.Fatalf("incremental fixpoint not materialized: path = %v", rt.Table("path").Tuples())
		}
		return rt
	}
	// Reverse-only program reusing the same head predicate: under the new
	// semantics path(a,c) etc. must be gone everywhere.
	revRules := func() *datalog.Program {
		p, err := datalog.NewProgram(datalog.Rule{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("y"), datalog.V("x")}},
			Body: []datalog.Literal{{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Case 1: replacement with a full-eval program.
	rt := mk()
	rt.RegisterQueries(revRules())
	if got := rt.Table("path").Len(); got != 0 {
		t.Fatalf("stale fixpoint left in live database after RegisterQueries: path = %v", rt.Table("path").Tuples())
	}
	var seen []datalog.Tuple
	rt.RegisterHandler("probe", func(tx *Tx, msg Message) { seen = tx.Query("path") })
	rt.Inject("probe", datalog.Tuple{int64(0)})
	rt.Tick()
	want := map[string]bool{`(b, a)`: true, `(c, b)`: true}
	if len(seen) != 2 || !want[seen[0].String()] || !want[seen[1].String()] {
		t.Fatalf("stale tuples polluted the successor program's fixpoint: path = %v", seen)
	}

	// Case 2: replacement with another incremental program must not be
	// rejected for the predecessor's materialized tuples, and must rebuild
	// the correct fixpoint.
	rt = mk()
	if err := rt.RegisterQueriesIncremental(revRules()); err != nil {
		t.Fatalf("incremental re-registration failed on predecessor's fixpoint: %v", err)
	}
	got := rt.Table("path").Tuples()
	if len(got) != 2 || !want[got[0].String()] || !want[got[1].String()] {
		t.Fatalf("successor incremental fixpoint wrong: path = %v", got)
	}
}

// TestIncrementalDeleteOfDerivedIsNoOp: tx.Delete on a derived relation is
// a silent no-op in full-eval mode (the base database never holds derived
// tuples); incremental mode must match instead of corrupting the
// maintained fixpoint or crashing.
func TestIncrementalDeleteOfDerivedIsNoOp(t *testing.T) {
	rt := New("n1", 1)
	rt.SetDelay(fixedDelay)
	rt.RegisterTable(TableSchema{Name: "edge", Arity: 2})
	if err := rt.RegisterQueriesIncremental(tcQueries(t)); err != nil {
		t.Fatal(err)
	}
	rt.RegisterHandler("add_edge", func(tx *Tx, msg Message) { tx.MergeTuple("edge", msg.Payload) })
	rt.RegisterHandler("del_path", func(tx *Tx, msg Message) { tx.Delete("path", msg.Payload) })
	rt.Inject("add_edge", datalog.Tuple{"a", "b"})
	rt.Tick()
	rt.Inject("del_path", datalog.Tuple{"a", "b"})
	rt.Tick()
	if got := rt.Table("path").Tuples(); len(got) != 1 {
		t.Fatalf("derived delete must be a no-op, path = %v", got)
	}
}

// TestIncrementalRejectsTableCollision: a registered table that a query
// derives must be rejected in incremental mode, in either registration
// order.
func TestIncrementalRejectsTableCollision(t *testing.T) {
	rt := New("n1", 1)
	rt.RegisterTable(TableSchema{Name: "path", Arity: 2})
	if err := rt.RegisterQueriesIncremental(tcQueries(t)); err == nil {
		t.Fatal("table registered before queries must collide")
	}
	rt2 := New("n2", 1)
	if err := rt2.RegisterQueriesIncremental(tcQueries(t)); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("table registered after incremental queries must panic on collision")
		}
	}()
	rt2.RegisterTable(TableSchema{Name: "path", Arity: 2})
}

func TestUnhandledMailboxAccumulates(t *testing.T) {
	rt := newTestRuntime()
	rt.RegisterHandler("fan", func(tx *Tx, msg Message) {
		tx.Send("alerts", datalog.Tuple{msg.Payload[0]})
	})
	rt.Inject("fan", datalog.Tuple{int64(1)})
	rt.Inject("fan", datalog.Tuple{int64(2)})
	rt.RunUntilIdle(10)
	if got := len(rt.Peek("alerts")); got != 2 {
		t.Fatalf("alerts mailbox has %d messages, want 2", got)
	}
}

// TestIdleToleratesEmptyMailboxSlice is the regression test for the Idle
// ordering bug: msgs[0] was indexed before the len(msgs) > 0 guard, so a
// present-but-empty mailbox slice panicked instead of reading as idle.
func TestIdleToleratesEmptyMailboxSlice(t *testing.T) {
	rt := newTestRuntime()
	rt.RegisterHandler("box", func(tx *Tx, msg Message) {})
	rt.mailboxes["box"] = []Message{} // what a drained-in-place mailbox looks like
	if !rt.Idle() {
		t.Fatal("empty mailbox slice must read as idle")
	}
	rt.Inject("box", datalog.Tuple{int64(1)})
	if rt.Idle() {
		t.Fatal("pending handled message must read as busy")
	}
}

// TestRejectTickFullEval pins the full-eval rejection path: a handler write
// into a derived query head is rejected without a recorded delta
// (rejectTick used to dereference the nil delta and panic), the whole tick
// rolls back atomically, and the runtime keeps serving.
func TestRejectTickFullEval(t *testing.T) {
	rt := New("n1", 1)
	rt.SetDelay(fixedDelay)
	rt.RegisterTable(TableSchema{Name: "edge", Arity: 2})
	rt.RegisterQueries(tcQueries(t))
	if rt.IncrementalQueries() {
		t.Fatal("test requires full-eval mode")
	}
	rt.RegisterHandler("add", func(tx *Tx, msg Message) {
		tx.MergeTuple("edge", msg.Payload)
	})
	rt.RegisterHandler("poison", func(tx *Tx, msg Message) {
		tx.MergeTuple("edge", datalog.Tuple{"x", "y"}) // innocent effect in the same tick
		tx.MergeTuple("path", msg.Payload)             // write into a derived head
		tx.Send("out", datalog.Tuple{"never"})
	})
	rt.Inject("poison", datalog.Tuple{"a", "b"})
	rt.Tick()
	if got := rt.Stats().Rejected; got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}
	if rt.LastRejection() == nil {
		t.Fatal("LastRejection must report the rejected tick")
	}
	if got := rt.Table("edge").Tuples(); len(got) != 0 {
		t.Fatalf("rejected tick must roll back atomically, edge = %v", got)
	}
	if len(rt.Peek("out")) != 0 || rt.Peek("path") != nil {
		t.Fatal("rejected tick must drop its sends")
	}
	// The node keeps serving: a clean tick after the rejection commits.
	rt.Inject("add", datalog.Tuple{"a", "b"})
	rt.Tick()
	if got := rt.Table("edge").Tuples(); len(got) != 1 {
		t.Fatalf("post-rejection tick must commit, edge = %v", got)
	}
}

// TestRunUntilIdleSkipsInitialTickWhenIdle: an already-idle runtime must
// not burn a tick (serving shells settle after every batch, and the old
// behavior inflated Stats.Ticks by one per call).
func TestRunUntilIdleSkipsInitialTickWhenIdle(t *testing.T) {
	rt := newTestRuntime()
	rt.RegisterHandler("a", func(tx *Tx, msg Message) {})
	if n := rt.RunUntilIdle(10); n != 0 {
		t.Fatalf("idle runtime ran %d ticks, want 0", n)
	}
	if got := rt.Stats().Ticks; got != 0 {
		t.Fatalf("idle RunUntilIdle must not tick, Ticks = %d", got)
	}
	rt.Inject("a", datalog.Tuple{})
	if n := rt.RunUntilIdle(10); n != 1 {
		t.Fatalf("one pending message needs 1 tick, got %d", n)
	}
}

// TestInjectBatchSingleTick: a whole batch is ingested by one tick — one
// snapshot, one atomic apply — with IDs assigned in batch order.
func TestInjectBatchSingleTick(t *testing.T) {
	rt := newTestRuntime()
	rt.RegisterTable(TableSchema{Name: "facts", Arity: 1})
	rt.RegisterHandler("a", func(tx *Tx, msg Message) { tx.MergeTuple("facts", msg.Payload) })
	rt.RegisterHandler("b", func(tx *Tx, msg Message) { tx.MergeTuple("facts", msg.Payload) })
	ids := rt.InjectBatch([]Injection{
		{Mailbox: "a", Payload: datalog.Tuple{int64(1)}},
		{Mailbox: "b", Payload: datalog.Tuple{int64(2)}},
		{Mailbox: "a", Payload: datalog.Tuple{int64(3)}},
	})
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("IDs must be assigned in batch order: %v", ids)
		}
	}
	if handled := rt.Tick(); handled != 3 {
		t.Fatalf("one tick must ingest the whole batch, handled %d", handled)
	}
	if got := rt.Stats().Ticks; got != 1 {
		t.Fatalf("Ticks = %d, want 1", got)
	}
	if got := len(rt.Table("facts").Tuples()); got != 3 {
		t.Fatalf("facts has %d rows, want 3", got)
	}
}

// TestTickTimings: enabling timings records a per-phase breakdown without
// changing behavior.
func TestTickTimings(t *testing.T) {
	rt := newTestRuntime()
	rt.RegisterTable(TableSchema{Name: "facts", Arity: 1})
	rt.RegisterHandler("a", func(tx *Tx, msg Message) { tx.MergeTuple("facts", msg.Payload) })
	rt.EnableTickTimings(true)
	rt.Inject("a", datalog.Tuple{int64(1)})
	rt.Tick()
	tt := rt.LastTickTimings()
	if tt.Handled != 1 {
		t.Fatalf("timings.Handled = %d, want 1", tt.Handled)
	}
	if tt.Deliver < 0 || tt.Snapshot < 0 || tt.Handlers < 0 || tt.Apply < 0 {
		t.Fatalf("negative phase timing: %+v", tt)
	}
	if !rt.Handles("a") || rt.Handles("missing") {
		t.Fatal("Handles must report handler registration")
	}
}
