// Package transducer implements HydroLogic's event-loop semantics (§3.1):
// each tick takes a snapshot of program state (including newly arrived
// mailbox messages), computes to fixpoint against that snapshot, and applies
// all mutations atomically at end of tick. Sends are asynchronous merges
// into mailboxes that may be delayed an unbounded (simulated) number of
// ticks, capturing network non-determinism while keeping handler logic
// deterministic within a tick.
//
// The runtime is deliberately agnostic to how handlers were produced: the
// Hydrolysis compiler registers closures compiled from HydroLogic, and the
// lifting runtimes (actors, futures, MPI) register hand-written ones.
package transducer

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"hydro/internal/datalog"
)

// Message is one mailbox entry.
type Message struct {
	Mailbox string
	Payload datalog.Tuple
	// ID correlates requests with responses; From names the sender node
	// (used by the cluster substrate).
	ID   uint64
	From string
}

// TableSchema registers a table with the runtime.
type TableSchema struct {
	Name  string
	Arity int
	// Key lists the key column indexes used by field merges.
	Key []int
	// LatticeMerge maps a column index to its lattice join. Field merges
	// are only valid on columns present here.
	LatticeMerge map[int]func(a, b any) any
	// Zero builds a fresh row for a key when a field merge targets a
	// missing row; nil disables auto-creation.
	Zero func(key []any) datalog.Tuple
}

// Handler reacts to one message. It must confine all effects to the Tx; the
// runtime applies them atomically after the tick's fixpoint.
type Handler func(tx *Tx, msg Message)

// DelayFn decides, per send, how many ticks delivery is delayed (≥1 keeps
// "sends are not visible during the current tick" true).
type DelayFn func(r *rand.Rand) int

// DefaultDelay delays 1-3 ticks uniformly.
func DefaultDelay(r *rand.Rand) int { return 1 + r.Intn(3) }

// Stats counts runtime activity.
type Stats struct {
	Ticks     uint64
	Handled   uint64 // messages processed
	Derived   uint64 // datalog facts derived across ticks
	Mutations uint64 // applied end-of-tick mutations
	Sent      uint64 // messages enqueued
	Aborted   uint64 // handler invocations aborted by invariants
	Rejected  uint64 // ticks rolled back after the evaluator or sink refused them
}

// DurabilitySink journals a runtime's realized table deltas so its
// incremental fixpoint survives restarts; *durable.Store implements it. The
// tick loop drives the append-before-apply protocol: Append journals the
// tick's delta, the evaluator applies it, and Committed lets the sink take
// a snapshot. AbortLast retracts the journaled record when the evaluator
// rejects the tick after it was appended.
type DurabilitySink interface {
	Append(d *datalog.Delta) error
	AbortLast() error
	Committed(inc *datalog.Incremental) error
}

// Runtime is one transducer: a logical single-node event loop.
type Runtime struct {
	// Name identifies the node in distributed deployments.
	Name string

	db       *datalog.Database
	vars     map[string]any
	schemas  map[string]TableSchema
	handlers map[string]Handler
	queries  *datalog.Program
	// inc, when set, maintains the query fixpoint across ticks inside db:
	// ticks skip the snapshot clone and full re-evaluation, and end-of-tick
	// effects propagate as deltas (RegisterQueriesIncremental). derived
	// caches the query head predicates while incremental mode is active.
	inc     *datalog.Incremental
	derived map[string]bool
	// sink, when set, journals every effectful tick's delta before it is
	// applied (SetDurability); lastRejection remembers the most recent
	// rejected tick or degraded-durability error for observability.
	sink          DurabilitySink
	lastRejection error

	mailboxes map[string][]Message
	inflight  []pendingSend
	nextID    uint64
	rng       *rand.Rand
	delay     DelayFn

	// Remote, when set, receives sends addressed to mailboxes with an
	// explicit node ("node/mailbox"); the cluster substrate plugs in here.
	Remote func(node string, msg Message)

	stats Stats
	// timings, when enabled, makes every Tick record a per-phase wall-clock
	// breakdown into lastTimings. Observability only: clocks are read
	// around phases, never fed into control flow, so enabling timings
	// cannot perturb determinism.
	timings     bool
	lastTimings TickTimings
}

type pendingSend struct {
	msg       Message
	deliverAt uint64
}

// New returns a runtime seeded for deterministic send delays.
func New(name string, seed int64) *Runtime {
	return &Runtime{
		Name:      name,
		db:        datalog.NewDatabase(),
		vars:      map[string]any{},
		schemas:   map[string]TableSchema{},
		handlers:  map[string]Handler{},
		mailboxes: map[string][]Message{},
		rng:       rand.New(rand.NewSource(seed)),
		delay:     DefaultDelay,
	}
}

// SetDelay overrides the send-delay distribution (tests use a fixed 1).
func (rt *Runtime) SetDelay(d DelayFn) { rt.delay = d }

// Stats returns a copy of the counters.
func (rt *Runtime) Stats() Stats { return rt.stats }

// RegisterTable declares a table.
func (rt *Runtime) RegisterTable(s TableSchema) {
	if rt.inc != nil && rt.derived[s.Name] {
		panic(fmt.Sprintf("transducer %s: table %q collides with a derived query relation", rt.Name, s.Name))
	}
	rt.schemas[s.Name] = s
	rt.db.Ensure(s.Name, s.Arity)
}

// derivedPreds returns the predicates derived by the registered queries.
func (rt *Runtime) derivedPreds() map[string]bool {
	heads := map[string]bool{}
	if rt.queries != nil {
		for _, r := range rt.queries.Rules {
			heads[r.Head.Pred] = true
		}
	}
	return heads
}

// RegisterVar declares a scalar variable with an initial value.
func (rt *Runtime) RegisterVar(name string, initial any) { rt.vars[name] = initial }

// RegisterHandler binds a mailbox to a handler.
func (rt *Runtime) RegisterHandler(mailbox string, h Handler) { rt.handlers[mailbox] = h }

// RegisterQueries installs the datalog program evaluated to fixpoint each
// tick (the compiled `query` declarations). The program is compiled to
// plans here, once, so no tick ever pays stratification or rule-planning
// costs (any compile error resurfaces from Eval inside Tick). Derived
// heads are tracked in full-eval mode too: a handler write into a query
// head would land in the base database and re-enter every future snapshot
// as if it were a base fact, so applyEffects rejects such ticks in both
// execution modes.
func (rt *Runtime) RegisterQueries(p *datalog.Program) {
	rt.leaveIncremental()
	if p != nil {
		_ = p.Prepare()
	}
	rt.queries = p
	rt.derived = rt.derivedPreds()
}

// leaveIncremental tears incremental mode down completely: the maintained
// fixpoint materialized the old program's derived relations directly into
// the runtime database, and leaving them behind would feed stale derived
// tuples to whatever program is registered next (they would re-enter every
// future snapshot as if they were base facts — the stale-fixpoint bug) or
// make a subsequent RegisterQueriesIncremental reject the relation as
// "derived but already holds base tuples". Relations are cleared in place
// so handles returned by Table stay valid.
func (rt *Runtime) leaveIncremental() {
	if rt.inc != nil {
		for pred := range rt.derived {
			if rel := rt.db.Get(pred); rel != nil {
				rel.Clear()
			}
		}
	}
	rt.inc = nil
	rt.derived = nil
	rt.sink = nil // the sink journaled the old evaluator's history
}

// RegisterQueriesIncremental installs the query program in cross-tick
// incremental mode: the fixpoint is materialized into the runtime database
// once, then maintained from each tick's applied effects as deltas
// (counted derivations for retractions, semi-naive propagation for
// monotone inserts, per-component recompute fallbacks — see
// datalog.Incremental). Ticks skip both the snapshot clone and the full
// re-evaluation, making amortized tick cost O(delta) on monotone
// workloads. Registered tables must not collide with derived predicates,
// and handler effects must never write a derived relation.
func (rt *Runtime) RegisterQueriesIncremental(p *datalog.Program) error {
	rt.leaveIncremental() // clear any previous program's materialized fixpoint first
	rt.queries = nil
	if p == nil {
		return nil
	}
	rt.queries = p
	heads := rt.derivedPreds()
	for name := range rt.schemas {
		if heads[name] {
			rt.queries = nil
			return fmt.Errorf("transducer %s: table %q collides with a derived query relation", rt.Name, name)
		}
	}
	inc, err := datalog.NewIncremental(p, rt.db)
	if err != nil {
		rt.queries = nil
		return err
	}
	rt.inc = inc
	rt.derived = heads
	return nil
}

// RecoverQueriesIncremental installs the query program in incremental mode
// with state supplied by a recovery function instead of a freshly computed
// fixpoint — the boot path for a runtime resuming from a durability
// directory:
//
//	store, _ := durable.Open(durable.Options{Dir: dir})
//	err := rt.RecoverQueriesIncremental(p, store.Recover)
//	err = rt.SetDurability(store)
//
// The function receives the runtime database (registered tables already
// exist, empty) and must return an evaluator maintaining p over that same
// database — handles returned by Table stay valid across recovery.
func (rt *Runtime) RecoverQueriesIncremental(p *datalog.Program, restore func(*datalog.Program, *datalog.Database) (*datalog.Incremental, error)) error {
	rt.leaveIncremental()
	rt.queries = nil
	if p == nil {
		return fmt.Errorf("transducer %s: recovery requires a query program", rt.Name)
	}
	rt.queries = p
	heads := rt.derivedPreds()
	for name := range rt.schemas {
		if heads[name] {
			rt.queries = nil
			return fmt.Errorf("transducer %s: table %q collides with a derived query relation", rt.Name, name)
		}
	}
	inc, err := restore(p, rt.db)
	if err != nil {
		rt.queries = nil
		return err
	}
	if inc.DB() != rt.db {
		rt.queries = nil
		return fmt.Errorf("transducer %s: recovered evaluator maintains a different database", rt.Name)
	}
	rt.inc = inc
	rt.derived = heads
	return nil
}

// SetDurability attaches (or, with nil, detaches) the durability sink.
// Durability journals the incremental fixpoint's input deltas, so it
// requires incremental query mode; re-registering queries detaches the
// sink, since its log describes the previous evaluator's history.
func (rt *Runtime) SetDurability(sink DurabilitySink) error {
	if sink != nil && rt.inc == nil {
		return fmt.Errorf("transducer %s: durability requires incremental query mode", rt.Name)
	}
	rt.sink = sink
	return nil
}

// LastRejection returns the most recent tick-rejection or degraded-
// durability error, nil if there has been none. Rejections also count in
// Stats.Rejected; a degraded-durability error (the tick stood, but the
// sink's snapshot failed) surfaces only here.
func (rt *Runtime) LastRejection() error { return rt.lastRejection }

// Table exposes a table's current contents (between ticks).
func (rt *Runtime) Table(name string) *datalog.Relation { return rt.db.Get(name) }

// IncrementalQueries reports whether the registered query program is
// maintained incrementally across ticks (as opposed to lazy per-tick full
// evaluation) — an observability hook for tests and operators checking
// which execution model the compiler selected.
func (rt *Runtime) IncrementalQueries() bool { return rt.inc != nil }

// Var reads a scalar variable's current value (between ticks).
func (rt *Runtime) Var(name string) any { return rt.vars[name] }

// Inject places a message in a mailbox for the next tick (external input).
func (rt *Runtime) Inject(mailbox string, payload datalog.Tuple) uint64 {
	rt.nextID++
	id := rt.nextID
	rt.mailboxes[mailbox] = append(rt.mailboxes[mailbox], Message{Mailbox: mailbox, Payload: payload, ID: id, From: "external"})
	return id
}

// Injection is one external message of a batch admission (InjectBatch).
type Injection struct {
	Mailbox string
	Payload datalog.Tuple
}

// InjectBatch places a group of external messages into their mailboxes for
// the next tick, assigning IDs in batch order. The whole batch becomes part
// of one tick's snapshot, so a single tick — one snapshot, one atomic
// end-of-tick apply, and in incremental mode one Incremental.Apply
// maintenance pass — ingests every message, instead of paying the per-tick
// fixed costs once per message. This is the admission path the serving
// front-end (internal/serve) batches requests through.
func (rt *Runtime) InjectBatch(batch []Injection) []uint64 {
	ids := make([]uint64, len(batch))
	for i, in := range batch {
		ids[i] = rt.Inject(in.Mailbox, in.Payload)
	}
	return ids
}

// Handles reports whether a handler is registered for the mailbox —
// admission control uses it to fail unroutable requests fast instead of
// letting them pile up in a mailbox no tick will ever drain.
func (rt *Runtime) Handles(mailbox string) bool {
	_, ok := rt.handlers[mailbox]
	return ok
}

// TableNames lists every relation currently in the runtime database (base
// tables and materialized derived relations), in sorted order.
func (rt *Runtime) TableNames() []string { return rt.db.Names() }

// Deliver places a fully-formed message into a mailbox (used by the cluster
// transport for inter-node sends).
func (rt *Runtime) Deliver(msg Message) {
	rt.mailboxes[msg.Mailbox] = append(rt.mailboxes[msg.Mailbox], msg)
}

// Drain removes and returns the contents of a mailbox (used to observe
// response mailboxes and by lifting runtimes).
func (rt *Runtime) Drain(mailbox string) []Message {
	msgs := rt.mailboxes[mailbox]
	delete(rt.mailboxes, mailbox)
	return msgs
}

// Peek returns mailbox contents without consuming them. The result is a
// copy down to the payload tuples: mutating it must not alias the live
// mailbox.
func (rt *Runtime) Peek(mailbox string) []Message {
	msgs := rt.mailboxes[mailbox]
	if msgs == nil {
		return nil
	}
	out := make([]Message, len(msgs))
	copy(out, msgs)
	for i := range out {
		out[i].Payload = append(datalog.Tuple{}, out[i].Payload...)
	}
	return out
}

// Idle reports no pending mailbox messages and no in-flight sends.
// Messages in mailboxes no handler consumes (response and observation
// boxes) never count as work. The length guard runs before any element
// access: an empty (but present) mailbox slice is idle, not a panic.
func (rt *Runtime) Idle() bool {
	for name, msgs := range rt.mailboxes {
		if len(msgs) == 0 {
			continue
		}
		if _, handled := rt.handlers[name]; handled {
			return false
		}
	}
	return len(rt.inflight) == 0
}

// TickTimings is one tick's per-phase wall-clock breakdown, recorded when
// EnableTickTimings is on: delivering matured sends, building the snapshot,
// running handlers (including any lazy query fixpoint they force), and
// applying end-of-tick effects (which in incremental mode is the
// Incremental.Apply maintenance pass — the "eval" cost a serving front-end
// amortizes across a batch).
type TickTimings struct {
	Deliver  time.Duration
	Snapshot time.Duration
	Handlers time.Duration
	Apply    time.Duration
	Handled  int
}

// EnableTickTimings toggles per-tick phase timing capture. Purely
// observational: clocks are read between phases and never influence
// control flow, so enabling it cannot perturb determinism.
func (rt *Runtime) EnableTickTimings(on bool) { rt.timings = on }

// LastTickTimings returns the phase breakdown of the most recent Tick
// (zero value if timings are disabled or no tick has run since enabling).
func (rt *Runtime) LastTickTimings() TickTimings { return rt.lastTimings }

// Tick runs one iteration of the event loop and returns the number of
// messages handled.
func (rt *Runtime) Tick() int {
	var t0, t1, t2, t3 time.Time
	if rt.timings {
		t0 = time.Now()
	}
	rt.stats.Ticks++
	// 1. Deliver matured in-flight sends into mailboxes (they become part
	//    of this tick's snapshot).
	var still []pendingSend
	for _, ps := range rt.inflight {
		if ps.deliverAt <= rt.stats.Ticks {
			rt.deliverLocalOrRemote(ps.msg)
		} else {
			still = append(still, ps)
		}
	}
	rt.inflight = still
	if rt.timings {
		t1 = time.Now()
	}

	// 2. Snapshot: handlers read a frozen copy of state; queries run to
	//    fixpoint against the snapshot — lazily, on the first read, so
	//    ticks that never consult a derived query skip the fixpoint
	//    entirely (a Hydrolysis optimization: most monotone handlers only
	//    merge). In incremental mode the database already holds the
	//    maintained fixpoint and is never mutated mid-tick (effects are
	//    staged), so it doubles as the snapshot with no clone and no
	//    re-evaluation.
	snapDB := rt.db
	ensureQueries := func() {}
	if rt.inc == nil {
		snapDB = rt.db.Clone()
		queriesEvaled := false
		ensureQueries = func() {
			if queriesEvaled || rt.queries == nil {
				return
			}
			queriesEvaled = true
			n, err := rt.queries.Eval(snapDB)
			if err != nil {
				// Programs are validated at compile time; a failure here
				// is a compiler bug.
				panic(fmt.Sprintf("transducer %s: query evaluation failed: %v", rt.Name, err))
			}
			rt.stats.Derived += uint64(n)
		}
	}
	snapVars := make(map[string]any, len(rt.vars))
	for k, v := range rt.vars {
		snapVars[k] = v
	}
	if rt.timings {
		t2 = time.Now()
	}

	// 3. Handle every message in every handled mailbox against the
	//    snapshot, accumulating deferred effects. Mailboxes are processed
	//    in sorted order for determinism.
	var boxes []string
	for name := range rt.mailboxes {
		if _, ok := rt.handlers[name]; ok {
			boxes = append(boxes, name)
		}
	}
	sort.Strings(boxes)
	eff := &effects{assigns: map[string]any{}}
	handled := 0
	for _, box := range boxes {
		msgs := rt.mailboxes[box]
		delete(rt.mailboxes, box)
		h := rt.handlers[box]
		for _, msg := range msgs {
			tx := rt.newTx(snapDB, snapVars, eff, msg)
			tx.ensureQueries = ensureQueries
			h(tx, msg)
			if tx.aborted {
				rt.stats.Aborted++
				// Discard this handler invocation's staged effects.
				eff.truncate(tx.mark)
			}
			handled++
			rt.stats.Handled++
		}
	}

	if rt.timings {
		t3 = time.Now()
	}

	// 4. Apply effects atomically.
	rt.applyEffects(eff)
	if rt.timings {
		t4 := time.Now()
		rt.lastTimings = TickTimings{
			Deliver:  t1.Sub(t0),
			Snapshot: t2.Sub(t1),
			Handlers: t3.Sub(t2),
			Apply:    t4.Sub(t3),
			Handled:  handled,
		}
	}
	return handled
}

// RunUntilIdle ticks until no work remains or maxTicks elapses; it returns
// the number of ticks executed. A runtime that is already idle executes no
// tick at all — serving shells call this after every batch, and burning an
// empty tick per call both skews the per-tick stats and costs a snapshot
// clone in full-eval mode.
func (rt *Runtime) RunUntilIdle(maxTicks int) int {
	for i := 0; i < maxTicks; i++ {
		if rt.Idle() {
			return i
		}
		rt.Tick()
	}
	return maxTicks
}

func (rt *Runtime) deliverLocalOrRemote(msg Message) {
	if node, box, ok := splitAddr(msg.Mailbox); ok && node != rt.Name {
		if rt.Remote != nil {
			msg.Mailbox = box
			rt.Remote(node, msg)
			return
		}
	}
	rt.mailboxes[msg.Mailbox] = append(rt.mailboxes[msg.Mailbox], msg)
}

func splitAddr(addr string) (node, mailbox string, ok bool) {
	for i := 0; i < len(addr); i++ {
		if addr[i] == '/' {
			return addr[:i], addr[i+1:], true
		}
	}
	return "", addr, false
}

// applyEffects commits the tick's staged mutations: table inserts, field
// merges, and deletes first, then — in incremental mode — the durability
// append and the fixpoint maintenance pass, then assigns and sends. The
// realized table changes are collected as a recorded delta: the sink
// journals exactly those ops, and a rejected tick is undone by replaying
// them in reverse. A tick the evaluator or the sink refuses is rolled back
// whole (mutations, assigns, and sends all dropped) and the runtime keeps
// serving — a bad tick costs that tick, not the node.
func (rt *Runtime) applyEffects(eff *effects) {
	// Admission check before any mutation lands: a write into a derived
	// relation would corrupt the maintained fixpoint in incremental mode
	// and would re-enter every future snapshot as a phantom base fact in
	// full-eval mode (the compiler never emits either). Rejecting here,
	// with the database still untouched, keeps the tick atomic in both
	// modes — full-eval rejections have no recorded delta to roll back.
	for _, ins := range eff.inserts {
		if rt.derived[ins.table] {
			rt.rejectTick(nil, fmt.Errorf("transducer %s: insert into derived relation %q", rt.Name, ins.table))
			return
		}
	}
	for _, fm := range eff.fieldMerges {
		if rt.derived[fm.table] {
			rt.rejectTick(nil, fmt.Errorf("transducer %s: field merge into derived relation %q", rt.Name, fm.table))
			return
		}
	}
	var delta *datalog.Delta
	if rt.inc != nil {
		delta = datalog.NewDelta()
		delta.SetRecording(true)
	}
	muts := uint64(0) // counted into stats only if the tick commits
	for _, ins := range eff.inserts {
		rt.applyInsert(ins.table, ins.row, delta)
		muts++
	}
	for _, fm := range eff.fieldMerges {
		rt.applyFieldMerge(fm, delta)
		muts++
	}
	for _, del := range eff.deletes {
		if rt.derived[del.table] {
			// Full-eval mode never holds derived relations in the base
			// database, so such deletes are no-ops there; match that.
			muts++
			continue
		}
		if rel := rt.db.Get(del.table); rel != nil {
			if rel.Delete(del.row) && delta != nil {
				delta.Delete(del.table, del.row)
			}
		}
		muts++
	}
	if rt.inc != nil && !delta.Empty() {
		// Append-before-apply: the journaled record is the tick's commit
		// point; the maintenance pass folds the realized changes into the
		// fixpoint (ticks that realized no table changes skip both).
		// Derived counts the realized fixpoint changes here (the full-eval
		// path counts per-tick re-derivations instead).
		if rt.sink != nil {
			if err := rt.sink.Append(delta); err != nil {
				rt.rejectTick(delta, fmt.Errorf("transducer %s: durability append: %w", rt.Name, err))
				return
			}
		}
		n, err := rt.inc.Apply(delta)
		if err != nil {
			if rt.inc.Broken() {
				// The batch half-applied: the fixpoint is inconsistent and
				// nothing can be rolled back in-process.
				panic(fmt.Sprintf("transducer %s: incremental maintenance failed mid-batch: %v", rt.Name, err))
			}
			if rt.sink != nil {
				if aerr := rt.sink.AbortLast(); aerr != nil {
					// The log keeps a record the fixpoint rejected. That is
					// the final-record shape recovery tolerates, and the
					// store has latched failed, so later effectful ticks are
					// rejected until the operator intervenes.
					err = fmt.Errorf("%w (durability abort also failed: %v)", err, aerr)
				}
			}
			rt.rejectTick(delta, fmt.Errorf("transducer %s: tick rejected: %w", rt.Name, err))
			return
		}
		rt.stats.Derived += uint64(n)
		if rt.sink != nil {
			if err := rt.sink.Committed(rt.inc); err != nil {
				// The tick is journaled and applied; only the snapshot
				// failed. Durability is degraded, not lost — surface it
				// without rejecting the tick.
				rt.lastRejection = fmt.Errorf("transducer %s: durability snapshot: %w", rt.Name, err)
			}
		}
	}
	rt.stats.Mutations += muts
	// Deterministic order for assigns: sorted by var name; last staged
	// value per name wins (conflicting assigns within a tick are a
	// program race the analyzer flags, but the runtime stays deterministic).
	var names []string
	for name := range eff.assigns {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rt.vars[name] = eff.assigns[name]
		rt.stats.Mutations++
	}
	for _, msg := range eff.sends {
		rt.nextID++
		msg.ID = rt.nextID
		msg.From = rt.Name
		rt.inflight = append(rt.inflight, pendingSend{
			msg:       msg,
			deliverAt: rt.stats.Ticks + uint64(rt.delay(rt.rng)),
		})
		rt.stats.Sent++
	}
}

// rejectTick rolls back a tick whose effects the evaluator or the
// durability sink refused: every realized table mutation is undone in
// reverse application order, and the tick's assigns and sends are dropped.
// Contents and counts are restored exactly (relation iteration order may
// differ — a deleted row re-inserted by the rollback lands in a new slot).
// The runtime keeps serving; the rejection is visible in Stats.Rejected and
// LastRejection.
func (rt *Runtime) rejectTick(delta *datalog.Delta, err error) {
	// Full-eval rejection paths carry no recorded delta (delta stays nil
	// when rt.inc is nil): nothing reached the base database yet, so there
	// is nothing to undo.
	var ops []datalog.DeltaOp
	if delta != nil {
		ops = delta.Ops()
	}
	for i := len(ops) - 1; i >= 0; i-- {
		op := ops[i]
		if op.Del {
			rt.db.Ensure(op.Pred, len(op.T)).Insert(op.T)
		} else if rel := rt.db.Get(op.Pred); rel != nil {
			rel.Delete(op.T)
		}
	}
	rt.stats.Rejected++
	rt.lastRejection = err
}

// applyInsert inserts a tuple, honoring key-based merge semantics: when the
// table declares key columns and a row with the same key exists, lattice
// columns merge and zero-valued non-lattice columns adopt the new values
// (first non-zero writer wins otherwise, deterministically). This gives
// `merge table(...)` the upsert behavior the paper's data model implies
// ("a table keyed on each person's pid").
func (rt *Runtime) applyInsert(table string, row datalog.Tuple, delta *datalog.Delta) {
	rel := rt.db.Ensure(table, len(row))
	schema, ok := rt.schemas[table]
	if !ok || len(schema.Key) == 0 {
		if rel.Insert(row) && delta != nil {
			delta.Insert(table, row)
		}
		return
	}
	key := make([]any, len(schema.Key))
	for i, idx := range schema.Key {
		key[i] = row[idx]
	}
	existing := rel.Lookup(schema.Key, key)
	if len(existing) == 0 {
		if rel.Insert(row) && delta != nil {
			delta.Insert(table, row)
		}
		return
	}
	var zero datalog.Tuple
	if schema.Zero != nil {
		zero = schema.Zero(key)
	}
	merged := append(datalog.Tuple{}, existing[0]...)
	for i := range merged {
		if mf, isLat := schema.LatticeMerge[i]; isLat {
			merged[i] = mf(merged[i], row[i])
		} else if zero != nil && merged[i] == zero[i] {
			merged[i] = row[i]
		}
	}
	if !merged.Equal(existing[0]) {
		rel.Delete(existing[0])
		rel.Insert(merged)
		if delta != nil {
			delta.Delete(table, existing[0])
			delta.Insert(table, merged)
		}
	}
}

func (rt *Runtime) applyFieldMerge(fm fieldMerge, delta *datalog.Delta) {
	schema, ok := rt.schemas[fm.table]
	if !ok {
		panic(fmt.Sprintf("transducer %s: field merge into unregistered table %q", rt.Name, fm.table))
	}
	mergeFn, ok := schema.LatticeMerge[fm.col]
	if !ok {
		panic(fmt.Sprintf("transducer %s: column %d of %q is not a lattice", rt.Name, fm.col, fm.table))
	}
	rel := rt.db.Ensure(fm.table, schema.Arity)
	// Find the row by key columns.
	rows := rel.Lookup(schema.Key, fm.key)
	if len(rows) == 0 {
		if schema.Zero == nil {
			return // no row, no auto-create: merge is a no-op
		}
		row := schema.Zero(fm.key)
		updated := append(datalog.Tuple{}, row...)
		updated[fm.col] = mergeFn(updated[fm.col], fm.value)
		if rel.Insert(updated) && delta != nil {
			delta.Insert(fm.table, updated)
		}
		return
	}
	for _, row := range rows {
		updated := append(datalog.Tuple{}, row...)
		updated[fm.col] = mergeFn(updated[fm.col], fm.value)
		if !updated.Equal(row) {
			rel.Delete(row)
			rel.Insert(updated)
			if delta != nil {
				delta.Delete(fm.table, row)
				delta.Insert(fm.table, updated)
			}
		}
	}
}
