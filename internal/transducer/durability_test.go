package transducer

import (
	"errors"
	"fmt"
	"testing"

	"hydro/internal/datalog"
	"hydro/internal/durable"
)

// reachQueries is a non-recursive counted join — the maintenance strategy
// most sensitive to out-of-band corruption (derivation counts must match
// the database exactly).
func reachQueries(t *testing.T) *datalog.Program {
	t.Helper()
	p, err := datalog.NewProgram(datalog.Rule{
		Head: datalog.Atom{Pred: "reach", Args: []datalog.Term{datalog.V("x"), datalog.V("v")}},
		Body: []datalog.Literal{
			{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}},
			{Atom: datalog.Atom{Pred: "attr", Args: []datalog.Term{datalog.V("y"), datalog.V("v")}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// durableRuntime assembles the full boot path: registered tables, recovery
// from the durability directory, and the store attached as the tick loop's
// sink.
func durableRuntime(t *testing.T, fs durable.FS, p *datalog.Program) (*Runtime, *durable.Store) {
	t.Helper()
	store, err := durable.Open(durable.Options{FS: fs, SnapshotEveryRecords: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	rt := New("n1", 1)
	rt.SetDelay(fixedDelay)
	rt.RegisterTable(TableSchema{Name: "edge", Arity: 2})
	rt.RegisterTable(TableSchema{Name: "attr", Arity: 2})
	rt.RegisterHandler("mut", func(tx *Tx, msg Message) {
		table, op := msg.Payload[0].(string), msg.Payload[1].(string)
		row := datalog.Tuple{msg.Payload[2], msg.Payload[3]}
		if op == "del" {
			tx.Delete(table, row)
		} else {
			tx.MergeTuple(table, row)
		}
	})
	if err := rt.RecoverQueriesIncremental(p, store.Recover); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetDurability(store); err != nil {
		t.Fatal(err)
	}
	return rt, store
}

func mutTick(t *testing.T, rt *Runtime, table, op string, a, b int64) {
	t.Helper()
	rt.Inject("mut", datalog.Tuple{table, op, a, b})
	rt.Tick()
}

// TestDurableRuntimeRecovers: a runtime journaling through a durable.Store
// resumes after a restart with tables and maintained fixpoint intact, and
// keeps maintaining incrementally.
func TestDurableRuntimeRecovers(t *testing.T) {
	fs := durable.NewFaultFS()
	rt, store := durableRuntime(t, fs, reachQueries(t))
	mutTick(t, rt, "edge", "ins", 1, 2)
	mutTick(t, rt, "attr", "ins", 2, 7)
	mutTick(t, rt, "edge", "ins", 5, 2)
	mutTick(t, rt, "edge", "del", 5, 2)
	if got := store.LastSeq(); got != 4 {
		t.Fatalf("LastSeq = %d, want 4 (one per effectful tick)", got)
	}
	if !rt.Table("reach").Contains(datalog.Tuple{int64(1), int64(7)}) {
		t.Fatalf("fixpoint wrong before restart: reach = %v", rt.Table("reach").Tuples())
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	rt2, store2 := durableRuntime(t, fs, reachQueries(t))
	defer store2.Close()
	if got := store2.LastSeq(); got != 4 {
		t.Fatalf("recovered LastSeq = %d, want 4", got)
	}
	if got := rt2.Table("edge").Len(); got != 1 {
		t.Fatalf("recovered edge table has %d rows, want 1: %v", got, rt2.Table("edge").Tuples())
	}
	if !rt2.Table("reach").Contains(datalog.Tuple{int64(1), int64(7)}) || rt2.Table("reach").Len() != 1 {
		t.Fatalf("recovered fixpoint wrong: reach = %v", rt2.Table("reach").Tuples())
	}
	// The recovered runtime keeps ticking durably.
	mutTick(t, rt2, "attr", "ins", 2, 8)
	if !rt2.Table("reach").Contains(datalog.Tuple{int64(1), int64(8)}) {
		t.Fatalf("recovered runtime stopped maintaining: reach = %v", rt2.Table("reach").Tuples())
	}
	if got := store2.LastSeq(); got != 5 {
		t.Fatalf("LastSeq after resumed tick = %d, want 5", got)
	}
}

// TestRejectedTickKeepsServing: an out-of-band table write desynchronizes
// the evaluator's derivation counts; the tick that trips over it is rolled
// back whole — journal aborted, mutations undone, sends dropped — and the
// runtime keeps serving. The journal never sees the rejected tick, so
// recovery replays only the committed history.
func TestRejectedTickKeepsServing(t *testing.T) {
	fs := durable.NewFaultFS()
	rt, store := durableRuntime(t, fs, reachQueries(t))
	mutTick(t, rt, "edge", "ins", 1, 2)
	mutTick(t, rt, "attr", "ins", 2, 7)

	// Out-of-band corruption: the evaluator never saw this edge, so its
	// reach(3,7) derivation is uncounted.
	rt.Table("edge").Insert(datalog.Tuple{int64(3), int64(2)})

	// Deleting it drives the derivation count negative: clean rejection.
	rt.RegisterHandler("evil", func(tx *Tx, msg Message) {
		tx.Delete("edge", datalog.Tuple{int64(3), int64(2)})
		tx.Send("never", datalog.Tuple{int64(1)})
	})
	rt.Inject("evil", datalog.Tuple{int64(0)})
	rt.Tick()
	if got := rt.Stats().Rejected; got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}
	if err := rt.LastRejection(); !errors.Is(err, datalog.ErrInconsistentDelta) {
		t.Fatalf("LastRejection = %v, want ErrInconsistentDelta", err)
	}
	if !rt.Table("edge").Contains(datalog.Tuple{int64(3), int64(2)}) {
		t.Fatal("rejected tick's delete not rolled back")
	}
	if got := store.LastSeq(); got != 2 {
		t.Fatalf("LastSeq = %d, want 2 (rejected tick's record aborted)", got)
	}
	if got := rt.Stats().Sent; got != 0 {
		t.Fatalf("rejected tick leaked %d sends", got)
	}

	// Still serving: a good tick commits normally.
	mutTick(t, rt, "attr", "ins", 2, 9)
	if !rt.Table("reach").Contains(datalog.Tuple{int64(1), int64(9)}) {
		t.Fatalf("runtime stopped maintaining after rejection: reach = %v", rt.Table("reach").Tuples())
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery sees only the journaled history: three committed ticks, no
	// out-of-band edge, no rejected delete.
	rt2, store2 := durableRuntime(t, fs, reachQueries(t))
	defer store2.Close()
	if got := store2.LastSeq(); got != 3 {
		t.Fatalf("recovered LastSeq = %d, want 3", got)
	}
	if rt2.Table("edge").Contains(datalog.Tuple{int64(3), int64(2)}) {
		t.Fatal("unjournaled out-of-band edge resurrected by recovery")
	}
	if rt2.Table("reach").Len() != 2 {
		t.Fatalf("recovered fixpoint wrong: reach = %v", rt2.Table("reach").Tuples())
	}
}

// TestDerivedWriteRejectsTick: a handler writing a derived relation is
// rejected before anything reaches the journal or the fixpoint, and the
// runtime keeps serving (this used to panic the node).
func TestDerivedWriteRejectsTick(t *testing.T) {
	fs := durable.NewFaultFS()
	rt, store := durableRuntime(t, fs, reachQueries(t))
	defer store.Close()
	mutTick(t, rt, "edge", "ins", 1, 2)

	rt.RegisterHandler("bad", func(tx *Tx, msg Message) {
		tx.MergeTuple("edge", datalog.Tuple{int64(4), int64(5)})
		tx.MergeTuple("reach", datalog.Tuple{int64(9), int64(9)})
	})
	rt.Inject("bad", datalog.Tuple{int64(0)})
	rt.Tick()
	if got := rt.Stats().Rejected; got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}
	if rt.Table("edge").Contains(datalog.Tuple{int64(4), int64(5)}) {
		t.Fatal("mutation staged before the derived write not rolled back")
	}
	if got := store.LastSeq(); got != 1 {
		t.Fatalf("LastSeq = %d, want 1 (rejected tick never journaled)", got)
	}
	mutTick(t, rt, "attr", "ins", 2, 7)
	if !rt.Table("reach").Contains(datalog.Tuple{int64(1), int64(7)}) {
		t.Fatal("runtime stopped maintaining after rejection")
	}
}

// TestAppendFailureRejectsTick: when the sink cannot journal a tick (disk
// full, injected crash), the tick is rolled back and the node keeps serving
// in-memory; after a restart the recovered state is the last journaled one.
func TestAppendFailureRejectsTick(t *testing.T) {
	fs := durable.NewFaultFS()
	rt, store := durableRuntime(t, fs, reachQueries(t))
	mutTick(t, rt, "edge", "ins", 1, 2)
	mutTick(t, rt, "attr", "ins", 2, 7)

	fs.CrashAfterBytes(4) // the next append tears mid-record
	mutTick(t, rt, "edge", "ins", 5, 2)
	if got := rt.Stats().Rejected; got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}
	if !errors.Is(rt.LastRejection(), durable.ErrCrashed) {
		t.Fatalf("LastRejection = %v, want ErrCrashed", rt.LastRejection())
	}
	if rt.Table("edge").Contains(datalog.Tuple{int64(5), int64(2)}) {
		t.Fatal("unjournaled mutation not rolled back")
	}
	// The store has latched failed: later effectful ticks are rejected too,
	// but the node itself keeps running.
	mutTick(t, rt, "edge", "ins", 6, 2)
	if got := rt.Stats().Rejected; got != 2 {
		t.Fatalf("Rejected = %d, want 2 (store failed, ticks refused)", got)
	}
	if store.Failed() == nil {
		t.Fatal("store must latch failure after the torn append")
	}

	// Restart: the torn record is truncated, the two committed ticks replay.
	fs.Revive()
	rt2, store2 := durableRuntime(t, fs, reachQueries(t))
	defer store2.Close()
	if got := store2.LastSeq(); got != 2 {
		t.Fatalf("recovered LastSeq = %d, want 2", got)
	}
	if !rt2.Table("reach").Contains(datalog.Tuple{int64(1), int64(7)}) || rt2.Table("reach").Len() != 1 {
		t.Fatalf("recovered fixpoint wrong: reach = %v", rt2.Table("reach").Tuples())
	}
}

// stubSink records the durability protocol calls the tick loop makes.
type stubSink struct {
	calls   []string
	lastOps int
}

func (s *stubSink) Append(d *datalog.Delta) error {
	s.calls = append(s.calls, "append")
	s.lastOps = len(d.Ops())
	return nil
}
func (s *stubSink) AbortLast() error {
	s.calls = append(s.calls, "abort")
	return nil
}
func (s *stubSink) Committed(inc *datalog.Incremental) error {
	if inc == nil {
		return fmt.Errorf("Committed called with nil evaluator")
	}
	s.calls = append(s.calls, "committed")
	return nil
}

// TestDurabilityProtocolOrder pins the sink contract: append before apply,
// committed after, nothing for no-effect ticks, and incremental mode
// required to attach at all.
func TestDurabilityProtocolOrder(t *testing.T) {
	rt := New("n1", 1)
	rt.SetDelay(fixedDelay)
	rt.RegisterTable(TableSchema{Name: "edge", Arity: 2})
	sink := &stubSink{}
	if err := rt.SetDurability(sink); err == nil {
		t.Fatal("SetDurability must require incremental query mode")
	}
	if err := rt.RegisterQueriesIncremental(tcQueries(t)); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetDurability(sink); err != nil {
		t.Fatal(err)
	}

	rt.RegisterHandler("add", func(tx *Tx, msg Message) { tx.MergeTuple("edge", msg.Payload) })
	rt.RegisterHandler("noop", func(tx *Tx, msg Message) { tx.Assign("x", int64(1)) })
	rt.RegisterVar("x", int64(0))

	rt.Inject("add", datalog.Tuple{"a", "b"})
	rt.Tick()
	if got := fmt.Sprint(sink.calls); got != "[append committed]" {
		t.Fatalf("effectful tick drove sink calls %v, want [append committed]", sink.calls)
	}
	if sink.lastOps == 0 {
		t.Fatal("journaled delta carried no recorded ops")
	}

	sink.calls = nil
	rt.Inject("noop", datalog.Tuple{int64(0)})
	rt.Tick()
	if len(sink.calls) != 0 {
		t.Fatalf("no-table-effect tick drove sink calls %v", sink.calls)
	}
	if rt.Var("x") != int64(1) {
		t.Fatal("assign-only tick did not commit")
	}

	// Re-registering queries detaches the sink (its journal describes the
	// old evaluator's history).
	if err := rt.RegisterQueriesIncremental(tcQueries(t)); err != nil {
		t.Fatal(err)
	}
	sink.calls = nil
	rt.Inject("add", datalog.Tuple{"b", "c"})
	rt.Tick()
	if len(sink.calls) != 0 {
		t.Fatalf("detached sink still driven: %v", sink.calls)
	}
}
