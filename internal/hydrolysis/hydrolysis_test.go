package hydrolysis

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"hydro/internal/datalog"
	"hydro/internal/hlang"
	"hydro/internal/storage"
	"hydro/internal/transducer"
)

func covidUDFs() map[string]UDF {
	return map[string]UDF{
		// Deterministic stand-in for the paper's black-box ML model
		// (DESIGN.md §5 substitution).
		"covid_predict": func(args []any) any {
			pid := args[0].(int64)
			return float64(pid%100) / 100.0
		},
	}
}

func compileCovid(t testing.TB) *Compiled {
	t.Helper()
	c, err := Compile(hlang.CovidSource, Options{UDFs: covidUDFs()})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func newCovidRuntime(t testing.TB, seed int64) *transducer.Runtime {
	t.Helper()
	rt, err := compileCovid(t).Instantiate("n1", seed)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetDelay(func(r *rand.Rand) int { return 1 })
	return rt
}

func TestCompileCovidFacets(t *testing.T) {
	c := compileCovid(t)
	if c.Choices["vaccinate"].Mechanism.String() == "" {
		t.Fatal("no consistency choice for vaccinate")
	}
	if len(c.Layouts) != 2 {
		t.Fatalf("layouts = %v", c.Layouts)
	}
	// Key-lookup-heavy default workload should pick a keyed layout.
	if c.Layouts["people"].Layout == storage.LayoutHeap {
		t.Fatalf("people layout = %v", c.Layouts["people"])
	}
}

func TestMissingUDFRejectedAtCompileTime(t *testing.T) {
	if _, err := Compile(hlang.CovidSource, Options{}); err == nil {
		t.Fatal("compile must fail without covid_predict implementation")
	}
}

func TestHandlersEndToEnd(t *testing.T) {
	rt := newCovidRuntime(t, 1)
	rt.Inject("add_person", datalog.Tuple{int64(1), "us"})
	rt.Inject("add_person", datalog.Tuple{int64(2), "us"})
	rt.Inject("add_person", datalog.Tuple{int64(3), "fr"})
	rt.Tick()
	if rt.Table("people").Len() != 3 {
		t.Fatalf("people = %v", rt.Table("people").Tuples())
	}
	rt.Inject("add_contact", datalog.Tuple{int64(1), int64(2)})
	rt.Inject("add_contact", datalog.Tuple{int64(2), int64(3)})
	rt.Tick()
	if rt.Table("contacts").Len() != 4 { // symmetric merge
		t.Fatalf("contacts = %v", rt.Table("contacts").Tuples())
	}
	// diagnosed: flag + transitive alert fan-out.
	rt.Inject("diagnosed", datalog.Tuple{int64(1)})
	rt.RunUntilIdle(10)
	if !rt.Table("people").Contains(datalog.Tuple{int64(1), "us", true, false}) {
		t.Fatalf("covid flag not merged: %v", rt.Table("people").Tuples())
	}
	alerts := rt.Peek("alert")
	alerted := map[int64]bool{}
	for _, m := range alerts {
		alerted[m.Payload[0].(int64)] = true
	}
	if !alerted[2] || !alerted[3] {
		t.Fatalf("alerts = %v, want 2 and 3 (transitive)", alerts)
	}
}

func TestVaccinateInvariantAborts(t *testing.T) {
	src := `
table people(pid: int, vaccinated: bool) key(pid)
var vaccine_count: int = 1
on vaccinate(pid: int) consistency(serializable) require(vaccine_count > 0) {
    merge people[pid].vaccinated <- true
    vaccine_count := vaccine_count - 1
    reply "OK"
}
`
	c, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := c.Instantiate("n1", 1)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetDelay(func(r *rand.Rand) int { return 1 })
	// Two doses requested with one in stock — ticks serialize them.
	rt.Inject("vaccinate", datalog.Tuple{int64(1)})
	rt.Tick()
	rt.Inject("vaccinate", datalog.Tuple{int64(2)})
	rt.Tick()
	if got := rt.Var("vaccine_count").(int64); got != 0 {
		t.Fatalf("vaccine_count = %d, want 0 (invariant enforced)", got)
	}
	if rt.Stats().Aborted != 1 {
		t.Fatalf("aborted = %d, want 1", rt.Stats().Aborted)
	}
	if rt.Table("people").Contains(datalog.Tuple{int64(2), true}) {
		t.Fatal("aborted vaccination leaked state")
	}
}

func TestUDFCalledThroughReply(t *testing.T) {
	rt := newCovidRuntime(t, 2)
	rt.Inject("add_person", datalog.Tuple{int64(42), "us"})
	rt.Tick()
	id := rt.Inject("likelihood", datalog.Tuple{int64(42)})
	rt.Tick()
	rt.Tick()
	resp := rt.Drain("likelihood<response>")
	if len(resp) != 1 || resp[0].Payload[0] != id {
		t.Fatalf("responses = %v", resp)
	}
	if resp[0].Payload[1] != 0.42 {
		t.Fatalf("likelihood = %v, want 0.42", resp[0].Payload[1])
	}
}

func TestQueryFiltersCompile(t *testing.T) {
	src := `
table nums(n: int)
query big(n) :- nums(n), n > 5
on add(n: int) { merge nums(n) }
`
	c, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt, _ := c.Instantiate("n1", 1)
	for i := int64(0); i < 10; i++ {
		rt.Inject("add", datalog.Tuple{i})
	}
	rt.Tick()
	rt.Tick() // queries evaluate against the snapshot including inserts
	var got []datalog.Tuple
	rt.RegisterHandler("probe", func(tx *transducer.Tx, msg transducer.Message) {
		got = tx.Query("big")
	})
	rt.Inject("probe", datalog.Tuple{})
	rt.Tick()
	if len(got) != 4 {
		t.Fatalf("big = %v, want 4 rows (6..9)", got)
	}
}

func TestDeleteStmtCompiles(t *testing.T) {
	src := `
table sessions(id: int, user: string) key(id)
on open(id: int, user: string) { merge sessions(id, user) }
on expire(id: int) { delete sessions(id) }
`
	c, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt, _ := c.Instantiate("n1", 1)
	rt.Inject("open", datalog.Tuple{int64(1), "ann"})
	rt.Inject("open", datalog.Tuple{int64(2), "bob"})
	rt.Tick()
	rt.Inject("expire", datalog.Tuple{int64(1)})
	rt.Tick()
	if rt.Table("sessions").Len() != 1 {
		t.Fatalf("sessions = %v", rt.Table("sessions").Tuples())
	}
}

func TestWildcardsInQueries(t *testing.T) {
	src := `
table edge(a: int, b: int) key(a, b)
query sources(x) :- edge(x, _)
on add(a: int, b: int) { merge edge(a, b) }
`
	c, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt, _ := c.Instantiate("n1", 1)
	rt.Inject("add", datalog.Tuple{int64(1), int64(2)})
	rt.Inject("add", datalog.Tuple{int64(1), int64(3)})
	rt.Tick()
	var got []datalog.Tuple
	rt.RegisterHandler("probe", func(tx *transducer.Tx, msg transducer.Message) {
		got = tx.Query("sources")
	})
	rt.Inject("probe", datalog.Tuple{})
	rt.Tick()
	if len(got) != 1 {
		t.Fatalf("sources = %v, want deduplicated single row", got)
	}
}

// --- E1: sequential reference vs compiled HydroLogic (Fig 2 ≡ Fig 3) ---

// seqCovid is a direct sequential implementation of Fig 2's pseudocode.
type seqCovid struct {
	people  map[int64]*seqPerson
	vaccine int64
	alerts  map[int64]bool
}

type seqPerson struct {
	country    string
	contacts   map[int64]bool
	covid      bool
	vaccinated bool
}

func newSeqCovid() *seqCovid {
	return &seqCovid{people: map[int64]*seqPerson{}, vaccine: 100, alerts: map[int64]bool{}}
}

func (s *seqCovid) addPerson(pid int64, country string) {
	if _, ok := s.people[pid]; !ok {
		s.people[pid] = &seqPerson{country: country, contacts: map[int64]bool{}}
	}
}

func (s *seqCovid) addContact(a, b int64) {
	s.addPersonIfMissing(a)
	s.addPersonIfMissing(b)
	s.people[a].contacts[b] = true
	s.people[b].contacts[a] = true
}

func (s *seqCovid) addPersonIfMissing(pid int64) {
	if _, ok := s.people[pid]; !ok {
		s.people[pid] = &seqPerson{contacts: map[int64]bool{}}
	}
}

func (s *seqCovid) trace(pid int64) []int64 {
	seen := map[int64]bool{}
	stack := []int64{pid}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		p, ok := s.people[cur]
		if !ok {
			continue
		}
		for c := range p.contacts {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	delete(seen, pid)
	var out []int64
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s *seqCovid) diagnosed(pid int64) {
	s.addPersonIfMissing(pid)
	s.people[pid].covid = true
	for _, c := range s.trace(pid) {
		s.alerts[c] = true
	}
}

func (s *seqCovid) vaccinate(pid int64) bool {
	if s.vaccine < 0 {
		return false
	}
	s.addPersonIfMissing(pid)
	s.people[pid].vaccinated = true
	s.vaccine--
	return true
}

// TestCovidIncrementalMatchesFull drives identical random op streams
// through a full-eval and an incremental instantiation of the COVID app
// and requires the observable state — tables, derived trace responses,
// alert fan-outs — to agree. Combined with TestE1CovidEquivalence this
// ties the incremental runtime back to the Fig-2 sequential reference.
func TestCovidIncrementalMatchesFull(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		c := compileCovid(t)
		full, err := c.InstantiateFullEval("n1", seed)
		if err != nil {
			t.Fatal(err)
		}
		incr, err := c.InstantiateIncremental("n1", seed)
		if err != nil {
			t.Fatal(err)
		}
		full.SetDelay(func(r *rand.Rand) int { return 1 })
		incr.SetDelay(func(r *rand.Rand) int { return 1 })
		r := rand.New(rand.NewSource(seed))
		inject := func(box string, payload datalog.Tuple) {
			full.Inject(box, payload)
			incr.Inject(box, payload)
		}
		for i := 0; i < 50; i++ {
			switch r.Intn(5) {
			case 0:
				inject("add_person", datalog.Tuple{int64(r.Intn(10)), []string{"us", "fr"}[r.Intn(2)]})
			case 1:
				inject("add_contact", datalog.Tuple{int64(r.Intn(10)), int64(r.Intn(10))})
			case 2:
				inject("diagnosed", datalog.Tuple{int64(r.Intn(10))})
			case 3:
				inject("vaccinate", datalog.Tuple{int64(r.Intn(10))})
			case 4:
				inject("trace", datalog.Tuple{int64(r.Intn(10))})
			}
			full.RunUntilIdle(20)
			incr.RunUntilIdle(20)
		}
		for _, table := range []string{"people", "contacts"} {
			f, n := full.Table(table).Tuples(), incr.Table(table).Tuples()
			if fmt.Sprint(f) != fmt.Sprint(n) {
				t.Fatalf("seed %d: table %s diverges\nfull: %v\nincr: %v", seed, table, f, n)
			}
		}
		// Sends are unordered within a tick (the two modes enumerate
		// derived rows in different, individually deterministic orders),
		// so mailboxes compare as payload multisets.
		payloads := func(msgs []transducer.Message) []string {
			out := make([]string, len(msgs))
			for i, m := range msgs {
				out[i] = fmt.Sprint(m.Payload)
			}
			sort.Strings(out)
			return out
		}
		for _, box := range []string{"alert", "trace_response"} {
			f, n := payloads(full.Drain(box)), payloads(incr.Drain(box))
			if fmt.Sprint(f) != fmt.Sprint(n) {
				t.Fatalf("seed %d: mailbox %s diverges\nfull: %v\nincr: %v", seed, box, f, n)
			}
		}
		if full.Var("vaccine_count") != incr.Var("vaccine_count") {
			t.Fatalf("seed %d: vaccine_count %v vs %v", seed, full.Var("vaccine_count"), incr.Var("vaccine_count"))
		}
	}
}

// TestE1CovidEquivalence drives random operation sequences through the
// sequential reference and the compiled HydroLogic program and checks that
// the observable state converges to the same values.
func TestE1CovidEquivalence(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		seq := newSeqCovid()
		rt := newCovidRuntime(t, seed)

		people := map[int64]string{}
		for i := 0; i < 60; i++ {
			switch r.Intn(4) {
			case 0:
				pid := int64(r.Intn(12))
				country := []string{"us", "fr", "in"}[r.Intn(3)]
				if _, dup := people[pid]; dup {
					continue // sequential map keeps first country; skip dup adds
				}
				people[pid] = country
				seq.addPerson(pid, country)
				rt.Inject("add_person", datalog.Tuple{pid, country})
			case 1:
				a, b := int64(r.Intn(12)), int64(r.Intn(12))
				if a == b {
					continue
				}
				seq.addContact(a, b)
				rt.Inject("add_contact", datalog.Tuple{a, b})
			case 2:
				pid := int64(r.Intn(12))
				seq.diagnosed(pid)
				rt.Inject("diagnosed", datalog.Tuple{pid})
			case 3:
				pid := int64(r.Intn(12))
				seq.vaccinate(pid)
				rt.Inject("vaccinate", datalog.Tuple{pid})
			}
			// Let the transducer settle between ops so tick interleavings
			// do not change the fixpoint (monotone ops make this safe).
			rt.RunUntilIdle(20)
		}
		rt.RunUntilIdle(50)

		// Compare covid flags and vaccination state per person.
		for _, row := range rt.Table("people").Tuples() {
			pid := row[0].(int64)
			sp, ok := seq.people[pid]
			if !ok {
				t.Fatalf("seed %d: hydro created phantom person %d", seed, pid)
			}
			if row[2].(bool) != sp.covid {
				t.Fatalf("seed %d: covid flag mismatch for %d: hydro=%v seq=%v", seed, pid, row[2], sp.covid)
			}
			if row[3].(bool) != sp.vaccinated {
				t.Fatalf("seed %d: vaccinated mismatch for %d", seed, pid)
			}
		}
		if got := rt.Var("vaccine_count").(int64); got != seq.vaccine {
			t.Fatalf("seed %d: vaccine_count hydro=%d seq=%d", seed, got, seq.vaccine)
		}
		// Alerts: hydro accumulates them in the alert mailbox.
		hydroAlerts := map[int64]bool{}
		for _, m := range rt.Peek("alert") {
			hydroAlerts[m.Payload[0].(int64)] = true
		}
		for pid := range seq.alerts {
			if !hydroAlerts[pid] {
				t.Fatalf("seed %d: missing alert for %d", seed, pid)
			}
		}
	}
}

func TestInstantiateDeterministic(t *testing.T) {
	run := func() string {
		rt := newCovidRuntime(t, 7)
		for i := int64(0); i < 5; i++ {
			rt.Inject("add_person", datalog.Tuple{i, "us"})
			rt.Inject("add_contact", datalog.Tuple{i, (i + 1) % 5})
		}
		rt.Inject("diagnosed", datalog.Tuple{int64(0)})
		rt.RunUntilIdle(30)
		return fmt.Sprint(rt.Table("people").Tuples(), rt.Table("contacts").Len(), len(rt.Peek("alert")))
	}
	if run() != run() {
		t.Fatal("compiled program is not deterministic under a fixed seed")
	}
}
