package hydrolysis

import (
	"fmt"

	"hydro/internal/cluster"
	"hydro/internal/shard"
	"hydro/internal/target"
)

// InstantiateSharded deploys the compiled program's query rules as a
// distributed dataflow: n replicas are chosen from the cluster's topology
// by the Fig-3 deployment ILP (cheapest machines subject to AZ spread,
// target.PlaceReplicas), every declared table becomes a hash-partitioned
// base relation using the program's partition plan (the declared
// `partition(col)` hint, else the table key) as the placement hint, and
// the query fixpoint is maintained across the replicas by the shard
// coordinator. The returned deployment accepts base ticks via Submit and
// converges to exactly the fixpoint a single-node Instantiate would hold.
func (c *Compiled) InstantiateSharded(cl *cluster.Cluster, name string, n int, opts shard.Options) (*shard.Deployment, error) {
	if c.Queries == nil {
		return nil, fmt.Errorf("hydrolysis: program has no query rules to shard")
	}
	machines, err := target.PlaceReplicas(cl.Topo, n)
	if err != nil {
		return nil, err
	}
	edb := map[string]int{}
	declared := map[string]int{}
	for _, t := range c.Program.Tables {
		edb[t.Name] = t.Arity()
	}
	for table, e := range c.PartitionPlan() {
		if e.ColIdx >= 0 {
			declared[table] = e.ColIdx
		}
	}
	if opts.Declared == nil {
		opts.Declared = declared
	}
	return shard.Deploy(cl, name, c.Queries, edb, machines, opts)
}
