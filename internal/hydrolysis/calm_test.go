package hydrolysis

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"hydro/internal/datalog"
)

// Runtime-level CALM property (§1.2): a program using only monotone
// handlers reaches the same final state regardless of message arrival
// order and network delays. This is the executable counterpart of the
// static classification in hlang.Analyze.

const monotoneSrc = `
table edge(a: int, b: int) key(a, b)
table flagged(id: int, hot: bool) key(id)
query reach(x, y) :- edge(x, y)
query reach(x, z) :- reach(x, y), edge(y, z)
on link(a: int, b: int) {
    merge edge(a, b)
}
on flag(id: int) {
    merge flagged[id].hot <- true
}
on probe(src: int) {
    send reached(y) :- reach(src, y)
}
`

type op struct {
	handler string
	args    datalog.Tuple
}

func randomOps(r *rand.Rand, n int) []op {
	ops := make([]op, n)
	for i := range ops {
		switch r.Intn(3) {
		case 0:
			ops[i] = op{"link", datalog.Tuple{int64(r.Intn(6)), int64(r.Intn(6))}}
		case 1:
			ops[i] = op{"flag", datalog.Tuple{int64(r.Intn(6))}}
		case 2:
			ops[i] = op{"probe", datalog.Tuple{int64(r.Intn(6))}}
		}
	}
	return ops
}

func runWithSchedule(t testing.TB, ops []op, perm []int, delaySeed int64) (string, int) {
	c, err := Compile(monotoneSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := c.Instantiate("n", delaySeed)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetDelay(func(r *rand.Rand) int { return 1 + r.Intn(4) }) // jittery delivery
	for _, idx := range perm {
		o := ops[idx]
		rt.Inject(o.handler, o.args)
		rt.Tick()
	}
	rt.RunUntilIdle(100)
	state := fmt.Sprint(rt.Table("edge").Tuples(), rt.Table("flagged").Tuples())
	// The reached mailbox accumulates query results; as a set it must also
	// be order-independent *for the final probe coverage*, but intermediate
	// probes legitimately see prefixes — so compare mutation state plus
	// the final derived closure only.
	final := rt.Table("edge").Clone()
	return state, final.Len()
}

func TestCALMOrderIndependenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ops := randomOps(r, 15)
		identity := make([]int, len(ops))
		for i := range identity {
			identity[i] = i
		}
		shuffled := append([]int{}, identity...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

		s1, _ := runWithSchedule(t, ops, identity, 1)
		s2, _ := runWithSchedule(t, ops, shuffled, 99)
		return s1 == s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// The contrast case: a non-monotone program (assignment) IS sensitive to
// order, which is exactly why the analyzer flags it for coordination.
func TestNonMonotoneOrderSensitivity(t *testing.T) {
	src := `
var last: int = 0
on set(v: int) { last := v }
`
	run := func(vals []int64) any {
		c, err := Compile(src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rt, _ := c.Instantiate("n", 1)
		for _, v := range vals {
			rt.Inject("set", datalog.Tuple{v})
			rt.Tick()
		}
		return rt.Var("last")
	}
	a := run([]int64{1, 2})
	b := run([]int64{2, 1})
	if a == b {
		t.Fatal("overwrites should be order-sensitive; analyzer must keep flagging them")
	}
}
