// Package hydrolysis is the Hydro compiler (§2.2): it takes a HydroLogic
// program and produces everything needed to run it — datalog rules for the
// query facet, executable handler closures for the transducer runtime,
// physical layouts from the Chestnut synthesizer, consistency-mechanism
// choices from CALM analysis, an availability placement plan, and a target-
// facet deployment plan. Each facet compiles independently and the results
// compose, exactly the faceted-compilation structure §2.2 argues for.
package hydrolysis

import (
	"fmt"

	"hydro/internal/chestnut"
	"hydro/internal/consistency"
	"hydro/internal/datalog"
	"hydro/internal/hlang"
)

// UDF is a registered black-box function implementation.
type UDF func(args []any) any

// Compiled is the output of Compile: a deployable program description.
type Compiled struct {
	Program  *hlang.Program
	Analysis *hlang.Analysis
	// Queries is the datalog program evaluated to fixpoint each tick.
	Queries *datalog.Program
	// Choices maps handler → consistency mechanism choice (§7.2).
	Choices map[string]consistency.Choice
	// Layouts maps table → synthesized physical design (§5).
	Layouts map[string]chestnut.Design
	// UDFs holds the user-supplied implementations.
	UDFs map[string]UDF
}

// Options configures compilation.
type Options struct {
	// UDFs supplies implementations for declared UDFs. Missing UDFs
	// compile to an error at build time, not call time.
	UDFs map[string]UDF
	// Workloads optionally supplies per-table workload profiles for the
	// layout synthesizer; absent tables get a key-lookup-heavy default.
	Workloads map[string]chestnut.Workload
}

// Compile parses, checks, analyzes and compiles a HydroLogic source text.
func Compile(src string, opts Options) (*Compiled, error) {
	prog, err := hlang.Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileProgram(prog, opts)
}

// CompileProgram compiles an already-parsed program.
func CompileProgram(prog *hlang.Program, opts Options) (*Compiled, error) {
	for _, u := range prog.UDFs {
		if _, ok := opts.UDFs[u.Name]; !ok {
			return nil, fmt.Errorf("hydrolysis: no implementation supplied for udf %q", u.Name)
		}
	}
	analysis := hlang.Analyze(prog)
	rules, err := QueriesToDatalog(prog)
	if err != nil {
		return nil, err
	}
	c := &Compiled{
		Program:  prog,
		Analysis: analysis,
		Queries:  rules,
		Choices:  consistency.Select(prog, analysis),
		Layouts:  map[string]chestnut.Design{},
		UDFs:     opts.UDFs,
	}
	// Data-model facet: synthesize a layout per table.
	for _, t := range prog.Tables {
		w, ok := opts.Workloads[t.Name]
		if !ok {
			w = chestnut.Workload{
				TableRows:    10000,
				PointLookups: map[string]float64{t.Key[0]: 100},
				Inserts:      10,
			}
		}
		var nonKey []string
		for _, f := range t.Fields {
			if f.Name != t.Key[0] {
				nonKey = append(nonKey, f.Name)
			}
		}
		c.Layouts[t.Name] = chestnut.Best(t.Key[0], nonKey, w)
	}
	return c, nil
}

// PartitionEntry describes how one table scatters across shards (§5's
// "declarations for data placement across nodes").
type PartitionEntry struct {
	Table string
	// Column is the partition column: the declared hint, or the first key
	// column when no hint was given (the paper: "HydroLogic uses the
	// class's unique id to partition by default").
	Column string
	// Hinted reports whether the programmer supplied the column.
	Hinted bool
	// ColIdx is Column's index in the table schema.
	ColIdx int
}

// PartitionPlan derives the sharding plan for every table. Shard routing is
// hash(column value) mod nShards; the cluster substrate and the flow
// Exchange operator both consume this.
func (c *Compiled) PartitionPlan() map[string]PartitionEntry {
	out := map[string]PartitionEntry{}
	for _, t := range c.Program.Tables {
		e := PartitionEntry{Table: t.Name}
		if t.Partition != "" {
			e.Column, e.Hinted = t.Partition, true
		} else {
			e.Column = t.Key[0]
		}
		e.ColIdx = t.FieldIndex(e.Column)
		out[t.Name] = e
	}
	return out
}

// QueriesToDatalog lowers the program's query rules to the datalog engine's
// rule form.
func QueriesToDatalog(p *hlang.Program) (*datalog.Program, error) {
	var rules []datalog.Rule
	for _, q := range p.Queries {
		r, err := queryToRule(q)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return datalog.NewProgram(rules...)
}

var wildcardCounter int

func argToTerm(a hlang.QueryArg) (datalog.Term, error) {
	switch {
	case a.Wildcard:
		// Fresh variable per wildcard keeps them independent.
		wildcardCounter++
		return datalog.V(fmt.Sprintf("_w%d", wildcardCounter)), nil
	case a.Var != "":
		return datalog.V(a.Var), nil
	default:
		v, err := constExpr(a.Const)
		if err != nil {
			return datalog.Term{}, err
		}
		return datalog.C(v), nil
	}
}

func constExpr(e hlang.Expr) (any, error) {
	switch x := e.(type) {
	case *hlang.IntLit:
		return x.V, nil
	case *hlang.FloatLit:
		return x.V, nil
	case *hlang.StringLit:
		return x.V, nil
	case *hlang.BoolLit:
		return x.V, nil
	}
	return nil, fmt.Errorf("hydrolysis: expression %s is not a constant", e)
}

func queryToRule(q *hlang.QueryRule) (datalog.Rule, error) {
	r := datalog.Rule{Head: datalog.Atom{Pred: q.Name}}
	for _, a := range q.Head {
		t, err := argToTerm(a)
		if err != nil {
			return r, err
		}
		r.Head.Args = append(r.Head.Args, t)
	}
	for _, b := range q.Body {
		lit := datalog.Literal{Atom: datalog.Atom{Pred: b.Pred}, Negated: b.Negated}
		for _, a := range b.Args {
			t, err := argToTerm(a)
			if err != nil {
				return r, err
			}
			lit.Args = append(lit.Args, t)
		}
		r.Body = append(r.Body, lit)
	}
	for _, f := range q.Filters {
		df, err := filterToDatalog(f)
		if err != nil {
			return r, err
		}
		r.Filters = append(r.Filters, df)
	}
	if q.Agg != "" {
		r.Agg = datalog.AggKind(q.Agg)
		r.AggVar = q.AggVar
	}
	return r, nil
}

// filterToDatalog lowers a comparison expression over rule variables.
func filterToDatalog(e hlang.Expr) (datalog.Filter, error) {
	bin, ok := e.(*hlang.BinExpr)
	if !ok {
		return datalog.Filter{}, fmt.Errorf("hydrolysis: query filter %s must be a comparison", e)
	}
	var op datalog.CmpOp
	switch bin.Op {
	case "==":
		op = datalog.OpEq
	case "!=":
		op = datalog.OpNe
	case "<":
		op = datalog.OpLt
	case "<=":
		op = datalog.OpLe
	case ">":
		op = datalog.OpGt
	case ">=":
		op = datalog.OpGe
	default:
		return datalog.Filter{}, fmt.Errorf("hydrolysis: unsupported filter operator %q", bin.Op)
	}
	toTerm := func(x hlang.Expr) (datalog.Term, error) {
		if v, ok := x.(*hlang.VarRef); ok {
			return datalog.V(v.Name), nil
		}
		c, err := constExpr(x)
		if err != nil {
			return datalog.Term{}, err
		}
		return datalog.C(c), nil
	}
	l, err := toTerm(bin.L)
	if err != nil {
		return datalog.Filter{}, err
	}
	r, err := toTerm(bin.R)
	if err != nil {
		return datalog.Filter{}, err
	}
	return datalog.Filter{Op: op, L: l, R: r}, nil
}
