package hydrolysis

import (
	"testing"

	"hydro/internal/datalog"
	"hydro/internal/hlang"
)

// probeFreeSource declares a recursive query that no handler ever reads:
// handlers only merge and reply. Eagerly maintaining `reach` would be pure
// overhead, so auto-instantiation must keep this program on lazy full eval.
const probeFreeSource = `
table links(a: int, b: int) key(a, b)

query reach(x, y) :- links(x, y)
query reach(x, z) :- reach(x, y), links(y, z)

on add_link(a: int, b: int) {
    merge links(a, b)
    reply "OK"
}
`

// TestProbeFreeProgramStaysFullEval is the regression gate for the
// compiler's probe-free detection: a program whose handlers never read a
// declared query head auto-instantiates in full-eval mode (lazy fixpoint,
// never computed), while a program that sends from a query head (the COVID
// example's trace/diagnosed handlers) still defaults to incremental
// maintenance. The explicit modes keep overriding the detection.
func TestProbeFreeProgramStaysFullEval(t *testing.T) {
	free, err := Compile(probeFreeSource, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !free.probeFree() {
		t.Fatal("probeFree() = false for a program with no query-reading handler")
	}
	rt, err := free.Instantiate("n1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if rt.IncrementalQueries() {
		t.Fatal("probe-free program was instantiated with eager incremental maintenance")
	}
	// The program still runs, and the derived relation is simply never
	// materialized outside tick snapshots.
	rt.Inject("add_link", datalog.Tuple{int64(1), int64(2)})
	rt.RunUntilIdle(10)
	if got := rt.Table("links").Len(); got != 1 {
		t.Fatalf("links = %d rows, want 1", got)
	}

	// Explicit incremental mode overrides the detection.
	rtInc, err := free.InstantiateIncremental("n2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rtInc.IncrementalQueries() {
		t.Fatal("InstantiateIncremental did not force incremental mode")
	}

	// The COVID program probes `transitive` from its trace/diagnosed
	// handlers: auto mode must keep it incremental.
	covid, err := Compile(hlang.CovidSource, Options{UDFs: map[string]UDF{
		"covid_predict": func(args []any) any { return 0.5 },
	}})
	if err != nil {
		t.Fatal(err)
	}
	if covid.probeFree() {
		t.Fatal("probeFree() = true for a program whose handlers send from a query head")
	}
	rtCovid, err := covid.Instantiate("n3", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rtCovid.IncrementalQueries() {
		t.Fatal("query-probing program lost incremental maintenance")
	}
}
