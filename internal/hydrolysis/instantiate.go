package hydrolysis

import (
	"fmt"
	"sort"

	"hydro/internal/datalog"
	"hydro/internal/hlang"
	"hydro/internal/transducer"
)

// evalMode selects how the compiled query program is registered with the
// runtime.
type evalMode int

const (
	// modeAuto prefers cross-tick incremental maintenance, falling back to
	// per-tick full evaluation when the program does not qualify.
	modeAuto evalMode = iota
	// modeIncremental requires incremental maintenance (error otherwise).
	modeIncremental
	// modeFullEval forces per-tick snapshot re-evaluation.
	modeFullEval
)

// Instantiate builds a runnable transducer for the compiled program: it
// registers table schemas (with lattice merges for lattice-typed columns),
// scalar variables, the query program, and one handler closure per `on`
// declaration. The returned runtime is the "single node" of §3.1;
// distributed deployments host several of these via the cluster package.
//
// The query program defaults to cross-tick incremental maintenance — the
// fixpoint is kept inside the runtime database and folded forward from each
// tick's realized effects (inserts through counted derivations or
// semi-naive propagation, deletions through DRed or per-component
// recompute) instead of being re-derived from a snapshot every tick. A
// program that does not qualify (a registered table collides with a derived
// predicate) falls back to per-tick full evaluation; InstantiateFullEval
// forces that mode explicitly.
//
// Evaluation parallelism is tuned on the compiled query program itself:
// c.Queries.SetParallelism(n) caps both the component-scheduler worker
// pool and the intra-component partition count (0 restores the
// GOMAXPROCS default, 1 forces fully serial evaluation); the runtime's
// ticks respect whatever the program is set to, snapshotting it once per
// evaluation.
//
// Trade-off: incremental mode maintains every derived relation eagerly,
// whereas full-eval mode computes the fixpoint lazily only on ticks whose
// handlers actually read a query. The compiler resolves this automatically:
// a probe-free program — no handler construct ever reads the tick snapshot,
// so the lazy fixpoint is never triggered — stays on full evaluation (its
// fixpoint would otherwise be maintained but never consulted), and
// everything else defaults to incremental. A program whose handlers read
// queries only rarely is still better served by an explicit
// InstantiateFullEval.
func (c *Compiled) Instantiate(name string, seed int64) (*transducer.Runtime, error) {
	return c.instantiate(name, seed, modeAuto)
}

// probeFree reports whether no handler can ever trigger the per-tick
// query fixpoint. Full-eval laziness is all-or-nothing — every snapshot
// read (Tx.Query/QueryWhere/Derive) evaluates the whole query program, no
// matter which relation it targets — so the detection must be
// conservative: a handler counts as probing if it contains any construct
// that reads the snapshot at all (a rule-driven send, a keyed delete, a
// table-field read anywhere in an expression), not just ones naming a
// query head. Only then does lazy full-eval mean the fixpoint is truly
// never computed; anything else stays on incremental maintenance, where
// eager upkeep is O(delta) instead of O(fixpoint) per reading tick.
func (c *Compiled) probeFree() bool {
	if len(c.Program.Queries) == 0 {
		return true
	}
	for _, h := range c.Program.Handlers {
		for _, r := range h.Requires {
			if exprReadsSnapshot(r) {
				return false
			}
		}
		for _, s := range h.Body {
			switch st := s.(type) {
			case *hlang.SendStmt:
				if len(st.Body) > 0 {
					return false // rule-driven send derives against the snapshot
				}
			case *hlang.DeleteStmt:
				return false // delete-by-key looks the victim rows up in the snapshot
			case *hlang.MergeTupleStmt:
				for _, a := range st.Args {
					if exprReadsSnapshot(a) {
						return false
					}
				}
			case *hlang.MergeFieldStmt:
				if exprReadsSnapshot(st.Key) || exprReadsSnapshot(st.Value) {
					return false
				}
			case *hlang.AssignStmt:
				if exprReadsSnapshot(st.Value) {
					return false
				}
			case *hlang.ReplyStmt:
				if exprReadsSnapshot(st.Value) {
					return false
				}
			}
		}
	}
	return true
}

// exprReadsSnapshot reports whether evaluating the expression consults the
// tick snapshot: table-field reads do; literals, parameters, scalar vars
// and operators over them don't.
func exprReadsSnapshot(x hlang.Expr) bool {
	switch v := x.(type) {
	case *hlang.FieldRef:
		return true
	case *hlang.BinExpr:
		return exprReadsSnapshot(v.L) || exprReadsSnapshot(v.R)
	case *hlang.CallExpr:
		for _, a := range v.Args {
			if exprReadsSnapshot(a) {
				return true
			}
		}
	}
	return false
}

// InstantiateIncremental builds the runtime with the query program in
// cross-tick incremental mode, and errors if the program does not qualify
// (transducer.RegisterQueriesIncremental).
func (c *Compiled) InstantiateIncremental(name string, seed int64) (*transducer.Runtime, error) {
	return c.instantiate(name, seed, modeIncremental)
}

// InstantiateFullEval builds the runtime with per-tick snapshot
// re-evaluation — the pre-incremental execution model, kept for
// differential testing and as the fallback semantics reference.
func (c *Compiled) InstantiateFullEval(name string, seed int64) (*transducer.Runtime, error) {
	return c.instantiate(name, seed, modeFullEval)
}

func (c *Compiled) instantiate(name string, seed int64, mode evalMode) (*transducer.Runtime, error) {
	rt := transducer.New(name, seed)
	for _, t := range c.Program.Tables {
		schema, err := tableSchema(t)
		if err != nil {
			return nil, err
		}
		rt.RegisterTable(schema)
	}
	for _, v := range c.Program.Vars {
		var init any
		if v.Init != nil {
			val, err := constExpr(v.Init)
			if err != nil {
				return nil, fmt.Errorf("hydrolysis: var %s initializer: %w", v.Name, err)
			}
			init = val
		} else {
			init = zeroValue(v.Type)
		}
		rt.RegisterVar(v.Name, init)
	}
	switch mode {
	case modeIncremental:
		if err := rt.RegisterQueriesIncremental(c.Queries); err != nil {
			return nil, err
		}
	case modeAuto:
		if c.probeFree() {
			// No handler ever reads a query head: lazy full eval skips the
			// fixpoint entirely instead of maintaining it for nobody.
			rt.RegisterQueries(c.Queries)
		} else if err := rt.RegisterQueriesIncremental(c.Queries); err != nil {
			rt.RegisterQueries(c.Queries) // program doesn't qualify: full eval
		}
	default:
		rt.RegisterQueries(c.Queries)
	}
	for _, h := range c.Program.Handlers {
		handler, err := c.compileHandler(h)
		if err != nil {
			return nil, err
		}
		rt.RegisterHandler(h.Name, handler)
	}
	return rt, nil
}

func zeroValue(t hlang.Type) any {
	switch t.Kind {
	case hlang.TInt, hlang.TMaxInt:
		return int64(0)
	case hlang.TFloat:
		return float64(0)
	case hlang.TString:
		return ""
	case hlang.TBool:
		return false
	case hlang.TSet:
		return ""
	}
	return nil
}

func tableSchema(t *hlang.TableDecl) (transducer.TableSchema, error) {
	s := transducer.TableSchema{
		Name:         t.Name,
		Arity:        t.Arity(),
		LatticeMerge: map[int]func(a, b any) any{},
	}
	for _, k := range t.Key {
		s.Key = append(s.Key, t.FieldIndex(k))
	}
	for i, f := range t.Fields {
		switch f.Type.Kind {
		case hlang.TBool:
			s.LatticeMerge[i] = func(a, b any) any { return a.(bool) || b.(bool) }
		case hlang.TMaxInt:
			s.LatticeMerge[i] = func(a, b any) any {
				x, y := toInt64(a), toInt64(b)
				if x > y {
					return x
				}
				return y
			}
		}
	}
	fields := t.Fields
	s.Zero = func(key []any) datalog.Tuple {
		row := make(datalog.Tuple, len(fields))
		for i, f := range fields {
			row[i] = zeroValue(f.Type)
		}
		for ki, idx := range s.Key {
			row[idx] = key[ki]
		}
		return row
	}
	return s, nil
}

func toInt64(v any) int64 {
	switch x := v.(type) {
	case int64:
		return x
	case int:
		return int64(x)
	case float64:
		return int64(x)
	}
	return 0
}

// env is an expression-evaluation environment for one handler invocation.
type env struct {
	c         *Compiled
	tx        *transducer.Tx
	params    map[string]any
	sendPlans map[*hlang.SendStmt]*sendPlan
}

// sendPlan is a rule-driven send compiled once per handler: the datalog
// rule is planned at compile time with the handler's parameters declared as
// pre-bound variables, so per-message work is pure plan execution.
type sendPlan struct {
	pr     *datalog.PreparedRule
	params []string // parameter names the rule binds at message time
}

// prepareSend compiles a rule-driven send statement. Parameters stay
// variables (pre-bound at Derive time) instead of being substituted as
// constants per message, which is what lets the plan be reused.
func prepareSend(st *hlang.SendStmt, paramSet map[string]bool) (*sendPlan, error) {
	rule := datalog.Rule{Head: datalog.Atom{Pred: "__send"}}
	usedParams := map[string]bool{}
	bindArg := func(a hlang.QueryArg) (datalog.Term, error) {
		if a.Var != "" {
			if paramSet[a.Var] {
				usedParams[a.Var] = true
			}
			return datalog.V(a.Var), nil
		}
		return argToTerm(a)
	}
	for _, a := range st.Args {
		t, err := bindArg(a)
		if err != nil {
			return nil, err
		}
		rule.Head.Args = append(rule.Head.Args, t)
	}
	for _, b := range st.Body {
		lit := datalog.Literal{Atom: datalog.Atom{Pred: b.Pred}, Negated: b.Negated}
		for _, a := range b.Args {
			t, err := bindArg(a)
			if err != nil {
				return nil, err
			}
			lit.Args = append(lit.Args, t)
		}
		rule.Body = append(rule.Body, lit)
	}
	for _, f := range st.Filters {
		df, err := filterToDatalog(f)
		if err != nil {
			return nil, err
		}
		for _, term := range []datalog.Term{df.L, df.R} {
			if term.IsVar() && paramSet[term.Var] {
				usedParams[term.Var] = true
			}
		}
		rule.Filters = append(rule.Filters, df)
	}
	var bound []string
	for p := range usedParams {
		bound = append(bound, p)
	}
	sort.Strings(bound)
	pr, err := datalog.PrepareRule(rule, bound...)
	if err != nil {
		return nil, err
	}
	return &sendPlan{pr: pr, params: bound}, nil
}

func (c *Compiled) compileHandler(h *hlang.HandlerDecl) (transducer.Handler, error) {
	prog := c.Program
	// Pre-resolve statement metadata so per-message work is evaluation
	// only.
	type fieldMergeMeta struct {
		stmt   *hlang.MergeFieldStmt
		keyIdx []int
		colIdx int
	}
	var preErr error
	fieldMeta := map[*hlang.MergeFieldStmt]fieldMergeMeta{}
	for _, s := range h.Body {
		if fm, ok := s.(*hlang.MergeFieldStmt); ok {
			t := prog.Table(fm.Table)
			meta := fieldMergeMeta{stmt: fm, colIdx: t.FieldIndex(fm.Field)}
			for _, k := range t.Key {
				meta.keyIdx = append(meta.keyIdx, t.FieldIndex(k))
			}
			fieldMeta[fm] = meta
		}
	}
	if preErr != nil {
		return nil, preErr
	}
	// Compile rule-driven sends once per handler. On compile failure the
	// statement falls back to per-message rule construction, which surfaces
	// the same error at run time (matching the uncompiled behavior).
	paramSet := map[string]bool{}
	for _, p := range h.Params {
		paramSet[p.Name] = true
	}
	sendPlans := map[*hlang.SendStmt]*sendPlan{}
	for _, s := range h.Body {
		if st, ok := s.(*hlang.SendStmt); ok && len(st.Body) > 0 {
			if sp, err := prepareSend(st, paramSet); err == nil {
				sendPlans[st] = sp
			}
		}
	}

	return func(tx *transducer.Tx, msg transducer.Message) {
		params := map[string]any{}
		for i, p := range h.Params {
			if i < len(msg.Payload) {
				params[p.Name] = msg.Payload[i]
			}
		}
		e := &env{c: c, tx: tx, params: params, sendPlans: sendPlans}
		// require(...) invariants abort the whole invocation when false.
		for _, r := range h.Requires {
			v, err := e.eval(r)
			if err != nil || v != true {
				tx.Abort()
				tx.Reply("ABORT")
				return
			}
		}
		for _, s := range h.Body {
			if err := e.exec(s, fieldMetaLookup(fieldMeta, s)); err != nil {
				tx.Abort()
				tx.Reply("ERROR: " + err.Error())
				return
			}
		}
	}, nil
}

func fieldMetaLookup[M any](m map[*hlang.MergeFieldStmt]M, s hlang.Stmt) *M {
	if fm, ok := s.(*hlang.MergeFieldStmt); ok {
		if meta, ok := m[fm]; ok {
			return &meta
		}
	}
	return nil
}

func (e *env) exec(s hlang.Stmt, meta any) error {
	switch st := s.(type) {
	case *hlang.MergeTupleStmt:
		row := make(datalog.Tuple, len(st.Args))
		for i, a := range st.Args {
			v, err := e.eval(a)
			if err != nil {
				return err
			}
			row[i] = v
		}
		e.tx.MergeTuple(st.Table, row)
	case *hlang.MergeFieldStmt:
		t := e.c.Program.Table(st.Table)
		keyVal, err := e.eval(st.Key)
		if err != nil {
			return err
		}
		val, err := e.eval(st.Value)
		if err != nil {
			return err
		}
		// Single-column keys use the key expression directly; composite
		// keys are not addressable by a single [expr].
		if len(t.Key) != 1 {
			return fmt.Errorf("field merge on composite-key table %s", st.Table)
		}
		e.tx.MergeField(st.Table, []any{keyVal}, t.FieldIndex(st.Field), val)
	case *hlang.AssignStmt:
		v, err := e.eval(st.Value)
		if err != nil {
			return err
		}
		e.tx.Assign(st.Var, v)
	case *hlang.DeleteStmt:
		t := e.c.Program.Table(st.Table)
		// Delete by key: find matching rows in the snapshot and stage
		// deletions.
		keyVals := make([]any, len(st.Args))
		for i, a := range st.Args {
			v, err := e.eval(a)
			if err != nil {
				return err
			}
			keyVals[i] = v
		}
		var keyIdx []int
		for _, k := range t.Key {
			keyIdx = append(keyIdx, t.FieldIndex(k))
		}
		for _, row := range e.tx.QueryWhere(st.Table, keyIdx, keyVals) {
			e.tx.Delete(st.Table, row)
		}
	case *hlang.SendStmt:
		return e.execSend(st)
	case *hlang.ReplyStmt:
		v, err := e.eval(st.Value)
		if err != nil {
			return err
		}
		e.tx.Reply(v)
	default:
		return fmt.Errorf("hydrolysis: unknown statement %T", s)
	}
	return nil
}

// execSend handles both plain sends and rule-driven sends.
func (e *env) execSend(st *hlang.SendStmt) error {
	if len(st.Body) == 0 {
		row := make(datalog.Tuple, len(st.Args))
		for i, a := range st.Args {
			v, err := e.queryArgValue(a)
			if err != nil {
				return err
			}
			row[i] = v
		}
		e.tx.Send(st.Mailbox, row)
		return nil
	}
	// Fast path: the rule was compiled at handler-compile time; bind the
	// parameters and execute the plan.
	if sp := e.sendPlans[st]; sp != nil {
		complete := true
		for _, p := range sp.params {
			if _, ok := e.params[p]; !ok {
				complete = false // short payload; fall back
				break
			}
		}
		if complete {
			rows, err := e.tx.DerivePrepared(sp.pr, e.params)
			if err != nil {
				return err
			}
			for _, row := range rows {
				e.tx.Send(st.Mailbox, row)
			}
			return nil
		}
	}
	// Fallback: build a one-off datalog rule with handler params bound
	// as constants, then derive against the snapshot.
	rule := datalog.Rule{Head: datalog.Atom{Pred: "__send"}}
	bindArg := func(a hlang.QueryArg) (datalog.Term, error) {
		if a.Var != "" {
			if v, ok := e.params[a.Var]; ok {
				return datalog.C(v), nil
			}
			return datalog.V(a.Var), nil
		}
		return argToTerm(a)
	}
	for _, a := range st.Args {
		t, err := bindArg(a)
		if err != nil {
			return err
		}
		rule.Head.Args = append(rule.Head.Args, t)
	}
	for _, b := range st.Body {
		lit := datalog.Literal{Atom: datalog.Atom{Pred: b.Pred}, Negated: b.Negated}
		for _, a := range b.Args {
			t, err := bindArg(a)
			if err != nil {
				return err
			}
			lit.Args = append(lit.Args, t)
		}
		rule.Body = append(rule.Body, lit)
	}
	for _, f := range st.Filters {
		df, err := filterToDatalog(f)
		if err != nil {
			return err
		}
		// Bind param vars in filters too.
		for _, term := range []*datalog.Term{&df.L, &df.R} {
			if term.IsVar() {
				if v, ok := e.params[term.Var]; ok {
					*term = datalog.C(v)
				}
			}
		}
		rule.Filters = append(rule.Filters, df)
	}
	rows, err := e.tx.Derive(rule)
	if err != nil {
		return err
	}
	for _, row := range rows {
		e.tx.Send(st.Mailbox, row)
	}
	return nil
}

func (e *env) queryArgValue(a hlang.QueryArg) (any, error) {
	if a.Var != "" {
		if v, ok := e.params[a.Var]; ok {
			return v, nil
		}
		return e.eval(&hlang.VarRef{Name: a.Var})
	}
	return constExpr(a.Const)
}

// eval evaluates a handler expression against the snapshot.
func (e *env) eval(x hlang.Expr) (any, error) {
	switch v := x.(type) {
	case *hlang.IntLit:
		return v.V, nil
	case *hlang.FloatLit:
		return v.V, nil
	case *hlang.StringLit:
		return v.V, nil
	case *hlang.BoolLit:
		return v.V, nil
	case *hlang.VarRef:
		if p, ok := e.params[v.Name]; ok {
			return p, nil
		}
		if e.c.Program.Var(v.Name) != nil {
			return e.tx.ReadVar(v.Name), nil
		}
		return nil, fmt.Errorf("unknown name %q", v.Name)
	case *hlang.FieldRef:
		t := e.c.Program.Table(v.Table)
		if len(t.Key) != 1 {
			return nil, fmt.Errorf("field read on composite-key table %s", v.Table)
		}
		key, err := e.eval(v.Key)
		if err != nil {
			return nil, err
		}
		rows := e.tx.QueryWhere(v.Table, []int{t.FieldIndex(t.Key[0])}, []any{key})
		if len(rows) == 0 {
			return zeroValue(t.Fields[t.FieldIndex(v.Field)].Type), nil
		}
		return rows[0][t.FieldIndex(v.Field)], nil
	case *hlang.CallExpr:
		fn := e.c.UDFs[v.Func]
		args := make([]any, len(v.Args))
		for i, a := range v.Args {
			val, err := e.eval(a)
			if err != nil {
				return nil, err
			}
			args[i] = val
		}
		return fn(args), nil
	case *hlang.BinExpr:
		return e.evalBin(v)
	}
	return nil, fmt.Errorf("unsupported expression %T", x)
}

func (e *env) evalBin(b *hlang.BinExpr) (any, error) {
	l, err := e.eval(b.L)
	if err != nil {
		return nil, err
	}
	// Short-circuit boolean operators.
	if b.Op == "&&" || b.Op == "||" {
		lb, ok := l.(bool)
		if !ok {
			return nil, fmt.Errorf("non-boolean operand for %s", b.Op)
		}
		if b.Op == "&&" && !lb {
			return false, nil
		}
		if b.Op == "||" && lb {
			return true, nil
		}
		r, err := e.eval(b.R)
		if err != nil {
			return nil, err
		}
		rb, ok := r.(bool)
		if !ok {
			return nil, fmt.Errorf("non-boolean operand for %s", b.Op)
		}
		return rb, nil
	}
	r, err := e.eval(b.R)
	if err != nil {
		return nil, err
	}
	switch b.Op {
	case "+", "-", "*", "/":
		return arith(b.Op, l, r)
	case "==":
		return l == r, nil
	case "!=":
		return l != r, nil
	case "<", "<=", ">", ">=":
		return compare(b.Op, l, r)
	}
	return nil, fmt.Errorf("unknown operator %q", b.Op)
}

func numeric(v any) (float64, bool, bool) { // value, isFloat, ok
	switch x := v.(type) {
	case int64:
		return float64(x), false, true
	case int:
		return float64(x), false, true
	case float64:
		return x, true, true
	}
	return 0, false, false
}

func arith(op string, l, r any) (any, error) {
	lf, lIsF, lok := numeric(l)
	rf, rIsF, rok := numeric(r)
	if !lok || !rok {
		if op == "+" {
			ls, lok := l.(string)
			rs, rok := r.(string)
			if lok && rok {
				return ls + rs, nil
			}
		}
		return nil, fmt.Errorf("non-numeric operands for %s: %T, %T", op, l, r)
	}
	var out float64
	switch op {
	case "+":
		out = lf + rf
	case "-":
		out = lf - rf
	case "*":
		out = lf * rf
	case "/":
		if rf == 0 {
			return nil, fmt.Errorf("division by zero")
		}
		out = lf / rf
	}
	if lIsF || rIsF {
		return out, nil
	}
	return int64(out), nil
}

func compare(op string, l, r any) (any, error) {
	lf, _, lok := numeric(l)
	rf, _, rok := numeric(r)
	if lok && rok {
		switch op {
		case "<":
			return lf < rf, nil
		case "<=":
			return lf <= rf, nil
		case ">":
			return lf > rf, nil
		case ">=":
			return lf >= rf, nil
		}
	}
	ls, lok2 := l.(string)
	rs, rok2 := r.(string)
	if lok2 && rok2 {
		switch op {
		case "<":
			return ls < rs, nil
		case "<=":
			return ls <= rs, nil
		case ">":
			return ls > rs, nil
		case ">=":
			return ls >= rs, nil
		}
	}
	return nil, fmt.Errorf("incomparable operands for %s: %T, %T", op, l, r)
}
