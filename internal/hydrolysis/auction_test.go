package hydrolysis

import (
	"math/rand"
	"testing"

	"hydro/internal/consistency"
	"hydro/internal/datalog"
	"hydro/internal/hlang"
)

// A second full application: an auction house. It exercises compiler paths
// the COVID app does not — max-lattice columns, aggregate queries consumed
// by handlers, causal consistency, deletes, and the metaconsistency
// analysis across a send chain.
const auctionSrc = `
table item(id: int, reserve: int, highbid: max<int>, open: bool) key(id)
table bids(item: int, bidder: int, amount: int) key(item, bidder, amount)
var settled_count: int = 0

query top(item, max<amount>) :- bids(item, bidder, amount)
query qualified(item, bidder, amount) :- bids(item, bidder, amount), item(item, reserve, hb, open), amount >= reserve

on list(id: int, reserve: int) {
    merge item(id, reserve, 0, true)
    reply "LISTED"
}

on bid(item_id: int, bidder: int, amount: int) {
    merge bids(item_id, bidder, amount)
    merge item[item_id].highbid <- amount
    reply "BID"
}

on settle(id: int) consistency(serializable) {
    settled_count := settled_count + 1
    send notify_winner(b, amt) :- qualified(id, b, amt)
    delete item(id)
    reply "SETTLED"
}

on watch(id: int) consistency(causal) {
    send ticker(i, amt) :- top(i, amt), i == id
}

availability { default domain=dc failures=1 }
target { default latency=50ms cost=0.05 }
`

func compileAuction(t testing.TB) *Compiled {
	t.Helper()
	c, err := Compile(auctionSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAuctionFacets(t *testing.T) {
	c := compileAuction(t)
	// bid merges only lattice state → monotone, no coordination.
	if c.Choices["bid"].Mechanism != consistency.MechNone {
		t.Fatalf("bid: %+v", c.Choices["bid"])
	}
	// settle deletes and assigns → coordination; settled_count is private
	// to settle, but the delete touches item which bid writes… the var
	// analysis still finds settled_count private.
	if c.Choices["settle"].Mechanism != consistency.MechCoordination {
		t.Fatalf("settle: %+v", c.Choices["settle"])
	}
	// watch reads an aggregate → non-monotone, causal → lattice tier.
	if c.Choices["watch"].Mechanism != consistency.MechLattice {
		t.Fatalf("watch: %+v", c.Choices["watch"])
	}
	// Partition plan: no hints, so key columns.
	plan := c.PartitionPlan()
	if plan["item"].Column != "id" || plan["item"].Hinted {
		t.Fatalf("item partition = %+v", plan["item"])
	}
	if plan["bids"].ColIdx != 0 {
		t.Fatalf("bids partition = %+v", plan["bids"])
	}
}

func TestAuctionEndToEnd(t *testing.T) {
	c := compileAuction(t)
	rt, err := c.Instantiate("auction", 3)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetDelay(func(r *rand.Rand) int { return 1 })

	rt.Inject("list", datalog.Tuple{int64(1), int64(100)})
	rt.Tick()
	rt.Inject("bid", datalog.Tuple{int64(1), int64(7), int64(90)})  // below reserve
	rt.Inject("bid", datalog.Tuple{int64(1), int64(8), int64(120)}) // qualifies
	rt.Inject("bid", datalog.Tuple{int64(1), int64(9), int64(150)}) // qualifies, highest
	rt.RunUntilIdle(30)

	// The max-lattice column tracked the high bid.
	rows := rt.Table("item").Tuples()
	if len(rows) != 1 || rows[0][2] != int64(150) {
		t.Fatalf("item rows = %v", rows)
	}

	// Watch emits the top bid through the causal ticker.
	rt.Inject("watch", datalog.Tuple{int64(1)})
	rt.RunUntilIdle(30)
	ticks := rt.Drain("ticker")
	if len(ticks) != 1 || ticks[0].Payload[1] != int64(150) {
		t.Fatalf("ticker = %v", ticks)
	}

	// Settlement notifies only reserve-qualified bidders and deletes the
	// item atomically with the counter bump.
	rt.Inject("settle", datalog.Tuple{int64(1)})
	rt.RunUntilIdle(30)
	notes := rt.Drain("notify_winner")
	winners := map[int64]bool{}
	for _, m := range notes {
		winners[m.Payload[0].(int64)] = true
	}
	if winners[7] || !winners[8] || !winners[9] {
		t.Fatalf("winners = %v (reserve filter broken)", winners)
	}
	if rt.Table("item").Len() != 0 {
		t.Fatal("settled item not deleted")
	}
	if rt.Var("settled_count").(int64) != 1 {
		t.Fatalf("settled_count = %v", rt.Var("settled_count"))
	}
}

func TestAuctionMetaconsistency(t *testing.T) {
	c := compileAuction(t)
	// settle (serializable) sends to notify_winner, an external mailbox —
	// no handler, so no downgrade. The analysis must be clean.
	issues := consistency.CheckMeta(c.Program, c.Analysis)
	if len(issues) != 0 {
		t.Fatalf("unexpected metaconsistency issues: %v", issues)
	}
}

func TestAuctionFormatRoundTrip(t *testing.T) {
	p, err := hlang.Parse(auctionSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hlang.Parse(hlang.Format(p)); err != nil {
		t.Fatalf("auction program does not round-trip: %v", err)
	}
}
