// Package actor lifts the Actor model (Appendix A.1) onto the HydroLogic
// transducer: actors are keyed state plus handlers; spawning creates a new
// keyed instance; messages route through transducer mailboxes. The tricky
// part the appendix highlights — a synchronous mid-method receive — is
// implemented exactly as sketched: the actor parks a continuation and a
// `waiting` status, and the runtime buffers other inbound messages until
// the awaited one arrives (the "elided bookkeeping" of footnote 2).
//
// Actor behaviors themselves run as stateful UDFs, which §3.1 explicitly
// permits ("UDFs are black-box functions, and may keep internal state
// across invocations").
package actor

import (
	"fmt"

	"hydro/internal/datalog"
	"hydro/internal/transducer"
)

// Ctx is an actor's view of the system during one message delivery.
type Ctx struct {
	sys  *System
	tx   *transducer.Tx
	self ID
}

// ID identifies an actor instance.
type ID string

// Behavior reacts to one message.
type Behavior func(ctx *Ctx, msg any)

// actorState is the runtime record for one live actor.
type actorState struct {
	id       ID
	behavior Behavior
	// waitKey, when non-empty, is the mailbox key this actor is blocked
	// on; cont receives the awaited message.
	waitKey string
	cont    func(ctx *Ctx, msg any)
	// buffered holds messages that arrived while waiting.
	buffered []envelope
	stopped  bool
}

type envelope struct {
	key string
	msg any
}

// System hosts actors on one transducer runtime.
type System struct {
	rt     *transducer.Runtime
	actors map[ID]*actorState
	nextID uint64
	// Delivered counts messages processed (observability for E12).
	Delivered uint64
}

// NewSystem attaches an actor system to a runtime. Mailbox "actor" carries
// (actorID, key, payload) tuples.
func NewSystem(rt *transducer.Runtime) *System {
	s := &System{rt: rt, actors: map[ID]*actorState{}}
	rt.RegisterHandler("actor", func(tx *transducer.Tx, m transducer.Message) {
		id := ID(m.Payload[0].(string))
		key := m.Payload[1].(string)
		payload := m.Payload[2]
		s.deliver(tx, id, key, payload)
	})
	return s
}

// Spawn creates an actor with the given behavior, returning its ID. Spawning
// is immediate (the appendix: "creates a new Actor instance with a unique
// ID").
func (s *System) Spawn(b Behavior) ID {
	s.nextID++
	id := ID(fmt.Sprintf("actor-%d", s.nextID))
	s.actors[id] = &actorState{id: id, behavior: b}
	return id
}

// Send enqueues a message for an actor (asynchronous, delivered on a later
// tick through the transducer's send path).
func (s *System) Send(to ID, msg any) {
	s.rt.Inject("actor", datalog.Tuple{string(to), "", wrap(msg)})
}

// wrap boxes arbitrary payloads into something tuple-encodable. We keep a
// side channel for non-comparable values.
var payloadBox = map[uint64]any{}
var payloadSeq uint64

func wrap(msg any) any {
	switch msg.(type) {
	case string, int, int64, float64, bool:
		return msg
	default:
		payloadSeq++
		payloadBox[payloadSeq] = msg
		return fmt.Sprintf("__boxed:%d", payloadSeq)
	}
}

func unwrap(v any) any {
	if s, ok := v.(string); ok {
		var id uint64
		if n, _ := fmt.Sscanf(s, "__boxed:%d", &id); n == 1 {
			if m, ok := payloadBox[id]; ok {
				delete(payloadBox, id)
				return m
			}
		}
	}
	return v
}

func (s *System) deliver(tx *transducer.Tx, id ID, key string, payload any) {
	a, ok := s.actors[id]
	if !ok || a.stopped {
		return // dead letter
	}
	msg := unwrap(payload)
	ctx := &Ctx{sys: s, tx: tx, self: id}
	if a.waitKey != "" {
		if key == a.waitKey {
			cont := a.cont
			a.waitKey, a.cont = "", nil
			s.Delivered++
			cont(ctx, msg)
			s.flushBuffered(tx, a)
			return
		}
		// Not the awaited message: buffer it (footnote-2 bookkeeping).
		a.buffered = append(a.buffered, envelope{key: key, msg: msg})
		return
	}
	s.Delivered++
	a.behavior(ctx, msg)
	s.flushBuffered(tx, a)
}

// flushBuffered re-delivers buffered messages if the actor is no longer
// waiting (or is waiting for one of them).
func (s *System) flushBuffered(tx *transducer.Tx, a *actorState) {
	for len(a.buffered) > 0 && !a.stopped {
		if a.waitKey != "" {
			// Scan for the awaited message.
			found := -1
			for i, e := range a.buffered {
				if e.key == a.waitKey {
					found = i
					break
				}
			}
			if found < 0 {
				return
			}
			e := a.buffered[found]
			a.buffered = append(a.buffered[:found], a.buffered[found+1:]...)
			cont := a.cont
			a.waitKey, a.cont = "", nil
			s.Delivered++
			cont(&Ctx{sys: s, tx: tx, self: a.id}, e.msg)
			continue
		}
		e := a.buffered[0]
		a.buffered = a.buffered[1:]
		s.Delivered++
		a.behavior(&Ctx{sys: s, tx: tx, self: a.id}, e.msg)
	}
}

// Self returns the current actor's ID.
func (c *Ctx) Self() ID { return c.self }

// Send delivers a message to another actor asynchronously (visible on a
// later tick, per transducer send semantics).
func (c *Ctx) Send(to ID, msg any) {
	c.tx.Send("actor", datalog.Tuple{string(to), "", wrap(msg)})
}

// SendKeyed delivers a message under a mailbox key, for rendezvous with
// Receive.
func (c *Ctx) SendKeyed(to ID, key string, msg any) {
	c.tx.Send("actor", datalog.Tuple{string(to), key, wrap(msg)})
}

// Spawn creates a new actor from within a handler.
func (c *Ctx) Spawn(b Behavior) ID { return c.sys.Spawn(b) }

// Become replaces this actor's behavior for subsequent messages.
func (c *Ctx) Become(b Behavior) { c.sys.actors[c.self].behavior = b }

// Receive parks this actor until a message arrives under key, then runs
// cont with it — the appendix's mid-method synchronous receive. Other
// messages buffer meanwhile.
func (c *Ctx) Receive(key string, cont func(ctx *Ctx, msg any)) {
	a := c.sys.actors[c.self]
	a.waitKey = key
	a.cont = cont
}

// Stop terminates this actor; further messages are dead-lettered.
func (c *Ctx) Stop() { c.sys.actors[c.self].stopped = true }

// Alive reports whether an actor exists and is not stopped.
func (s *System) Alive(id ID) bool {
	a, ok := s.actors[id]
	return ok && !a.stopped
}
