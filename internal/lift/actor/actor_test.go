package actor

import (
	"math/rand"
	"testing"

	"hydro/internal/transducer"
)

func newRT(seed int64) *transducer.Runtime {
	rt := transducer.New("n1", seed)
	rt.SetDelay(func(r *rand.Rand) int { return 1 })
	return rt
}

func TestPingPong(t *testing.T) {
	rt := newRT(1)
	sys := NewSystem(rt)
	var rounds int
	var ponger ID
	pinger := sys.Spawn(func(ctx *Ctx, msg any) {
		if msg == "pong" {
			rounds++
			if rounds < 3 {
				ctx.Send(ponger, "ping")
			}
		}
	})
	ponger = sys.Spawn(func(ctx *Ctx, msg any) {
		if msg == "ping" {
			ctx.Send(pinger, "pong")
		}
	})
	sys.Send(ponger, "ping")
	rt.RunUntilIdle(40)
	if rounds != 3 {
		t.Fatalf("rounds = %d, want 3", rounds)
	}
}

func TestRPCStyleHandler(t *testing.T) {
	// The appendix's do_foo: an RPC-like actor method.
	rt := newRT(2)
	sys := NewSystem(rt)
	var got []any
	echo := sys.Spawn(func(ctx *Ctx, msg any) {
		got = append(got, msg)
	})
	sys.Send(echo, "hello")
	sys.Send(echo, int64(42))
	rt.RunUntilIdle(10)
	if len(got) != 2 || got[0] != "hello" || got[1] != int64(42) {
		t.Fatalf("got = %v", got)
	}
}

func TestMidMethodReceive(t *testing.T) {
	// The appendix's m(msg): run m_pre, block for mybox, run m_post — with
	// heap/stack state preserved across the wait (Go closures are the
	// coroutine substitute the appendix mentions).
	rt := newRT(3)
	sys := NewSystem(rt)
	var result string
	worker := sys.Spawn(func(ctx *Ctx, msg any) {
		preState := "pre(" + msg.(string) + ")"
		ctx.Receive("mybox", func(ctx *Ctx, newmsg any) {
			result = preState + "+post(" + newmsg.(string) + ")"
		})
	})
	sys.Send(worker, "start")
	rt.RunUntilIdle(10)
	if result != "" {
		t.Fatal("continuation ran before awaited message")
	}
	// Deliver to the awaited key.
	rt.Inject("actor", mkKeyed(worker, "mybox", "resume"))
	rt.RunUntilIdle(10)
	if result != "pre(start)+post(resume)" {
		t.Fatalf("result = %q", result)
	}
}

func mkKeyed(to ID, key string, msg any) []any {
	return []any{string(to), key, msg}
}

func TestWaitingActorBuffersOtherMessages(t *testing.T) {
	rt := newRT(4)
	sys := NewSystem(rt)
	var normal []string
	var awaited string
	worker := sys.Spawn(func(ctx *Ctx, msg any) {
		if msg == "block" {
			ctx.Receive("key", func(ctx *Ctx, m any) { awaited = m.(string) })
			return
		}
		normal = append(normal, msg.(string))
	})
	sys.Send(worker, "block")
	rt.RunUntilIdle(10)
	// These arrive while waiting and must buffer, not run the continuation.
	sys.Send(worker, "queued1")
	sys.Send(worker, "queued2")
	rt.RunUntilIdle(10)
	if len(normal) != 0 || awaited != "" {
		t.Fatalf("buffering broken: normal=%v awaited=%q", normal, awaited)
	}
	rt.Inject("actor", mkKeyed(worker, "key", "go"))
	rt.RunUntilIdle(10)
	if awaited != "go" {
		t.Fatalf("awaited = %q", awaited)
	}
	if len(normal) != 2 || normal[0] != "queued1" || normal[1] != "queued2" {
		t.Fatalf("buffered messages not replayed in order: %v", normal)
	}
}

func TestSpawnFromHandlerAndBecome(t *testing.T) {
	rt := newRT(5)
	sys := NewSystem(rt)
	var childGot any
	parent := sys.Spawn(func(ctx *Ctx, msg any) {
		child := ctx.Spawn(func(ctx *Ctx, m any) { childGot = m })
		ctx.Send(child, "hi-child")
		ctx.Become(func(ctx *Ctx, m any) { /* absorbed */ })
	})
	sys.Send(parent, "make-child")
	rt.RunUntilIdle(10)
	if childGot != "hi-child" {
		t.Fatalf("childGot = %v", childGot)
	}
}

func TestStopDeadLetters(t *testing.T) {
	rt := newRT(6)
	sys := NewSystem(rt)
	count := 0
	a := sys.Spawn(func(ctx *Ctx, msg any) {
		count++
		ctx.Stop()
	})
	sys.Send(a, 1)
	sys.Send(a, 2)
	rt.RunUntilIdle(10)
	if count != 1 {
		t.Fatalf("stopped actor handled %d messages", count)
	}
	if sys.Alive(a) {
		t.Fatal("stopped actor reported alive")
	}
}

func TestCountingActorFanIn(t *testing.T) {
	rt := newRT(7)
	sys := NewSystem(rt)
	total := 0
	counter := sys.Spawn(func(ctx *Ctx, msg any) { total += int(msg.(int64)) })
	for i := 0; i < 10; i++ {
		worker := sys.Spawn(func(ctx *Ctx, msg any) {
			ctx.Send(counter, msg.(int64)*2)
		})
		sys.Send(worker, int64(i))
	}
	rt.RunUntilIdle(20)
	if total != 90 { // 2*(0+..+9)
		t.Fatalf("total = %d, want 90", total)
	}
}

func TestBoxedPayloads(t *testing.T) {
	rt := newRT(8)
	sys := NewSystem(rt)
	type payload struct{ A, B int }
	var got payload
	a := sys.Spawn(func(ctx *Ctx, msg any) { got = msg.(payload) })
	sys.Send(a, payload{A: 1, B: 2})
	rt.RunUntilIdle(10)
	if got != (payload{A: 1, B: 2}) {
		t.Fatalf("got = %+v", got)
	}
}
