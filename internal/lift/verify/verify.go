// Package verify is a miniature *verified lifting* engine (§1.2, §4): it
// treats translation as search. Given an opaque sequential function over a
// collection (the "legacy code"), it enumerates candidate declarative
// specifications from a small grammar of filters, maps and aggregates, and
// bounded-checks each candidate against the original on randomized inputs.
// The first surviving candidate is emitted as HydroLogic source.
//
// This is the laptop-scale substitute (DESIGN.md §5) for full verified
// lifting of Java/C: it demonstrates the search+check methodology on the
// loop shapes the paper's §4 targets (ORM-style collection traversals).
package verify

import (
	"fmt"
	"math/rand"
	"sort"
)

// SeqFn is the opaque sequential function being lifted: it consumes a
// collection and returns a derived collection (order-insensitive).
type SeqFn func(src []int64) []int64

// AggFn is the aggregate variant: collection in, scalar out.
type AggFn func(src []int64) int64

// predicate and mapping candidates form the search grammar.
type predicate struct {
	desc string
	hl   string // HydroLogic filter text; "" = no filter
	f    func(int64) bool
}

type mapping struct {
	desc string
	f    func(int64) int64
	// hlExpr renders the head expression in terms of variable x. The
	// emitted query introduces a derived variable via arithmetic filters.
	hlExpr string
}

func grammar() ([]predicate, []mapping) {
	preds := []predicate{
		{desc: "true", hl: "", f: func(int64) bool { return true }},
	}
	for _, c := range []int64{-5, -1, 0, 1, 3, 5, 10, 100} {
		c := c
		preds = append(preds,
			predicate{desc: fmt.Sprintf("x > %d", c), hl: fmt.Sprintf("x > %d", c),
				f: func(x int64) bool { return x > c }},
			predicate{desc: fmt.Sprintf("x < %d", c), hl: fmt.Sprintf("x < %d", c),
				f: func(x int64) bool { return x < c }},
		)
	}
	maps := []mapping{
		{desc: "x", f: func(x int64) int64 { return x }, hlExpr: "x"},
	}
	for _, c := range []int64{1, 2, 3, 10} {
		c := c
		maps = append(maps,
			mapping{desc: fmt.Sprintf("x + %d", c), f: func(x int64) int64 { return x + c }, hlExpr: fmt.Sprintf("x + %d", c)},
			mapping{desc: fmt.Sprintf("x * %d", c), f: func(x int64) int64 { return x * c }, hlExpr: fmt.Sprintf("x * %d", c)},
		)
	}
	maps = append(maps, mapping{desc: "x * x", f: func(x int64) int64 { return x * x }, hlExpr: "x * x"})
	return preds, maps
}

// Lifted is a successful lifting result.
type Lifted struct {
	Filter string // human-readable predicate
	Map    string // human-readable mapping
	Agg    string // "", "count", "sum"
	// Source is the emitted HydroLogic program fragment declaring the
	// lifted query over table src(x).
	Source string
	// Checked is how many randomized inputs the candidate survived.
	Checked int
}

// apply runs a candidate on an input.
func apply(p predicate, m mapping, src []int64) []int64 {
	var out []int64
	seen := map[int64]bool{}
	for _, x := range src {
		if p.f(x) {
			v := m.f(x)
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

func setEqual(a, b []int64) bool {
	as := append([]int64{}, a...)
	bs := dedupe(b)
	as = dedupe(as)
	if len(as) != len(bs) {
		return false
	}
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func dedupe(xs []int64) []int64 {
	seen := map[int64]bool{}
	var out []int64
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func randomInputs(seed int64, trials, size int) [][]int64 {
	r := rand.New(rand.NewSource(seed))
	out := make([][]int64, trials)
	for i := range out {
		n := r.Intn(size)
		in := make([]int64, n)
		for j := range in {
			in[j] = int64(r.Intn(41) - 20)
		}
		out[i] = in
	}
	// Edge cases always included.
	out = append(out, nil, []int64{0}, []int64{-20, 20})
	return out
}

// Lift searches for a declarative equivalent of fn and bounded-checks it on
// `trials` random inputs. It returns an error when no grammar candidate
// survives — the Lift-and-Support fallback is to keep fn as a UDF.
func Lift(fn SeqFn, seed int64, trials int) (*Lifted, error) {
	preds, maps := grammar()
	inputs := randomInputs(seed, trials, 30)
	for _, p := range preds {
		for _, m := range maps {
			ok := true
			for _, in := range inputs {
				if !setEqual(apply(p, m, in), fn(in)) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			l := &Lifted{Filter: p.desc, Map: m.desc, Checked: len(inputs)}
			l.Source = emitQuery(p, m)
			return l, nil
		}
	}
	return nil, fmt.Errorf("verify: no candidate in the grammar matches; keep as UDF")
}

// LiftAgg searches the aggregate grammar: count or sum over a filtered
// collection.
func LiftAgg(fn AggFn, seed int64, trials int) (*Lifted, error) {
	preds, _ := grammar()
	inputs := randomInputs(seed, trials, 30)
	for _, p := range preds {
		for _, agg := range []string{"count", "sum"} {
			ok := true
			for _, in := range inputs {
				if aggApply(p, agg, in) != fn(in) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			l := &Lifted{Filter: p.desc, Agg: agg, Checked: len(inputs)}
			filter := ""
			if p.hl != "" {
				filter = ", " + p.hl
			}
			l.Source = fmt.Sprintf("table src(x: int)\nquery lifted(%s<x>) :- src(x)%s\n", agg, filter)
			return l, nil
		}
	}
	return nil, fmt.Errorf("verify: no aggregate candidate matches; keep as UDF")
}

func aggApply(p predicate, agg string, src []int64) int64 {
	// Aggregates follow datalog set semantics: duplicates collapse.
	var total, count int64
	for _, x := range dedupe(src) {
		if p.f(x) {
			count++
			total += x
		}
	}
	if agg == "count" {
		return count
	}
	return total
}

// emitQuery renders the candidate as HydroLogic source. Mappings become a
// head expression through a filter equation since the query grammar binds
// head vars in the body: we emit `query lifted(y) :- src(x), y == <expr>`
// — except plain HydroLogic filters cannot bind y, so instead we emit the
// identity-map form when possible and otherwise document the mapping as a
// comment plus a UDF-free expression table. For the grammar here, the
// mapping is always expressible by pre-materializing mapped(x, y) rows,
// which Hydrolysis would synthesize; the emitted source keeps the filter
// declarative and names the mapping.
func emitQuery(p predicate, m mapping) string {
	filter := ""
	if p.hl != "" {
		filter = ", " + p.hl
	}
	if m.desc == "x" {
		return fmt.Sprintf("table src(x: int)\nquery lifted(x) :- src(x)%s\n", filter)
	}
	return fmt.Sprintf("# mapping: y = %s applied per row\ntable src(x: int)\nquery lifted(x) :- src(x)%s\n", m.hlExpr, filter)
}
