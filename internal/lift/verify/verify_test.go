package verify

import (
	"strings"
	"testing"

	"hydro/internal/hlang"
)

func TestLiftIdentityFilter(t *testing.T) {
	// Legacy loop: keep positives.
	legacy := func(src []int64) []int64 {
		var out []int64
		for _, x := range src {
			if x > 0 {
				out = append(out, x)
			}
		}
		return out
	}
	l, err := Lift(legacy, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	if l.Filter != "x > 0" || l.Map != "x" {
		t.Fatalf("lifted = %+v", l)
	}
	// The emitted source must be valid HydroLogic.
	if _, err := hlang.Parse(l.Source); err != nil {
		t.Fatalf("emitted source does not parse: %v\n%s", err, l.Source)
	}
	if !strings.Contains(l.Source, "query lifted(x) :- src(x), x > 0") {
		t.Fatalf("source = %s", l.Source)
	}
}

func TestLiftMappedLoop(t *testing.T) {
	legacy := func(src []int64) []int64 {
		var out []int64
		for _, x := range src {
			out = append(out, x*2)
		}
		return out
	}
	l, err := Lift(legacy, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	if l.Map != "x * 2" || l.Filter != "true" {
		t.Fatalf("lifted = %+v", l)
	}
}

func TestLiftFilterAndMap(t *testing.T) {
	legacy := func(src []int64) []int64 {
		var out []int64
		for _, x := range src {
			if x < 3 {
				out = append(out, x+10)
			}
		}
		return out
	}
	l, err := Lift(legacy, 3, 40)
	if err != nil {
		t.Fatal(err)
	}
	if l.Filter != "x < 3" || l.Map != "x + 10" {
		t.Fatalf("lifted = %+v", l)
	}
	if l.Checked < 40 {
		t.Fatalf("checked only %d inputs", l.Checked)
	}
}

func TestLiftRejectsOutOfGrammar(t *testing.T) {
	// Order-dependent (prefix sums): genuinely not a set query.
	legacy := func(src []int64) []int64 {
		var out []int64
		var acc int64
		for _, x := range src {
			acc += x
			out = append(out, acc)
		}
		return out
	}
	if _, err := Lift(legacy, 4, 40); err == nil {
		t.Fatal("order-dependent loop must not lift")
	}
}

func TestLiftAggCount(t *testing.T) {
	legacy := func(src []int64) int64 {
		seen := map[int64]bool{}
		var n int64
		for _, x := range src {
			if !seen[x] && x > 1 {
				seen[x] = true
				n++
			}
		}
		return n
	}
	l, err := LiftAgg(legacy, 5, 40)
	if err != nil {
		t.Fatal(err)
	}
	if l.Agg != "count" || l.Filter != "x > 1" {
		t.Fatalf("lifted = %+v", l)
	}
	if _, err := hlang.Parse(l.Source); err != nil {
		t.Fatalf("emitted agg source does not parse: %v\n%s", err, l.Source)
	}
}

func TestLiftAggSum(t *testing.T) {
	legacy := func(src []int64) int64 {
		seen := map[int64]bool{}
		var total int64
		for _, x := range src {
			if !seen[x] {
				seen[x] = true
				total += x
			}
		}
		return total
	}
	l, err := LiftAgg(legacy, 6, 40)
	if err != nil {
		t.Fatal(err)
	}
	if l.Agg != "sum" || l.Filter != "true" {
		t.Fatalf("lifted = %+v", l)
	}
}

func TestLiftAggRejectsProduct(t *testing.T) {
	legacy := func(src []int64) int64 {
		var p int64 = 1
		for _, x := range src {
			p *= x
		}
		return p
	}
	if _, err := LiftAgg(legacy, 7, 40); err == nil {
		t.Fatal("product is outside the aggregate grammar")
	}
}

// The check is *bounded*, so an adversarial function agreeing with a
// candidate on all sampled inputs would mis-lift — the classic limitation
// the paper acknowledges by pairing synthesis with verification. This test
// documents the behavior: candidates must survive every probe including
// fixed edge cases.
func TestEdgeCasesAlwaysProbed(t *testing.T) {
	// Differs from "keep positives" only on input 20 (included as an edge
	// probe), so the x > 0 candidate must be rejected.
	tricky := func(src []int64) []int64 {
		var out []int64
		for _, x := range src {
			if x > 0 && x != 20 {
				out = append(out, x)
			}
		}
		return out
	}
	l, err := Lift(tricky, 8, 40)
	if err == nil && l.Filter == "x > 0" {
		t.Fatalf("bounded check missed the x=20 divergence: %+v", l)
	}
}
