package future

import (
	"math/rand"
	"testing"

	"hydro/internal/transducer"
)

func newRT(seed int64) *transducer.Runtime {
	rt := transducer.New("n1", seed)
	rt.SetDelay(func(r *rand.Rand) int { return 1 })
	return rt
}

func double(arg any) any { return arg.(int) * 2 }

// The appendix's Ray example: four promises, local work, batch get.
func TestRayStyleBatch(t *testing.T) {
	rt := newRT(1)
	e := NewEngine(rt, Eager)
	var futures []Future
	for i := 0; i < 4; i++ {
		futures = append(futures, e.Remote(double, i))
	}
	// "g() runs locally while the promises execute concurrently."
	localResult := 40 + 2
	got, err := e.Get(futures, 50)
	if err != nil {
		t.Fatal(err)
	}
	want := []any{0, 2, 4, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("futures = %v, want %v", got, want)
		}
	}
	if localResult != 42 {
		t.Fatal("local computation clobbered")
	}
}

func TestFutureNotResolvedSynchronously(t *testing.T) {
	rt := newRT(2)
	e := NewEngine(rt, Eager)
	f := e.Remote(double, 10)
	if f.Resolved() {
		t.Fatal("future resolved before any tick — sends must be async")
	}
	if _, err := e.Get([]Future{f}, 50); err != nil {
		t.Fatal(err)
	}
	if f.Value() != 20 {
		t.Fatalf("value = %v", f.Value())
	}
}

func TestLazyModeDefersLaunch(t *testing.T) {
	rt := newRT(3)
	e := NewEngine(rt, Lazy)
	f1 := e.Remote(double, 1)
	f2 := e.Remote(double, 2)
	rt.RunUntilIdle(20)
	if e.Launched != 0 {
		t.Fatalf("lazy engine launched %d promises before Get", e.Launched)
	}
	got, err := e.Get([]Future{f1}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Fatalf("got = %v", got)
	}
	if e.Launched != 1 {
		t.Fatalf("lazy engine launched %d, want only the demanded one", e.Launched)
	}
	_ = f2
}

func TestEagerRunsWithoutGet(t *testing.T) {
	rt := newRT(4)
	e := NewEngine(rt, Eager)
	e.Remote(double, 5)
	rt.RunUntilIdle(20)
	if e.Launched != 1 {
		t.Fatal("eager promise did not run")
	}
}

func TestFuturesAreData(t *testing.T) {
	// The appendix: "promises and futures are data, so we can implement
	// semantics where they can be sent or copied to different agents."
	rt := newRT(5)
	e := NewEngine(rt, Eager)
	f := e.Remote(double, 21)
	copied := f // futures are plain values
	if _, err := e.Get([]Future{copied}, 50); err != nil {
		t.Fatal(err)
	}
	if !f.Resolved() || f.Value() != 42 {
		t.Fatal("copied future did not track resolution")
	}
}

func TestGetTimesOut(t *testing.T) {
	rt := newRT(6)
	e := NewEngine(rt, Eager)
	// A future whose function was unregistered (simulates a lost worker).
	f := e.Remote(double, 1)
	delete(e.fns, f.ID)
	if _, err := e.Get([]Future{f}, 5); err == nil {
		t.Fatal("Get should time out on an unresolvable future")
	}
}

func TestStructResults(t *testing.T) {
	rt := newRT(7)
	e := NewEngine(rt, Eager)
	type out struct{ X int }
	f := e.Remote(func(a any) any { return out{X: a.(int)} }, 9)
	got, err := e.Get([]Future{f}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].(out).X != 9 {
		t.Fatalf("got = %v", got)
	}
}
