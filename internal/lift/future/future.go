// Package future lifts promises/futures (Appendix A.2, the Ray-style
// pattern) onto the transducer: a promise launches an asynchronous
// computation through the PromisesEngine mailbox; the future resolves when
// the response message lands, possibly ticks later. Both eager and lazy
// kickoff semantics are provided, as the appendix discusses.
package future

import (
	"fmt"

	"hydro/internal/datalog"
	"hydro/internal/transducer"
)

// Fn is a promised computation.
type Fn func(arg any) any

// Mode selects kickoff semantics.
type Mode int

// Kickoff modes.
const (
	// Eager launches the computation at Remote() time (Ray's default).
	Eager Mode = iota
	// Lazy defers launch until the first Get touches the future.
	Lazy
)

// Future is a handle on a pending result.
type Future struct {
	ID uint64
	e  *Engine
}

// Engine runs promises over a transducer runtime. Promised functions
// execute inside the "promises" mailbox handler; results arrive via the
// "futures" mailbox (the names from the appendix's listing).
type Engine struct {
	rt     *transducer.Runtime
	mode   Mode
	nextID uint64
	fns    map[uint64]Fn
	args   map[uint64]any
	done   map[uint64]any
	// Launched counts actual executions, distinguishing lazy from eager.
	Launched int
}

// NewEngine attaches a promises engine to a runtime.
func NewEngine(rt *transducer.Runtime, mode Mode) *Engine {
	e := &Engine{rt: rt, mode: mode, fns: map[uint64]Fn{}, args: map[uint64]any{}, done: map[uint64]any{}}
	rt.RegisterHandler("promises", func(tx *transducer.Tx, m transducer.Message) {
		id := m.Payload[0].(uint64)
		fn, ok := e.fns[id]
		if !ok {
			return
		}
		e.Launched++
		result := fn(e.args[id])
		tx.Send("futures", datalog.Tuple{id, wrapVal(result)})
	})
	rt.RegisterHandler("futures", func(tx *transducer.Tx, m transducer.Message) {
		id := m.Payload[0].(uint64)
		e.done[id] = unwrapVal(m.Payload[1])
	})
	return e
}

var boxSeq uint64
var box = map[uint64]any{}

func wrapVal(v any) any {
	switch v.(type) {
	case string, int, int64, float64, bool, nil:
		return v
	default:
		boxSeq++
		box[boxSeq] = v
		return fmt.Sprintf("__fbox:%d", boxSeq)
	}
}

func unwrapVal(v any) any {
	if s, ok := v.(string); ok {
		var id uint64
		if n, _ := fmt.Sscanf(s, "__fbox:%d", &id); n == 1 {
			if m, ok := box[id]; ok {
				delete(box, id)
				return m
			}
		}
	}
	return v
}

// Remote registers a promise for fn(arg) and returns its future — the
// analogue of Ray's f.remote(i).
func (e *Engine) Remote(fn Fn, arg any) Future {
	e.nextID++
	id := e.nextID
	e.fns[id] = fn
	e.args[id] = arg
	if e.mode == Eager {
		e.rt.Inject("promises", datalog.Tuple{id})
	}
	return Future{ID: id, e: e}
}

// Resolved reports whether the future's value has arrived.
func (f Future) Resolved() bool {
	_, ok := f.e.done[f.ID]
	return ok
}

// Value returns the resolved value (only valid after Resolved).
func (f Future) Value() any { return f.e.done[f.ID] }

// Get drives the transducer until all futures resolve (the appendix's
// condition-variable wait across ticks), up to maxTicks. It returns the
// values in order, the analogue of ray.get(futures).
func (e *Engine) Get(futures []Future, maxTicks int) ([]any, error) {
	// Lazy mode: launch on demand.
	if e.mode == Lazy {
		for _, f := range futures {
			if !f.Resolved() {
				e.rt.Inject("promises", datalog.Tuple{f.ID})
			}
		}
	}
	for i := 0; i < maxTicks; i++ {
		all := true
		for _, f := range futures {
			if !f.Resolved() {
				all = false
				break
			}
		}
		if all {
			out := make([]any, len(futures))
			for j, f := range futures {
				out[j] = f.Value()
			}
			return out, nil
		}
		e.rt.Tick()
	}
	return nil, fmt.Errorf("future: unresolved after %d ticks", maxTicks)
}
