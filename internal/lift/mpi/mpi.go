// Package mpi lifts MPI's collective-communication patterns (Appendix A.3)
// onto the simulated network: Bcast, Scatter, Gather, Reduce, Allgather,
// Allreduce and Alltoall. The appendix notes its HydroLogic specifications
// are naive and that "tree-based or ring-based mechanisms" are the
// well-known optimizations Hydrolysis could apply — this package implements
// the naive versions *and* those optimizations so experiment E7 can compare
// message counts and completion times.
package mpi

import (
	"fmt"
	"sort"

	"hydro/internal/simnet"
)

// Algo selects the communication schedule.
type Algo int

// Algorithms.
const (
	Naive Algo = iota // direct fan-out / fan-in
	Tree              // binary-tree relay
	Ring              // ring pass
)

func (a Algo) String() string {
	switch a {
	case Naive:
		return "naive"
	case Tree:
		return "tree"
	default:
		return "ring"
	}
}

// ReduceFn combines two values (must be associative and commutative — the
// ACI discipline again).
type ReduceFn func(a, b any) any

// World is a set of MPI agents over a simulated network.
type World struct {
	net   *simnet.Network
	n     int
	names []string

	locals []any
	// results per op: rank → received value(s).
	got     map[string]map[int]any
	pending map[string]*reduceState
}

type reduceState struct {
	need map[int]int // rank → children left
	acc  map[int]any
	fn   ReduceFn
	root int
	algo Algo
	kind string
}

// message types
type bcastMsg struct {
	Op   string
	Val  any
	Algo Algo
	Root int
}

type scatterMsg struct {
	Op    string
	Chunk any
}

type upMsg struct { // gather/reduce payload moving rootward
	Op   string
	Rank int
	Val  any
}

type ringMsg struct {
	Op    string
	Step  int
	Val   any
	Phase int // 0 = accumulate, 1 = distribute
}

// NewWorld registers n agents named rank0..rank{n-1}.
func NewWorld(net *simnet.Network, n int) *World {
	w := &World{net: net, n: n, got: map[string]map[int]any{}, pending: map[string]*reduceState{},
		locals: make([]any, n)}
	for i := 0; i < n; i++ {
		w.names = append(w.names, fmt.Sprintf("rank%d", i))
		rank := i
		net.AddNode(w.names[i], func(now simnet.Time, msg simnet.Message) {
			w.handle(rank, msg)
		})
	}
	return w
}

// SetLocal sets an agent's local contribution.
func (w *World) SetLocal(rank int, v any) { w.locals[rank] = v }

// Got returns rank's received value for an op.
func (w *World) Got(op string, rank int) (any, bool) {
	m, ok := w.got[op]
	if !ok {
		return nil, false
	}
	v, ok := m[rank]
	return v, ok
}

func (w *World) record(op string, rank int, v any) {
	if w.got[op] == nil {
		w.got[op] = map[int]any{}
	}
	w.got[op][rank] = v
}

// treeChildren returns the binary-tree children of rank relative to root.
func (w *World) treeChildren(rank, root int) []int {
	rel := (rank - root + w.n) % w.n
	var out []int
	for _, c := range []int{2*rel + 1, 2*rel + 2} {
		if c < w.n {
			out = append(out, (c+root)%w.n)
		}
	}
	return out
}

func (w *World) treeParent(rank, root int) int {
	rel := (rank - root + w.n) % w.n
	if rel == 0 {
		return -1
	}
	return ((rel-1)/2 + root) % w.n
}

// Bcast broadcasts val from root to every agent; returns a Stats delta
// after the network drains.
func (w *World) Bcast(op string, root int, val any, algo Algo) Stats {
	before := w.snapshot()
	w.record(op, root, val)
	switch algo {
	case Naive:
		for i := 0; i < w.n; i++ {
			if i != root {
				w.net.Send(w.names[root], w.names[i], bcastMsg{Op: op, Val: val, Algo: Naive, Root: root})
			}
		}
	case Tree:
		for _, c := range w.treeChildren(root, root) {
			w.net.Send(w.names[root], w.names[c], bcastMsg{Op: op, Val: val, Algo: Tree, Root: root})
		}
	case Ring:
		if w.n > 1 {
			next := (root + 1) % w.n
			w.net.Send(w.names[root], w.names[next], bcastMsg{Op: op, Val: val, Algo: Ring, Root: root})
		}
	}
	w.net.Drain(w.n * w.n * 4)
	return w.delta(before)
}

// Scatter partitions arr from root: agent i receives arr[i] (array length
// must equal world size, matching the appendix's chunking).
func (w *World) Scatter(op string, root int, arr []any) Stats {
	before := w.snapshot()
	for i := 0; i < w.n; i++ {
		if i == root {
			w.record(op, root, arr[i])
			continue
		}
		w.net.Send(w.names[root], w.names[i], scatterMsg{Op: op, Chunk: arr[i]})
	}
	w.net.Drain(w.n * 4)
	return w.delta(before)
}

// Gather assembles every agent's local value at root, ordered by rank.
func (w *World) Gather(op string, root int) Stats {
	before := w.snapshot()
	st := &reduceState{acc: map[int]any{root: w.locals[root]}, root: root, kind: "gather"}
	w.pending[op] = st
	for i := 0; i < w.n; i++ {
		if i != root {
			w.net.Send(w.names[i], w.names[root], upMsg{Op: op, Rank: i, Val: w.locals[i]})
		}
	}
	w.net.Drain(w.n * 4)
	w.finishGather(op, st)
	return w.delta(before)
}

func (w *World) finishGather(op string, st *reduceState) {
	if len(st.acc) == w.n {
		ranks := make([]int, 0, w.n)
		for r := range st.acc {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		arr := make([]any, w.n)
		for i, r := range ranks {
			arr[i] = st.acc[r]
		}
		w.record(op, st.root, arr)
	}
}

// Reduce combines every agent's value at root with fn.
func (w *World) Reduce(op string, root int, fn ReduceFn, algo Algo) Stats {
	before := w.snapshot()
	switch algo {
	case Tree:
		st := &reduceState{need: map[int]int{}, acc: map[int]any{}, fn: fn, root: root, algo: Tree, kind: "reduce"}
		w.pending[op] = st
		for i := 0; i < w.n; i++ {
			st.acc[i] = w.locals[i]
			st.need[i] = len(w.treeChildren(i, root))
		}
		// Leaves start the upward wave.
		for i := 0; i < w.n; i++ {
			if st.need[i] == 0 && i != root {
				w.net.Send(w.names[i], w.names[w.treeParent(i, root)], upMsg{Op: op, Rank: i, Val: st.acc[i]})
			}
		}
		w.net.Drain(w.n * w.n * 4)
		if w.n == 1 || (st.need[root] == 0 && len(w.got[op]) == 0) {
			w.record(op, root, st.acc[root])
		}
	case Ring:
		if w.n == 1 {
			w.record(op, root, w.locals[root])
			break
		}
		st := &reduceState{fn: fn, root: root, algo: Ring, kind: "reduce"}
		w.pending[op] = st
		next := (root + 1) % w.n
		w.net.Send(w.names[root], w.names[next], ringMsg{Op: op, Step: 1, Val: w.locals[root], Phase: 0})
		w.net.Drain(w.n * 8)
	default: // Naive: everyone sends to root, root folds.
		st := &reduceState{acc: map[int]any{root: w.locals[root]}, fn: fn, root: root, kind: "reduce-naive"}
		w.pending[op] = st
		for i := 0; i < w.n; i++ {
			if i != root {
				w.net.Send(w.names[i], w.names[root], upMsg{Op: op, Rank: i, Val: w.locals[i]})
			}
		}
		w.net.Drain(w.n * 4)
		acc := st.acc[root]
		ranks := make([]int, 0, len(st.acc))
		for r := range st.acc {
			if r != root {
				ranks = append(ranks, r)
			}
		}
		sort.Ints(ranks)
		for _, r := range ranks {
			acc = fn(acc, st.acc[r])
		}
		w.record(op, root, acc)
	}
	return w.delta(before)
}

// Allgather gathers at rank 0 then broadcasts the array (naive composition,
// as in the appendix's mpi_allgather).
func (w *World) Allgather(op string) Stats {
	before := w.snapshot()
	w.Gather(op+"/g", 0)
	arr, _ := w.Got(op+"/g", 0)
	w.Bcast(op+"/b", 0, arr, Tree)
	for i := 0; i < w.n; i++ {
		v, _ := w.Got(op+"/b", i)
		w.record(op, i, v)
	}
	return w.delta(before)
}

// Allreduce reduces then broadcasts (the appendix's mpi_allreduce); the
// algo picks the schedule of both phases. Ring uses the classic
// 2(n-1)-step ring with constant per-step fan-out.
func (w *World) Allreduce(op string, fn ReduceFn, algo Algo) Stats {
	before := w.snapshot()
	switch algo {
	case Ring:
		w.Reduce(op+"/r", 0, fn, Ring)
		// The ring reduce's distribute phase already delivered the final
		// value everywhere (phase 1); copy per-rank results.
		for i := 0; i < w.n; i++ {
			if v, ok := w.Got(op+"/r", i); ok {
				w.record(op, i, v)
			}
		}
	default:
		w.Reduce(op+"/r", 0, fn, algo)
		v, _ := w.Got(op+"/r", 0)
		w.Bcast(op+"/b", 0, v, algo)
		for i := 0; i < w.n; i++ {
			got, ok := w.Got(op+"/b", i)
			if !ok {
				got = v
			}
			w.record(op, i, got)
		}
	}
	return w.delta(before)
}

// Alltoall: agent i's local value must be a []any of length n; agent j
// receives element [i] from every i, assembled in rank order.
func (w *World) Alltoall(op string) Stats {
	before := w.snapshot()
	for i := 0; i < w.n; i++ {
		row := w.locals[i].([]any)
		for j := 0; j < w.n; j++ {
			if i == j {
				w.acceptAlltoall(op, j, i, row[j])
				continue
			}
			w.net.Send(w.names[i], w.names[j], upMsg{Op: op + "/a2a", Rank: i, Val: row[j]})
		}
	}
	w.net.Drain(w.n * w.n * 4)
	return w.delta(before)
}

func (w *World) acceptAlltoall(op string, me, from int, val any) {
	cur, _ := w.Got(op, me)
	arr, _ := cur.([]any)
	if arr == nil {
		arr = make([]any, w.n)
	}
	arr[from] = val
	w.record(op, me, arr)
}

func (w *World) handle(rank int, msg simnet.Message) {
	switch m := msg.Payload.(type) {
	case bcastMsg:
		w.record(m.Op, rank, m.Val)
		switch m.Algo {
		case Tree:
			for _, c := range w.treeChildren(rank, m.Root) {
				w.net.Send(w.names[rank], w.names[c], m)
			}
		case Ring:
			next := (rank + 1) % w.n
			if next != m.Root {
				w.net.Send(w.names[rank], w.names[next], m)
			}
		}
	case scatterMsg:
		w.record(m.Op, rank, m.Chunk)
	case upMsg:
		st, ok := w.pending[m.Op]
		if !ok {
			// Alltoall rows route here too.
			if len(m.Op) > 4 && m.Op[len(m.Op)-4:] == "/a2a" {
				w.acceptAlltoall(m.Op[:len(m.Op)-4], rank, m.Rank, m.Val)
			}
			return
		}
		switch st.kind {
		case "gather", "reduce-naive":
			st.acc[m.Rank] = m.Val
			if st.kind == "gather" {
				w.finishGather(m.Op, st)
			}
		case "reduce": // tree reduce
			st.acc[rank] = st.fn(st.acc[rank], m.Val)
			st.need[rank]--
			if st.need[rank] == 0 {
				if rank == st.root {
					w.record(m.Op, st.root, st.acc[rank])
				} else {
					w.net.Send(w.names[rank], w.names[w.treeParent(rank, st.root)],
						upMsg{Op: m.Op, Rank: rank, Val: st.acc[rank]})
				}
			}
		}
	case ringMsg:
		st, ok := w.pending[m.Op]
		if !ok {
			return
		}
		if m.Phase == 0 {
			acc := st.fn(m.Val, w.locals[rank])
			if m.Step == w.n-1 {
				// Accumulation complete at this rank; distribute.
				w.record(m.Op, rank, acc)
				next := (rank + 1) % w.n
				w.net.Send(w.names[rank], w.names[next], ringMsg{Op: m.Op, Step: 1, Val: acc, Phase: 1})
				return
			}
			next := (rank + 1) % w.n
			w.net.Send(w.names[rank], w.names[next], ringMsg{Op: m.Op, Step: m.Step + 1, Val: acc, Phase: 0})
		} else {
			if _, done := w.Got(m.Op, rank); done {
				return // distribution lap complete
			}
			w.record(m.Op, rank, m.Val)
			next := (rank + 1) % w.n
			w.net.Send(w.names[rank], w.names[next], ringMsg{Op: m.Op, Step: m.Step + 1, Val: m.Val, Phase: 1})
		}
	}
}

// Stats is the cost delta of one collective.
type Stats struct {
	Messages uint64
	Elapsed  simnet.Time
}

type snap struct {
	sent uint64
	now  simnet.Time
}

func (w *World) snapshot() snap {
	return snap{sent: w.net.Stats().Sent, now: w.net.Now()}
}

func (w *World) delta(before snap) Stats {
	return Stats{Messages: w.net.Stats().Sent - before.sent, Elapsed: w.net.Now() - before.now}
}
