package mpi

import (
	"fmt"
	"testing"

	"hydro/internal/simnet"
)

func newWorld(n int, seed int64) *World {
	net := simnet.New(simnet.Config{Seed: seed, MinLatency: 10, MaxLatency: 10})
	return NewWorld(net, n)
}

func sum(a, b any) any { return a.(int) + b.(int) }

func TestBcastAllAlgos(t *testing.T) {
	for _, algo := range []Algo{Naive, Tree, Ring} {
		w := newWorld(8, 1)
		st := w.Bcast("b", 0, "payload", algo)
		for i := 0; i < 8; i++ {
			v, ok := w.Got("b", i)
			if !ok || v != "payload" {
				t.Fatalf("%v: rank %d got %v", algo, i, v)
			}
		}
		if st.Messages == 0 {
			t.Fatalf("%v: no messages recorded", algo)
		}
	}
}

func TestBcastNonZeroRoot(t *testing.T) {
	for _, algo := range []Algo{Naive, Tree, Ring} {
		w := newWorld(5, 2)
		w.Bcast("b", 3, 99, algo)
		for i := 0; i < 5; i++ {
			if v, ok := w.Got("b", i); !ok || v != 99 {
				t.Fatalf("%v root=3: rank %d got %v", algo, i, v)
			}
		}
	}
}

func TestBcastTreeFewerRoundsThanRing(t *testing.T) {
	// Tree depth is O(log n), ring is O(n): virtual completion time must
	// reflect it (all links have equal latency).
	w1 := newWorld(16, 3)
	tree := w1.Bcast("b", 0, 1, Tree)
	w2 := newWorld(16, 3)
	ring := w2.Bcast("b", 0, 1, Ring)
	if tree.Elapsed >= ring.Elapsed {
		t.Fatalf("tree bcast (%d) should finish before ring (%d)", tree.Elapsed, ring.Elapsed)
	}
	// Naive floods from one node: message count equals n-1 for all three,
	// but tree parallelizes; ring minimizes per-node fan-out.
	if tree.Messages != 15 || ring.Messages != 15 {
		t.Fatalf("messages tree=%d ring=%d, want 15", tree.Messages, ring.Messages)
	}
}

func TestScatter(t *testing.T) {
	w := newWorld(4, 4)
	arr := []any{"a", "b", "c", "d"}
	w.Scatter("s", 0, arr)
	for i := 0; i < 4; i++ {
		if v, _ := w.Got("s", i); v != arr[i] {
			t.Fatalf("rank %d got %v", i, v)
		}
	}
}

func TestGatherOrdered(t *testing.T) {
	w := newWorld(5, 5)
	for i := 0; i < 5; i++ {
		w.SetLocal(i, fmt.Sprintf("v%d", i))
	}
	w.Gather("g", 2)
	v, ok := w.Got("g", 2)
	if !ok {
		t.Fatal("gather incomplete")
	}
	arr := v.([]any)
	for i := range arr {
		if arr[i] != fmt.Sprintf("v%d", i) {
			t.Fatalf("gathered = %v", arr)
		}
	}
}

func TestReduceAllAlgos(t *testing.T) {
	for _, algo := range []Algo{Naive, Tree, Ring} {
		w := newWorld(7, 6)
		for i := 0; i < 7; i++ {
			w.SetLocal(i, i+1) // 1..7, sum 28
		}
		w.Reduce("r", 0, sum, algo)
		v, ok := w.Got("r", 0)
		if !ok || v != 28 {
			t.Fatalf("%v: reduce = %v ok=%v, want 28", algo, v, ok)
		}
	}
}

func TestAllgather(t *testing.T) {
	w := newWorld(4, 7)
	for i := 0; i < 4; i++ {
		w.SetLocal(i, i*10)
	}
	w.Allgather("ag")
	for r := 0; r < 4; r++ {
		v, ok := w.Got("ag", r)
		if !ok {
			t.Fatalf("rank %d missing allgather result", r)
		}
		arr := v.([]any)
		for i := range arr {
			if arr[i] != i*10 {
				t.Fatalf("rank %d got %v", r, arr)
			}
		}
	}
}

func TestAllreduceAllAlgos(t *testing.T) {
	for _, algo := range []Algo{Naive, Tree, Ring} {
		w := newWorld(6, 8)
		for i := 0; i < 6; i++ {
			w.SetLocal(i, 1)
		}
		w.Allreduce("ar", sum, algo)
		for r := 0; r < 6; r++ {
			v, ok := w.Got("ar", r)
			if !ok || v != 6 {
				t.Fatalf("%v: rank %d allreduce = %v ok=%v, want 6", algo, r, v, ok)
			}
		}
	}
}

func TestAlltoall(t *testing.T) {
	n := 4
	w := newWorld(n, 9)
	for i := 0; i < n; i++ {
		row := make([]any, n)
		for j := 0; j < n; j++ {
			row[j] = fmt.Sprintf("%d->%d", i, j)
		}
		w.SetLocal(i, row)
	}
	w.Alltoall("a2a")
	for j := 0; j < n; j++ {
		v, ok := w.Got("a2a", j)
		if !ok {
			t.Fatalf("rank %d missing alltoall", j)
		}
		col := v.([]any)
		for i := 0; i < n; i++ {
			if col[i] != fmt.Sprintf("%d->%d", i, j) {
				t.Fatalf("rank %d got %v", j, col)
			}
		}
	}
}

func TestSingleAgentDegenerate(t *testing.T) {
	w := newWorld(1, 10)
	w.SetLocal(0, 5)
	w.Bcast("b", 0, "x", Tree)
	if v, _ := w.Got("b", 0); v != "x" {
		t.Fatal("self-bcast broken")
	}
	w.Reduce("r", 0, sum, Tree)
	if v, _ := w.Got("r", 0); v != 5 {
		t.Fatalf("self-reduce = %v", v)
	}
}

// E7 shape check: ring allreduce sends fewer messages than naive
// (2(n-1) vs 2(n-1)… naive reduce+bcast is also 2(n-1), but naive
// concentrates them at the root while ring spreads per-node load; what
// distinguishes them measurably here is tree completing faster than naive
// at the root bottleneck and ring's elapsed growing linearly).
func TestAllreduceScalingShape(t *testing.T) {
	elapsed := map[Algo][]simnet.Time{}
	for _, algo := range []Algo{Naive, Tree, Ring} {
		for _, n := range []int{4, 16} {
			w := newWorld(n, 11)
			for i := 0; i < n; i++ {
				w.SetLocal(i, 1)
			}
			st := w.Allreduce("ar", sum, algo)
			for r := 0; r < n; r++ {
				if v, ok := w.Got("ar", r); !ok || v != n {
					t.Fatalf("%v n=%d rank %d: %v", algo, n, r, v)
				}
			}
			elapsed[algo] = append(elapsed[algo], st.Elapsed)
		}
	}
	// Ring time grows ~linearly with n; tree ~logarithmically. At n=16 the
	// tree must beat the ring.
	if elapsed[Tree][1] >= elapsed[Ring][1] {
		t.Fatalf("tree allreduce at n=16 (%d) should beat ring (%d)", elapsed[Tree][1], elapsed[Ring][1])
	}
}
