// Package simnet is a deterministic discrete-event network simulator: the
// substitute for the real cloud network (see DESIGN.md §5). It delivers
// messages with seeded random latency, optional drops, partitions and node
// failures — exactly the "unbounded delay, non-deterministic arrival"
// semantics HydroLogic's send assumes, but reproducible under a seed.
//
// Time is virtual, in integer microseconds. All scheduling is through a
// binary heap keyed on (time, sequence), so runs are bit-for-bit repeatable.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is virtual time in microseconds.
type Time int64

// Message is an in-flight or delivered network message.
type Message struct {
	From, To string
	Payload  any
	Sent     Time
	Deliver  Time
}

// Handler receives a message at a node.
type Handler func(now Time, msg Message)

// Config tunes the simulated fabric.
type Config struct {
	Seed int64
	// MinLatency/MaxLatency bound one-way delivery latency.
	MinLatency, MaxLatency Time
	// DropRate is the probability a message is silently lost.
	DropRate float64
	// CrossDomainPenalty adds latency when From and To are in different
	// latency domains (set via SetDomain) — models AZ-to-AZ hops.
	CrossDomainPenalty Time
	// SendOverhead serializes consecutive sends from one node: each send
	// occupies the sender's NIC for this long before the message departs.
	// Zero models infinite fan-out bandwidth; non-zero exposes the root
	// bottleneck that makes tree collectives beat naive fan-out.
	SendOverhead Time
}

// DefaultConfig is a LAN-ish fabric: 50-500µs latency, no drops.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, MinLatency: 50, MaxLatency: 500}
}

// Stats counts network activity.
type Stats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64 // random drops
	Blocked   uint64 // partition/down drops
}

type event struct {
	at    Time
	seq   uint64
	msg   Message
	timer bool // timer events fire even when links are partitioned
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() (event, bool) {
	if len(h) == 0 {
		return event{}, false
	}
	return h[0], true
}

// Network is the simulated fabric. Not safe for concurrent use: the whole
// simulation is single-threaded and deterministic.
type Network struct {
	cfg     Config
	now     Time
	seq     uint64
	queue   eventHeap
	nodes   map[string]Handler
	domain  map[string]string
	down    map[string]bool
	cut     map[string]bool // partitioned unordered pairs, key "a|b" with a<b
	nicFree map[string]Time // per-node send-occupancy horizon
	rng     *rand.Rand
	stats   Stats
}

// New creates an empty network.
func New(cfg Config) *Network {
	if cfg.MaxLatency < cfg.MinLatency {
		cfg.MaxLatency = cfg.MinLatency
	}
	return &Network{
		cfg:     cfg,
		nodes:   map[string]Handler{},
		domain:  map[string]string{},
		down:    map[string]bool{},
		cut:     map[string]bool{},
		nicFree: map[string]Time{},
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Now returns current virtual time.
func (n *Network) Now() Time { return n.now }

// Stats returns a copy of the counters.
func (n *Network) Stats() Stats { return n.stats }

// AddNode registers a node's message handler.
func (n *Network) AddNode(name string, h Handler) {
	if _, dup := n.nodes[name]; dup {
		panic(fmt.Sprintf("simnet: node %q already registered", name))
	}
	n.nodes[name] = h
}

// SetHandler replaces a node's handler (used when a node restarts with
// fresh state).
func (n *Network) SetHandler(name string, h Handler) { n.nodes[name] = h }

// SetDomain assigns a node to a latency domain (e.g. its AZ).
func (n *Network) SetDomain(name, domain string) { n.domain[name] = domain }

// SetDown marks a node crashed (true) or recovered (false). Messages to or
// from a down node are dropped.
func (n *Network) SetDown(name string, down bool) { n.down[name] = down }

// Down reports whether a node is crashed.
func (n *Network) Down(name string) bool { return n.down[name] }

func pairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// Partition cuts the link between a and b (both directions).
func (n *Network) Partition(a, b string) { n.cut[pairKey(a, b)] = true }

// Heal restores the link between a and b.
func (n *Network) Heal(a, b string) { delete(n.cut, pairKey(a, b)) }

// latency draws a one-way latency for the pair.
func (n *Network) latency(from, to string) Time {
	span := int64(n.cfg.MaxLatency - n.cfg.MinLatency)
	l := n.cfg.MinLatency
	if span > 0 {
		l += Time(n.rng.Int63n(span + 1))
	}
	if df, dt := n.domain[from], n.domain[to]; df != dt {
		l += n.cfg.CrossDomainPenalty
	}
	return l
}

// Send schedules delivery of payload from one node to another. Returns the
// scheduled delivery time, or -1 if the message was dropped at send time.
func (n *Network) Send(from, to string, payload any) Time {
	n.stats.Sent++
	if n.cfg.DropRate > 0 && n.rng.Float64() < n.cfg.DropRate {
		n.stats.Dropped++
		return -1
	}
	depart := n.now
	if n.cfg.SendOverhead > 0 {
		if free := n.nicFree[from]; free > depart {
			depart = free
		}
		depart += n.cfg.SendOverhead
		n.nicFree[from] = depart
	}
	at := depart + n.latency(from, to)
	n.seq++
	heap.Push(&n.queue, event{
		at:  at,
		seq: n.seq,
		msg: Message{From: from, To: to, Payload: payload, Sent: n.now, Deliver: at},
	})
	return at
}

// After schedules a timer: node receives payload from itself after delay.
// Timers fire even across partitions (they are local), but not on down
// nodes.
func (n *Network) After(node string, delay Time, payload any) {
	n.seq++
	at := n.now + delay
	heap.Push(&n.queue, event{
		at:    at,
		seq:   n.seq,
		msg:   Message{From: node, To: node, Payload: payload, Sent: n.now, Deliver: at},
		timer: true,
	})
}

// Step delivers the next event, advancing virtual time. It returns false
// when no events remain.
func (n *Network) Step() bool {
	for {
		if len(n.queue) == 0 {
			return false
		}
		e := heap.Pop(&n.queue).(event)
		n.now = e.at
		msg := e.msg
		if n.down[msg.To] || (!e.timer && n.down[msg.From]) {
			n.stats.Blocked++
			continue
		}
		if !e.timer && n.cut[pairKey(msg.From, msg.To)] {
			n.stats.Blocked++
			continue
		}
		h, ok := n.nodes[msg.To]
		if !ok {
			n.stats.Blocked++
			continue
		}
		n.stats.Delivered++
		h(n.now, msg)
		return true
	}
}

// RunUntil processes events until virtual time passes deadline or the queue
// empties. It returns the number of deliveries.
func (n *Network) RunUntil(deadline Time) int {
	count := 0
	for {
		e, ok := n.queue.Peek()
		if !ok || e.at > deadline {
			if n.now < deadline {
				n.now = deadline
			}
			return count
		}
		if n.Step() {
			count++
		}
	}
}

// Drain processes every pending event (and any it spawns) up to a safety
// bound, returning deliveries. Use for "run to quiescence" tests.
func (n *Network) Drain(maxEvents int) int {
	count := 0
	for i := 0; i < maxEvents; i++ {
		if !n.Step() {
			return count
		}
		count++
	}
	return count
}
