// Randomized soak tests for the CALM confluence claims: the example
// applications' final fixpoints must be independent of message delivery
// order. Each seed draws different network latencies (and transducer send
// delays), scrambling arrival order; the observable end state must match
// the seed-0 baseline exactly. Runs cover both the full per-tick
// re-evaluation runtime and the cross-tick incremental runtime, so the
// soak also exercises incremental maintenance under adversarial delivery.
package simnet_test

import (
	"fmt"
	"sort"
	"testing"

	"hydro/internal/cluster"
	"hydro/internal/crdt"
	"hydro/internal/datalog"
	"hydro/internal/hlang"
	"hydro/internal/hydrolysis"
	"hydro/internal/simnet"
	"hydro/internal/transducer"
)

// covidOps is the fixed operation set delivered in seed-scrambled order:
// unique pids per add_person (first-writer-wins columns stay
// order-independent), monotone contact merges, and or-lattice diagnoses.
type covidOp struct {
	box     string
	payload datalog.Tuple
}

func covidOpSet() []covidOp {
	var ops []covidOp
	countries := []string{"us", "fr", "in"}
	for pid := int64(0); pid < 10; pid++ {
		ops = append(ops, covidOp{"add_person", datalog.Tuple{pid, countries[pid%3]}})
	}
	for i := int64(0); i < 9; i++ {
		ops = append(ops, covidOp{"add_contact", datalog.Tuple{i, i + 1}})
	}
	ops = append(ops,
		covidOp{"add_contact", datalog.Tuple{int64(2), int64(7)}},
		covidOp{"diagnosed", datalog.Tuple{int64(0)}},
		covidOp{"diagnosed", datalog.Tuple{int64(5)}},
	)
	return ops
}

// covidFinalState delivers the op set over a simulated network with
// seed-dependent latencies and returns a rendering of the quiesced
// observable state: tables plus post-quiescence trace probes.
func covidFinalState(t *testing.T, seed int64, incremental bool) string {
	t.Helper()
	c, err := hydrolysis.Compile(hlang.CovidSource, hydrolysis.Options{
		UDFs: map[string]hydrolysis.UDF{
			"covid_predict": func(args []any) any { return 0.5 },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var rt *transducer.Runtime
	if incremental {
		rt, err = c.InstantiateIncremental("n1", seed)
	} else {
		rt, err = c.InstantiateFullEval("n1", seed)
	}
	if err != nil {
		t.Fatal(err)
	}

	topo := cluster.NewTopology(1, 1, 1, cluster.ClassSmall)
	machine := topo.Machines[0].ID
	cl := cluster.New(topo, simnet.Config{Seed: seed, MinLatency: 50, MaxLatency: 8000})
	cl.Host(machine, rt)
	cl.Net.AddNode("client", func(now simnet.Time, msg simnet.Message) {})
	for _, op := range covidOpSet() {
		cl.Net.Send("client", machine, transducer.Message{Mailbox: op.box, Payload: op.payload, From: "external"})
	}
	// Interleave network delivery with ticks until everything quiesces.
	for i := 0; i < 100; i++ {
		cl.Round(500)
	}
	rt.RunUntilIdle(100)

	// Post-quiescence probes: the derived transitive closure, observed the
	// way applications observe it (trace fan-out), as payload multisets.
	for pid := int64(0); pid < 10; pid += 3 {
		rt.Inject("trace", datalog.Tuple{pid})
	}
	rt.RunUntilIdle(50)
	var traces []string
	for _, m := range rt.Drain("trace_response") {
		traces = append(traces, fmt.Sprint(m.Payload))
	}
	sort.Strings(traces)

	return fmt.Sprint(
		rt.Table("people").Tuples(),
		rt.Table("contacts").Tuples(),
		traces,
	)
}

// TestCovidConfluenceUnderRandomDelays: for many seeds (and both
// evaluation modes), scrambled delivery must converge to the seed-0
// baseline state — the paper's CALM claim for the monotone COVID ops.
func TestCovidConfluenceUnderRandomDelays(t *testing.T) {
	seeds := int64(10)
	if testing.Short() {
		seeds = 3
	}
	baseline := covidFinalState(t, 0, false)
	for seed := int64(1); seed < seeds; seed++ {
		for _, incremental := range []bool{false, true} {
			if got := covidFinalState(t, seed, incremental); got != baseline {
				t.Fatalf("seed %d (incremental=%v): final state depends on delivery order\nbaseline: %s\ngot:      %s",
					seed, incremental, baseline, got)
			}
		}
	}
}

// TestCartGossipConfluence: shopping-cart CRDT replicas gossiping over the
// simulated network with seed-random latencies must converge to the same
// manifest in every delivery order, and a post-convergence client-side
// seal checks out on every replica without coordination (§7.1).
func TestCartGossipConfluence(t *testing.T) {
	replicas := []string{"r1", "r2", "r3", "r4"}
	adds := map[string][][2]any{
		"r1": {{"book", int64(1)}, {"pen", int64(2)}},
		"r2": {{"book", int64(1)}},
		"r3": {{"mug", int64(3)}, {"pen", int64(1)}},
		"r4": {},
	}
	var baseline string
	seeds := int64(12)
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(0); seed < seeds; seed++ {
		net := simnet.New(simnet.Config{Seed: seed, MinLatency: 50, MaxLatency: 900})
		carts := map[string]*crdt.Cart{}
		for _, r := range replicas {
			name := r
			carts[name] = crdt.NewCart(name)
			for _, a := range adds[name] {
				carts[name] = carts[name].AddItem(a[0].(string), a[1].(int64))
			}
			net.AddNode(name, func(now simnet.Time, msg simnet.Message) {
				switch p := msg.Payload.(type) {
				case *crdt.Cart:
					carts[name] = carts[name].Merge(p)
				case string: // gossip timer: broadcast current state
					for _, other := range replicas {
						if other != name {
							net.Send(name, other, carts[name])
						}
					}
				}
			})
		}
		// Three all-to-all gossip rounds, spaced far beyond max latency so
		// each round sees the previous one's merges; within a round,
		// arrival order is seed-random.
		for round := simnet.Time(1); round <= 3; round++ {
			for _, r := range replicas {
				net.After(r, round*10_000, "gossip")
			}
		}
		net.Drain(10_000)
		manifest := carts["r1"].Manifest()
		for _, r := range replicas {
			if got := carts[r].Manifest(); got != manifest {
				t.Fatalf("seed %d: replica %s manifest %q != %q", seed, r, got, manifest)
			}
		}
		if baseline == "" {
			baseline = manifest
		} else if manifest != baseline {
			t.Fatalf("seed %d: converged manifest %q depends on delivery order (baseline %q)", seed, manifest, baseline)
		}
		// Client-side seal: no replica coordination, every replica checks
		// out once its contents reach the sealed manifest.
		sealed := carts["r1"].Seal(1000)
		for _, r := range replicas {
			if merged := carts[r].Merge(sealed); !merged.CheckedOut() {
				t.Fatalf("seed %d: replica %s failed to check out after seal", seed, r)
			}
		}
	}
}
