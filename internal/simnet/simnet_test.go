package simnet

import (
	"testing"
)

func collectNode(net *Network, name string) *[]Message {
	got := &[]Message{}
	net.AddNode(name, func(now Time, msg Message) { *got = append(*got, msg) })
	return got
}

func TestDeliveryAndLatencyBounds(t *testing.T) {
	net := New(Config{Seed: 1, MinLatency: 10, MaxLatency: 20})
	got := collectNode(net, "b")
	net.AddNode("a", func(now Time, msg Message) {})
	at := net.Send("a", "b", "hi")
	if at < 10 || at > 20 {
		t.Fatalf("latency %d outside [10,20]", at)
	}
	net.Drain(10)
	if len(*got) != 1 || (*got)[0].Payload != "hi" {
		t.Fatalf("delivery = %v", *got)
	}
	if net.Now() != at {
		t.Fatalf("time did not advance to %d (now %d)", at, net.Now())
	}
}

func TestDeterminismUnderSeed(t *testing.T) {
	run := func() []Time {
		net := New(Config{Seed: 99, MinLatency: 1, MaxLatency: 1000})
		var times []Time
		net.AddNode("b", func(now Time, msg Message) { times = append(times, now) })
		net.AddNode("a", func(now Time, msg Message) {})
		for i := 0; i < 20; i++ {
			net.Send("a", "b", i)
		}
		net.Drain(100)
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different schedules")
		}
	}
}

func TestDropRate(t *testing.T) {
	net := New(Config{Seed: 7, MinLatency: 1, MaxLatency: 1, DropRate: 0.5})
	got := collectNode(net, "b")
	net.AddNode("a", func(now Time, msg Message) {})
	for i := 0; i < 200; i++ {
		net.Send("a", "b", i)
	}
	net.Drain(500)
	if len(*got) == 0 || len(*got) == 200 {
		t.Fatalf("drop rate 0.5 delivered %d/200", len(*got))
	}
	s := net.Stats()
	if s.Dropped+s.Delivered != s.Sent {
		t.Fatalf("stats inconsistent: %+v", s)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	net := New(DefaultConfig(3))
	got := collectNode(net, "b")
	net.AddNode("a", func(now Time, msg Message) {})
	net.Partition("a", "b")
	net.Send("a", "b", "lost")
	net.Drain(10)
	if len(*got) != 0 {
		t.Fatal("partitioned message delivered")
	}
	net.Heal("a", "b")
	net.Send("a", "b", "ok")
	net.Drain(10)
	if len(*got) != 1 {
		t.Fatal("healed link did not deliver")
	}
	if net.Stats().Blocked != 1 {
		t.Fatalf("blocked = %d", net.Stats().Blocked)
	}
}

func TestDownNode(t *testing.T) {
	net := New(DefaultConfig(3))
	got := collectNode(net, "b")
	net.AddNode("a", func(now Time, msg Message) {})
	net.SetDown("b", true)
	net.Send("a", "b", "x")
	net.Drain(10)
	if len(*got) != 0 {
		t.Fatal("down node received a message")
	}
	net.SetDown("b", false)
	net.Send("a", "b", "y")
	net.Drain(10)
	if len(*got) != 1 {
		t.Fatal("recovered node did not receive")
	}
	// Messages *from* a down node are dropped too.
	net.SetDown("a", true)
	net.Send("a", "b", "z")
	net.Drain(10)
	if len(*got) != 1 {
		t.Fatal("message from a down sender delivered")
	}
}

func TestTimersFireAcrossPartitions(t *testing.T) {
	net := New(DefaultConfig(5))
	fired := 0
	net.AddNode("a", func(now Time, msg Message) { fired++ })
	net.Partition("a", "a") // nonsensical but must not block timers
	net.After("a", 100, "tick")
	net.Drain(10)
	if fired != 1 {
		t.Fatal("timer did not fire")
	}
}

func TestCrossDomainPenalty(t *testing.T) {
	net := New(Config{Seed: 1, MinLatency: 10, MaxLatency: 10, CrossDomainPenalty: 1000})
	net.AddNode("a", func(now Time, msg Message) {})
	net.AddNode("b", func(now Time, msg Message) {})
	net.SetDomain("a", "az1")
	net.SetDomain("b", "az2")
	if at := net.Send("a", "b", "x"); at != 1010 {
		t.Fatalf("cross-domain latency = %d, want 1010", at)
	}
	net.SetDomain("b", "az1")
	if at := net.Send("a", "b", "x"); at != 10 {
		t.Fatalf("same-domain latency = %d, want 10", at)
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	net := New(Config{Seed: 1, MinLatency: 100, MaxLatency: 100})
	got := collectNode(net, "b")
	net.AddNode("a", func(now Time, msg Message) {})
	net.Send("a", "b", 1)
	n := net.RunUntil(50) // too early
	if n != 0 || len(*got) != 0 {
		t.Fatal("delivered before latency elapsed")
	}
	if net.Now() != 50 {
		t.Fatalf("clock should advance to deadline, now=%d", net.Now())
	}
	net.RunUntil(200)
	if len(*got) != 1 {
		t.Fatal("not delivered by deadline")
	}
}

func TestOrderingStableAtSameInstant(t *testing.T) {
	net := New(Config{Seed: 1, MinLatency: 5, MaxLatency: 5})
	var order []int
	net.AddNode("b", func(now Time, msg Message) { order = append(order, msg.Payload.(int)) })
	net.AddNode("a", func(now Time, msg Message) {})
	for i := 0; i < 5; i++ {
		net.Send("a", "b", i)
	}
	net.Drain(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant delivery reordered: %v", order)
		}
	}
}

func TestCascadingSendsFromHandler(t *testing.T) {
	net := New(Config{Seed: 1, MinLatency: 1, MaxLatency: 1})
	hops := 0
	net.AddNode("relay", func(now Time, msg Message) {
		if n := msg.Payload.(int); n > 0 {
			hops++
			net.Send("relay", "relay", n-1)
		}
	})
	net.Send("relay", "relay", 5)
	net.Drain(100)
	if hops != 5 {
		t.Fatalf("relay hops = %d, want 5", hops)
	}
}
