// Chaos tests: the soak properties must survive infrastructure failure,
// not just delivery-order scrambling. Replicas run the applications in
// cross-tick incremental mode under seed-random latencies while whole
// failure domains go down mid-run and recover; after clients re-deliver
// (the ops are idempotent), every replica — including the one that lost
// in-flight traffic — must reconverge to the reference fixpoint.
package simnet_test

import (
	"fmt"
	"sort"
	"testing"

	"hydro/internal/cluster"
	"hydro/internal/datalog"
	"hydro/internal/hlang"
	"hydro/internal/hydrolysis"
	"hydro/internal/simnet"
	"hydro/internal/transducer"
)

// covidReplicaState renders one replica's observable quiesced state:
// tables plus post-quiescence trace probes (the way applications observe
// the derived transitive closure).
func covidReplicaState(rt *transducer.Runtime) string {
	for pid := int64(0); pid < 10; pid += 3 {
		rt.Inject("trace", datalog.Tuple{pid})
	}
	rt.RunUntilIdle(50)
	var traces []string
	for _, m := range rt.Drain("trace_response") {
		traces = append(traces, fmt.Sprint(m.Payload))
	}
	sort.Strings(traces)
	return fmt.Sprint(
		rt.Table("people").Tuples(),
		rt.Table("contacts").Tuples(),
		traces,
	)
}

// TestCovidChaosFailRecoverReconverges: three COVID replicas (incremental
// mode, one per AZ) receive the soak op set over a lossy-ordered network;
// mid-delivery an entire AZ fails, taking its undelivered traffic with it.
// After recovery the client re-broadcasts the full idempotent op set, and
// every replica — the failed one included — must reach exactly the
// reference fixpoint computed on an undisturbed runtime.
func TestCovidChaosFailRecoverReconverges(t *testing.T) {
	compile := func() *hydrolysis.Compiled {
		c, err := hydrolysis.Compile(hlang.CovidSource, hydrolysis.Options{
			UDFs: map[string]hydrolysis.UDF{
				"covid_predict": func(args []any) any { return 0.5 },
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	// Reference: one undisturbed replica fed directly.
	ref, err := compile().Instantiate("ref", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range covidOpSet() {
		ref.Inject(op.box, op.payload)
	}
	ref.RunUntilIdle(200)
	baseline := covidReplicaState(ref)

	seeds := int64(6)
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(1); seed <= seeds; seed++ {
		topo := cluster.NewTopology(3, 1, 1, cluster.ClassSmall)
		cl := cluster.New(topo, simnet.Config{Seed: seed, MinLatency: 50, MaxLatency: 8000})
		var machines []string
		for _, m := range topo.Machines {
			rt, err := compile().Instantiate(m.ID, seed)
			if err != nil {
				t.Fatal(err)
			}
			cl.Host(m.ID, rt)
			machines = append(machines, m.ID)
		}
		cl.Net.AddNode("client", func(now simnet.Time, msg simnet.Message) {})
		broadcast := func() {
			for _, op := range covidOpSet() {
				for _, m := range machines {
					cl.Net.Send("client", m, transducer.Message{Mailbox: op.box, Payload: op.payload, From: "external"})
				}
			}
		}

		broadcast()
		cl.RunRounds(3, 500) // some traffic lands, most is still in flight
		failed := cl.FailDomain(cluster.AZ, "az2")
		if len(failed) != 1 {
			t.Fatalf("seed %d: failed machines = %v, want exactly az2's", seed, failed)
		}
		cl.RunRounds(20, 500) // the survivors drain while az2 drops traffic
		if cl.Net.Stats().Blocked == 0 {
			t.Fatalf("seed %d: failure window dropped no traffic — the chaos test isn't chaotic", seed)
		}
		for _, m := range failed {
			cl.Recover(m)
		}
		broadcast() // idempotent redelivery covers everything az2 lost
		for i := 0; i < 100; i++ {
			cl.Round(500)
		}
		for _, m := range machines {
			rt := cl.Runtime(m)
			rt.RunUntilIdle(200)
			if got := covidReplicaState(rt); got != baseline {
				t.Fatalf("seed %d: replica %s did not reconverge after fail/recover\nbaseline: %s\ngot:      %s",
					seed, m, baseline, got)
			}
		}
	}
}

// chaosGraphRuntime builds an incremental transducer maintaining the
// transitive closure of an edge table, with idempotent add/del handlers —
// the delete path exercises DRed maintenance under chaos.
func chaosGraphRuntime(t *testing.T, name string, seed int64) *transducer.Runtime {
	t.Helper()
	rt := transducer.New(name, seed)
	rt.RegisterTable(transducer.TableSchema{Name: "edge", Arity: 2})
	prog, err := datalog.NewProgram(
		datalog.Rule{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}},
			Body: []datalog.Literal{{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}}},
		},
		datalog.Rule{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("z")}},
			Body: []datalog.Literal{
				{Atom: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}},
				{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("y"), datalog.V("z")}}},
			},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterQueriesIncremental(prog); err != nil {
		t.Fatal(err)
	}
	rt.RegisterHandler("add_edge", func(tx *transducer.Tx, msg transducer.Message) {
		tx.MergeTuple("edge", msg.Payload)
	})
	rt.RegisterHandler("del_edge", func(tx *transducer.Tx, msg transducer.Message) {
		tx.Delete("edge", msg.Payload)
	})
	return rt
}

// TestIncrementalDeleteChaosReconverges: replicated incremental closures
// under retraction traffic with a mid-run failure. Phase one builds chained
// and cyclic edges on every replica and quiesces; phase two retracts a
// cross-section of them (cycle cuts included) while one replica fails,
// recovers, and has the retractions re-delivered. Every replica's
// maintained fixpoint must equal a from-scratch evaluation of the final
// edge set — deletions under chaos may not leave phantom paths behind.
func TestIncrementalDeleteChaosReconverges(t *testing.T) {
	var adds, dels []datalog.Tuple
	for i := int64(0); i < 12; i++ { // chain 0..12
		adds = append(adds, datalog.Tuple{i, i + 1})
	}
	for i := int64(20); i < 26; i++ { // cycle 20..25→20
		adds = append(adds, datalog.Tuple{i, i + 1})
	}
	adds = append(adds, datalog.Tuple{int64(26), int64(20)},
		datalog.Tuple{int64(3), int64(21)}) // bridge into the cycle
	// Retract a mid-chain edge, the bridge, and cut the cycle.
	dels = append(dels,
		datalog.Tuple{int64(5), int64(6)},
		datalog.Tuple{int64(3), int64(21)},
		datalog.Tuple{int64(23), int64(24)},
	)

	// Reference fixpoint over the final edge set.
	refDB := datalog.NewDatabase()
	edge := refDB.Ensure("edge", 2)
	for _, tup := range adds {
		edge.Insert(tup)
	}
	for _, tup := range dels {
		edge.Delete(tup)
	}
	refProg, err := datalog.NewProgram(
		datalog.Rule{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}},
			Body: []datalog.Literal{{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}}},
		},
		datalog.Rule{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("z")}},
			Body: []datalog.Literal{
				{Atom: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}},
				{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("y"), datalog.V("z")}}},
			},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refProg.Eval(refDB); err != nil {
		t.Fatal(err)
	}
	wantPath := fmt.Sprint(refDB.Get("path").Tuples())
	wantEdge := fmt.Sprint(refDB.Get("edge").Tuples())

	seeds := int64(8)
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(1); seed <= seeds; seed++ {
		topo := cluster.NewTopology(2, 1, 1, cluster.ClassSmall)
		cl := cluster.New(topo, simnet.Config{Seed: seed, MinLatency: 50, MaxLatency: 4000})
		var machines []string
		for _, m := range topo.Machines {
			cl.Host(m.ID, chaosGraphRuntime(t, m.ID, seed))
			machines = append(machines, m.ID)
		}
		cl.Net.AddNode("client", func(now simnet.Time, msg simnet.Message) {})
		send := func(box string, tuples []datalog.Tuple) {
			for _, tup := range tuples {
				for _, m := range machines {
					cl.Net.Send("client", m, transducer.Message{Mailbox: box, Payload: tup, From: "external"})
				}
			}
		}

		// Phase one: build the graph everywhere and quiesce (adds and
		// deletes must not race — retraction order against insertion is not
		// confluent).
		send("add_edge", adds)
		for i := 0; i < 60; i++ {
			cl.Round(500)
		}
		for _, m := range machines {
			cl.Runtime(m).RunUntilIdle(100)
		}

		// Phase two: retraction traffic with a mid-run failure.
		send("del_edge", dels)
		cl.RunRounds(2, 500)
		failed := cl.FailDomain(cluster.AZ, "az2")
		cl.RunRounds(15, 500)
		for _, m := range failed {
			cl.Recover(m)
		}
		send("del_edge", dels) // idempotent redelivery
		for i := 0; i < 60; i++ {
			cl.Round(500)
		}
		for _, m := range machines {
			rt := cl.Runtime(m)
			rt.RunUntilIdle(100)
			if got := fmt.Sprint(rt.Table("edge").Tuples()); got != wantEdge {
				t.Fatalf("seed %d: replica %s edge set diverged\nwant: %s\ngot:  %s", seed, m, wantEdge, got)
			}
			if got := fmt.Sprint(rt.Table("path").Tuples()); got != wantPath {
				t.Fatalf("seed %d: replica %s maintained closure diverged from reference\nwant: %s\ngot:  %s", seed, m, wantPath, got)
			}
		}
	}
}
