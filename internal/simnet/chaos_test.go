// Chaos tests: the soak properties must survive infrastructure failure,
// not just delivery-order scrambling. Replicas run the applications in
// cross-tick incremental mode under seed-random latencies while whole
// failure domains go down mid-run and recover; after clients re-deliver
// (the ops are idempotent), every replica — including the one that lost
// in-flight traffic — must reconverge to the reference fixpoint.
package simnet_test

import (
	"fmt"
	"sort"
	"testing"

	"hydro/internal/cluster"
	"hydro/internal/datalog"
	"hydro/internal/hlang"
	"hydro/internal/hydrolysis"
	"hydro/internal/shard"
	"hydro/internal/simnet"
	"hydro/internal/target"
	"hydro/internal/transducer"
)

// covidReplicaState renders one replica's observable quiesced state:
// tables plus post-quiescence trace probes (the way applications observe
// the derived transitive closure).
func covidReplicaState(rt *transducer.Runtime) string {
	for pid := int64(0); pid < 10; pid += 3 {
		rt.Inject("trace", datalog.Tuple{pid})
	}
	rt.RunUntilIdle(50)
	var traces []string
	for _, m := range rt.Drain("trace_response") {
		traces = append(traces, fmt.Sprint(m.Payload))
	}
	sort.Strings(traces)
	return fmt.Sprint(
		rt.Table("people").Tuples(),
		rt.Table("contacts").Tuples(),
		traces,
	)
}

// TestCovidChaosFailRecoverReconverges: three COVID replicas (incremental
// mode, one per AZ) receive the soak op set over a lossy-ordered network;
// mid-delivery an entire AZ fails, taking its undelivered traffic with it.
// After recovery the client re-broadcasts the full idempotent op set, and
// every replica — the failed one included — must reach exactly the
// reference fixpoint computed on an undisturbed runtime.
func TestCovidChaosFailRecoverReconverges(t *testing.T) {
	compile := func() *hydrolysis.Compiled {
		c, err := hydrolysis.Compile(hlang.CovidSource, hydrolysis.Options{
			UDFs: map[string]hydrolysis.UDF{
				"covid_predict": func(args []any) any { return 0.5 },
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	// Reference: one undisturbed replica fed directly.
	ref, err := compile().Instantiate("ref", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range covidOpSet() {
		ref.Inject(op.box, op.payload)
	}
	ref.RunUntilIdle(200)
	baseline := covidReplicaState(ref)

	seeds := int64(6)
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(1); seed <= seeds; seed++ {
		topo := cluster.NewTopology(3, 1, 1, cluster.ClassSmall)
		cl := cluster.New(topo, simnet.Config{Seed: seed, MinLatency: 50, MaxLatency: 8000})
		var machines []string
		for _, m := range topo.Machines {
			rt, err := compile().Instantiate(m.ID, seed)
			if err != nil {
				t.Fatal(err)
			}
			cl.Host(m.ID, rt)
			machines = append(machines, m.ID)
		}
		cl.Net.AddNode("client", func(now simnet.Time, msg simnet.Message) {})
		broadcast := func() {
			for _, op := range covidOpSet() {
				for _, m := range machines {
					cl.Net.Send("client", m, transducer.Message{Mailbox: op.box, Payload: op.payload, From: "external"})
				}
			}
		}

		broadcast()
		cl.RunRounds(3, 500) // some traffic lands, most is still in flight
		failed := cl.FailDomain(cluster.AZ, "az2")
		if len(failed) != 1 {
			t.Fatalf("seed %d: failed machines = %v, want exactly az2's", seed, failed)
		}
		cl.RunRounds(20, 500) // the survivors drain while az2 drops traffic
		if cl.Net.Stats().Blocked == 0 {
			t.Fatalf("seed %d: failure window dropped no traffic — the chaos test isn't chaotic", seed)
		}
		for _, m := range failed {
			cl.Recover(m)
		}
		broadcast() // idempotent redelivery covers everything az2 lost
		for i := 0; i < 100; i++ {
			cl.Round(500)
		}
		for _, m := range machines {
			rt := cl.Runtime(m)
			rt.RunUntilIdle(200)
			if got := covidReplicaState(rt); got != baseline {
				t.Fatalf("seed %d: replica %s did not reconverge after fail/recover\nbaseline: %s\ngot:      %s",
					seed, m, baseline, got)
			}
		}
	}
}

// chaosGraphRuntime builds an incremental transducer maintaining the
// transitive closure of an edge table, with idempotent add/del handlers —
// the delete path exercises DRed maintenance under chaos.
func chaosGraphRuntime(t *testing.T, name string, seed int64) *transducer.Runtime {
	t.Helper()
	rt := transducer.New(name, seed)
	rt.RegisterTable(transducer.TableSchema{Name: "edge", Arity: 2})
	prog, err := datalog.NewProgram(
		datalog.Rule{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}},
			Body: []datalog.Literal{{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}}},
		},
		datalog.Rule{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("z")}},
			Body: []datalog.Literal{
				{Atom: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}},
				{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("y"), datalog.V("z")}}},
			},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterQueriesIncremental(prog); err != nil {
		t.Fatal(err)
	}
	rt.RegisterHandler("add_edge", func(tx *transducer.Tx, msg transducer.Message) {
		tx.MergeTuple("edge", msg.Payload)
	})
	rt.RegisterHandler("del_edge", func(tx *transducer.Tx, msg transducer.Message) {
		tx.Delete("edge", msg.Payload)
	})
	return rt
}

// TestIncrementalDeleteChaosReconverges: replicated incremental closures
// under retraction traffic with a mid-run failure. Phase one builds chained
// and cyclic edges on every replica and quiesces; phase two retracts a
// cross-section of them (cycle cuts included) while one replica fails,
// recovers, and has the retractions re-delivered. Every replica's
// maintained fixpoint must equal a from-scratch evaluation of the final
// edge set — deletions under chaos may not leave phantom paths behind.
func TestIncrementalDeleteChaosReconverges(t *testing.T) {
	var adds, dels []datalog.Tuple
	for i := int64(0); i < 12; i++ { // chain 0..12
		adds = append(adds, datalog.Tuple{i, i + 1})
	}
	for i := int64(20); i < 26; i++ { // cycle 20..25→20
		adds = append(adds, datalog.Tuple{i, i + 1})
	}
	adds = append(adds, datalog.Tuple{int64(26), int64(20)},
		datalog.Tuple{int64(3), int64(21)}) // bridge into the cycle
	// Retract a mid-chain edge, the bridge, and cut the cycle.
	dels = append(dels,
		datalog.Tuple{int64(5), int64(6)},
		datalog.Tuple{int64(3), int64(21)},
		datalog.Tuple{int64(23), int64(24)},
	)

	// Reference fixpoint over the final edge set.
	refDB := datalog.NewDatabase()
	edge := refDB.Ensure("edge", 2)
	for _, tup := range adds {
		edge.Insert(tup)
	}
	for _, tup := range dels {
		edge.Delete(tup)
	}
	refProg, err := datalog.NewProgram(
		datalog.Rule{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}},
			Body: []datalog.Literal{{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}}},
		},
		datalog.Rule{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("z")}},
			Body: []datalog.Literal{
				{Atom: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}},
				{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("y"), datalog.V("z")}}},
			},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refProg.Eval(refDB); err != nil {
		t.Fatal(err)
	}
	wantPath := fmt.Sprint(refDB.Get("path").Tuples())
	wantEdge := fmt.Sprint(refDB.Get("edge").Tuples())

	seeds := int64(8)
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(1); seed <= seeds; seed++ {
		topo := cluster.NewTopology(2, 1, 1, cluster.ClassSmall)
		cl := cluster.New(topo, simnet.Config{Seed: seed, MinLatency: 50, MaxLatency: 4000})
		var machines []string
		for _, m := range topo.Machines {
			cl.Host(m.ID, chaosGraphRuntime(t, m.ID, seed))
			machines = append(machines, m.ID)
		}
		cl.Net.AddNode("client", func(now simnet.Time, msg simnet.Message) {})
		send := func(box string, tuples []datalog.Tuple) {
			for _, tup := range tuples {
				for _, m := range machines {
					cl.Net.Send("client", m, transducer.Message{Mailbox: box, Payload: tup, From: "external"})
				}
			}
		}

		// Phase one: build the graph everywhere and quiesce (adds and
		// deletes must not race — retraction order against insertion is not
		// confluent).
		send("add_edge", adds)
		for i := 0; i < 60; i++ {
			cl.Round(500)
		}
		for _, m := range machines {
			cl.Runtime(m).RunUntilIdle(100)
		}

		// Phase two: retraction traffic with a mid-run failure.
		send("del_edge", dels)
		cl.RunRounds(2, 500)
		failed := cl.FailDomain(cluster.AZ, "az2")
		cl.RunRounds(15, 500)
		for _, m := range failed {
			cl.Recover(m)
		}
		send("del_edge", dels) // idempotent redelivery
		for i := 0; i < 60; i++ {
			cl.Round(500)
		}
		for _, m := range machines {
			rt := cl.Runtime(m)
			rt.RunUntilIdle(100)
			if got := fmt.Sprint(rt.Table("edge").Tuples()); got != wantEdge {
				t.Fatalf("seed %d: replica %s edge set diverged\nwant: %s\ngot:  %s", seed, m, wantEdge, got)
			}
			if got := fmt.Sprint(rt.Table("path").Tuples()); got != wantPath {
				t.Fatalf("seed %d: replica %s maintained closure diverged from reference\nwant: %s\ngot:  %s", seed, m, wantPath, got)
			}
		}
	}
}

// ---- Sharded-dataflow chaos: the distributed fixpoint under churn ----

var shardTCRules = []datalog.Rule{
	{
		Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}},
		Body: []datalog.Literal{{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}}},
	},
	{
		Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("z")}},
		Body: []datalog.Literal{
			{Atom: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}},
			{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("y"), datalog.V("z")}}},
		},
	},
}

// shardOracle folds realized versions of the same raw ops into a
// single-node incremental fixpoint.
type shardOracle struct {
	inc *datalog.Incremental
}

func newShardOracle(t *testing.T, rules []datalog.Rule, edb map[string]int) *shardOracle {
	t.Helper()
	prog, err := datalog.NewProgram(rules...)
	if err != nil {
		t.Fatal(err)
	}
	db := datalog.NewDatabase()
	for pred, ar := range edb {
		db.Ensure(pred, ar)
	}
	inc, err := datalog.NewIncremental(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	return &shardOracle{inc: inc}
}

func (o *shardOracle) tick(t *testing.T, ops []datalog.DeltaOp) {
	t.Helper()
	delta := datalog.NewDelta()
	for _, op := range ops {
		rel := o.inc.DB().Get(op.Pred)
		if op.Del {
			if rel.Delete(op.T) {
				delta.Delete(op.Pred, op.T)
			}
		} else if rel.Insert(op.T) {
			delta.Insert(op.Pred, op.T)
		}
	}
	if _, err := o.inc.Apply(delta); err != nil {
		t.Fatal(err)
	}
}

func edgeIns(a, b int64) datalog.DeltaOp {
	return datalog.DeltaOp{Pred: "edge", T: datalog.Tuple{a, b}}
}

func edgeDel(a, b int64) datalog.DeltaOp {
	return datalog.DeltaOp{Del: true, Pred: "edge", T: datalog.Tuple{a, b}}
}

// TestShardedTCChaosFailRecoverReconverges: a 3-replica hash-partitioned
// transitive-closure deployment (one replica per AZ, placed by the
// deployment ILP) loses a whole AZ mid-tick — in-flight exchange traffic
// and coordinator requests with it — and again during a delete-heavy tick
// whose DRed retractions cross shard boundaries. The coordinator's
// attempt-retry protocol redelivers after each Recover, and the sharded
// fixpoint must land byte-identical to the single-node oracle.
func TestShardedTCChaosFailRecoverReconverges(t *testing.T) {
	edb := map[string]int{"edge": 2}
	prog, err := datalog.NewProgram(shardTCRules...)
	if err != nil {
		t.Fatal(err)
	}
	topo := cluster.NewTopology(3, 2, 2, cluster.ClassSmall)
	cl := cluster.New(topo, simnet.DefaultConfig(4242))
	machines, err := target.PlaceReplicas(topo, 3)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := shard.Deploy(cl, "tcchaos", prog, edb, machines, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := newShardOracle(t, shardTCRules, edb)

	check := func(stage string) {
		t.Helper()
		want := shard.DumpDatabase(ref.inc.DB(), dep.Placement().Preds)
		if got := dep.DumpString(); got != want {
			t.Fatalf("%s: sharded diverged:\n%s\nwant:\n%s", stage, got, want)
		}
		if err := dep.CheckMirrors(); err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
	}

	// Tick 1: build a chain crossing every shard, undisturbed.
	t1 := []datalog.DeltaOp{edgeIns(1, 2), edgeIns(2, 3), edgeIns(3, 4), edgeIns(4, 5), edgeIns(5, 6)}
	if err := dep.Submit(t1); err != nil {
		t.Fatal(err)
	}
	if !dep.Settle(400_000) {
		t.Fatal("tick 1 did not settle")
	}
	ref.tick(t, t1)
	check("tick 1")

	// Tick 2: submit, then take out an entire replica AZ before the tick
	// can finish. The protocol must stall, not corrupt.
	t2 := []datalog.DeltaOp{edgeIns(6, 7), edgeIns(7, 1)}
	if err := dep.Submit(t2); err != nil {
		t.Fatal(err)
	}
	az := topo.Get(machines[1]).AZ
	failed := cl.FailDomain(cluster.AZ, az)
	if len(failed) == 0 {
		t.Fatalf("FailDomain(%s) failed nothing", az)
	}
	cl.Net.RunUntil(cl.Net.Now() + 5_000_000) // 5s of retries against a dead AZ
	ref.tick(t, t2)
	if dep.DumpString() == shard.DumpDatabase(ref.inc.DB(), dep.Placement().Preds) {
		t.Log("tick 2 completed before the AZ failure bit (timing-dependent, fine)")
	}
	for _, id := range failed {
		cl.Recover(id)
	}
	if !dep.Settle(400_000) {
		t.Fatal("tick 2 did not settle after recovery")
	}
	check("tick 2 after recovery")

	// Tick 3: delete-heavy — cutting (3,4) and (7,1) retracts closure
	// tuples owned by every shard — with a different AZ failing mid-tick.
	t3 := []datalog.DeltaOp{edgeDel(3, 4), edgeDel(7, 1), edgeIns(3, 7)}
	if err := dep.Submit(t3); err != nil {
		t.Fatal(err)
	}
	az2 := topo.Get(machines[2]).AZ
	failed = cl.FailDomain(cluster.AZ, az2)
	cl.Net.RunUntil(cl.Net.Now() + 5_000_000)
	for _, id := range failed {
		cl.Recover(id)
	}
	if !dep.Settle(400_000) {
		t.Fatal("tick 3 did not settle after recovery")
	}
	ref.tick(t, t3)
	check("tick 3 delete-heavy after recovery")
}

// TestShardedTCFlappingLinksChurn: instead of clean fail/recover cycles,
// the links between the coordinator and replicas (and between replica
// pairs) flap repeatedly while ticks are in flight. Dropped requests,
// dropped exchange batches, and dropped acks all look the same to the
// coordinator — a stalled attempt — and every flap-heal cycle must end
// with the deployment reconverging to the oracle.
func TestShardedTCFlappingLinksChurn(t *testing.T) {
	edb := map[string]int{"edge": 2}
	prog, err := datalog.NewProgram(shardTCRules...)
	if err != nil {
		t.Fatal(err)
	}
	topo := cluster.NewTopology(3, 2, 2, cluster.ClassSmall)
	cl := cluster.New(topo, simnet.DefaultConfig(777))
	machines, err := target.PlaceReplicas(topo, 3)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := shard.Deploy(cl, "tcflap", prog, edb, machines, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := newShardOracle(t, shardTCRules, edb)

	ticks := [][]datalog.DeltaOp{
		{edgeIns(1, 2), edgeIns(2, 3), edgeIns(3, 4)},
		{edgeIns(4, 5), edgeIns(5, 1)},
		{edgeDel(2, 3), edgeIns(2, 5)},
		{edgeDel(5, 1), edgeDel(3, 4), edgeIns(4, 1)},
	}
	for i, ops := range ticks {
		if err := dep.Submit(ops); err != nil {
			t.Fatal(err)
		}
		// Flap a rotating set of links while the tick runs: the acting
		// leader to one replica, plus one replica pair. The leader is
		// looked up per flap — the control plane is replicated now, and a
		// flap that costs the leader its lease moves the target.
		for flap := 0; flap < 3; flap++ {
			coord := dep.Leader()
			a := machines[(i+flap)%len(machines)]
			b := machines[(i+flap+1)%len(machines)]
			cl.Net.Partition(coord, a)
			cl.Net.Partition(a, b)
			cl.Net.RunUntil(cl.Net.Now() + 1_500_000) // 1.5s partitioned
			cl.Net.Heal(coord, a)
			cl.Net.Heal(a, b)
			cl.Net.RunUntil(cl.Net.Now() + 500_000)
		}
		if !dep.Settle(400_000) {
			t.Fatalf("tick %d did not settle after churn", i)
		}
		ref.tick(t, ops)
		want := shard.DumpDatabase(ref.inc.DB(), dep.Placement().Preds)
		if got := dep.DumpString(); got != want {
			t.Fatalf("tick %d diverged after churn:\n%s\nwant:\n%s", i, got, want)
		}
		if err := dep.CheckMirrors(); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}
}

// TestShardedCovidChaosConverges runs the paper's COVID workload through
// the compiled pipeline: hydrolysis compiles Fig 3's source, the declared
// partition(country) column shards `people`, the transitive-closure query
// rules shard `contacts`, and the deployment survives an AZ failure during
// a tick that retracts contact edges (cross-shard DRed on the contact
// graph's closure).
func TestShardedCovidChaosConverges(t *testing.T) {
	compiled, err := hydrolysis.Compile(hlang.CovidSource, hydrolysis.Options{
		UDFs: map[string]hydrolysis.UDF{
			"covid_predict": func(args []any) any { return 0.5 },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	topo := cluster.NewTopology(3, 2, 2, cluster.ClassSmall)
	cl := cluster.New(topo, simnet.DefaultConfig(2021))
	dep, err := compiled.InstantiateSharded(cl, "covid", 3, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := dep.Placement().Specs["people"]; s.Mirrored || s.Col != 1 {
		t.Fatalf("people should shard on declared partition(country): %+v", s)
	}

	// Single-node oracle over an independently compiled copy of the same
	// query program.
	refCompiled, err := hydrolysis.Compile(hlang.CovidSource, hydrolysis.Options{
		UDFs: map[string]hydrolysis.UDF{
			"covid_predict": func(args []any) any { return 0.5 },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	refDB := datalog.NewDatabase()
	for _, tb := range refCompiled.Program.Tables {
		refDB.Ensure(tb.Name, tb.Arity())
	}
	inc, err := datalog.NewIncremental(refCompiled.Queries, refDB)
	if err != nil {
		t.Fatal(err)
	}
	refTick := func(ops []datalog.DeltaOp) {
		delta := datalog.NewDelta()
		for _, op := range ops {
			rel := refDB.Get(op.Pred)
			if op.Del {
				if rel.Delete(op.T) {
					delta.Delete(op.Pred, op.T)
				}
			} else if rel.Insert(op.T) {
				delta.Insert(op.Pred, op.T)
			}
		}
		if _, err := inc.Apply(delta); err != nil {
			t.Fatal(err)
		}
	}

	person := func(pid int64, country string) datalog.DeltaOp {
		return datalog.DeltaOp{Pred: "people", T: datalog.Tuple{pid, country, false, false}}
	}
	contact := func(a, b int64) datalog.DeltaOp {
		return datalog.DeltaOp{Pred: "contacts", T: datalog.Tuple{a, b}}
	}
	uncontact := func(a, b int64) datalog.DeltaOp {
		return datalog.DeltaOp{Del: true, Pred: "contacts", T: datalog.Tuple{a, b}}
	}

	ticks := [][]datalog.DeltaOp{
		{person(1, "is"), person(2, "nz"), person(3, "is"), person(4, "us"),
			contact(1, 2), contact(2, 1), contact(2, 3), contact(3, 2)},
		{person(5, "nz"), contact(3, 4), contact(4, 3), contact(4, 5), contact(5, 4)},
		{uncontact(2, 3), uncontact(3, 2), contact(1, 5), contact(5, 1)},
	}
	for i, ops := range ticks {
		if err := dep.Submit(ops); err != nil {
			t.Fatal(err)
		}
		if i == 2 { // AZ failure during the retraction tick
			az := topo.Get(dep.Replicas()[0]).AZ
			failed := cl.FailDomain(cluster.AZ, az)
			cl.Net.RunUntil(cl.Net.Now() + 4_000_000)
			for _, id := range failed {
				cl.Recover(id)
			}
		}
		if !dep.Settle(400_000) {
			t.Fatalf("covid tick %d did not settle", i)
		}
		refTick(ops)
		want := shard.DumpDatabase(refDB, dep.Placement().Preds)
		if got := dep.DumpString(); got != want {
			t.Fatalf("covid tick %d diverged:\n%s\nwant:\n%s", i, got, want)
		}
	}
	if err := dep.CheckMirrors(); err != nil {
		t.Fatal(err)
	}
}
