package cluster

import (
	"math/rand"
	"testing"

	"hydro/internal/datalog"
	"hydro/internal/simnet"
	"hydro/internal/transducer"
)

func TestTopologyShape(t *testing.T) {
	topo := NewTopology(3, 2, 4, ClassSmall)
	if len(topo.Machines) != 24 {
		t.Fatalf("machines = %d, want 24", len(topo.Machines))
	}
	if got := topo.DomainValues(AZ); len(got) != 3 {
		t.Fatalf("AZs = %v", got)
	}
	if got := topo.DomainValues(Rack); len(got) != 6 {
		t.Fatalf("racks = %v", got)
	}
	m := topo.Get("az2-r1-m3")
	if m == nil || m.AZ != "az2" || m.Rack != "az2-r1" || m.DomainID(DC) != "az2-dc" {
		t.Fatalf("machine lookup broken: %+v", m)
	}
}

func TestSpreadAcross(t *testing.T) {
	topo := NewTopology(3, 2, 2, ClassSmall)
	ms, err := topo.SpreadAcross(AZ, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, m := range ms {
		if seen[m.AZ] {
			t.Fatal("two replicas share an AZ")
		}
		seen[m.AZ] = true
	}
	if _, err := topo.SpreadAcross(AZ, 4); err == nil {
		t.Fatal("must fail when asking for more domains than exist")
	}
}

func TestSpreadSkipsDownMachines(t *testing.T) {
	topo := NewTopology(2, 1, 1, ClassSmall)
	c := New(topo, simnet.DefaultConfig(1))
	c.FailDomain(AZ, "az1")
	if _, err := topo.SpreadAcross(AZ, 2); err == nil {
		t.Fatal("down AZ should be unavailable for placement")
	}
	if ms, err := topo.SpreadAcross(AZ, 1); err != nil || ms[0].AZ != "az2" {
		t.Fatalf("placement = %v, %v", ms, err)
	}
}

func fixedDelay(r *rand.Rand) int { return 1 }

func TestHostedRuntimesExchangeMessages(t *testing.T) {
	topo := NewTopology(2, 1, 1, ClassSmall)
	c := New(topo, simnet.Config{Seed: 1, MinLatency: 10, MaxLatency: 10})

	a := transducer.New("az1-r1-m1", 1)
	a.SetDelay(fixedDelay)
	b := transducer.New("az2-r1-m1", 2)
	b.SetDelay(fixedDelay)

	var got []transducer.Message
	a.RegisterHandler("kick", func(tx *transducer.Tx, msg transducer.Message) {
		tx.Send("az2-r1-m1/work", datalog.Tuple{"payload"})
	})
	b.RegisterHandler("work", func(tx *transducer.Tx, msg transducer.Message) {
		got = append(got, msg)
	})
	c.Host("az1-r1-m1", a)
	c.Host("az2-r1-m1", b)

	a.Inject("kick", datalog.Tuple{})
	c.RunRounds(6, 100)
	if len(got) != 1 || got[0].Payload[0] != "payload" {
		t.Fatalf("cross-node message = %v", got)
	}
	if got[0].From != "az1-r1-m1" {
		t.Fatalf("sender identity lost: %q", got[0].From)
	}
}

func TestFailDomainStopsTraffic(t *testing.T) {
	topo := NewTopology(2, 1, 2, ClassSmall)
	c := New(topo, simnet.Config{Seed: 1, MinLatency: 10, MaxLatency: 10})

	sender := transducer.New("az1-r1-m1", 1)
	sender.SetDelay(fixedDelay)
	receiver := transducer.New("az2-r1-m1", 2)
	receiver.SetDelay(fixedDelay)
	var got int
	sender.RegisterHandler("kick", func(tx *transducer.Tx, msg transducer.Message) {
		tx.Send("az2-r1-m1/work", datalog.Tuple{})
	})
	receiver.RegisterHandler("work", func(tx *transducer.Tx, msg transducer.Message) { got++ })
	c.Host("az1-r1-m1", sender)
	c.Host("az2-r1-m1", receiver)

	failed := c.FailDomain(AZ, "az2")
	if len(failed) != 2 {
		t.Fatalf("failed = %v", failed)
	}
	sender.Inject("kick", datalog.Tuple{})
	c.RunRounds(6, 100)
	if got != 0 {
		t.Fatal("failed AZ received traffic")
	}
	if c.UpCount() != 1 {
		t.Fatalf("up hosts = %d", c.UpCount())
	}
	// Recovery restores delivery for *new* messages.
	c.Recover("az2-r1-m1")
	sender.Inject("kick", datalog.Tuple{})
	c.RunRounds(6, 100)
	if got != 1 {
		t.Fatalf("recovered machine got %d messages, want 1", got)
	}
}

func TestMachineClasses(t *testing.T) {
	if !ClassGPU.GPU || ClassSmall.GPU {
		t.Fatal("GPU flags wrong")
	}
	if ClassLarge.CostPerHour <= ClassSmall.CostPerHour {
		t.Fatal("large must cost more than small")
	}
	topo := NewTopology(1, 1, 1, ClassSmall)
	topo.Add(&Machine{ID: "gpu-1", VM: "gpu-1", Rack: "gpu-r", DC: "gpu-dc", AZ: "az9", Class: ClassGPU})
	if m := topo.Get("gpu-1"); m == nil || !m.Up() || !m.Class.GPU {
		t.Fatal("heterogeneous add broken")
	}
}
