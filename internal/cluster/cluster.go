// Package cluster simulates the cloud substrate of §6 and §9: machines with
// nested failure domains (VM ⊂ rack ⊂ DC ⊂ AZ), per-class cost and speed,
// fault injection, and hosting of transducer runtimes over the simulated
// network. It is the stand-in for real cloud hardware (DESIGN.md §5).
package cluster

import (
	"fmt"
	"sort"

	"hydro/internal/simnet"
	"hydro/internal/transducer"
)

// Domain names a failure-domain granularity, ordered by scope.
type Domain string

// Failure domains, smallest to largest.
const (
	VM   Domain = "vm"
	Rack Domain = "rack"
	DC   Domain = "dc"
	AZ   Domain = "az"
)

// MachineClass describes hardware capability and price (the target facet's
// raw material, §9.1).
type MachineClass struct {
	Name string
	// SpeedFactor divides compute latency: 2.0 runs handlers twice as fast
	// as the baseline.
	SpeedFactor float64
	// CostPerHour in abstract units.
	CostPerHour float64
	// GPU reports accelerator availability (the likelihood handler's
	// processor=gpu constraint).
	GPU bool
}

// Standard machine classes used by the experiments.
var (
	ClassSmall = MachineClass{Name: "small", SpeedFactor: 1.0, CostPerHour: 0.10}
	ClassLarge = MachineClass{Name: "large", SpeedFactor: 2.5, CostPerHour: 0.45}
	ClassGPU   = MachineClass{Name: "gpu", SpeedFactor: 4.0, CostPerHour: 2.50, GPU: true}
)

// Machine is one simulated host.
type Machine struct {
	ID    string
	VM    string
	Rack  string
	DC    string
	AZ    string
	Class MachineClass
	up    bool
}

// Up reports whether the machine is running.
func (m *Machine) Up() bool { return m.up }

// DomainID returns the machine's identifier within the given domain.
func (m *Machine) DomainID(d Domain) string {
	switch d {
	case VM:
		return m.VM
	case Rack:
		return m.Rack
	case DC:
		return m.DC
	case AZ:
		return m.AZ
	}
	return m.ID
}

// Topology is a set of machines.
type Topology struct {
	Machines []*Machine
}

// NewTopology builds a symmetric topology: azs availability zones, each
// with racksPerAZ racks of machinesPerRack machines of the given class.
// Machine IDs look like "az1-r2-m3".
func NewTopology(azs, racksPerAZ, machinesPerRack int, class MachineClass) *Topology {
	t := &Topology{}
	for a := 1; a <= azs; a++ {
		for r := 1; r <= racksPerAZ; r++ {
			for m := 1; m <= machinesPerRack; m++ {
				id := fmt.Sprintf("az%d-r%d-m%d", a, r, m)
				t.Machines = append(t.Machines, &Machine{
					ID:    id,
					VM:    id,
					Rack:  fmt.Sprintf("az%d-r%d", a, r),
					DC:    fmt.Sprintf("az%d-dc", a),
					AZ:    fmt.Sprintf("az%d", a),
					Class: class,
					up:    true,
				})
			}
		}
	}
	return t
}

// Add appends a machine (for heterogeneous clusters, e.g. a GPU pool).
func (t *Topology) Add(m *Machine) {
	m.up = true
	t.Machines = append(t.Machines, m)
}

// Get returns the machine with the given ID, or nil.
func (t *Topology) Get(id string) *Machine {
	for _, m := range t.Machines {
		if m.ID == id {
			return m
		}
	}
	return nil
}

// DomainValues returns the distinct identifiers of a domain, sorted.
func (t *Topology) DomainValues(d Domain) []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range t.Machines {
		v := m.DomainID(d)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// SpreadAcross picks n machines in n distinct instances of domain d,
// preferring up machines. It errors when fewer than n distinct domains have
// an available machine — the availability facet's feasibility check (§6).
func (t *Topology) SpreadAcross(d Domain, n int) ([]*Machine, error) {
	byDomain := map[string]*Machine{}
	for _, m := range t.Machines {
		if !m.up {
			continue
		}
		key := m.DomainID(d)
		if byDomain[key] == nil {
			byDomain[key] = m
		}
	}
	if len(byDomain) < n {
		return nil, fmt.Errorf("cluster: need %d distinct %s domains, only %d available", n, d, len(byDomain))
	}
	keys := make([]string, 0, len(byDomain))
	for k := range byDomain {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Machine, n)
	for i := 0; i < n; i++ {
		out[i] = byDomain[keys[i]]
	}
	return out, nil
}

// Cluster couples a topology, the simulated network, and hosted transducer
// runtimes. Rounds interleave network delivery with one tick per runtime —
// the co-simulation loop that stands in for real concurrent execution.
type Cluster struct {
	Net   *simnet.Network
	Topo  *Topology
	hosts map[string]*transducer.Runtime // machine ID → runtime
	order []string
}

// New builds a cluster over a topology.
func New(topo *Topology, cfg simnet.Config) *Cluster {
	c := &Cluster{
		Net:   simnet.New(cfg),
		Topo:  topo,
		hosts: map[string]*transducer.Runtime{},
	}
	return c
}

// Host places a runtime on a machine: the runtime's remote sends route over
// the network, and network deliveries land in the runtime's mailboxes.
func (c *Cluster) Host(machineID string, rt *transducer.Runtime) {
	m := c.Topo.Get(machineID)
	if m == nil {
		panic(fmt.Sprintf("cluster: unknown machine %q", machineID))
	}
	c.hosts[machineID] = rt
	c.order = append(c.order, machineID)
	sort.Strings(c.order)
	c.Net.SetDomain(machineID, m.AZ)
	rt.Remote = func(node string, msg transducer.Message) {
		c.Net.Send(machineID, node, msg)
	}
	c.Net.AddNode(machineID, func(now simnet.Time, nm simnet.Message) {
		if tm, ok := nm.Payload.(transducer.Message); ok {
			rt.Deliver(tm)
		}
	})
}

// HostNode places a raw network handler on a machine: the node inherits
// the machine's latency domain and failure-domain membership (FailDomain /
// Recover act on it through the machine), but is not ticked by Round —
// purely message-driven servers (e.g. shard replicas) host this way.
func (c *Cluster) HostNode(machineID string, h simnet.Handler) {
	m := c.Topo.Get(machineID)
	if m == nil {
		panic(fmt.Sprintf("cluster: unknown machine %q", machineID))
	}
	c.Net.SetDomain(machineID, m.AZ)
	c.Net.AddNode(machineID, h)
}

// Runtime returns the runtime hosted on a machine.
func (c *Cluster) Runtime(machineID string) *transducer.Runtime { return c.hosts[machineID] }

// FailDomain marks every machine in the named domain instance as down (e.g.
// FailDomain(AZ, "az1") takes out a whole availability zone). It returns the
// failed machine IDs.
func (c *Cluster) FailDomain(d Domain, instance string) []string {
	var failed []string
	for _, m := range c.Topo.Machines {
		if m.DomainID(d) == instance && m.up {
			m.up = false
			c.Net.SetDown(m.ID, true)
			failed = append(failed, m.ID)
		}
	}
	return failed
}

// Recover brings a machine back up (with its state intact — crash-recovery
// with durable state; amnesia restarts are modeled by swapping the runtime).
func (c *Cluster) Recover(machineID string) {
	if m := c.Topo.Get(machineID); m != nil {
		m.up = true
		c.Net.SetDown(machineID, false)
	}
}

// Round advances the co-simulation: deliver network traffic for the given
// virtual duration, then tick every hosted runtime on an up machine once.
func (c *Cluster) Round(netSlice simnet.Time) {
	c.Net.RunUntil(c.Net.Now() + netSlice)
	for _, id := range c.order {
		if m := c.Topo.Get(id); m != nil && m.up {
			c.hosts[id].Tick()
		}
	}
}

// RunRounds executes n rounds with the given per-round network slice.
func (c *Cluster) RunRounds(n int, netSlice simnet.Time) {
	for i := 0; i < n; i++ {
		c.Round(netSlice)
	}
}

// UpCount returns the number of up machines hosting runtimes.
func (c *Cluster) UpCount() int {
	n := 0
	for _, id := range c.order {
		if m := c.Topo.Get(id); m != nil && m.up {
			n++
		}
	}
	return n
}
