package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"hydro/internal/datalog"
)

// The changelog is a single append-only file:
//
//	header:  8-byte magic "HYWAL01\n" | u64 LE baseSeq
//	record:  u32 LE payload length | u32 LE CRC32C(payload) | payload
//	payload: uvarint seq | uvarint nops | nops × (op byte | pred | tuple)
//
// baseSeq is the sequence number the log starts after (the snapshot seq at
// the last rotation); records carry their own seq so recovery replays
// exactly the suffix the snapshot does not cover even when a crash landed
// between snapshot commit and log rotation. A torn tail — a partial record
// from a crash mid-append, detected by a short length or a CRC mismatch —
// is truncated away on open; everything before it is intact by CRC.

const (
	walName    = "wal.log"
	walTmpName = "wal.log.tmp"
	walMagic   = "HYWAL01\n"
	walHdrLen  = len(walMagic) + 8
	recHdrLen  = 8 // u32 len + u32 crc
	opDelete   = byte(1)
)

// crcTable is the Castagnoli polynomial (CRC32C) — hardware-accelerated on
// amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

func encodeLogHeader(baseSeq uint64) []byte {
	b := make([]byte, 0, walHdrLen)
	b = append(b, walMagic...)
	return binary.LittleEndian.AppendUint64(b, baseSeq)
}

func decodeLogHeader(b []byte) (baseSeq uint64, err error) {
	if len(b) < walHdrLen {
		return 0, fmt.Errorf("durable: short changelog header")
	}
	if string(b[:len(walMagic)]) != walMagic {
		return 0, fmt.Errorf("durable: bad changelog magic %q", b[:len(walMagic)])
	}
	return binary.LittleEndian.Uint64(b[len(walMagic):walHdrLen]), nil
}

// logRecord is one decoded changelog entry: a tick's realized base-relation
// changes in exact application order.
type logRecord struct {
	seq uint64
	ops []datalog.DeltaOp
}

// encodeRecord frames one record (header + payload) ready to append.
func encodeRecord(seq uint64, ops []datalog.DeltaOp) ([]byte, error) {
	payload := binary.AppendUvarint(nil, seq)
	payload = binary.AppendUvarint(payload, uint64(len(ops)))
	var err error
	for _, op := range ops {
		flag := byte(0)
		if op.Del {
			flag = opDelete
		}
		payload = append(payload, flag)
		payload = appendString(payload, op.Pred)
		if payload, err = appendTuple(payload, op.T); err != nil {
			return nil, err
		}
	}
	framed := make([]byte, 0, recHdrLen+len(payload))
	framed = binary.LittleEndian.AppendUint32(framed, uint32(len(payload)))
	framed = binary.LittleEndian.AppendUint32(framed, crc32.Checksum(payload, crcTable))
	return append(framed, payload...), nil
}

func decodePayload(payload []byte) (logRecord, error) {
	var rec logRecord
	seq, sz := binary.Uvarint(payload)
	if sz <= 0 {
		return rec, fmt.Errorf("durable: truncated record seq")
	}
	payload = payload[sz:]
	n, sz := binary.Uvarint(payload)
	if sz <= 0 || n > uint64(len(payload)) {
		return rec, fmt.Errorf("durable: truncated record op count")
	}
	payload = payload[sz:]
	rec.seq = seq
	rec.ops = make([]datalog.DeltaOp, 0, n)
	var err error
	for i := uint64(0); i < n; i++ {
		if len(payload) == 0 {
			return rec, fmt.Errorf("durable: truncated op")
		}
		var op datalog.DeltaOp
		op.Del = payload[0] == opDelete
		payload = payload[1:]
		if op.Pred, payload, err = readString(payload); err != nil {
			return rec, err
		}
		if op.T, payload, err = readTuple(payload); err != nil {
			return rec, err
		}
		rec.ops = append(rec.ops, op)
	}
	if len(payload) != 0 {
		return rec, fmt.Errorf("durable: %d trailing bytes in record", len(payload))
	}
	return rec, nil
}

// scanLog walks a changelog image, returning the valid records with their
// start offsets, the byte offset the file should be truncated to (the end
// of the last valid record), and the header's base sequence. A torn or
// corrupt tail stops the scan without error — that is the expected
// post-crash state; only a corrupt header (magic mismatch on a full-length
// header) is fatal, since it means the file is not ours.
func scanLog(data []byte) (recs []logRecord, starts []int64, validLen int64, baseSeq uint64, err error) {
	if len(data) < walHdrLen {
		// Torn header (crash during initial creation): recreate from zero.
		return nil, nil, 0, 0, nil
	}
	if baseSeq, err = decodeLogHeader(data); err != nil {
		return nil, nil, 0, 0, err
	}
	off := int64(walHdrLen)
	prev := baseSeq
	for int64(len(data))-off >= int64(recHdrLen) {
		plen := binary.LittleEndian.Uint32(data[off:])
		pcrc := binary.LittleEndian.Uint32(data[off+4:])
		end := off + int64(recHdrLen) + int64(plen)
		if end > int64(len(data)) {
			break // torn tail: record extends past EOF
		}
		payload := data[off+int64(recHdrLen) : end]
		if crc32.Checksum(payload, crcTable) != pcrc {
			break // torn or corrupt tail
		}
		rec, derr := decodePayload(payload)
		if derr != nil {
			// CRC-valid but undecodable: not a torn write — corruption or a
			// format skew. Refuse rather than silently dropping the suffix.
			return nil, nil, 0, 0, fmt.Errorf("durable: record at offset %d: %w", off, derr)
		}
		if rec.seq != prev+1 {
			return nil, nil, 0, 0, fmt.Errorf("durable: record at offset %d has seq %d, want %d", off, rec.seq, prev+1)
		}
		prev = rec.seq
		recs = append(recs, rec)
		starts = append(starts, off)
		off = end
	}
	return recs, starts, off, baseSeq, nil
}
