package durable

import (
	"fmt"
	"os"
	"sort"
	"sync"
)

// FaultFS is an in-memory FS with crash injection: arm a byte or op budget
// and every mutation past it fails with ErrCrashed, leaving the in-memory
// files exactly as a kernel would after the process died at that point — a
// write that hits the budget mid-buffer keeps the prefix that "made it to
// disk" (a torn write). Reads never crash (the recovering process is a new
// one). Revive clears the budget so the harness can recover from the
// wreckage it just made.
//
// Sync/SyncDir are accounted as ops but do not model lost unsynced data:
// the harness kills the process, not the power, so page-cache contents
// survive. SyncNever vs SyncAlways therefore changes only call counts, not
// harness outcomes — the torn-write coverage comes from the byte budget.
type FaultFS struct {
	mu    sync.Mutex
	files map[string]*fileData

	// Remaining budgets; nil = unarmed. A write of n bytes consumes n from
	// bytesLeft; every metadata mutation (create/rename/remove/truncate/
	// sync) consumes 1 from opsLeft.
	bytesLeft *int64
	opsLeft   *int

	crashed bool
	// Stats so tests can assert the injection actually fired.
	Crashes int
}

// fileData is an "inode": open handles share it, so a rename moves the
// directory entry while writes through an existing handle keep landing in
// the same data — exactly how a real fd behaves.
type fileData struct {
	buf []byte
}

// NewFaultFS returns an empty in-memory FS with no budget armed.
func NewFaultFS() *FaultFS {
	return &FaultFS{files: map[string]*fileData{}}
}

// CrashAfterBytes arms the FS to crash once n more payload bytes have been
// written; the write that crosses the budget is torn at the boundary.
func (f *FaultFS) CrashAfterBytes(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.bytesLeft = &n
	f.crashed = false
}

// CrashAfterOps arms the FS to crash once n more metadata operations have
// completed (the n+1th fails without effect).
func (f *FaultFS) CrashAfterOps(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.opsLeft = &n
	f.crashed = false
}

// Revive disarms the budgets: the next Open sees the wreckage, nothing
// fails anymore.
func (f *FaultFS) Revive() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.bytesLeft = nil
	f.opsLeft = nil
	f.crashed = false
}

// Crashed reports whether an injected crash has fired since the last arm.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Files returns a deep copy of the current "disk" (sorted names) so tests
// can diff directory states byte for byte.
func (f *FaultFS) Files() map[string][]byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string][]byte, len(f.files))
	for k, v := range f.files {
		out[k] = append([]byte(nil), v.buf...)
	}
	return out
}

// FileNames returns the sorted names present on the "disk".
func (f *FaultFS) FileNames() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.files))
	for k := range f.files {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Corrupt flips one byte of the named file (bit-rot injection for CRC
// tests). Reports whether the file existed and was long enough.
func (f *FaultFS) Corrupt(name string, off int64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, ok := f.files[name]
	if !ok || off < 0 || off >= int64(len(d.buf)) {
		return false
	}
	d.buf[off] ^= 0xFF
	return true
}

// crash latches the crashed state. Callers hold mu.
func (f *FaultFS) crash() error {
	if !f.crashed {
		f.crashed = true
		f.Crashes++
	}
	return ErrCrashed
}

// chargeOp consumes one metadata op from the budget; returns ErrCrashed if
// the budget is already spent. Callers hold mu.
func (f *FaultFS) chargeOp() error {
	if f.crashed {
		return ErrCrashed
	}
	if f.opsLeft != nil {
		if *f.opsLeft <= 0 {
			return f.crash()
		}
		*f.opsLeft--
	}
	return nil
}

// chargeBytes consumes up to n write bytes; returns how many "reach disk"
// and ErrCrashed if that is fewer than n (a torn write). Callers hold mu.
func (f *FaultFS) chargeBytes(n int) (int, error) {
	if f.crashed {
		return 0, ErrCrashed
	}
	if f.bytesLeft == nil {
		return n, nil
	}
	if int64(n) <= *f.bytesLeft {
		*f.bytesLeft -= int64(n)
		return n, nil
	}
	kept := int(*f.bytesLeft)
	*f.bytesLeft = 0
	return kept, f.crash()
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, ok := f.files[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return append([]byte(nil), d.buf...), nil
}

func (f *FaultFS) Create(name string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.chargeOp(); err != nil {
		return nil, err
	}
	d := &fileData{}
	f.files[name] = d
	return &faultFile{fs: f, data: d}, nil
}

func (f *FaultFS) OpenAppend(name string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	d, ok := f.files[name]
	if !ok {
		if err := f.chargeOp(); err != nil {
			return nil, err
		}
		d = &fileData{}
		f.files[name] = d
	}
	return &faultFile{fs: f, data: d}, nil
}

func (f *FaultFS) Truncate(name string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.chargeOp(); err != nil {
		return err
	}
	d, ok := f.files[name]
	if !ok || size > int64(len(d.buf)) {
		return fmt.Errorf("durable: truncate %s to %d: invalid", name, size)
	}
	d.buf = d.buf[:size]
	return nil
}

func (f *FaultFS) Rename(oldname, newname string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.chargeOp(); err != nil {
		return err
	}
	d, ok := f.files[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	delete(f.files, oldname)
	f.files[newname] = d
	return nil
}

func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.files[name]; !ok {
		return nil
	}
	if err := f.chargeOp(); err != nil {
		return err
	}
	delete(f.files, name)
	return nil
}

func (f *FaultFS) SyncDir() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.chargeOp()
}

// faultFile is a write handle into the FaultFS. Writes append (Create
// truncated already; OpenAppend seeks to the end by construction) and
// follow the shared fileData across renames, like a real fd.
type faultFile struct {
	fs     *FaultFS
	data   *fileData
	closed bool
}

func (h *faultFile) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, os.ErrClosed
	}
	kept, err := h.fs.chargeBytes(len(p))
	h.data.buf = append(h.data.buf, p[:kept]...)
	if err != nil {
		return kept, err
	}
	return len(p), nil
}

func (h *faultFile) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	return h.fs.chargeOp()
}

func (h *faultFile) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}
