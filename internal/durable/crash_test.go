package durable

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hydro/internal/datalog"
)

// The crash harness: run a durable evaluator over a randomized mutation
// schedule, kill the "process" at randomized points in all three danger
// windows — mid-append (torn record), between append and apply (logged but
// unapplied), and mid-snapshot (every metadata-op boundary of the
// temp+rename+rotate protocol) — then recover and require the result to be
// byte-for-byte identical to a never-crashed oracle replaying the same
// schedule. `make soak` raises the seed budget via these flags.
var (
	crashSeeds = flag.Int("crash-seeds", 60, "number of randomized crash-recovery seeds")
	crashTicks = flag.Int("crash-ticks", 40, "mutation ticks per crash-recovery seed")
	crashRand  = flag.Bool("crash-rand", false, "derive crash seeds from the clock (soak mode)")
)

// crashModes label the three danger windows (plus clean kills).
const (
	modeMidAppend = iota
	modeAfterAppend
	modeMidSnapshot
	modeCount
)

var crashModeNames = [modeCount]string{"mid-append", "after-append", "mid-snapshot"}

func TestCrashRecovery(t *testing.T) {
	base := int64(0)
	if *crashRand {
		base = time.Now().UnixNano()
		t.Logf("soak base seed %d", base)
	}
	var fired [modeCount]int
	for i := 0; i < *crashSeeds; i++ {
		seed := base + int64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			m := runCrashSeed(t, seed, *crashTicks)
			for j := range fired {
				fired[j] += m[j]
			}
		})
	}
	if t.Failed() {
		return
	}
	for j, n := range fired {
		if n == 0 {
			t.Errorf("crash mode %s never fired across %d seeds — harness lost coverage", crashModeNames[j], *crashSeeds)
		}
	}
}

// runCrashSeed drives one schedule, crashing repeatedly, and returns how
// often each crash mode actually fired.
func runCrashSeed(t *testing.T, seed int64, ticks int) (fired [modeCount]int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	// The full mutation schedule is fixed up front so the oracle can replay
	// any prefix of it; schedule[i] produces seq i+1.
	schedule := make([][]datalog.DeltaOp, ticks)
	for i := range schedule {
		schedule[i] = randMuts(rng, 4)
	}

	fs := NewFaultFS()
	s, err := Open(crashOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	inc, err := s.Recover(testProgram(t), datalog.NewDatabase())
	if err != nil {
		t.Fatal(err)
	}

	next := 0 // index into schedule = seq the next tick will get - 1
	for next < ticks {
		mode := -1
		if rng.Intn(4) == 0 { // crash roughly every 4th tick
			mode = rng.Intn(modeCount)
		}
		switch mode {
		case modeMidAppend:
			// Tear the record: records are ≥12 bytes, so a tiny byte budget
			// lands inside the frame most of the time.
			fs.CrashAfterBytes(int64(rng.Intn(12) + 1))
			err := tickErr(s, inc, schedule[next])
			if err == nil {
				// Budget survived into a later write (e.g. a threshold
				// snapshot consumed it) — still a real crash once it fires;
				// fall through to recovery if it did.
				if !fs.Crashed() {
					fs.Revive()
					next++
					continue
				}
			} else if !errors.Is(err, ErrCrashed) {
				t.Fatalf("seed %d tick %d: %v", seed, next, err)
			}
			if fs.Crashed() {
				fired[modeMidAppend]++
			}
		case modeAfterAppend:
			// The record commits, the process dies before Apply: recovery
			// must replay it.
			d := datalog.NewDelta()
			d.SetRecording(true)
			db := inc.DB()
			for _, m := range schedule[next] {
				if m.Del {
					if rel := db.Get(m.Pred); rel != nil && rel.Delete(m.T) {
						d.Delete(m.Pred, m.T)
					}
				} else if db.Ensure(m.Pred, len(m.T)).Insert(m.T) {
					d.Insert(m.Pred, m.T)
				}
			}
			if err := s.Append(d); err != nil {
				t.Fatalf("seed %d tick %d: append: %v", seed, next, err)
			}
			fired[modeAfterAppend]++
		case modeMidSnapshot:
			fs.CrashAfterOps(rng.Intn(10))
			err := s.Snapshot(inc)
			if err != nil && !errors.Is(err, ErrCrashed) {
				t.Fatalf("seed %d tick %d: snapshot: %v", seed, next, err)
			}
			if !fs.Crashed() {
				// Budget outlived the whole snapshot: no crash after all.
				fs.Revive()
				continue
			}
			fired[modeMidSnapshot]++
		default:
			tick(t, s, inc, schedule[next])
			next++
			continue
		}

		// The "process" is dead. Recover from the wreckage and check the
		// recovered state byte-for-byte against a never-crashed oracle.
		fs.Revive()
		s, err = Open(crashOptions(fs))
		if err != nil {
			t.Fatalf("seed %d tick %d: reopen: %v", seed, next, err)
		}
		inc, err = s.Recover(testProgram(t), datalog.NewDatabase())
		if err != nil {
			t.Fatalf("seed %d tick %d: recover: %v", seed, next, err)
		}
		last := s.LastSeq()
		if int(last) < next {
			t.Fatalf("seed %d tick %d: recovery lost committed seq %d < %d", seed, next, last, next)
		}
		oracle := oracleAt(t, schedule, int(last))
		if !bytes.Equal(stateImage(t, inc, last), stateImage(t, oracle, last)) {
			t.Fatalf("seed %d: recovered state at seq %d differs from oracle", seed, last)
		}
		next = int(last)
	}

	// End of schedule: one final clean close/reopen must also match.
	s.Close()
	s, err = Open(crashOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	inc, err = s.Recover(testProgram(t), datalog.NewDatabase())
	if err != nil {
		t.Fatal(err)
	}
	oracle := oracleAt(t, schedule, ticks)
	if !bytes.Equal(stateImage(t, inc, uint64(ticks)), stateImage(t, oracle, uint64(ticks))) {
		t.Fatalf("seed %d: final state differs from oracle", seed)
	}
	return fired
}

// crashOptions uses a small snapshot threshold so log rotation happens
// organically during the run, interleaving with the injected crashes.
func crashOptions(fs FS) Options {
	return Options{FS: fs, SnapshotEveryRecords: 6}
}

// oracleAt replays the first n schedule entries on a fresh in-memory
// evaluator — the never-crashed truth for seq n.
func oracleAt(t testing.TB, schedule [][]datalog.DeltaOp, n int) *datalog.Incremental {
	t.Helper()
	inc, err := datalog.NewIncremental(testProgram(t), datalog.NewDatabase())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		applyOracle(t, inc, schedule[i])
	}
	return inc
}

// FuzzCrashRecovery lets the fuzzer drive the crash scheduler: each input
// byte picks the next action (tick, snapshot, or a crash window with a
// budget derived from the byte), and every recovery must match the oracle.
func FuzzCrashRecovery(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x81, 0x20, 0xC5, 0x00, 0x42})
	f.Add([]byte{0x80, 0x80, 0x80})
	f.Add([]byte{0xC0, 0x01, 0xC8, 0x02, 0xD0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 48 {
			data = data[:48]
		}
		rng := rand.New(rand.NewSource(7))
		schedule := make([][]datalog.DeltaOp, len(data))
		for i := range schedule {
			schedule[i] = randMuts(rng, 4)
		}
		fs := NewFaultFS()
		s, err := Open(crashOptions(fs))
		if err != nil {
			t.Fatal(err)
		}
		inc, err := s.Recover(testProgram(t), datalog.NewDatabase())
		if err != nil {
			t.Fatal(err)
		}
		next := 0
		// pc walks the action bytes and always advances — a crash byte that
		// rolls the store back to next would otherwise re-fire forever.
		for pc := 0; pc < len(data) && next < len(schedule); pc++ {
			b := data[pc]
			crashed := false
			switch {
			case b&0xC0 == 0x80: // mid-append window
				fs.CrashAfterBytes(int64(b&0x3F) + 1)
				if err := tickErr(s, inc, schedule[next]); err != nil && !errors.Is(err, ErrCrashed) {
					t.Fatal(err)
				}
				crashed = fs.Crashed()
				if !crashed {
					fs.Revive()
					next++
				}
			case b&0xC0 == 0xC0: // mid-snapshot window
				fs.CrashAfterOps(int(b & 0x0F))
				if err := s.Snapshot(inc); err != nil && !errors.Is(err, ErrCrashed) {
					t.Fatal(err)
				}
				crashed = fs.Crashed()
				if !crashed {
					fs.Revive()
				}
			default:
				tick(t, s, inc, schedule[next])
				next++
			}
			if crashed {
				fs.Revive()
				if s, err = Open(crashOptions(fs)); err != nil {
					t.Fatal(err)
				}
				if inc, err = s.Recover(testProgram(t), datalog.NewDatabase()); err != nil {
					t.Fatal(err)
				}
				last := s.LastSeq()
				if int(last) < next {
					t.Fatalf("recovery lost committed seq %d < %d", last, next)
				}
				oracle := oracleAt(t, schedule, int(last))
				if !bytes.Equal(stateImage(t, inc, last), stateImage(t, oracle, last)) {
					t.Fatalf("recovered state at seq %d differs from oracle", last)
				}
				next = int(last)
			}
		}
		oracle := oracleAt(t, schedule, next)
		if !bytes.Equal(stateImage(t, inc, uint64(next)), stateImage(t, oracle, uint64(next))) {
			t.Fatal("final state differs from oracle")
		}
		s.Close()
	})
}
