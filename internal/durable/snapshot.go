package durable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"

	"hydro/internal/datalog"
	"hydro/internal/storage"
)

// Snapshots are staged through the Storage interface — an ordered key-value
// container — before touching the file system, and decoded back through one
// on recovery. internal/storage's B+-tree is the first backend (its ordered
// Scan is what streams the file deterministically); a paged or
// larger-than-memory backend can slot in behind the same five methods.
//
// Keyspace (lexicographic order is the file order):
//
//	c/<pred>/<index %010d>  → tuple ‖ uvarint count   (derivation counts)
//	m/seq                   → uvarint seq              (last seq covered)
//	r/<name>                → uvarint arity            (relation header)
//	t/<name>/<index %010d>  → tuple                    (insertion order)
//
// File format: 8-byte magic "HYSNAP1\n", then per entry (uvarint key length,
// key, uvarint value length, value), then a u32 LE CRC32C of everything
// before it. The file is written to a temp name, fsynced, and renamed over
// the live snapshot — commit is the rename, so recovery sees either the old
// snapshot or the new one, never a hybrid; the CRC rejects any torn temp
// file that was renamed by a buggy layer anyway.

// Storage is the ordered key-value staging area a snapshot is built in and
// decoded from. *storage.BTree satisfies it.
type Storage interface {
	Put(key string, val any)
	Get(key string) (any, bool)
	Delete(key string) bool
	Scan(startKey, endKey string, f func(key string, val any) bool)
	Len() int
}

var _ Storage = (*storage.BTree)(nil)

const (
	snapName    = "snapshot.snap"
	snapTmpName = "snapshot.snap.tmp"
	snapMagic   = "HYSNAP1\n"
)

// stageState lays a fixpoint state (plus the seq it covers) into st.
func stageState(st Storage, seq uint64, fx *datalog.FixpointState) error {
	st.Put("m/seq", binary.AppendUvarint(nil, seq))
	for _, rs := range fx.Relations {
		if strings.ContainsRune(rs.Name, '/') {
			return fmt.Errorf("durable: relation name %q contains '/'", rs.Name)
		}
		st.Put("r/"+rs.Name, binary.AppendUvarint(nil, uint64(rs.Arity)))
		for i, t := range rs.Tuples {
			b, err := appendTuple(nil, t)
			if err != nil {
				return err
			}
			st.Put(fmt.Sprintf("t/%s/%010d", rs.Name, i), b)
		}
	}
	for _, cs := range fx.Counts {
		for i, e := range cs.Entries {
			b, err := appendTuple(nil, e.Tuple)
			if err != nil {
				return err
			}
			b = binary.AppendUvarint(b, uint64(e.Count))
			st.Put(fmt.Sprintf("c/%s/%010d", cs.Pred, i), b)
		}
	}
	return nil
}

// unstageState rebuilds a fixpoint state from a staged snapshot.
func unstageState(st Storage) (seq uint64, fx *datalog.FixpointState, err error) {
	fx = &datalog.FixpointState{}
	rels := map[string]*datalog.RelationState{}
	counts := map[string]*datalog.CountsState{}
	var names, countPreds []string
	st.Scan("", "", func(key string, val any) bool {
		b, ok := val.([]byte)
		if !ok {
			err = fmt.Errorf("durable: snapshot key %q holds %T, not bytes", key, val)
			return false
		}
		switch {
		case key == "m/seq":
			seq, _ = binary.Uvarint(b)
		case strings.HasPrefix(key, "r/"):
			name := key[2:]
			arity, _ := binary.Uvarint(b)
			rels[name] = &datalog.RelationState{Name: name, Arity: int(arity)}
			names = append(names, name)
		case strings.HasPrefix(key, "t/"):
			name, _, ok := splitIndexedKey(key[2:])
			if !ok || rels[name] == nil {
				err = fmt.Errorf("durable: tuple key %q has no relation header", key)
				return false
			}
			t, rest, terr := readTuple(b)
			if terr != nil || len(rest) != 0 {
				err = fmt.Errorf("durable: snapshot tuple %q: %v", key, terr)
				return false
			}
			// Scan order is key order, and the zero-padded index makes key
			// order insertion order.
			rels[name].Tuples = append(rels[name].Tuples, t)
		case strings.HasPrefix(key, "c/"):
			pred, _, ok := splitIndexedKey(key[2:])
			if !ok {
				err = fmt.Errorf("durable: malformed count key %q", key)
				return false
			}
			t, rest, terr := readTuple(b)
			if terr != nil {
				err = fmt.Errorf("durable: snapshot count %q: %v", key, terr)
				return false
			}
			n, sz := binary.Uvarint(rest)
			if sz <= 0 || sz != len(rest) {
				err = fmt.Errorf("durable: malformed count value for %q", key)
				return false
			}
			if counts[pred] == nil {
				counts[pred] = &datalog.CountsState{Pred: pred}
				countPreds = append(countPreds, pred)
			}
			counts[pred].Entries = append(counts[pred].Entries, datalog.CountEntry{Tuple: t, Count: int(n)})
		default:
			err = fmt.Errorf("durable: unknown snapshot key %q", key)
			return false
		}
		return true
	})
	if err != nil {
		return 0, nil, err
	}
	sort.Strings(names) // datalog.State() order: sorted relation names
	for _, n := range names {
		rs := rels[n]
		if len(rs.Tuples) == 0 {
			rs.Tuples = nil
		}
		fx.Relations = append(fx.Relations, *rs)
	}
	sort.Strings(countPreds)
	for _, p := range countPreds {
		fx.Counts = append(fx.Counts, *counts[p])
	}
	return seq, fx, nil
}

// splitIndexedKey splits "<name>/<index>" on the LAST slash (relation names
// never contain one; stageState enforces that).
func splitIndexedKey(s string) (name, idx string, ok bool) {
	i := strings.LastIndexByte(s, '/')
	if i < 0 {
		return "", "", false
	}
	return s[:i], s[i+1:], true
}

// encodeSnapshot serializes a staged Storage to the on-disk image
// (CRC-trailed).
func encodeSnapshot(st Storage) []byte {
	b := []byte(snapMagic)
	st.Scan("", "", func(key string, val any) bool {
		b = appendString(b, key)
		vb := val.([]byte)
		b = binary.AppendUvarint(b, uint64(len(vb)))
		b = append(b, vb...)
		return true
	})
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, crcTable))
}

// forEachSnapEntry verifies a snapshot image (magic + CRC) and streams its
// entries in file order — the recovery fast path, which must not pay for
// staging 10k+ entries through a B-tree it will immediately tear back down.
// key and val alias data; the callback must not retain them.
func forEachSnapEntry(data []byte, f func(key, val []byte) error) error {
	if len(data) < len(snapMagic)+4 {
		return fmt.Errorf("durable: snapshot too short (%d bytes)", len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return fmt.Errorf("durable: bad snapshot magic")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return fmt.Errorf("durable: snapshot CRC mismatch")
	}
	b := body[len(snapMagic):]
	for len(b) > 0 {
		klen, sz := binary.Uvarint(b)
		if sz <= 0 || uint64(len(b)-sz) < klen {
			return fmt.Errorf("durable: snapshot entry: truncated key")
		}
		key := b[sz : sz+int(klen)]
		b = b[sz+int(klen):]
		vlen, sz := binary.Uvarint(b)
		if sz <= 0 || uint64(len(b)-sz) < vlen {
			return fmt.Errorf("durable: snapshot entry %q: truncated value", key)
		}
		val := b[sz : sz+int(vlen)]
		b = b[sz+int(vlen):]
		if err := f(key, val); err != nil {
			return err
		}
	}
	return nil
}

// snapSeqOf extracts just the covered seq from a snapshot image — what Open
// needs to compute the replay floor without materializing the whole state.
func snapSeqOf(data []byte) (uint64, error) {
	var seq uint64
	found := false
	errStop := fmt.Errorf("stop")
	err := forEachSnapEntry(data, func(key, val []byte) error {
		if string(key) == "m/seq" {
			seq, _ = binary.Uvarint(val)
			found = true
			return errStop
		}
		return nil
	})
	if err != nil && err != errStop {
		return 0, err
	}
	if !found {
		return 0, fmt.Errorf("durable: snapshot has no m/seq entry")
	}
	return seq, nil
}

// unstageBytes rebuilds a FixpointState straight from a snapshot image.
// Entries arrive in key order, which the zero-padded indexes make exactly
// the order State() emits: relations sorted by name, tuples in insertion
// order, count entries first-seen. So the state is assembled append-only,
// no sorting, no intermediate Storage.
func unstageBytes(data []byte) (seq uint64, fx *datalog.FixpointState, err error) {
	fx = &datalog.FixpointState{}
	relIdx := -1 // cursor into fx.Relations for the open 't/' group
	var arena tupleArena
	err = forEachSnapEntry(data, func(key, val []byte) error {
		if len(key) < 2 || key[1] != '/' {
			return fmt.Errorf("durable: unknown snapshot key %q", key)
		}
		switch key[0] {
		case 'm':
			if string(key) != "m/seq" {
				return fmt.Errorf("durable: unknown snapshot key %q", key)
			}
			seq, _ = binary.Uvarint(val)
		case 'r':
			arity, _ := binary.Uvarint(val)
			fx.Relations = append(fx.Relations, datalog.RelationState{Name: string(key[2:]), Arity: int(arity)})
		case 't':
			i := bytes.LastIndexByte(key[2:], '/')
			if i < 0 {
				return fmt.Errorf("durable: malformed tuple key %q", key)
			}
			name := key[2 : 2+i]
			// Every 'r/' header sorts before every 't/' entry, and tuple
			// groups arrive in the headers' name order, so the group's
			// relation is found by advancing the cursor (string(name) in a
			// comparison does not allocate).
			if relIdx < 0 || fx.Relations[relIdx].Name != string(name) {
				for relIdx++; relIdx < len(fx.Relations) && fx.Relations[relIdx].Name != string(name); relIdx++ {
				}
				if relIdx >= len(fx.Relations) {
					return fmt.Errorf("durable: tuple key %q has no relation header", key)
				}
			}
			t, rest, terr := readTupleAlloc(val, &arena)
			if terr != nil || len(rest) != 0 {
				return fmt.Errorf("durable: snapshot tuple %q: %v", key, terr)
			}
			fx.Relations[relIdx].Tuples = append(fx.Relations[relIdx].Tuples, t)
		case 'c':
			i := bytes.LastIndexByte(key[2:], '/')
			if i < 0 {
				return fmt.Errorf("durable: malformed count key %q", key)
			}
			pred := key[2 : 2+i]
			if n := len(fx.Counts); n == 0 || fx.Counts[n-1].Pred != string(pred) {
				fx.Counts = append(fx.Counts, datalog.CountsState{Pred: string(pred)})
			}
			t, rest, terr := readTuple(val)
			if terr != nil {
				return fmt.Errorf("durable: snapshot count %q: %v", key, terr)
			}
			n, sz := binary.Uvarint(rest)
			if sz <= 0 || sz != len(rest) {
				return fmt.Errorf("durable: malformed count value for %q", key)
			}
			cs := &fx.Counts[len(fx.Counts)-1]
			cs.Entries = append(cs.Entries, datalog.CountEntry{Tuple: t, Count: int(n)})
		default:
			return fmt.Errorf("durable: unknown snapshot key %q", key)
		}
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	return seq, fx, nil
}

// decodeSnapshot verifies a snapshot image and loads it into a fresh
// B-tree-backed Storage.
func decodeSnapshot(data []byte) (Storage, error) {
	if len(data) < len(snapMagic)+4 {
		return nil, fmt.Errorf("durable: snapshot too short (%d bytes)", len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("durable: bad snapshot magic")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("durable: snapshot CRC mismatch")
	}
	st := storage.NewBTree()
	b := body[len(snapMagic):]
	for len(b) > 0 {
		key, rest, err := readString(b)
		if err != nil {
			return nil, fmt.Errorf("durable: snapshot entry: %w", err)
		}
		n, sz := binary.Uvarint(rest)
		if sz <= 0 || uint64(len(rest)-sz) < n {
			return nil, fmt.Errorf("durable: snapshot entry %q: truncated value", key)
		}
		st.Put(key, append([]byte(nil), rest[sz:sz+int(n)]...))
		b = rest[sz+int(n):]
	}
	return st, nil
}
