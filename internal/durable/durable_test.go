package durable

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"hydro/internal/datalog"
	"hydro/internal/storage"
)

// testProgram is the persistence-relevant program pair: a recursive closure
// (DRed-maintained) feeding a non-recursive join (counting-maintained).
func testProgram(t testing.TB) *datalog.Program {
	t.Helper()
	p, err := datalog.NewProgram(
		datalog.Rule{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}},
			Body: []datalog.Literal{{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}}},
		},
		datalog.Rule{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("z")}},
			Body: []datalog.Literal{
				{Atom: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}},
				{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("y"), datalog.V("z")}}},
			},
		},
		datalog.Rule{
			Head: datalog.Atom{Pred: "reach_attr", Args: []datalog.Term{datalog.V("x"), datalog.V("v")}},
			Body: []datalog.Literal{
				{Atom: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}},
				{Atom: datalog.Atom{Pred: "attr", Args: []datalog.Term{datalog.V("y"), datalog.V("v")}}},
			},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// tick applies one batch of base mutations through the full durability
// protocol: record realized ops, append, apply, commit.
func tick(t testing.TB, s *Store, inc *datalog.Incremental, muts []datalog.DeltaOp) {
	t.Helper()
	if err := tickErr(s, inc, muts); err != nil {
		t.Fatal(err)
	}
}

func tickErr(s *Store, inc *datalog.Incremental, muts []datalog.DeltaOp) error {
	d := datalog.NewDelta()
	d.SetRecording(true)
	db := inc.DB()
	for _, m := range muts {
		if m.Del {
			if rel := db.Get(m.Pred); rel != nil && rel.Delete(m.T) {
				d.Delete(m.Pred, m.T)
			}
		} else if db.Ensure(m.Pred, len(m.T)).Insert(m.T) {
			d.Insert(m.Pred, m.T)
		}
	}
	if err := s.Append(d); err != nil {
		return err
	}
	if _, err := inc.Apply(d); err != nil {
		return err
	}
	return s.Committed(inc)
}

// stateImage reduces an evaluator to its canonical snapshot bytes so two
// instances can be compared byte for byte.
func stateImage(t testing.TB, inc *datalog.Incremental, seq uint64) []byte {
	t.Helper()
	fx, err := inc.State()
	if err != nil {
		t.Fatal(err)
	}
	st := storage.NewBTree()
	if err := stageState(st, seq, fx); err != nil {
		t.Fatal(err)
	}
	return encodeSnapshot(st)
}

func ins(pred string, vals ...any) datalog.DeltaOp {
	return datalog.DeltaOp{Pred: pred, T: datalog.Tuple(vals)}
}

func del(pred string, vals ...any) datalog.DeltaOp {
	return datalog.DeltaOp{Del: true, Pred: pred, T: datalog.Tuple(vals)}
}

// openStore opens a Store over fs with small snapshot thresholds disabled
// (tests trigger snapshots explicitly unless told otherwise).
func openStore(t testing.TB, fs FS) *Store {
	t.Helper()
	s, err := Open(Options{FS: fs, SnapshotEveryRecords: 1 << 30, SnapshotEveryBytes: 1 << 62})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func recoverStore(t testing.TB, fs FS) (*Store, *datalog.Incremental) {
	t.Helper()
	s := openStore(t, fs)
	inc, err := s.Recover(testProgram(t), datalog.NewDatabase())
	if err != nil {
		t.Fatal(err)
	}
	return s, inc
}

// TestLogRoundTrip: append ticks, close, reopen, recover — the recovered
// evaluator equals the original byte for byte, and resumes maintenance.
func TestLogRoundTrip(t *testing.T) {
	fs := NewFaultFS()
	s, inc := recoverStore(t, fs)
	tick(t, s, inc, []datalog.DeltaOp{ins("edge", int64(1), int64(2)), ins("edge", int64(2), int64(3))})
	tick(t, s, inc, []datalog.DeltaOp{ins("attr", int64(3), int64(30)), del("edge", int64(2), int64(3))})
	tick(t, s, inc, nil) // empty ticks are legal and consume a seq
	tick(t, s, inc, []datalog.DeltaOp{ins("edge", int64(2), int64(3))})
	if s.LastSeq() != 4 {
		t.Fatalf("LastSeq = %d, want 4", s.LastSeq())
	}
	want := stateImage(t, inc, s.LastSeq())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, inc2 := recoverStore(t, fs)
	defer s2.Close()
	if s2.LastSeq() != 4 {
		t.Fatalf("recovered LastSeq = %d, want 4", s2.LastSeq())
	}
	if got := stateImage(t, inc2, s2.LastSeq()); !bytes.Equal(got, want) {
		t.Fatal("recovered state differs from original")
	}
	// The recovered instance keeps maintaining incrementally.
	tick(t, s2, inc2, []datalog.DeltaOp{ins("edge", int64(3), int64(4))})
	if !inc2.DB().Get("path").Contains(datalog.Tuple{int64(1), int64(4)}) {
		t.Fatal("recovered evaluator did not maintain path(1,4)")
	}
}

// TestSnapshotAndRotation: a snapshot commits the state, rotates the log,
// and recovery afterwards replays only the suffix.
func TestSnapshotAndRotation(t *testing.T) {
	fs := NewFaultFS()
	s, inc := recoverStore(t, fs)
	tick(t, s, inc, []datalog.DeltaOp{ins("edge", int64(1), int64(2)), ins("attr", int64(2), int64(20))})
	tick(t, s, inc, []datalog.DeltaOp{ins("edge", int64(2), int64(3))})
	if err := s.Snapshot(inc); err != nil {
		t.Fatal(err)
	}
	if s.SnapshotSeq() != 2 {
		t.Fatalf("SnapshotSeq = %d, want 2", s.SnapshotSeq())
	}
	tick(t, s, inc, []datalog.DeltaOp{del("edge", int64(1), int64(2))})
	want := stateImage(t, inc, 3)
	s.Close()

	info, err := Inspect(fs)
	if err != nil {
		t.Fatal(err)
	}
	if !info.HasSnapshot || info.SnapshotSeq != 2 {
		t.Fatalf("Inspect snapshot: %+v", info)
	}
	if info.LogBaseSeq != 2 || info.LogRecords != 1 || info.LogLastSeq != 3 {
		t.Fatalf("Inspect log after rotation: %+v", info)
	}

	s2, inc2 := recoverStore(t, fs)
	defer s2.Close()
	if got := stateImage(t, inc2, 3); !bytes.Equal(got, want) {
		t.Fatal("post-snapshot recovery differs")
	}
}

// TestTornTailTruncated: a crash mid-append leaves a partial record; reopen
// truncates it away and recovers the prefix.
func TestTornTailTruncated(t *testing.T) {
	for cut := int64(1); cut <= 24; cut += 4 {
		fs := NewFaultFS()
		s, inc := recoverStore(t, fs)
		tick(t, s, inc, []datalog.DeltaOp{ins("edge", int64(1), int64(2))})
		want := stateImage(t, inc, 1)

		fs.CrashAfterBytes(cut) // the next record is longer than any cut here
		err := tickErr(s, inc, []datalog.DeltaOp{ins("edge", int64(2), int64(3)), ins("attr", int64(2), int64(7))})
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("cut %d: tick err = %v, want ErrCrashed", cut, err)
		}
		if err := s.Append(datalog.NewDelta()); !errors.Is(err, s.Failed()) || s.Failed() == nil {
			t.Fatalf("cut %d: store must latch failure, got %v", cut, err)
		}

		fs.Revive()
		s2, inc2 := recoverStore(t, fs)
		if s2.LastSeq() != 1 {
			t.Fatalf("cut %d: recovered LastSeq = %d, want 1", cut, s2.LastSeq())
		}
		if got := stateImage(t, inc2, 1); !bytes.Equal(got, want) {
			t.Fatalf("cut %d: torn-tail recovery differs", cut)
		}
		s2.Close()
	}
}

// TestCorruptRecordRejected: bit rot inside a committed (non-tail) record
// truncates from the corruption point; rot in the header is fatal.
func TestCorruptRecordRejected(t *testing.T) {
	fs := NewFaultFS()
	s, inc := recoverStore(t, fs)
	tick(t, s, inc, []datalog.DeltaOp{ins("edge", int64(1), int64(2))})
	want := stateImage(t, inc, 1)
	tick(t, s, inc, []datalog.DeltaOp{ins("edge", int64(2), int64(3))})
	s.Close()

	// Flip a byte in the second record's payload: CRC fails, scan stops,
	// recovery keeps the first record only.
	logLen := int64(len(fs.Files()[walName]))
	if !fs.Corrupt(walName, logLen-1) {
		t.Fatal("corrupt failed")
	}
	s2, inc2 := recoverStore(t, fs)
	if s2.LastSeq() != 1 {
		t.Fatalf("LastSeq after tail corruption = %d, want 1", s2.LastSeq())
	}
	if got := stateImage(t, inc2, 1); !bytes.Equal(got, want) {
		t.Fatal("recovery after tail corruption differs")
	}
	s2.Close()

	// A corrupt header is not ours: fatal.
	if !fs.Corrupt(walName, 1) {
		t.Fatal("corrupt failed")
	}
	if _, err := Open(Options{FS: fs}); err == nil {
		t.Fatal("Open accepted corrupt changelog magic")
	}
}

// TestCorruptSnapshotFatal: a damaged live snapshot must refuse recovery
// (the changelog may have been truncated past its floor) rather than
// silently restarting empty.
func TestCorruptSnapshotFatal(t *testing.T) {
	fs := NewFaultFS()
	s, inc := recoverStore(t, fs)
	tick(t, s, inc, []datalog.DeltaOp{ins("edge", int64(1), int64(2))})
	if err := s.Snapshot(inc); err != nil {
		t.Fatal(err)
	}
	s.Close()
	snapLen := int64(len(fs.Files()[snapName]))
	if !fs.Corrupt(snapName, snapLen/2) {
		t.Fatal("corrupt failed")
	}
	if _, err := Open(Options{FS: fs}); err == nil {
		t.Fatal("Open accepted corrupt snapshot")
	}
}

// TestSnapshotCrashWindows: kill the process at every metadata-op boundary
// inside Snapshot; every wreckage must recover to the exact pre-crash
// state.
func TestSnapshotCrashWindows(t *testing.T) {
	for ops := 0; ops < 12; ops++ {
		fs := NewFaultFS()
		s, inc := recoverStore(t, fs)
		tick(t, s, inc, []datalog.DeltaOp{ins("edge", int64(1), int64(2)), ins("attr", int64(2), int64(20))})
		tick(t, s, inc, []datalog.DeltaOp{ins("edge", int64(2), int64(3))})
		want := stateImage(t, inc, 2)

		fs.CrashAfterOps(ops)
		err := s.Snapshot(inc)
		if err == nil {
			if ops < 7 { // snapshot+rotation costs at least 7 metadata ops
				t.Fatalf("ops %d: snapshot unexpectedly succeeded", ops)
			}
		} else if !errors.Is(err, ErrCrashed) {
			t.Fatalf("ops %d: %v", ops, err)
		}

		fs.Revive()
		s2, inc2 := recoverStore(t, fs)
		if s2.LastSeq() != 2 {
			t.Fatalf("ops %d: recovered LastSeq = %d, want 2", ops, s2.LastSeq())
		}
		if got := stateImage(t, inc2, 2); !bytes.Equal(got, want) {
			t.Fatalf("ops %d: recovery differs", ops)
		}
		s2.Close()
	}
}

// TestSnapshotThresholds: Committed triggers a snapshot once the record
// threshold is crossed.
func TestSnapshotThresholds(t *testing.T) {
	fs := NewFaultFS()
	s, err := Open(Options{FS: fs, SnapshotEveryRecords: 3})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := s.Recover(testProgram(t), datalog.NewDatabase())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 7; i++ {
		tick(t, s, inc, []datalog.DeltaOp{ins("edge", i, i+1)})
	}
	// Snapshots at seq 3 and 6.
	if s.SnapshotSeq() != 6 {
		t.Fatalf("SnapshotSeq = %d, want 6", s.SnapshotSeq())
	}
	info, _ := Inspect(fs)
	if info.LogBaseSeq != 6 || info.LogRecords != 1 {
		t.Fatalf("log not rotated at threshold: %+v", info)
	}
	s.Close()
}

// TestValueCodecRoundTrip: every supported dynamic type survives the tuple
// codec with its exact Go type.
func TestValueCodecRoundTrip(t *testing.T) {
	in := datalog.Tuple{"s", "", int64(-9000), int(42), uint64(1 << 60), 3.5, true, false}
	b, err := appendTuple(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, rest, err := readTuple(b)
	if err != nil || len(rest) != 0 {
		t.Fatalf("readTuple: %v (rest %d)", err, len(rest))
	}
	if len(out) != len(in) {
		t.Fatalf("arity %d != %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] || fmt.Sprintf("%T", out[i]) != fmt.Sprintf("%T", in[i]) {
			t.Fatalf("slot %d: %v (%T) != %v (%T)", i, out[i], out[i], in[i], in[i])
		}
	}
	if _, err := appendTuple(nil, datalog.Tuple{struct{}{}}); err == nil {
		t.Fatal("unsupported type must be rejected")
	}
}

// TestDirFS exercises the production FS end to end on a real directory.
func TestDirFS(t *testing.T) {
	fs, err := DirFS(t.TempDir() + "/dur")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(Options{FS: fs, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := s.Recover(testProgram(t), datalog.NewDatabase())
	if err != nil {
		t.Fatal(err)
	}
	tick(t, s, inc, []datalog.DeltaOp{ins("edge", int64(1), int64(2)), ins("edge", int64(2), int64(3))})
	if err := s.Snapshot(inc); err != nil {
		t.Fatal(err)
	}
	tick(t, s, inc, []datalog.DeltaOp{ins("attr", int64(3), int64(30))})
	want := stateImage(t, inc, 2)
	s.Close()

	s2, err := Open(Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	inc2, err := s2.Recover(testProgram(t), datalog.NewDatabase())
	if err != nil {
		t.Fatal(err)
	}
	if got := stateImage(t, inc2, 2); !bytes.Equal(got, want) {
		t.Fatal("DirFS recovery differs")
	}
	if !inc2.DB().Get("reach_attr").Contains(datalog.Tuple{int64(1), int64(30)}) {
		t.Fatal("recovered reach_attr missing")
	}
}

// TestRandomizedReopen: random op soup with periodic close/reopen cycles;
// after every reopen the state must match a never-closed oracle.
func TestRandomizedReopen(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fs := NewFaultFS()
		s, inc := recoverStore(t, fs)

		oracleDB := datalog.NewDatabase()
		oracle, err := datalog.NewIncremental(testProgram(t), oracleDB)
		if err != nil {
			t.Fatal(err)
		}

		for step := 0; step < 40; step++ {
			muts := randMuts(rng, 3)
			tick(t, s, inc, muts)
			applyOracle(t, oracle, muts)
			if rng.Intn(5) == 0 {
				if err := s.Snapshot(inc); err != nil {
					t.Fatal(err)
				}
			}
			if rng.Intn(7) == 0 {
				seq := s.LastSeq()
				s.Close()
				s, inc = recoverStore(t, fs)
				if s.LastSeq() != seq {
					t.Fatalf("seed %d step %d: LastSeq %d != %d", seed, step, s.LastSeq(), seq)
				}
				if !bytes.Equal(stateImage(t, inc, seq), stateImage(t, oracle, seq)) {
					t.Fatalf("seed %d step %d: reopen diverged from oracle", seed, step)
				}
			}
		}
		if !bytes.Equal(stateImage(t, inc, s.LastSeq()), stateImage(t, oracle, s.LastSeq())) {
			t.Fatalf("seed %d: final state diverged", seed)
		}
		s.Close()
	}
}

// randMuts draws a small batch of base mutations over a tiny value domain
// so inserts, deletes and re-inserts of the same tuple all occur.
func randMuts(rng *rand.Rand, n int) []datalog.DeltaOp {
	muts := make([]datalog.DeltaOp, 0, n)
	for i := 0; i < rng.Intn(n+1); i++ {
		var op datalog.DeltaOp
		op.Del = rng.Intn(3) == 0
		if rng.Intn(2) == 0 {
			op.Pred = "edge"
			op.T = datalog.Tuple{int64(rng.Intn(6)), int64(rng.Intn(6))}
		} else {
			op.Pred = "attr"
			op.T = datalog.Tuple{int64(rng.Intn(6)), int64(rng.Intn(4) * 10)}
		}
		muts = append(muts, op)
	}
	return muts
}

// applyOracle applies the same mutation batch to the in-memory oracle.
func applyOracle(t testing.TB, inc *datalog.Incremental, muts []datalog.DeltaOp) {
	t.Helper()
	d := datalog.NewDelta()
	db := inc.DB()
	for _, m := range muts {
		if m.Del {
			if rel := db.Get(m.Pred); rel != nil && rel.Delete(m.T) {
				d.Delete(m.Pred, m.T)
			}
		} else if db.Ensure(m.Pred, len(m.T)).Insert(m.T) {
			d.Insert(m.Pred, m.T)
		}
	}
	if _, err := inc.Apply(d); err != nil {
		t.Fatal(err)
	}
}

// TestAbortLast: the append-before-apply abort path — a journaled record
// whose tick the evaluator rejected is truncated off the log, the sequence
// rewinds, and appending resumes at the freed seq.
func TestAbortLast(t *testing.T) {
	fs := NewFaultFS()
	s, inc := recoverStore(t, fs)
	tick(t, s, inc, []datalog.DeltaOp{ins("edge", int64(1), int64(2))})

	// Stage a tick the way the transducer does: mutate, record, append —
	// then pretend the maintenance pass rejected it.
	db := inc.DB()
	d := datalog.NewDelta()
	d.SetRecording(true)
	db.Get("edge").Insert(datalog.Tuple{int64(2), int64(3)})
	d.Insert("edge", datalog.Tuple{int64(2), int64(3)})
	if err := s.Append(d); err != nil {
		t.Fatal(err)
	}
	if s.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d, want 2", s.LastSeq())
	}
	if err := s.AbortLast(); err != nil {
		t.Fatal(err)
	}
	db.Get("edge").Delete(datalog.Tuple{int64(2), int64(3)}) // caller's rollback
	if s.LastSeq() != 1 {
		t.Fatalf("LastSeq after abort = %d, want 1", s.LastSeq())
	}
	if err := s.AbortLast(); err == nil {
		t.Fatal("second AbortLast must refuse: nothing abortable")
	}

	// Appending continues at the freed sequence number.
	tick(t, s, inc, []datalog.DeltaOp{ins("attr", int64(2), int64(7))})
	if s.LastSeq() != 2 {
		t.Fatalf("LastSeq after re-append = %d, want 2", s.LastSeq())
	}
	want := stateImage(t, inc, 2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, inc2 := recoverStore(t, fs)
	defer s2.Close()
	if s2.LastSeq() != 2 {
		t.Fatalf("recovered LastSeq = %d, want 2", s2.LastSeq())
	}
	if !bytes.Equal(stateImage(t, inc2, 2), want) {
		t.Fatal("recovered state differs after abort + re-append")
	}
}

// TestRecoverDropsAbortedFinalRecord covers the lost-abort crash window: a
// record reaches the log, the evaluator cleanly rejects the tick, and the
// process dies before AbortLast's truncation is durable. Recovery must drop
// exactly that final record; the same record anywhere but last stays fatal.
func TestRecoverDropsAbortedFinalRecord(t *testing.T) {
	badDelta := func() *datalog.Delta {
		// Ops that realize on replay but that Apply rejects pre-mutation
		// (writing a derived relation as if it were base).
		d := datalog.NewDelta()
		d.SetRecording(true)
		d.Insert("edge", datalog.Tuple{int64(8), int64(9)})
		d.Insert("reach_attr", datalog.Tuple{int64(8), int64(77)})
		return d
	}

	fs := NewFaultFS()
	s, inc := recoverStore(t, fs)
	tick(t, s, inc, []datalog.DeltaOp{ins("edge", int64(1), int64(2))})
	tick(t, s, inc, []datalog.DeltaOp{ins("attr", int64(2), int64(7))})
	want := stateImage(t, inc, 2)
	if err := s.Append(badDelta()); err != nil {
		t.Fatal(err)
	}
	s.Close() // dies before the abort truncation

	s2, inc2 := recoverStore(t, fs)
	if s2.LastSeq() != 2 {
		t.Fatalf("recovered LastSeq = %d, want 2 (aborted record dropped)", s2.LastSeq())
	}
	if !bytes.Equal(stateImage(t, inc2, 2), want) {
		t.Fatal("recovered state differs after dropping aborted record")
	}
	s2.Close()
	info, err := Inspect(fs)
	if err != nil {
		t.Fatal(err)
	}
	if info.LogRecords != 2 {
		t.Fatalf("aborted record not truncated: log holds %d records, want 2", info.LogRecords)
	}

	// A non-final unappliable record is corruption, not a lost abort: the
	// store refuses appends after an un-aborted rejection, so nothing can
	// legitimately follow one.
	s3, inc3 := recoverStore(t, fs)
	if err := s3.Append(badDelta()); err != nil {
		t.Fatal(err)
	}
	good := datalog.NewDelta()
	good.SetRecording(true)
	good.Insert("edge", datalog.Tuple{int64(5), int64(6)})
	if err := s3.Append(good); err != nil {
		t.Fatal(err)
	}
	_ = inc3
	s3.Close()
	s4 := openStore(t, fs)
	defer s4.Close()
	if _, err := s4.Recover(testProgram(t), datalog.NewDatabase()); err == nil {
		t.Fatal("recovery must fail on a non-final unappliable record")
	}
}
