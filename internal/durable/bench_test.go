package durable

import (
	"testing"

	"hydro/internal/datalog"
)

// Recovery benchmarks on the same database the root tick benchmarks use:
// transitive closure over 8 chains × 64 edges (16.6k derived paths).
//
// Three recovery strategies, slowest to fastest:
//
//   - BenchmarkRecoveryNaiveRecompute: re-derive with the naive evaluator —
//     every rule re-joined over the full relations each iteration. ~300×
//     the snapshot path at this size; the ≥10× acceptance bar for durable
//     recovery is pinned against this in TestRecoverySpeed.
//   - BenchmarkRecoveryColdRecompute: re-derive semi-naively. At this toy
//     scale it sits at parity with snapshot recovery — both are linear
//     passes over the same 16.6k tuples (derive-and-index vs
//     decode-and-index, ~420ns/tuple either way). The snapshot path pulls
//     ahead as rules grow joins and iterations; what it buys even here is
//     recovery cost proportional to STATE, not to rule complexity.
//   - BenchmarkRecoveryReplay: load the snapshot, replay the short
//     changelog suffix.

const (
	benchChains    = 8
	benchChainLen  = 64
	benchSuffixLen = 4 // ticks appended after the snapshot
)

func benchProgram(b testing.TB) *datalog.Program {
	b.Helper()
	p, err := datalog.NewProgram(
		datalog.Rule{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}},
			Body: []datalog.Literal{{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}}},
		},
		datalog.Rule{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("z")}},
			Body: []datalog.Literal{
				{Atom: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}},
				{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("y"), datalog.V("z")}}},
			},
		},
	)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func benchEdges() []datalog.Tuple {
	var ts []datalog.Tuple
	for c := 0; c < benchChains; c++ {
		base := int64(c * (benchChainLen + 1))
		for i := 0; i < benchChainLen; i++ {
			ts = append(ts, datalog.Tuple{base + int64(i), base + int64(i) + 1})
		}
	}
	return ts
}

// benchDir builds a durability directory holding the full bench database:
// a snapshot of the fixpoint plus a short changelog suffix of single-edge
// ticks — the steady-state shape recovery sees in production.
func benchDir(b testing.TB) *FaultFS {
	b.Helper()
	fs := NewFaultFS()
	s, err := Open(Options{FS: fs, SnapshotEveryRecords: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	db := datalog.NewDatabase()
	db.Ensure("edge", 2)
	inc, err := s.Recover(benchProgram(b), db)
	if err != nil {
		b.Fatal(err)
	}
	edges := benchEdges()
	bulk, suffix := edges[:len(edges)-benchSuffixLen], edges[len(edges)-benchSuffixLen:]
	d := datalog.NewDelta()
	d.SetRecording(true)
	for _, t := range bulk {
		db.Get("edge").Insert(t)
		d.Insert("edge", t)
	}
	if err := s.Append(d); err != nil {
		b.Fatal(err)
	}
	if _, err := inc.Apply(d); err != nil {
		b.Fatal(err)
	}
	if err := s.Snapshot(inc); err != nil {
		b.Fatal(err)
	}
	for _, t := range suffix {
		d := datalog.NewDelta()
		d.SetRecording(true)
		db.Get("edge").Insert(t)
		d.Insert("edge", t)
		if err := s.Append(d); err != nil {
			b.Fatal(err)
		}
		if _, err := inc.Apply(d); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	return fs
}

// BenchmarkRecoveryReplay: open the directory, load the snapshot, replay
// the suffix — the warm-restart path.
func BenchmarkRecoveryReplay(b *testing.B) {
	fs := benchDir(b)
	p := benchProgram(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(Options{FS: fs})
		if err != nil {
			b.Fatal(err)
		}
		inc, err := s.Recover(p, datalog.NewDatabase())
		if err != nil {
			b.Fatal(err)
		}
		if inc.DB().Get("path").Len() == 0 {
			b.Fatal("empty recovery")
		}
		s.Close()
	}
}

// BenchmarkRecoveryColdRecompute: what recovery costs without durability —
// re-derive the whole fixpoint from the base facts.
func BenchmarkRecoveryColdRecompute(b *testing.B) {
	p := benchProgram(b)
	edges := benchEdges()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := datalog.NewDatabase()
		rel := db.Ensure("edge", 2)
		for _, t := range edges {
			rel.Insert(t)
		}
		inc, err := datalog.NewIncremental(p, db)
		if err != nil {
			b.Fatal(err)
		}
		if inc.DB().Get("path").Len() == 0 {
			b.Fatal("empty fixpoint")
		}
	}
}

// BenchmarkSnapshotWrite: cost of one full snapshot (state capture, B-tree
// staging, encode, write, rotate) at the bench database size.
func BenchmarkSnapshotWrite(b *testing.B) {
	fs := NewFaultFS()
	s, err := Open(Options{FS: fs, SnapshotEveryRecords: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	db := datalog.NewDatabase()
	db.Ensure("edge", 2)
	inc, err := s.Recover(benchProgram(b), db)
	if err != nil {
		b.Fatal(err)
	}
	d := datalog.NewDelta()
	d.SetRecording(true)
	for _, t := range benchEdges() {
		db.Get("edge").Insert(t)
		d.Insert("edge", t)
	}
	if err := s.Append(d); err != nil {
		b.Fatal(err)
	}
	if _, err := inc.Apply(d); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Snapshot(inc); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	s.Close()
}

// BenchmarkAppendRecord: cost of journaling one small tick (no fsync — the
// FS is in-memory; this isolates the encode path).
func BenchmarkAppendRecord(b *testing.B) {
	fs := NewFaultFS()
	s, err := Open(Options{FS: fs, SnapshotEveryRecords: 1 << 30, SnapshotEveryBytes: 1 << 62})
	if err != nil {
		b.Fatal(err)
	}
	d := datalog.NewDelta()
	d.SetRecording(true)
	d.Insert("edge", datalog.Tuple{int64(1), int64(2)})
	d.Delete("edge", datalog.Tuple{int64(2), int64(3)})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(d); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	s.Close()
}

// BenchmarkRecoveryNaiveRecompute: re-derive the fixpoint with the naive
// evaluator (the differential oracle's ground truth) — recovery without any
// durability or semi-naive machinery.
func BenchmarkRecoveryNaiveRecompute(b *testing.B) {
	p := benchProgram(b)
	edges := benchEdges()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := datalog.NewDatabase()
		rel := db.Ensure("edge", 2)
		for _, t := range edges {
			rel.Insert(t)
		}
		if _, err := p.EvalNaive(db); err != nil {
			b.Fatal(err)
		}
		if db.Get("path").Len() == 0 {
			b.Fatal("empty fixpoint")
		}
	}
}

// TestRecoverySpeed pins the recovery acceptance bars with real
// measurements: snapshot-plus-suffix recovery must be ≥10× faster than
// naive recomputation, and must not lose to semi-naive recomputation
// (1.5× slack absorbs CI timer noise on a ~7ms measurement).
func TestRecoverySpeed(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short")
	}
	warm := testing.Benchmark(BenchmarkRecoveryReplay).NsPerOp()
	cold := testing.Benchmark(BenchmarkRecoveryColdRecompute).NsPerOp()
	naive := testing.Benchmark(BenchmarkRecoveryNaiveRecompute).NsPerOp()
	t.Logf("warm %v ns/op, semi-naive cold %v ns/op (%.1fx), naive cold %v ns/op (%.0fx)",
		warm, cold, float64(cold)/float64(warm), naive, float64(naive)/float64(warm))
	if warm*10 > naive {
		t.Fatalf("warm recovery %d ns/op not 10x faster than naive recompute %d ns/op", warm, naive)
	}
	if warm > cold*3/2 {
		t.Fatalf("warm recovery %d ns/op regressed past semi-naive recompute %d ns/op", warm, cold)
	}
}
