package durable

import (
	"encoding/binary"
	"fmt"
	"math"

	"hydro/internal/datalog"
)

// Binary value codec for changelog records and snapshot entries. Every
// dynamic type the engine stores in tuples gets its own tag so values
// round-trip to the exact Go type — datalog.Tuple equality is typed, so
// decoding an int64 back as int would silently break joins. Integers use
// varints (zigzag where signed), float64 is 8 fixed bytes, strings are
// length-prefixed. The encoding is deterministic: one value, one byte
// sequence.

const (
	tagString  byte = 1
	tagInt64   byte = 2
	tagInt     byte = 3
	tagUint64  byte = 4
	tagFloat64 byte = 5
	tagTrue    byte = 6
	tagFalse   byte = 7
)

func appendValue(b []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case string:
		b = append(b, tagString)
		b = binary.AppendUvarint(b, uint64(len(x)))
		return append(b, x...), nil
	case int64:
		return binary.AppendVarint(append(b, tagInt64), x), nil
	case int:
		return binary.AppendVarint(append(b, tagInt), int64(x)), nil
	case uint64:
		return binary.AppendUvarint(append(b, tagUint64), x), nil
	case float64:
		b = append(b, tagFloat64)
		return binary.LittleEndian.AppendUint64(b, math.Float64bits(x)), nil
	case bool:
		if x {
			return append(b, tagTrue), nil
		}
		return append(b, tagFalse), nil
	default:
		return nil, fmt.Errorf("durable: unsupported tuple value type %T", v)
	}
}

func readValue(b []byte) (any, []byte, error) {
	if len(b) == 0 {
		return nil, nil, fmt.Errorf("durable: truncated value")
	}
	tag, b := b[0], b[1:]
	switch tag {
	case tagString:
		n, sz := binary.Uvarint(b)
		if sz <= 0 || uint64(len(b)-sz) < n {
			return nil, nil, fmt.Errorf("durable: truncated string value")
		}
		return string(b[sz : sz+int(n)]), b[sz+int(n):], nil
	case tagInt64, tagInt:
		v, sz := binary.Varint(b)
		if sz <= 0 {
			return nil, nil, fmt.Errorf("durable: truncated integer value")
		}
		if tag == tagInt {
			return int(v), b[sz:], nil
		}
		return v, b[sz:], nil
	case tagUint64:
		v, sz := binary.Uvarint(b)
		if sz <= 0 {
			return nil, nil, fmt.Errorf("durable: truncated unsigned value")
		}
		return v, b[sz:], nil
	case tagFloat64:
		if len(b) < 8 {
			return nil, nil, fmt.Errorf("durable: truncated float value")
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
	case tagTrue:
		return true, b, nil
	case tagFalse:
		return false, b, nil
	default:
		return nil, nil, fmt.Errorf("durable: unknown value tag %d", tag)
	}
}

func appendTuple(b []byte, t datalog.Tuple) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(t)))
	var err error
	for _, v := range t {
		if b, err = appendValue(b, v); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func readTuple(b []byte) (datalog.Tuple, []byte, error) {
	return readTupleAlloc(b, nil)
}

// readTupleAlloc decodes a tuple, taking its backing storage from arena
// when non-nil — recovery decodes tens of thousands of tuples, and one
// slab allocation per batch beats one slice header per tuple.
func readTupleAlloc(b []byte, arena *tupleArena) (datalog.Tuple, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > uint64(len(b)) {
		return nil, nil, fmt.Errorf("durable: truncated tuple header")
	}
	b = b[sz:]
	var t datalog.Tuple
	if arena != nil {
		t = arena.take(int(n))
	} else {
		t = make(datalog.Tuple, n)
	}
	var err error
	for i := range t {
		if t[i], b, err = readValue(b); err != nil {
			return nil, nil, err
		}
	}
	return t, b, nil
}

// tupleArena hands out tuple backing storage from large slabs.
type tupleArena struct {
	slab []any
}

func (a *tupleArena) take(n int) datalog.Tuple {
	if n == 0 {
		return datalog.Tuple{}
	}
	if len(a.slab) < n {
		size := 4096
		if n > size {
			size = n
		}
		a.slab = make([]any, size)
	}
	t := a.slab[:n:n]
	a.slab = a.slab[n:]
	return datalog.Tuple(t)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readString(b []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < n {
		return "", nil, fmt.Errorf("durable: truncated string")
	}
	return string(b[sz : sz+int(n)]), b[sz+int(n):], nil
}
