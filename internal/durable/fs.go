// Package durable makes the engine's materialized state crash-safe: a
// write-ahead changelog of realized base-relation deltas (length-prefixed,
// CRC32C-checksummed records with torn-tail truncation on open) plus
// periodic snapshots of the full incremental fixpoint — counted-derivation
// state included — so recovery loads the latest snapshot, replays the
// changelog suffix through datalog.Incremental.Apply, and resumes
// incremental maintenance instead of re-deriving from scratch (DESIGN.md
// §10).
//
// All file access goes through the narrow FS interface so the crash-point
// fault-injection harness (FaultFS) can kill the "process" after an exact
// number of written bytes or metadata operations, leaving torn files behind
// exactly as a real crash would.
package durable

import (
	"io"
	"os"
	"path/filepath"
)

// FS is the file layer the store runs on: a flat namespace of files inside
// one durability directory. Implementations: DirFS (the real filesystem)
// and FaultFS (crash injection for the recovery harness).
type FS interface {
	// ReadFile returns the named file's contents, or an error satisfying
	// os.IsNotExist when absent.
	ReadFile(name string) ([]byte, error)
	// Create truncates-or-creates the named file for writing.
	Create(name string) (File, error)
	// OpenAppend opens the named file for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Truncate cuts the named file to size bytes (torn-tail repair).
	Truncate(name string, size int64) error
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes the named file; absent files are not an error.
	Remove(name string) error
	// SyncDir flushes directory metadata (created/renamed entries) so a
	// committed rename survives power loss.
	SyncDir() error
}

// File is the writable handle subset the store needs.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// dirFS is the production FS: plain os files under one directory.
type dirFS struct {
	dir string
}

// DirFS returns an FS rooted at dir, creating the directory if needed.
func DirFS(dir string) (FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &dirFS{dir: dir}, nil
}

func (f *dirFS) path(name string) string { return filepath.Join(f.dir, name) }

func (f *dirFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(f.path(name)) }

func (f *dirFS) Create(name string) (File, error) {
	return os.OpenFile(f.path(name), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (f *dirFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(f.path(name), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

func (f *dirFS) Truncate(name string, size int64) error { return os.Truncate(f.path(name), size) }

func (f *dirFS) Rename(oldname, newname string) error {
	return os.Rename(f.path(oldname), f.path(newname))
}

func (f *dirFS) Remove(name string) error {
	err := os.Remove(f.path(name))
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

func (f *dirFS) SyncDir() error {
	d, err := os.Open(f.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
