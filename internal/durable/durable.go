package durable

import (
	"errors"
	"fmt"
	"os"

	"hydro/internal/datalog"
	"hydro/internal/storage"
)

// SyncPolicy picks the durability/throughput trade-off for changelog
// appends (DESIGN.md §10 has the full decision table).
type SyncPolicy int

const (
	// SyncAlways fsyncs after every appended record: a committed tick
	// survives power loss, at ~one disk flush per tick.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves flushing to the OS page cache: a crash of the
	// process loses nothing (the file is written), but power loss may lose
	// the most recent ticks — the torn-tail repair turns that into a clean
	// prefix, and the replay-position contract (seq) keeps it consistent.
	SyncNever
)

// Options configures a Store.
type Options struct {
	// Dir is the durability directory (used when FS is nil).
	Dir string
	// FS overrides the file layer (fault injection, tests).
	FS FS
	// Sync is the changelog fsync policy.
	Sync SyncPolicy
	// SnapshotEveryRecords triggers a snapshot once this many records have
	// been committed since the last one (0 = default 1024).
	SnapshotEveryRecords int
	// SnapshotEveryBytes triggers a snapshot once the changelog has grown
	// this many bytes past the last one (0 = default 4 MiB).
	SnapshotEveryBytes int64
}

const (
	defaultSnapRecords = 1024
	defaultSnapBytes   = 4 << 20
)

// Store is one durability directory: a changelog being appended and the
// snapshot it is a suffix of. It implements the transducer's DurabilitySink
// (Append before apply, Committed after).
//
// A Store is single-writer and not concurrency-safe; the transducer tick
// loop is single-threaded, which is the intended caller. After any write
// error the store marks itself failed and refuses further writes — half-
// appended state on disk is exactly what recovery repairs, and continuing
// to append past a failed write would interleave garbage.
type Store struct {
	opts    Options
	fs      FS
	logf    File
	lastSeq uint64 // seq of the last appended record
	snapSeq uint64 // seq covered by the live snapshot
	// pending holds the replayable records found at open (with their file
	// offsets), and snapData the live snapshot image, until Recover consumes
	// them.
	pending       []logRecord
	pendingStarts []int64
	snapData      []byte
	recovered     bool
	failed        error

	// lastRecStart is the file offset of the last appended record while it
	// is still abortable (-1 otherwise) — AbortLast's truncation point.
	lastRecStart int64

	recsSinceSnap int
	logBytes      int64 // changelog bytes since last rotation (growth trigger)
	buf           []byte
}

// Open scans the durability directory, repairs a torn changelog tail, and
// prepares the store for Recover + appends. Stale temp files from a crash
// mid-snapshot or mid-rotation are removed.
func Open(opts Options) (*Store, error) {
	fs := opts.FS
	if fs == nil {
		var err error
		if fs, err = DirFS(opts.Dir); err != nil {
			return nil, err
		}
	}
	if opts.SnapshotEveryRecords == 0 {
		opts.SnapshotEveryRecords = defaultSnapRecords
	}
	if opts.SnapshotEveryBytes == 0 {
		opts.SnapshotEveryBytes = defaultSnapBytes
	}
	s := &Store{opts: opts, fs: fs, lastRecStart: -1}
	// A crash can leave temp files behind; they were never committed.
	if err := fs.Remove(snapTmpName); err != nil {
		return nil, err
	}
	if err := fs.Remove(walTmpName); err != nil {
		return nil, err
	}

	// Snapshot seq (the floor recovery replays from). The image is kept for
	// Recover; only the seq entry is parsed here.
	if data, err := fs.ReadFile(snapName); err == nil {
		var derr error
		if s.snapSeq, derr = snapSeqOf(data); derr != nil {
			// The snapshot was committed by rename after an fsync; a corrupt
			// one means the directory is damaged, and the changelog may
			// already have been truncated past its floor — refusing is the
			// only honest answer.
			return nil, fmt.Errorf("durable: live snapshot corrupt: %w", derr)
		}
		s.snapData = data
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	// Changelog: validate, repair the tail, queue the replayable suffix.
	data, err := fs.ReadFile(walName)
	switch {
	case os.IsNotExist(err):
		if err := s.writeFreshLog(walName, s.snapSeq); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, err
	default:
		recs, starts, validLen, baseSeq, serr := scanLog(data)
		if serr != nil {
			return nil, serr
		}
		if validLen < int64(walHdrLen) {
			// Torn header from a crash during initial creation.
			if err := s.writeFreshLog(walName, s.snapSeq); err != nil {
				return nil, err
			}
		} else {
			if validLen < int64(len(data)) {
				if err := fs.Truncate(walName, validLen); err != nil {
					return nil, err
				}
			}
			s.logBytes = validLen
		}
		s.lastSeq = baseSeq
		for i, r := range recs {
			if r.seq > s.snapSeq {
				s.pending = append(s.pending, r)
				s.pendingStarts = append(s.pendingStarts, starts[i])
			}
			s.lastSeq = r.seq
		}
	}
	if s.lastSeq < s.snapSeq {
		// Crash between snapshot rename and log rotation can leave the log
		// shorter than the snapshot: the snapshot is the truth.
		s.lastSeq = s.snapSeq
	}
	if s.logf == nil {
		if s.logf, err = fs.OpenAppend(walName); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// writeFreshLog creates name with just a header (synced).
func (s *Store) writeFreshLog(name string, baseSeq uint64) error {
	f, err := s.fs.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeLogHeader(baseSeq)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	s.logf = f
	s.logBytes = int64(walHdrLen)
	return nil
}

// LastSeq returns the sequence number of the last durable tick: after
// Recover it is the tick the recovered state corresponds to, so the caller
// resumes at LastSeq()+1.
func (s *Store) LastSeq() uint64 { return s.lastSeq }

// SnapshotSeq returns the seq covered by the live snapshot.
func (s *Store) SnapshotSeq() uint64 { return s.snapSeq }

// Recover rebuilds the incremental evaluator: the live snapshot (if any) is
// restored into db, and the changelog suffix past it is replayed through
// Apply — base mutations re-applied in exact recorded order, maintenance
// re-run per tick — leaving the evaluator mid-stream, ready for the next
// tick, without re-deriving anything the snapshot already materialized.
func (s *Store) Recover(p *datalog.Program, db *datalog.Database) (*datalog.Incremental, error) {
	if s.recovered {
		return nil, fmt.Errorf("durable: store already recovered")
	}
	s.recovered = true
	var inc *datalog.Incremental
	if s.snapData != nil {
		_, fx, derr := unstageBytes(s.snapData)
		if derr != nil {
			return nil, derr
		}
		if inc, derr = datalog.RestoreIncremental(p, db, fx); derr != nil {
			return nil, derr
		}
		s.snapData = nil
	} else {
		var err error
		if inc, err = datalog.NewIncremental(p, db); err != nil {
			return nil, err
		}
	}
	for i, rec := range s.pending {
		if err := replayRecord(inc, rec); err != nil {
			if i == len(s.pending)-1 && errors.Is(err, errTickRejected) {
				// Append-before-apply leaves exactly one uncertain window: a
				// record that reached the log but whose tick the evaluator
				// then rejected, with the AbortLast truncation not making it
				// to disk before the crash. Only the FINAL record can be in
				// that state — the store refuses further appends until the
				// abort completes — so a final record the evaluator cleanly
				// rejects again (base ops realized, fixpoint intact) is
				// truncated away like a torn tail. An earlier record failing,
				// or any replay failure that poisons the evaluator, means
				// real corruption and stays fatal.
				if terr := s.fs.Truncate(walName, s.pendingStarts[i]); terr != nil {
					return nil, s.fail(terr)
				}
				s.logBytes = s.pendingStarts[i]
				s.lastSeq = rec.seq - 1
				break
			}
			return nil, err
		}
	}
	s.pending, s.pendingStarts = nil, nil
	return inc, nil
}

// errTickRejected marks a logged record whose base ops realized but whose
// maintenance pass the evaluator rejected pre-mutation — the shape an
// aborted tick leaves behind when the abort truncation was lost to a crash.
var errTickRejected = errors.New("durable: logged tick rejected by evaluator")

// undoOps reverses realized base mutations in reverse application order.
// Contents and counts are restored exactly; a re-inserted row may land in a
// different slot, so relation iteration order can differ from a history
// that never staged the ops.
func undoOps(db *datalog.Database, ops []datalog.DeltaOp) {
	for i := len(ops) - 1; i >= 0; i-- {
		op := ops[i]
		if op.Del {
			db.Ensure(op.Pred, len(op.T)).Insert(op.T)
		} else if rel := db.Get(op.Pred); rel != nil {
			rel.Delete(op.T)
		}
	}
}

// replayRecord re-applies one changelog record: base-relation mutations in
// exact recorded order (every one must realize — the log and the state it
// replays onto were produced by the same history), then the maintenance
// pass.
func replayRecord(inc *datalog.Incremental, rec logRecord) error {
	d := datalog.NewDelta()
	db := inc.DB()
	for _, op := range rec.ops {
		if op.Del {
			rel := db.Get(op.Pred)
			if rel == nil || !rel.Delete(op.T) {
				return fmt.Errorf("durable: replay seq %d: delete %s%v did not realize", rec.seq, op.Pred, op.T)
			}
			d.Delete(op.Pred, op.T)
		} else {
			if !db.Ensure(op.Pred, len(op.T)).Insert(op.T) {
				return fmt.Errorf("durable: replay seq %d: insert %s%v did not realize", rec.seq, op.Pred, op.T)
			}
			d.Insert(op.Pred, op.T)
		}
	}
	if n, err := inc.Apply(d); err != nil {
		if n == 0 && !inc.Broken() {
			// Clean pre-mutation rejection: put the base relations back so
			// the caller can decide whether this record is droppable.
			undoOps(db, rec.ops)
			return fmt.Errorf("replay seq %d: %w: %v", rec.seq, errTickRejected, err)
		}
		return fmt.Errorf("durable: replay seq %d: %w", rec.seq, err)
	}
	return nil
}

// Append journals one tick's realized base-relation changes — the
// append-before-apply half of the commit protocol. The delta must have
// op recording enabled (datalog.Delta.SetRecording); an empty tick is legal
// and still consumes a sequence number.
func (s *Store) Append(d *datalog.Delta) error {
	if s.failed != nil {
		return s.failed
	}
	ops := d.Ops()
	if len(ops) == 0 && !d.Empty() {
		return fmt.Errorf("durable: delta has changes but no recorded ops (SetRecording not enabled)")
	}
	rec, err := encodeRecord(s.lastSeq+1, ops)
	if err != nil {
		return s.fail(err)
	}
	start := s.logBytes
	if _, err := s.logf.Write(rec); err != nil {
		return s.fail(err)
	}
	if s.opts.Sync == SyncAlways {
		if err := s.logf.Sync(); err != nil {
			return s.fail(err)
		}
	}
	s.lastSeq++
	s.logBytes += int64(len(rec))
	s.recsSinceSnap++
	s.lastRecStart = start
	return nil
}

// AbortLast logically aborts the record written by the immediately
// preceding Append — the caller applied the tick's base mutations, appended
// the record, and the evaluator then rejected the maintenance pass. The
// record is truncated off the changelog so recovery never replays it.
// Append handles follow the file, so subsequent appends land at the new
// end. If the truncation itself fails the store latches failed — the log
// then ends in a record the state does not contain, which is exactly the
// final-record shape Recover tolerates.
func (s *Store) AbortLast() error {
	if s.failed != nil {
		return s.failed
	}
	if s.lastRecStart < 0 {
		return fmt.Errorf("durable: no abortable record")
	}
	if err := s.fs.Truncate(walName, s.lastRecStart); err != nil {
		return s.fail(err)
	}
	if s.opts.Sync == SyncAlways {
		if err := s.logf.Sync(); err != nil {
			return s.fail(err)
		}
	}
	s.logBytes = s.lastRecStart
	s.lastSeq--
	s.recsSinceSnap--
	s.lastRecStart = -1
	return nil
}

// Committed runs after the appended tick was applied to inc; it takes a
// snapshot when the policy thresholds say the changelog has grown enough to
// make recovery replay noticeably slower than a snapshot load.
func (s *Store) Committed(inc *datalog.Incremental) error {
	if s.failed != nil {
		return s.failed
	}
	if s.recsSinceSnap < s.opts.SnapshotEveryRecords && s.logBytes < s.opts.SnapshotEveryBytes {
		return nil
	}
	return s.Snapshot(inc)
}

// Snapshot persists inc's full state (covering every tick appended so far)
// and rotates the changelog:
//
//  1. stage the fixpoint state into the Storage backend and stream it to a
//     temp file, fsync, close;
//  2. rename it over the live snapshot and fsync the directory — the
//     commit point;
//  3. rotate: write a fresh changelog (header only, base = snapshot seq) to
//     a temp name, fsync, rename over the old log, fsync the directory.
//
// A crash before 2 leaves the old snapshot + old log (temp removed on next
// open). A crash between 2 and 3 leaves the new snapshot + the old log,
// whose extra records recovery skips by seq. After 3 the directory is fully
// rotated. Every interleaving recovers.
func (s *Store) Snapshot(inc *datalog.Incremental) error {
	if s.failed != nil {
		return s.failed
	}
	fx, err := inc.State()
	if err != nil {
		return err
	}
	seq := s.lastSeq
	st := storage.NewBTree()
	if err := stageState(st, seq, fx); err != nil {
		return err
	}
	f, err := s.fs.Create(snapTmpName)
	if err != nil {
		return s.fail(err)
	}
	if _, err := f.Write(encodeSnapshot(st)); err != nil {
		f.Close()
		return s.fail(err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return s.fail(err)
	}
	if err := f.Close(); err != nil {
		return s.fail(err)
	}
	if err := s.fs.Rename(snapTmpName, snapName); err != nil {
		return s.fail(err)
	}
	if err := s.fs.SyncDir(); err != nil {
		return s.fail(err)
	}
	s.snapSeq = seq

	// Rotation: the old log is fully covered by the snapshot now.
	old := s.logf
	s.logf = nil
	if old != nil {
		old.Close()
	}
	if err := s.writeFreshLog(walTmpName, seq); err != nil {
		return s.fail(err)
	}
	if err := s.fs.Rename(walTmpName, walName); err != nil {
		return s.fail(err)
	}
	if err := s.fs.SyncDir(); err != nil {
		return s.fail(err)
	}
	s.recsSinceSnap = 0
	s.lastRecStart = -1 // the snapshot covers it; no longer abortable
	return nil
}

// fail latches the first write error; the store refuses everything after.
func (s *Store) fail(err error) error {
	if s.failed == nil {
		s.failed = fmt.Errorf("durable: store failed: %w", err)
	}
	return err
}

// Failed reports the latched failure, if any.
func (s *Store) Failed() error { return s.failed }

// Close releases the changelog handle (final fsync included unless the
// store already failed).
func (s *Store) Close() error {
	if s.logf == nil {
		return nil
	}
	var err error
	if s.failed == nil {
		err = s.logf.Sync()
	}
	if cerr := s.logf.Close(); err == nil {
		err = cerr
	}
	s.logf = nil
	return err
}

// Info summarizes a durability directory for operators (cmd/durtool).
type Info struct {
	SnapshotSeq     uint64
	SnapshotBytes   int64
	SnapshotEntries int
	HasSnapshot     bool
	LogBaseSeq      uint64
	LogLastSeq      uint64
	LogRecords      int
	LogBytes        int64
	TornBytes       int64 // trailing bytes a recovery would truncate
}

// Inspect reads a durability directory without modifying it.
func Inspect(fs FS) (*Info, error) {
	info := &Info{}
	if data, err := fs.ReadFile(snapName); err == nil {
		st, derr := decodeSnapshot(data)
		if derr != nil {
			return nil, derr
		}
		if info.SnapshotSeq, _, derr = unstageState(st); derr != nil {
			return nil, derr
		}
		info.HasSnapshot = true
		info.SnapshotBytes = int64(len(data))
		info.SnapshotEntries = st.Len()
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	if data, err := fs.ReadFile(walName); err == nil {
		recs, _, validLen, baseSeq, serr := scanLog(data)
		if serr != nil {
			return nil, serr
		}
		info.LogBaseSeq = baseSeq
		info.LogLastSeq = baseSeq
		if n := len(recs); n > 0 {
			info.LogLastSeq = recs[n-1].seq
		}
		info.LogRecords = len(recs)
		info.LogBytes = validLen
		info.TornBytes = int64(len(data)) - validLen
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return info, nil
}

// ErrCrashed is the sentinel the fault-injection layer returns once its
// budget is exhausted — "the process died here".
var ErrCrashed = errors.New("durable: injected crash")
