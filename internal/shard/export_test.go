package shard

import "fmt"

// Test-only exports: the chaos suites inject faults at exact protocol
// positions via the stage hook and read internal control-plane state.

// Coordinator stages, exported for the failover chaos suite's kill
// schedule.
const (
	StageIdle      = int(stIdle)
	StagePrepare   = int(stPrepare)
	StageOps       = int(stOps)
	StageCompBegin = int(stCompBegin)
	StageRound     = int(stRound)
	StageApply     = int(stApply)
	StageRecompute = int(stRecompute)
	StageDecide    = int(stDecide)
	StageCommit    = int(stCommit)
)

// SetStageHook installs a callback fired on every driver stage transition
// (node name, tick, attempt, stage). The hook runs inside the leader's
// message handler, so faults it injects (SetDown, Partition) take effect
// before the stage's broadcasts are delivered.
func (d *Deployment) SetStageHook(h func(node string, tick, att uint64, stg int)) {
	d.stageHook = h
}

// ControlState summarizes one coordinator's replicated view for test
// assertions.
type ControlState struct {
	Applied       int
	Epoch         uint64
	Leader        int
	Att           uint64
	Committed     uint64
	Queued        int
	AttPending    bool
	Driving       bool
	DriveStage    int
	Elections     uint64
	StaleDecrees  uint64
	DoubleCommits uint64
}

// ControlStates returns each coordinator's view, in index order.
func (d *Deployment) ControlStates() []ControlState {
	out := make([]ControlState, len(d.coords))
	for i, cn := range d.coords {
		cs := ControlState{
			Applied:       cn.cons.Applied(),
			Epoch:         cn.st.epoch,
			Leader:        cn.st.leader,
			Att:           cn.st.att,
			Committed:     cn.st.committed,
			Queued:        len(cn.st.queue),
			AttPending:    cn.attPending,
			Driving:       cn.drv != nil,
			DriveStage:    StageIdle,
			Elections:     cn.st.elections,
			StaleDecrees:  cn.st.stale,
			DoubleCommits: cn.st.doubleCommits,
		}
		if cn.drv != nil {
			cs.DriveStage = int(cn.drv.stg)
		}
		out[i] = cs
	}
	return out
}

// DebugString renders the full control-plane and replica state — the
// post-mortem dump when a chaos scenario fails to settle.
func (d *Deployment) DebugString() string {
	s := ""
	for i, cn := range d.coords {
		cs := d.ControlStates()[i]
		s += fmt.Sprintf("coord %s down=%v %+v\n", cn.name(), d.net.Down(cn.name()), cs)
		s += fmt.Sprintf("  cons: %s\n", cn.cons.DebugString())
	}
	for _, r := range d.replicas {
		s += fmt.Sprintf("replica %d down=%v committed=%d curTick=%d curAtt=%d curEpoch=%d\n",
			r.self, d.net.Down(r.name()), r.committed, r.curTick, r.curAtt, r.curEpoch)
	}
	s += fmt.Sprintf("submitted=%d now=%d\n", d.submitted, d.net.Now())
	return s
}
