package shard

import (
	"hydro/internal/consensus"
	"hydro/internal/datalog"
	"hydro/internal/simnet"
)

// The replicated control plane (DESIGN.md §13). Coordinator state
// transitions are decrees on a quorum-replicated Paxos log shared by all
// coordinator nodes; every coordinator applies the same decree sequence
// through ctlState.apply, so they agree on the epoch, the current leader,
// the globally monotone attempt counter, the committed-tick frontier, and
// the submitted-tick queue. Only the leader of the current epoch drives
// the volatile BSP state machine (coord.go) — everything it needs beyond
// the log is reconstructed by restarting the in-flight attempt from
// prepare, which is exactly what a standby does after winning an election.

// decreeSubmit appends one tick of base ops to the replicated queue. Seq
// is the submission index; duplicates (the deployment proposes through
// every coordinator so a single crash cannot lose a tick) collapse because
// only Seq == len(queue) applies.
type decreeSubmit struct {
	Seq uint64
	Ops []datalog.DeltaOp
}

// decreeElect installs Leader for Epoch. Proposed by a standby whose
// election timer expired; only epoch+1 applies, so concurrent candidates
// for the same succession race to one winner and the losers become stale.
type decreeElect struct {
	Epoch  uint64
	Leader int
}

// decreeAttempt starts attempt Att of tick Tick under Epoch. Applying it
// bumps the global attempt counter; the epoch guard fences decrees from
// deposed leaders that were still in flight when the election committed.
type decreeAttempt struct {
	Tick, Att, Epoch uint64
}

// decreeCommit seals tick Tick. The leader proposes it only after every
// replica acked the attempt's final stage, so by the time it is on the
// log all N replicas hold the fully staged attempt — a new leader that
// finds a decreed-but-unbroadcast commit finalizes it instead of
// re-driving the tick.
type decreeCommit struct {
	Tick, Att, Epoch uint64
}

// apply outcomes.
const (
	applyStale = iota
	applySubmitted
	applyElected
	applyAttemptStarted
	applyCommitted
)

// ctlState is the replicated coordinator state machine: a pure function
// of the decree log prefix, so every coordinator that applied the same
// slots holds an identical copy (the election-determinism tests pin
// this). All counters are part of the state and therefore replicated and
// deterministic.
type ctlState struct {
	epoch         uint64 // current leadership epoch (starts at 1)
	leader        int    // coordinator index holding epoch's lease
	att           uint64 // globally monotone attempt counter
	committed     uint64 // ticks sealed by commit decrees
	lastCommitAtt uint64 // attempt that sealed tick `committed`
	queue         [][]datalog.DeltaOp

	submits, attempts, commits, elections uint64
	stale                                 uint64 // decrees rejected by the guards
	doubleCommits                         uint64 // commit decrees for an already-sealed tick (must stay 0)
}

func newCtlState() ctlState { return ctlState{epoch: 1} }

func (s *ctlState) apply(v any) int {
	switch d := v.(type) {
	case decreeSubmit:
		if d.Seq != uint64(len(s.queue)) {
			s.stale++
			return applyStale
		}
		s.queue = append(s.queue, d.Ops)
		s.submits++
		return applySubmitted
	case decreeElect:
		if d.Epoch != s.epoch+1 {
			s.stale++
			return applyStale
		}
		s.epoch = d.Epoch
		s.leader = d.Leader
		s.elections++
		return applyElected
	case decreeAttempt:
		if d.Epoch != s.epoch || d.Tick != s.committed+1 || d.Att <= s.att || d.Tick > uint64(len(s.queue)) {
			s.stale++
			return applyStale
		}
		s.att = d.Att
		s.attempts++
		return applyAttemptStarted
	case decreeCommit:
		if d.Epoch == s.epoch && d.Tick <= s.committed {
			// A second commit of a sealed tick under the live epoch would be
			// a real double commit; it is counted (never silently absorbed)
			// and the chaos suite asserts the counter stays zero.
			s.doubleCommits++
			return applyStale
		}
		if d.Epoch != s.epoch || d.Att != s.att || d.Tick != s.committed+1 {
			s.stale++
			return applyStale
		}
		s.committed = d.Tick
		s.lastCommitAtt = d.Att
		s.commits++
		return applyCommitted
	}
	s.stale++
	return applyStale
}

// Control-plane timing, in multiples of the deployment's retryAfter: the
// leader heartbeats faster than standbys give up on it, and election
// timeouts carry a per-index spread so candidates rarely duel.
const (
	hbEveryNum      = 3 // heartbeat period = retryAfter * 3/4
	hbEveryDen      = 4
	electAfterMult  = 3 // election timeout = retryAfter * 3 (+ spread)
	electSpreadDen  = 4 // per-index spread = idx * retryAfter / 4
	recoverLagGrace = 1 // a recovered node waits one full timeout before electing
)

// coordNode is one replicated coordinator: a Paxos participant plus the
// decree application logic, heartbeat/election duties, and — when it is
// the leader of the current epoch — the volatile BSP driver.
type coordNode struct {
	dep  *Deployment
	idx  int
	cons *consensus.Node
	st   ctlState
	drv  *coord // non-nil only on the acting leader, while driving

	attPending       bool          // an attempt decree of ours is in flight
	attProposed      decreeAttempt // the exact decree attPending latches on
	lastHB           simnet.Time
	timerSeq         uint64
	electProposedFor uint64 // highest epoch we already proposed an election for
}

func (cn *coordNode) name() string { return cn.dep.coordNames[cn.idx] }

func (cn *coordNode) isLeader() bool { return cn.st.leader == cn.idx }

func (cn *coordNode) hbEvery() simnet.Time {
	return cn.dep.retryAfter * hbEveryNum / hbEveryDen
}

func (cn *coordNode) electAfter() simnet.Time {
	return cn.dep.retryAfter*electAfterMult + simnet.Time(cn.idx)*cn.dep.retryAfter/electSpreadDen
}

func (cn *coordNode) armTimer() {
	cn.timerSeq++
	cn.dep.net.After(cn.name(), cn.hbEvery(), ctlTimerMsg{Seq: cn.timerSeq})
}

func (cn *coordNode) handle(now simnet.Time, msg simnet.Message) {
	switch m := msg.Payload.(type) {
	case ctlTimerMsg:
		if m.Seq != cn.timerSeq {
			return
		}
		cn.tickTimer(now)
	case hbMsg:
		cn.onHB(now, m, msg.From)
	case recoverKickMsg:
		cn.onRecover(now)
	case watchdogMsg:
		if cn.drv != nil {
			cn.drv.watchdog(m)
		}
	case rsp:
		if cn.drv != nil {
			cn.drv.collect(m)
		}
	default:
		if consensus.IsMessage(msg.Payload) {
			cn.cons.Handle(now, msg)
		}
	}
}

// tickTimer runs the periodic duties and always re-arms.
func (cn *coordNode) tickTimer(now simnet.Time) {
	cn.armTimer()
	if cn.isLeader() {
		for i, peer := range cn.dep.coordNames {
			if i == cn.idx {
				continue
			}
			cn.dep.metrics.heartbeats.Add(1)
			cn.dep.net.Send(cn.name(), peer, hbMsg{Epoch: cn.st.epoch, Applied: cn.cons.Applied(), From: cn.idx})
		}
		// Belt and braces: if a decree went stale under us, make sure queued
		// work is re-driven.
		cn.maybeStartNext()
		return
	}
	if now-cn.lastHB > cn.electAfter() && cn.electProposedFor <= cn.st.epoch {
		// The leader has been silent past the timeout: run for epoch+1.
		// Propose once per target epoch — Paxos itself retries the decree —
		// and re-run only if a later election moves the epoch past ours.
		cn.electProposedFor = cn.st.epoch + 1
		cn.cons.Propose(decreeElect{Epoch: cn.st.epoch + 1, Leader: cn.idx})
	}
}

func (cn *coordNode) onHB(now simnet.Time, m hbMsg, from string) {
	if m.Epoch > cn.st.epoch || (m.Epoch == cn.st.epoch && m.Applied > cn.cons.Applied()) {
		cn.cons.RequestLearn(from)
	}
	if m.Epoch == cn.st.epoch && m.From == cn.st.leader {
		cn.lastHB = now
	}
	if m.Epoch < cn.st.epoch {
		// The sender believes a deposed epoch; answer so it learns ours.
		cn.dep.net.Send(cn.name(), from, hbMsg{Epoch: cn.st.epoch, Applied: cn.cons.Applied(), From: cn.idx})
	}
}

// onRecover re-arms a coordinator whose timers simnet discarded while it
// was down, and pulls the decree log forward before doing anything
// leader-like: the node's own view may be epochs behind.
func (cn *coordNode) onRecover(now simnet.Time) {
	cn.drv = nil
	cn.attPending = false
	cn.electProposedFor = 0
	cn.lastHB = now + cn.dep.retryAfter*recoverLagGrace
	cn.armTimer()
	for i, peer := range cn.dep.coordNames {
		if i != cn.idx {
			cn.cons.RequestLearn(peer)
		}
	}
	if cn.isLeader() {
		// Still the leader as far as the log we hold says: resume. If a
		// newer epoch exists, the catch-up above deposes us when it lands,
		// and until then every broadcast we make is epoch-fenced at the
		// replicas and every decree we propose is epoch-guarded at apply.
		cn.recoverDrive()
	}
}

// applyDecree is the OnDecide hook: advance the replicated state machine,
// then react to transitions that concern this node's role.
func (cn *coordNode) applyDecree(v any) {
	switch cn.st.apply(v) {
	case applySubmitted:
		cn.maybeStartNext()
	case applyElected:
		cn.dep.metrics.noteLeaderChange(cn.dep.net.Now(), cn.st.epoch)
		// Whatever was being driven belongs to a dead epoch now.
		cn.drv = nil
		cn.attPending = false
		cn.lastHB = cn.dep.net.Now()
		if cn.isLeader() {
			cn.recoverDrive()
		}
	case applyAttemptStarted:
		if d, isAttempt := v.(decreeAttempt); isAttempt && d == cn.attProposed {
			cn.attPending = false
		}
		if cn.isLeader() {
			cn.startDrive()
		}
	case applyCommitted:
		if cn.drv != nil && cn.drv.stg == stDecide && cn.drv.t == cn.st.committed {
			cn.drv.enterCommit()
		} else if cn.isLeader() && cn.drv == nil {
			// Failover landed between decree and broadcast: finalize.
			cn.finalizeCommit()
		}
	case applyStale:
		if d, isAttempt := v.(decreeAttempt); isAttempt && d == cn.attProposed {
			// OUR in-flight attempt proposal went stale; clear the latch so
			// the next nudge can re-propose under the live state. A deposed
			// leader's stale attempt must not release the latch — the current
			// leader's own proposal may still be in flight, and dropping the
			// latch early would double-propose and restart the whole attempt.
			cn.attPending = false
		}
	}
}

// recoverDrive brings a (re)elected or restarted leader back to a safe
// driving position using only replicated state: first make sure the last
// decreed commit actually reached the data replicas, then start the next
// attempt if work remains.
func (cn *coordNode) recoverDrive() {
	if cn.st.committed > 0 {
		cn.finalizeCommit()
		return
	}
	cn.maybeStartNext()
}

// maybeStartNext proposes the next attempt when this node is the idle
// leader and undispatched ticks remain. The attempt starts only when the
// decree applies, so a deposed leader's proposal dies at the epoch guard.
func (cn *coordNode) maybeStartNext() {
	if !cn.isLeader() || cn.drv != nil || cn.attPending {
		return
	}
	if uint64(len(cn.st.queue)) <= cn.st.committed {
		return
	}
	cn.proposeAttempt()
}

// proposeAttempt latches attPending on the exact decree being proposed:
// only that decree applying or going stale releases the latch, so a
// deposed leader's stale attempts cannot unlatch a live proposal.
func (cn *coordNode) proposeAttempt() {
	cn.attPending = true
	cn.attProposed = decreeAttempt{Tick: cn.st.committed + 1, Att: cn.st.att + 1, Epoch: cn.st.epoch}
	cn.cons.Propose(cn.attProposed)
}

// proposeAttemptBump restarts a stalled attempt through the log — the
// watchdog path. Same latch as maybeStartNext.
func (cn *coordNode) proposeAttemptBump() {
	if !cn.isLeader() || cn.attPending {
		return
	}
	cn.proposeAttempt()
}

// startDrive installs a fresh BSP driver for the attempt the log just
// started: tick st.committed+1, attempt st.att, epoch st.epoch.
func (cn *coordNode) startDrive() {
	cn.drv = &coord{
		cn:      cn,
		t:       cn.st.committed + 1,
		a:       cn.st.att,
		epoch:   cn.st.epoch,
		tickOps: cn.st.queue[cn.st.committed],
	}
	cn.drv.startAttempt()
}

// finalizeCommit pushes the already-decreed commit of tick st.committed to
// the data replicas. Safe from any leader of the current epoch: the commit
// decree proves all N replicas hold the fully staged attempt (or have
// already committed it), so the broadcast is idempotent.
func (cn *coordNode) finalizeCommit() {
	if cn.drv != nil {
		return
	}
	cn.drv = &coord{
		cn:    cn,
		t:     cn.st.committed,
		a:     cn.st.lastCommitAtt,
		epoch: cn.st.epoch,
	}
	cn.drv.enterCommit()
}
