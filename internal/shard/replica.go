package shard

import (
	"sort"

	"hydro/internal/datalog"
	"hydro/internal/simnet"
)

// replica is one shard server: it owns one hash-shard of every sharded
// relation (plus a full copy of every mirrored one), evaluates its share
// of each monotone component's drives, ships non-local emissions to the
// owning replica, and recomputes mirrored non-monotone components
// locally. All tick-attempt work is staged against an undo log; a
// restarted attempt rolls the log back, so redelivered or retried
// protocol traffic can never double-apply.
type replica struct {
	dep  *Deployment
	self int
	db   *datalog.Database

	committed       uint64 // last committed tick
	curTick, curAtt uint64
	curEpoch        uint64 // highest coordinator epoch seen; older traffic is fenced
	coordFrom       string // coordinator that prepared the current attempt (reply target)

	// Staging for the current attempt.
	undo       []datalog.DeltaOp // realized changes in application order
	adds, dels map[string]*tset  // net realized changes this tick, per pred
	pend       map[string][]datalog.Tuple
	inbox      map[rkey][]xchMsg
	await      map[rkey]int // apply barriers waiting on more xch traffic
}

func newReplica(dep *Deployment, self int) *replica {
	r := &replica{dep: dep, self: self, db: datalog.NewDatabase(), coordFrom: dep.coordNames[0]}
	for pred, arity := range dep.arities {
		r.db.Ensure(pred, arity)
	}
	r.resetStaging()
	return r
}

func (r *replica) resetStaging() {
	for i := len(r.undo) - 1; i >= 0; i-- {
		op := r.undo[i]
		if op.Del {
			r.db.Get(op.Pred).Insert(op.T)
		} else {
			r.db.Get(op.Pred).Delete(op.T)
		}
	}
	r.undo = nil
	r.adds = map[string]*tset{}
	r.dels = map[string]*tset{}
	r.pend = map[string][]datalog.Tuple{}
	r.inbox = map[rkey][]xchMsg{}
	r.await = map[rkey]int{}
}

// record books one realized change: the undo log gets the exact op, and
// the net per-pred change sets absorb churn (delete of a tick-added tuple
// cancels instead of accumulating).
func (r *replica) record(del bool, pred string, t datalog.Tuple) {
	r.undo = append(r.undo, datalog.DeltaOp{Del: del, Pred: pred, T: t})
	if del {
		if a := r.adds[pred]; a != nil && a.has(t) {
			a.remove(t)
			return
		}
		d := r.dels[pred]
		if d == nil {
			d = newTset()
			r.dels[pred] = d
		}
		d.add(t)
		return
	}
	if d := r.dels[pred]; d != nil && d.has(t) {
		d.remove(t)
		return
	}
	a := r.adds[pred]
	if a == nil {
		a = newTset()
		r.adds[pred] = a
	}
	a.add(t)
}

func (r *replica) name() string { return r.dep.replicaNames[r.self] }

func (r *replica) reply(m rsp) {
	m.From = r.self
	m.Committed = r.committed
	r.dep.net.Send(r.name(), r.coordFrom, m)
}

func (r *replica) handle(now simnet.Time, msg simnet.Message) {
	switch m := msg.Payload.(type) {
	case req:
		r.handleReq(msg.From, m)
	case xchMsg:
		r.handleXch(m)
	}
}

func (r *replica) handleReq(from string, m req) {
	switch m.Kind {
	case reqPrepare:
		// Epoch fence: a prepare from a deposed leader must not reset
		// staging a newer leader set up. Prepare and commit are the only
		// requests allowed to raise the epoch — both are safe entry points
		// for a newly elected leader.
		if m.Epoch < r.curEpoch {
			r.dep.metrics.fencedReqs.Add(1)
			return
		}
		r.curEpoch = m.Epoch
		r.coordFrom = from
		if m.Tick <= r.committed {
			// Already folded in; answer honestly so a finalizing leader's
			// collect sees Committed.
			r.reply(rsp{Tick: m.Tick, Att: m.Att, Kind: reqPrepare})
			return
		}
		r.resetStaging()
		r.curTick, r.curAtt = m.Tick, m.Att
		r.reply(rsp{Tick: m.Tick, Att: m.Att, Kind: reqPrepare})
	case reqCommit:
		if m.Epoch < r.curEpoch {
			r.dep.metrics.fencedCommits.Add(1)
			return
		}
		r.curEpoch = m.Epoch
		r.coordFrom = from
		// Attempt fencing on commit: the commit decree names the exact
		// attempt every replica fully staged; anything else (a stale
		// leader's retry racing an attempt bump) must not seal partial
		// staging.
		if r.committed < m.Tick && r.curTick == m.Tick && r.curAtt == m.Att {
			r.committed = m.Tick
			r.undo = nil
			r.adds = map[string]*tset{}
			r.dels = map[string]*tset{}
			r.pend = map[string][]datalog.Tuple{}
			r.inbox = map[rkey][]xchMsg{}
			r.await = map[rkey]int{}
		}
		r.reply(rsp{Tick: m.Tick, Att: m.Att, Kind: reqCommit})
	default:
		if m.Epoch != r.curEpoch {
			if m.Epoch < r.curEpoch {
				r.dep.metrics.fencedReqs.Add(1)
			}
			return // mid-attempt traffic never changes the epoch
		}
		if m.Tick != r.curTick || m.Att != r.curAtt || r.committed >= m.Tick {
			return // stale attempt
		}
		switch m.Kind {
		case reqOps:
			r.applyBase(m.Ops)
			r.reply(rsp{Tick: m.Tick, Att: m.Att, Kind: reqOps})
		case reqCompBegin:
			c := r.dep.comps[m.Comp]
			var hasAdd, hasDel bool
			for _, in := range c.inputs {
				if r.adds[in].len() > 0 {
					hasAdd = true
				}
				if r.dels[in].len() > 0 {
					hasDel = true
				}
			}
			r.reply(rsp{Tick: m.Tick, Att: m.Att, Kind: reqCompBegin, Comp: m.Comp, HasAdd: hasAdd, HasDel: hasDel})
		case reqRound:
			r.runRound(m)
		case reqApply:
			k := rkey{m.Tick, m.Att, m.Comp, m.Phase, m.Round}
			r.await[k] = m.Expect
			r.maybeApply(k)
		case reqRecompute:
			r.recompute(m)
		}
	}
}

func (r *replica) applyBase(ops []datalog.DeltaOp) {
	for _, op := range ops {
		rel := r.db.Get(op.Pred)
		if rel == nil || len(op.T) != rel.Arity {
			continue // Submit validates; defensive
		}
		if op.Del {
			if rel.Delete(op.T) {
				r.record(true, op.Pred, op.T)
			}
		} else if rel.Insert(op.T) {
			r.record(false, op.Pred, op.T)
		}
	}
}

// runRound drives one exchange round of a monotone component phase: the
// current frontier (seeded from the tick's net input changes on round 0)
// is pushed through every rule position, emissions are grouped by owning
// replica, remote batches go out as xch messages, and the local batch is
// stashed in the inbox so apply-time ordering treats self like any peer.
func (r *replica) runRound(m req) {
	c := r.dep.comps[m.Comp]
	if m.Round == 0 {
		switch {
		case m.Phase == phaseDelete:
			r.pend = map[string][]datalog.Tuple{}
			for _, in := range c.inputs {
				if d := r.dels[in]; d.len() > 0 {
					r.pend[in] = append([]datalog.Tuple(nil), d.ts...)
				}
			}
		case m.Phase == phaseInsert && m.SeedInputs:
			r.pend = map[string][]datalog.Tuple{}
			for _, in := range c.inputs {
				if a := r.adds[in]; a.len() > 0 {
					r.pend[in] = append([]datalog.Tuple(nil), a.ts...)
				}
			}
		}
		// phaseInsert without SeedInputs keeps the pend the rederive
		// apply left behind; phaseRederive ignores pend entirely.
	}

	batches := make([][]xchItem, r.dep.place.N)
	emitted := map[string]*tset{} // per-pred dedup of this round's emissions
	emit := func(pred string, del bool, t datalog.Tuple) {
		e := emitted[pred]
		if e == nil {
			e = newTset()
			emitted[pred] = e
		}
		if e.has(t) {
			return
		}
		e.add(t)
		spec := r.dep.place.Specs[pred]
		if spec.Mirrored {
			// Local membership is authoritative for mirrored preds (all
			// copies agree), so no-op traffic is filtered at the source.
			rel := r.db.Get(pred)
			if del == !rel.Contains(t) {
				return
			}
			for d := range batches {
				batches[d] = append(batches[d], xchItem{Pred: pred, Del: del, T: t})
			}
			return
		}
		d := r.dep.place.Owner(pred, t)
		batches[d] = append(batches[d], xchItem{Pred: pred, Del: del, T: t})
	}

	del := m.Phase == phaseDelete
	var overlay map[string]*tset
	if del {
		overlay = r.dels // pre-deletion view: net deletions so far this tick
	}
	for ri, rule := range c.rules {
		if m.Phase == phaseRederive {
			// One full immediate-consequence pass over the post-deletion
			// state, driven through body position 0's local extent.
			lit := rule.Body[0]
			frontier := r.db.Get(lit.Pred).Tuples()
			frontier = r.filterDriven(c, ri, 0, frontier)
			driveRule(r.db, rule, 0, frontier, nil, func(h datalog.Tuple) {
				emit(rule.Head.Pred, false, h)
			})
			continue
		}
		for i := range rule.Body {
			frontier := r.pend[rule.Body[i].Pred]
			if len(frontier) == 0 {
				continue
			}
			frontier = r.filterDriven(c, ri, i, frontier)
			driveRule(r.db, rule, i, frontier, overlay, func(h datalog.Tuple) {
				emit(rule.Head.Pred, del, h)
			})
		}
	}

	k := rkey{m.Tick, m.Att, m.Comp, m.Phase, m.Round}
	sentTo := make([]bool, r.dep.place.N)
	for d, items := range batches {
		if len(items) == 0 {
			continue
		}
		x := xchMsg{Tick: m.Tick, Att: m.Att, Epoch: r.curEpoch, Comp: m.Comp, Phase: m.Phase, Round: m.Round, From: r.self, Items: items}
		if d == r.self {
			r.inbox[k] = append(r.inbox[k], x)
			continue
		}
		sentTo[d] = true
		r.dep.net.Send(r.name(), r.dep.replicaNames[d], x)
	}
	r.reply(rsp{Tick: m.Tick, Att: m.Att, Kind: reqRound, Comp: m.Comp, Phase: m.Phase, Round: m.Round, SentTo: sentTo})
}

// filterDriven drops frontier tuples this replica must not drive: when the
// driven predicate and all co-literals are mirrored, every replica holds
// identical state and only the tuple's designated driver acts.
func (r *replica) filterDriven(c *compMeta, ri, pos int, frontier []datalog.Tuple) []datalog.Tuple {
	if !c.drives[ri][pos].designatedOnly {
		return frontier
	}
	var out []datalog.Tuple
	for _, t := range frontier {
		if r.dep.place.Owner(c.rules[ri].Body[pos].Pred, t) == r.self {
			out = append(out, t)
		}
	}
	return out
}

func (r *replica) handleXch(m xchMsg) {
	if m.Epoch != r.curEpoch {
		if m.Epoch < r.curEpoch {
			r.dep.metrics.fencedReqs.Add(1)
		}
		return
	}
	if m.Tick != r.curTick || m.Att != r.curAtt || r.committed >= m.Tick {
		return
	}
	k := rkey{m.Tick, m.Att, m.Comp, m.Phase, m.Round}
	r.inbox[k] = append(r.inbox[k], m)
	r.maybeApply(k)
}

// maybeApply completes an exchange barrier once every expected xch has
// arrived: batches are applied in sender order (not arrival order), each
// accepted change is recorded, and the accepted tuples become the next
// round's frontier. The coordinator learns the frontier size and decides
// whether another round follows.
func (r *replica) maybeApply(k rkey) {
	expect, ok := r.await[k]
	if !ok {
		return
	}
	got := 0
	for _, x := range r.inbox[k] {
		if x.From != r.self {
			got++
		}
	}
	if got < expect {
		return
	}
	delete(r.await, k)
	batches := r.inbox[k]
	delete(r.inbox, k)
	sort.Slice(batches, func(i, j int) bool { return batches[i].From < batches[j].From })

	next := map[string][]datalog.Tuple{}
	for _, x := range batches {
		for _, it := range x.Items {
			rel := r.db.Get(it.Pred)
			if rel == nil {
				continue
			}
			var changed bool
			if it.Del {
				changed = rel.Delete(it.T)
			} else {
				changed = rel.Insert(it.T)
			}
			if !changed {
				continue
			}
			r.record(it.Del, it.Pred, it.T)
			next[it.Pred] = append(next[it.Pred], it.T)
		}
	}
	r.pend = next
	n := 0
	for _, ts := range next {
		n += len(ts)
	}
	r.reply(rsp{Tick: k.tick, Att: k.att, Kind: reqApply, Comp: k.comp, Phase: k.phase, Round: k.round, Next: n})
}

// recompute re-evaluates a non-monotone component locally: its inputs are
// fully mirrored, so clearing the heads and re-running the component's own
// fixpoint on the replica database reproduces single-node semantics
// (stratified negation, aggregates) exactly; the old-vs-new diff is
// recorded so downstream components see precise deltas and the undo log
// can roll the attempt back.
func (r *replica) recompute(m req) {
	c := r.dep.comps[m.Comp]
	old := map[string][]datalog.Tuple{}
	oldSet := map[string]*tset{}
	for _, h := range c.heads {
		rel := r.db.Get(h)
		old[h] = rel.Tuples()
		s := newTset()
		for _, t := range old[h] {
			s.add(t)
		}
		oldSet[h] = s
		rel.Clear()
	}
	if _, err := c.sub.Eval(r.db); err != nil {
		// Unreachable for a component compiled at Deploy time; leave the
		// heads cleared — the attempt will be rolled back on retry.
		r.reply(rsp{Tick: m.Tick, Att: m.Att, Kind: reqRecompute, Comp: m.Comp})
		return
	}
	for _, h := range c.heads {
		rel := r.db.Get(h)
		for _, t := range old[h] {
			if !rel.Contains(t) {
				r.record(true, h, t)
			}
		}
		for _, t := range rel.Tuples() {
			if !oldSet[h].has(t) {
				r.record(false, h, t)
			}
		}
	}
	r.reply(rsp{Tick: m.Tick, Att: m.Att, Kind: reqRecompute, Comp: m.Comp})
}
