package shard_test

import (
	"math/rand"
	"testing"

	"hydro/internal/datalog"
	"hydro/internal/shard"
	"hydro/internal/transducer"
)

// TestSinkTeesRuntimeTicksIntoDeployment wires a single-node transducer
// runtime to a 2-replica deployment through the DurabilitySink seam: every
// committed runtime tick (inserts and deletes alike) replays into the
// sharded cluster, and after the network settles the distributed fixpoint
// must match the runtime's local one byte for byte.
func TestSinkTeesRuntimeTicksIntoDeployment(t *testing.T) {
	prog, err := datalog.NewProgram(tcRules...)
	if err != nil {
		t.Fatal(err)
	}
	_, dep := newDeployment(t, prog, map[string]int{"edge": 2}, 2, 9)

	rt := transducer.New("n1", 1)
	rt.SetDelay(func(r *rand.Rand) int { return 1 })
	rt.RegisterTable(transducer.TableSchema{Name: "edge", Arity: 2})
	rtProg, err := datalog.NewProgram(tcRules...)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterQueriesIncremental(rtProg); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetDurability(shard.NewSink(dep)); err != nil {
		t.Fatal(err)
	}
	rt.RegisterHandler("add", func(tx *transducer.Tx, msg transducer.Message) {
		tx.MergeTuple("edge", msg.Payload)
	})
	rt.RegisterHandler("del", func(tx *transducer.Tx, msg transducer.Message) {
		tx.Delete("edge", msg.Payload)
	})

	steps := []struct {
		mailbox string
		t       datalog.Tuple
	}{
		{"add", datalog.Tuple{"a", "b"}},
		{"add", datalog.Tuple{"b", "c"}},
		{"add", datalog.Tuple{"c", "a"}},
		{"del", datalog.Tuple{"b", "c"}},
		{"add", datalog.Tuple{"b", "d"}},
	}
	for _, s := range steps {
		rt.Inject(s.mailbox, s.t)
		rt.RunUntilIdle(10)
		if !dep.Settle(settleBudget) {
			t.Fatalf("deployment did not settle after %s %v", s.mailbox, s.t)
		}
		refDB := datalog.NewDatabase()
		for _, pred := range dep.Placement().Preds {
			rel := rt.Table(pred)
			if rel == nil {
				continue
			}
			nr := refDB.Ensure(pred, rel.Arity)
			for _, tp := range rel.Tuples() {
				nr.Insert(tp)
			}
		}
		want := shard.DumpDatabase(refDB, dep.Placement().Preds)
		if got := dep.DumpString(); got != want {
			t.Fatalf("sharded tee diverged after %s %v:\n%s\nwant:\n%s", s.mailbox, s.t, got, want)
		}
	}
}

// TestSinkCommittedPartialFailureNoDoubleSubmit covers the mid-loop Submit
// failure: with ticks [good, bad, good] staged, Committed submits the first
// tick, fails on the second, and must drop the submitted prefix from the
// stage even though it returns an error — retaining it would re-Submit the
// first tick on the next Committed call and double-apply it on the cluster.
// The failed tick and its successors stay staged for retry, in order.
func TestSinkCommittedPartialFailureNoDoubleSubmit(t *testing.T) {
	prog, err := datalog.NewProgram(tcRules...)
	if err != nil {
		t.Fatal(err)
	}
	_, dep := newDeployment(t, prog, map[string]int{"edge": 2}, 2, 21)
	sink := shard.NewSink(dep)

	stage := func(pred string, tuple datalog.Tuple) {
		d := datalog.NewDelta()
		d.SetRecording(true) // Ops() capture, as the incremental runtime enables it
		d.Insert(pred, tuple)
		if err := sink.Append(d); err != nil {
			t.Fatal(err)
		}
	}
	stage("edge", datalog.Tuple{"a", "b"}) // submits fine
	stage("nope", datalog.Tuple{"x"})      // not a base relation: Submit errors
	stage("edge", datalog.Tuple{"b", "c"}) // stuck behind the failed tick

	if err := sink.Committed(nil); err == nil {
		t.Fatal("Committed should fail on the staged bad tick")
	}
	if got := dep.SubmittedTicks(); got != 1 {
		t.Fatalf("first Committed: submitted %d ticks, want 1", got)
	}

	// Second Committed retries from the failed tick — the submitted prefix
	// must NOT be replayed (before the fix SubmittedTicks jumped to 2 here).
	if err := sink.Committed(nil); err == nil {
		t.Fatal("retry Committed should still fail on the bad tick")
	}
	if got := dep.SubmittedTicks(); got != 1 {
		t.Fatalf("retry re-submitted the already-submitted prefix: %d ticks, want 1", got)
	}

	// Drop the poison tick (as the runtime's abort path would) and confirm
	// the retained successor still goes through, exactly once.
	sinkDropBadTick(t, sink)
	if err := sink.Committed(nil); err != nil {
		t.Fatalf("Committed after clearing the bad tick: %v", err)
	}
	if got := dep.SubmittedTicks(); got != 2 {
		t.Fatalf("after retry: submitted %d ticks, want 2", got)
	}
	if !dep.Settle(settleBudget) {
		t.Fatal("deployment did not settle")
	}
}

// sinkDropBadTick removes the head of the sink's stage by replaying the
// retained tail through a fresh Append/AbortLast cycle — the public-API way
// to discard the failed tick while keeping its successors.
func sinkDropBadTick(t *testing.T, sink *shard.Sink) {
	t.Helper()
	// The stage is [bad, good]. AbortLast pops "good"; abort again pops
	// "bad"; then re-stage "good" so only it remains.
	if err := sink.AbortLast(); err != nil {
		t.Fatal(err)
	}
	if err := sink.AbortLast(); err != nil {
		t.Fatal(err)
	}
	d := datalog.NewDelta()
	d.SetRecording(true)
	d.Insert("edge", datalog.Tuple{"b", "c"})
	if err := sink.Append(d); err != nil {
		t.Fatal(err)
	}
}
