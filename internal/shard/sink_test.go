package shard_test

import (
	"math/rand"
	"testing"

	"hydro/internal/datalog"
	"hydro/internal/shard"
	"hydro/internal/transducer"
)

// TestSinkTeesRuntimeTicksIntoDeployment wires a single-node transducer
// runtime to a 2-replica deployment through the DurabilitySink seam: every
// committed runtime tick (inserts and deletes alike) replays into the
// sharded cluster, and after the network settles the distributed fixpoint
// must match the runtime's local one byte for byte.
func TestSinkTeesRuntimeTicksIntoDeployment(t *testing.T) {
	prog, err := datalog.NewProgram(tcRules...)
	if err != nil {
		t.Fatal(err)
	}
	_, dep := newDeployment(t, prog, map[string]int{"edge": 2}, 2, 9)

	rt := transducer.New("n1", 1)
	rt.SetDelay(func(r *rand.Rand) int { return 1 })
	rt.RegisterTable(transducer.TableSchema{Name: "edge", Arity: 2})
	rtProg, err := datalog.NewProgram(tcRules...)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterQueriesIncremental(rtProg); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetDurability(shard.NewSink(dep)); err != nil {
		t.Fatal(err)
	}
	rt.RegisterHandler("add", func(tx *transducer.Tx, msg transducer.Message) {
		tx.MergeTuple("edge", msg.Payload)
	})
	rt.RegisterHandler("del", func(tx *transducer.Tx, msg transducer.Message) {
		tx.Delete("edge", msg.Payload)
	})

	steps := []struct {
		mailbox string
		t       datalog.Tuple
	}{
		{"add", datalog.Tuple{"a", "b"}},
		{"add", datalog.Tuple{"b", "c"}},
		{"add", datalog.Tuple{"c", "a"}},
		{"del", datalog.Tuple{"b", "c"}},
		{"add", datalog.Tuple{"b", "d"}},
	}
	for _, s := range steps {
		rt.Inject(s.mailbox, s.t)
		rt.RunUntilIdle(10)
		if !dep.Settle(settleBudget) {
			t.Fatalf("deployment did not settle after %s %v", s.mailbox, s.t)
		}
		refDB := datalog.NewDatabase()
		for _, pred := range dep.Placement().Preds {
			rel := rt.Table(pred)
			if rel == nil {
				continue
			}
			nr := refDB.Ensure(pred, rel.Arity)
			for _, tp := range rel.Tuples() {
				nr.Insert(tp)
			}
		}
		want := shard.DumpDatabase(refDB, dep.Placement().Preds)
		if got := dep.DumpString(); got != want {
			t.Fatalf("sharded tee diverged after %s %v:\n%s\nwant:\n%s", s.mailbox, s.t, got, want)
		}
	}
}
