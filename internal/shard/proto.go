package shard

import "hydro/internal/datalog"

// Wire protocol. The elected coordinator leader sequences BSP ticks over N
// replicas:
//
//	prepare → ops → per component: compBegin → (recompute |
//	  phase rounds: round → xch* → apply) → … → decide → commit
//
// Every request and response carries (Tick, Att); a replica drops
// anything that is not its current attempt, and the coordinator drops
// stale acks — so a timed-out attempt can be restarted wholesale (Att+1)
// without fencing individual messages. Attempt numbers are globally
// monotone (bumped through the replicated control log, DESIGN.md §13), so
// an (Tick, Att) pair is never reused across leaders. Requests also carry
// the leader's Epoch: replicas remember the highest epoch seen and drop
// anything older, so a deposed leader's stale broadcasts are fenced even
// when they race a new leader's traffic. Commit is the only stage retried
// in place: it is broadcast only after the commit decree is on the quorum
// log (every replica has fully staged the attempt by then), so resending
// commit{t} until all ack is idempotent.

type reqKind int

const (
	reqPrepare reqKind = iota
	reqOps
	reqCompBegin
	reqRound
	reqApply
	reqRecompute
	reqCommit
)

// DRed phases of a monotone component with deletions. Insert-only ticks
// run phaseInsert alone, seeded from the input additions.
const (
	phaseDelete   = 1 // over-delete rounds (joins see the deletion overlay)
	phaseRederive = 2 // one full immediate-consequence pass, insert-if-absent
	phaseInsert   = 3 // semi-naive insert rounds
)

type req struct {
	Tick, Att          uint64
	Epoch              uint64 // leadership epoch of the sending coordinator
	Kind               reqKind
	Comp, Phase, Round int
	Ops                []datalog.DeltaOp // reqOps: this replica's routed slice
	Expect             int               // reqApply: xch messages to await
	SeedInputs         bool              // reqRound r0: seed from input adds (no prior rederive)
}

type rsp struct {
	From               int
	Tick, Att          uint64
	Kind               reqKind
	Comp, Phase, Round int
	HasAdd, HasDel     bool   // reqCompBegin: local input changes
	SentTo             []bool // reqRound: which peers got an xch this round
	Next               int    // reqApply: accepted tuples pending next round
	Committed          uint64 // last committed tick
}

// xchItem is one shipped derivation (or retraction) for pred.
type xchItem struct {
	Pred string
	Del  bool
	T    datalog.Tuple
}

// xchMsg carries one round's emissions from one replica to one peer.
// (Tick, Att) alone fences stale batches — attempts are globally unique —
// but Epoch rides along as defense in depth and for fence accounting.
type xchMsg struct {
	Tick, Att          uint64
	Epoch              uint64
	Comp, Phase, Round int
	From               int
	Items              []xchItem
}

// rkey identifies one exchange barrier.
type rkey struct {
	tick, att          uint64
	comp, phase, round int
}

type watchdogMsg struct{ Tick, Att, Seq uint64 }

// hbMsg is a coordinator-to-coordinator heartbeat: the sender's view of
// the leadership epoch and how many control-log slots it has applied.
// Receivers use it both as a liveness signal (standbys reset their
// election timer on heartbeats from the current leader) and as a
// staleness probe (either side requests a log catch-up when the other is
// ahead).
type hbMsg struct {
	Epoch   uint64
	Applied int
	From    int // coordinator index
}

// ctlTimerMsg drives a coordinator's periodic duties: leaders send
// heartbeats and nudge the next tick; standbys check the election timeout.
type ctlTimerMsg struct{ Seq uint64 }

// recoverKickMsg re-arms a recovered coordinator: simnet discards timers
// on down nodes, so without a kick a recovered coordinator would be inert.
type recoverKickMsg struct{}
