package shard

import "hydro/internal/datalog"

// Wire protocol. One coordinator sequences BSP ticks over N replicas:
//
//	prepare → ops → per component: compBegin → (recompute |
//	  phase rounds: round → xch* → apply) → … → commit
//
// Every request and response carries (Tick, Att); a replica drops
// anything that is not its current attempt, and the coordinator drops
// stale acks — so a timed-out attempt can be restarted wholesale (Att+1)
// without fencing individual messages. Commit is the only stage retried
// in place: by the time it starts every replica has finished the attempt,
// so resending commit{t} until all ack is idempotent.

type reqKind int

const (
	reqPrepare reqKind = iota
	reqOps
	reqCompBegin
	reqRound
	reqApply
	reqRecompute
	reqCommit
)

// DRed phases of a monotone component with deletions. Insert-only ticks
// run phaseInsert alone, seeded from the input additions.
const (
	phaseDelete   = 1 // over-delete rounds (joins see the deletion overlay)
	phaseRederive = 2 // one full immediate-consequence pass, insert-if-absent
	phaseInsert   = 3 // semi-naive insert rounds
)

type req struct {
	Tick, Att          uint64
	Kind               reqKind
	Comp, Phase, Round int
	Ops                []datalog.DeltaOp // reqOps: this replica's routed slice
	Expect             int               // reqApply: xch messages to await
	SeedInputs         bool              // reqRound r0: seed from input adds (no prior rederive)
}

type rsp struct {
	From               int
	Tick, Att          uint64
	Kind               reqKind
	Comp, Phase, Round int
	HasAdd, HasDel     bool   // reqCompBegin: local input changes
	SentTo             []bool // reqRound: which peers got an xch this round
	Next               int    // reqApply: accepted tuples pending next round
	Committed          uint64 // last committed tick
}

// xchItem is one shipped derivation (or retraction) for pred.
type xchItem struct {
	Pred string
	Del  bool
	T    datalog.Tuple
}

// xchMsg carries one round's emissions from one replica to one peer.
type xchMsg struct {
	Tick, Att          uint64
	Comp, Phase, Round int
	From               int
	Items              []xchItem
}

// rkey identifies one exchange barrier.
type rkey struct {
	tick, att          uint64
	comp, phase, round int
}

type watchdogMsg struct{ Tick, Att, Seq uint64 }
type kickMsg struct{}
