package shard_test

import (
	"math/rand"
	"testing"

	"hydro/internal/datalog"
)

// fuzzVal maps a byte to the small mixed-type constant domain.
func fuzzVal(b byte) any {
	if b&8 != 0 {
		return string(rune('a' + int(b%4)))
	}
	return int64(b % 4)
}

// decodeTicks interprets the fuzz byte stream as a tick sequence: each op
// consumes three bytes (pred selector + flush bit + delete bit + kill
// bit, then two value bytes); deletes target an existing tuple via the
// shadow so DRed paths actually fire. The kill bit (0x10) marks the
// tick for a leader kill: the acting coordinator is taken down while the
// tick is in flight and recovered after it settles, so fuzzing also
// explores failover interleavings.
func decodeTicks(data []byte) ([][]datalog.DeltaOp, []bool) {
	preds := []string{"edge", "edge", "attr", "node"}
	sh := newShadow()
	var ticks [][]datalog.DeltaOp
	var kills []bool
	var cur []datalog.DeltaOp
	kill := false
	for i := 0; i+2 < len(data) && len(ticks) < 12; i += 3 {
		b0, b1, b2 := data[i], data[i+1], data[i+2]
		pred := preds[int(b0)%len(preds)]
		var op datalog.DeltaOp
		if b0&0x40 != 0 && len(sh.rels[pred]) > 0 {
			op = datalog.DeltaOp{Del: true, Pred: pred, T: sh.rels[pred][int(b1)%len(sh.rels[pred])]}
		} else {
			switch pred {
			case "edge":
				op = datalog.DeltaOp{Pred: pred, T: datalog.Tuple{fuzzVal(b1), fuzzVal(b2)}}
			case "attr":
				op = datalog.DeltaOp{Pred: pred, T: datalog.Tuple{fuzzVal(b1), int64(b2 % 10)}}
			default:
				op = datalog.DeltaOp{Pred: pred, T: datalog.Tuple{fuzzVal(b1)}}
			}
		}
		sh.apply(op)
		cur = append(cur, op)
		kill = kill || b0&0x10 != 0
		if b0&0x20 != 0 {
			ticks = append(ticks, cur)
			kills = append(kills, kill)
			cur, kill = nil, false
		}
	}
	if len(cur) > 0 {
		ticks = append(ticks, cur)
		kills = append(kills, kill)
	}
	return ticks, kills
}

// FuzzShardedEquivalence is the sharded-vs-single-node oracle: the seed
// picks a random program shape AND the shard count, the byte stream picks
// the tick sequence plus a leader-kill schedule, and after every tick the
// distributed fixpoint must be byte-identical to the single-node
// incremental one — failovers included.
func FuzzShardedEquivalence(f *testing.F) {
	f.Add(int64(1), []byte("\x20aa\x20ab\x20bc\x60aa"))
	f.Add(int64(7), []byte("\x00ab\x01bc\x22cd\x20de\x60aa\x61bb"))
	f.Add(int64(13), []byte("\x02aa\x03bb\x21ab\x23cd\x63aa\x62bb\x20xy"))
	// Kill-bit seeds: leader killed during the second tick, during a
	// delete-heavy tick, and on back-to-back ticks.
	f.Add(int64(3), []byte("\x20aa\x30ab\x20bc\x60aa"))
	f.Add(int64(9), []byte("\x00ab\x21bc\x20cd\x70aa\x31bb"))
	f.Add(int64(21), []byte("\x30aa\x31bb\x32ab\x23cd\x73aa"))
	f.Fuzz(func(t *testing.T, seed int64, data []byte) {
		if len(data) > 60 {
			data = data[:60]
		}
		n := 1 + int(uint64(seed)%4)
		rules := randShardRules(rand.New(rand.NewSource(seed)))
		prog, err := datalog.NewProgram(rules...)
		if err != nil {
			t.Fatalf("generator produced invalid program: %v", err)
		}
		_, dep := newDeployment(t, prog, tcEDB, n, seed)
		ref := newOracle(t, prog, tcEDB)
		ticks, kills := decodeTicks(data)
		for i, ops := range ticks {
			if err := dep.Submit(ops); err != nil {
				t.Fatalf("tick %d: Submit: %v", i, err)
			}
			victim := ""
			if kills[i] {
				victim = dep.Leader()
				dep.KillCoordinator(victim)
			}
			if !dep.Settle(settleBudget) {
				t.Fatalf("tick %d did not settle (n=%d, killed=%q)", i, n, victim)
			}
			if victim != "" {
				dep.RecoverCoordinator(victim)
			}
			ref.tick(t, ops)
			want := ref.dump(dep.Placement().Preds)
			if got := dep.DumpString(); got != want {
				t.Fatalf("tick %d, n=%d shards diverged:\n%s\nwant:\n%s", i, n, got, want)
			}
		}
		if err := dep.CheckMirrors(); err != nil {
			t.Fatal(err)
		}
		if m := dep.Metrics(); m.DoubleCommits != 0 {
			t.Fatalf("double commits: %d", m.DoubleCommits)
		}
	})
}
