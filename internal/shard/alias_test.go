package shard_test

import (
	"testing"

	"hydro/internal/datalog"
	"hydro/internal/shard"
)

// Aliasing regressions at the deployment API: accessors return copies,
// and Submit snapshots the caller's ops buffer.

func TestReplicasAndCoordinatorsReturnCopies(t *testing.T) {
	prog, err := datalog.NewProgram(tcRules...)
	if err != nil {
		t.Fatal(err)
	}
	_, dep := newDeployment(t, prog, tcEDB, 3, 11)
	reps := dep.Replicas()
	coords := dep.Coordinators()
	origRep, origCoord := reps[0], coords[0]
	reps[0] = "corrupted"
	coords[0] = "corrupted"
	if dep.Replicas()[0] != origRep {
		t.Fatal("Replicas aliases the live routing table")
	}
	if dep.Coordinators()[0] != origCoord {
		t.Fatal("Coordinators aliases the live routing table")
	}
	// The deployment must still route: a tick settles and the leader
	// lookup still resolves against intact names.
	if dep.Leader() != origCoord {
		t.Fatalf("leader lookup broken: %s", dep.Leader())
	}
	if err := dep.Submit([]datalog.DeltaOp{ins("edge", "a", "b")}); err != nil {
		t.Fatal(err)
	}
	if !dep.Settle(settleBudget) {
		t.Fatal("tick did not settle after mutating accessor results")
	}
}

// TestSubmitCopiesOps mutates the caller's ops slice after Submit but
// before the tick is driven: the committed result must reflect the
// original ops. (Admission copies the slice onto the replicated queue —
// an aliased buffer would let the caller retroactively rewrite a decree.)
func TestSubmitCopiesOps(t *testing.T) {
	prog, err := datalog.NewProgram(tcRules...)
	if err != nil {
		t.Fatal(err)
	}
	_, dep := newDeployment(t, prog, tcEDB, 2, 12)
	ref := newOracle(t, prog, tcEDB)

	ops := []datalog.DeltaOp{ins("edge", "a", "b"), ins("edge", "b", "c")}
	ref.tick(t, ops)
	if err := dep.Submit(ops); err != nil {
		t.Fatal(err)
	}
	ops[0] = del("edge", "zz", "zz")
	ops[1] = ins("edge", "x", "y")
	if !dep.Settle(settleBudget) {
		t.Fatal("tick did not settle")
	}
	if got, want := dep.DumpString(), ref.dump(dep.Placement().Preds); got != want {
		t.Fatalf("mutating the ops buffer changed the committed tick:\n%s\nwant:\n%s", got, want)
	}
}

func TestControlStatesIsSnapshot(t *testing.T) {
	prog, err := datalog.NewProgram(tcRules...)
	if err != nil {
		t.Fatal(err)
	}
	_, dep := newDeployment(t, prog, tcEDB, 2, 13)
	if err := dep.Submit([]datalog.DeltaOp{ins("edge", "a", "b")}); err != nil {
		t.Fatal(err)
	}
	if !dep.Settle(settleBudget) {
		t.Fatal("tick did not settle")
	}
	states := dep.ControlStates()
	states[0] = shard.ControlState{Epoch: 999}
	if dep.ControlStates()[0].Epoch != 1 {
		t.Fatal("ControlStates aliases live coordinator state")
	}
}
