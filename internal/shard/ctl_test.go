package shard

import "testing"

// TestStaleForeignAttemptKeepsLatch pins the attempt-latch identity fix:
// only THIS node's in-flight attempt decree applying or going stale may
// release attPending. A deposed leader's stale attempt decree landing
// while the current leader's own proposal is still in flight must not
// unlatch it — that would double-propose and restart the whole attempt.
func TestStaleForeignAttemptKeepsLatch(t *testing.T) {
	cn := &coordNode{st: newCtlState()}
	cn.st.epoch = 2
	cn.st.leader = cn.idx
	cn.st.queue = append(cn.st.queue, nil)
	cn.attPending = true
	cn.attProposed = decreeAttempt{Tick: 1, Att: 1, Epoch: 2}

	// A deposed epoch-1 leader's attempt goes stale at the epoch guard.
	cn.applyDecree(decreeAttempt{Tick: 1, Att: 1, Epoch: 1})
	if !cn.attPending {
		t.Fatal("stale foreign attempt released the current leader's latch")
	}

	// The node's own decree going stale (attempt counter moved past it)
	// does release the latch so the next nudge can re-propose.
	cn.st.att = 3
	cn.applyDecree(cn.attProposed)
	if cn.attPending {
		t.Fatal("own stale attempt decree did not release the latch")
	}
}
