package shard_test

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"hydro/internal/cluster"
	"hydro/internal/datalog"
	"hydro/internal/shard"
	"hydro/internal/simnet"
	"hydro/internal/target"
)

// settleBudget bounds one Settle call; healthy ticks need a few hundred
// deliveries, so hitting this means the protocol is stuck.
const settleBudget = 400_000

var tcRules = []datalog.Rule{
	{
		Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}},
		Body: []datalog.Literal{{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}}},
	},
	{
		Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("z")}},
		Body: []datalog.Literal{
			{Atom: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}},
			{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("y"), datalog.V("z")}}},
		},
	},
}

var tcEDB = map[string]int{"edge": 2, "node": 1, "attr": 2}

// newDeployment builds an n-replica deployment of prog on a fresh
// simulated cluster, replicas placed by the deployment ILP.
func newDeployment(t testing.TB, prog *datalog.Program, edb map[string]int, n int, seed int64) (*cluster.Cluster, *shard.Deployment) {
	t.Helper()
	topo := cluster.NewTopology(3, 2, 2, cluster.ClassSmall)
	cl := cluster.New(topo, simnet.DefaultConfig(seed))
	machines, err := target.PlaceReplicas(topo, n)
	if err != nil {
		t.Fatalf("PlaceReplicas(%d): %v", n, err)
	}
	dep, err := shard.Deploy(cl, fmt.Sprintf("dep%d", n), prog, edb, machines, shard.Options{})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	return cl, dep
}

// oracle maintains the single-node reference fixpoint: the same program
// under datalog.Incremental, fed realized versions of the same raw ops.
type oracle struct {
	inc *datalog.Incremental
}

func newOracle(t testing.TB, prog *datalog.Program, edb map[string]int) *oracle {
	t.Helper()
	db := datalog.NewDatabase()
	for pred, ar := range edb {
		db.Ensure(pred, ar)
	}
	inc, err := datalog.NewIncremental(prog, db)
	if err != nil {
		t.Fatalf("NewIncremental: %v", err)
	}
	return &oracle{inc: inc}
}

func (o *oracle) tick(t testing.TB, ops []datalog.DeltaOp) {
	t.Helper()
	delta := datalog.NewDelta()
	for _, op := range ops {
		rel := o.inc.DB().Get(op.Pred)
		if op.Del {
			if rel.Delete(op.T) {
				delta.Delete(op.Pred, op.T)
			}
		} else if rel.Insert(op.T) {
			delta.Insert(op.Pred, op.T)
		}
	}
	if _, err := o.inc.Apply(delta); err != nil {
		t.Fatalf("oracle Apply: %v", err)
	}
}

func (o *oracle) dump(preds []string) string {
	return shard.DumpDatabase(o.inc.DB(), preds)
}

func ins(pred string, vals ...any) datalog.DeltaOp {
	return datalog.DeltaOp{Pred: pred, T: datalog.Tuple(vals)}
}

func del(pred string, vals ...any) datalog.DeltaOp {
	return datalog.DeltaOp{Del: true, Pred: pred, T: datalog.Tuple(vals)}
}

// TestShardedTCMatchesSingleNode drives the transitive-closure workload
// through a 3-replica deployment tick by tick — inserts building a chain
// across shard boundaries, then deletions that retract closure tuples
// owned by other replicas (cross-shard DRed traffic) — and requires
// byte-identical dumps against the single-node incremental fixpoint after
// every tick.
func TestShardedTCMatchesSingleNode(t *testing.T) {
	prog, err := datalog.NewProgram(tcRules...)
	if err != nil {
		t.Fatal(err)
	}
	_, dep := newDeployment(t, prog, tcEDB, 3, 42)
	ref := newOracle(t, prog, tcEDB)

	ticks := [][]datalog.DeltaOp{
		{ins("edge", "a", "b"), ins("edge", "b", "c"), ins("edge", "c", "d")},
		{ins("edge", "d", "e"), ins("edge", "e", "f"), ins("edge", "f", "a")}, // closes a cycle
		{ins("edge", "b", "g"), del("edge", "c", "d")},                        // cut mid-chain
		{del("edge", "f", "a"), del("edge", "a", "b")},                        // delete-heavy
		{ins("edge", "a", "b"), ins("edge", "c", "d")},                        // rebuild
	}
	for i, ops := range ticks {
		if err := dep.Submit(ops); err != nil {
			t.Fatalf("tick %d: Submit: %v", i, err)
		}
		if !dep.Settle(settleBudget) {
			t.Fatalf("tick %d did not settle", i)
		}
		ref.tick(t, ops)
		want := ref.dump(dep.Placement().Preds)
		if got := dep.DumpString(); got != want {
			t.Fatalf("tick %d diverged:\nsharded:\n%s\nsingle-node:\n%s", i, got, want)
		}
		if err := dep.CheckMirrors(); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}
	// The TC shape must stay fully sharded — co-hashed joins, not
	// mirrored fallback.
	for _, pred := range []string{"edge", "path"} {
		if dep.Placement().Specs[pred].Mirrored {
			t.Fatalf("%s unexpectedly mirrored", pred)
		}
	}
}

// randConst draws from a small mixed-type domain so keys collide across
// ticks (collisions are where maintenance bugs live).
func randConst(r *rand.Rand) any {
	if r.Intn(2) == 0 {
		return string(rune('a' + r.Intn(4)))
	}
	return int64(r.Intn(4))
}

// randShardRules mirrors the datalog package's randRules shapes: a
// transitive closure with randomized recursion (linear closures stay
// co-hashed across shards; nonlinear ones exercise the mirrored
// fallback), optional joins and filters, optional stratified negation,
// and an optional aggregate layer.
func randShardRules(r *rand.Rand) []datalog.Rule {
	V, C := datalog.V, datalog.C
	lit := func(pred string, args ...datalog.Term) datalog.Literal {
		return datalog.Literal{Atom: datalog.Atom{Pred: pred, Args: args}}
	}
	neg := func(pred string, args ...datalog.Term) datalog.Literal {
		return datalog.Literal{Atom: datalog.Atom{Pred: pred, Args: args}, Negated: true}
	}
	rules := []datalog.Rule{{
		Head: datalog.Atom{Pred: "p1", Args: []datalog.Term{V("x"), V("y")}},
		Body: []datalog.Literal{lit("edge", V("x"), V("y"))},
	}}
	switch r.Intn(3) {
	case 0: // left-recursive
		rules = append(rules, datalog.Rule{
			Head: datalog.Atom{Pred: "p1", Args: []datalog.Term{V("x"), V("z")}},
			Body: []datalog.Literal{lit("p1", V("x"), V("y")), lit("edge", V("y"), V("z"))},
		})
	case 1: // right-recursive
		rules = append(rules, datalog.Rule{
			Head: datalog.Atom{Pred: "p1", Args: []datalog.Term{V("x"), V("z")}},
			Body: []datalog.Literal{lit("edge", V("x"), V("y")), lit("p1", V("y"), V("z"))},
		})
	default: // nonlinear — defeats co-hashing, exercises mirrored evaluation
		rules = append(rules, datalog.Rule{
			Head: datalog.Atom{Pred: "p1", Args: []datalog.Term{V("x"), V("z")}},
			Body: []datalog.Literal{lit("p1", V("x"), V("y")), lit("p1", V("y"), V("z"))},
		})
	}
	if r.Intn(2) == 0 {
		rules = append(rules, datalog.Rule{
			Head: datalog.Atom{Pred: "sym", Args: []datalog.Term{V("x"), V("y")}},
			Body: []datalog.Literal{lit("edge", V("x"), V("y")), lit("edge", V("y"), V("x"))},
		})
	}
	if r.Intn(2) == 0 {
		rules = append(rules, datalog.Rule{
			Head:    datalog.Atom{Pred: "p2", Args: []datalog.Term{V("x"), V("v")}},
			Body:    []datalog.Literal{lit("p1", V("x"), V("y")), lit("attr", V("y"), V("v"))},
			Filters: []datalog.Filter{{Op: datalog.OpGe, L: V("v"), R: C(int64(r.Intn(5)))}},
		})
	}
	if r.Intn(2) == 0 {
		rules = append(rules, datalog.Rule{
			Head: datalog.Atom{Pred: "q", Args: []datalog.Term{V("x")}},
			Body: []datalog.Literal{lit("node", V("x")), neg("p1", C(randConst(r)), V("x"))},
		})
	}
	switch r.Intn(4) {
	case 0:
		rules = append(rules, datalog.Rule{
			Head:   datalog.Atom{Pred: "fanout", Args: []datalog.Term{V("x"), V("y")}},
			Body:   []datalog.Literal{lit("p1", V("x"), V("y"))},
			Agg:    datalog.AggCount,
			AggVar: "y",
		})
	case 1:
		rules = append(rules, datalog.Rule{
			Head:   datalog.Atom{Pred: "wsum", Args: []datalog.Term{V("x"), V("v")}},
			Body:   []datalog.Literal{lit("p1", V("x"), V("y")), lit("attr", V("y"), V("v"))},
			Agg:    datalog.AggSum,
			AggVar: "v",
		})
	case 2:
		rules = append(rules, datalog.Rule{
			Head:   datalog.Atom{Pred: "best", Args: []datalog.Term{V("x"), V("v")}},
			Body:   []datalog.Literal{lit("attr", V("x"), V("v"))},
			Agg:    datalog.AggMax,
			AggVar: "v",
		})
	}
	return rules
}

// shadow tracks base-relation contents while generating ops, so deletes
// target tuples that actually exist.
type shadow struct {
	rels map[string][]datalog.Tuple
}

func newShadow() *shadow { return &shadow{rels: map[string][]datalog.Tuple{}} }

func (s *shadow) apply(op datalog.DeltaOp) {
	key := func(t datalog.Tuple) string { return fmt.Sprint(t...) }
	cur := s.rels[op.Pred]
	if op.Del {
		for i, t := range cur {
			if key(t) == key(op.T) {
				s.rels[op.Pred] = append(append([]datalog.Tuple{}, cur[:i]...), cur[i+1:]...)
				return
			}
		}
		return
	}
	for _, t := range cur {
		if key(t) == key(op.T) {
			return
		}
	}
	s.rels[op.Pred] = append(cur, op.T)
}

func randBaseTuple(r *rand.Rand, pred string) datalog.Tuple {
	switch pred {
	case "edge":
		return datalog.Tuple{randConst(r), randConst(r)}
	case "attr":
		return datalog.Tuple{randConst(r), int64(r.Intn(10))}
	default:
		return datalog.Tuple{randConst(r)}
	}
}

// randTicks generates a tick sequence: a seeding tick, then churn ticks
// whose delete probability rises toward the end (delete-heavy DRed tail).
func randTicks(r *rand.Rand) [][]datalog.DeltaOp {
	preds := []string{"edge", "edge", "attr", "node"} // edge-biased
	sh := newShadow()
	var ticks [][]datalog.DeltaOp
	seedN := 8 + r.Intn(7)
	var seed []datalog.DeltaOp
	for i := 0; i < seedN; i++ {
		op := ins(preds[r.Intn(len(preds))])
		op.T = randBaseTuple(r, op.Pred)
		sh.apply(op)
		seed = append(seed, op)
	}
	ticks = append(ticks, seed)
	nTicks := 6 + r.Intn(4)
	for ti := 0; ti < nTicks; ti++ {
		pDel := 0.25
		if ti >= nTicks-3 {
			pDel = 0.6
		}
		var ops []datalog.DeltaOp
		for k := 0; k < 1+r.Intn(5); k++ {
			pred := preds[r.Intn(len(preds))]
			if r.Float64() < pDel && len(sh.rels[pred]) > 0 {
				victim := sh.rels[pred][r.Intn(len(sh.rels[pred]))]
				op := datalog.DeltaOp{Del: true, Pred: pred, T: victim}
				sh.apply(op)
				ops = append(ops, op)
				continue
			}
			op := datalog.DeltaOp{Pred: pred, T: randBaseTuple(r, pred)}
			sh.apply(op)
			ops = append(ops, op)
		}
		ticks = append(ticks, ops)
	}
	return ticks
}

// shardCounts returns the shard counts under test; the CI sharded matrix
// overrides via SHARD_COUNTS (e.g. "1,4").
func shardCounts(t testing.TB) []int {
	env := os.Getenv("SHARD_COUNTS")
	if env == "" {
		return []int{1, 2, 4}
	}
	var out []int
	for _, f := range strings.Split(env, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			t.Fatalf("bad SHARD_COUNTS %q", env)
		}
		out = append(out, n)
	}
	return out
}

// TestShardedDeterminism50Seeds is the 50-seed determinism gate: for each
// seed, a random program (TC shapes, negation, aggregates) and a random
// delete-heavy tick sequence run at every shard count, and every count's
// per-tick relation dumps must be byte-identical to the single-node
// incremental fixpoint (and therefore to each other).
func TestShardedDeterminism50Seeds(t *testing.T) {
	if testing.Short() {
		t.Skip("50-seed sweep")
	}
	counts := shardCounts(t)
	for seed := int64(0); seed < 50; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rules := randShardRules(rand.New(rand.NewSource(seed)))
			ticks := randTicks(rand.New(rand.NewSource(seed ^ 0x5eed)))
			prog, err := datalog.NewProgram(rules...)
			if err != nil {
				t.Fatalf("bad random program: %v", err)
			}
			_ = prog // program validity checked once up front
			want := make([]string, len(ticks))
			for _, n := range counts {
				cprog, err := datalog.NewProgram(rules...)
				if err != nil {
					t.Fatal(err)
				}
				_, dep := newDeployment(t, cprog, tcEDB, n, 1000+seed)
				refRun := newOracle(t, cprog, tcEDB)
				for i, ops := range ticks {
					if err := dep.Submit(ops); err != nil {
						t.Fatalf("n=%d tick %d: %v", n, i, err)
					}
					if !dep.Settle(settleBudget) {
						t.Fatalf("n=%d tick %d did not settle", n, i)
					}
					refRun.tick(t, ops)
					w := refRun.dump(dep.Placement().Preds)
					if want[i] == "" {
						want[i] = w
					} else if want[i] != w {
						t.Fatalf("oracle itself diverged at tick %d", i)
					}
					if got := dep.DumpString(); got != w {
						t.Fatalf("n=%d tick %d diverged from single-node:\n%s\nwant:\n%s", n, i, got, w)
					}
				}
				if err := dep.CheckMirrors(); err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
			}
		})
	}
}

// TestPlacementTCStaysSharded pins the placement analysis: the linear TC
// shape keeps both relations hash-partitioned on the join key, while a
// program with negation mirrors the negated closure.
func TestPlacementTCStaysSharded(t *testing.T) {
	prog, err := datalog.NewProgram(tcRules...)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := shard.NewPlacement(prog, tcEDB, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Specs["edge"].Mirrored || pl.Specs["path"].Mirrored {
		t.Fatalf("TC relations should stay sharded: %+v", pl.Specs)
	}
	if pl.Specs["edge"].Col != 0 || pl.Specs["path"].Col != 1 {
		t.Fatalf("unexpected partition columns: edge=%d path=%d",
			pl.Specs["edge"].Col, pl.Specs["path"].Col)
	}

	negRules := append(append([]datalog.Rule{}, tcRules...), datalog.Rule{
		Head: datalog.Atom{Pred: "dead", Args: []datalog.Term{datalog.V("x")}},
		Body: []datalog.Literal{
			{Atom: datalog.Atom{Pred: "node", Args: []datalog.Term{datalog.V("x")}}},
			{Atom: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("x")}}, Negated: true},
		},
	})
	nprog, err := datalog.NewProgram(negRules...)
	if err != nil {
		t.Fatal(err)
	}
	npl, err := shard.NewPlacement(nprog, tcEDB, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, pred := range []string{"path", "node", "dead"} {
		if !npl.Specs[pred].Mirrored {
			t.Fatalf("%s should be mirrored under negation", pred)
		}
	}
}

// TestDeclaredPartitionHonored pins that hlang-style declared partition
// columns override the compiled hints for rule-free tables.
func TestDeclaredPartitionHonored(t *testing.T) {
	prog, err := datalog.NewProgram(tcRules...)
	if err != nil {
		t.Fatal(err)
	}
	edb := map[string]int{"edge": 2, "node": 1, "attr": 2, "people": 4}
	pl, err := shard.NewPlacement(prog, edb, 3, map[string]int{"people": 1})
	if err != nil {
		t.Fatal(err)
	}
	if s := pl.Specs["people"]; s.Mirrored || s.Col != 1 {
		t.Fatalf("declared partition ignored: %+v", s)
	}
}
