package shard

import (
	"hydro/internal/datalog"
)

// Coordinator stages, in tick order. stDecide sits between the last
// component and commit: the driver has collected every replica's final
// ack and is waiting for its commit decree to land on the quorum log.
type stage int

const (
	stIdle stage = iota
	stPrepare
	stOps
	stCompBegin
	stRound
	stApply
	stRecompute
	stDecide
	stCommit
)

// coord is the volatile BSP driver the acting leader runs for one attempt:
// broadcast a request, collect N acks, advance. It holds no durable truth —
// tick admission, attempt numbers and commit decisions live on the
// replicated control log (ctl.go); everything here is reconstructed after
// failover by restarting the attempt from prepare. Failures are handled by
// whole-attempt retry: a watchdog fires if the attempt stalls (replica
// down, link partitioned), and the restart is itself a decree (attempt
// bump), so a deposed leader's watchdog cannot fork the tick. Once every
// replica has finished the attempt the driver proposes the commit decree
// (stDecide); when it applies, the commit broadcast is the only remaining
// step and is retried in place, idempotently.
type coord struct {
	cn *coordNode

	t, a    uint64
	epoch   uint64
	seq     uint64 // progress counter; stale watchdogs are ignored
	stg     stage
	comp    int
	phase   int
	round   int
	seedIn  bool
	tickOps []datalog.DeltaOp
	routed  [][]datalog.DeltaOp
	acks    map[int]rsp
}

func (c *coord) dep() *Deployment { return c.cn.dep }

func (c *coord) name() string { return c.cn.name() }

// setStage advances the stage machine and fires the deployment's stage
// hook — the chaos suite's injection point for killing or partitioning
// the leader at an exact protocol position.
func (c *coord) setStage(s stage) {
	c.stg = s
	if h := c.dep().stageHook; h != nil {
		h(c.name(), c.t, c.a, int(s))
	}
}

func (c *coord) armWatchdog() {
	c.dep().net.After(c.name(), c.dep().retryAfter, watchdogMsg{Tick: c.t, Att: c.a, Seq: c.seq})
}

// progress marks forward motion of the current attempt and re-arms the
// stall detector from now.
func (c *coord) progress() {
	c.seq++
	c.armWatchdog()
}

func (c *coord) bcast(m req) {
	m.Epoch = c.epoch
	c.acks = map[int]rsp{}
	for _, node := range c.dep().replicaNames {
		c.dep().net.Send(c.name(), node, m)
	}
}

func (c *coord) watchdog(m watchdogMsg) {
	if m.Tick != c.t || m.Att != c.a || m.Seq != c.seq {
		return
	}
	switch c.stg {
	case stCommit:
		// Every replica finished the attempt and the commit is decreed;
		// just re-push the broadcast.
		c.bcast(req{Tick: c.t, Att: c.a, Kind: reqCommit})
		c.progress()
	case stDecide:
		// Waiting on the quorum log; the consensus layer retries the decree
		// itself, so just keep the watchdog alive.
		c.progress()
	default:
		// Genuinely stalled attempt: restart it through the log. The bump
		// only takes effect if this leader's epoch is still current.
		c.progress()
		c.cn.proposeAttemptBump()
	}
}

func (c *coord) startAttempt() {
	// Route the tick's base ops once per attempt: sharded predicates go to
	// the owning replica, mirrored ones to everybody.
	c.routed = make([][]datalog.DeltaOp, c.dep().place.N)
	for _, op := range c.tickOps {
		if c.dep().place.Specs[op.Pred].Mirrored {
			for i := range c.routed {
				c.routed[i] = append(c.routed[i], op)
			}
			continue
		}
		d := c.dep().place.Owner(op.Pred, op.T)
		c.routed[d] = append(c.routed[d], op)
	}
	c.setStage(stPrepare)
	c.bcast(req{Tick: c.t, Att: c.a, Kind: reqPrepare})
	c.progress()
}

func (c *coord) collect(m rsp) {
	if m.Tick != c.t || m.Att != c.a {
		return
	}
	want := map[stage]reqKind{
		stPrepare: reqPrepare, stOps: reqOps, stCompBegin: reqCompBegin,
		stRound: reqRound, stApply: reqApply, stRecompute: reqRecompute,
		stCommit: reqCommit,
	}
	if k, ok := want[c.stg]; !ok || m.Kind != k {
		return
	}
	if c.stg >= stCompBegin && c.stg <= stRecompute && m.Comp != c.comp {
		return
	}
	if (c.stg == stRound || c.stg == stApply) && (m.Phase != c.phase || m.Round != c.round) {
		return
	}
	c.acks[m.From] = m
	if len(c.acks) < c.dep().place.N {
		return
	}
	c.progress()
	c.advance()
}

func (c *coord) advance() {
	switch c.stg {
	case stPrepare:
		c.setStage(stOps)
		c.acks = map[int]rsp{}
		for i, node := range c.dep().replicaNames {
			c.dep().net.Send(c.name(), node, req{Tick: c.t, Att: c.a, Epoch: c.epoch, Kind: reqOps, Ops: c.routed[i]})
		}
	case stOps:
		c.comp = 0
		c.beginComp()
	case stCompBegin:
		var hasAdd, hasDel bool
		for i := 0; i < c.dep().place.N; i++ {
			if c.acks[i].HasAdd {
				hasAdd = true
			}
			if c.acks[i].HasDel {
				hasDel = true
			}
		}
		meta := c.dep().comps[c.comp]
		switch {
		case !hasAdd && !hasDel:
			c.comp++
			c.beginComp()
		case meta.nonMono:
			c.setStage(stRecompute)
			c.bcast(req{Tick: c.t, Att: c.a, Kind: reqRecompute, Comp: c.comp})
		case hasDel:
			c.phase, c.round, c.seedIn = phaseDelete, 0, false
			c.startRound()
		default:
			c.phase, c.round, c.seedIn = phaseInsert, 0, true
			c.startRound()
		}
	case stRecompute:
		c.comp++
		c.beginComp()
	case stRound:
		// Per-replica barrier size: how many peers shipped it traffic.
		expect := make([]int, c.dep().place.N)
		for s := 0; s < c.dep().place.N; s++ {
			for d, sent := range c.acks[s].SentTo {
				if sent {
					expect[d]++
				}
			}
		}
		c.setStage(stApply)
		c.acks = map[int]rsp{}
		for i, node := range c.dep().replicaNames {
			c.dep().net.Send(c.name(), node, req{
				Tick: c.t, Att: c.a, Epoch: c.epoch, Kind: reqApply,
				Comp: c.comp, Phase: c.phase, Round: c.round, Expect: expect[i],
			})
		}
	case stApply:
		total := 0
		for i := 0; i < c.dep().place.N; i++ {
			total += c.acks[i].Next
		}
		switch {
		case c.phase == phaseRederive:
			// Single pass; accepted insertions seed the insert rounds.
			if total == 0 {
				c.comp++
				c.beginComp()
				return
			}
			c.phase, c.round, c.seedIn = phaseInsert, 0, false
			c.startRound()
		case total > 0:
			c.round++
			c.startRound()
		case c.phase == phaseDelete:
			c.phase, c.round = phaseRederive, 0
			c.startRound()
		default: // phaseInsert quiesced
			c.comp++
			c.beginComp()
		}
	case stCommit:
		allIn := true
		for i := 0; i < c.dep().place.N; i++ {
			if c.acks[i].Committed < c.t {
				allIn = false
			}
		}
		if !allIn {
			return // commit retry will re-collect
		}
		c.cn.drv = nil
		c.cn.maybeStartNext()
	}
}

func (c *coord) beginComp() {
	if c.comp >= len(c.dep().comps) {
		// Every replica holds the fully staged attempt; seal the tick on
		// the quorum log before telling anyone to commit, so a failover in
		// the gap finalizes instead of re-driving.
		c.setStage(stDecide)
		c.cn.cons.Propose(decreeCommit{Tick: c.t, Att: c.a, Epoch: c.epoch})
		c.progress()
		return
	}
	c.setStage(stCompBegin)
	c.bcast(req{Tick: c.t, Att: c.a, Kind: reqCompBegin, Comp: c.comp})
}

// enterCommit broadcasts the decreed commit (called when the commit decree
// applies, or by a recovered leader finalizing the last sealed tick).
func (c *coord) enterCommit() {
	c.setStage(stCommit)
	c.bcast(req{Tick: c.t, Att: c.a, Kind: reqCommit})
	c.progress()
}

func (c *coord) startRound() {
	c.setStage(stRound)
	c.bcast(req{
		Tick: c.t, Att: c.a, Kind: reqRound,
		Comp: c.comp, Phase: c.phase, Round: c.round,
		SeedInputs: c.seedIn && c.round == 0,
	})
}
