package shard

import (
	"hydro/internal/datalog"
	"hydro/internal/simnet"
)

// Coordinator stages, in tick order.
type stage int

const (
	stIdle stage = iota
	stPrepare
	stOps
	stCompBegin
	stRound
	stApply
	stRecompute
	stCommit
)

// coord sequences one BSP tick at a time: broadcast a request, collect N
// acks, advance. Failures are handled by whole-attempt retry — a watchdog
// timer fires if an attempt stalls (replica down, link partitioned, in
// rare configurations a dropped message), bumps the attempt number and
// restarts the tick from prepare; replicas roll their staging back, so a
// retried attempt recomputes from the committed state. Once every replica
// has finished the attempt, the commit broadcast is the only remaining
// step, and it is retried in place (idempotently) rather than restarted —
// so a tick either commits on all replicas or keeps retrying until the
// fault heals. The coordinator itself is control-plane state outside the
// failure domains (DESIGN.md §11 discusses lifting this).
type coord struct {
	dep *Deployment

	queue     [][]datalog.DeltaOp
	committed uint64

	active  bool
	t, a    uint64
	seq     uint64 // progress counter; stale watchdogs are ignored
	stg     stage
	comp    int
	phase   int
	round   int
	seedIn  bool
	tickOps []datalog.DeltaOp
	routed  [][]datalog.DeltaOp
	acks    map[int]rsp
}

func newCoord(dep *Deployment) *coord { return &coord{dep: dep} }

func (c *coord) handle(now simnet.Time, msg simnet.Message) {
	switch m := msg.Payload.(type) {
	case kickMsg:
		if !c.active && len(c.queue) > 0 {
			c.startTick()
		}
	case watchdogMsg:
		// Only a genuinely stalled attempt restarts: any ack-set completion
		// bumps seq and re-arms, so an attempt that is slow but moving never
		// trips the watchdog.
		if !c.active || m.Tick != c.t || m.Att != c.a || m.Seq != c.seq {
			return
		}
		if c.stg == stCommit {
			// Every replica finished the attempt; just re-push the commit.
			c.bcast(req{Tick: c.t, Att: c.a, Kind: reqCommit})
			c.progress()
		} else {
			c.a++
			c.startAttempt()
		}
	case rsp:
		c.collect(m)
	}
}

func (c *coord) name() string { return c.dep.coordName }

func (c *coord) armWatchdog() {
	c.dep.net.After(c.name(), c.dep.retryAfter, watchdogMsg{Tick: c.t, Att: c.a, Seq: c.seq})
}

// progress marks forward motion of the current attempt and re-arms the
// stall detector from now.
func (c *coord) progress() {
	c.seq++
	c.armWatchdog()
}

func (c *coord) bcast(m req) {
	c.acks = map[int]rsp{}
	for _, node := range c.dep.replicaNames {
		c.dep.net.Send(c.name(), node, m)
	}
}

func (c *coord) startTick() {
	c.tickOps = c.queue[0]
	c.queue = c.queue[1:]
	c.active = true
	c.t = c.committed + 1
	c.a++
	c.startAttempt()
}

func (c *coord) startAttempt() {
	// Route the tick's base ops once per attempt: sharded predicates go to
	// the owning replica, mirrored ones to everybody.
	c.routed = make([][]datalog.DeltaOp, c.dep.place.N)
	for _, op := range c.tickOps {
		if c.dep.place.Specs[op.Pred].Mirrored {
			for i := range c.routed {
				c.routed[i] = append(c.routed[i], op)
			}
			continue
		}
		d := c.dep.place.Owner(op.Pred, op.T)
		c.routed[d] = append(c.routed[d], op)
	}
	c.stg = stPrepare
	c.bcast(req{Tick: c.t, Att: c.a, Kind: reqPrepare})
	c.progress()
}

func (c *coord) collect(m rsp) {
	if !c.active || m.Tick != c.t || m.Att != c.a {
		return
	}
	want := map[stage]reqKind{
		stPrepare: reqPrepare, stOps: reqOps, stCompBegin: reqCompBegin,
		stRound: reqRound, stApply: reqApply, stRecompute: reqRecompute,
		stCommit: reqCommit,
	}
	if k, ok := want[c.stg]; !ok || m.Kind != k {
		return
	}
	if c.stg >= stCompBegin && c.stg <= stRecompute && m.Comp != c.comp {
		return
	}
	if (c.stg == stRound || c.stg == stApply) && (m.Phase != c.phase || m.Round != c.round) {
		return
	}
	c.acks[m.From] = m
	if len(c.acks) < c.dep.place.N {
		return
	}
	c.progress()
	c.advance()
}

func (c *coord) advance() {
	switch c.stg {
	case stPrepare:
		c.stg = stOps
		c.acks = map[int]rsp{}
		for i, node := range c.dep.replicaNames {
			c.dep.net.Send(c.name(), node, req{Tick: c.t, Att: c.a, Kind: reqOps, Ops: c.routed[i]})
		}
	case stOps:
		c.comp = 0
		c.beginComp()
	case stCompBegin:
		var hasAdd, hasDel bool
		for i := 0; i < c.dep.place.N; i++ {
			if c.acks[i].HasAdd {
				hasAdd = true
			}
			if c.acks[i].HasDel {
				hasDel = true
			}
		}
		meta := c.dep.comps[c.comp]
		switch {
		case !hasAdd && !hasDel:
			c.comp++
			c.beginComp()
		case meta.nonMono:
			c.stg = stRecompute
			c.bcast(req{Tick: c.t, Att: c.a, Kind: reqRecompute, Comp: c.comp})
		case hasDel:
			c.phase, c.round, c.seedIn = phaseDelete, 0, false
			c.startRound()
		default:
			c.phase, c.round, c.seedIn = phaseInsert, 0, true
			c.startRound()
		}
	case stRecompute:
		c.comp++
		c.beginComp()
	case stRound:
		// Per-replica barrier size: how many peers shipped it traffic.
		expect := make([]int, c.dep.place.N)
		for s := 0; s < c.dep.place.N; s++ {
			for d, sent := range c.acks[s].SentTo {
				if sent {
					expect[d]++
				}
			}
		}
		c.stg = stApply
		c.acks = map[int]rsp{}
		for i, node := range c.dep.replicaNames {
			c.dep.net.Send(c.name(), node, req{
				Tick: c.t, Att: c.a, Kind: reqApply,
				Comp: c.comp, Phase: c.phase, Round: c.round, Expect: expect[i],
			})
		}
	case stApply:
		total := 0
		for i := 0; i < c.dep.place.N; i++ {
			total += c.acks[i].Next
		}
		switch {
		case c.phase == phaseRederive:
			// Single pass; accepted insertions seed the insert rounds.
			if total == 0 {
				c.comp++
				c.beginComp()
				return
			}
			c.phase, c.round, c.seedIn = phaseInsert, 0, false
			c.startRound()
		case total > 0:
			c.round++
			c.startRound()
		case c.phase == phaseDelete:
			c.phase, c.round = phaseRederive, 0
			c.startRound()
		default: // phaseInsert quiesced
			c.comp++
			c.beginComp()
		}
	case stCommit:
		allIn := true
		for i := 0; i < c.dep.place.N; i++ {
			if c.acks[i].Committed < c.t {
				allIn = false
			}
		}
		if !allIn {
			return // commit retry will re-collect
		}
		c.committed = c.t
		c.active = false
		if len(c.queue) > 0 {
			c.startTick()
		}
	}
}

func (c *coord) beginComp() {
	if c.comp >= len(c.dep.comps) {
		c.stg = stCommit
		c.bcast(req{Tick: c.t, Att: c.a, Kind: reqCommit})
		return
	}
	c.stg = stCompBegin
	c.bcast(req{Tick: c.t, Att: c.a, Kind: reqCompBegin, Comp: c.comp})
}

func (c *coord) startRound() {
	c.stg = stRound
	c.bcast(req{
		Tick: c.t, Att: c.a, Kind: reqRound,
		Comp: c.comp, Phase: c.phase, Round: c.round,
		SeedInputs: c.seedIn && c.round == 0,
	})
}
