package shard

import (
	"fmt"
	"sort"
	"strings"

	"hydro/internal/cluster"
	"hydro/internal/datalog"
	"hydro/internal/simnet"
)

// Options tunes a deployment.
type Options struct {
	// RetryAfter is the coordinator's stall watchdog: an attempt that makes
	// no progress for this long (virtual time) is restarted. Zero uses a
	// generous default.
	RetryAfter simnet.Time
	// Declared fixes partition columns for specific predicates (hlang
	// `partition(col)` table annotations), overriding the compiled hints.
	Declared map[string]int
}

// DefaultRetryAfter is far above one healthy barrier round-trip (sub-ms at
// LAN latencies) so only genuine stalls — down replicas, cut links — trip
// the attempt restart.
const DefaultRetryAfter simnet.Time = 1_000_000 // 1s virtual

// Deployment is a datalog program running sharded across cluster-hosted
// replicas. Submit queues base-relation ticks; the coordinator commits
// them in order as the simulation runs; Dump reads back the converged
// fixpoint (union of shards, one copy of mirrored relations).
type Deployment struct {
	name         string
	net          *simnet.Network
	place        *Placement
	comps        []*compMeta
	arities      map[string]int
	edb          map[string]int
	replicas     []*replica
	replicaNames []string
	coordName    string
	coord        *coord
	retryAfter   simnet.Time
	submitted    uint64
}

// Deploy hosts one replica of prog on each named machine of cl, sharding
// base relations per the derived placement. edb maps base predicates to
// arities; derived predicates are inferred from the rules and must not
// overlap edb.
func Deploy(cl *cluster.Cluster, name string, prog *datalog.Program, edb map[string]int, machines []string, opts Options) (*Deployment, error) {
	if len(machines) < 1 {
		return nil, fmt.Errorf("shard: need at least one machine")
	}
	place, err := NewPlacement(prog, edb, len(machines), opts.Declared)
	if err != nil {
		return nil, err
	}
	comps, err := prog.Components()
	if err != nil {
		return nil, err
	}
	metas, err := buildCompMeta(comps, place)
	if err != nil {
		return nil, err
	}
	arities := map[string]int{}
	for pred, ar := range edb {
		arities[pred] = ar
	}
	for _, c := range comps {
		for _, r := range c.Rules {
			h := r.Head.Pred
			if _, isBase := edb[h]; isBase {
				return nil, fmt.Errorf("shard: %s is both a base relation and a rule head", h)
			}
			if ar, ok := arities[h]; ok && ar != len(r.Head.Args) {
				return nil, fmt.Errorf("shard: inconsistent arity for %s", h)
			}
			arities[h] = len(r.Head.Args)
		}
	}
	for _, pred := range place.Preds {
		if _, ok := arities[pred]; !ok {
			return nil, fmt.Errorf("shard: predicate %s has no declared arity (add it to edb)", pred)
		}
	}

	d := &Deployment{
		name:         name,
		net:          cl.Net,
		place:        place,
		comps:        metas,
		arities:      arities,
		edb:          edb,
		replicaNames: machines,
		coordName:    name + "-coord",
		retryAfter:   opts.RetryAfter,
	}
	if d.retryAfter <= 0 {
		d.retryAfter = DefaultRetryAfter
	}
	for i := range machines {
		r := newReplica(d, i)
		d.replicas = append(d.replicas, r)
		cl.HostNode(machines[i], r.handle)
	}
	d.coord = newCoord(d)
	cl.Net.AddNode(d.coordName, d.coord.handle)
	return d, nil
}

// Placement returns the deployment's predicate placement.
func (d *Deployment) Placement() *Placement { return d.place }

// Replicas returns the replica node names in replica-index order.
func (d *Deployment) Replicas() []string { return d.replicaNames }

// Submit queues one tick of base-relation ops (applied owner-side with
// insert-if-absent / delete-if-present semantics, so redundant ops are
// no-ops) and wakes the coordinator. The tick commits atomically on all
// replicas once the simulation delivers the protocol traffic.
func (d *Deployment) Submit(ops []datalog.DeltaOp) error {
	for _, op := range ops {
		ar, ok := d.edb[op.Pred]
		if !ok {
			return fmt.Errorf("shard: %s is not a base relation", op.Pred)
		}
		if len(op.T) != ar {
			return fmt.Errorf("shard: %s arity %d, got tuple %v", op.Pred, ar, op.T)
		}
	}
	d.coord.queue = append(d.coord.queue, ops)
	d.submitted++
	d.net.After(d.coordName, 0, kickMsg{})
	return nil
}

// SubmittedTicks returns the number of ticks queued so far.
func (d *Deployment) SubmittedTicks() uint64 { return d.submitted }

// CommittedTicks returns the number of ticks committed on every replica.
func (d *Deployment) CommittedTicks() uint64 { return d.coord.committed }

// Settle steps the network until every submitted tick has committed, up to
// maxEvents deliveries. It reports whether the deployment converged.
func (d *Deployment) Settle(maxEvents int) bool {
	for i := 0; i < maxEvents; i++ {
		if d.coord.committed >= d.submitted {
			return true
		}
		if !d.net.Step() {
			return d.coord.committed >= d.submitted
		}
	}
	return d.coord.committed >= d.submitted
}

// Dump returns the converged global contents of every predicate: the
// shard union for sharded relations, replica 0's copy for mirrored ones.
// Call after Settle.
func (d *Deployment) Dump() map[string][]datalog.Tuple {
	out := map[string][]datalog.Tuple{}
	for _, pred := range d.place.Preds {
		if d.place.Specs[pred].Mirrored {
			out[pred] = d.replicas[0].db.Get(pred).Tuples()
			continue
		}
		set := newTset()
		for _, r := range d.replicas {
			for _, t := range r.db.Get(pred).Tuples() {
				set.add(t)
			}
		}
		out[pred] = sortTuples(set.ts)
	}
	return out
}

// DumpString renders Dump canonically (predicates sorted, tuples in
// canonical order) for byte-level comparison across shard counts and
// against a single-node reference.
func (d *Deployment) DumpString() string { return renderDump(d.Dump()) }

// CheckMirrors verifies every replica holds identical copies of each
// mirrored predicate — the core replication invariant, checked by the
// chaos tests after convergence.
func (d *Deployment) CheckMirrors() error {
	for _, pred := range d.place.Preds {
		if !d.place.Specs[pred].Mirrored {
			continue
		}
		ref := canonTuples(d.replicas[0].db.Get(pred).Tuples())
		for i := 1; i < len(d.replicas); i++ {
			got := canonTuples(d.replicas[i].db.Get(pred).Tuples())
			if strings.Join(got, "\n") != strings.Join(ref, "\n") {
				return fmt.Errorf("shard: mirrored %s diverged between replica 0 and %d", pred, i)
			}
		}
	}
	return nil
}

// DumpDatabase renders db's relations for preds in the same canonical form
// as DumpString — the single-node reference side of the equivalence tests.
func DumpDatabase(db *datalog.Database, preds []string) string {
	out := map[string][]datalog.Tuple{}
	for _, pred := range preds {
		if rel := db.Get(pred); rel != nil {
			out[pred] = rel.Tuples()
		} else {
			out[pred] = nil
		}
	}
	return renderDump(out)
}

func canonTuples(ts []datalog.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = tkey(t)
	}
	sort.Strings(out)
	return out
}

func sortTuples(ts []datalog.Tuple) []datalog.Tuple {
	sort.Slice(ts, func(i, j int) bool { return tkey(ts[i]) < tkey(ts[j]) })
	return ts
}

func renderDump(m map[string][]datalog.Tuple) string {
	preds := make([]string, 0, len(m))
	for pred := range m {
		preds = append(preds, pred)
	}
	sort.Strings(preds)
	var b strings.Builder
	for _, pred := range preds {
		b.WriteString(pred)
		b.WriteString(":\n")
		for _, line := range canonTuples(m[pred]) {
			b.WriteString("  ")
			b.WriteString(line)
			b.WriteString("\n")
		}
	}
	return b.String()
}
