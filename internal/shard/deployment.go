package shard

import (
	"fmt"
	"sort"
	"strings"

	"hydro/internal/cluster"
	"hydro/internal/consensus"
	"hydro/internal/datalog"
	"hydro/internal/simnet"
)

// Options tunes a deployment.
type Options struct {
	// RetryAfter is the coordinator's stall watchdog: an attempt that makes
	// no progress for this long (virtual time) is restarted. Zero uses a
	// generous default.
	RetryAfter simnet.Time
	// Declared fixes partition columns for specific predicates (hlang
	// `partition(col)` table annotations), overriding the compiled hints.
	Declared map[string]int
	// Coordinators is the size of the replicated control plane (DESIGN.md
	// §13). Zero uses DefaultCoordinators; 1 is the degenerate
	// single-coordinator deployment (no failover — the oracle configuration
	// in the chaos suite).
	Coordinators int
}

// DefaultRetryAfter is far above one healthy barrier round-trip (sub-ms at
// LAN latencies) so only genuine stalls — down replicas, cut links — trip
// the attempt restart.
const DefaultRetryAfter simnet.Time = 1_000_000 // 1s virtual

// DefaultCoordinators replicates the control plane three ways: one fault
// leaves a quorum.
const DefaultCoordinators = 3

// Deployment is a datalog program running sharded across cluster-hosted
// replicas. Submit queues base-relation ticks; the coordinator commits
// them in order as the simulation runs; Dump reads back the converged
// fixpoint (union of shards, one copy of mirrored relations).
type Deployment struct {
	name         string
	net          *simnet.Network
	place        *Placement
	comps        []*compMeta
	arities      map[string]int
	edb          map[string]int
	replicas     []*replica
	replicaNames []string
	coordNames   []string
	coords       []*coordNode
	group        *consensus.Group
	retryAfter   simnet.Time
	submitted    uint64
	metrics      ctlMetrics
	stageHook    func(node string, tick, att uint64, stg int) // test injection point
}

// Deploy hosts one replica of prog on each named machine of cl, sharding
// base relations per the derived placement. edb maps base predicates to
// arities; derived predicates are inferred from the rules and must not
// overlap edb.
func Deploy(cl *cluster.Cluster, name string, prog *datalog.Program, edb map[string]int, machines []string, opts Options) (*Deployment, error) {
	if len(machines) < 1 {
		return nil, fmt.Errorf("shard: need at least one machine")
	}
	place, err := NewPlacement(prog, edb, len(machines), opts.Declared)
	if err != nil {
		return nil, err
	}
	comps, err := prog.Components()
	if err != nil {
		return nil, err
	}
	metas, err := buildCompMeta(comps, place)
	if err != nil {
		return nil, err
	}
	arities := map[string]int{}
	for pred, ar := range edb {
		arities[pred] = ar
	}
	for _, c := range comps {
		for _, r := range c.Rules {
			h := r.Head.Pred
			if _, isBase := edb[h]; isBase {
				return nil, fmt.Errorf("shard: %s is both a base relation and a rule head", h)
			}
			if ar, ok := arities[h]; ok && ar != len(r.Head.Args) {
				return nil, fmt.Errorf("shard: inconsistent arity for %s", h)
			}
			arities[h] = len(r.Head.Args)
		}
	}
	for _, pred := range place.Preds {
		if _, ok := arities[pred]; !ok {
			return nil, fmt.Errorf("shard: predicate %s has no declared arity (add it to edb)", pred)
		}
	}

	ncoord := opts.Coordinators
	if ncoord <= 0 {
		ncoord = DefaultCoordinators
	}
	d := &Deployment{
		name:         name,
		net:          cl.Net,
		place:        place,
		comps:        metas,
		arities:      arities,
		edb:          edb,
		replicaNames: machines,
		retryAfter:   opts.RetryAfter,
	}
	if d.retryAfter <= 0 {
		d.retryAfter = DefaultRetryAfter
	}
	for i := 0; i < ncoord; i++ {
		d.coordNames = append(d.coordNames, fmt.Sprintf("%s-coord%d", name, i))
	}
	for i := range machines {
		r := newReplica(d, i)
		d.replicas = append(d.replicas, r)
		cl.HostNode(machines[i], r.handle)
	}
	// The replicated control plane: one embedded Paxos participant per
	// coordinator, multiplexed with the BSP protocol on the same node
	// (coordNode.handle routes by message type). Coordinators live outside
	// the machine failure domains on purpose — the chaos suites fault them
	// independently of the data plane.
	d.group = consensus.NewEmbeddedGroup(cl.Net, d.coordNames, ctlSeed(name))
	for i, cname := range d.coordNames {
		cn := &coordNode{dep: d, idx: i, cons: d.group.Nodes[cname], st: newCtlState()}
		cn.cons.OnDecide = func(slot int, v any) { cn.applyDecree(v) }
		d.coords = append(d.coords, cn)
		cl.Net.AddNode(cname, cn.handle)
	}
	for _, cn := range d.coords {
		cn.armTimer()
	}
	return d, nil
}

// ctlSeed derives the control plane's deterministic RNG seed from the
// deployment name (FNV-1a), so same name + same simnet seed ⇒ same
// election and backoff schedule.
func ctlSeed(name string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return int64(h & (1<<62 - 1))
}

// Placement returns the deployment's predicate placement.
func (d *Deployment) Placement() *Placement { return d.place }

// Replicas returns a copy of the replica node names in replica-index
// order. (A fresh slice every call: callers shuffle or truncate these in
// chaos tests, and aliasing the live routing table would corrupt the
// deployment — the same live-slice bug class as the old consensus Peek.)
func (d *Deployment) Replicas() []string { return append([]string(nil), d.replicaNames...) }

// Coordinators returns a copy of the coordinator node names in index
// order.
func (d *Deployment) Coordinators() []string { return append([]string(nil), d.coordNames...) }

// Leader returns the node name of the coordinator holding the current
// epoch's lease, per the most-caught-up coordinator's view.
func (d *Deployment) Leader() string { return d.coordNames[d.view().st.leader] }

// view returns the coordinator with the longest applied decree prefix —
// the freshest replicated view (ties break to the lowest index).
func (d *Deployment) view() *coordNode {
	best := d.coords[0]
	for _, cn := range d.coords[1:] {
		if cn.cons.Applied() > best.cons.Applied() {
			best = cn
		}
	}
	return best
}

// KillCoordinator takes a coordinator off the network (its timers are
// discarded; state is kept, as with any simnet crash).
func (d *Deployment) KillCoordinator(name string) { d.net.SetDown(name, true) }

// RecoverCoordinator brings a killed coordinator back and re-arms it: a
// recovered node first catches up on the decree log, then resumes
// whatever role the log assigns it.
func (d *Deployment) RecoverCoordinator(name string) {
	d.net.SetDown(name, false)
	d.net.After(name, 0, recoverKickMsg{})
}

// Submit queues one tick of base-relation ops (applied owner-side with
// insert-if-absent / delete-if-present semantics, so redundant ops are
// no-ops). Admission is a decree on the replicated control log, proposed
// through every live coordinator so no single crash can lose the tick —
// the sequence guard in ctlState collapses the duplicates. The ops slice
// is copied: callers may reuse their buffer.
func (d *Deployment) Submit(ops []datalog.DeltaOp) error {
	for _, op := range ops {
		ar, ok := d.edb[op.Pred]
		if !ok {
			return fmt.Errorf("shard: %s is not a base relation", op.Pred)
		}
		if len(op.T) != ar {
			return fmt.Errorf("shard: %s arity %d, got tuple %v", op.Pred, ar, op.T)
		}
	}
	var live []*coordNode
	for _, cn := range d.coords {
		if !d.net.Down(cn.name()) {
			live = append(live, cn)
		}
	}
	if len(live) == 0 {
		// Never count a tick no coordinator heard about: Settle would wait
		// forever for a submission that exists only in this counter.
		return fmt.Errorf("shard: no live coordinator to accept tick %d", d.submitted+1)
	}
	cp := append([]datalog.DeltaOp(nil), ops...)
	seq := d.submitted
	d.submitted++
	for _, cn := range live {
		cn.cons.Propose(decreeSubmit{Seq: seq, Ops: cp})
	}
	return nil
}

// SubmittedTicks returns the number of ticks queued so far.
func (d *Deployment) SubmittedTicks() uint64 { return d.submitted }

// CommittedTicks returns the number of ticks committed on every data
// replica — the convergence frontier Dump is valid for. (The replicated
// control log can be ahead of this: a commit decree seals a tick before
// the broadcast lands.)
func (d *Deployment) CommittedTicks() uint64 {
	min := ^uint64(0)
	for _, r := range d.replicas {
		if r.committed < min {
			min = r.committed
		}
	}
	return min
}

// Settle steps the network until every submitted tick has committed on
// every replica, up to maxEvents deliveries. It reports whether the
// deployment converged.
func (d *Deployment) Settle(maxEvents int) bool {
	for i := 0; i < maxEvents; i++ {
		if d.CommittedTicks() >= d.submitted {
			return true
		}
		if !d.net.Step() {
			return d.CommittedTicks() >= d.submitted
		}
	}
	return d.CommittedTicks() >= d.submitted
}

// Dump returns the converged global contents of every predicate: the
// shard union for sharded relations, replica 0's copy for mirrored ones.
// Call after Settle.
func (d *Deployment) Dump() map[string][]datalog.Tuple {
	out := map[string][]datalog.Tuple{}
	for _, pred := range d.place.Preds {
		if d.place.Specs[pred].Mirrored {
			out[pred] = d.replicas[0].db.Get(pred).Tuples()
			continue
		}
		set := newTset()
		for _, r := range d.replicas {
			for _, t := range r.db.Get(pred).Tuples() {
				set.add(t)
			}
		}
		out[pred] = sortTuples(set.ts)
	}
	return out
}

// DumpString renders Dump canonically (predicates sorted, tuples in
// canonical order) for byte-level comparison across shard counts and
// against a single-node reference.
func (d *Deployment) DumpString() string { return renderDump(d.Dump()) }

// CheckMirrors verifies every replica holds identical copies of each
// mirrored predicate — the core replication invariant, checked by the
// chaos tests after convergence.
func (d *Deployment) CheckMirrors() error {
	for _, pred := range d.place.Preds {
		if !d.place.Specs[pred].Mirrored {
			continue
		}
		ref := canonTuples(d.replicas[0].db.Get(pred).Tuples())
		for i := 1; i < len(d.replicas); i++ {
			got := canonTuples(d.replicas[i].db.Get(pred).Tuples())
			if strings.Join(got, "\n") != strings.Join(ref, "\n") {
				return fmt.Errorf("shard: mirrored %s diverged between replica 0 and %d", pred, i)
			}
		}
	}
	return nil
}

// DumpDatabase renders db's relations for preds in the same canonical form
// as DumpString — the single-node reference side of the equivalence tests.
func DumpDatabase(db *datalog.Database, preds []string) string {
	out := map[string][]datalog.Tuple{}
	for _, pred := range preds {
		if rel := db.Get(pred); rel != nil {
			out[pred] = rel.Tuples()
		} else {
			out[pred] = nil
		}
	}
	return renderDump(out)
}

func canonTuples(ts []datalog.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = tkey(t)
	}
	sort.Strings(out)
	return out
}

func sortTuples(ts []datalog.Tuple) []datalog.Tuple {
	sort.Slice(ts, func(i, j int) bool { return tkey(ts[i]) < tkey(ts[j]) })
	return ts
}

func renderDump(m map[string][]datalog.Tuple) string {
	preds := make([]string, 0, len(m))
	for pred := range m {
		preds = append(preds, pred)
	}
	sort.Strings(preds)
	var b strings.Builder
	for _, pred := range preds {
		b.WriteString(pred)
		b.WriteString(":\n")
		for _, line := range canonTuples(m[pred]) {
			b.WriteString("  ")
			b.WriteString(line)
			b.WriteString("\n")
		}
	}
	return b.String()
}
