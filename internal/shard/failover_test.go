package shard_test

import (
	"fmt"
	"math/rand"
	"testing"

	"hydro/internal/cluster"
	"hydro/internal/datalog"
	"hydro/internal/shard"
	"hydro/internal/simnet"
	"hydro/internal/target"
)

// The failover chaos suite (DESIGN.md §13): kill or partition the acting
// leader at every coordinator stage and require the deployment to
// converge to the same byte-identical fixpoint as a never-failed
// single-coordinator deployment and the single-node incremental oracle,
// with zero double commits and zero lost ticks.

// newDeploymentOpts is newDeployment with explicit shard.Options — the
// chaos suite needs both the replicated default and the degenerate
// Coordinators:1 oracle configuration.
func newDeploymentOpts(t testing.TB, prog *datalog.Program, edb map[string]int, n int, seed int64, opts shard.Options) (*cluster.Cluster, *shard.Deployment) {
	t.Helper()
	topo := cluster.NewTopology(3, 2, 2, cluster.ClassSmall)
	cl := cluster.New(topo, simnet.DefaultConfig(seed))
	machines, err := target.PlaceReplicas(topo, n)
	if err != nil {
		t.Fatalf("PlaceReplicas(%d): %v", n, err)
	}
	dep, err := shard.Deploy(cl, fmt.Sprintf("dep%d", n), prog, edb, machines, opts)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	return cl, dep
}

// failoverStages is the kill schedule: every driver stage from prepare
// through commit.
var failoverStages = []int{
	shard.StagePrepare, shard.StageOps, shard.StageCompBegin, shard.StageRound,
	shard.StageApply, shard.StageRecompute, shard.StageDecide, shard.StageCommit,
}

func stageName(s int) string {
	names := map[int]string{
		shard.StageIdle: "idle", shard.StagePrepare: "prepare", shard.StageOps: "ops",
		shard.StageCompBegin: "compBegin", shard.StageRound: "round", shard.StageApply: "apply",
		shard.StageRecompute: "recompute", shard.StageDecide: "decide", shard.StageCommit: "commit",
	}
	return names[s]
}

// isolate cuts every link between node and the rest of the deployment —
// a partitioned leader keeps its timers and its delusions, unlike a
// killed one.
func isolate(net *simnet.Network, dep *shard.Deployment, node string) {
	for _, other := range append(dep.Coordinators(), dep.Replicas()...) {
		if other != node {
			net.Partition(node, other)
		}
	}
}

func healAll(net *simnet.Network, dep *shard.Deployment, node string) {
	for _, other := range append(dep.Coordinators(), dep.Replicas()...) {
		if other != node {
			net.Heal(node, other)
		}
	}
}

// failoverRules covers every driver stage: the linear TC layer drives
// DRed rounds (stRound/stApply), and the negation layer makes its
// component non-monotone (stRecompute).
var failoverRules = append(append([]datalog.Rule{}, tcRules...), datalog.Rule{
	Head: datalog.Atom{Pred: "dead", Args: []datalog.Term{datalog.V("x")}},
	Body: []datalog.Literal{
		{Atom: datalog.Atom{Pred: "node", Args: []datalog.Term{datalog.V("x")}}},
		{Atom: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("x")}}, Negated: true},
	},
})

var failoverTicks = [][]datalog.DeltaOp{
	{ins("edge", "a", "b"), ins("edge", "b", "c"), ins("node", "a"), ins("node", "c")},
	{ins("edge", "c", "a"), ins("node", "b"), ins("edge", "c", "d")}, // closes a cycle
	{del("edge", "b", "c"), ins("edge", "b", "d")},                   // cut mid-cycle: delete-heavy DRed
	{del("edge", "c", "d"), ins("edge", "d", "a"), ins("node", "d")},
}

var probeTick = []datalog.DeltaOp{ins("edge", "p", "q"), ins("node", "p")}

// runFailoverScenario drives ticks through a replicated deployment whose
// leader is killed (or partitioned) the first time the driver reaches
// `stage` on tick `killTick`, comparing every settled tick against a
// never-failed single-coordinator deployment and the single-node
// incremental oracle. It returns the name of the faulted coordinator
// ("" if the stage never fired).
func runFailoverScenario(t *testing.T, rules []datalog.Rule, ticks [][]datalog.DeltaOp,
	n int, seed int64, stage int, killTick uint64, partition bool, fallback bool) string {
	t.Helper()
	prog, err := datalog.NewProgram(rules...)
	if err != nil {
		t.Fatalf("bad program: %v", err)
	}
	oprog, err := datalog.NewProgram(rules...)
	if err != nil {
		t.Fatal(err)
	}
	cl, dep := newDeploymentOpts(t, prog, tcEDB, n, seed, shard.Options{})
	_, oracleDep := newDeploymentOpts(t, oprog, tcEDB, n, seed, shard.Options{Coordinators: 1})
	ref := newOracle(t, prog, tcEDB)

	faulted := ""
	dep.SetStageHook(func(node string, tick, att uint64, stg int) {
		if faulted != "" {
			return
		}
		hit := stg == stage && tick == killTick
		// Fallback for randomized programs where the target stage may never
		// fire: fault at whatever stage the driver is in two ticks later.
		if fallback && !hit && tick >= killTick+2 && stg != shard.StageIdle {
			hit = true
		}
		if !hit {
			return
		}
		faulted = node
		if partition {
			isolate(cl.Net, dep, node)
		} else {
			dep.KillCoordinator(node)
		}
	})

	check := func(i int, label string) {
		t.Helper()
		want := ref.dump(dep.Placement().Preds)
		if got := dep.DumpString(); got != want {
			t.Fatalf("tick %d (%s): replicated deployment diverged:\n%s\nwant:\n%s", i, label, got, want)
		}
		if got := oracleDep.DumpString(); got != want {
			t.Fatalf("tick %d (%s): single-coordinator oracle diverged:\n%s\nwant:\n%s", i, label, got, want)
		}
		if err := dep.CheckMirrors(); err != nil {
			t.Fatalf("tick %d (%s): %v", i, label, err)
		}
	}
	for i, ops := range ticks {
		if err := dep.Submit(ops); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
		if err := oracleDep.Submit(ops); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
		if !dep.Settle(settleBudget) {
			t.Fatalf("tick %d did not settle (stage=%s partition=%v):\n%s",
				i, stageName(stage), partition, dep.DebugString())
		}
		if !oracleDep.Settle(settleBudget) {
			t.Fatalf("tick %d: oracle did not settle", i)
		}
		ref.tick(t, ops)
		check(i, "under fault")
	}
	m := dep.Metrics()
	if m.DoubleCommits != 0 {
		t.Fatalf("double commits: %d", m.DoubleCommits)
	}
	if faulted != "" && m.Elections < 1 {
		t.Fatalf("leader faulted at %s but no election happened: %+v", stageName(stage), m)
	}
	if m.CommittedTicks != uint64(len(ticks)) {
		t.Fatalf("lost ticks: committed %d of %d", m.CommittedTicks, len(ticks))
	}

	// Recover the faulted coordinator and prove the deployment still
	// makes progress (and the rejoined node does no damage).
	if faulted != "" {
		if partition {
			healAll(cl.Net, dep, faulted)
		}
		dep.RecoverCoordinator(faulted)
	}
	if err := dep.Submit(probeTick); err != nil {
		t.Fatal(err)
	}
	if err := oracleDep.Submit(probeTick); err != nil {
		t.Fatal(err)
	}
	if !dep.Settle(settleBudget) {
		t.Fatalf("probe tick after recovery did not settle:\n%s", dep.DebugString())
	}
	if !oracleDep.Settle(settleBudget) {
		t.Fatal("oracle probe tick did not settle")
	}
	ref.tick(t, probeTick)
	check(len(ticks), "after recovery")
	if m := dep.Metrics(); m.DoubleCommits != 0 {
		t.Fatalf("double commits after recovery: %d", m.DoubleCommits)
	}
	return faulted
}

// TestFailoverLeaderKillEveryStage kills — and separately partitions —
// the acting leader at every driver stage from prepare through commit on
// a fixed workload that reaches all of them, requiring byte-identical
// fixpoints against both oracles every time.
func TestFailoverLeaderKillEveryStage(t *testing.T) {
	for _, stage := range failoverStages {
		for _, partition := range []bool{false, true} {
			stage, partition := stage, partition
			mode := "kill"
			if partition {
				mode = "partition"
			}
			t.Run(fmt.Sprintf("%s-%s", stageName(stage), mode), func(t *testing.T) {
				t.Parallel()
				faulted := runFailoverScenario(t, failoverRules, failoverTicks, 3, 404, stage, 2, partition, false)
				if faulted == "" {
					t.Fatalf("stage %s never fired on tick 2 — kill schedule has a coverage hole", stageName(stage))
				}
			})
		}
	}
}

// TestFailoverChaos50Seeds is the randomized sweep: 50 seeds of random
// programs and delete-heavy tick sequences, each with the leader faulted
// at a seed-chosen stage (kill on even seeds, partition on odd), always
// compared against the never-failed single-coordinator deployment and
// the single-node incremental fixpoint.
func TestFailoverChaos50Seeds(t *testing.T) {
	if testing.Short() {
		t.Skip("50-seed sweep")
	}
	for seed := int64(0); seed < 50; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rules := randShardRules(rand.New(rand.NewSource(seed)))
			ticks := randTicks(rand.New(rand.NewSource(seed ^ 0x5eed)))
			stage := failoverStages[seed%int64(len(failoverStages))]
			n := 2 + int(seed%3)
			faulted := runFailoverScenario(t, rules, ticks, n, 1000+seed, stage, 2, seed%2 == 1, true)
			if faulted == "" {
				t.Fatalf("no fault injected for seed %d", seed)
			}
		})
	}
}

// TestFailoverCommitFinalize pins the decree/broadcast boundary: a leader
// killed at stDecide (commit not yet on the log) forces the successor to
// re-drive the tick with a fresh attempt, while a leader killed at
// stCommit (commit decreed, broadcast lost) must be finalized by the
// successor with NO new attempt — re-driving a sealed tick would be a
// correctness bug, not a retry.
func TestFailoverCommitFinalize(t *testing.T) {
	t.Run("decide-redrives", func(t *testing.T) {
		runFailoverScenario(t, failoverRules, failoverTicks, 3, 405, shard.StageDecide, 2, false, false)
		// Equivalence is the load-bearing assertion; attempt accounting below.
	})
	t.Run("commit-finalizes", func(t *testing.T) {
		prog, err := datalog.NewProgram(failoverRules...)
		if err != nil {
			t.Fatal(err)
		}
		_, dep := newDeploymentOpts(t, prog, tcEDB, 3, 406, shard.Options{})
		killed := ""
		dep.SetStageHook(func(node string, tick, att uint64, stg int) {
			if killed == "" && tick == 2 && stg == shard.StageCommit {
				killed = node
				dep.KillCoordinator(node)
			}
		})
		ref := newOracle(t, prog, tcEDB)
		for i, ops := range failoverTicks {
			if err := dep.Submit(ops); err != nil {
				t.Fatal(err)
			}
			if !dep.Settle(settleBudget) {
				t.Fatalf("tick %d did not settle:\n%s", i, dep.DebugString())
			}
			ref.tick(t, ops)
		}
		if killed == "" {
			t.Fatal("stCommit never fired on tick 2")
		}
		m := dep.Metrics()
		// The tick whose commit broadcast died with the leader was already
		// sealed on the quorum log: the successor finalizes it, so every
		// tick still costs exactly one attempt decree.
		if m.AttemptDecrees != uint64(len(failoverTicks)) {
			t.Fatalf("commit-finalize re-drove a sealed tick: %d attempt decrees for %d ticks", m.AttemptDecrees, len(failoverTicks))
		}
		if m.Elections < 1 || m.DoubleCommits != 0 {
			t.Fatalf("bad failover metrics: %+v", m)
		}
		if got, want := dep.DumpString(), ref.dump(dep.Placement().Preds); got != want {
			t.Fatalf("diverged:\n%s\nwant:\n%s", got, want)
		}
	})
}

// TestDeposedLeaderFenced delivers a deposed leader's stale commit
// broadcasts to the data replicas AFTER its successor has moved the
// epoch forward, and proves the epoch fence drops every one of them: the
// fenced counter rises, replica state does not move, and the deposed
// leader steps down once it rejoins the control plane.
func TestDeposedLeaderFenced(t *testing.T) {
	prog, err := datalog.NewProgram(tcRules...)
	if err != nil {
		t.Fatal(err)
	}
	cl, dep := newDeploymentOpts(t, prog, tcEDB, 3, 777, shard.Options{})
	ref := newOracle(t, prog, tcEDB)

	tick1 := []datalog.DeltaOp{ins("edge", "a", "b"), ins("edge", "b", "c")}
	if err := dep.Submit(tick1); err != nil {
		t.Fatal(err)
	}
	if !dep.Settle(settleBudget) {
		t.Fatal("tick 1 did not settle")
	}
	ref.tick(t, tick1)

	// Partition the leader from everything the instant it enters stCommit
	// for tick 2: the commit is decreed on the quorum log, but the
	// broadcast never leaves the leader's island.
	deposed := ""
	dep.SetStageHook(func(node string, tick, att uint64, stg int) {
		if deposed == "" && tick == 2 && stg == shard.StageCommit {
			deposed = node
			isolate(cl.Net, dep, node)
		}
	})
	tick2 := []datalog.DeltaOp{ins("edge", "c", "d"), del("edge", "a", "b")}
	if err := dep.Submit(tick2); err != nil {
		t.Fatal(err)
	}
	if !dep.Settle(settleBudget) {
		t.Fatalf("tick 2 did not settle past the deposed leader:\n%s", dep.DebugString())
	}
	ref.tick(t, tick2)
	if deposed == "" {
		t.Fatal("stCommit never fired on tick 2")
	}
	m := dep.Metrics()
	if m.Elections < 1 || m.Epoch < 2 {
		t.Fatalf("no election after isolating the leader: %+v", m)
	}
	if m.AttemptDecrees != 2 {
		t.Fatalf("sealed tick was re-driven: %d attempt decrees for 2 ticks", m.AttemptDecrees)
	}
	settled := dep.DumpString()
	if want := ref.dump(dep.Placement().Preds); settled != want {
		t.Fatalf("diverged after failover:\n%s\nwant:\n%s", settled, want)
	}

	// Heal ONLY the leader→replica links: the deposed leader still
	// believes in epoch 1, and its stCommit watchdog keeps re-broadcasting
	// the stale commit — now those broadcasts actually arrive.
	for _, r := range dep.Replicas() {
		cl.Net.Heal(deposed, r)
	}
	fencedBefore := m.FencedCommits
	cl.Net.RunUntil(cl.Net.Now() + 5*shard.DefaultRetryAfter)
	m = dep.Metrics()
	if m.FencedCommits <= fencedBefore {
		t.Fatalf("deposed leader's stale commits were never delivered/fenced: %+v", m)
	}
	if m.DoubleCommits != 0 {
		t.Fatalf("stale commit double-committed: %+v", m)
	}
	if got := dep.DumpString(); got != settled {
		t.Fatalf("stale commit broadcasts moved replica state:\n%s\nwas:\n%s", got, settled)
	}
	if m.CommittedTicks != 2 {
		t.Fatalf("committed ticks moved: %d", m.CommittedTicks)
	}

	// Full heal: the deposed leader hears a higher epoch, catches up on
	// the decree log, and steps down.
	healAll(cl.Net, dep, deposed)
	cl.Net.RunUntil(cl.Net.Now() + 10*shard.DefaultRetryAfter)
	idx := -1
	for i, name := range dep.Coordinators() {
		if name == deposed {
			idx = i
		}
	}
	cs := dep.ControlStates()[idx]
	if cs.Epoch < 2 || cs.Driving {
		t.Fatalf("deposed leader did not step down after rejoining: %+v", cs)
	}

	// And the deployment still works end to end.
	tick3 := []datalog.DeltaOp{ins("edge", "d", "a")}
	if err := dep.Submit(tick3); err != nil {
		t.Fatal(err)
	}
	if !dep.Settle(settleBudget) {
		t.Fatal("tick 3 did not settle after full heal")
	}
	ref.tick(t, tick3)
	if got, want := dep.DumpString(), ref.dump(dep.Placement().Preds); got != want {
		t.Fatalf("diverged after full heal:\n%s\nwant:\n%s", got, want)
	}
}

// TestCoordinatorObservability pins the failover metrics snapshot: a
// healthy run reports epoch 1, zero elections and live heartbeats; a
// leader kill moves the epoch, the election count and the leader-change
// timestamp.
func TestCoordinatorObservability(t *testing.T) {
	prog, err := datalog.NewProgram(tcRules...)
	if err != nil {
		t.Fatal(err)
	}
	cl, dep := newDeploymentOpts(t, prog, tcEDB, 3, 31, shard.Options{})
	for _, ops := range failoverTicks[:2] {
		if err := dep.Submit(ops); err != nil {
			t.Fatal(err)
		}
		if !dep.Settle(settleBudget) {
			t.Fatal("tick did not settle")
		}
	}
	// Let heartbeat timers tick in the idle deployment.
	cl.Net.RunUntil(cl.Net.Now() + 5*shard.DefaultRetryAfter)
	m := dep.Metrics()
	if m.Epoch != 1 || m.Elections != 0 || m.LastLeaderChange != 0 {
		t.Fatalf("healthy run shows failover activity: %+v", m)
	}
	if m.Leader != dep.Coordinators()[0] {
		t.Fatalf("initial leader = %s", m.Leader)
	}
	if m.Heartbeats == 0 {
		t.Fatal("no heartbeats in an idle healthy deployment")
	}
	if m.SubmitDecrees != 2 || m.CommitDecrees != 2 || m.AttemptDecrees != 2 || m.CommittedTicks != 2 {
		t.Fatalf("decree accounting off: %+v", m)
	}
	if m.DoubleCommits != 0 {
		t.Fatalf("double commits: %+v", m)
	}

	old := m.Leader
	dep.KillCoordinator(old)
	cl.Net.RunUntil(cl.Net.Now() + 20*shard.DefaultRetryAfter)
	m = dep.Metrics()
	if m.Epoch < 2 || m.Elections < 1 {
		t.Fatalf("no election after leader kill: %+v", m)
	}
	if m.Leader == old {
		t.Fatalf("leader did not move: %+v", m)
	}
	if m.LastLeaderChange == 0 {
		t.Fatalf("leader-change timestamp not recorded: %+v", m)
	}
}

// TestSubmitFailsWithEveryCoordinatorDown pins the Submit liveness
// contract: a tick no coordinator heard about must be rejected (and not
// counted), or Settle would wait forever on a submission that exists only
// in the client-side counter.
func TestSubmitFailsWithEveryCoordinatorDown(t *testing.T) {
	prog, err := datalog.NewProgram(tcRules...)
	if err != nil {
		t.Fatal(err)
	}
	_, dep := newDeploymentOpts(t, prog, tcEDB, 2, 77, shard.Options{})
	coords := dep.Coordinators()
	for _, c := range coords {
		dep.KillCoordinator(c)
	}
	before := dep.SubmittedTicks()
	if err := dep.Submit([]datalog.DeltaOp{ins("edge", "a", "b")}); err == nil {
		t.Fatal("Submit with every coordinator down returned nil")
	}
	if dep.SubmittedTicks() != before {
		t.Fatal("rejected submit still counted a tick")
	}
	// Restore a quorum; the deployment must accept and converge again.
	dep.RecoverCoordinator(coords[0])
	dep.RecoverCoordinator(coords[1])
	if err := dep.Submit([]datalog.DeltaOp{ins("edge", "a", "b")}); err != nil {
		t.Fatalf("Submit after quorum recovery: %v", err)
	}
	if !dep.Settle(settleBudget) {
		t.Fatalf("tick did not settle after quorum recovery:\n%s", dep.DebugString())
	}
}
