package shard

import (
	"fmt"

	"hydro/internal/datalog"
)

// Sink adapts a Deployment to the transducer's DurabilitySink seam: a
// runtime in incremental mode journals every committed tick's base ops
// through Append/Committed, and the sink forwards each committed tick to
// the sharded deployment as a Submit. The runtime's local fixpoint and
// the deployment's distributed one then converge to the same relations —
// a single-node transducer teeing its ticks into a replicated cluster.
//
// Append is called before the runtime applies the tick, so the recorded
// ops are exactly the base changes (no derived cascade yet); Committed
// seals them; AbortLast drops a tick the evaluator rejected.
type Sink struct {
	dep    *Deployment
	staged [][]datalog.DeltaOp
}

// NewSink returns a sink feeding dep.
func NewSink(dep *Deployment) *Sink { return &Sink{dep: dep} }

// Append stages the tick's base ops (copied: the runtime extends the same
// slice with the derived cascade during Apply).
func (s *Sink) Append(d *datalog.Delta) error {
	ops := append([]datalog.DeltaOp(nil), d.Ops()...)
	s.staged = append(s.staged, ops)
	return nil
}

// AbortLast drops the most recently appended tick.
func (s *Sink) AbortLast() error {
	if len(s.staged) == 0 {
		return fmt.Errorf("shard: AbortLast with no staged tick")
	}
	s.staged = s.staged[:len(s.staged)-1]
	return nil
}

// Committed submits every staged tick to the deployment, preserving order.
// On a Submit failure the already-submitted prefix is dropped from the
// stage — keeping it would re-Submit those ticks on the next Committed and
// double-apply them on the cluster — while the failed tick and its
// successors stay staged for retry.
func (s *Sink) Committed(*datalog.Incremental) error {
	for i, ops := range s.staged {
		if err := s.dep.Submit(ops); err != nil {
			s.staged = s.staged[i:]
			return err
		}
	}
	s.staged = nil
	return nil
}
