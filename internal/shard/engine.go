package shard

import (
	"fmt"
	"strings"

	"hydro/internal/datalog"
)

// tset is an insertion-ordered tuple set keyed by content — the engine's
// per-predicate bookkeeping for net tick changes (which doubles as the
// DRed deletion overlay). Iteration over ts is deterministic.
type tset struct {
	m  map[string]int // key → index into ts
	ts []datalog.Tuple
}

func newTset() *tset { return &tset{m: map[string]int{}} }

// tkey renders a tuple with type tags so int64(1) and "1" never collide.
func tkey(t datalog.Tuple) string {
	var b strings.Builder
	for _, v := range t {
		fmt.Fprintf(&b, "%T:%v|", v, v)
	}
	return b.String()
}

func (s *tset) has(t datalog.Tuple) bool {
	_, ok := s.m[tkey(t)]
	return ok
}

func (s *tset) add(t datalog.Tuple) {
	k := tkey(t)
	if _, ok := s.m[k]; !ok {
		s.m[k] = len(s.ts)
		s.ts = append(s.ts, t)
	}
}

// remove drops t, preserving the order of the survivors.
func (s *tset) remove(t datalog.Tuple) {
	k := tkey(t)
	i, ok := s.m[k]
	if !ok {
		return
	}
	delete(s.m, k)
	copy(s.ts[i:], s.ts[i+1:])
	s.ts = s.ts[:len(s.ts)-1]
	for j := i; j < len(s.ts); j++ {
		s.m[tkey(s.ts[j])] = j
	}
}

func (s *tset) len() int {
	if s == nil {
		return 0
	}
	return len(s.ts)
}

// driveInfo is the precomputed shipping decision for one (rule, body
// position) drive.
type driveInfo struct {
	// designatedOnly: the driven predicate and every positive co-literal
	// are mirrored, so all replicas would derive identical emissions —
	// only the tuple's designated driver (whole-tuple hash) drives it.
	designatedOnly bool
}

// compMeta is the immutable per-component evaluation metadata shared by
// every replica of a deployment.
type compMeta struct {
	idx       int
	rules     []datalog.Rule
	heads     []string
	inputs    []string
	recursive bool
	nonMono   bool
	// sub re-evaluates a non-monotone component locally: its inputs are
	// fully mirrored, so clearing the heads and running the component's
	// own fixpoint on the replica database reproduces single-node
	// semantics (negation, aggregates) exactly.
	sub *datalog.Program
	// drives[ri][pos] describes driving rule ri's body position pos.
	drives [][]driveInfo
}

func buildCompMeta(comps []datalog.Component, place *Placement) ([]*compMeta, error) {
	var out []*compMeta
	for ci, c := range comps {
		m := &compMeta{
			idx:       ci,
			rules:     c.Rules,
			heads:     c.Heads,
			inputs:    c.Inputs,
			recursive: c.Recursive,
			nonMono:   c.NonMono,
		}
		if c.NonMono {
			sub, err := datalog.NewProgram(c.Rules...)
			if err != nil {
				return nil, fmt.Errorf("shard: compiling component %d: %w", ci, err)
			}
			sub.SetParallelism(1) // replicas evaluate inside a deterministic event loop
			m.sub = sub
		} else {
			m.drives = make([][]driveInfo, len(c.Rules))
			for ri, r := range c.Rules {
				m.drives[ri] = make([]driveInfo, len(r.Body))
				for i := range r.Body {
					allMirrored := place.Specs[r.Body[i].Pred].Mirrored
					for j, co := range r.Body {
						if j != i && !place.Specs[co.Pred].Mirrored {
							allMirrored = false
						}
					}
					m.drives[ri][i] = driveInfo{designatedOnly: allMirrored}
				}
			}
		}
		out = append(out, m)
	}
	return out, nil
}

// driveRule enumerates the body bindings of rule r in which position di is
// one of the frontier tuples, joining every other (positive, monotone
// components have no negation) literal against the local database —
// augmented with the per-predicate deletion overlay when overlay is
// non-nil (DRed over-deletion joins against the pre-deletion view) — and
// emits the resulting head tuples in deterministic frontier order.
func driveRule(db *datalog.Database, r datalog.Rule, di int, frontier []datalog.Tuple,
	overlay map[string]*tset, emit func(datalog.Tuple)) {
	lit := r.Body[di]
	for _, dt := range frontier {
		if len(lit.Args) != len(dt) {
			continue
		}
		b := map[string]any{}
		ok := true
		for j, a := range lit.Args {
			if !a.IsVar() {
				if a.Const != dt[j] {
					ok = false
					break
				}
				continue
			}
			if v, bound := b[a.Var]; bound {
				if v != dt[j] {
					ok = false
					break
				}
				continue
			}
			b[a.Var] = dt[j]
		}
		if ok {
			walkRule(db, r, di, 0, b, overlay, emit)
		}
	}
}

func walkRule(db *datalog.Database, r datalog.Rule, di, j int, b map[string]any,
	overlay map[string]*tset, emit func(datalog.Tuple)) {
	if j == len(r.Body) {
		for _, f := range r.Filters {
			l, okL := resolveTerm(f.L, b)
			rv, okR := resolveTerm(f.R, b)
			if !okL || !okR || !datalog.Compare(f.Op, l, rv) {
				return
			}
		}
		head := make(datalog.Tuple, len(r.Head.Args))
		for k, t := range r.Head.Args {
			v, ok := resolveTerm(t, b)
			if !ok {
				return
			}
			head[k] = v
		}
		emit(head)
		return
	}
	if j == di {
		walkRule(db, r, di, j+1, b, overlay, emit)
		return
	}
	l := r.Body[j]
	var pos []int
	var vals []any
	for k, a := range l.Args {
		if v, ok := resolveTerm(a, b); ok {
			pos = append(pos, k)
			vals = append(vals, v)
		}
	}
	match := func(t datalog.Tuple) {
		if len(t) != len(l.Args) {
			return
		}
		nb := b
		cloned := false
		for k, a := range l.Args {
			if !a.IsVar() {
				if t[k] != a.Const {
					return
				}
				continue
			}
			if v, bound := nb[a.Var]; bound {
				if v != t[k] {
					return
				}
				continue
			}
			if !cloned {
				nb = cloneBinding(b)
				cloned = true
			}
			nb[a.Var] = t[k]
		}
		walkRule(db, r, di, j+1, nb, overlay, emit)
	}
	if rel := db.Get(l.Pred); rel != nil {
		for _, t := range rel.Lookup(pos, vals) {
			match(t)
		}
	}
	if overlay != nil {
		if ov := overlay[l.Pred]; ov != nil {
			for _, t := range ov.ts {
				if projMatches(t, pos, vals) {
					match(t)
				}
			}
		}
	}
}

func resolveTerm(t datalog.Term, b map[string]any) (any, bool) {
	if !t.IsVar() {
		return t.Const, true
	}
	v, ok := b[t.Var]
	return v, ok
}

func cloneBinding(b map[string]any) map[string]any {
	c := make(map[string]any, len(b)+2)
	for k, v := range b {
		c[k] = v
	}
	return c
}

func projMatches(t datalog.Tuple, pos []int, vals []any) bool {
	for i, p := range pos {
		if p >= len(t) || t[p] != vals[i] {
			return false
		}
	}
	return true
}
