package shard

import (
	"sync/atomic"

	"hydro/internal/simnet"
)

// ctlMetrics holds the control plane's observational counters — the ones
// that are properties of message delivery rather than of the replicated
// log (those live in ctlState, where they are deterministic and agreed).
// Flat atomics in the internal/serve style: cheap to bump on the hot
// path, snapshotted on demand.
type ctlMetrics struct {
	fencedReqs    atomic.Uint64 // replica-side drops of stale-epoch requests/exchanges
	fencedCommits atomic.Uint64 // replica-side drops of stale-epoch commits
	heartbeats    atomic.Uint64 // leader heartbeats sent
	maxEpoch      atomic.Uint64 // highest epoch any coordinator has applied
	lastChange    atomic.Int64  // virtual time the highest epoch was first applied
}

// noteLeaderChange records the first application time of each new epoch:
// every coordinator applies the same elect decree, so a monotone
// CAS-on-epoch keeps exactly one timestamp per election.
func (m *ctlMetrics) noteLeaderChange(now simnet.Time, epoch uint64) {
	for {
		cur := m.maxEpoch.Load()
		if epoch <= cur {
			return
		}
		if m.maxEpoch.CompareAndSwap(cur, epoch) {
			m.lastChange.Store(int64(now))
			return
		}
	}
}

// Metrics is a point-in-time snapshot of the replicated control plane,
// read from the most-caught-up coordinator's replicated state plus the
// delivery-side atomics. Rendered by `benchtab` (experiment E14).
type Metrics struct {
	Epoch            uint64      // current leadership epoch
	Leader           string      // node name holding the epoch's lease
	Elections        uint64      // elect decrees applied
	LastLeaderChange simnet.Time // virtual time of the latest election
	SubmitDecrees    uint64      // ticks admitted to the replicated queue
	AttemptDecrees   uint64      // attempt starts/bumps on the log
	CommitDecrees    uint64      // ticks sealed on the log
	StaleDecrees     uint64      // decrees rejected by the state-machine guards
	DoubleCommits    uint64      // commit decrees for an already-sealed tick (invariant: 0)
	FencedReqs       uint64      // stale-epoch requests dropped by replicas
	FencedCommits    uint64      // stale-epoch commits dropped by replicas
	Heartbeats       uint64      // leader heartbeats sent
	CommittedTicks   uint64      // ticks committed on every data replica
}

// Metrics snapshots the control plane.
func (d *Deployment) Metrics() Metrics {
	st := &d.view().st
	return Metrics{
		Epoch:            st.epoch,
		Leader:           d.coordNames[st.leader],
		Elections:        st.elections,
		LastLeaderChange: simnet.Time(d.metrics.lastChange.Load()),
		SubmitDecrees:    st.submits,
		AttemptDecrees:   st.attempts,
		CommitDecrees:    st.commits,
		StaleDecrees:     st.stale,
		DoubleCommits:    st.doubleCommits,
		FencedReqs:       d.metrics.fencedReqs.Load(),
		FencedCommits:    d.metrics.fencedCommits.Load(),
		Heartbeats:       d.metrics.heartbeats.Load(),
		CommittedTicks:   d.CommittedTicks(),
	}
}
