// Package shard runs a datalog program as a distributed deployment over
// the simulated cluster: base relations are hash-partitioned by key across
// N replicas, each replica evaluates its shard locally, and exchange
// operators at evaluation-component boundaries ship derived (and DRed
// retracted) tuples to the replica that owns them. A coordinator
// sequences one BSP tick at a time and retries whole attempts on timeout,
// so the deployment converges to the exact single-node fixpoint even
// across failures, partitions and redelivery (DESIGN.md §11).
package shard

import (
	"fmt"
	"sort"

	"hydro/internal/datalog"
)

// Spec is the placement of one predicate across the replica set.
type Spec struct {
	// Mirrored replicates the full relation on every replica. Non-monotone
	// components (negation, aggregates) and predicates that defeat join
	// locality are mirrored; everything else is sharded.
	Mirrored bool
	// Col is the hash-partition column for sharded predicates; out-of-range
	// (-1) hashes the whole tuple.
	Col int
}

// Placement assigns every predicate of a program a Spec over N replicas.
type Placement struct {
	N     int
	Specs map[string]Spec
	// Preds is every placed predicate, sorted — the deterministic
	// iteration order for all per-predicate state in the engine.
	Preds []string
}

// Owner returns the replica owning tuple t of pred. For mirrored
// predicates every replica holds the tuple; Owner then returns the
// designated driver (whole-tuple hash), which callers use to pick one
// replica when exactly one should act.
func (p *Placement) Owner(pred string, t datalog.Tuple) int {
	s := p.Specs[pred]
	if s.Mirrored {
		return datalog.ShardOf(t, -1, p.N)
	}
	return datalog.ShardOf(t, s.Col, p.N)
}

// NewPlacement derives a placement for prog's predicates over n replicas.
// edb maps base predicates to arities; declared maps predicates to
// partition columns fixed by the source program (hlang `partition(col)`
// annotations) and takes precedence over the compiled plans' partition
// hints for the initial column choice.
//
// The analysis starts everything sharded (declared column, else hint
// column, else whole-tuple) and mirrors predicates until every remaining
// drive is local:
//
//   - every predicate of a non-monotone component (heads and all body
//     predicates, negated included) is mirrored — those components
//     recompute locally from full copies;
//   - within monotone components, driving a delta of a sharded predicate
//     through a rule requires every sharded co-literal to be anchored on
//     the driven literal's partition variable (so matching tuples live on
//     the driving replica); a co-literal that is not gets mirrored;
//   - a sharded driven literal whose partition column is not a variable
//     of the literal cannot anchor co-literals, so any sharded co-literal
//     it joins with is mirrored too.
//
// Mirroring only grows, so the loop reaches a fixpoint in at most one
// pass per predicate.
func NewPlacement(prog *datalog.Program, edb map[string]int, n int, declared map[string]int) (*Placement, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least 1 replica, got %d", n)
	}
	comps, err := prog.Components()
	if err != nil {
		return nil, err
	}
	hints, err := prog.PartitionHints()
	if err != nil {
		return nil, err
	}

	specs := map[string]Spec{}
	place := func(pred string) {
		if _, ok := specs[pred]; ok {
			return
		}
		col := -1
		if c, ok := hints[pred]; ok {
			col = c
		}
		if c, ok := declared[pred]; ok {
			col = c
		}
		specs[pred] = Spec{Col: col}
	}
	for pred := range edb {
		place(pred)
	}
	for _, c := range comps {
		for _, h := range c.Heads {
			place(h)
		}
		for _, in := range c.Inputs {
			place(in)
		}
	}

	mirror := func(pred string) bool {
		s := specs[pred]
		if s.Mirrored {
			return false
		}
		s.Mirrored = true
		specs[pred] = s
		return true
	}
	for _, c := range comps {
		if !c.NonMono {
			continue
		}
		for _, h := range c.Heads {
			mirror(h)
		}
		for _, in := range c.Inputs {
			mirror(in)
		}
	}

	for changed := true; changed; {
		changed = false
		for _, c := range comps {
			if c.NonMono {
				continue
			}
			for _, r := range c.Rules {
				for i, lit := range r.Body {
					// The required anchor variable for this drive
					// position: a sharded driven literal anchors on its
					// own partition variable (matches must live on the
					// owner); a mirrored one is driven on every replica
					// against local shards, so the sharded co-literals
					// need only agree with each other — the first one's
					// anchor becomes the requirement.
					anchor := ""
					fixed := false
					if ds := specs[lit.Pred]; !ds.Mirrored {
						fixed = true
						if ds.Col >= 0 && ds.Col < len(lit.Args) && lit.Args[ds.Col].IsVar() {
							anchor = lit.Args[ds.Col].Var
						}
					}
					for j, co := range r.Body {
						if j == i {
							continue
						}
						cs := specs[co.Pred]
						if cs.Mirrored {
							continue
						}
						coVar := ""
						if cs.Col >= 0 && cs.Col < len(co.Args) && co.Args[cs.Col].IsVar() {
							coVar = co.Args[cs.Col].Var
						}
						if !fixed && coVar != "" {
							anchor, fixed = coVar, true
							continue
						}
						if anchor == "" || coVar != anchor {
							if mirror(co.Pred) {
								changed = true
							}
						}
					}
				}
			}
		}
	}

	preds := make([]string, 0, len(specs))
	for pred := range specs {
		preds = append(preds, pred)
	}
	sort.Strings(preds)
	return &Placement{N: n, Specs: specs, Preds: preds}, nil
}
