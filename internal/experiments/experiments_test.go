package experiments

import (
	"strings"
	"testing"
)

// Smoke tests: every experiment runs at reduced scale and its table carries
// the shape assertions EXPERIMENTS.md records.

func TestE1Runs(t *testing.T) {
	tab := RunE1(50)
	if len(tab.Rows) != 1 || tab.Rows[0][0] != "50" {
		t.Fatalf("table = %+v", tab)
	}
}

func TestE2CoordinationTax(t *testing.T) {
	tab := RunE2([]int{3}, 3)
	mono := tab.Rows[0][1]
	paxos := tab.Rows[0][2]
	if mono >= paxos && len(mono) >= len(paxos) {
		t.Fatalf("monotone (%s) should be cheaper than paxos (%s)", mono, paxos)
	}
}

func TestE3SpeedupShape(t *testing.T) {
	tab := RunE3([]int{2000}, 50)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %v", tab.Rows)
	}
	if !strings.HasSuffix(tab.Rows[1][4], "×") || tab.Rows[1][4] == "1.0×" {
		t.Fatalf("synthesized speedup = %q", tab.Rows[1][4])
	}
}

func TestE4AvailabilityBoundary(t *testing.T) {
	tab := RunE4(5)
	if tab.Rows[2][3] != "100%" {
		t.Fatalf("2 failed AZs: %v", tab.Rows[2])
	}
	if tab.Rows[3][3] != "0%" {
		t.Fatalf("3 failed AZs: %v", tab.Rows[3])
	}
}

func TestE5Ordering(t *testing.T) {
	tab := RunE5(3)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %v", tab.Rows)
	}
	if tab.Rows[0][0] != "eventual" || tab.Rows[2][0] != "serializable" {
		t.Fatalf("rows = %v", tab.Rows)
	}
}

func TestE6GPUPlacement(t *testing.T) {
	tab := RunE6()
	found := false
	for _, row := range tab.Rows {
		if row[0] == "likelihood" && strings.Contains(row[1], "gpu") {
			found = true
		}
	}
	if !found {
		t.Fatalf("likelihood not on gpu: %v", tab.Rows)
	}
}

func TestE7TreeBeatsNaiveAtScale(t *testing.T) {
	tab := RunE7([]int{32})
	var naive, tree string
	for _, row := range tab.Rows {
		if row[0] == "bcast" && row[2] == "naive" {
			naive = row[4]
		}
		if row[0] == "bcast" && row[2] == "tree" {
			tree = row[4]
		}
	}
	if naive == "" || tree == "" {
		t.Fatalf("missing rows: %v", tab.Rows)
	}
}

func TestE8SemiNaiveWins(t *testing.T) {
	tab := RunE8([]int{48})
	if !strings.HasSuffix(tab.Rows[0][4], "×") {
		t.Fatalf("speedup column = %q", tab.Rows[0][4])
	}
}

func TestE9ScalingColumns(t *testing.T) {
	tab := RunE9([]int{4}, 200)
	if tab.Rows[0][3] == tab.Rows[1][3] {
		t.Fatalf("anna and locked scaling identical: %v", tab.Rows)
	}
}

func TestE10ZeroCoordination(t *testing.T) {
	tab := RunE10(3)
	if tab.Rows[0][2] != "0" {
		t.Fatalf("seal-at-client coordination = %q", tab.Rows[0][2])
	}
	if tab.Rows[1][2] == "0" {
		t.Fatal("consensus checkout reported zero messages")
	}
}

func TestE11AndE12Render(t *testing.T) {
	if s := RunE11().Render(); !strings.Contains(s, "vaccinate") {
		t.Fatalf("E11 render:\n%s", s)
	}
	if s := RunE12(50).Render(); !strings.Contains(s, "actors") {
		t.Fatalf("E12 render:\n%s", s)
	}
	if s := RunE5Mechanisms().Render(); !strings.Contains(s, "coordination") {
		t.Fatalf("E5b render:\n%s", s)
	}
}

func TestE14FailoverColumns(t *testing.T) {
	tab := RunE14(6)
	if len(tab.Rows) != 3 {
		t.Fatalf("expected 3 modes, got %d", len(tab.Rows))
	}
	// Healthy run: no elections, epoch stays 1.
	if tab.Rows[0][2] != "0" || tab.Rows[0][3] != "1" {
		t.Fatalf("healthy row shows failover activity: %v", tab.Rows[0])
	}
	// Faulted runs: at least one election each, epoch moved.
	for _, row := range tab.Rows[1:] {
		if row[2] == "0" || row[3] == "1" {
			t.Fatalf("faulted mode %s saw no election: %v", row[0], row)
		}
		if row[7] == "-" {
			t.Fatalf("faulted mode %s has no recovery window: %v", row[0], row)
		}
	}
}
