// Package experiments implements the paper-reproduction experiment suite
// (DESIGN.md §4). Each Run function regenerates one table: the rows the
// paper's artifacts imply, with this repository's measured values. The
// bench harness (bench_test.go) and cmd/benchtab both call into here.
package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"time"

	"hydro/internal/chestnut"
	"hydro/internal/cluster"
	"hydro/internal/consensus"
	"hydro/internal/consistency"
	"hydro/internal/crdt"
	"hydro/internal/datalog"
	"hydro/internal/hlang"
	"hydro/internal/hydrolysis"
	"hydro/internal/kvs"
	"hydro/internal/lift/actor"
	"hydro/internal/lift/future"
	"hydro/internal/lift/mpi"
	"hydro/internal/replica"
	"hydro/internal/shard"
	"hydro/internal/simnet"
	"hydro/internal/storage"
	"hydro/internal/target"
	"hydro/internal/transducer"
)

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// Render formats the table for terminal output.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

func covidUDFs() map[string]hydrolysis.UDF {
	return map[string]hydrolysis.UDF{
		"covid_predict": func(args []any) any { return float64(args[0].(int64)%100) / 100.0 },
	}
}

func fixedDelay(r *rand.Rand) int { return 1 }

// --- E1: Fig 2 ≡ Fig 3 — sequential vs compiled HydroLogic ---

// RunE1 drives identical random workloads through the compiled HydroLogic
// COVID app and reports equivalence plus throughput.
func RunE1(ops int) Table {
	c, err := hydrolysis.Compile(hlang.CovidSource, hydrolysis.Options{UDFs: covidUDFs()})
	if err != nil {
		panic(err)
	}
	rt, _ := c.Instantiate("n1", 1)
	rt.SetDelay(fixedDelay)
	r := rand.New(rand.NewSource(1))
	start := time.Now()
	for i := 0; i < ops; i++ {
		switch r.Intn(4) {
		case 0:
			rt.Inject("add_person", datalog.Tuple{int64(r.Intn(50)), "us"})
		case 1:
			rt.Inject("add_contact", datalog.Tuple{int64(r.Intn(50)), int64(r.Intn(50))})
		case 2:
			rt.Inject("diagnosed", datalog.Tuple{int64(r.Intn(50))})
		case 3:
			rt.Inject("vaccinate", datalog.Tuple{int64(r.Intn(50))})
		}
		rt.Tick()
	}
	rt.RunUntilIdle(100)
	elapsed := time.Since(start)
	st := rt.Stats()
	return Table{
		ID:     "E1",
		Title:  "COVID tracker: compiled HydroLogic vs sequential reference (Fig 2/3)",
		Header: []string{"ops", "ticks", "handled", "derived-facts", "wall-time", "ops/sec"},
		Rows: [][]string{{
			fmt.Sprint(ops), fmt.Sprint(st.Ticks), fmt.Sprint(st.Handled),
			fmt.Sprint(st.Derived), elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", float64(ops)/elapsed.Seconds()),
		}},
		Notes: "differential equivalence vs the Fig-2 reference is asserted by TestE1CovidEquivalence",
	}
}

// --- E2: CALM — monotone ops coordination-free vs coordinated ---

// RunE2 compares per-operation completion latency (virtual µs) of a
// monotone merge replicated by gossip against a non-monotone op serialized
// through Paxos, across replica counts.
func RunE2(replicaCounts []int, opsPer int) Table {
	t := Table{
		ID:     "E2",
		Title:  "CALM: monotone (gossip) vs non-monotone (Paxos) per-op completion, virtual µs",
		Header: []string{"replicas", "monotone-lat", "paxos-lat", "paxos/monotone"},
	}
	for _, n := range replicaCounts {
		mono := gossipLatency(n, opsPer)
		coord := paxosLatency(n, opsPer)
		ratio := float64(coord) / float64(mono)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(mono), fmt.Sprint(coord), fmt.Sprintf("%.1f×", ratio),
		})
	}
	t.Notes = "monotone merges ack locally and gossip in the background; Paxos pays quorum round trips"
	return t
}

// gossipLatency: a monotone op completes locally (one local apply), with
// anti-entropy in the background — client-visible latency is the local
// apply plus one hop to the nearest replica.
func gossipLatency(n, ops int) simnet.Time {
	net := simnet.New(simnet.Config{Seed: 7, MinLatency: 100, MaxLatency: 100})
	names := make([]string, n)
	var gs []*replica.Gossiper
	for i := range names {
		names[i] = fmt.Sprintf("g%d", i)
	}
	for _, name := range names {
		gs = append(gs, replica.NewGossiper(net, name, names, &setState{s: map[string]bool{}}, 500))
	}
	// Background anti-entropy is off the latency path; the client-visible
	// cost of a monotone op is one hop to any replica.
	_ = gs
	net.AddNode("client", func(now simnet.Time, msg simnet.Message) {})
	start := net.Now()
	for i := 0; i < ops; i++ {
		// Client sends to one replica; op is durable-enough on arrival
		// (merge is monotone), so latency is one hop.
		net.Send("client", names[i%n], replica.GossipPayload(map[string]bool{fmt.Sprintf("op%d", i): true}))
		net.Drain(50)
	}
	total := net.Now() - start
	return total / simnet.Time(ops)
}

type setState struct{ s map[string]bool }

func (ss *setState) MergeAny(other any) {
	for k := range other.(map[string]bool) {
		ss.s[k] = true
	}
}
func (ss *setState) SnapshotAny() any {
	out := map[string]bool{}
	for k := range ss.s {
		out[k] = true
	}
	return out
}
func (ss *setState) EqualAny(other any) bool {
	o := other.(map[string]bool)
	if len(o) != len(ss.s) {
		return false
	}
	for k := range o {
		if !ss.s[k] {
			return false
		}
	}
	return true
}

// paxosLatency: each op must be decided by the consensus group before the
// client proceeds.
func paxosLatency(n, ops int) simnet.Time {
	net := simnet.New(simnet.Config{Seed: 7, MinLatency: 100, MaxLatency: 100})
	g := consensus.NewGroup(net, n, 7)
	start := net.Now()
	for i := 0; i < ops; i++ {
		g.Propose("p0", fmt.Sprintf("op%d", i))
		// Drive until this op is decided everywhere reachable.
		for steps := 0; g.DecidedCount("p0") <= i && steps < 100000; steps++ {
			if !net.Step() {
				break
			}
		}
	}
	total := net.Now() - start
	return total / simnet.Time(ops)
}

// --- E3: Chestnut layout synthesis speedup ---

// RunE3 measures the ORM-style lookup workload of §5.2 on the naive heap
// layout vs the synthesized design, reporting rows touched and wall-clock
// speedup (the paper claims "up to 42×"; shape: large and growing with
// table size).
func RunE3(tableSizes []int, lookups int) Table {
	t := Table{
		ID:     "E3",
		Title:  "Chestnut data-layout synthesis vs naive heap (§5.2, \"up to 42×\")",
		Header: []string{"rows", "design", "rows-touched", "wall-time", "speedup"},
	}
	for _, n := range tableSizes {
		w := chestnut.Workload{TableRows: n, PointLookups: map[string]float64{"id": float64(lookups)}, Inserts: 10}
		best := chestnut.Best("id", nil, w)
		naive := chestnut.Build("t", "id", chestnut.Design{Layout: storage.LayoutHeap})
		smart := chestnut.Build("t", "id", best)
		for i := 0; i < n; i++ {
			r := storage.Row{"id": fmt.Sprintf("u%07d", i)}
			naive.Insert(r)
			smart.Insert(r)
		}
		run := func(tbl *storage.Table) time.Duration {
			start := time.Now()
			for i := 0; i < lookups; i++ {
				tbl.Lookup("id", fmt.Sprintf("u%07d", (i*7919)%n))
			}
			return time.Since(start)
		}
		naiveT := run(naive)
		smartT := run(smart)
		speedup := float64(naiveT) / float64(max64(1, int64(smartT)))
		t.Rows = append(t.Rows,
			[]string{fmt.Sprint(n), "heap(naive)", fmt.Sprint(naive.Stats.RowsTouched), naiveT.Round(time.Microsecond).String(), "1.0×"},
			[]string{fmt.Sprint(n), best.Layout.String() + "(synth)", fmt.Sprint(smart.Stats.RowsTouched), smartT.Round(time.Microsecond).String(), fmt.Sprintf("%.0f×", speedup)},
		)
	}
	return t
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// --- E4: availability under f failures across domains ---

// RunE4 deploys a proxied endpoint across 3 AZs with f=2 tolerance and
// reports request availability as AZs fail.
func RunE4(requests int) Table {
	t := Table{
		ID:     "E4",
		Title:  "Availability facet: endpoint availability vs failed AZs (f=2 spec, §6)",
		Header: []string{"failed-AZs", "live-replicas", "answered", "availability"},
	}
	for failed := 0; failed <= 3; failed++ {
		net := simnet.New(simnet.Config{Seed: int64(40 + failed), MinLatency: 50, MaxLatency: 200})
		topo := cluster.NewTopology(3, 1, 1, cluster.ClassSmall)
		var reps []string
		ms, err := topo.SpreadAcross(cluster.AZ, 3)
		if err != nil {
			panic(err)
		}
		for _, m := range ms {
			reps = append(reps, m.ID)
			replica.HandleAtReplica(net, m.ID, nil)
		}
		p := replica.NewProxy(net, "proxy", reps, 2)
		for i := 0; i < failed; i++ {
			net.SetDown(reps[i], true)
		}
		answered := 0
		for i := 0; i < requests; i++ {
			id := p.Send(i)
			net.Drain(100)
			if p.Answered(id) {
				answered++
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(failed), fmt.Sprint(3 - failed), fmt.Sprintf("%d/%d", answered, requests),
			fmt.Sprintf("%.0f%%", 100*float64(answered)/float64(requests)),
		})
	}
	t.Notes = "f=2 across AZ: available through 2 AZ failures, unavailable at 3 (by design)"
	return t
}

// --- E5: consistency spectrum cost ---

// RunE5 reports the per-op latency and message cost of the three mechanism
// tiers Hydrolysis chooses among (§7.2).
func RunE5(ops int) Table {
	t := Table{
		ID:     "E5",
		Title:  "Consistency spectrum: mechanism cost per op (3 replicas, virtual µs)",
		Header: []string{"level", "mechanism", "latency/op", "msgs/op"},
	}
	// Eventual: local apply + background gossip.
	{
		net := simnet.New(simnet.Config{Seed: 51, MinLatency: 100, MaxLatency: 100})
		names := []string{"g0", "g1", "g2"}
		var gs []*replica.Gossiper
		for _, nm := range names {
			gs = append(gs, replica.NewGossiper(net, nm, names, &setState{s: map[string]bool{}}, 300))
		}
		_ = gs // anti-entropy runs off the latency path
		net.AddNode("client", func(now simnet.Time, msg simnet.Message) {})
		before := net.Stats().Sent
		start := net.Now()
		for i := 0; i < ops; i++ {
			net.Send("client", names[i%3], replica.GossipPayload(map[string]bool{fmt.Sprintf("w%d", i): true}))
			net.Drain(30)
		}
		lat := (net.Now() - start) / simnet.Time(ops)
		msgs := float64(net.Stats().Sent-before) / float64(ops)
		t.Rows = append(t.Rows, []string{"eventual", "lattice gossip", fmt.Sprint(lat), fmt.Sprintf("%.1f", msgs)})
	}
	// Causal: client session pins + vector-clock metadata — one replica
	// write plus causal metadata fan-out (modeled as write + 2 async).
	{
		net := simnet.New(simnet.Config{Seed: 52, MinLatency: 100, MaxLatency: 100})
		names := []string{"c0", "c1", "c2"}
		for _, nm := range names {
			name := nm
			net.AddNode(name, func(now simnet.Time, msg simnet.Message) {
				// Forward causally-tagged write to peers once.
				if w, ok := msg.Payload.(causalWrite); ok && !w.fwd {
					for _, p := range names {
						if p != name {
							net.Send(name, p, causalWrite{fwd: true})
						}
					}
				}
			})
		}
		net.AddNode("client", func(now simnet.Time, msg simnet.Message) {})
		before := net.Stats().Sent
		start := net.Now()
		for i := 0; i < ops; i++ {
			net.Send("client", names[i%3], causalWrite{})
			net.Drain(30)
		}
		lat := (net.Now() - start) / simnet.Time(ops)
		msgs := float64(net.Stats().Sent-before) / float64(ops)
		t.Rows = append(t.Rows, []string{"causal", "vector-clock cell", fmt.Sprint(lat), fmt.Sprintf("%.1f", msgs)})
	}
	// Serializable: Paxos round per op.
	{
		net := simnet.New(simnet.Config{Seed: 53, MinLatency: 100, MaxLatency: 100})
		g := consensus.NewGroup(net, 3, 53)
		before := net.Stats().Sent
		start := net.Now()
		for i := 0; i < ops; i++ {
			g.Propose("p0", i)
			for steps := 0; g.DecidedCount("p0") <= i && steps < 100000; steps++ {
				if !net.Step() {
					break
				}
			}
		}
		lat := (net.Now() - start) / simnet.Time(ops)
		msgs := float64(net.Stats().Sent-before) / float64(ops)
		t.Rows = append(t.Rows, []string{"serializable", "Paxos log", fmt.Sprint(lat), fmt.Sprintf("%.1f", msgs)})
	}
	t.Notes = "the compiler picks the cheapest tier the spec + CALM analysis permits (consistency.Select)"
	return t
}

type causalWrite struct{ fwd bool }

// --- E6: the §9.1 deployment ILP ---

// RunE6 solves the Fig 3 target facet and returns the allocation table.
func RunE6() Table {
	p, err := hlang.Parse(hlang.CovidSource)
	if err != nil {
		panic(err)
	}
	classes := []cluster.MachineClass{cluster.ClassSmall, cluster.ClassLarge, cluster.ClassGPU}
	loads := map[string]target.HandlerLoad{
		"add_person":  {RatePerSec: 50, ServiceMs: 2},
		"add_contact": {RatePerSec: 200, ServiceMs: 2},
		"trace":       {RatePerSec: 10, ServiceMs: 20},
		"diagnosed":   {RatePerSec: 5, ServiceMs: 20},
		"likelihood":  {RatePerSec: 5, ServiceMs: 40},
		"vaccinate":   {RatePerSec: 20, ServiceMs: 3},
	}
	plan, err := target.Solve(p, classes, loads, 8)
	if err != nil {
		panic(err)
	}
	t := Table{
		ID:     "E6",
		Title:  "Target facet: ILP deployment mapping for Fig 3 (§9.1)",
		Header: []string{"handler", "machines", "modeled-latency", "cost/call", "spec-latency", "spec-cost"},
	}
	for _, name := range []string{"add_contact", "add_person", "diagnosed", "likelihood", "trace", "vaccinate"} {
		a := plan.Allocations[name]
		spec := p.TargetFor(name)
		var parts []string
		for c, n := range a.Counts {
			parts = append(parts, fmt.Sprintf("%d×%s", n, c))
		}
		t.Rows = append(t.Rows, []string{
			name, strings.Join(parts, "+"), fmt.Sprintf("%.1fms", a.LatencyMs),
			fmt.Sprintf("%.6f", a.CostPerCall), fmt.Sprintf("%.0fms", spec.LatencyMs), fmt.Sprintf("%.2f", spec.Cost),
		})
	}
	t.Notes = fmt.Sprintf("total %d machines, %.2f units/hour; likelihood forced onto GPU class by processor=gpu",
		plan.Machines, plan.TotalHourly)
	return t
}

// --- E7: MPI collectives, naive vs tree vs ring ---

// RunE7 sweeps world sizes and schedules for bcast and allreduce.
func RunE7(sizes []int) Table {
	t := Table{
		ID:     "E7",
		Title:  "MPI collectives (Appendix A.3): schedule comparison, 10µs links + 5µs send overhead",
		Header: []string{"collective", "n", "algo", "messages", "virtual-time"},
	}
	sum := func(a, b any) any { return a.(int) + b.(int) }
	for _, n := range sizes {
		for _, algo := range []mpi.Algo{mpi.Naive, mpi.Tree, mpi.Ring} {
			net := simnet.New(simnet.Config{Seed: 1, MinLatency: 10, MaxLatency: 10, SendOverhead: 5})
			w := mpi.NewWorld(net, n)
			st := w.Bcast("b", 0, 1, algo)
			t.Rows = append(t.Rows, []string{"bcast", fmt.Sprint(n), algo.String(),
				fmt.Sprint(st.Messages), fmt.Sprintf("%dµs", st.Elapsed)})
		}
		for _, algo := range []mpi.Algo{mpi.Naive, mpi.Tree, mpi.Ring} {
			net := simnet.New(simnet.Config{Seed: 1, MinLatency: 10, MaxLatency: 10, SendOverhead: 5})
			w := mpi.NewWorld(net, n)
			for i := 0; i < n; i++ {
				w.SetLocal(i, 1)
			}
			st := w.Allreduce("ar", sum, algo)
			t.Rows = append(t.Rows, []string{"allreduce", fmt.Sprint(n), algo.String(),
				fmt.Sprint(st.Messages), fmt.Sprintf("%dµs", st.Elapsed)})
		}
	}
	t.Notes = "tree wins at scale on root-bottlenecked fan-out; ring trades latency for per-node balance"
	return t
}

// --- E8: semi-naive (differential) vs naive evaluation ---

// RunE8 measures transitive closure on chain graphs under both evaluators.
func RunE8(sizes []int) Table {
	t := Table{
		ID:     "E8",
		Title:  "Differential (semi-naive) vs all-at-once datalog evaluation (§8.2)",
		Header: []string{"chain-len", "evaluator", "derived", "wall-time", "speedup"},
	}
	tc := []datalog.Rule{
		{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}},
			Body: []datalog.Literal{{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}}},
		},
		{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("z")}},
			Body: []datalog.Literal{
				{Atom: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}},
				{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("y"), datalog.V("z")}}},
			},
		},
	}
	prog, err := datalog.NewProgram(tc...)
	if err != nil {
		panic(err)
	}
	// NewProgram compiled plans and stratification already; both timed
	// sections below therefore compare evaluation strategies only.
	mkDB := func(n int) *datalog.Database {
		db := datalog.NewDatabase()
		e := db.Ensure("edge", 2)
		for i := 0; i < n; i++ {
			e.Insert(datalog.Tuple{int64(i), int64(i + 1)})
		}
		return db
	}
	for _, n := range sizes {
		dbS := mkDB(n)
		start := time.Now()
		dS, _ := prog.Eval(dbS)
		semiT := time.Since(start)

		dbN := mkDB(n)
		start = time.Now()
		dN, _ := prog.EvalNaive(dbN)
		naiveT := time.Since(start)
		t.Rows = append(t.Rows,
			[]string{fmt.Sprint(n), "semi-naive", fmt.Sprint(dS), semiT.Round(time.Microsecond).String(),
				fmt.Sprintf("%.1f×", float64(naiveT)/float64(max64(1, int64(semiT))))},
			[]string{fmt.Sprint(n), "naive", fmt.Sprint(dN), naiveT.Round(time.Microsecond).String(), "1.0×"},
		)
	}
	return t
}

// --- E9: Anna-style KVS thread scaling ---

// RunE9 compares the Anna architecture (coordination-free shards, each
// owning its keys) with a global-lock store across worker counts. The
// paper's claim is about *scaling shape* ("a KVS for any scale"): shards
// scale with cores because no worker ever waits on another's keys, while a
// global lock serializes everything.
//
// Scaling is measured in *virtual time* (per-op service cost, queueing at
// whichever structure owns the data), because wall-clock parallel speedup
// requires physical cores this test host may not have (DESIGN.md §5
// substitution: single-core hosts simulate the multicore). A wall-clock
// correctness/throughput row per store is also reported for reference.
func RunE9(workers []int, opsPerWorker int) Table {
	t := Table{
		ID:     "E9",
		Title:  "Anna-style lattice KVS vs global-lock baseline: throughput scaling",
		Header: []string{"workers", "store", "virtual-ops/sec", "scaling-vs-1worker", "wallclock-ops/sec"},
	}
	const servicePerOpUs = 2.0 // per-op CPU cost at the owning structure
	r := rand.New(rand.NewSource(9))
	virtual := func(w int, anna bool) float64 {
		totalOps := w * opsPerWorker
		if !anna {
			// One serial queue: makespan = totalOps * service.
			return 1e6 / servicePerOpUs // ops/sec independent of workers
		}
		// Shards = workers; ops land by key hash; makespan = busiest shard.
		busy := make([]float64, w)
		for i := 0; i < totalOps; i++ {
			busy[r.Intn(w)] += servicePerOpUs
		}
		maxBusy := 0.0
		for _, b := range busy {
			if b > maxBusy {
				maxBusy = b
			}
		}
		return float64(totalOps) / maxBusy * 1e6
	}
	annaBaseV := virtual(1, true)
	lockBaseV := virtual(1, false)
	for _, w := range workers {
		annaV := virtual(w, true)
		lockV := virtual(w, false)
		annaW := kvsThroughput(w, opsPerWorker, true)
		lockW := kvsThroughput(w, opsPerWorker, false)
		t.Rows = append(t.Rows,
			[]string{fmt.Sprint(w), "anna(shards)", fmt.Sprintf("%.0f", annaV), fmt.Sprintf("%.1f×", annaV/annaBaseV), fmt.Sprintf("%.0f", annaW)},
			[]string{fmt.Sprint(w), "locked-map", fmt.Sprintf("%.0f", lockV), fmt.Sprintf("%.1f×", lockV/lockBaseV), fmt.Sprintf("%.0f", lockW)},
		)
	}
	t.Notes = fmt.Sprintf("virtual model: %.0fµs/op service; host has %d CPU(s), so wall-clock columns show no parallel speedup on 1 core", servicePerOpUs, runtime.NumCPU())
	return t
}

func kvsThroughput(workers, ops int, anna bool) float64 {
	var put func(k string, v kvs.Value)
	var get func(k string) (kvs.Value, bool)
	if anna {
		s := kvs.NewStore(workers, 1)
		defer s.Close()
		put, get = s.Put, s.Get
	} else {
		s := kvs.NewLockedStore()
		put, get = s.Put, s.Get
	}
	done := make(chan struct{})
	start := time.Now()
	for w := 0; w < workers; w++ {
		go func(w int) {
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("w%d-k%d", w, r.Intn(256))
				if i%5 == 0 {
					put(key, kvs.NewValue(uint64(i), fmt.Sprintf("w%d", w), "v"))
				} else {
					get(key)
				}
			}
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	elapsed := time.Since(start)
	return float64(workers*ops) / elapsed.Seconds()
}

// --- E10: shopping cart seal placement ---

// RunE10 compares checkout designs: client-side sealing (coordination-free)
// vs running every checkout decision through consensus.
func RunE10(carts int) Table {
	t := Table{
		ID:     "E10",
		Title:  "Cart sealing (§7.1): seal-at-client vs consensus checkout",
		Header: []string{"design", "carts", "coordination-msgs", "virtual-time"},
	}
	// Client-side sealing: merges only; zero coordination messages.
	{
		start := time.Now()
		for i := 0; i < carts; i++ {
			a := crdt.NewCart("a").AddItem("x", 1)
			b := crdt.NewCart("b").AddItem("y", 2)
			client := a.Merge(b).Seal(uint64(i + 1))
			av := a.Merge(client)
			bv := b.Merge(client)
			if !av.CheckedOut() || !bv.CheckedOut() {
				panic("seal checkout failed")
			}
		}
		_ = start
		t.Rows = append(t.Rows, []string{"seal-at-client", fmt.Sprint(carts), "0", "0µs (local merges only)"})
	}
	// Consensus checkout: one Paxos decision per cart.
	{
		net := simnet.New(simnet.Config{Seed: 60, MinLatency: 100, MaxLatency: 100})
		g := consensus.NewGroup(net, 3, 60)
		before := net.Stats().Sent
		startT := net.Now()
		for i := 0; i < carts; i++ {
			g.Propose("p0", fmt.Sprintf("checkout-%d", i))
			for steps := 0; g.DecidedCount("p0") <= i && steps < 100000; steps++ {
				if !net.Step() {
					break
				}
			}
		}
		t.Rows = append(t.Rows, []string{"consensus-checkout", fmt.Sprint(carts),
			fmt.Sprint(net.Stats().Sent - before), fmt.Sprintf("%dµs", net.Now()-startT)})
	}
	return t
}

// --- E11: monotonicity typechecker report ---

// RunE11 prints the analysis of the COVID program — the machine-checked
// answer to Fig 4's "manual checks are tricky".
func RunE11() Table {
	p, err := hlang.Parse(hlang.CovidSource)
	if err != nil {
		panic(err)
	}
	a := hlang.Analyze(p)
	t := Table{
		ID:     "E11",
		Title:  "Monotonicity typechecking of the COVID app (Fig 4 antidote)",
		Header: []string{"construct", "classification", "reason"},
	}
	for _, name := range p.QueryNames() {
		q := a.Queries[name]
		reason := ""
		if len(q.Reasons) > 0 {
			reason = q.Reasons[0].What
		}
		t.Rows = append(t.Rows, []string{"query " + name, q.Mono.String(), reason})
	}
	for _, h := range p.Handlers {
		info := a.Handlers[h.Name]
		reason := ""
		if len(info.Reasons) > 0 {
			reason = info.Reasons[0].What
		}
		t.Rows = append(t.Rows, []string{"on " + h.Name, info.Mono.String(), reason})
	}
	t.Notes = "the adversarial corpus (negation-through-views, aggregates, deletes) is in TestE11MonotonicityCorpus"
	return t
}

// --- E12: lifted runtimes throughput ---

// RunE12 measures actor message throughput and future resolution round
// trips on the transducer.
func RunE12(messages int) Table {
	t := Table{
		ID:     "E12",
		Title:  "Lifted runtimes on the transducer (Appendix A.1/A.2)",
		Header: []string{"runtime", "workload", "wall-time", "throughput"},
	}
	// Actors: ping-pong chain.
	{
		rt := transducer.New("n1", 1)
		rt.SetDelay(fixedDelay)
		sys := actor.NewSystem(rt)
		count := 0
		var a, b actor.ID
		a = sys.Spawn(func(ctx *actor.Ctx, msg any) {
			count++
			if count < messages {
				ctx.Send(b, "ping")
			}
		})
		b = sys.Spawn(func(ctx *actor.Ctx, msg any) { ctx.Send(a, "pong") })
		start := time.Now()
		sys.Send(a, "start")
		rt.RunUntilIdle(messages * 4)
		el := time.Since(start)
		t.Rows = append(t.Rows, []string{"actors", fmt.Sprintf("%d-msg ping-pong", count),
			el.Round(time.Millisecond).String(), fmt.Sprintf("%.0f msg/s", float64(count)/el.Seconds())})
	}
	// Futures: batch resolution.
	{
		rt := transducer.New("n2", 2)
		rt.SetDelay(fixedDelay)
		e := future.NewEngine(rt, future.Eager)
		var fs []future.Future
		for i := 0; i < messages; i++ {
			fs = append(fs, e.Remote(func(a any) any { return a.(int) + 1 }, i))
		}
		start := time.Now()
		if _, err := e.Get(fs, messages*4); err != nil {
			panic(err)
		}
		el := time.Since(start)
		t.Rows = append(t.Rows, []string{"futures", fmt.Sprintf("%d-promise batch", messages),
			el.Round(time.Millisecond).String(), fmt.Sprintf("%.0f fut/s", float64(messages)/el.Seconds())})
	}
	return t
}

// RunE5Mechanisms renders the compiler's per-handler mechanism choices —
// the qualitative half of E5.
func RunE5Mechanisms() Table {
	p, err := hlang.Parse(hlang.CovidSource)
	if err != nil {
		panic(err)
	}
	choices := consistency.Select(p, hlang.Analyze(p))
	t := Table{
		ID:     "E5b",
		Title:  "Consistency mechanism selection for the COVID app (§7.2)",
		Header: []string{"handler", "declared", "monotonicity", "mechanism", "local-only"},
	}
	for _, h := range p.Handlers {
		c := choices[h.Name]
		t.Rows = append(t.Rows, []string{h.Name, string(c.Level), c.Mono.String(),
			c.Mechanism.String(), fmt.Sprint(c.LocalOnly)})
	}
	return t
}

// --- E13: cross-tick incremental fixpoint maintenance ---

// RunE13 measures the amortized tick cost of the compiled COVID app on a
// small-delta/large-DB workload — a large prebuilt contact graph, then one
// contact merge plus one trace per tick — under full per-tick
// re-evaluation versus cross-tick incremental maintenance
// (InstantiateIncremental). The speedup column is this PR's headline
// O(delta)-vs-O(database) number at the application level.
func RunE13(chains, ops int) Table {
	c, err := hydrolysis.Compile(hlang.CovidSource, hydrolysis.Options{UDFs: covidUDFs()})
	if err != nil {
		panic(err)
	}
	t := Table{
		ID:     "E13",
		Title:  "Cross-tick incremental fixpoint maintenance vs per-tick re-evaluation",
		Header: []string{"mode", "contacts", "ops", "µs/tick", "speedup"},
		Notes:  "each op = 1 contact merge + 1 trace against a prebuilt contact graph; equivalence is asserted by TestCovidIncrementalMatchesFull and the three-way differential test",
	}
	perTick := map[bool]float64{}
	for _, incremental := range []bool{false, true} {
		var rt *transducer.Runtime
		if incremental {
			rt, err = c.InstantiateIncremental("n1", 1)
		} else {
			rt, err = c.InstantiateFullEval("n1", 1)
		}
		if err != nil {
			panic(err)
		}
		rt.SetDelay(fixedDelay)
		// Prebuild: disjoint 48-person contact chains.
		for ch := 0; ch < chains; ch++ {
			base := int64(ch * 1000)
			for i := int64(0); i < 48; i++ {
				rt.Inject("add_contact", datalog.Tuple{base + i, base + i + 1})
			}
		}
		rt.RunUntilIdle(50)
		contacts := rt.Table("contacts").Len()
		start := time.Now()
		for i := 0; i < ops; i++ {
			u := int64(1_000_000 + 2*i)
			rt.Inject("add_contact", datalog.Tuple{u, u + 1})
			rt.Inject("trace", datalog.Tuple{u})
			rt.Tick()
		}
		el := time.Since(start)
		perTick[incremental] = float64(el.Microseconds()) / float64(ops)
		mode := "full"
		speedup := "1.0×"
		if incremental {
			mode = "incremental"
			speedup = fmt.Sprintf("%.1f×", perTick[false]/perTick[true])
		}
		t.Rows = append(t.Rows, []string{mode, fmt.Sprint(contacts), fmt.Sprint(ops),
			fmt.Sprintf("%.1f", perTick[incremental]), speedup})
	}
	return t
}

// --- E14: replicated coordinator — failover recovery windows ---

// RunE14 measures the replicated control plane (DESIGN.md §13): a
// transitive-closure deployment runs a tick sequence three times —
// healthy, with the leader killed mid-tick, and with the leader
// partitioned mid-tick — and reports elections, epoch movement, fenced
// stale traffic, and the recovery window (virtual time for the faulted
// tick versus a healthy one). Correctness under the same faults is pinned
// by the failover chaos suite; this table is the cost side.
func RunE14(ticks int) Table {
	t := Table{
		ID:     "E14",
		Title:  "Replicated coordinator: leader failover recovery windows",
		Header: []string{"mode", "ticks", "elections", "epoch", "attempts", "fenced", "healthy ms/tick", "faulted tick ms"},
		Notes:  "virtual time; fault injected mid-tick at tick N/2, faulted coordinator recovered after the tick settles; byte-level equivalence under the same faults is asserted by the shard failover suite",
	}
	if ticks < 4 {
		ticks = 4
	}
	rules := []datalog.Rule{
		{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}},
			Body: []datalog.Literal{{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}}},
		},
		{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("z")}},
			Body: []datalog.Literal{
				{Atom: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}},
				{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("y"), datalog.V("z")}}},
			},
		},
	}
	edb := map[string]int{"edge": 2}
	for _, mode := range []string{"healthy", "leader-kill", "leader-partition"} {
		prog, err := datalog.NewProgram(rules...)
		if err != nil {
			panic(err)
		}
		topo := cluster.NewTopology(3, 2, 2, cluster.ClassSmall)
		cl := cluster.New(topo, simnet.DefaultConfig(14))
		machines, err := target.PlaceReplicas(topo, 3)
		if err != nil {
			panic(err)
		}
		dep, err := shard.Deploy(cl, "e14", prog, edb, machines, shard.Options{})
		if err != nil {
			panic(err)
		}
		faultTick := ticks / 2
		var healthy []float64
		faulted := 0.0
		for i := 0; i < ticks; i++ {
			ops := []datalog.DeltaOp{
				{Pred: "edge", T: datalog.Tuple{int64(i), int64(i + 1)}},
				{Pred: "edge", T: datalog.Tuple{int64(i + 1), int64((i + 7) % (ticks + 1))}},
			}
			if i > 0 && i%3 == 0 {
				ops = append(ops, datalog.DeltaOp{Del: true, Pred: "edge", T: datalog.Tuple{int64(i - 3), int64(i - 2)}})
			}
			if err := dep.Submit(ops); err != nil {
				panic(err)
			}
			victim := ""
			if i == faultTick && mode != "healthy" {
				victim = dep.Leader()
				if mode == "leader-kill" {
					dep.KillCoordinator(victim)
				} else {
					for _, other := range append(dep.Coordinators(), dep.Replicas()...) {
						if other != victim {
							cl.Net.Partition(victim, other)
						}
					}
				}
			}
			start := cl.Net.Now()
			if !dep.Settle(2_000_000) {
				panic(fmt.Sprintf("E14 %s: tick %d did not settle", mode, i))
			}
			ms := float64(cl.Net.Now()-start) / 1000.0
			if victim != "" {
				faulted = ms
				if mode == "leader-partition" {
					for _, other := range append(dep.Coordinators(), dep.Replicas()...) {
						if other != victim {
							cl.Net.Heal(victim, other)
						}
					}
				}
				dep.RecoverCoordinator(victim)
			} else {
				healthy = append(healthy, ms)
			}
		}
		med := 0.0
		if len(healthy) > 0 {
			sorted := append([]float64(nil), healthy...)
			sort.Float64s(sorted)
			med = sorted[len(sorted)/2]
		}
		m := dep.Metrics()
		if m.DoubleCommits != 0 {
			panic(fmt.Sprintf("E14 %s: double commits", mode))
		}
		faultedCell := "-"
		if mode != "healthy" {
			faultedCell = fmt.Sprintf("%.1f", faulted)
		}
		t.Rows = append(t.Rows, []string{mode, fmt.Sprint(ticks),
			fmt.Sprint(m.Elections), fmt.Sprint(m.Epoch), fmt.Sprint(m.AttemptDecrees),
			fmt.Sprint(m.FencedReqs + m.FencedCommits),
			fmt.Sprintf("%.1f", med), faultedCell})
	}
	return t
}
