package flow

import (
	"fmt"
	"reflect"
	"testing"

	"hydro/internal/lattice"
)

func TestMapFilterPipeline(t *testing.T) {
	g := NewGraph()
	src := g.NewSource("nums")
	doubled := g.Map(src.Handle, "double", func(v Row) Row { return v.(int) * 2 })
	evensOnly := g.Filter(doubled, "gt4", func(v Row) bool { return v.(int) > 4 })
	out := g.NewCollect(evensOnly, "out")
	src.PushAll(1, 2, 3)
	g.RunTick()
	if got := out.SortedStrings(); !reflect.DeepEqual(got, []string{"6"}) {
		t.Fatalf("pipeline output = %v", got)
	}
}

func TestFlatMapAndUnion(t *testing.T) {
	g := NewGraph()
	a := g.NewSource("a")
	b := g.NewSource("b")
	dup := g.FlatMap(a.Handle, "dup", func(v Row) []Row { return []Row{v, v} })
	u := g.Union("u", dup, b.Handle)
	out := g.NewCollect(u, "out")
	a.Push("x")
	b.Push("y")
	g.RunTick()
	if len(out.Rows()) != 3 {
		t.Fatalf("union got %d rows, want 3", len(out.Rows()))
	}
}

func TestTeeImplicit(t *testing.T) {
	g := NewGraph()
	src := g.NewSource("s")
	m := g.Map(src.Handle, "id", func(v Row) Row { return v })
	out1 := g.NewCollect(m, "o1")
	out2 := g.NewCollect(m, "o2")
	src.Push(7)
	g.RunTick()
	if len(out1.Rows()) != 1 || len(out2.Rows()) != 1 {
		t.Fatal("multiple consumers must each receive the row")
	}
}

func TestDistinctPersistence(t *testing.T) {
	g := NewGraph()
	src := g.NewSource("s")
	d := g.Distinct(src.Handle, "d", nil, Static)
	out := g.NewCollect(d, "out")
	src.PushAll(1, 1, 2)
	g.RunTick()
	src.PushAll(2, 3)
	g.RunTick()
	if got := out.SortedStrings(); !reflect.DeepEqual(got, []string{"1", "2", "3"}) {
		t.Fatalf("static distinct = %v", got)
	}

	g2 := NewGraph()
	src2 := g2.NewSource("s")
	d2 := g2.Distinct(src2.Handle, "d", nil, PerTick)
	out2 := g2.NewCollect(d2, "out")
	src2.PushAll(1, 1)
	g2.RunTick()
	src2.PushAll(1)
	g2.RunTick()
	if len(out2.Rows()) != 2 {
		t.Fatalf("per-tick distinct emitted %d rows, want 2 (one per tick)", len(out2.Rows()))
	}
}

func TestJoinStreaming(t *testing.T) {
	g := NewGraph()
	l := g.NewSource("l")
	r := g.NewSource("r")
	j := g.Join(l.Handle, r.Handle, "j",
		func(v Row) any { return v.([2]any)[0] },
		func(v Row) any { return v.([2]any)[0] },
		Static)
	out := g.NewCollect(j, "out")
	l.Push([2]any{"k1", "left1"})
	r.Push([2]any{"k1", "right1"})
	r.Push([2]any{"k2", "right2"})
	g.RunTick()
	if len(out.Rows()) != 1 {
		t.Fatalf("join produced %d rows, want 1", len(out.Rows()))
	}
	// Static join state: a late left row still matches earlier right rows.
	l.Push([2]any{"k2", "left2"})
	g.RunTick()
	if len(out.Rows()) != 2 {
		t.Fatalf("incremental join produced %d rows total, want 2", len(out.Rows()))
	}
}

func TestJoinPerTickForgets(t *testing.T) {
	g := NewGraph()
	l := g.NewSource("l")
	r := g.NewSource("r")
	j := g.Join(l.Handle, r.Handle, "j",
		func(v Row) any { return v },
		func(v Row) any { return v },
		PerTick)
	out := g.NewCollect(j, "out")
	l.Push("k")
	g.RunTick()
	r.Push("k")
	g.RunTick()
	if len(out.Rows()) != 0 {
		t.Fatal("per-tick join must not match across ticks")
	}
}

// Transitive closure via a cyclic flow: the fixpoint-within-tick semantics.
func TestCyclicFixpointTransitiveClosure(t *testing.T) {
	g := NewGraph()
	edges := g.NewSource("edges")
	// paths = edges ∪ (paths ⋈ edges)
	paths := g.Union("paths")
	j := g.Join(paths, edges.Handle, "extend",
		func(v Row) any { return v.([2]string)[1] }, // path (a,b) keyed on b
		func(v Row) any { return v.([2]string)[0] }, // edge (b,c) keyed on b
		Static)
	extended := g.Map(j, "compose", func(v Row) Row {
		p := v.(JoinPair)
		return [2]string{p.Left.([2]string)[0], p.Right.([2]string)[1]}
	})
	// Distinct breaks the cycle: only novel paths re-enter.
	novel := g.Distinct(extended, "novel", nil, Static)
	// Wire the cycle: edges and novel both feed paths.
	g.connect(edges.n, paths.n)
	g.connect(novel.n, paths.n)
	dedup := g.Distinct(paths, "out_dedup", nil, Static)
	out := g.NewCollect(dedup, "out")

	edges.PushAll([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "d"})
	g.RunTick()
	if len(out.Rows()) != 6 {
		t.Fatalf("closure produced %d paths, want 6: %v", len(out.Rows()), out.SortedStrings())
	}
	// Incremental: adding one edge next tick derives only new paths.
	edges.Push([2]string{"d", "e"})
	g.RunTick()
	if len(out.Rows()) != 10 {
		t.Fatalf("after increment %d paths, want 10", len(out.Rows()))
	}
}

func TestAntiJoinStratified(t *testing.T) {
	g := NewGraph()
	all := g.NewSource("all")
	excluded := g.NewSource("excluded")
	aj := g.NewAntiJoin(all.Handle, excluded.Handle, "minus",
		func(v Row) any { return v }, func(v Row) any { return v })
	out := g.NewCollect(aj.Handle, "out")

	all.PushAll("a", "b", "c")
	excluded.Push("b")
	g.RunTick()
	if len(out.Rows()) != 0 {
		t.Fatal("anti-join must not emit before negation flush")
	}
	aj.FlushNegation()
	g.RunTick()
	if got := out.SortedStrings(); !reflect.DeepEqual(got, []string{"a", "c"}) {
		t.Fatalf("anti-join = %v", got)
	}
}

func TestLatticeCellPipelines(t *testing.T) {
	g := NewGraph()
	src := g.NewSource("sets")
	setMerge := MergeFn{
		Merge: func(a, b Row) Row { return a.(lattice.Set[string]).Merge(b.(lattice.Set[string])) },
		Equal: func(a, b Row) bool { return a.(lattice.Set[string]).Equal(b.(lattice.Set[string])) },
	}
	cell := g.NewLatticeCell(src.Handle, "acc", lattice.NewSet[string](), setMerge, Static)
	// COUNT over the set pipelines as a Max<int> — the paper's example.
	counts := g.MorphMap(cell.Handle, "count", func(v Row) Row {
		return lattice.NewMax(v.(lattice.Set[string]).Len())
	})
	gate := g.Threshold(counts, "quorum", func(v Row) bool { return v.(lattice.Max[int]).V >= 2 })
	fired := g.NewCollect(gate, "fired")

	src.Push(lattice.NewSet("a"))
	g.RunTick()
	if len(fired.Rows()) != 0 {
		t.Fatal("threshold fired early")
	}
	src.Push(lattice.NewSet("b"))
	g.RunTick()
	if len(fired.Rows()) != 1 {
		t.Fatalf("threshold fired %d times, want 1", len(fired.Rows()))
	}
	// Further growth must not re-fire (decision is stable).
	src.Push(lattice.NewSet("c"))
	g.RunTick()
	if len(fired.Rows()) != 1 {
		t.Fatal("threshold must fire exactly once")
	}
	if cell.Value().(lattice.Set[string]).Len() != 3 {
		t.Fatal("cell lost state")
	}
}

func TestLatticeCellNoEmitWithoutGrowth(t *testing.T) {
	g := NewGraph()
	src := g.NewSource("s")
	m := MergeFn{
		Merge: func(a, b Row) Row { return a.(lattice.Max[int]).Merge(b.(lattice.Max[int])) },
		Equal: func(a, b Row) bool { return a.(lattice.Max[int]).Equal(b.(lattice.Max[int])) },
	}
	cell := g.NewLatticeCell(src.Handle, "max", lattice.NewMax(0), m, Static)
	out := g.NewCollect(cell.Handle, "out")
	src.Push(lattice.NewMax(5))
	g.RunTick()
	src.Push(lattice.NewMax(3)) // dominated: no growth
	g.RunTick()
	if len(out.Rows()) != 1 {
		t.Fatalf("cell emitted %d times, want 1 (no emit without growth)", len(out.Rows()))
	}
}

func TestScalarCellReactive(t *testing.T) {
	g := NewGraph()
	cell := g.NewScalarCell("x", 0, func(a, b Row) bool { return a == b })
	var seen []VersionedValue
	g.ForEach(cell.Handle, "watch", func(v Row) { seen = append(seen, v.(VersionedValue)) })
	cell.Set(1)
	cell.Set(1) // suppressed by eq
	cell.Set(2)
	g.RunTick()
	if len(seen) != 2 {
		t.Fatalf("reactive scalar propagated %d times, want 2", len(seen))
	}
	if seen[1].Version != 2 || seen[1].Value != 2 {
		t.Fatalf("versioning wrong: %+v", seen[1])
	}
}

func TestFoldTick(t *testing.T) {
	g := NewGraph()
	src := g.NewSource("s")
	f := g.NewFoldTick(src.Handle, "sum",
		func() Row { return 0 },
		func(acc, v Row) Row { return acc.(int) + v.(int) })
	out := g.NewCollect(f.Handle, "out")
	src.PushAll(1, 2, 3)
	g.RunTick()
	f.Flush()
	g.RunTick()
	if len(out.Rows()) != 1 || out.Rows()[0] != 6 {
		t.Fatalf("fold = %v", out.Rows())
	}
	// Next tick resets the accumulator.
	src.PushAll(10)
	g.RunTick()
	f.Flush()
	g.RunTick()
	if out.Rows()[1] != 10 {
		t.Fatalf("fold did not reset per tick: %v", out.Rows())
	}
}

func TestGraphQuiescedAndTickCount(t *testing.T) {
	g := NewGraph()
	src := g.NewSource("s")
	g.NewCollect(src.Handle, "out")
	if !g.Quiesced() {
		t.Fatal("fresh graph should be quiesced")
	}
	src.Push(1)
	if g.Quiesced() {
		t.Fatal("pending input should mark graph busy")
	}
	g.RunTick()
	if g.Tick() != 1 || !g.Quiesced() {
		t.Fatal("tick accounting wrong")
	}
}

func BenchmarkMapChain(b *testing.B) {
	g := NewGraph()
	src := g.NewSource("s")
	h := src.Handle
	for i := 0; i < 8; i++ {
		h = g.Map(h, fmt.Sprintf("m%d", i), func(v Row) Row { return v.(int) + 1 })
	}
	g.ForEach(h, "sink", func(v Row) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Push(i)
		g.RunTick()
	}
}
