package flow

// Lattice and reactive-scalar operators: the part of the Hydroflow algebra
// that goes beyond collections (§8.1 "Representation of flows beyond
// collections"). A LatticeCell pipelines like a collection: every time its
// value strictly grows it re-emits downstream, so a COUNT over a set
// pipelines into a Max<int> cell and onward.

// LatticeCell accumulates a lattice value by merging every input row and
// emits the new value whenever it strictly grows.
type LatticeCell struct {
	Handle
	cur Row
	fn  MergeFn
}

// Value returns the cell's current lattice value.
func (c *LatticeCell) Value() Row { return c.cur }

// NewLatticeCell declares a lattice accumulator with the given bottom value
// and merge function. Persistence Static keeps the accumulated value across
// ticks (the common case for monotone state).
func (g *Graph) NewLatticeCell(in Handle, name string, bottom Row, fn MergeFn, p Persistence) *LatticeCell {
	c := &LatticeCell{cur: bottom, fn: fn}
	n := g.addNode("lattice:"+name, nil)
	n.process = func(n *node) {
		changed := false
		for _, v := range drain(n) {
			next := fn.Merge(c.cur, v)
			if !fn.Equal(next, c.cur) {
				c.cur = next
				changed = true
			}
		}
		if changed {
			g.emit(n, c.cur)
		}
	}
	if p == PerTick {
		n.onTick = func() { c.cur = bottom }
	}
	g.connect(in.n, n)
	c.Handle = Handle{g: g, n: n}
	return c
}

// MorphMap applies a *monotone* function to a lattice stream: each emitted
// lattice value maps to a new lattice value. Operationally identical to Map;
// the distinct constructor documents (and lets analyses trust) monotonicity.
func (g *Graph) MorphMap(in Handle, name string, f func(Row) Row) Handle {
	return g.Map(in, "morph:"+name, f)
}

// Threshold gates a lattice stream: it emits exactly once, when pred first
// becomes true. Because the input grows monotonically, pred transitioning
// true is stable — the coordination-free decision point of CALM programs.
func (g *Graph) Threshold(in Handle, name string, pred func(Row) bool) Handle {
	fired := false
	n := g.addNode("threshold:"+name, nil)
	n.process = func(n *node) {
		for _, v := range drain(n) {
			if !fired && pred(v) {
				fired = true
				g.emit(n, v)
			}
		}
	}
	g.connect(in.n, n)
	return Handle{g: g, n: n}
}

// ScalarCell is a reactive mutable variable (React/Rx style): assignments
// overwrite, and each distinct new value propagates downstream with a
// monotonically increasing version. Overwrite is non-monotonic; the
// compiler only emits ScalarCells for `:=` state.
type ScalarCell struct {
	Handle
	version uint64
	cur     Row
	eq      func(a, b Row) bool
}

// VersionedValue is what a ScalarCell emits.
type VersionedValue struct {
	Version uint64
	Value   Row
}

// Value returns the current value.
func (c *ScalarCell) Value() Row { return c.cur }

// Version returns the current version (0 = initial).
func (c *ScalarCell) Version() uint64 { return c.version }

// Set overwrites the value; propagates if it changed.
func (c *ScalarCell) Set(v Row) {
	if c.eq != nil && c.eq(c.cur, v) {
		return
	}
	c.cur = v
	c.version++
	c.g.emit(c.n, VersionedValue{Version: c.version, Value: v})
}

// NewScalarCell declares a reactive scalar with an initial value. eq may be
// nil to propagate every Set.
func (g *Graph) NewScalarCell(name string, initial Row, eq func(a, b Row) bool) *ScalarCell {
	c := &ScalarCell{cur: initial, eq: eq}
	n := g.addNode("scalar:"+name, func(n *node) { drain(n) })
	c.Handle = Handle{g: g, n: n}
	return c
}

// FoldTick accumulates rows within a tick with a classic (non-lattice) fold
// and emits the final accumulator when the tick flushes. Used for operators
// that must see their input "all at once" (§8.2): the scheduler calls
// FlushFolds after the fixpoint.
type FoldTick struct {
	Handle
	acc   Row
	init  func() Row
	apply func(acc Row, v Row) Row
}

// NewFoldTick declares an end-of-tick fold.
func (g *Graph) NewFoldTick(in Handle, name string, init func() Row, apply func(acc, v Row) Row) *FoldTick {
	f := &FoldTick{acc: init(), init: init, apply: apply}
	n := g.addNode("fold:"+name, nil)
	n.process = func(n *node) {
		for _, v := range drain(n) {
			f.acc = f.apply(f.acc, v)
		}
	}
	n.onTick = func() { f.acc = f.init() }
	g.connect(in.n, n)
	f.Handle = Handle{g: g, n: n}
	return f
}

// Flush emits the accumulated value downstream (call after fixpoint).
func (f *FoldTick) Flush() {
	f.g.emit(f.n, f.acc)
}
