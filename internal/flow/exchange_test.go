package flow

import (
	"fmt"
	"testing"
)

func TestExchangePartitionsByKey(t *testing.T) {
	g := NewGraph()
	src := g.NewSource("s")
	parts := g.Exchange(src.Handle, "shard", 4, func(v Row) any { return v })
	outs := make([]Collect, 4)
	for i, p := range parts {
		outs[i] = g.NewCollect(p, fmt.Sprintf("out%d", i))
	}
	for i := 0; i < 100; i++ {
		src.Push(fmt.Sprintf("key-%d", i))
	}
	g.RunTick()
	total := 0
	nonEmpty := 0
	for _, o := range outs {
		total += len(o.Rows())
		if len(o.Rows()) > 0 {
			nonEmpty++
		}
	}
	if total != 100 {
		t.Fatalf("partitions hold %d rows total, want 100 (no loss, no dup)", total)
	}
	if nonEmpty < 2 {
		t.Fatalf("only %d partitions used; hash routing broken", nonEmpty)
	}
}

func TestExchangeSameKeySamePartition(t *testing.T) {
	g := NewGraph()
	src := g.NewSource("s")
	key := func(v Row) any { return v.([2]string)[0] }
	parts := g.Exchange(src.Handle, "shard", 3, key)
	outs := make([]Collect, 3)
	for i, p := range parts {
		outs[i] = g.NewCollect(p, fmt.Sprintf("out%d", i))
	}
	for i := 0; i < 30; i++ {
		src.Push([2]string{fmt.Sprintf("k%d", i%5), fmt.Sprintf("v%d", i)})
	}
	g.RunTick()
	// Every key's rows must land in exactly one partition.
	where := map[string]int{}
	for pi, o := range outs {
		for _, r := range o.Rows() {
			k := r.([2]string)[0]
			if prev, seen := where[k]; seen && prev != pi {
				t.Fatalf("key %s split across partitions %d and %d", k, prev, pi)
			}
			where[k] = pi
		}
	}
	if len(where) != 5 {
		t.Fatalf("keys routed = %d, want 5", len(where))
	}
}

func TestExchangeThenGatherRoundTrips(t *testing.T) {
	g := NewGraph()
	src := g.NewSource("s")
	parts := g.Exchange(src.Handle, "shard", 4, func(v Row) any { return v })
	// Per-partition work: double each value.
	worked := make([]Handle, len(parts))
	for i, p := range parts {
		worked[i] = g.Map(p, fmt.Sprintf("w%d", i), func(v Row) Row { return v.(int) * 2 })
	}
	merged := g.KeyedUnion("gather", worked)
	out := g.NewCollect(merged, "out")
	sum := 0
	for i := 1; i <= 10; i++ {
		src.Push(i)
		sum += 2 * i
	}
	g.RunTick()
	got := 0
	for _, r := range out.Rows() {
		got += r.(int)
	}
	if got != sum {
		t.Fatalf("shuffled sum = %d, want %d", got, sum)
	}
}

// Partitioned transitive closure: shard edges by source vertex, compute
// local one-hop joins per shard against a broadcast edge set — a miniature
// of the §9 deployment story for the running example's trace query.
func TestExchangePartitionedJoin(t *testing.T) {
	g := NewGraph()
	edges := g.NewSource("edges")
	all := g.NewSource("all") // broadcast copy
	parts := g.Exchange(edges.Handle, "bysrc", 2, func(v Row) any { return v.([2]string)[0] })
	var hops []Handle
	for i, p := range parts {
		j := g.Join(p, all.Handle, fmt.Sprintf("hop%d", i),
			func(v Row) any { return v.([2]string)[1] },
			func(v Row) any { return v.([2]string)[0] },
			Static)
		hops = append(hops, g.Map(j, fmt.Sprintf("compose%d", i), func(v Row) Row {
			pr := v.(JoinPair)
			return [2]string{pr.Left.([2]string)[0], pr.Right.([2]string)[1]}
		}))
	}
	merged := g.Distinct(g.KeyedUnion("hops", hops), "dedup", nil, Static)
	out := g.NewCollect(merged, "out")
	input := [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}}
	for _, e := range input {
		edges.Push(e)
		all.Push(e)
	}
	g.RunTick()
	// Two-hop paths: a->c, b->d.
	if len(out.Rows()) != 2 {
		t.Fatalf("two-hop paths = %v", out.SortedStrings())
	}
}
