package flow

import (
	"fmt"
	"hash/fnv"
)

// Exchange is the intra-operator partitioning primitive of §8.1/§9: it
// routes each row to one of n output partitions by a key function, the
// local half of a MapReduce/Exchange-style shuffle. In a distributed
// deployment, Hydrolysis wires each partition output to a network egress;
// on a single node it feeds parallel per-partition subgraphs.
func (g *Graph) Exchange(in Handle, name string, n int, key func(Row) any) []Handle {
	if n <= 0 {
		panic("flow: Exchange needs at least one partition")
	}
	// Each partition is a pass-through node; the router pushes directly.
	parts := make([]*node, n)
	out := make([]Handle, n)
	for i := range parts {
		p := g.addNode(fmt.Sprintf("exchange:%s[%d]", name, i), nil)
		p.process = func(p *node) {
			for _, v := range drain(p) {
				g.emit(p, v)
			}
		}
		parts[i] = p
		out[i] = Handle{g: g, n: p}
	}
	router := g.addNode("exchange:"+name, nil)
	router.process = func(rn *node) {
		for _, v := range drain(rn) {
			idx := partitionOf(key(v), n)
			target := parts[idx]
			// Push into the partition's implicit input buffer.
			target.in[0].push(v)
			g.schedule(target)
		}
	}
	g.connect(in.n, router)
	// Give each partition an input edge owned by the router.
	for _, p := range parts {
		g.connect(router, p)
		// The router's emit path is manual (we push directly), so remove
		// the automatic fan-out edges to avoid double delivery: emit is
		// never called on router.
	}
	// Clear router outputs: routing is explicit.
	router.out = nil
	return out
}

// partitionOf hashes a key to a partition index.
func partitionOf(key any, n int) int {
	h := fnv.New32a()
	fmt.Fprintf(h, "%v", key)
	return int(h.Sum32()) % n
}

// KeyedUnion re-merges partitioned streams (the "gather" side of a
// shuffle), preserving no particular order — set semantics downstream.
func (g *Graph) KeyedUnion(name string, parts []Handle) Handle {
	return g.Union("gather:"+name, parts...)
}
