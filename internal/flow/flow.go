// Package flow is the Hydroflow runtime of §2.3/§8: a strongly-typed-at-
// construction, push-based, single-node dataflow engine that unifies three
// styles of computation:
//
//   - collection dataflow (map/filter/join/distinct over streams of rows),
//   - lattice flows (monotone cells that pipeline like collections), and
//   - reactive scalars (versioned mutable values in the React/Rx style).
//
// A Graph executes in ticks. Within a tick, operators run to quiescence
// (fixpoint); operator state declared PerTick is cleared between ticks,
// Static state persists. All state is confined to the graph's owning
// goroutine: as in Anna, no locks or atomics are needed.
package flow

import (
	"fmt"
	"sort"
)

// Persistence controls whether operator state survives tick boundaries,
// mirroring Hydroflow's 'tick vs 'static lifetimes.
type Persistence int

// Persistence modes.
const (
	// PerTick state is cleared at the start of every tick.
	PerTick Persistence = iota
	// Static state persists for the lifetime of the graph.
	Static
)

// Row is a dataflow element. Collection operators carry rows; lattice
// operators carry lattice values boxed as Row.
type Row = any

// MergeFn is a lattice join over boxed values, with an equality used to
// detect quiescence.
type MergeFn struct {
	Merge func(a, b Row) Row
	Equal func(a, b Row) bool
}

// node is a vertex in the dataflow graph.
type node struct {
	id      int
	name    string
	in      []*edge
	out     []*edge
	process func(n *node)
	onTick  func() // called at tick start (clears PerTick state)
}

// edge is a handoff buffer between two operators.
type edge struct {
	buf []Row
	dst *node
}

func (e *edge) push(v Row) { e.buf = append(e.buf, v) }

// Graph is a single-node dataflow. It is not safe for concurrent use; one
// goroutine owns it (thread-per-core style, as in Anna/Hydroflow).
type Graph struct {
	nodes   []*node
	tick    uint64
	work    []*node
	pending map[int]bool
}

// NewGraph returns an empty dataflow graph.
func NewGraph() *Graph {
	return &Graph{pending: map[int]bool{}}
}

// Tick returns the number of completed ticks.
func (g *Graph) Tick() uint64 { return g.tick }

func (g *Graph) addNode(name string, process func(n *node)) *node {
	n := &node{id: len(g.nodes), name: name, process: process}
	g.nodes = append(g.nodes, n)
	return n
}

func (g *Graph) connect(from, to *node) *edge {
	e := &edge{dst: to}
	from.out = append(from.out, e)
	to.in = append(to.in, e)
	return e
}

func (g *Graph) schedule(n *node) {
	if !g.pending[n.id] {
		g.pending[n.id] = true
		g.work = append(g.work, n)
	}
}

// emit pushes v on every outgoing edge of n and schedules consumers. A node
// with multiple outputs acts as an implicit tee.
func (g *Graph) emit(n *node, v Row) {
	for _, e := range n.out {
		e.push(v)
		g.schedule(e.dst)
	}
}

// drain consumes and returns all buffered input rows of n.
func drain(n *node) []Row {
	var rows []Row
	for _, e := range n.in {
		rows = append(rows, e.buf...)
		e.buf = e.buf[:0]
	}
	return rows
}

// RunTick processes all pending work to quiescence and advances the tick.
// It returns the number of operator activations (a rough work measure used
// by the copy-efficiency benchmarks).
func (g *Graph) RunTick() int {
	for _, n := range g.nodes {
		if n.onTick != nil {
			n.onTick()
		}
	}
	activations := 0
	for len(g.work) > 0 {
		n := g.work[0]
		g.work = g.work[1:]
		delete(g.pending, n.id)
		n.process(n)
		activations++
	}
	g.tick++
	return activations
}

// Quiesced reports whether no operator has pending input.
func (g *Graph) Quiesced() bool { return len(g.work) == 0 }

// --- Operators ---

// Handle names an operator output that further operators can consume.
type Handle struct {
	g *Graph
	n *node
}

// Graph returns the owning graph.
func (h Handle) Graph() *Graph { return h.g }

// Name returns the operator's debug name.
func (h Handle) Name() string { return h.n.name }

// Source is an ingress point: values pushed from outside the graph.
type Source struct {
	Handle
}

// Push injects a value; it will be processed on the next RunTick (or the
// current one if called from inside an operator).
func (s Source) Push(v Row) {
	s.g.emit(s.n, v)
}

// PushAll injects a batch.
func (s Source) PushAll(vs ...Row) {
	for _, v := range vs {
		s.Push(v)
	}
}

// NewSource declares a named ingress.
func (g *Graph) NewSource(name string) Source {
	n := g.addNode("source:"+name, func(n *node) { drain(n) })
	return Source{Handle{g: g, n: n}}
}

// Map applies f to every row.
func (g *Graph) Map(in Handle, name string, f func(Row) Row) Handle {
	n := g.addNode("map:"+name, nil)
	n.process = func(n *node) {
		for _, v := range drain(n) {
			g.emit(n, f(v))
		}
	}
	g.connect(in.n, n)
	return Handle{g: g, n: n}
}

// Filter keeps rows satisfying pred.
func (g *Graph) Filter(in Handle, name string, pred func(Row) bool) Handle {
	n := g.addNode("filter:"+name, nil)
	n.process = func(n *node) {
		for _, v := range drain(n) {
			if pred(v) {
				g.emit(n, v)
			}
		}
	}
	g.connect(in.n, n)
	return Handle{g: g, n: n}
}

// FlatMap expands each row into zero or more rows.
func (g *Graph) FlatMap(in Handle, name string, f func(Row) []Row) Handle {
	n := g.addNode("flat_map:"+name, nil)
	n.process = func(n *node) {
		for _, v := range drain(n) {
			for _, o := range f(v) {
				g.emit(n, o)
			}
		}
	}
	g.connect(in.n, n)
	return Handle{g: g, n: n}
}

// Union merges any number of input streams.
func (g *Graph) Union(name string, ins ...Handle) Handle {
	n := g.addNode("union:"+name, nil)
	n.process = func(n *node) {
		for _, v := range drain(n) {
			g.emit(n, v)
		}
	}
	for _, in := range ins {
		g.connect(in.n, n)
	}
	return Handle{g: g, n: n}
}

// Distinct suppresses duplicate rows. Key extracts a comparable identity;
// pass nil to use the row itself (which must be comparable). Persistence
// Static dedupes across ticks — exactly the semantics of a grow-only set.
func (g *Graph) Distinct(in Handle, name string, key func(Row) any, p Persistence) Handle {
	if key == nil {
		key = func(v Row) any { return v }
	}
	seen := map[any]bool{}
	n := g.addNode("distinct:"+name, nil)
	n.process = func(n *node) {
		for _, v := range drain(n) {
			k := key(v)
			if !seen[k] {
				seen[k] = true
				g.emit(n, v)
			}
		}
	}
	if p == PerTick {
		n.onTick = func() { seen = map[any]bool{} }
	}
	return g.connectReturn(in, n)
}

func (g *Graph) connectReturn(in Handle, n *node) Handle {
	g.connect(in.n, n)
	return Handle{g: g, n: n}
}

// JoinPair is the output of a Join: the matching left and right rows.
type JoinPair struct {
	Key   any
	Left  Row
	Right Row
}

// Join performs a streaming symmetric hash join on key columns extracted by
// lk and rk. With Static persistence the build tables persist across ticks
// (incremental view maintenance); with PerTick they reset.
func (g *Graph) Join(left, right Handle, name string, lk, rk func(Row) any, p Persistence) Handle {
	lTab := map[any][]Row{}
	rTab := map[any][]Row{}
	n := g.addNode("join:"+name, nil)
	// Input edges are positional: edge 0 = left, edge 1 = right.
	n.process = func(n *node) {
		for _, v := range n.in[0].buf {
			k := lk(v)
			lTab[k] = append(lTab[k], v)
			for _, r := range rTab[k] {
				g.emit(n, JoinPair{Key: k, Left: v, Right: r})
			}
		}
		n.in[0].buf = n.in[0].buf[:0]
		for _, v := range n.in[1].buf {
			k := rk(v)
			rTab[k] = append(rTab[k], v)
			for _, l := range lTab[k] {
				g.emit(n, JoinPair{Key: k, Left: l, Right: v})
			}
		}
		n.in[1].buf = n.in[1].buf[:0]
	}
	if p == PerTick {
		n.onTick = func() { lTab, rTab = map[any][]Row{}, map[any][]Row{} }
	}
	g.connect(left.n, n)
	g.connect(right.n, n)
	return Handle{g: g, n: n}
}

// AntiJoin emits left rows whose key has no match in the right input *as of
// the end of the tick*. Because negation is non-monotonic, AntiJoin buffers
// its left input and only emits during FlushNegation, which the scheduler
// calls after the positive fixpoint — the operational form of stratified
// negation (§8.1).
type AntiJoin struct {
	Handle
	pend  []Row
	right map[any]bool
	lk    func(Row) any
}

// NewAntiJoin constructs the stratified difference operator.
func (g *Graph) NewAntiJoin(left, right Handle, name string, lk, rk func(Row) any) *AntiJoin {
	aj := &AntiJoin{right: map[any]bool{}, lk: lk}
	n := g.addNode("anti_join:"+name, nil)
	n.process = func(n *node) {
		aj.pend = append(aj.pend, n.in[0].buf...)
		n.in[0].buf = n.in[0].buf[:0]
		for _, v := range n.in[1].buf {
			aj.right[rk(v)] = true
		}
		n.in[1].buf = n.in[1].buf[:0]
	}
	n.onTick = func() {
		aj.pend = nil
		aj.right = map[any]bool{}
	}
	g.connect(left.n, n)
	g.connect(right.n, n)
	aj.Handle = Handle{g: g, n: n}
	return aj
}

// FlushNegation emits the anti-joined rows; call after RunTick has reached
// the positive fixpoint, then RunTick again to propagate.
func (aj *AntiJoin) FlushNegation() int {
	emitted := 0
	for _, v := range aj.pend {
		if !aj.right[aj.lk(v)] {
			aj.g.emit(aj.n, v)
			emitted++
		}
	}
	aj.pend = nil
	return emitted
}

// ForEach is a sink invoking f per row.
func (g *Graph) ForEach(in Handle, name string, f func(Row)) {
	n := g.addNode("for_each:"+name, nil)
	n.process = func(n *node) {
		for _, v := range drain(n) {
			f(v)
		}
	}
	g.connect(in.n, n)
}

// Collect is a sink accumulating rows into an internal slice.
type Collect struct {
	rows *[]Row
}

// Rows returns the accumulated rows.
func (c Collect) Rows() []Row { return *c.rows }

// SortedStrings renders accumulated rows as sorted strings (test helper).
func (c Collect) SortedStrings() []string {
	out := make([]string, len(*c.rows))
	for i, r := range *c.rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

// NewCollect attaches a collecting sink to in.
func (g *Graph) NewCollect(in Handle, name string) Collect {
	rows := &[]Row{}
	g.ForEach(in, "collect:"+name, func(v Row) { *rows = append(*rows, v) })
	return Collect{rows: rows}
}
