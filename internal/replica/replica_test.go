package replica

import (
	"testing"

	"hydro/internal/lattice"
	"hydro/internal/simnet"
)

func newNet(seed int64) *simnet.Network {
	return simnet.New(simnet.Config{Seed: seed, MinLatency: 10, MaxLatency: 50})
}

func addClient(net *simnet.Network, name string) {
	net.AddNode(name, func(now simnet.Time, msg simnet.Message) {})
}

func TestLogShipReplicatesToAllBackups(t *testing.T) {
	net := newNet(1)
	ls := NewLogShip(net, "kv", 3)
	addClient(net, "client")
	if _, err := ls.Submit("client", Op{Kind: "put", Key: "x", Value: 1}); err != nil {
		t.Fatal(err)
	}
	net.Drain(1000)
	for _, r := range ls.Replicas() {
		if got := ls.State(r).Data["x"]; got != 1 {
			t.Fatalf("replica %s missing write: %v", r, ls.State(r).Data)
		}
	}
	if !ls.Durable(1) {
		t.Fatal("write never became durable")
	}
}

func TestLogShipFailoverPromotesBackup(t *testing.T) {
	net := newNet(2)
	ls := NewLogShip(net, "kv", 3)
	ls.AckQuorum = 2
	addClient(net, "client")
	ls.Submit("client", Op{Kind: "put", Key: "a", Value: "v1"})
	net.Drain(1000)

	// Kill the primary; the next replica takes over.
	p0, _ := ls.Primary()
	net.SetDown(p0, true)
	p1, ok := ls.Primary()
	if !ok || p1 == p0 {
		t.Fatalf("failover primary = %q", p1)
	}
	ls.Submit("client", Op{Kind: "put", Key: "b", Value: "v2"})
	net.Drain(1000)
	if got := ls.State(p1).Data["b"]; got != "v2" {
		t.Fatalf("new primary did not apply write: %v", ls.State(p1).Data)
	}
	// The surviving second backup also has it (log shipping continues).
	third := ls.Replicas()[2]
	if got := ls.State(third).Data["b"]; got != "v2" {
		t.Fatalf("backup missing post-failover write: %v", ls.State(third).Data)
	}
}

func TestLogShipNoLiveReplica(t *testing.T) {
	net := newNet(3)
	ls := NewLogShip(net, "kv", 2)
	addClient(net, "client")
	net.SetDown("kv-0", true)
	net.SetDown("kv-1", true)
	if _, err := ls.Submit("client", Op{Kind: "put", Key: "x", Value: 1}); err == nil {
		t.Fatal("submit with no live replica must error")
	}
}

func TestProxyToleratesFFailures(t *testing.T) {
	for f := 1; f <= 2; f++ {
		net := newNet(int64(10 + f))
		replicas := []string{"r0", "r1", "r2"}
		served := 0
		for _, r := range replicas {
			HandleAtReplica(net, r, func(payload any) { served++ })
		}
		p := NewProxy(net, "proxy", replicas, f)
		// Fail exactly f replicas.
		for i := 0; i < f; i++ {
			net.SetDown(replicas[i], true)
		}
		id := p.Send("req")
		net.Drain(1000)
		if !p.Answered(id) {
			t.Fatalf("f=%d: request unanswered despite %d live replicas", f, 3-f)
		}
	}
}

func TestProxyFailsBeyondF(t *testing.T) {
	net := newNet(20)
	replicas := []string{"r0", "r1"}
	for _, r := range replicas {
		HandleAtReplica(net, r, nil)
	}
	p := NewProxy(net, "proxy", replicas, 1)
	net.SetDown("r0", true)
	net.SetDown("r1", true) // f+1 = 2 failures exceeds tolerance
	id := p.Send("req")
	net.Drain(1000)
	if p.Answered(id) {
		t.Fatal("answered with all replicas down")
	}
}

func TestLogShipResyncAfterPartition(t *testing.T) {
	net := newNet(40)
	ls := NewLogShip(net, "kv", 3)
	ls.AckQuorum = 2
	addClient(net, "client")
	ls.Submit("client", Op{Kind: "put", Key: "a", Value: 1})
	net.Drain(1000)

	// kv-2 is partitioned away while two more writes commit.
	net.Partition("kv-0", "kv-2")
	ls.Submit("client", Op{Kind: "put", Key: "b", Value: 2})
	ls.Submit("client", Op{Kind: "put", Key: "c", Value: 3})
	net.Drain(2000)
	if len(ls.State("kv-2").Log) != 1 {
		t.Fatalf("partitioned backup log = %d records", len(ls.State("kv-2").Log))
	}

	// Heal; the next shipped record exposes the gap and triggers resync.
	net.Heal("kv-0", "kv-2")
	ls.Submit("client", Op{Kind: "put", Key: "d", Value: 4})
	net.Drain(4000)
	got := ls.State("kv-2").Data
	for _, k := range []string{"a", "b", "c", "d"} {
		if _, ok := got[k]; !ok {
			t.Fatalf("backup missing %q after resync: %v", k, got)
		}
	}
	if len(ls.State("kv-2").Log) != 4 {
		t.Fatalf("backup log = %d records, want 4 in order", len(ls.State("kv-2").Log))
	}
	for i, op := range ls.State("kv-2").Log {
		if op.Seq != uint64(i+1) {
			t.Fatalf("log out of order after resync: %v", ls.State("kv-2").Log)
		}
	}
}

func TestLogShipIgnoresDuplicateReplay(t *testing.T) {
	net := newNet(41)
	ls := NewLogShip(net, "kv", 2)
	addClient(net, "client")
	ls.Submit("client", Op{Kind: "put", Key: "x", Value: 1})
	net.Drain(1000)
	// Re-deliver the same record directly: the backup must skip it.
	op := ls.State("kv-0").Log[0]
	net.Send("kv-0", "kv-1", shipMsg{Op: op})
	net.Drain(1000)
	if len(ls.State("kv-1").Log) != 1 {
		t.Fatalf("duplicate replay applied: %v", ls.State("kv-1").Log)
	}
}

// setLattice adapts lattice.Set[string] to the gossip interface.
type setLattice struct {
	s lattice.Set[string]
}

func (sl *setLattice) MergeAny(other any)      { sl.s = sl.s.Merge(other.(lattice.Set[string])) }
func (sl *setLattice) SnapshotAny() any        { return sl.s }
func (sl *setLattice) EqualAny(other any) bool { return sl.s.Equal(other.(lattice.Set[string])) }

func TestGossipConverges(t *testing.T) {
	net := newNet(30)
	names := []string{"g0", "g1", "g2", "g3"}
	var gs []*Gossiper
	for i, n := range names {
		st := &setLattice{s: lattice.NewSet("seed-" + n)}
		_ = i
		gs = append(gs, NewGossiper(net, n, names, st, 100))
	}
	for _, g := range gs {
		g.Start()
	}
	net.RunUntil(2000)
	if !ConvergedStates(gs) {
		t.Fatal("gossip did not converge")
	}
	final := gs[0].State().SnapshotAny().(lattice.Set[string])
	if final.Len() != 4 {
		t.Fatalf("converged set has %d elems, want 4: %v", final.Len(), final)
	}
}

func TestGossipConvergesDespitePartition(t *testing.T) {
	net := newNet(31)
	names := []string{"g0", "g1", "g2"}
	var gs []*Gossiper
	for _, n := range names {
		gs = append(gs, NewGossiper(net, n, names, &setLattice{s: lattice.NewSet("v-" + n)}, 100))
	}
	for _, g := range gs {
		g.Start()
	}
	// g0 cannot talk to g2 directly; g1 relays.
	net.Partition("g0", "g2")
	net.RunUntil(3000)
	if !ConvergedStates(gs) {
		t.Fatal("gossip did not route around the partition via g1")
	}
}

func TestGossipIdempotentUnderRedelivery(t *testing.T) {
	net := simnet.New(simnet.Config{Seed: 5, MinLatency: 10, MaxLatency: 500})
	names := []string{"g0", "g1"}
	a := NewGossiper(net, "g0", names, &setLattice{s: lattice.NewSet("x")}, 50)
	b := NewGossiper(net, "g1", names, &setLattice{s: lattice.NewSet("y")}, 50)
	a.Start()
	b.Start()
	net.RunUntil(5000) // many redundant rounds
	if !ConvergedStates([]*Gossiper{a, b}) {
		t.Fatal("not converged")
	}
	if got := a.State().SnapshotAny().(lattice.Set[string]); got.Len() != 2 {
		t.Fatalf("idempotence violated: %v", got)
	}
}
