// Package replica implements the availability facet's mechanism toolbox
// (§6.1): replicated service endpoints that tolerate f independent failures
// across a chosen failure domain. Three redundancy designs are provided —
// the design space the Hydrolysis compiler chooses from:
//
//   - Proxy: a load-balancing client proxy that fans each request to f+1
//     replicas and returns the first response (§6.1's "client proxy module").
//   - LogShip: primary/backup logical logging — the primary applies an
//     operation, ships the log record, backups replay (§6.1's "log-shipping
//     pattern").
//   - Gossip: anti-entropy exchange of lattice state between peers —
//     coordination-free availability for monotone state.
package replica

import (
	"fmt"
	"sort"

	"hydro/internal/simnet"
)

// Op is a logged state-machine operation.
type Op struct {
	Seq   uint64
	Kind  string
	Key   string
	Value any
}

// KVState is the replicated toy state machine used by availability tests
// and experiments: a last-write-wins map plus an append log.
type KVState struct {
	Data map[string]any
	Log  []Op
}

// NewKVState returns empty state.
func NewKVState() *KVState { return &KVState{Data: map[string]any{}} }

// Apply executes an op.
func (s *KVState) Apply(op Op) {
	s.Log = append(s.Log, op)
	switch op.Kind {
	case "put":
		s.Data[op.Key] = op.Value
	case "del":
		delete(s.Data, op.Key)
	}
}

// --- Primary/backup log shipping ---

type shipMsg struct {
	Op Op
}

type shipAck struct {
	Seq uint64
}

type resyncReq struct {
	From uint64 // first missing sequence number
}

type clientReq struct {
	ID    uint64
	Op    Op
	Reply string
}

type clientResp struct {
	ID  uint64
	Seq uint64
	OK  bool
}

// LogShip is a primary-backup replication group. Writes go to the current
// primary, which assigns a sequence, applies locally, and ships the record
// to every backup. Failover promotes the next live replica by ID order.
type LogShip struct {
	net      *simnet.Network
	replicas []string
	states   map[string]*KVState
	seq      uint64
	acks     map[uint64]map[string]bool
	// AckQuorum is how many replicas (including the primary) must hold an
	// op before it is reported durable; defaults to all.
	AckQuorum int
	durable   map[uint64]bool
	// Responses delivered to clients: reqID → ok.
	responses map[uint64]bool
}

// NewLogShip builds a primary/backup group named name-0..name-{n-1}.
func NewLogShip(net *simnet.Network, name string, n int) *LogShip {
	ls := &LogShip{
		net:       net,
		states:    map[string]*KVState{},
		acks:      map[uint64]map[string]bool{},
		durable:   map[uint64]bool{},
		responses: map[uint64]bool{},
		AckQuorum: n,
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("%s-%d", name, i)
		ls.replicas = append(ls.replicas, id)
		ls.states[id] = NewKVState()
		rid := id
		net.AddNode(rid, func(now simnet.Time, msg simnet.Message) { ls.handle(rid, msg) })
	}
	return ls
}

// Replicas returns the replica IDs in priority order.
func (ls *LogShip) Replicas() []string { return append([]string(nil), ls.replicas...) }

// Primary returns the first live replica (failover by ID order).
func (ls *LogShip) Primary() (string, bool) {
	for _, r := range ls.replicas {
		if !ls.net.Down(r) {
			return r, true
		}
	}
	return "", false
}

// State exposes a replica's state for inspection.
func (ls *LogShip) State(replica string) *KVState { return ls.states[replica] }

// Submit sends a client write into the group via the current primary. It
// returns the request ID, or an error when no replica is live.
func (ls *LogShip) Submit(client string, op Op) (uint64, error) {
	primary, ok := ls.Primary()
	if !ok {
		return 0, fmt.Errorf("logship: no live replica")
	}
	ls.seq++ // client-visible request ID namespace
	req := clientReq{ID: ls.seq, Op: op, Reply: client}
	ls.net.Send(client, primary, req)
	return req.ID, nil
}

// Durable reports whether the op with the given primary-assigned sequence
// reached the ack quorum.
func (ls *LogShip) Durable(seq uint64) bool { return ls.durable[seq] }

// Responded reports whether the client request got a response.
func (ls *LogShip) Responded(reqID uint64) bool { return ls.responses[reqID] }

func (ls *LogShip) handle(self string, msg simnet.Message) {
	switch m := msg.Payload.(type) {
	case clientReq:
		primary, ok := ls.Primary()
		if !ok || primary != self {
			// Not primary: forward (a real system would redirect).
			if ok {
				ls.net.Send(self, primary, m)
			}
			return
		}
		op := m.Op
		op.Seq = uint64(len(ls.states[self].Log) + 1)
		ls.states[self].Apply(op)
		ls.acks[op.Seq] = map[string]bool{self: true}
		for _, r := range ls.replicas {
			if r != self {
				ls.net.Send(self, r, shipMsg{Op: op})
			}
		}
		ls.maybeDurable(op.Seq)
		ls.net.Send(self, m.Reply, clientResp{ID: m.ID, Seq: op.Seq, OK: true})
	case shipMsg:
		// Gap detection: a backup that missed records (drops, transient
		// partition) requests a resync from the current primary instead
		// of applying out of order.
		next := uint64(len(ls.states[self].Log) + 1)
		if m.Op.Seq > next {
			if primary, ok := ls.Primary(); ok {
				ls.net.Send(self, primary, resyncReq{From: next})
			}
			return
		}
		if m.Op.Seq < next {
			return // duplicate replay; idempotent skip
		}
		ls.states[self].Apply(m.Op)
		if primary, ok := ls.Primary(); ok {
			ls.net.Send(self, primary, shipAck{Seq: m.Op.Seq})
		}
	case resyncReq:
		// Primary ships every record from the requested sequence.
		log := ls.states[self].Log
		for _, op := range log {
			if op.Seq >= m.From {
				ls.net.Send(self, msg.From, shipMsg{Op: op})
			}
		}
	case shipAck:
		if ls.acks[m.Seq] == nil {
			ls.acks[m.Seq] = map[string]bool{}
		}
		ls.acks[m.Seq][msg.From] = true
		ls.maybeDurable(m.Seq)
	}
}

func (ls *LogShip) maybeDurable(seq uint64) {
	if len(ls.acks[seq]) >= ls.AckQuorum {
		ls.durable[seq] = true
	}
}

// --- Client proxy fan-out (availability for request handling) ---

// Proxy fans each request out to f+1 replicas and reports success if any
// replica responds: the interposed "load-balancing client proxy" of §6.1.
type Proxy struct {
	net      *simnet.Network
	name     string
	replicas []string
	F        int
	next     int
	// Got maps request ID → replicas that answered.
	Got map[uint64]map[string]bool
	seq uint64
}

// NewProxy registers a proxy node fanning out to the given replica nodes.
func NewProxy(net *simnet.Network, name string, replicas []string, f int) *Proxy {
	p := &Proxy{net: net, name: name, replicas: replicas, F: f, Got: map[uint64]map[string]bool{}}
	net.AddNode(name, func(now simnet.Time, msg simnet.Message) {
		if r, ok := msg.Payload.(proxyResp); ok {
			if p.Got[r.ID] == nil {
				p.Got[r.ID] = map[string]bool{}
			}
			p.Got[r.ID][msg.From] = true
		}
	})
	return p
}

type proxyReq struct {
	ID      uint64
	Payload any
	Reply   string
}

type proxyResp struct {
	ID uint64
}

// HandleAtReplica is the handler replicas install to answer proxy requests.
func HandleAtReplica(net *simnet.Network, replica string, work func(payload any)) {
	net.AddNode(replica, func(now simnet.Time, msg simnet.Message) {
		if req, ok := msg.Payload.(proxyReq); ok {
			if work != nil {
				work(req.Payload)
			}
			net.Send(replica, req.Reply, proxyResp{ID: req.ID})
		}
	})
}

// Send fans a request to f+1 replicas round-robin and returns its ID.
func (p *Proxy) Send(payload any) uint64 {
	p.seq++
	id := p.seq
	for i := 0; i <= p.F && i < len(p.replicas); i++ {
		target := p.replicas[(p.next+i)%len(p.replicas)]
		p.net.Send(p.name, target, proxyReq{ID: id, Payload: payload, Reply: p.name})
	}
	p.next++
	return id
}

// Answered reports whether at least one replica responded to request id.
func (p *Proxy) Answered(id uint64) bool { return len(p.Got[id]) > 0 }

// --- Gossip anti-entropy for lattice state ---

// LatticeState is the minimal lattice interface gossip needs, over boxed
// values (the flow/lattice packages provide typed versions).
type LatticeState interface {
	MergeAny(other any) // mutate-in-place merge
	SnapshotAny() any   // immutable copy to ship
	EqualAny(other any) bool
}

// Gossiper replicates a lattice value by periodic pairwise anti-entropy: a
// coordination-free availability mechanism that is always safe for monotone
// state (CALM).
type Gossiper struct {
	net      *simnet.Network
	name     string
	peers    []string
	state    LatticeState
	Interval simnet.Time
	Rounds   int
}

type gossipMsg struct {
	Snapshot any
}

type gossipTick struct{}

// NewGossiper registers a gossip node. Call Start to begin rounds.
func NewGossiper(net *simnet.Network, name string, peers []string, state LatticeState, interval simnet.Time) *Gossiper {
	g := &Gossiper{net: net, name: name, peers: peers, state: state, Interval: interval}
	net.AddNode(name, func(now simnet.Time, msg simnet.Message) {
		switch m := msg.Payload.(type) {
		case gossipMsg:
			g.state.MergeAny(m.Snapshot)
		case gossipTick:
			g.round()
			g.Rounds++
			net.After(name, g.Interval, gossipTick{})
		}
	})
	return g
}

// Start schedules the first gossip round.
func (g *Gossiper) Start() { g.net.After(g.name, g.Interval, gossipTick{}) }

// GossipPayload wraps a client write so that a Gossiper merges it on
// receipt — clients inject monotone updates through the same anti-entropy
// path replicas use.
func GossipPayload(snapshot any) any { return gossipMsg{Snapshot: snapshot} }

// State returns the gossiped lattice state.
func (g *Gossiper) State() LatticeState { return g.state }

func (g *Gossiper) round() {
	snap := g.state.SnapshotAny()
	for _, p := range g.peers {
		if p != g.name {
			g.net.Send(g.name, p, gossipMsg{Snapshot: snap})
		}
	}
}

// ConvergedStates reports whether all the given gossipers hold equal state.
func ConvergedStates(gs []*Gossiper) bool {
	if len(gs) < 2 {
		return true
	}
	first := gs[0].state.SnapshotAny()
	for _, g := range gs[1:] {
		if !g.state.EqualAny(first) {
			return false
		}
	}
	return true
}

// SortedKeys is a small helper for deterministic iteration in tests.
func SortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
