package kvs

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestPutGet(t *testing.T) {
	s := NewStore(4, 1)
	defer s.Close()
	s.Put("k", NewValue(1, "w1", "hello"))
	v, ok := s.Get("k")
	if !ok || v.Val != "hello" {
		t.Fatalf("get = %v %v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("phantom key")
	}
}

func TestLWWMergeOnPut(t *testing.T) {
	s := NewStore(2, 1)
	defer s.Close()
	s.Put("k", NewValue(5, "a", "old"))
	s.Put("k", NewValue(9, "b", "new"))
	s.Put("k", NewValue(7, "c", "middle")) // dominated: must not win
	v, _ := s.Get("k")
	if v.Val != "new" {
		t.Fatalf("lww resolution = %q, want new", v.Val)
	}
}

func TestConcurrentWritersConvergeDeterministically(t *testing.T) {
	s := NewStore(8, 1)
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("k%d", i%10)
				s.Put(key, NewValue(uint64(i), fmt.Sprintf("w%d", w), fmt.Sprintf("v%d-%d", w, i)))
			}
		}(w)
	}
	wg.Wait()
	// Every key k_j's winner has the max stamp written to it (90+j) and
	// the tie resolves to the largest writer ID — deterministic regardless
	// of interleaving.
	for i := 0; i < 10; i++ {
		v, ok := s.Get(fmt.Sprintf("k%d", i))
		if !ok {
			t.Fatalf("k%d missing", i)
		}
		if v.Stamp != uint64(90+i) || v.Tie != "w7" {
			t.Fatalf("k%d resolved to stamp=%d tie=%s, want %d/w7", i, v.Stamp, v.Tie, 90+i)
		}
	}
}

func TestReplicationAndGossipConvergence(t *testing.T) {
	s := NewStore(4, 3)
	defer s.Close()
	s.Put("key", NewValue(1, "w", "v1"))
	// Primary has it immediately.
	if v, ok := s.GetReplica("key", 0); !ok || v.Val != "v1" {
		t.Fatal("primary missing write")
	}
	// Drain async replica writes then check; if still missing, gossip
	// must repair.
	s.GossipRound()
	for i := 0; i < 3; i++ {
		v, ok := s.GetReplica("key", i)
		if !ok || v.Val != "v1" {
			t.Fatalf("replica %d missing after gossip: %v %v", i, v, ok)
		}
	}
}

func TestGossipRepairsDivergence(t *testing.T) {
	s := NewStore(6, 2)
	defer s.Close()
	for i := 0; i < 50; i++ {
		s.Put(fmt.Sprintf("k%d", i), NewValue(uint64(i), "w", fmt.Sprintf("v%d", i)))
	}
	s.GossipRound()
	s.GossipRound()
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		a, okA := s.GetReplica(key, 0)
		b, okB := s.GetReplica(key, 1)
		if !okA || !okB || !a.Equal(b) {
			t.Fatalf("replicas of %s diverged: %v/%v", key, a, b)
		}
	}
}

func TestLockedStoreBaseline(t *testing.T) {
	s := NewLockedStore()
	s.Put("k", NewValue(1, "w", "x"))
	s.Put("k", NewValue(2, "w", "y"))
	if v, ok := s.Get("k"); !ok || v.Val != "y" {
		t.Fatalf("locked store get = %v %v", v, ok)
	}
}

func TestStoreAndBaselineAgreeUnderRandomOps(t *testing.T) {
	anna := NewStore(4, 1)
	defer anna.Close()
	base := NewLockedStore()
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k%d", r.Intn(20))
		v := NewValue(uint64(r.Intn(100)), fmt.Sprintf("w%d", r.Intn(4)), fmt.Sprintf("v%d", i))
		anna.Put(key, v)
		base.Put(key, v)
	}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("k%d", i)
		av, aok := anna.Get(key)
		bv, bok := base.Get(key)
		if aok != bok {
			t.Fatalf("%s presence mismatch", key)
		}
		if aok && !av.Equal(bv) {
			t.Fatalf("%s: anna=%v locked=%v", key, av, bv)
		}
	}
}
