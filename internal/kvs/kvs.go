// Package kvs is an Anna-style key-value store (§1.2, §2.3): lattice-valued
// state partitioned across shard goroutines, each of which owns its data
// exclusively — no locks, no atomics, exactly the "all state is thread
// local" discipline the paper attributes to Anna and Hydroflow. Replication
// across shards is coordination-free: replicas exchange lattice state via
// anti-entropy merges and converge because merges are ACI.
//
// A mutex-protected map (LockedStore) provides the conventional baseline
// for experiment E9's thread-scaling comparison.
package kvs

import (
	"hash/fnv"
	"sync"

	"hydro/internal/lattice"
)

// Value is the stored lattice: a last-writer-wins register. Clients supply
// stamps (e.g. a local clock); concurrent writes resolve deterministically.
type Value = lattice.LWW[string]

// NewValue builds a register value.
func NewValue(stamp uint64, writer, val string) Value {
	return lattice.NewLWW(stamp, writer, val, func(a, b string) bool { return a == b })
}

type reqKind int

const (
	reqPut reqKind = iota
	reqGet
	reqMergeBulk
	reqSnapshot
)

type request struct {
	kind reqKind
	key  string
	val  Value
	bulk map[string]Value
	resp chan response
}

type response struct {
	val  Value
	ok   bool
	snap map[string]Value
}

type shard struct {
	id   int
	data map[string]Value
	req  chan request
}

func (sh *shard) run() {
	for r := range sh.req {
		switch r.kind {
		case reqPut:
			if cur, ok := sh.data[r.key]; ok {
				sh.data[r.key] = cur.Merge(r.val)
			} else {
				sh.data[r.key] = r.val
			}
			if r.resp != nil {
				r.resp <- response{ok: true}
			}
		case reqGet:
			v, ok := sh.data[r.key]
			r.resp <- response{val: v, ok: ok}
		case reqMergeBulk:
			for k, v := range r.bulk {
				if cur, ok := sh.data[k]; ok {
					sh.data[k] = cur.Merge(v)
				} else {
					sh.data[k] = v
				}
			}
			if r.resp != nil {
				r.resp <- response{ok: true}
			}
		case reqSnapshot:
			snap := make(map[string]Value, len(sh.data))
			for k, v := range sh.data {
				snap[k] = v
			}
			r.resp <- response{snap: snap, ok: true}
		}
	}
}

// Store is the sharded, optionally replicated KVS.
type Store struct {
	shards      []*shard
	replication int
	closed      sync.Once
}

// NewStore starts nShards shard goroutines with the given replication
// factor (each key lives on `replication` consecutive shards).
func NewStore(nShards, replication int) *Store {
	if replication < 1 {
		replication = 1
	}
	if replication > nShards {
		replication = nShards
	}
	s := &Store{replication: replication}
	for i := 0; i < nShards; i++ {
		sh := &shard{id: i, data: map[string]Value{}, req: make(chan request, 128)}
		s.shards = append(s.shards, sh)
		go sh.run()
	}
	return s
}

// Close stops the shard goroutines.
func (s *Store) Close() {
	s.closed.Do(func() {
		for _, sh := range s.shards {
			close(sh.req)
		}
	})
}

func (s *Store) home(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32()) % len(s.shards)
}

// replicasOf returns the shard indexes holding key.
func (s *Store) replicasOf(key string) []int {
	out := make([]int, s.replication)
	home := s.home(key)
	for i := 0; i < s.replication; i++ {
		out[i] = (home + i) % len(s.shards)
	}
	return out
}

// Put merges a value into the key's primary replica synchronously and into
// the other replicas asynchronously — writes are coordination-free; the
// lattice makes the fan-out safe under any interleaving.
func (s *Store) Put(key string, v Value) {
	reps := s.replicasOf(key)
	resp := make(chan response, 1)
	s.shards[reps[0]].req <- request{kind: reqPut, key: key, val: v, resp: resp}
	<-resp
	for _, r := range reps[1:] {
		s.shards[r].req <- request{kind: reqPut, key: key, val: v}
	}
}

// Get reads from the key's primary replica.
func (s *Store) Get(key string) (Value, bool) {
	return s.getFrom(s.replicasOf(key)[0], key)
}

// GetReplica reads from the i-th replica of key (possibly stale — the
// eventual-consistency observation point).
func (s *Store) GetReplica(key string, i int) (Value, bool) {
	reps := s.replicasOf(key)
	return s.getFrom(reps[i%len(reps)], key)
}

func (s *Store) getFrom(shardIdx int, key string) (Value, bool) {
	resp := make(chan response, 1)
	s.shards[shardIdx].req <- request{kind: reqGet, key: key, resp: resp}
	r := <-resp
	return r.val, r.ok
}

// GossipRound performs one anti-entropy pass: every shard ships a snapshot
// of its keys to the other replicas of those keys. After a round with no
// concurrent writes, all replicas of every key are equal.
func (s *Store) GossipRound() {
	for i, sh := range s.shards {
		resp := make(chan response, 1)
		sh.req <- request{kind: reqSnapshot, resp: resp}
		snap := (<-resp).snap
		// Partition the snapshot by destination replica shard.
		byDest := map[int]map[string]Value{}
		for k, v := range snap {
			for _, r := range s.replicasOf(k) {
				if r == i {
					continue
				}
				if byDest[r] == nil {
					byDest[r] = map[string]Value{}
				}
				byDest[r][k] = v
			}
		}
		for dest, bulk := range byDest {
			ack := make(chan response, 1)
			s.shards[dest].req <- request{kind: reqMergeBulk, bulk: bulk, resp: ack}
			<-ack
		}
	}
}

// LockedStore is the conventional baseline: one map, one mutex. Same
// interface shape as Store for the scaling benchmark.
type LockedStore struct {
	mu   sync.Mutex
	data map[string]Value
}

// NewLockedStore returns an empty locked store.
func NewLockedStore() *LockedStore {
	return &LockedStore{data: map[string]Value{}}
}

// Put merges under the global lock.
func (s *LockedStore) Put(key string, v Value) {
	s.mu.Lock()
	if cur, ok := s.data[key]; ok {
		s.data[key] = cur.Merge(v)
	} else {
		s.data[key] = v
	}
	s.mu.Unlock()
}

// Get reads under the global lock.
func (s *LockedStore) Get(key string) (Value, bool) {
	s.mu.Lock()
	v, ok := s.data[key]
	s.mu.Unlock()
	return v, ok
}
