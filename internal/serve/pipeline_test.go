package serve

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"hydro/internal/datalog"
	"hydro/internal/transducer"
)

// TestServeLanes: with Config.Lanes a serializable burst cannot convoy
// monotone traffic — interleaved serializable requests drain through their
// own lane while the monotone batch keeps filling, instead of cutting it
// into fragments the way in-place (lanes-off) serialization does.
func TestServeLanes(t *testing.T) {
	submitMix := func(s *Server) []*Pending {
		var ps []*Pending
		// a, i, a, i, a, a: two serializable incrs interleaved into four adds.
		ps = append(ps, mustSubmit(t, s, "add_edge", datalog.Tuple{int64(1), int64(2)}))
		ps = append(ps, mustSubmit(t, s, "incr", datalog.Tuple{}))
		ps = append(ps, mustSubmit(t, s, "add_edge", datalog.Tuple{int64(2), int64(3)}))
		ps = append(ps, mustSubmit(t, s, "incr", datalog.Tuple{}))
		ps = append(ps, mustSubmit(t, s, "add_edge", datalog.Tuple{int64(3), int64(4)}))
		ps = append(ps, mustSubmit(t, s, "add_edge", datalog.Tuple{int64(4), int64(5)}))
		return ps
	}

	// Lanes off (the default): each serializable request cuts the monotone
	// batch in place, fragmenting the adds.
	sOff := New(newGraphRuntime(t, 1), Config{
		MaxBatch: 4, MaxWait: 50 * time.Millisecond, QueueDepth: 16,
		SerialMailboxes: []string{"incr"},
	})
	releaseOff := holdLoop(t, sOff)
	psOff := submitMix(sOff)
	releaseOff()
	maxAddBatch := 0
	for _, p := range psOff {
		r := p.Wait()
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Timing.Mailbox == "add_edge" && r.Timing.BatchSize > maxAddBatch {
			maxAddBatch = r.Timing.BatchSize
		}
	}
	if maxAddBatch >= 4 {
		t.Fatalf("lanes-off: serial cuts should fragment the adds, got a batch of %d", maxAddBatch)
	}
	sOff.Close()

	// Lanes on: the four adds ride one full batch despite the interleaved
	// serializable traffic, and the incrs still tick alone (exact counter).
	sOn := New(newGraphRuntime(t, 1), Config{
		MaxBatch: 4, MaxWait: 50 * time.Millisecond, QueueDepth: 16,
		SerialMailboxes: []string{"incr"}, Lanes: true,
	})
	releaseOn := holdLoop(t, sOn)
	psOn := submitMix(sOn)
	releaseOn()
	for _, p := range psOn {
		r := p.Wait()
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		switch r.Timing.Mailbox {
		case "add_edge":
			if r.Timing.BatchSize != 4 {
				t.Fatalf("lanes-on add batch size = %d, want the un-convoyed 4", r.Timing.BatchSize)
			}
		case "incr":
			if r.Timing.BatchSize != 1 {
				t.Fatalf("serializable request batched at size %d", r.Timing.BatchSize)
			}
		}
	}
	m := sOn.Metrics()
	if m.SizeFlushes != 1 || m.SerialFlushes != 2 {
		t.Fatalf("lanes-on: size=%d serial=%d flushes, want 1/2", m.SizeFlushes, m.SerialFlushes)
	}
	var count int64
	if err := sOn.Sync(func(rt *transducer.Runtime) { count = rt.Var("count").(int64) }); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("serializable counter = %d, want 2 (one tick per incr)", count)
	}
	sOn.Close()
}

// TestServeQuota: a mailbox at its admission quota fails fast with
// ErrOverQuota, and the slot frees when the request is responded to.
func TestServeQuota(t *testing.T) {
	s := New(newGraphRuntime(t, 1), Config{
		MaxBatch: 4, MaxWait: time.Millisecond, QueueDepth: 16,
		MailboxQuota: map[string]int{"add_edge": 2},
	})
	defer s.Close()
	release := holdLoop(t, s)
	p1 := mustSubmit(t, s, "add_edge", datalog.Tuple{int64(1), int64(2)})
	p2 := mustSubmit(t, s, "add_edge", datalog.Tuple{int64(2), int64(3)})
	if _, err := s.Submit(Request{Mailbox: "add_edge", Payload: datalog.Tuple{int64(3), int64(4)}}); !errors.Is(err, ErrOverQuota) {
		t.Fatalf("third in-flight add_edge must trip the quota, got %v", err)
	}
	// The quota is per mailbox: other traffic is unaffected.
	p3 := mustSubmit(t, s, "count_paths", datalog.Tuple{})
	release()
	for _, p := range []*Pending{p1, p2, p3} {
		if r := p.Wait(); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	// Responded → slots free → admission works again.
	if r := mustSubmit(t, s, "add_edge", datalog.Tuple{int64(3), int64(4)}).Wait(); r.Err != nil {
		t.Fatal(r.Err)
	}
	if m := s.Metrics(); m.OverQuota != 1 {
		t.Fatalf("OverQuota = %d, want 1", m.OverQuota)
	}
}

// TestServeDeadlineShed: a request whose enqueue age exceeds its deadline
// is shed with ErrDeadlineExceeded before occupying a tick slot; fresh
// batchmates are unaffected.
func TestServeDeadlineShed(t *testing.T) {
	s := New(newGraphRuntime(t, 1), Config{MaxBatch: 4, MaxWait: time.Millisecond, QueueDepth: 16})
	defer s.Close()
	release := holdLoop(t, s)
	stale, err := s.Submit(Request{Mailbox: "add_edge", Payload: datalog.Tuple{int64(1), int64(2)}, Deadline: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	fresh := mustSubmit(t, s, "add_edge", datalog.Tuple{int64(2), int64(3)})
	time.Sleep(5 * time.Millisecond) // let the stale request's deadline lapse in the queue
	release()
	if r := stale.Wait(); !errors.Is(r.Err, ErrDeadlineExceeded) || !r.Timing.Rejected {
		t.Fatalf("stale request resp = %+v, want ErrDeadlineExceeded", r)
	}
	if r := fresh.Wait(); r.Err != nil {
		t.Fatal(r.Err)
	}
	if m := s.Metrics(); m.DeadlineShed != 1 {
		t.Fatalf("DeadlineShed = %d, want 1", m.DeadlineShed)
	}
	if got := len(rt0Tuples(t, s, "edge")); got != 1 {
		t.Fatalf("edge has %d rows, want only the fresh request's 1", got)
	}
}

// TestServeDefaultDeadline: Config.DefaultDeadline applies to requests
// that don't carry their own.
func TestServeDefaultDeadline(t *testing.T) {
	s := New(newGraphRuntime(t, 1), Config{
		MaxBatch: 4, MaxWait: time.Millisecond, QueueDepth: 16,
		DefaultDeadline: time.Millisecond,
	})
	defer s.Close()
	release := holdLoop(t, s)
	p := mustSubmit(t, s, "add_edge", datalog.Tuple{int64(1), int64(2)})
	time.Sleep(5 * time.Millisecond)
	release()
	if r := p.Wait(); !errors.Is(r.Err, ErrDeadlineExceeded) {
		t.Fatalf("resp = %+v, want the default deadline to shed it", r)
	}
}

// TestServeGaugeNeverNegative is the regression for the queue-depth gauge
// race: Submit used to increment after the channel send, so the
// collector's decrement could land first and QueueDepth() could read
// negative. Hammer concurrent submitters against the dequeuing collector
// and sample the gauge throughout (run under -race in CI).
func TestServeGaugeNeverNegative(t *testing.T) {
	s := New(newGraphRuntime(t, 1), Config{
		MaxBatch: 8, MaxWait: 50 * time.Microsecond, QueueDepth: 8, Policy: Shed,
	})
	defer s.Close()

	stopSampling := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stopSampling:
				return
			default:
			}
			if d := s.QueueDepth(); d < 0 {
				t.Errorf("QueueDepth = %d, gauge went negative", d)
				return
			}
		}
	}()

	const submitters, perSubmitter = 4, 500
	var wg sync.WaitGroup
	pending := make(chan *Pending, submitters*perSubmitter)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				p, err := s.Submit(Request{Mailbox: "add_edge", Payload: datalog.Tuple{int64(g*perSubmitter + i), int64(1 << 30)}})
				if err != nil {
					continue // shed under pressure: expected
				}
				pending <- p
			}
		}(g)
	}
	wg.Wait()
	close(pending)
	for p := range pending {
		if r := p.Wait(); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	close(stopSampling)
	sampler.Wait()
	if d := s.QueueDepth(); d != 0 {
		t.Fatalf("drained gauge = %d, want 0", d)
	}
	if hw := s.Metrics().QueueHighWater; hw < 1 || hw > 8+1 {
		// QueueDepth slots + at most simultaneous refused attempts; a value
		// past QueueDepth+submitters would mean lost decrements.
		if hw > 8+submitters {
			t.Fatalf("QueueHighWater = %d, beyond QueueDepth+submitters", hw)
		}
	}
}

// TestServeCloseDuringInflightBatch: Close while a batch is mid-tick. The
// in-flight batch (and anything already handed off) always completes;
// the queued backlog is served under Block and resolved with ErrClosed
// under Shed. Either way no goroutine is left blocked in Pending.Wait.
func TestServeCloseDuringInflightBatch(t *testing.T) {
	for _, policy := range []Policy{Block, Shed} {
		name := map[Policy]string{Block: "Block", Shed: "Shed"}[policy]
		t.Run(name, func(t *testing.T) {
			rt := newGraphRuntime(t, 1)
			entered := make(chan struct{})
			resume := make(chan struct{}, 16)
			var once sync.Once
			rt.RegisterHandler("slow", func(tx *transducer.Tx, msg transducer.Message) {
				once.Do(func() { close(entered) })
				<-resume
			})
			s := New(rt, Config{MaxBatch: 1, MaxWait: time.Hour, QueueDepth: 16, Policy: policy})

			pSlow1 := mustSubmit(t, s, "slow", datalog.Tuple{})
			<-entered // eval is now blocked mid-tick on batch 1
			pSlow2 := mustSubmit(t, s, "slow", datalog.Tuple{})
			var tail []*Pending
			for i := 0; i < 3; i++ {
				tail = append(tail, mustSubmit(t, s, "add_edge", datalog.Tuple{int64(i), int64(i + 1)}))
			}
			// Wait for the collector to wedge: slow2 fills the handoff, the
			// first add blocks in emit, the rest sit in the queue.
			deadline := time.Now().Add(2 * time.Second)
			for s.QueueDepth() > 2 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}

			closed := make(chan struct{})
			go func() { s.Close(); close(closed) }()
			// Close latches admission and fires stop even though the
			// pipeline is still wedged mid-tick; only then release the
			// handler so the shutdown drain is what serves the backlog.
			select {
			case <-s.stop:
			case <-time.After(2 * time.Second):
				t.Fatal("Close did not fire stop while a batch was in flight")
			}
			for i := 0; i < 16; i++ {
				resume <- struct{}{}
			}
			<-closed
			if _, err := s.Submit(Request{Mailbox: "add_edge", Payload: datalog.Tuple{int64(99), int64(100)}}); !errors.Is(err, ErrClosed) {
				t.Fatalf("submit after Close = %v, want ErrClosed", err)
			}

			// The mid-tick batch and everything handed off complete under
			// both policies.
			if r := pSlow1.Wait(); r.Err != nil {
				t.Fatalf("in-flight batch failed at Close: %v", r.Err)
			}
			if r := pSlow2.Wait(); r.Err != nil {
				t.Fatalf("handed-off batch failed at Close: %v", r.Err)
			}
			served, closedOut := 0, 0
			for _, p := range tail {
				switch r := p.Wait(); {
				case r.Err == nil:
					served++
				case errors.Is(r.Err, ErrClosed):
					closedOut++
				default:
					t.Fatalf("tail request: %v", r.Err)
				}
			}
			if policy == Block && (served != 3 || closedOut != 0) {
				t.Fatalf("Block close: served=%d closed=%d, want the whole backlog served", served, closedOut)
			}
			if policy == Shed {
				// The add that was mid-emit when Close hit is served; the
				// two still queued are abandoned by the shutdown drain.
				if served != 1 || closedOut != 2 {
					t.Fatalf("Shed close: served=%d closed=%d, want 1/2", served, closedOut)
				}
				if got := int(s.Metrics().ClosedUnserved); got != closedOut {
					t.Fatalf("ClosedUnserved = %d, want %d", got, closedOut)
				}
			}
		})
	}
}

// TestServeRetrySingletonTimingsAndDrainOnce covers the rejected-batch
// retry path crossing DrainMailboxes and OnTiming: each re-injected
// singleton is its own batch (fresh sequence number, size 1, Retried
// set), and observation messages drained after the flush are delivered
// exactly once — the rejected batch tick's rolled-back sends must not
// reappear next to the retry ticks' real ones.
func TestServeRetrySingletonTimingsAndDrainOnce(t *testing.T) {
	rt := newGraphRuntime(t, 1)
	// Like add_edge, but each ingested edge also emits one observation.
	rt.RegisterHandler("noisy_add", func(tx *transducer.Tx, msg transducer.Message) {
		tx.MergeTuple("edge", msg.Payload)
		tx.Send("obs", msg.Payload)
	})
	var obs []datalog.Tuple
	var timings []RequestTiming
	s := New(rt, Config{
		MaxBatch: 8, MaxWait: 10 * time.Millisecond, QueueDepth: 16,
		DrainMailboxes: []string{"obs"},
		OnDrain: func(mailbox string, msgs []transducer.Message) {
			for _, m := range msgs {
				obs = append(obs, m.Payload)
			}
		},
		OnTiming: func(tt RequestTiming) { timings = append(timings, tt) },
	})
	defer s.Close()
	release := holdLoop(t, s)
	pG1 := mustSubmit(t, s, "noisy_add", datalog.Tuple{int64(1), int64(2)})
	pPoison := mustSubmit(t, s, "poison", datalog.Tuple{int64(9), int64(9)})
	pG2 := mustSubmit(t, s, "noisy_add", datalog.Tuple{int64(2), int64(3)})
	release()
	if r := pG1.Wait(); r.Err != nil {
		t.Fatal(r.Err)
	}
	if r := pPoison.Wait(); r.Err == nil {
		t.Fatal("poison must fail")
	}
	if r := pG2.Wait(); r.Err != nil {
		t.Fatal(r.Err)
	}
	// Synchronize with the eval goroutine before reading the callbacks.
	var gotObs []datalog.Tuple
	var gotTimings []RequestTiming
	s.Sync(func(*transducer.Runtime) { gotObs, gotTimings = obs, timings })

	// Exactly one observation per committed edge: the rejected batch
	// tick's sends rolled back with it.
	if len(gotObs) != 2 {
		t.Fatalf("obs = %v, want exactly the two retry ticks' observations", gotObs)
	}
	if gotObs[0][0] == gotObs[1][0] {
		t.Fatalf("obs double-delivered: %v", gotObs)
	}

	if len(gotTimings) != 3 {
		t.Fatalf("recorded %d timings, want 3", len(gotTimings))
	}
	batches := map[uint64]bool{}
	for _, tt := range gotTimings {
		if !tt.Retried {
			t.Fatalf("retried singleton not flagged: %+v", tt)
		}
		if tt.BatchSize != 1 || tt.Index != 0 {
			t.Fatalf("retried singleton not its own batch: %+v", tt)
		}
		if batches[tt.Batch] {
			t.Fatalf("two retried singletons share batch %d", tt.Batch)
		}
		batches[tt.Batch] = true
		if (tt.Mailbox == "poison") != tt.Rejected {
			t.Fatalf("rejection flag wrong: %+v", tt)
		}
	}
}

// TestPipelineOverlap is the tentpole's acceptance gate: at saturation the
// eval stage must not wait on the collector — batch assembly hides behind
// tick evaluation (CollectWaitNs << EvalBusyNs), and the collector spends
// time blocked on the full handoff (eval is the bottleneck, as it should
// be).
func TestPipelineOverlap(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("pipeline overlap needs two runnable goroutines")
	}
	rt := benchRuntime(t)
	s := New(rt, Config{MaxBatch: 64, MaxWait: 100 * time.Microsecond, QueueDepth: 4096})
	const n = 4096
	release := holdLoop(t, s)
	ps := make([]*Pending, n)
	for i := range ps {
		ps[i] = mustSubmit(t, s, "add_edge", benchEdge(i))
	}
	release()
	for _, p := range ps {
		if r := p.Wait(); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	m := s.Metrics() // snapshot before Close: the final idle handoff wait never lands
	s.Close()
	t.Logf("collectWait=%v handoffBlock=%v evalBusy=%v batches=%d",
		time.Duration(m.CollectWaitNs), time.Duration(m.HandoffBlockNs), time.Duration(m.EvalBusyNs), m.Batches)
	if m.EvalBusyNs <= 0 || m.Batches == 0 {
		t.Fatalf("pipeline did not run: %+v", m)
	}
	if m.CollectWaitNs >= m.EvalBusyNs {
		t.Fatalf("eval waited on the collector (%v) as long as it worked (%v): no overlap",
			time.Duration(m.CollectWaitNs), time.Duration(m.EvalBusyNs))
	}
}

// TestServeNoPipelineMode: the A/B baseline collapses both stages onto one
// goroutine with identical semantics.
func TestServeNoPipelineMode(t *testing.T) {
	s := New(newGraphRuntime(t, 1), Config{
		MaxBatch: 4, MaxWait: time.Millisecond, QueueDepth: 16, NoPipeline: true,
		SerialMailboxes: []string{"incr"},
	})
	var ps []*Pending
	for i := 0; i < 8; i++ {
		ps = append(ps, mustSubmit(t, s, "add_edge", datalog.Tuple{int64(i), int64(i + 1)}))
	}
	ps = append(ps, mustSubmit(t, s, "incr", datalog.Tuple{}))
	for _, p := range ps {
		if r := p.Wait(); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if got := len(rt0Tuples(t, s, "edge")); got != 8 {
		t.Fatalf("edge has %d rows, want 8", got)
	}
	s.Close()
}
