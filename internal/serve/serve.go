// Package serve is the serving front-end of the transducer runtime: the
// admission path between external clients and the event loop a compiled
// HydroLogic program runs on.
//
// The transducer commits effects atomically per tick, and every tick pays
// fixed costs — a snapshot (or, in incremental mode, one Incremental.Apply
// maintenance pass), effect application, durability appends. Delivering
// one injected message per tick pays those costs per message; the server
// instead groups admitted requests into size-or-deadline batches and feeds
// each batch to a single tick, so the fixed per-tick costs amortize across
// the batch. Admission is bounded: a configurable-depth queue applies
// backpressure by either blocking the submitter (Block) or failing fast
// (Shed), with a live queue-depth gauge. Every admitted request carries a
// flat, CSV-friendly timing record across the four serving phases
// (enqueue → flush → eval → respond).
//
// Batching is transparent for the monotone, payload-driven handlers the
// compiler emits: the committed fixpoint after a batch is identical (as a
// set of tuples per relation) to delivering the same requests one per
// tick — the seeded equivalence sweep in equivalence_test.go gates this
// the same way parallel and sharded evaluation are gated. Two deliberate
// carve-outs keep that true at the edges:
//
//   - Serializable handlers (snapshot-read/assign cycles like the paper's
//     vaccinate) are order-sensitive across messages, so mailboxes listed
//     in Config.SerialMailboxes flush as singleton batches: one message,
//     one tick, exactly the serial schedule.
//   - A rejected batch tick (the evaluator or durability sink refused it)
//     rolls the whole batch back; the server then re-injects the batch's
//     messages one per tick, so a poison request costs its own tick and
//     its batchmates commit exactly as they would have serially.
//
// The runtime is single-threaded by design; the server owns it exclusively
// from New until Close. Register tables, handlers and queries before
// wrapping the runtime, and use Sync (or Close, then the runtime directly)
// for out-of-band access.
package serve

import (
	"errors"
	"sync"
	"time"

	"hydro/internal/datalog"
	"hydro/internal/transducer"
)

var (
	// ErrOverload is returned by Submit under the Shed policy when the
	// admission queue is full — the client should back off and retry.
	ErrOverload = errors.New("serve: admission queue full")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("serve: server closed")
	// ErrNoHandler rejects requests addressed to a mailbox no handler
	// consumes; admitting them would queue work no tick ever drains.
	ErrNoHandler = errors.New("serve: no handler for mailbox")
)

// Policy selects the backpressure behavior when the admission queue is
// full.
type Policy int

const (
	// Block makes Submit wait for queue space: backpressure propagates to
	// the caller (closed-loop clients slow down to the server's pace).
	Block Policy = iota
	// Shed makes Submit fail fast with ErrOverload: open-loop ingestion
	// drops load instead of building an unbounded backlog.
	Shed
)

// Config tunes the serving shell. The zero value is usable: every field
// has a serving-oriented default applied by New.
type Config struct {
	// MaxBatch flushes a batch when it reaches this many requests
	// (default 64).
	MaxBatch int
	// MaxWait flushes a non-empty batch this long after its first request
	// was dequeued, bounding the latency cost of waiting for a full batch
	// (default 500µs).
	MaxWait time.Duration
	// QueueDepth bounds the admission queue (default 4×MaxBatch).
	QueueDepth int
	// Policy picks Block or Shed when the queue is full (default Block).
	Policy Policy
	// SettleTicks caps the post-batch ticks run to quiesce handler
	// cascades before responding (default 256). A batch that fails to
	// settle is counted in Metrics.Unsettled.
	SettleTicks int
	// SerialMailboxes lists mailboxes whose handlers are order-sensitive
	// across messages (serializable handlers): their requests flush as
	// singleton batches.
	SerialMailboxes []string
	// DrainMailboxes are observation mailboxes (alert fan-outs, send-rule
	// targets) drained after every batch so they cannot grow without
	// bound; drained messages go to OnDrain when set, else are dropped.
	DrainMailboxes []string
	// OnDrain receives messages drained from DrainMailboxes (called from
	// the serve loop; keep it fast).
	OnDrain func(mailbox string, msgs []transducer.Message)
	// OnTiming receives every admitted request's timing record as its
	// response is delivered (called from the serve loop; keep it fast).
	OnTiming func(RequestTiming)
}

// Request is one external fact or command addressed to a handler mailbox.
// The payload must not be mutated after Submit.
type Request struct {
	Mailbox string
	Payload datalog.Tuple
}

// Response resolves one admitted request.
type Response struct {
	// ID is the runtime message ID the request was injected under.
	ID uint64
	// Reply is the payload of the handler's correlated reply (the values
	// after the correlation ID), nil if the handler did not reply.
	Reply datalog.Tuple
	// Err is non-nil when the request's tick was rejected by the
	// evaluator or durability sink, or the server closed before serving.
	Err error
	// Timing is the request's per-phase latency breakdown.
	Timing RequestTiming
}

// Pending is an admitted request's future response.
type Pending struct{ ch chan Response }

// Done returns the channel the response is delivered on (buffered: the
// serve loop never blocks on it).
func (p *Pending) Done() <-chan Response { return p.ch }

// Wait blocks for the response.
func (p *Pending) Wait() Response { return <-p.ch }

type pendingReq struct {
	req  Request
	enq  time.Time
	resp chan Response
}

type flushReason int

const (
	flushSize flushReason = iota
	flushDeadline
	flushSerial
	flushClose
)

// Server is the serving shell around one transducer runtime.
type Server struct {
	rt     *transducer.Runtime
	cfg    Config
	serial map[string]bool

	queue chan *pendingReq
	ctrl  chan func()
	stop  chan struct{}
	done  chan struct{}

	mu     sync.RWMutex // admission gate: Submit holds RLock, Close latches closed under Lock
	closed bool

	m        metrics
	batchSeq uint64
}

// New wraps a runtime in a serving shell and starts its serve loop. The
// server owns the runtime exclusively until Close; register tables,
// handlers and queries before calling New.
func New(rt *transducer.Runtime, cfg Config) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 500 * time.Microsecond
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.MaxBatch
	}
	if cfg.SettleTicks <= 0 {
		cfg.SettleTicks = 256
	}
	s := &Server{
		rt:     rt,
		cfg:    cfg,
		serial: map[string]bool{},
		queue:  make(chan *pendingReq, cfg.QueueDepth),
		ctrl:   make(chan func()),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for _, mb := range cfg.SerialMailboxes {
		s.serial[mb] = true
	}
	rt.EnableTickTimings(true)
	go s.loop()
	return s
}

// Submit admits one request. Under Block it waits for queue space (the
// backpressure path); under Shed it returns ErrOverload immediately when
// the queue is full.
func (s *Server) Submit(req Request) (*Pending, error) {
	if !s.rt.Handles(req.Mailbox) {
		return nil, ErrNoHandler
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	p := &pendingReq{req: req, enq: time.Now(), resp: make(chan Response, 1)}
	if s.cfg.Policy == Shed {
		select {
		case s.queue <- p:
		default:
			s.m.shed.Add(1)
			return nil, ErrOverload
		}
	} else {
		s.queue <- p
	}
	// The gauge counts enqueued-but-unflushed requests. Incrementing after
	// the send means a dequeue can transiently outrun the increment, but
	// the high-water mark then only ever reflects requests that were
	// actually admitted.
	s.m.gaugeInc()
	s.m.submitted.Add(1)
	return &Pending{ch: p.resp}, nil
}

// Sync runs fn on the serve loop's goroutine between batches — the safe
// way to read (or drain) the runtime while the server owns it.
func (s *Server) Sync(fn func(rt *transducer.Runtime)) error {
	ran := make(chan struct{})
	select {
	case s.ctrl <- func() { fn(s.rt); close(ran) }:
	case <-s.done:
		return ErrClosed
	}
	select {
	case <-ran:
		return nil
	case <-s.done:
		return ErrClosed
	}
}

// Metrics snapshots the server's gauges and counters.
func (s *Server) Metrics() Metrics { return s.m.snapshot() }

// QueueDepth reads the admission-queue gauge.
func (s *Server) QueueDepth() int { return int(s.m.queueDepth.Load()) }

// Runtime returns the wrapped runtime. Only safe to use directly after
// Close has returned (use Sync while the server is live).
func (s *Server) Runtime() *transducer.Runtime { return s.rt }

// Close stops admission, flushes every already-admitted request, and waits
// for the serve loop to exit. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if already {
		<-s.done
		return
	}
	// No Submit holds the RLock now, so everything admitted is in the
	// queue; the loop drains it before exiting.
	close(s.stop)
	<-s.done
}

func (s *Server) loop() {
	defer close(s.done)
	for {
		select {
		case fn := <-s.ctrl:
			fn()
		case p := <-s.queue:
			s.m.gaugeDec()
			s.collect(p)
		case <-s.stop:
			s.drain()
			return
		}
	}
}

// collect assembles one batch starting from its first request: it grows
// until MaxBatch (size flush) or MaxWait after the first dequeue (deadline
// flush), with serial-mailbox requests cutting the batch so they tick
// alone.
func (s *Server) collect(first *pendingReq) {
	if s.serial[first.req.Mailbox] {
		s.flush([]*pendingReq{first}, flushSerial)
		return
	}
	batch := []*pendingReq{first}
	timer := time.NewTimer(s.cfg.MaxWait)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case p := <-s.queue:
			s.m.gaugeDec()
			if s.serial[p.req.Mailbox] {
				s.flush(batch, flushSerial)
				s.flush([]*pendingReq{p}, flushSerial)
				return
			}
			batch = append(batch, p)
		case <-timer.C:
			s.flush(batch, flushDeadline)
			return
		case <-s.stop:
			// Close requested mid-collect: flush what we have; the loop's
			// drain pass sweeps the rest of the queue.
			s.flush(batch, flushClose)
			return
		}
	}
	s.flush(batch, flushSize)
}

// drain sweeps the queue after Close: everything already admitted is
// served in MaxBatch-sized chunks (serial requests still tick alone).
func (s *Server) drain() {
	var batch []*pendingReq
	for {
		select {
		case fn := <-s.ctrl:
			fn()
		case p := <-s.queue:
			s.m.gaugeDec()
			if s.serial[p.req.Mailbox] {
				s.flush(batch, flushClose)
				batch = nil
				s.flush([]*pendingReq{p}, flushSerial)
				continue
			}
			batch = append(batch, p)
			if len(batch) >= s.cfg.MaxBatch {
				s.flush(batch, flushClose)
				batch = nil
			}
		default:
			s.flush(batch, flushClose)
			return
		}
	}
}

// flush feeds one batch to a single tick, settles the cascade, and
// responds to every request with its reply and timing breakdown.
func (s *Server) flush(batch []*pendingReq, reason flushReason) {
	if len(batch) == 0 {
		return
	}
	s.batchSeq++
	s.m.batches.Add(1)
	switch reason {
	case flushSize:
		s.m.sizeFlushes.Add(1)
	case flushDeadline:
		s.m.deadlineFlushes.Add(1)
	case flushSerial:
		s.m.serialFlushes.Add(1)
	}

	flushStart := time.Now()
	inj := make([]transducer.Injection, len(batch))
	for i, p := range batch {
		inj[i] = transducer.Injection{Mailbox: p.req.Mailbox, Payload: p.req.Payload}
	}
	ids := s.rt.InjectBatch(inj)
	evalStart := time.Now()

	errs := make([]error, len(batch))
	rejected := s.tick() != nil
	if rejected {
		s.m.rejectedBatches.Add(1)
		if len(batch) == 1 {
			errs[0] = s.rt.LastRejection()
		} else {
			// The rejected tick consumed the batch's messages and dropped
			// every effect. Re-inject one message per tick: the poison
			// request is isolated to its own rejected tick, and its
			// batchmates commit exactly as they would have serially.
			for i, p := range batch {
				ids[i] = s.rt.Inject(p.req.Mailbox, p.req.Payload)
				s.m.retried.Add(1)
				errs[i] = s.tick()
			}
		}
	}
	// Settle handler cascades to idle: at idle there are no in-flight
	// sends, so every reply this batch provoked has been delivered.
	settled := 0
	for settled < s.cfg.SettleTicks && !s.rt.Idle() {
		s.tick()
		settled++
	}
	if !s.rt.Idle() {
		s.m.unsettled.Add(1)
	}
	evalEnd := time.Now()

	// Correlate replies: each handler Reply lands in "<mailbox><response>"
	// with the request's message ID as payload[0].
	replies := map[uint64]datalog.Tuple{}
	drained := map[string]bool{}
	for _, p := range batch {
		box := p.req.Mailbox + "<response>"
		if drained[box] {
			continue
		}
		drained[box] = true
		for _, m := range s.rt.Drain(box) {
			if len(m.Payload) == 0 {
				continue
			}
			if id, ok := m.Payload[0].(uint64); ok {
				replies[id] = m.Payload[1:]
			}
		}
	}
	for _, box := range s.cfg.DrainMailboxes {
		if msgs := s.rt.Drain(box); len(msgs) > 0 && s.cfg.OnDrain != nil {
			s.cfg.OnDrain(box, msgs)
		}
	}

	queueNs := make([]int64, len(batch))
	for i, p := range batch {
		queueNs[i] = flushStart.Sub(p.enq).Nanoseconds()
	}
	flushNs := evalStart.Sub(flushStart).Nanoseconds()
	evalNs := evalEnd.Sub(evalStart).Nanoseconds()
	for i, p := range batch {
		respondNs := time.Since(evalEnd).Nanoseconds()
		t := RequestTiming{
			ID:            ids[i],
			Mailbox:       p.req.Mailbox,
			Batch:         s.batchSeq,
			BatchSize:     len(batch),
			EnqueueUnixNs: p.enq.UnixNano(),
			QueueNs:       queueNs[i],
			FlushNs:       flushNs,
			EvalNs:        evalNs,
			RespondNs:     respondNs,
			TotalNs:       queueNs[i] + flushNs + evalNs + respondNs,
			Rejected:      errs[i] != nil,
		}
		if errs[i] != nil {
			s.m.failed.Add(1)
		}
		p.resp <- Response{ID: ids[i], Reply: replies[ids[i]], Err: errs[i], Timing: t}
		s.m.responded.Add(1)
		if s.cfg.OnTiming != nil {
			s.cfg.OnTiming(t)
		}
	}
}

// tick runs one runtime tick, folds its phase timings into the metrics,
// and returns the rejection error if the evaluator or sink refused it.
func (s *Server) tick() error {
	before := s.rt.Stats().Rejected
	s.rt.Tick()
	tt := s.rt.LastTickTimings()
	s.m.tickDeliverNs.Add(tt.Deliver.Nanoseconds())
	s.m.tickSnapshotNs.Add(tt.Snapshot.Nanoseconds())
	s.m.tickHandlersNs.Add(tt.Handlers.Nanoseconds())
	s.m.tickApplyNs.Add(tt.Apply.Nanoseconds())
	s.m.ticks.Add(1)
	if s.rt.Stats().Rejected > before {
		return s.rt.LastRejection()
	}
	return nil
}
