// Package serve is the serving front-end of the transducer runtime: the
// admission path between external clients and the event loop a compiled
// HydroLogic program runs on.
//
// The transducer commits effects atomically per tick, and every tick pays
// fixed costs — a snapshot (or, in incremental mode, one Incremental.Apply
// maintenance pass), effect application, durability appends. Delivering
// one injected message per tick pays those costs per message; the server
// instead groups admitted requests into size-or-deadline batches and feeds
// each batch to a single tick, so the fixed per-tick costs amortize across
// the batch.
//
// Serving is a two-stage pipeline: a collector goroutine dequeues admitted
// requests and assembles batch N+1 while the eval goroutine runs batch N's
// tick, with a one-batch handoff channel between them — so batch assembly
// (dequeues, lane routing, timestamping) overlaps tick evaluation instead
// of being serving dead time. Backpressure still propagates end to end:
// the eval stage bounds the handoff, the handoff bounds the collector, and
// the bounded admission queue bounds the submitter, who either blocks
// (Block) or fails fast (Shed). The collector also shapes admission:
// serializable mailboxes run in a separate lane so neither kind of traffic
// convoys the other, per-mailbox quotas stop one hot mailbox from filling
// the queue, and requests whose enqueue age already exceeds their deadline
// are shed before wasting a tick slot. Every admitted request carries a
// flat, CSV-friendly timing record across the four serving phases
// (enqueue → flush → eval → respond).
//
// Batching is transparent for the monotone, payload-driven handlers the
// compiler emits: the committed fixpoint after a batch is identical (as a
// set of tuples per relation) to delivering the same requests one per
// tick — the seeded equivalence sweeps in equivalence_test.go gate this
// the same way parallel and sharded evaluation are gated. Two deliberate
// carve-outs keep that true at the edges:
//
//   - Serializable handlers (snapshot-read/assign cycles like the paper's
//     vaccinate) are order-sensitive across messages, so mailboxes listed
//     in Config.SerialMailboxes flush as singleton batches: one message,
//     one tick, exactly the serial schedule. Without Config.Lanes they cut
//     the batch in place (admission order preserved end to end); with
//     Lanes they run in their own admission lane (order preserved within
//     each lane, the cross-lane interleaving is scheduled — the serving
//     analogue of the send reordering the runtime already absorbs).
//   - A rejected batch tick (the evaluator or durability sink refused it)
//     rolls the whole batch back; the server then re-injects the batch's
//     messages one per tick, so a poison request costs its own tick and
//     its batchmates commit exactly as they would have serially.
//
// The runtime is single-threaded by design; exactly one server goroutine
// (the eval stage) touches it from New until Close. Register tables,
// handlers and queries before wrapping the runtime, and use Sync (or
// Close, then the runtime directly) for out-of-band access.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hydro/internal/datalog"
	"hydro/internal/transducer"
)

var (
	// ErrOverload is returned by Submit under the Shed policy when the
	// admission queue is full — the client should back off and retry.
	ErrOverload = errors.New("serve: admission queue full")
	// ErrClosed is returned by Submit after Close, and resolves any
	// request the server admitted but abandoned at shutdown (Shed policy
	// only — Block drains).
	ErrClosed = errors.New("serve: server closed")
	// ErrNoHandler rejects requests addressed to a mailbox no handler
	// consumes; admitting them would queue work no tick ever drains.
	ErrNoHandler = errors.New("serve: no handler for mailbox")
	// ErrOverQuota is returned by Submit when the request's mailbox is at
	// its admission quota (Config.MailboxQuota) — the per-mailbox
	// fail-fast analogue of ErrOverload.
	ErrOverQuota = errors.New("serve: mailbox admission quota exceeded")
	// ErrDeadlineExceeded resolves a request shed because its enqueue age
	// exceeded its deadline before it reached a tick slot.
	ErrDeadlineExceeded = errors.New("serve: request deadline exceeded before service")
)

// Policy selects the backpressure behavior when the admission queue is
// full.
type Policy int

const (
	// Block makes Submit wait for queue space: backpressure propagates to
	// the caller (closed-loop clients slow down to the server's pace).
	Block Policy = iota
	// Shed makes Submit fail fast with ErrOverload: open-loop ingestion
	// drops load instead of building an unbounded backlog.
	Shed
)

// Config tunes the serving shell. The zero value is usable: every field
// has a serving-oriented default applied by New.
type Config struct {
	// MaxBatch flushes a batch when it reaches this many requests
	// (default 64).
	MaxBatch int
	// MaxWait flushes a non-empty batch this long after its first request
	// was dequeued, bounding the latency cost of waiting for a full batch
	// (default 500µs).
	MaxWait time.Duration
	// QueueDepth bounds the admission queue (default 4×MaxBatch).
	QueueDepth int
	// Policy picks Block or Shed when the queue is full (default Block).
	// The policy also decides what Close does with the backlog: Block
	// drains every admitted request before returning, Shed resolves the
	// not-yet-handed-off backlog with ErrClosed (fail-fast shutdown).
	Policy Policy
	// SettleTicks caps the post-batch ticks run to quiesce handler
	// cascades before responding (default 256). A batch that fails to
	// settle is counted in Metrics.Unsettled.
	SettleTicks int
	// SerialMailboxes lists mailboxes whose handlers are order-sensitive
	// across messages (serializable handlers): their requests flush as
	// singleton batches.
	SerialMailboxes []string
	// Lanes routes serializable requests through a separate admission
	// lane instead of cutting the monotone batch in place. With lanes on,
	// a serializable burst cannot convoy monotone traffic (batches keep
	// filling while singletons interleave) and vice versa (a full monotone
	// batch preempts the serial lane, a deadline-expired one always
	// flushes). FIFO order holds within each lane; cross-lane order is
	// scheduled, so equivalence is gated against the executed schedule
	// (see equivalence_test.go). Off by default: admission order is then
	// preserved end to end.
	Lanes bool
	// MailboxQuota caps, per mailbox, how many requests may be in flight
	// (admitted and not yet responded). Submit fails fast with
	// ErrOverQuota at the cap, under either policy — quotas exist so one
	// hot mailbox cannot fill the shared queue. Mailboxes absent from the
	// map are unlimited.
	MailboxQuota map[string]int
	// DefaultDeadline bounds every request's enqueue age unless the
	// request carries its own Deadline: a request older than this when it
	// would enter a batch is shed with ErrDeadlineExceeded instead of
	// wasting a tick slot. Zero disables the default.
	DefaultDeadline time.Duration
	// Fanout, when set, is attached as the runtime's durability sink at
	// New: every committed batch tick tees through it, which is how a
	// serving node drives a replicated shard.Deployment
	// (shard.NewSink(dep)). Requires incremental query mode — New panics
	// otherwise, matching the runtime's SetDurability contract. A Fanout
	// occupies the runtime's single durability seam.
	Fanout transducer.DurabilitySink
	// FanoutPump, when set, runs on the eval goroutine after every batch
	// — shard deployments pass a dep.Settle closure here so the simulated
	// cluster network drains as the serving node drives it.
	FanoutPump func()
	// NoPipeline collapses the two pipeline stages onto one goroutine
	// (collect, then eval, strictly alternating) — the A/B baseline for
	// `make serve-bench` and a debugging mode, like SetParallelism(1) for
	// the evaluator. Semantics are identical; only the overlap is lost.
	NoPipeline bool
	// DrainMailboxes are observation mailboxes (alert fan-outs, send-rule
	// targets) drained after every batch so they cannot grow without
	// bound; drained messages go to OnDrain when set, else are dropped.
	DrainMailboxes []string
	// OnDrain receives messages drained from DrainMailboxes (called from
	// the eval goroutine; keep it fast).
	OnDrain func(mailbox string, msgs []transducer.Message)
	// OnTiming receives every admitted request's timing record as its
	// response is delivered (called from the eval goroutine; keep it
	// fast).
	OnTiming func(RequestTiming)
}

// Request is one external fact or command addressed to a handler mailbox.
// The payload must not be mutated after Submit.
type Request struct {
	Mailbox string
	Payload datalog.Tuple
	// Deadline, when positive, bounds this request's enqueue age: if it
	// has not reached a tick slot within Deadline of Submit it is shed
	// with ErrDeadlineExceeded. Zero falls back to
	// Config.DefaultDeadline.
	Deadline time.Duration
}

// Response resolves one admitted request.
type Response struct {
	// ID is the runtime message ID the request was injected under.
	ID uint64
	// Reply is the payload of the handler's correlated reply (the values
	// after the correlation ID), nil if the handler did not reply.
	Reply datalog.Tuple
	// Err is non-nil when the request's tick was rejected by the
	// evaluator or durability sink, the request was shed past its
	// deadline, or the server closed before serving it.
	Err error
	// Timing is the request's per-phase latency breakdown.
	Timing RequestTiming
}

// Pending is an admitted request's future response.
type Pending struct{ ch chan Response }

// Done returns the channel the response is delivered on (buffered: the
// serve loop never blocks on it).
func (p *Pending) Done() <-chan Response { return p.ch }

// Wait blocks for the response.
func (p *Pending) Wait() Response { return <-p.ch }

type pendingReq struct {
	req    Request
	enq    time.Time
	deq    time.Time // dequeued from the admission queue (batch deadline base)
	deadAt time.Time // zero: no deadline
	resp   chan Response
}

func (p *pendingReq) expired(now time.Time) bool {
	return !p.deadAt.IsZero() && now.After(p.deadAt)
}

type flushReason int

const (
	flushSize flushReason = iota
	flushDeadline
	flushSerial
	flushClose
	// flushExpired and flushAbandoned are respond-only work units: the
	// batch never reaches the runtime, every member resolves with an
	// error (ErrDeadlineExceeded / ErrClosed). They flow through the
	// handoff like real batches so all response delivery — and the
	// OnTiming callback — stays on the eval goroutine.
	flushExpired
	flushAbandoned
)

// work is one unit handed from the collector stage to the eval stage:
// either a batch to flush or a Sync barrier (ctrl set).
type work struct {
	batch  []*pendingReq
	reason flushReason
	ctrl   func()
	ran    chan struct{}
}

// Server is the serving shell around one transducer runtime.
type Server struct {
	rt     *transducer.Runtime
	cfg    Config
	serial map[string]bool
	quota  map[string]*quotaSlot

	queue chan *pendingReq
	ctrl  chan func()
	hand  chan *work // the one-batch pipeline handoff
	stop  chan struct{}
	done  chan struct{}

	mu     sync.RWMutex // admission gate: Submit holds RLock, Close latches closed under Lock
	closed bool

	m        metrics
	batchSeq uint64 // owned by the eval stage (the collector in NoPipeline mode)
}

type quotaSlot struct {
	used atomic.Int64
	max  int64
}

// New wraps a runtime in a serving shell and starts its pipeline. The
// server owns the runtime exclusively until Close; register tables,
// handlers and queries before calling New. New panics if Config.Fanout is
// set on a runtime not in incremental query mode (the durability seam the
// fan-out rides requires it).
func New(rt *transducer.Runtime, cfg Config) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 500 * time.Microsecond
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.MaxBatch
	}
	if cfg.SettleTicks <= 0 {
		cfg.SettleTicks = 256
	}
	s := &Server{
		rt:     rt,
		cfg:    cfg,
		serial: map[string]bool{},
		quota:  map[string]*quotaSlot{},
		queue:  make(chan *pendingReq, cfg.QueueDepth),
		ctrl:   make(chan func()),
		hand:   make(chan *work, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for _, mb := range cfg.SerialMailboxes {
		s.serial[mb] = true
	}
	for mb, n := range cfg.MailboxQuota {
		if n > 0 {
			s.quota[mb] = &quotaSlot{max: int64(n)}
		}
	}
	if cfg.Fanout != nil {
		if err := rt.SetDurability(cfg.Fanout); err != nil {
			panic(fmt.Sprintf("serve: Fanout: %v", err))
		}
	}
	rt.EnableTickTimings(true)
	go s.collector()
	go s.evalLoop()
	return s
}

// Submit admits one request. Under Block it waits for queue space (the
// backpressure path); under Shed it returns ErrOverload immediately when
// the queue is full. A mailbox at its admission quota fails fast with
// ErrOverQuota under either policy.
func (s *Server) Submit(req Request) (*Pending, error) {
	if !s.rt.Handles(req.Mailbox) {
		return nil, ErrNoHandler
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	if q := s.quota[req.Mailbox]; q != nil {
		if q.used.Add(1) > q.max {
			q.used.Add(-1)
			s.m.overQuota.Add(1)
			return nil, ErrOverQuota
		}
	}
	p := &pendingReq{req: req, enq: time.Now(), resp: make(chan Response, 1)}
	if d := req.Deadline; d > 0 {
		p.deadAt = p.enq.Add(d)
	} else if s.cfg.DefaultDeadline > 0 {
		p.deadAt = p.enq.Add(s.cfg.DefaultDeadline)
	}
	// The gauge increments before the send so a dequeue can never outrun
	// it (the old after-send order let the collector's decrement land
	// first, and QueueDepth could transiently read negative). The cost is
	// that a Shed refusal occupies the gauge for an instant, so the
	// high-water mark counts admission *attempts* holding or seeking a
	// slot, not only successful admissions.
	s.m.gaugeInc()
	if s.cfg.Policy == Shed {
		select {
		case s.queue <- p:
		default:
			s.m.gaugeDec()
			s.quotaRelease(req.Mailbox)
			s.m.shed.Add(1)
			return nil, ErrOverload
		}
	} else {
		s.queue <- p
	}
	s.m.submitted.Add(1)
	return &Pending{ch: p.resp}, nil
}

// quotaRelease returns the mailbox's quota slot (no-op for unquota'd
// mailboxes).
func (s *Server) quotaRelease(mailbox string) {
	if q := s.quota[mailbox]; q != nil {
		q.used.Add(-1)
	}
}

// Sync runs fn on the eval goroutine with the whole pipeline quiescent —
// the collector parks until fn returns, so no batch is assembled or
// flushed around it. The safe way to read (or drain) the runtime while
// the server owns it.
func (s *Server) Sync(fn func(rt *transducer.Runtime)) error {
	ran := make(chan struct{})
	select {
	case s.ctrl <- func() { fn(s.rt); close(ran) }:
	case <-s.done:
		return ErrClosed
	}
	select {
	case <-ran:
		return nil
	case <-s.done:
		return ErrClosed
	}
}

// Metrics snapshots the server's gauges and counters.
func (s *Server) Metrics() Metrics { return s.m.snapshot() }

// QueueDepth reads the admission-queue gauge.
func (s *Server) QueueDepth() int { return int(s.m.queueDepth.Load()) }

// Runtime returns the wrapped runtime. Only safe to use directly after
// Close has returned (use Sync while the server is live).
func (s *Server) Runtime() *transducer.Runtime { return s.rt }

// Close stops admission and shuts the pipeline down: the batch already in
// the handoff always completes, and the queued backlog is drained (Block
// policy: every admitted request is served) or abandoned with ErrClosed
// (Shed policy: fail-fast shutdown). Every admitted request receives a
// response either way — no goroutine is left blocked in Pending.Wait.
// Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if already {
		<-s.done
		return
	}
	// No Submit holds the RLock now, so everything admitted is in the
	// queue; the collector drains it before exiting.
	close(s.stop)
	<-s.done
}

// collectState is the collector stage's lane buffers: mono accumulates
// the current monotone batch (never past MaxBatch), serialQ is the
// serializable lane's FIFO (only occupied with Config.Lanes — without
// lanes serializable requests emit in place to preserve admission order).
type collectState struct {
	mono    []*pendingReq
	serialQ []*pendingReq
}

// collector is the pipeline's first stage: it dequeues admitted requests,
// routes them into lanes, sheds the expired, and hands assembled batches
// to the eval stage. Closing the handoff is its exit signal to eval.
func (s *Server) collector() {
	defer close(s.hand)
	c := &collectState{}
	for {
		// Shutdown takes priority over further collection: once stop fires,
		// everything admitted is already in the queue, and drainCollect —
		// not the normal batching path — decides its fate per policy.
		select {
		case <-s.stop:
			s.drainCollect(c)
			return
		default:
		}
		if s.schedule(c) {
			continue
		}
		// Fast path: work is already waiting — route it without arming the
		// deadline timer (a per-request Timer would dominate the collector's
		// cost at saturation; the timer only matters when we'd block).
		select {
		case fn := <-s.ctrl:
			s.barrier(fn)
			continue
		case p := <-s.queue:
			s.route(c, p)
			continue
		default:
		}
		if len(c.mono) > 0 {
			// A partial batch is waiting on its flush deadline.
			timer := time.NewTimer(time.Until(c.mono[0].deq.Add(s.cfg.MaxWait)))
			select {
			case fn := <-s.ctrl:
				timer.Stop()
				s.barrier(fn)
			case p := <-s.queue:
				timer.Stop()
				s.route(c, p)
			case <-timer.C:
				s.emitMono(c, len(c.mono), flushDeadline)
			case <-s.stop:
				timer.Stop()
				s.drainCollect(c)
				return
			}
		} else {
			select {
			case fn := <-s.ctrl:
				s.barrier(fn)
			case p := <-s.queue:
				s.route(c, p)
			case <-s.stop:
				s.drainCollect(c)
				return
			}
		}
	}
}

// schedule emits at most one work unit from the lane buffers; it reports
// whether it emitted (the caller then re-runs it before blocking). Lane
// starvation rules: a deadline-expired monotone batch always flushes
// first (MaxWait bounds monotone latency through any serializable burst),
// a full monotone batch preempts the serial lane but tows one serial
// singleton behind it (bounded serial wait under monotone floods), and
// otherwise serial singletons drain while the partial monotone batch
// waits — they fill pipeline slots the batch isn't using yet.
func (s *Server) schedule(c *collectState) bool {
	if len(c.mono) > 0 && time.Since(c.mono[0].deq) >= s.cfg.MaxWait {
		s.emitMono(c, len(c.mono), flushDeadline)
		return true
	}
	if len(c.mono) >= s.cfg.MaxBatch {
		s.emitMono(c, s.cfg.MaxBatch, flushSize)
		if len(c.serialQ) > 0 {
			s.emitSerial(c)
		}
		return true
	}
	if len(c.serialQ) > 0 {
		s.emitSerial(c)
		return true
	}
	return false
}

// route files one dequeued request into its lane. Without Config.Lanes,
// a serializable request cuts the monotone batch in place and emits
// immediately, preserving admission order end to end (the strict-FIFO
// schedule the submission-order equivalence sweep pins).
func (s *Server) route(c *collectState, p *pendingReq) {
	s.m.gaugeDec()
	p.deq = time.Now()
	if p.expired(p.deq) {
		s.emit([]*pendingReq{p}, flushExpired)
		return
	}
	if s.serial[p.req.Mailbox] {
		c.serialQ = append(c.serialQ, p)
		if !s.cfg.Lanes {
			if len(c.mono) > 0 {
				s.emitMono(c, len(c.mono), flushSerial)
			}
			s.emitSerial(c)
		}
		return
	}
	c.mono = append(c.mono, p)
}

// emitMono pops the first n monotone requests and hands them off,
// shedding members whose deadline lapsed while the batch assembled.
func (s *Server) emitMono(c *collectState, n int, reason flushReason) {
	batch := c.mono[:n:n]
	c.mono = c.mono[n:]
	if len(c.mono) == 0 {
		c.mono = nil
	}
	s.emitFresh(batch, reason)
}

// emitSerial pops one serializable request and hands it off alone.
func (s *Server) emitSerial(c *collectState) {
	p := c.serialQ[0]
	c.serialQ = c.serialQ[1:]
	if len(c.serialQ) == 0 {
		c.serialQ = nil
	}
	s.emitFresh([]*pendingReq{p}, flushSerial)
}

// emitFresh splits the deadline-expired members out of a batch (they
// resolve with ErrDeadlineExceeded instead of occupying tick slots) and
// hands the rest off.
func (s *Server) emitFresh(batch []*pendingReq, reason flushReason) {
	now := time.Now()
	live, dead := batch, []*pendingReq(nil)
	for i, p := range batch {
		if p.expired(now) {
			// First expiry found: split the batch (rare path).
			live = append([]*pendingReq(nil), batch[:i]...)
			for _, q := range batch[i:] {
				if q.expired(now) {
					dead = append(dead, q)
				} else {
					live = append(live, q)
				}
			}
			break
		}
	}
	if len(dead) > 0 {
		s.emit(dead, flushExpired)
	}
	s.emit(live, reason)
}

// emit hands one work unit to the eval stage (or runs it in place in
// NoPipeline mode). The handoff holds one batch: a second emit blocks
// until eval takes the first, which is how eval-stage backpressure
// reaches the collector and, through the bounded queue, the submitter.
func (s *Server) emit(batch []*pendingReq, reason flushReason) {
	if len(batch) == 0 {
		return
	}
	w := &work{batch: batch, reason: reason}
	if s.cfg.NoPipeline {
		s.runWork(w)
		return
	}
	t0 := time.Now()
	s.hand <- w
	s.m.handoffBlockNs.Add(time.Since(t0).Nanoseconds())
}

// barrier forwards a Sync callback through the handoff (keeping it
// ordered after every batch emitted before it) and parks the collector
// until the eval stage has run it — Sync's contract is a quiescent
// pipeline, not just a quiescent runtime.
func (s *Server) barrier(fn func()) {
	if s.cfg.NoPipeline {
		fn()
		return
	}
	w := &work{ctrl: fn, ran: make(chan struct{})}
	s.hand <- w
	<-w.ran
}

// drainCollect sweeps the admission queue after Close. The Block policy
// serves the whole backlog (in MaxBatch chunks, serializable requests
// still alone); Shed abandons it — every leftover request resolves with
// ErrClosed, honoring fail-fast semantics at shutdown too. Either way no
// admitted request is left without a response.
func (s *Server) drainCollect(c *collectState) {
	for {
		select {
		case p := <-s.queue:
			s.route(c, p)
			continue
		default:
		}
		break
	}
	if s.cfg.Policy == Shed {
		abandoned := append(c.mono, c.serialQ...)
		c.mono, c.serialQ = nil, nil
		s.emit(abandoned, flushAbandoned)
		return
	}
	for len(c.mono) > 0 {
		n := len(c.mono)
		if n > s.cfg.MaxBatch {
			n = s.cfg.MaxBatch
		}
		s.emitMono(c, n, flushClose)
	}
	for len(c.serialQ) > 0 {
		s.emitSerial(c)
	}
}

// evalLoop is the pipeline's second stage: it owns the runtime, flushing
// each handed-off batch through one tick while the collector assembles
// the next. It exits when the collector closes the handoff (Close path)
// and resolves outstanding work first — nothing the collector emitted is
// dropped.
func (s *Server) evalLoop() {
	defer close(s.done)
	for {
		t0 := time.Now()
		w, ok := <-s.hand
		if !s.cfg.NoPipeline {
			// In NoPipeline mode work runs inline on the collector and this
			// goroutine only waits for close — that idle is not collect wait.
			s.m.collectWaitNs.Add(time.Since(t0).Nanoseconds())
		}
		if !ok {
			return
		}
		if w.ctrl != nil {
			w.ctrl()
			close(w.ran)
			continue
		}
		s.runWork(w)
	}
}

// runWork executes one work unit on the runtime-owning goroutine.
func (s *Server) runWork(w *work) {
	t0 := time.Now()
	switch w.reason {
	case flushExpired:
		for _, p := range w.batch {
			s.m.deadlineShed.Add(1)
			s.respondShed(p, ErrDeadlineExceeded)
		}
	case flushAbandoned:
		for _, p := range w.batch {
			s.m.closedUnserved.Add(1)
			s.respondShed(p, ErrClosed)
		}
	default:
		s.flush(w.batch, w.reason)
		if s.cfg.FanoutPump != nil {
			s.cfg.FanoutPump()
		}
	}
	s.m.evalBusyNs.Add(time.Since(t0).Nanoseconds())
}

// respondShed resolves a request that never reached the runtime: no tick,
// no message ID — just the admission phases it did traverse.
func (s *Server) respondShed(p *pendingReq, err error) {
	t := RequestTiming{
		Mailbox:       p.req.Mailbox,
		EnqueueUnixNs: p.enq.UnixNano(),
		QueueNs:       time.Since(p.enq).Nanoseconds(),
		Rejected:      true,
	}
	t.TotalNs = t.QueueNs
	s.deliver(p, Response{Err: err, Timing: t}, t)
}

// deliver resolves one request: response out, quota slot back, timing
// record to OnTiming. Every admitted request passes through here exactly
// once.
func (s *Server) deliver(p *pendingReq, r Response, t RequestTiming) {
	p.resp <- r
	s.m.responded.Add(1)
	s.quotaRelease(p.req.Mailbox)
	if s.cfg.OnTiming != nil {
		s.cfg.OnTiming(t)
	}
}

// flush feeds one batch to a single tick, settles the cascade, and
// responds to every request with its reply and timing breakdown.
func (s *Server) flush(batch []*pendingReq, reason flushReason) {
	if len(batch) == 0 {
		return
	}
	s.batchSeq++
	seq := s.batchSeq
	s.m.batches.Add(1)
	switch reason {
	case flushSize:
		s.m.sizeFlushes.Add(1)
	case flushDeadline:
		s.m.deadlineFlushes.Add(1)
	case flushSerial:
		s.m.serialFlushes.Add(1)
	}

	flushStart := time.Now()
	inj := make([]transducer.Injection, len(batch))
	for i, p := range batch {
		inj[i] = transducer.Injection{Mailbox: p.req.Mailbox, Payload: p.req.Payload}
	}
	ids := s.rt.InjectBatch(inj)
	evalStart := time.Now()

	errs := make([]error, len(batch))
	retrySeq := make([]uint64, len(batch)) // non-zero: the singleton retry tick's own batch seq
	rejected := s.tick() != nil
	if rejected {
		s.m.rejectedBatches.Add(1)
		if len(batch) == 1 {
			errs[0] = s.rt.LastRejection()
		} else {
			// The rejected tick consumed the batch's messages and dropped
			// every effect. Re-inject one message per tick: the poison
			// request is isolated to its own rejected tick, and its
			// batchmates commit exactly as they would have serially. Each
			// singleton tick is its own batch for accounting — it gets a
			// fresh batch sequence number and its own timing record.
			for i, p := range batch {
				ids[i] = s.rt.Inject(p.req.Mailbox, p.req.Payload)
				s.m.retried.Add(1)
				s.batchSeq++
				retrySeq[i] = s.batchSeq
				errs[i] = s.tick()
			}
		}
	}
	// Settle handler cascades to idle: at idle there are no in-flight
	// sends, so every reply this batch provoked has been delivered.
	settled := 0
	for settled < s.cfg.SettleTicks && !s.rt.Idle() {
		s.tick()
		settled++
	}
	if !s.rt.Idle() {
		s.m.unsettled.Add(1)
	}
	evalEnd := time.Now()

	// Correlate replies: each handler Reply lands in "<mailbox><response>"
	// with the request's message ID as payload[0].
	replies := map[uint64]datalog.Tuple{}
	drained := map[string]bool{}
	for _, p := range batch {
		box := p.req.Mailbox + "<response>"
		if drained[box] {
			continue
		}
		drained[box] = true
		for _, m := range s.rt.Drain(box) {
			if len(m.Payload) == 0 {
				continue
			}
			if id, ok := m.Payload[0].(uint64); ok {
				replies[id] = m.Payload[1:]
			}
		}
	}
	for _, box := range s.cfg.DrainMailboxes {
		if msgs := s.rt.Drain(box); len(msgs) > 0 && s.cfg.OnDrain != nil {
			s.cfg.OnDrain(box, msgs)
		}
	}

	queueNs := make([]int64, len(batch))
	for i, p := range batch {
		queueNs[i] = flushStart.Sub(p.enq).Nanoseconds()
	}
	flushNs := evalStart.Sub(flushStart).Nanoseconds()
	evalNs := evalEnd.Sub(evalStart).Nanoseconds()
	for i, p := range batch {
		respondNs := time.Since(evalEnd).Nanoseconds()
		t := RequestTiming{
			ID:            ids[i],
			Mailbox:       p.req.Mailbox,
			Batch:         seq,
			Index:         i,
			BatchSize:     len(batch),
			EnqueueUnixNs: p.enq.UnixNano(),
			QueueNs:       queueNs[i],
			FlushNs:       flushNs,
			EvalNs:        evalNs,
			RespondNs:     respondNs,
			TotalNs:       queueNs[i] + flushNs + evalNs + respondNs,
			Rejected:      errs[i] != nil,
			Retried:       retrySeq[i] != 0,
		}
		if retrySeq[i] != 0 {
			// A re-injected singleton is its own one-message batch.
			t.Batch, t.Index, t.BatchSize = retrySeq[i], 0, 1
		}
		if errs[i] != nil {
			s.m.failed.Add(1)
		}
		s.deliver(p, Response{ID: ids[i], Reply: replies[ids[i]], Err: errs[i], Timing: t}, t)
	}
}

// tick runs one runtime tick, folds its phase timings into the metrics,
// and returns the rejection error if the evaluator or sink refused it.
func (s *Server) tick() error {
	before := s.rt.Stats().Rejected
	s.rt.Tick()
	tt := s.rt.LastTickTimings()
	s.m.tickDeliverNs.Add(tt.Deliver.Nanoseconds())
	s.m.tickSnapshotNs.Add(tt.Snapshot.Nanoseconds())
	s.m.tickHandlersNs.Add(tt.Handlers.Nanoseconds())
	s.m.tickApplyNs.Add(tt.Apply.Nanoseconds())
	s.m.ticks.Add(1)
	if s.rt.Stats().Rejected > before {
		return s.rt.LastRejection()
	}
	return nil
}
