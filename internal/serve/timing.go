package serve

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// RequestTiming is one admitted request's life, broken into the four
// serving phases: enqueue → flush (time spent in the admission queue),
// flush → eval (batch assembly and injection into the runtime), eval (the
// batch tick plus cascade settling — the shared fixpoint cost), and
// respond (reply correlation and delivery to the caller). The struct is
// deliberately flat and numeric so a run dumps straight to CSV and any
// spreadsheet/benchtab can aggregate it.
type RequestTiming struct {
	ID            uint64 // runtime message ID assigned at flush (0 if shed before flush)
	Mailbox       string
	Batch         uint64 // batch sequence number (a retried singleton's own tick)
	Index         int    // position within the batch (0 for singletons)
	BatchSize     int
	EnqueueUnixNs int64 // admission wall-clock timestamp
	QueueNs       int64 // enqueue → flush
	FlushNs       int64 // flush → tick start (batch assembly + injection)
	EvalNs        int64 // batch tick + settle (shared across the batch)
	RespondNs     int64 // settle end → response delivered
	TotalNs       int64
	Rejected      bool // rejected tick, deadline shed, or abandoned at Close
	Retried       bool // re-injected as a singleton after its batch tick was rejected
}

// ExecOrder orders timings by executed schedule — batch sequence, then
// position within the batch. With Config.Lanes on, admission order and
// executed order differ across lanes; this is the order the recorded-order
// equivalence oracle replays serially.
func ExecOrder(a, b RequestTiming) bool {
	if a.Batch != b.Batch {
		return a.Batch < b.Batch
	}
	return a.Index < b.Index
}

// csvHeader is the column order every timing CSV uses.
var csvHeader = []string{
	"id", "mailbox", "batch", "index", "batch_size", "enqueue_unix_ns",
	"queue_ns", "flush_ns", "eval_ns", "respond_ns", "total_ns", "rejected", "retried",
}

// CSVHeader returns the header row for WriteCSV output.
func CSVHeader() []string { return append([]string(nil), csvHeader...) }

// Row renders the timing as one CSV record, matching CSVHeader.
func (t RequestTiming) Row() []string {
	return []string{
		strconv.FormatUint(t.ID, 10),
		t.Mailbox,
		strconv.FormatUint(t.Batch, 10),
		strconv.Itoa(t.Index),
		strconv.Itoa(t.BatchSize),
		strconv.FormatInt(t.EnqueueUnixNs, 10),
		strconv.FormatInt(t.QueueNs, 10),
		strconv.FormatInt(t.FlushNs, 10),
		strconv.FormatInt(t.EvalNs, 10),
		strconv.FormatInt(t.RespondNs, 10),
		strconv.FormatInt(t.TotalNs, 10),
		strconv.FormatBool(t.Rejected),
		strconv.FormatBool(t.Retried),
	}
}

// WriteCSV dumps timings (header included) to w.
func WriteCSV(w io.Writer, timings []RequestTiming) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, t := range timings {
		if err := cw.Write(t.Row()); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a timing CSV produced by WriteCSV (benchtab -timings
// ingests these to render the summary table offline).
func ReadCSV(r io.Reader) ([]RequestTiming, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("empty timing CSV")
	}
	if strings.Join(rows[0], ",") != strings.Join(csvHeader, ",") {
		return nil, fmt.Errorf("unexpected timing CSV header %v", rows[0])
	}
	out := make([]RequestTiming, 0, len(rows)-1)
	for _, row := range rows[1:] {
		if len(row) != len(csvHeader) {
			return nil, fmt.Errorf("short timing row %v", row)
		}
		var t RequestTiming
		t.ID, _ = strconv.ParseUint(row[0], 10, 64)
		t.Mailbox = row[1]
		t.Batch, _ = strconv.ParseUint(row[2], 10, 64)
		t.Index, _ = strconv.Atoi(row[3])
		t.BatchSize, _ = strconv.Atoi(row[4])
		t.EnqueueUnixNs, _ = strconv.ParseInt(row[5], 10, 64)
		t.QueueNs, _ = strconv.ParseInt(row[6], 10, 64)
		t.FlushNs, _ = strconv.ParseInt(row[7], 10, 64)
		t.EvalNs, _ = strconv.ParseInt(row[8], 10, 64)
		t.RespondNs, _ = strconv.ParseInt(row[9], 10, 64)
		t.TotalNs, _ = strconv.ParseInt(row[10], 10, 64)
		t.Rejected = row[11] == "true"
		t.Retried = row[12] == "true"
		out = append(out, t)
	}
	return out, nil
}

// PhaseSummary is one phase's latency distribution across a run.
type PhaseSummary struct {
	Name               string
	P50, P90, P99, Max int64 // ns
	MeanNs             float64
}

// Summary aggregates a run's request timings into per-phase percentiles —
// the p50/p99 enqueue→flush→eval→respond breakdown the load generator
// reports.
type Summary struct {
	Count     int
	Rejected  int
	MeanBatch float64
	Phases    []PhaseSummary // queue, flush, eval, respond, total
}

// Summarize computes the per-phase latency distribution of a run.
func Summarize(timings []RequestTiming) Summary {
	s := Summary{Count: len(timings)}
	if len(timings) == 0 {
		return s
	}
	batchSum := 0
	for _, t := range timings {
		if t.Rejected {
			s.Rejected++
		}
		batchSum += t.BatchSize
	}
	s.MeanBatch = float64(batchSum) / float64(len(timings))
	phases := []struct {
		name string
		get  func(RequestTiming) int64
	}{
		{"queue", func(t RequestTiming) int64 { return t.QueueNs }},
		{"flush", func(t RequestTiming) int64 { return t.FlushNs }},
		{"eval", func(t RequestTiming) int64 { return t.EvalNs }},
		{"respond", func(t RequestTiming) int64 { return t.RespondNs }},
		{"total", func(t RequestTiming) int64 { return t.TotalNs }},
	}
	vals := make([]int64, len(timings))
	for _, ph := range phases {
		sum := int64(0)
		for i, t := range timings {
			vals[i] = ph.get(t)
			sum += vals[i]
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		s.Phases = append(s.Phases, PhaseSummary{
			Name:   ph.name,
			P50:    percentile(vals, 0.50),
			P90:    percentile(vals, 0.90),
			P99:    percentile(vals, 0.99),
			Max:    vals[len(vals)-1],
			MeanNs: float64(sum) / float64(len(vals)),
		})
	}
	return s
}

// percentile reads the nearest-rank percentile from sorted values.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Render draws the summary as an aligned text table (latencies in µs).
func (s Summary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d requests, %d rejected, mean batch %.1f\n", s.Count, s.Rejected, s.MeanBatch)
	fmt.Fprintf(&b, "%-8s %12s %12s %12s %12s %12s\n", "phase", "mean(us)", "p50(us)", "p90(us)", "p99(us)", "max(us)")
	for _, p := range s.Phases {
		fmt.Fprintf(&b, "%-8s %12.1f %12.1f %12.1f %12.1f %12.1f\n",
			p.Name, p.MeanNs/1e3, float64(p.P50)/1e3, float64(p.P90)/1e3, float64(p.P99)/1e3, float64(p.Max)/1e3)
	}
	return b.String()
}
