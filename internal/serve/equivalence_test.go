package serve

import (
	"flag"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"hydro/internal/datalog"
	"hydro/internal/hlang"
	"hydro/internal/hydrolysis"
	"hydro/internal/transducer"
)

// The sweep is the serving analogue of the parallel≡serial and
// sharded≡single-node gates: batched ingestion must leave the runtime in
// exactly the state one-message-per-tick delivery leaves it in, across
// random request streams that include rejected ticks (poison requests
// writing a derived head), serializable handlers (vaccinate), and
// randomized send-delivery delays (the same churn simnet injects).
// `make serve-soak` scales it up via these flags.
var (
	serveSeeds = flag.Int("serve-seeds", 20, "seeds for the batched≡serial equivalence sweep")
	serveReqs  = flag.Int("serve-reqs", 100, "requests per seed in the equivalence sweep")
)

// covidRuntime instantiates the paper's COVID pipeline plus a hand-written
// poison handler that writes the derived `transitive` relation — the
// evaluator rejects any tick carrying it, in both execution modes.
func covidRuntime(t testing.TB, seed int64, fullEval, churn bool) *transducer.Runtime {
	t.Helper()
	c, err := hydrolysis.Compile(hlang.CovidSource, hydrolysis.Options{
		UDFs: map[string]hydrolysis.UDF{
			"covid_predict": func(args []any) any { return float64(args[0].(int64)%100) / 100.0 },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var rt *transducer.Runtime
	if fullEval {
		rt, err = c.InstantiateFullEval("srv", seed)
	} else {
		rt, err = c.Instantiate("srv", seed)
	}
	if err != nil {
		t.Fatal(err)
	}
	if !fullEval && !rt.IncrementalQueries() {
		t.Fatal("covid pipeline must select incremental mode")
	}
	if !churn {
		rt.SetDelay(func(r *rand.Rand) int { return 1 })
	}
	rt.RegisterHandler("poison", func(tx *transducer.Tx, msg transducer.Message) {
		tx.MergeTuple("transitive", datalog.Tuple{msg.Payload[0], msg.Payload[0]})
	})
	return rt
}

// canonicalState renders the runtime's committed state order-insensitively:
// every relation's live tuples sorted, plus the scalar vars. Batching
// regroups messages into ticks, so relation *slot* order (an artifact of
// delta grouping) legitimately differs from serial delivery; the fixpoint
// as a set of tuples per relation, and every scalar, must be byte-identical.
func canonicalState(rt *transducer.Runtime, vars []string) string {
	var b strings.Builder
	names := rt.TableNames()
	sort.Strings(names)
	for _, name := range names {
		rows := []string{}
		for _, tu := range rt.Table(name).Tuples() {
			rows = append(rows, fmt.Sprintf("%v", tu))
		}
		sort.Strings(rows)
		fmt.Fprintf(&b, "%s:%s\n", name, strings.Join(rows, ";"))
	}
	for _, v := range vars {
		fmt.Fprintf(&b, "var %s=%v\n", v, rt.Var(v))
	}
	return b.String()
}

func genCovidRequests(r *rand.Rand, n int) (reqs []Request, poison []bool) {
	const people = 12
	countries := []string{"us", "fr", "in"}
	for i := 0; i < n; i++ {
		pid := int64(r.Intn(people))
		switch k := r.Intn(100); {
		case k < 25:
			reqs = append(reqs, Request{Mailbox: "add_person", Payload: datalog.Tuple{pid, countries[r.Intn(len(countries))]}})
		case k < 60:
			reqs = append(reqs, Request{Mailbox: "add_contact", Payload: datalog.Tuple{pid, int64(r.Intn(people))}})
		case k < 75:
			reqs = append(reqs, Request{Mailbox: "diagnosed", Payload: datalog.Tuple{pid}})
		case k < 85:
			reqs = append(reqs, Request{Mailbox: "likelihood", Payload: datalog.Tuple{pid}})
		case k < 93:
			reqs = append(reqs, Request{Mailbox: "vaccinate", Payload: datalog.Tuple{pid}})
		default:
			reqs = append(reqs, Request{Mailbox: "poison", Payload: datalog.Tuple{pid}})
		}
		poison = append(poison, reqs[len(reqs)-1].Mailbox == "poison")
	}
	return reqs, poison
}

// driveSerial is the reference schedule: one message per tick, settled to
// idle before the next message is admitted.
func driveSerial(rt *transducer.Runtime, reqs []Request) {
	for _, req := range reqs {
		rt.Inject(req.Mailbox, req.Payload)
		rt.Tick()
		rt.RunUntilIdle(256)
	}
}

func TestBatchedEqualsSerialSweep(t *testing.T) {
	covidVars := []string{"vaccine_count"}
	rejectedBatches := uint64(0)
	for seed := 0; seed < *serveSeeds; seed++ {
		for _, fullEval := range []bool{false, true} {
			for _, churn := range []bool{false, true} {
				r := rand.New(rand.NewSource(int64(seed)*4 + b2i(fullEval)*2 + b2i(churn)))
				reqs, poison := genCovidRequests(r, *serveReqs)

				ref := covidRuntime(t, int64(seed), fullEval, churn)
				driveSerial(ref, reqs)
				want := canonicalState(ref, covidVars)

				rt := covidRuntime(t, int64(seed), fullEval, churn)
				s := New(rt, Config{
					MaxBatch:        1 + r.Intn(16),
					MaxWait:         time.Duration(100+r.Intn(400)) * time.Microsecond,
					QueueDepth:      64,
					SerialMailboxes: []string{"vaccinate"},
					DrainMailboxes:  []string{"alert", "trace_response"},
				})
				ps := make([]*Pending, len(reqs))
				for i, req := range reqs {
					p, err := s.Submit(req)
					if err != nil {
						t.Fatalf("seed %d fullEval=%v churn=%v: submit: %v", seed, fullEval, churn, err)
					}
					ps[i] = p
				}
				for i, p := range ps {
					resp := p.Wait()
					if poison[i] && resp.Err == nil {
						t.Fatalf("seed %d fullEval=%v churn=%v: poison request %d served without rejection", seed, fullEval, churn, i)
					}
					if !poison[i] && resp.Err != nil {
						t.Fatalf("seed %d fullEval=%v churn=%v: request %d (%s) failed: %v", seed, fullEval, churn, i, reqs[i].Mailbox, resp.Err)
					}
				}
				rejectedBatches += s.Metrics().RejectedBatches
				s.Close()
				if got := canonicalState(s.Runtime(), covidVars); got != want {
					t.Fatalf("seed %d fullEval=%v churn=%v: batched state diverged from serial\nserial:\n%s\nbatched:\n%s",
						seed, fullEval, churn, want, got)
				}
			}
		}
	}
	if rejectedBatches == 0 {
		t.Fatal("sweep never exercised a rejected batch tick")
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
