package serve

import (
	"testing"
	"time"

	"hydro/internal/datalog"
	"hydro/internal/transducer"
)

// benchRuntime is the ingestion fixture: an incremental transitive-closure
// program fed unique chain-free edges, so every message carries a real
// delta through Incremental.Apply without the closure blowing up as b.N
// grows. The handler stays silent (no replies) so response mailboxes don't
// accumulate across a long benchmark run.
func benchRuntime(tb testing.TB) *transducer.Runtime {
	rt := transducer.New("bench", 1)
	rt.SetDelay(fixedDelay)
	rt.RegisterTable(transducer.TableSchema{Name: "edge", Arity: 2})
	if err := rt.RegisterQueriesIncremental(tcProgram(tb)); err != nil {
		tb.Fatal(err)
	}
	rt.RegisterHandler("add_edge", func(tx *transducer.Tx, msg transducer.Message) {
		tx.MergeTuple("edge", msg.Payload)
	})
	return rt
}

const benchKeys = 256

func benchEdge(i int) datalog.Tuple {
	return datalog.Tuple{int64(i % benchKeys), int64(benchKeys + i)}
}

// ingest drives n messages at the given batch size: one tick per batch,
// which in incremental mode is one Incremental.Apply per batch. batch=1 is
// the pre-serving one-message-per-tick delivery model.
func ingest(rt *transducer.Runtime, start, n, batch int) {
	inj := make([]transducer.Injection, 0, batch)
	for i := 0; i < n; {
		inj = inj[:0]
		for j := 0; j < batch && i < n; j++ {
			inj = append(inj, transducer.Injection{Mailbox: "add_edge", Payload: benchEdge(start + i)})
			i++
		}
		rt.InjectBatch(inj)
		rt.Tick()
	}
}

// BenchmarkServeIngestPerMessage is the baseline the serving front-end
// replaces: every injected message pays a full tick (and one
// Incremental.Apply). ns/op is per message.
func BenchmarkServeIngestPerMessage(b *testing.B) {
	rt := benchRuntime(b)
	b.ReportAllocs()
	b.ResetTimer()
	ingest(rt, 0, b.N, 1)
}

// BenchmarkServeIngestBatched64 amortizes the per-tick fixed costs across
// 64-message batches. ns/op is per message.
func BenchmarkServeIngestBatched64(b *testing.B) {
	rt := benchRuntime(b)
	b.ReportAllocs()
	b.ResetTimer()
	ingest(rt, 0, b.N, 64)
}

// BenchmarkServeIngestBatched256 is the large-batch point. ns/op is per
// message.
func BenchmarkServeIngestBatched256(b *testing.B) {
	rt := benchRuntime(b)
	b.ReportAllocs()
	b.ResetTimer()
	ingest(rt, 0, b.N, 256)
}

// BenchmarkServeSubmitPipeline measures the full serving shell — admission
// queue, batcher, tick, settle, reply correlation, timing capture — per
// request, with an open submitter so batches actually form.
func BenchmarkServeSubmitPipeline(b *testing.B) {
	rt := benchRuntime(b)
	s := New(rt, Config{MaxBatch: 256, MaxWait: 200 * time.Microsecond, QueueDepth: 1024})
	defer s.Close()
	ps := make([]*Pending, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := s.Submit(Request{Mailbox: "add_edge", Payload: benchEdge(i)})
		if err != nil {
			b.Fatal(err)
		}
		ps[i] = p
	}
	for _, p := range ps {
		if r := p.Wait(); r.Err != nil {
			b.Fatal(r.Err)
		}
	}
}

// BenchmarkServeSubmitSingleLoop is the A/B baseline for the two-stage
// pipeline: the same serving shell with NoPipeline collapsing collection
// and evaluation onto one goroutine, so batch assembly is serving dead
// time again. Compare per-request ns/op against
// BenchmarkServeSubmitPipeline (make serve-bench runs both).
func BenchmarkServeSubmitSingleLoop(b *testing.B) {
	rt := benchRuntime(b)
	s := New(rt, Config{MaxBatch: 256, MaxWait: 200 * time.Microsecond, QueueDepth: 1024, NoPipeline: true})
	defer s.Close()
	ps := make([]*Pending, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := s.Submit(Request{Mailbox: "add_edge", Payload: benchEdge(i)})
		if err != nil {
			b.Fatal(err)
		}
		ps[i] = p
	}
	for _, p := range ps {
		if r := p.Wait(); r.Err != nil {
			b.Fatal(r.Err)
		}
	}
}

// TestBatchedIngestionBeatsPerMessage is the acceptance gate for the
// serving front-end: batched ingestion must beat one-message-per-tick
// delivery on throughput. The measured gap is typically several-fold (one
// Incremental.Apply per 256 messages instead of per message); the 1.2×
// bar only guards against the batching path regressing to per-message
// cost, with slack for noisy CI hosts.
func TestBatchedIngestionBeatsPerMessage(t *testing.T) {
	const n = 4096
	run := func(batch int) time.Duration {
		rt := benchRuntime(t)
		ingest(rt, 0, 512, batch) // warm-up: build relations, indexes, plans
		start := time.Now()
		ingest(rt, 512, n, batch)
		return time.Since(start)
	}
	perMessage := run(1)
	batched := run(256)
	t.Logf("per-message: %v for %d msgs (%.0f msg/s); batched(256): %v (%.0f msg/s)",
		perMessage, n, float64(n)/perMessage.Seconds(), batched, float64(n)/batched.Seconds())
	if float64(perMessage) < 1.2*float64(batched) {
		t.Fatalf("batched ingestion (%v) must beat per-message delivery (%v) by ≥1.2×", batched, perMessage)
	}
}
