package serve

import "sync/atomic"

// metrics is the server's live instrumentation: a queue-depth gauge plus
// monotone counters, all atomics so Submit-side goroutines and the serve
// loop update them without locks.
type metrics struct {
	queueDepth     atomic.Int64 // gauge: requests admitted but not yet flushed
	queueHighWater atomic.Int64

	submitted       atomic.Uint64
	shed            atomic.Uint64
	responded       atomic.Uint64
	batches         atomic.Uint64
	sizeFlushes     atomic.Uint64 // batches flushed because they hit MaxBatch
	deadlineFlushes atomic.Uint64 // batches flushed by the MaxWait deadline
	serialFlushes   atomic.Uint64 // singleton batches forced by SerialMailboxes
	rejectedBatches atomic.Uint64 // batch ticks the evaluator/sink refused
	retried         atomic.Uint64 // messages re-injected one-per-tick after a rejected batch
	failed          atomic.Uint64 // requests answered with a rejection error
	unsettled       atomic.Uint64 // batches whose cascade did not quiesce within SettleTicks

	// Cumulative per-phase tick time across all batch ticks (from the
	// runtime's TickTimings), for the tick-level breakdown underneath the
	// per-request phases.
	tickDeliverNs  atomic.Int64
	tickSnapshotNs atomic.Int64
	tickHandlersNs atomic.Int64
	tickApplyNs    atomic.Int64
	ticks          atomic.Uint64
}

// Metrics is a point-in-time snapshot of the server's gauges and counters.
type Metrics struct {
	QueueDepth     int64 // current admission-queue depth (gauge)
	QueueHighWater int64

	Submitted       uint64
	Shed            uint64 // submissions refused by the Shed policy
	Responded       uint64
	Batches         uint64
	SizeFlushes     uint64
	DeadlineFlushes uint64
	SerialFlushes   uint64
	RejectedBatches uint64
	Retried         uint64
	Failed          uint64
	Unsettled       uint64

	// Cumulative runtime tick-phase time across batch and settle ticks.
	TickDeliverNs  int64
	TickSnapshotNs int64
	TickHandlersNs int64
	TickApplyNs    int64
	Ticks          uint64
}

func (m *metrics) snapshot() Metrics {
	return Metrics{
		QueueDepth:      m.queueDepth.Load(),
		QueueHighWater:  m.queueHighWater.Load(),
		Submitted:       m.submitted.Load(),
		Shed:            m.shed.Load(),
		Responded:       m.responded.Load(),
		Batches:         m.batches.Load(),
		SizeFlushes:     m.sizeFlushes.Load(),
		DeadlineFlushes: m.deadlineFlushes.Load(),
		SerialFlushes:   m.serialFlushes.Load(),
		RejectedBatches: m.rejectedBatches.Load(),
		Retried:         m.retried.Load(),
		Failed:          m.failed.Load(),
		Unsettled:       m.unsettled.Load(),
		TickDeliverNs:   m.tickDeliverNs.Load(),
		TickSnapshotNs:  m.tickSnapshotNs.Load(),
		TickHandlersNs:  m.tickHandlersNs.Load(),
		TickApplyNs:     m.tickApplyNs.Load(),
		Ticks:           m.ticks.Load(),
	}
}

// gaugeInc bumps the queue-depth gauge and tracks its high-water mark.
func (m *metrics) gaugeInc() {
	d := m.queueDepth.Add(1)
	for {
		hw := m.queueHighWater.Load()
		if d <= hw || m.queueHighWater.CompareAndSwap(hw, d) {
			return
		}
	}
}

func (m *metrics) gaugeDec() { m.queueDepth.Add(-1) }
