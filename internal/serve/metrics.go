package serve

import "sync/atomic"

// metrics is the server's live instrumentation: a queue-depth gauge plus
// monotone counters, all atomics so Submit-side goroutines and the serve
// loop update them without locks.
type metrics struct {
	// queueDepth counts admission attempts holding or seeking a queue
	// slot: Submit increments before the channel send (so the collector's
	// decrement can never outrun it and the gauge never reads negative)
	// and decrements on the shed path. The high-water mark therefore
	// includes momentary refused attempts.
	queueDepth     atomic.Int64
	queueHighWater atomic.Int64

	submitted       atomic.Uint64
	shed            atomic.Uint64 // submissions refused by the Shed policy (queue full)
	overQuota       atomic.Uint64 // submissions refused by a mailbox admission quota
	responded       atomic.Uint64
	batches         atomic.Uint64
	sizeFlushes     atomic.Uint64 // batches flushed because they hit MaxBatch
	deadlineFlushes atomic.Uint64 // batches flushed by the MaxWait deadline
	serialFlushes   atomic.Uint64 // singleton batches forced by SerialMailboxes
	rejectedBatches atomic.Uint64 // batch ticks the evaluator/sink refused
	retried         atomic.Uint64 // messages re-injected one-per-tick after a rejected batch
	failed          atomic.Uint64 // requests answered with a rejection error
	unsettled       atomic.Uint64 // batches whose cascade did not quiesce within SettleTicks
	deadlineShed    atomic.Uint64 // admitted requests shed past their deadline before a tick slot
	closedUnserved  atomic.Uint64 // admitted requests abandoned with ErrClosed at Shed-policy Close

	// Pipeline overlap instrumentation: collectWaitNs is time the eval
	// stage spent waiting on the handoff (the collector was the
	// bottleneck), handoffBlockNs is time the collector spent blocked on
	// the full handoff (eval was the bottleneck), evalBusyNs is total
	// eval-stage work time. At saturation a healthy pipeline shows
	// collectWaitNs << evalBusyNs: collection fully hides behind eval.
	collectWaitNs  atomic.Int64
	handoffBlockNs atomic.Int64
	evalBusyNs     atomic.Int64

	// Cumulative per-phase tick time across all batch ticks (from the
	// runtime's TickTimings), for the tick-level breakdown underneath the
	// per-request phases.
	tickDeliverNs  atomic.Int64
	tickSnapshotNs atomic.Int64
	tickHandlersNs atomic.Int64
	tickApplyNs    atomic.Int64
	ticks          atomic.Uint64
}

// Metrics is a point-in-time snapshot of the server's gauges and counters.
type Metrics struct {
	QueueDepth     int64 // current admission-queue gauge (attempts holding/seeking a slot)
	QueueHighWater int64

	Submitted       uint64
	Shed            uint64 // submissions refused by the Shed policy
	OverQuota       uint64 // submissions refused by a mailbox admission quota
	Responded       uint64
	Batches         uint64
	SizeFlushes     uint64
	DeadlineFlushes uint64
	SerialFlushes   uint64
	RejectedBatches uint64
	Retried         uint64
	Failed          uint64
	Unsettled       uint64
	DeadlineShed    uint64 // admitted requests shed past their deadline
	ClosedUnserved  uint64 // admitted requests abandoned at Shed-policy Close

	// Pipeline overlap: eval-stage wait on the collector vs collector
	// block on the full handoff vs total eval-stage busy time.
	CollectWaitNs  int64
	HandoffBlockNs int64
	EvalBusyNs     int64

	// Cumulative runtime tick-phase time across batch and settle ticks.
	TickDeliverNs  int64
	TickSnapshotNs int64
	TickHandlersNs int64
	TickApplyNs    int64
	Ticks          uint64
}

func (m *metrics) snapshot() Metrics {
	return Metrics{
		QueueDepth:      m.queueDepth.Load(),
		QueueHighWater:  m.queueHighWater.Load(),
		Submitted:       m.submitted.Load(),
		Shed:            m.shed.Load(),
		OverQuota:       m.overQuota.Load(),
		Responded:       m.responded.Load(),
		Batches:         m.batches.Load(),
		SizeFlushes:     m.sizeFlushes.Load(),
		DeadlineFlushes: m.deadlineFlushes.Load(),
		SerialFlushes:   m.serialFlushes.Load(),
		RejectedBatches: m.rejectedBatches.Load(),
		Retried:         m.retried.Load(),
		Failed:          m.failed.Load(),
		Unsettled:       m.unsettled.Load(),
		DeadlineShed:    m.deadlineShed.Load(),
		ClosedUnserved:  m.closedUnserved.Load(),
		CollectWaitNs:   m.collectWaitNs.Load(),
		HandoffBlockNs:  m.handoffBlockNs.Load(),
		EvalBusyNs:      m.evalBusyNs.Load(),
		TickDeliverNs:   m.tickDeliverNs.Load(),
		TickSnapshotNs:  m.tickSnapshotNs.Load(),
		TickHandlersNs:  m.tickHandlersNs.Load(),
		TickApplyNs:     m.tickApplyNs.Load(),
		Ticks:           m.ticks.Load(),
	}
}

// gaugeInc bumps the queue-depth gauge and tracks its high-water mark.
func (m *metrics) gaugeInc() {
	d := m.queueDepth.Add(1)
	for {
		hw := m.queueHighWater.Load()
		if d <= hw || m.queueHighWater.CompareAndSwap(hw, d) {
			return
		}
	}
}

func (m *metrics) gaugeDec() { m.queueDepth.Add(-1) }
