package serve

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"hydro/internal/datalog"
	"hydro/internal/transducer"
)

func fixedDelay(r *rand.Rand) int { return 1 }

func tcProgram(t testing.TB) *datalog.Program {
	t.Helper()
	prog, err := datalog.NewProgram(
		datalog.Rule{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}},
			Body: []datalog.Literal{{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}}},
		},
		datalog.Rule{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("z")}},
			Body: []datalog.Literal{
				{Atom: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}},
				{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("y"), datalog.V("z")}}},
			},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// newGraphRuntime builds the serving fixture: an incremental transitive-
// closure graph with handlers for fact ingestion (add_edge), reads
// (count_paths), cascades (fanout → alert), a non-monotone counter (incr),
// and a poison pill that writes a derived head (rejected tick).
func newGraphRuntime(t testing.TB, seed int64) *transducer.Runtime {
	t.Helper()
	rt := transducer.New("srv", seed)
	rt.SetDelay(fixedDelay)
	rt.RegisterTable(transducer.TableSchema{Name: "edge", Arity: 2})
	rt.RegisterVar("count", int64(0))
	if err := rt.RegisterQueriesIncremental(tcProgram(t)); err != nil {
		t.Fatal(err)
	}
	rt.RegisterHandler("add_edge", func(tx *transducer.Tx, msg transducer.Message) {
		tx.MergeTuple("edge", msg.Payload)
		tx.Reply("ok")
	})
	rt.RegisterHandler("count_paths", func(tx *transducer.Tx, msg transducer.Message) {
		tx.Reply(int64(len(tx.Query("path"))))
	})
	rt.RegisterHandler("incr", func(tx *transducer.Tx, msg transducer.Message) {
		tx.Assign("count", tx.ReadVar("count").(int64)+1)
	})
	rt.RegisterHandler("fanout", func(tx *transducer.Tx, msg transducer.Message) {
		tx.Send("alert", msg.Payload)
	})
	rt.RegisterHandler("poison", func(tx *transducer.Tx, msg transducer.Message) {
		tx.MergeTuple("path", msg.Payload)
	})
	return rt
}

// holdLoop parks the serve loop inside a Sync callback so a test can stage
// submissions deterministically; the returned release function unparks it.
func holdLoop(t *testing.T, s *Server) (release func()) {
	t.Helper()
	entered := make(chan struct{})
	hold := make(chan struct{})
	go s.Sync(func(*transducer.Runtime) {
		close(entered)
		<-hold
	})
	<-entered
	return func() { close(hold) }
}

func mustSubmit(t *testing.T, s *Server, mailbox string, payload datalog.Tuple) *Pending {
	t.Helper()
	p, err := s.Submit(Request{Mailbox: mailbox, Payload: payload})
	if err != nil {
		t.Fatalf("submit %s: %v", mailbox, err)
	}
	return p
}

func TestServeBatchesBySize(t *testing.T) {
	rt := newGraphRuntime(t, 1)
	s := New(rt, Config{MaxBatch: 4, MaxWait: time.Second, QueueDepth: 16})
	defer s.Close()
	release := holdLoop(t, s)
	var ps []*Pending
	for i := 0; i < 8; i++ {
		ps = append(ps, mustSubmit(t, s, "add_edge", datalog.Tuple{int64(i), int64(i + 1)}))
	}
	release()
	for _, p := range ps {
		r := p.Wait()
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Timing.BatchSize != 4 {
			t.Fatalf("BatchSize = %d, want 4", r.Timing.BatchSize)
		}
	}
	m := s.Metrics()
	if m.Batches != 2 || m.SizeFlushes != 2 {
		t.Fatalf("batches=%d sizeFlushes=%d, want 2/2", m.Batches, m.SizeFlushes)
	}
	if got := len(rt0Tuples(t, s, "edge")); got != 8 {
		t.Fatalf("edge has %d rows, want 8", got)
	}
}

// rt0Tuples reads a table through Sync (the server still owns the runtime).
func rt0Tuples(t *testing.T, s *Server, table string) []datalog.Tuple {
	t.Helper()
	var out []datalog.Tuple
	if err := s.Sync(func(rt *transducer.Runtime) { out = rt.Table(table).Tuples() }); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestServeDeadlineFlush(t *testing.T) {
	rt := newGraphRuntime(t, 1)
	s := New(rt, Config{MaxBatch: 64, MaxWait: 2 * time.Millisecond})
	defer s.Close()
	release := holdLoop(t, s)
	ps := []*Pending{
		mustSubmit(t, s, "add_edge", datalog.Tuple{int64(1), int64(2)}),
		mustSubmit(t, s, "add_edge", datalog.Tuple{int64(2), int64(3)}),
		mustSubmit(t, s, "add_edge", datalog.Tuple{int64(3), int64(4)}),
	}
	release()
	for _, p := range ps {
		if r := p.Wait(); r.Err != nil || r.Timing.BatchSize != 3 {
			t.Fatalf("resp = %+v, want batch of 3", r)
		}
	}
	if m := s.Metrics(); m.DeadlineFlushes != 1 || m.SizeFlushes != 0 {
		t.Fatalf("deadline=%d size=%d, want 1/0", m.DeadlineFlushes, m.SizeFlushes)
	}
}

func TestServeShedBackpressure(t *testing.T) {
	rt := newGraphRuntime(t, 1)
	s := New(rt, Config{MaxBatch: 2, QueueDepth: 2, Policy: Shed, MaxWait: time.Millisecond})
	defer s.Close()
	release := holdLoop(t, s)
	p1 := mustSubmit(t, s, "add_edge", datalog.Tuple{int64(1), int64(2)})
	p2 := mustSubmit(t, s, "add_edge", datalog.Tuple{int64(2), int64(3)})
	if got := s.QueueDepth(); got != 2 {
		t.Fatalf("queue gauge = %d, want 2", got)
	}
	if _, err := s.Submit(Request{Mailbox: "add_edge", Payload: datalog.Tuple{int64(3), int64(4)}}); !errors.Is(err, ErrOverload) {
		t.Fatalf("full queue must shed, got %v", err)
	}
	release()
	p1.Wait()
	p2.Wait()
	m := s.Metrics()
	// The gauge counts admission attempts holding or seeking a slot (the
	// increment lands before the channel send so it can never go
	// transiently negative), so the refused third submit shows in the
	// high-water mark.
	if m.Shed != 1 || m.Submitted != 2 || m.QueueHighWater != 3 {
		t.Fatalf("shed=%d submitted=%d highwater=%d, want 1/2/3", m.Shed, m.Submitted, m.QueueHighWater)
	}
	if got := s.QueueDepth(); got != 0 {
		t.Fatalf("drained queue gauge = %d, want 0", got)
	}
}

func TestServeBlockBackpressure(t *testing.T) {
	rt := newGraphRuntime(t, 1)
	s := New(rt, Config{MaxBatch: 1, QueueDepth: 1, Policy: Block})
	defer s.Close()
	release := holdLoop(t, s)
	p1 := mustSubmit(t, s, "add_edge", datalog.Tuple{int64(1), int64(2)})
	blocked := make(chan *Pending)
	go func() {
		p, err := s.Submit(Request{Mailbox: "add_edge", Payload: datalog.Tuple{int64(2), int64(3)}})
		if err != nil {
			t.Error(err)
		}
		blocked <- p
	}()
	select {
	case <-blocked:
		t.Fatal("submit into a full queue must block under the Block policy")
	case <-time.After(20 * time.Millisecond):
	}
	release()
	p2 := <-blocked
	if r := p1.Wait(); r.Err != nil {
		t.Fatal(r.Err)
	}
	if r := p2.Wait(); r.Err != nil {
		t.Fatal(r.Err)
	}
}

// TestServeRejectedBatchRetryIsolation: a poison request must cost only its
// own tick — its batchmates commit exactly as they would have serially.
func TestServeRejectedBatchRetryIsolation(t *testing.T) {
	rt := newGraphRuntime(t, 1)
	s := New(rt, Config{MaxBatch: 8, MaxWait: 20 * time.Millisecond, QueueDepth: 16})
	defer s.Close()
	release := holdLoop(t, s)
	pGood1 := mustSubmit(t, s, "add_edge", datalog.Tuple{int64(1), int64(2)})
	pPoison := mustSubmit(t, s, "poison", datalog.Tuple{int64(9), int64(9)})
	pGood2 := mustSubmit(t, s, "add_edge", datalog.Tuple{int64(2), int64(3)})
	release()
	if r := pGood1.Wait(); r.Err != nil {
		t.Fatalf("innocent batchmate failed: %v", r.Err)
	}
	if r := pGood2.Wait(); r.Err != nil {
		t.Fatalf("innocent batchmate failed: %v", r.Err)
	}
	r := pPoison.Wait()
	if r.Err == nil || !r.Timing.Rejected {
		t.Fatalf("poison request must fail, got %+v", r)
	}
	if got := len(rt0Tuples(t, s, "edge")); got != 2 {
		t.Fatalf("edge has %d rows, want 2", got)
	}
	// path closure over 1→2→3 has 3 tuples; the poison write never landed.
	if got := len(rt0Tuples(t, s, "path")); got != 3 {
		t.Fatalf("path has %d rows, want 3", got)
	}
	m := s.Metrics()
	if m.RejectedBatches != 1 || m.Retried != 3 || m.Failed != 1 {
		t.Fatalf("rejected=%d retried=%d failed=%d, want 1/3/1", m.RejectedBatches, m.Retried, m.Failed)
	}
}

// TestServeSerialMailboxes: non-monotone handlers lose updates when
// batched (every invocation reads the same snapshot); listing their
// mailbox in SerialMailboxes restores the serial schedule.
func TestServeSerialMailboxes(t *testing.T) {
	readCount := func(s *Server) int64 {
		var v int64
		if err := s.Sync(func(rt *transducer.Runtime) { v = rt.Var("count").(int64) }); err != nil {
			t.Fatal(err)
		}
		return v
	}

	// Batched: both incr invocations read count=0 from the shared
	// snapshot — the lost update batching would silently introduce.
	sB := New(newGraphRuntime(t, 1), Config{MaxBatch: 8, MaxWait: 20 * time.Millisecond, QueueDepth: 16})
	releaseB := holdLoop(t, sB)
	b1 := mustSubmit(t, sB, "incr", datalog.Tuple{})
	b2 := mustSubmit(t, sB, "incr", datalog.Tuple{})
	releaseB()
	b1.Wait()
	b2.Wait()
	if got := readCount(sB); got != 1 {
		t.Fatalf("batched non-monotone count = %d, want the lost-update 1", got)
	}
	sB.Close()

	// Serial: the mailbox is declared order-sensitive, so each request
	// ticks alone and the counter is exact.
	sS := New(newGraphRuntime(t, 1), Config{
		MaxBatch: 8, MaxWait: 20 * time.Millisecond, QueueDepth: 16,
		SerialMailboxes: []string{"incr"},
	})
	releaseS := holdLoop(t, sS)
	s1 := mustSubmit(t, sS, "incr", datalog.Tuple{})
	s2 := mustSubmit(t, sS, "incr", datalog.Tuple{})
	releaseS()
	s1.Wait()
	s2.Wait()
	if got := readCount(sS); got != 2 {
		t.Fatalf("serial count = %d, want 2", got)
	}
	if m := sS.Metrics(); m.SerialFlushes != 2 {
		t.Fatalf("serialFlushes = %d, want 2", m.SerialFlushes)
	}
	sS.Close()
}

func TestServeReplyCorrelation(t *testing.T) {
	rt := newGraphRuntime(t, 1)
	s := New(rt, Config{MaxBatch: 4, MaxWait: time.Millisecond})
	defer s.Close()
	for _, e := range [][2]int64{{1, 2}, {2, 3}} {
		if r := mustSubmit(t, s, "add_edge", datalog.Tuple{e[0], e[1]}).Wait(); r.Err != nil {
			t.Fatal(r.Err)
		} else if len(r.Reply) != 1 || r.Reply[0] != "ok" {
			t.Fatalf("add_edge reply = %v", r.Reply)
		}
	}
	r := mustSubmit(t, s, "count_paths", datalog.Tuple{}).Wait()
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if len(r.Reply) != 1 || r.Reply[0] != int64(3) {
		t.Fatalf("count_paths reply = %v, want [3]", r.Reply)
	}
}

func TestServeDrainMailboxes(t *testing.T) {
	rt := newGraphRuntime(t, 1)
	var alerts []datalog.Tuple
	s := New(rt, Config{
		MaxBatch: 4, MaxWait: time.Millisecond,
		DrainMailboxes: []string{"alert"},
		OnDrain: func(mailbox string, msgs []transducer.Message) {
			for _, m := range msgs {
				alerts = append(alerts, m.Payload)
			}
		},
	})
	defer s.Close()
	if r := mustSubmit(t, s, "fanout", datalog.Tuple{int64(7)}).Wait(); r.Err != nil {
		t.Fatal(r.Err)
	}
	// OnDrain runs on the serve loop; synchronize before reading.
	var n int
	s.Sync(func(*transducer.Runtime) { n = len(alerts) })
	if n != 1 || alerts[0][0] != int64(7) {
		t.Fatalf("alerts = %v, want [[7]]", alerts)
	}
}

func TestServeNoHandlerAndClosed(t *testing.T) {
	rt := newGraphRuntime(t, 1)
	s := New(rt, Config{})
	if _, err := s.Submit(Request{Mailbox: "nope", Payload: datalog.Tuple{}}); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("unroutable mailbox must fail fast, got %v", err)
	}
	s.Close()
	if _, err := s.Submit(Request{Mailbox: "add_edge", Payload: datalog.Tuple{int64(1), int64(2)}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed server must refuse, got %v", err)
	}
	s.Close() // idempotent
}

// TestServeCloseDrains: every request admitted before Close is served.
func TestServeCloseDrains(t *testing.T) {
	rt := newGraphRuntime(t, 1)
	s := New(rt, Config{MaxBatch: 4, MaxWait: time.Hour, QueueDepth: 64})
	release := holdLoop(t, s)
	var ps []*Pending
	for i := 0; i < 10; i++ {
		ps = append(ps, mustSubmit(t, s, "add_edge", datalog.Tuple{int64(i), int64(i + 1)}))
	}
	release()
	s.Close()
	for _, p := range ps {
		if r := p.Wait(); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if got := len(s.Runtime().Table("edge").Tuples()); got != 10 {
		t.Fatalf("edge has %d rows after close, want 10", got)
	}
}

func TestServeTimingsAndCSVRoundTrip(t *testing.T) {
	rt := newGraphRuntime(t, 1)
	var recorded []RequestTiming
	s := New(rt, Config{
		MaxBatch: 4, MaxWait: time.Millisecond,
		OnTiming: func(tt RequestTiming) { recorded = append(recorded, tt) },
	})
	for i := 0; i < 6; i++ {
		if r := mustSubmit(t, s, "add_edge", datalog.Tuple{int64(i), int64(i + 1)}).Wait(); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	s.Close()
	if len(recorded) != 6 {
		t.Fatalf("recorded %d timings, want 6", len(recorded))
	}
	for _, tt := range recorded {
		if tt.QueueNs < 0 || tt.FlushNs < 0 || tt.EvalNs <= 0 || tt.RespondNs < 0 {
			t.Fatalf("implausible phases: %+v", tt)
		}
		if tt.TotalNs != tt.QueueNs+tt.FlushNs+tt.EvalNs+tt.RespondNs {
			t.Fatalf("total != sum of phases: %+v", tt)
		}
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recorded); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recorded) {
		t.Fatalf("round-tripped %d rows, want %d", len(back), len(recorded))
	}
	for i := range back {
		if back[i] != recorded[i] {
			t.Fatalf("row %d: %+v != %+v", i, back[i], recorded[i])
		}
	}
	sum := Summarize(back)
	if sum.Count != 6 || len(sum.Phases) != 5 {
		t.Fatalf("summary = %+v", sum)
	}
	for _, p := range sum.Phases {
		if p.P50 > p.P90 || p.P90 > p.P99 || p.P99 > p.Max {
			t.Fatalf("non-monotone percentiles in %+v", p)
		}
	}
	if sum.Render() == "" {
		t.Fatal("summary must render")
	}
}
