package serve

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hydro/internal/cluster"
	"hydro/internal/datalog"
	"hydro/internal/shard"
	"hydro/internal/simnet"
	"hydro/internal/target"
	"hydro/internal/transducer"
)

// The pipelined sweeps extend the PR 8 batched≡serial gate to the new
// serving configurations:
//
//   - TestPipelinedEqualsSerialSweep turns Config.Lanes on. Lanes reorder
//     requests across the serial/monotone boundary, so the submission-order
//     oracle no longer applies; the gate replays the serial reference in
//     the *executed* order instead, recovered from each response's
//     (Timing.Batch, Timing.Index) — the schedule the server actually ran
//     must be a schedule the serial semantics accept, byte for byte.
//   - TestPipelinedFanoutEqualsSerial adds the fan-out path: the server
//     tees every committed tick into a sharded deployment through
//     shard.Sink, and after the cluster settles the distributed fixpoint
//     must match both the serving runtime and a never-batched serial
//     reference.

// fanSettleBudget bounds one Settle call on the teed deployment (same
// order as the shard package's own settle budget).
const fanSettleBudget = 400_000

func TestPipelinedEqualsSerialSweep(t *testing.T) {
	covidVars := []string{"vaccine_count"}
	rejected := uint64(0)
	seeds := *serveSeeds
	if seeds > 10 {
		seeds = 10 // the recorded-order replay doubles the serial work per seed
	}
	for seed := 0; seed < seeds; seed++ {
		for _, churn := range []bool{false, true} {
			r := rand.New(rand.NewSource(int64(seed)*2 + b2i(churn) + 7777))
			reqs, _ := genCovidRequests(r, *serveReqs)

			rt := covidRuntime(t, int64(seed), false, churn)
			s := New(rt, Config{
				MaxBatch:        1 + r.Intn(16),
				MaxWait:         time.Duration(100+r.Intn(400)) * time.Microsecond,
				QueueDepth:      64,
				SerialMailboxes: []string{"vaccinate"},
				Lanes:           true,
				DrainMailboxes:  []string{"alert", "trace_response"},
			})
			ps := make([]*Pending, len(reqs))
			for i, req := range reqs {
				p, err := s.Submit(req)
				if err != nil {
					t.Fatalf("seed %d churn=%v: submit: %v", seed, churn, err)
				}
				ps[i] = p
			}
			timings := make([]RequestTiming, len(reqs))
			for i, p := range ps {
				resp := p.Wait()
				if (reqs[i].Mailbox == "poison") != (resp.Err != nil) {
					t.Fatalf("seed %d churn=%v: request %d (%s) err=%v", seed, churn, i, reqs[i].Mailbox, resp.Err)
				}
				timings[i] = resp.Timing
			}
			rejected += s.Metrics().RejectedBatches
			s.Close()

			// Replay the serial reference in the order the pipeline actually
			// executed: lanes reorder across lanes, so the executed schedule —
			// not the submission order — is what serial semantics must match.
			order := make([]int, len(reqs))
			for i := range order {
				order[i] = i
			}
			for i := 1; i < len(order); i++ {
				for j := i; j > 0 && ExecOrder(timings[order[j]], timings[order[j-1]]); j-- {
					order[j], order[j-1] = order[j-1], order[j]
				}
			}
			ref := covidRuntime(t, int64(seed), false, churn)
			for _, i := range order {
				ref.Inject(reqs[i].Mailbox, reqs[i].Payload)
				ref.Tick()
				ref.RunUntilIdle(256)
			}
			want := canonicalState(ref, covidVars)
			if got := canonicalState(rt, covidVars); got != want {
				t.Fatalf("seed %d churn=%v: pipelined+lanes state diverged from executed-order serial\nserial:\n%s\npipelined:\n%s",
					seed, churn, want, got)
			}
		}
	}
	if rejected == 0 {
		t.Fatal("sweep never exercised a rejected batch tick")
	}
}

// fanRuntime is the fan-out fixture: the TC program served locally with
// handlers for inserts, deletes, and a poison write to the derived head.
func fanRuntime(t testing.TB, seed int64, churn bool) *transducer.Runtime {
	t.Helper()
	rt := transducer.New("fan", seed)
	if !churn {
		rt.SetDelay(fixedDelay)
	}
	rt.RegisterTable(transducer.TableSchema{Name: "edge", Arity: 2})
	if err := rt.RegisterQueriesIncremental(tcProgram(t)); err != nil {
		t.Fatal(err)
	}
	rt.RegisterHandler("add_edge", func(tx *transducer.Tx, msg transducer.Message) {
		tx.MergeTuple("edge", msg.Payload)
	})
	rt.RegisterHandler("del_edge", func(tx *transducer.Tx, msg transducer.Message) {
		tx.Delete("edge", msg.Payload)
	})
	rt.RegisterHandler("poison", func(tx *transducer.Tx, msg transducer.Message) {
		tx.MergeTuple("path", msg.Payload)
	})
	return rt
}

func genFanRequests(r *rand.Rand, n int) []Request {
	const keys = 9
	var reqs []Request
	for i := 0; i < n; i++ {
		e := datalog.Tuple{int64(r.Intn(keys)), int64(r.Intn(keys))}
		switch k := r.Intn(100); {
		case k < 70:
			reqs = append(reqs, Request{Mailbox: "add_edge", Payload: e})
		case k < 92:
			reqs = append(reqs, Request{Mailbox: "del_edge", Payload: e})
		default:
			reqs = append(reqs, Request{Mailbox: "poison", Payload: e})
		}
	}
	return reqs
}

// TestPipelinedFanoutEqualsSerial drives the pipelined server with
// Config.Fanout teeing committed ticks into a 2-replica sharded
// deployment, across seeds × churn × rejected ticks. Three-way gate: the
// serving runtime must match the serial reference (canonical state), and
// the deployment's distributed fixpoint must match the serving runtime's
// tables byte for byte — rejected ticks never reach the cluster.
func TestPipelinedFanoutEqualsSerial(t *testing.T) {
	seeds := *serveSeeds
	if seeds > 6 {
		seeds = 6 // each seed spins up a simulated cluster
	}
	rejected := uint64(0)
	for seed := 0; seed < seeds; seed++ {
		for _, churn := range []bool{false, true} {
			r := rand.New(rand.NewSource(int64(seed)*2 + b2i(churn) + 31337))
			reqs := genFanRequests(r, 40+r.Intn(40))

			topo := cluster.NewTopology(3, 2, 2, cluster.ClassSmall)
			cl := cluster.New(topo, simnet.DefaultConfig(int64(seed)))
			machines, err := target.PlaceReplicas(topo, 2)
			if err != nil {
				t.Fatal(err)
			}
			dep, err := shard.Deploy(cl, fmt.Sprintf("fan%d", seed), tcProgram(t), map[string]int{"edge": 2}, machines, shard.Options{})
			if err != nil {
				t.Fatal(err)
			}

			rt := fanRuntime(t, int64(seed), churn)
			s := New(rt, Config{
				MaxBatch:   1 + r.Intn(8),
				MaxWait:    time.Duration(100+r.Intn(400)) * time.Microsecond,
				QueueDepth: 64,
				Fanout:     shard.NewSink(dep),
				FanoutPump: func() { dep.Settle(fanSettleBudget) },
			})
			ps := make([]*Pending, len(reqs))
			for i, req := range reqs {
				p, err := s.Submit(req)
				if err != nil {
					t.Fatalf("seed %d churn=%v: submit: %v", seed, churn, err)
				}
				ps[i] = p
			}
			for i, p := range ps {
				resp := p.Wait()
				if (reqs[i].Mailbox == "poison") != (resp.Err != nil) {
					t.Fatalf("seed %d churn=%v: request %d (%s) err=%v", seed, churn, i, reqs[i].Mailbox, resp.Err)
				}
			}
			rejected += s.Metrics().RejectedBatches
			s.Close()

			// Serving runtime ≡ serial reference.
			ref := fanRuntime(t, int64(seed), churn)
			driveSerial(ref, reqs)
			if got, want := canonicalState(rt, nil), canonicalState(ref, nil); got != want {
				t.Fatalf("seed %d churn=%v: fanned serving state diverged from serial\nserial:\n%s\nserved:\n%s",
					seed, churn, want, got)
			}

			// Deployment ≡ serving runtime: every committed tick reached the
			// cluster, no rejected tick did, nothing was double-submitted.
			if !dep.Settle(fanSettleBudget) {
				t.Fatalf("seed %d churn=%v: deployment did not settle", seed, churn)
			}
			refDB := datalog.NewDatabase()
			for _, pred := range dep.Placement().Preds {
				rel := rt.Table(pred)
				if rel == nil {
					continue
				}
				nr := refDB.Ensure(pred, rel.Arity)
				for _, tp := range rel.Tuples() {
					nr.Insert(tp)
				}
			}
			want := shard.DumpDatabase(refDB, dep.Placement().Preds)
			if got := dep.DumpString(); got != want {
				t.Fatalf("seed %d churn=%v: deployment diverged from serving runtime\ndeployment:\n%s\nruntime:\n%s",
					seed, churn, got, want)
			}
		}
	}
	if rejected == 0 {
		t.Fatal("fan-out sweep never exercised a rejected batch tick")
	}
}
