package consensus

import (
	"fmt"
	"testing"

	"hydro/internal/simnet"
)

func newNet(seed int64) *simnet.Network {
	return simnet.New(simnet.Config{Seed: seed, MinLatency: 10, MaxLatency: 100})
}

// agreeOnPrefix checks the fundamental safety property: all logs are
// prefixes of one another (no divergent decisions).
func agreeOnPrefix(t *testing.T, g *Group) []any {
	t.Helper()
	var longest []any
	for _, name := range g.Names() {
		if g.net.Down(name) {
			continue
		}
		log := g.Log(name)
		if len(log) > len(longest) {
			longest = log
		}
	}
	for _, name := range g.Names() {
		if g.net.Down(name) {
			continue
		}
		log := g.Log(name)
		for i, v := range log {
			if longest[i] != v {
				t.Fatalf("log divergence at slot %d on %s: %v vs %v", i, name, v, longest[i])
			}
		}
	}
	return longest
}

func TestSingleProposalDecides(t *testing.T) {
	net := newNet(1)
	g := NewGroup(net, 3, 1)
	g.Propose("p0", "hello")
	net.Drain(10000)
	log := agreeOnPrefix(t, g)
	if len(log) != 1 || log[0] != "hello" {
		t.Fatalf("log = %v", log)
	}
	for _, n := range g.Names() {
		if got := g.Log(n); len(got) != 1 {
			t.Fatalf("node %s log = %v", n, got)
		}
	}
}

func TestManyProposalsAllDecideExactlyOnce(t *testing.T) {
	net := newNet(2)
	g := NewGroup(net, 5, 2)
	want := map[string]bool{}
	for i := 0; i < 20; i++ {
		v := fmt.Sprintf("v%d", i)
		want[v] = true
		g.Propose(g.Names()[i%5], v)
		net.RunUntil(net.Now() + 500)
	}
	net.Drain(200000)
	log := agreeOnPrefix(t, g)
	got := map[string]int{}
	for _, v := range log {
		got[v.(string)]++
	}
	for v := range want {
		if got[v] != 1 {
			t.Fatalf("value %s decided %d times (log %v)", v, got[v], log)
		}
	}
	if len(log) != len(want) {
		t.Fatalf("log has %d entries, want %d", len(log), len(want))
	}
}

func TestConcurrentProposersConverge(t *testing.T) {
	net := newNet(3)
	g := NewGroup(net, 3, 3)
	// Dueling proposers: both start at once.
	g.Propose("p0", "from-p0")
	g.Propose("p1", "from-p1")
	g.Propose("p2", "from-p2")
	net.Drain(400000)
	log := agreeOnPrefix(t, g)
	seen := map[string]int{}
	for _, v := range log {
		seen[v.(string)]++
	}
	for _, v := range []string{"from-p0", "from-p1", "from-p2"} {
		if seen[v] != 1 {
			t.Fatalf("value %s decided %d times; log=%v", v, seen[v], log)
		}
	}
}

func TestSurvivesMinorityFailure(t *testing.T) {
	net := newNet(4)
	g := NewGroup(net, 5, 4)
	g.Propose("p0", "a")
	net.Drain(100000)
	// Kill two of five (a minority, f=2).
	net.SetDown("p3", true)
	net.SetDown("p4", true)
	g.Propose("p0", "b")
	g.Propose("p1", "c")
	net.Drain(400000)
	log := agreeOnPrefix(t, g)
	if len(log) != 3 {
		t.Fatalf("log = %v, want 3 entries despite 2 failures", log)
	}
}

func TestLeaderFailoverReproposesValue(t *testing.T) {
	net := newNet(5)
	g := NewGroup(net, 3, 5)
	g.Propose("p0", "first")
	net.Drain(100000)
	// p0 (the established leader) dies; p1 must take over.
	net.SetDown("p0", true)
	g.Propose("p1", "second")
	net.Drain(600000)
	var p1log, p2log []any
	p1log, p2log = g.Log("p1"), g.Log("p2")
	if len(p1log) < 2 || len(p2log) < 2 {
		t.Fatalf("failover did not decide: p1=%v p2=%v", p1log, p2log)
	}
	found := false
	for _, v := range p1log {
		if v == "second" {
			found = true
		}
	}
	if !found {
		t.Fatalf("second value lost after failover: %v", p1log)
	}
	agreeOnPrefix(t, g)
}

func TestNoProgressWithoutMajority(t *testing.T) {
	net := newNet(6)
	g := NewGroup(net, 3, 6)
	net.SetDown("p1", true)
	net.SetDown("p2", true)
	g.Propose("p0", "stuck")
	// Bounded drain: timeouts keep rescheduling, so cap events.
	net.Drain(5000)
	if got := g.Log("p0"); len(got) != 0 {
		t.Fatalf("decided without majority: %v", got)
	}
	// Heal one node: majority restored, value decides.
	net.SetDown("p1", false)
	net.Drain(400000)
	if got := g.Log("p0"); len(got) != 1 || got[0] != "stuck" {
		t.Fatalf("log after heal = %v", got)
	}
}

func TestOnDecideAppliesInOrder(t *testing.T) {
	net := newNet(7)
	g := NewGroup(net, 3, 7)
	var applied []int
	g.Nodes["p2"].OnDecide = func(slot int, v any) {
		applied = append(applied, slot)
	}
	for i := 0; i < 8; i++ {
		g.Propose("p0", i)
		net.RunUntil(net.Now() + 300)
	}
	net.Drain(200000)
	if len(applied) != 8 {
		t.Fatalf("applied %d slots, want 8", len(applied))
	}
	for i, s := range applied {
		if s != i {
			t.Fatalf("out-of-order application: %v", applied)
		}
	}
}

func TestDeterministicOutcome(t *testing.T) {
	run := func() []any {
		net := newNet(42)
		g := NewGroup(net, 3, 42)
		g.Propose("p0", "x")
		g.Propose("p1", "y")
		net.Drain(200000)
		return g.Log("p2")
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("non-deterministic log length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic log content")
		}
	}
}
