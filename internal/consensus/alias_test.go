package consensus

import (
	"testing"
)

// Regression tests for live-slice/map aliasing in Group accessors:
// mutating anything an accessor returns must never reach node state.
// (The bug class: an accessor returning an internal slice lets a chaos
// test's shuffle corrupt the live quorum.)

func decideThree(t *testing.T) *Group {
	t.Helper()
	net := newNet(99)
	g := NewGroup(net, 3, 99)
	g.Propose("p0", "a")
	g.Propose("p1", "b")
	g.Propose("p2", "c")
	net.Drain(50000)
	if got := len(agreeOnPrefix(t, g)); got != 3 {
		t.Fatalf("decided %d of 3", got)
	}
	return g
}

func TestNamesReturnsCopy(t *testing.T) {
	g := decideThree(t)
	names := g.Names()
	names[0] = "corrupted"
	if got := g.Names()[0]; got != "p0" {
		t.Fatalf("Names aliases internal state: %q", got)
	}
	// The nodes' shared peer slice must also be unreachable.
	if g.Nodes["p0"].peers[0] != "p0" {
		t.Fatal("peer slice corrupted through Names")
	}
}

func TestLogReturnsCopy(t *testing.T) {
	g := decideThree(t)
	log := g.Log("p0")
	for i := range log {
		log[i] = "corrupted"
	}
	for i, v := range g.Log("p0") {
		if v == "corrupted" {
			t.Fatalf("Log aliases internal state at slot %d", i)
		}
	}
}

func TestSlotsReturnsCopy(t *testing.T) {
	g := decideThree(t)
	slots := g.Slots("p0")
	if len(slots) == 0 {
		t.Fatal("no decided slots")
	}
	for s := range slots {
		slots[s] = "corrupted"
	}
	delete(slots, 0)
	for s, v := range g.Slots("p0") {
		if v == "corrupted" {
			t.Fatalf("Slots aliases internal state at slot %d", s)
		}
	}
	if len(g.Slots("p0")) != 3 {
		t.Fatal("deleting from the returned map changed node state")
	}
}

// TestPromiseSnapshotNotAliased pins that an acceptor's promise carries a
// snapshot of its accepted map: a promise in flight must not see values
// the acceptor accepts after sending it.
func TestPromiseSnapshotNotAliased(t *testing.T) {
	net := newNet(5)
	g := NewGroup(net, 3, 5)
	n := g.Nodes["p1"]
	n.promised = 1
	n.accepted[0] = acceptedVal{Ballot: 1, Value: entry{ID: "x#1", Value: "x"}}
	snap := map[int]acceptedVal{}
	for s, av := range n.accepted {
		snap[s] = av
	}
	// Mutating the acceptor after snapshotting must not change the snapshot
	// (this is exactly what the prepare handler builds and sends).
	n.accepted[1] = acceptedVal{Ballot: 2, Value: entry{ID: "y#1", Value: "y"}}
	if len(snap) != 1 {
		t.Fatalf("promise snapshot aliases acceptor state: %v", snap)
	}
}
