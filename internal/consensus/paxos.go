// Package consensus implements multi-decree Paxos over the simulated
// network. It is the "traditional heavyweight" coordination mechanism from
// §7.2 — the thing CALM analysis lets monotone code avoid, and the thing
// Hydrolysis inserts at coordination points (serializable handlers,
// state-machine replication for the availability facet).
//
// The implementation is the classic collapsed-roles design: every node is
// proposer, acceptor and learner. A node becomes leader by completing
// phase 1 (prepare/promise) for a ballot; it then runs phase 2
// (accept/accepted) per log slot. Timeouts with per-node randomized backoff
// restore liveness after leader failure.
package consensus

import (
	"fmt"
	"math/rand"
	"sort"

	"hydro/internal/simnet"
)

// Ballot orders proposal rounds. Uniqueness comes from embedding the node
// index: ballot = round*len(peers) + nodeIndex.
type Ballot int64

type prepareMsg struct {
	Ballot Ballot
}

type promiseMsg struct {
	Ballot   Ballot
	Accepted map[int]acceptedVal // slot → highest accepted
}

type acceptMsg struct {
	Ballot Ballot
	Slot   int
	Value  entry
}

// acceptedMsg is an acceptor's phase-2 vote. ID identifies the value voted
// for: a leader only credits votes whose ID matches what it is currently
// driving at the slot, so a vote for a value the slot no longer carries
// can never count toward a different value's quorum.
type acceptedMsg struct {
	Ballot Ballot
	Slot   int
	ID     string
}

type decideMsg struct {
	Slot  int
	Value entry
}

type nackMsg struct {
	Promised Ballot
}

type timeoutMsg struct {
	Seq uint64
}

// learnReq asks a peer for its decided log — the catch-up path for a node
// that recovered from a crash or partition and suspects it is behind.
type learnReq struct{}

// learnRsp carries the responder's decided slots. The map is a fresh copy:
// the learner merges it into its own log without aliasing responder state.
type learnRsp struct {
	Slots map[int]entry
}

// noop fills a log hole: after winning phase 1, a leader seals every slot
// below the highest known slot that no quorum member reported an accepted
// value for. Such a slot cannot hold a chosen value (a chosen value is
// accepted by a majority, which intersects the promise quorum), so a no-op
// is safe — and without it the hole would stall contiguous application
// forever. Noops are invisible to Log and OnDecide.
type noop struct{}

// IsMessage reports whether payload is consensus protocol traffic — used by
// hosts that embed a Paxos node inside a larger handler to route messages.
func IsMessage(payload any) bool {
	switch payload.(type) {
	case prepareMsg, promiseMsg, acceptMsg, acceptedMsg, decideMsg, nackMsg, timeoutMsg, learnReq, learnRsp:
		return true
	}
	return false
}

type acceptedVal struct {
	Ballot Ballot
	Value  entry
}

// entry is a proposed command tagged with a unique proposal ID. A command
// may occupy more than one slot when its original proposer times out and
// re-proposes while the first accept quietly succeeds; the learner dedupes
// by ID at application time — the standard SMR at-most-once discipline.
type entry struct {
	ID    string
	Value any
}

// Node is one Paxos participant.
type Node struct {
	name  string
	index int
	peers []string // includes self
	net   *simnet.Network
	rng   *rand.Rand

	// Acceptor state.
	promised Ballot
	accepted map[int]acceptedVal

	// Proposer/leader state.
	ballot      Ballot
	leader      bool
	phase1Votes map[string]promiseMsg
	pending     []entry       // values waiting for a slot
	inFlight    map[int]entry // slot → value being accepted
	acceptVotes map[int]map[string]bool
	nextSlot    int
	proposeSeq  uint64
	timeoutSeq  uint64
	backoffBase simnet.Time

	// Learner state.
	log     map[int]entry
	decided int // count of decided slots

	// OnDecide, when set, is invoked once per distinct command in slot
	// order as the log becomes contiguous (state-machine application).
	// Duplicate slots for the same proposal ID are skipped.
	OnDecide func(slot int, value any)
	applied  int
	seenIDs  map[string]bool
}

// Group is a set of Paxos nodes sharing a network.
type Group struct {
	Nodes map[string]*Node
	names []string
	net   *simnet.Network
}

// NewGroup wires n Paxos nodes named "p0".."p{n-1}" into the network.
func NewGroup(net *simnet.Network, n int, seed int64) *Group {
	var names []string
	for i := 0; i < n; i++ {
		names = append(names, fmt.Sprintf("p%d", i))
	}
	g := newGroup(net, names, seed)
	for _, name := range g.names {
		net.AddNode(name, g.Nodes[name].handle)
	}
	return g
}

// NewEmbeddedGroup builds a Paxos group over caller-owned network nodes:
// no handlers are registered, so a host that multiplexes consensus traffic
// with its own protocol on one node name routes messages in via
// Node.Handle (gated by IsMessage). Used by the replicated shard
// coordinator, whose control decrees share the coordinator node with the
// BSP data-plane protocol.
func NewEmbeddedGroup(net *simnet.Network, names []string, seed int64) *Group {
	return newGroup(net, append([]string(nil), names...), seed)
}

func newGroup(net *simnet.Network, names []string, seed int64) *Group {
	g := &Group{Nodes: map[string]*Node{}, net: net, names: names}
	for i, name := range g.names {
		node := &Node{
			name:        name,
			index:       i,
			peers:       g.names,
			net:         net,
			rng:         rand.New(rand.NewSource(seed + int64(i))),
			accepted:    map[int]acceptedVal{},
			phase1Votes: map[string]promiseMsg{},
			inFlight:    map[int]entry{},
			acceptVotes: map[int]map[string]bool{},
			log:         map[int]entry{},
			seenIDs:     map[string]bool{},
			backoffBase: 2000,
		}
		g.Nodes[name] = node
	}
	return g
}

// Names returns the node names in index order.
func (g *Group) Names() []string { return append([]string(nil), g.names...) }

// Propose submits a value through the given node.
func (g *Group) Propose(node string, value any) { g.Nodes[node].Propose(value) }

// Log returns a node's decided command sequence: the dense slot prefix with
// duplicate proposal IDs collapsed (at-most-once application order) and
// no-op hole fillers skipped. The slice is freshly allocated.
func (g *Group) Log(node string) []any {
	n := g.Nodes[node]
	var out []any
	seen := map[string]bool{}
	for slot := 0; ; slot++ {
		e, ok := n.log[slot]
		if !ok {
			return out
		}
		if seen[e.ID] {
			continue
		}
		seen[e.ID] = true
		if _, isNoop := e.Value.(noop); isNoop {
			continue
		}
		out = append(out, e.Value)
	}
}

// Slots returns a copy of a node's raw decided log keyed by slot, including
// no-op fillers and duplicate-ID slots — the replay-debugging view. Mutating
// the returned map cannot touch node state.
func (g *Group) Slots(node string) map[int]any {
	n := g.Nodes[node]
	out := make(map[int]any, len(n.log))
	for s, e := range n.log {
		out[s] = e.Value
	}
	return out
}

// DecidedCount returns the number of decided slots at a node.
func (g *Group) DecidedCount(node string) int { return g.Nodes[node].decided }

// Propose submits a value through this node: it is queued with a unique
// proposal ID and driven to a log slot by this node's proposer role.
func (n *Node) Propose(value any) {
	n.proposeSeq++
	n.pending = append(n.pending, entry{ID: fmt.Sprintf("%s#%d", n.name, n.proposeSeq), Value: value})
	n.kick()
}

// Handle feeds one network message to the node — the embedded-group entry
// point for hosts that own the network handler themselves.
func (n *Node) Handle(now simnet.Time, msg simnet.Message) { n.handle(now, msg) }

// Name returns the node's network name.
func (n *Node) Name() string { return n.name }

// Applied returns how many contiguous log slots have been applied — a
// cheap staleness signal two peers can compare to decide who needs to
// catch up.
func (n *Node) Applied() int { return n.applied }

// RequestLearn asks peer for its decided log (crash/partition catch-up).
// The response merges into this node's log and drives OnDecide forward.
func (n *Node) RequestLearn(peer string) {
	n.net.Send(n.name, peer, learnReq{})
}

// DebugString renders the node's proposer/learner state for test
// post-mortems.
func (n *Node) DebugString() string {
	return fmt.Sprintf("%s: ballot=%d promised=%d leader=%v pending=%d inFlight=%v nextSlot=%d decided=%d applied=%d timeoutSeq=%d",
		n.name, n.ballot, n.promised, n.leader, len(n.pending), n.inFlight, n.nextSlot, n.decided, n.applied, n.timeoutSeq)
}

func (n *Node) majority() int { return len(n.peers)/2 + 1 }

func (n *Node) bcast(payload any) {
	for _, p := range n.peers {
		if p == n.name {
			// Deliver to self through the network too, keeping one code
			// path (self messages get latency like any other).
			n.net.Send(n.name, n.name, payload)
			continue
		}
		n.net.Send(n.name, p, payload)
	}
}

// kick starts (or continues) proposing if there is work.
func (n *Node) kick() {
	if len(n.pending) == 0 && len(n.inFlight) == 0 {
		return
	}
	if n.leader {
		n.pump()
		return
	}
	n.startPhase1()
}

func (n *Node) startPhase1() {
	// Choose a ballot above anything seen, tagged with our index.
	round := int64(n.promised)/int64(len(n.peers)) + 1
	n.ballot = Ballot(round*int64(len(n.peers)) + int64(n.index))
	n.phase1Votes = map[string]promiseMsg{}
	n.leader = false
	n.bcast(prepareMsg{Ballot: n.ballot})
	n.armTimeout()
}

func (n *Node) armTimeout() {
	n.timeoutSeq++
	// Randomized backoff avoids dueling leaders.
	delay := n.backoffBase + simnet.Time(n.rng.Int63n(int64(n.backoffBase)))
	n.net.After(n.name, delay, timeoutMsg{Seq: n.timeoutSeq})
}

// pump assigns pending values to slots and sends accepts (leader only).
func (n *Node) pump() {
	for len(n.pending) > 0 {
		v := n.pending[0]
		n.pending = n.pending[1:]
		for {
			if _, used := n.log[n.nextSlot]; used {
				n.nextSlot++
				continue
			}
			if _, used := n.inFlight[n.nextSlot]; used {
				n.nextSlot++
				continue
			}
			break
		}
		slot := n.nextSlot
		n.nextSlot++
		n.inFlight[slot] = v
		n.acceptVotes[slot] = map[string]bool{}
		n.bcast(acceptMsg{Ballot: n.ballot, Slot: slot, Value: v})
	}
	if len(n.inFlight) > 0 {
		n.armTimeout()
	}
}

func (n *Node) handle(now simnet.Time, msg simnet.Message) {
	switch m := msg.Payload.(type) {
	case prepareMsg:
		if m.Ballot > n.promised {
			n.promised = m.Ballot
			if m.Ballot != n.ballot {
				n.leader = false
			}
			acc := make(map[int]acceptedVal, len(n.accepted))
			for s, av := range n.accepted {
				acc[s] = av
			}
			n.net.Send(n.name, msg.From, promiseMsg{Ballot: m.Ballot, Accepted: acc})
		} else {
			n.net.Send(n.name, msg.From, nackMsg{Promised: n.promised})
		}
	case promiseMsg:
		if m.Ballot != n.ballot || n.leader {
			return
		}
		n.phase1Votes[msg.From] = m
		if len(n.phase1Votes) < n.majority() {
			return
		}
		n.leader = true
		// Re-propose the highest-ballot accepted value per slot.
		repropose := map[int]acceptedVal{}
		for _, pm := range n.phase1Votes {
			for slot, av := range pm.Accepted {
				if _, done := n.log[slot]; done {
					continue
				}
				if cur, ok := repropose[slot]; !ok || av.Ballot > cur.Ballot {
					repropose[slot] = av
				}
			}
		}
		// Values we were driving under the previous ballot lose their slot
		// assignments: slots the quorum reported are re-driven with the
		// reported value, and the rest get fresh slots via pending — never
		// silently dropped, never left squatting on a slot the hole fill
		// below is about to seal.
		reproposed := map[string]bool{}
		for _, av := range repropose {
			reproposed[av.Value.ID] = true
		}
		var stranded []int
		for s := range n.inFlight {
			stranded = append(stranded, s)
		}
		sort.Ints(stranded)
		for _, s := range stranded {
			n.pending = append(n.pending, n.inFlight[s])
			delete(n.inFlight, s)
			delete(n.acceptVotes, s)
		}
		// Filter the WHOLE pending queue, not just the stranded values above:
		// the non-leader timeout path also re-queues in-flight values into
		// pending, and a command the promise quorum reported must never be
		// driven at a second fresh slot under this ballot — one decide would
		// abandon the other copy's slot with no safe way to seal it. Dedupe
		// by ID for the same reason.
		queued := map[string]bool{}
		kept := n.pending[:0]
		for _, e := range n.pending {
			if reproposed[e.ID] || n.seenIDs[e.ID] || queued[e.ID] {
				continue
			}
			queued[e.ID] = true
			kept = append(kept, e)
		}
		n.pending = kept
		slots := make([]int, 0, len(repropose))
		for s := range repropose {
			slots = append(slots, s)
		}
		sort.Ints(slots)
		for _, s := range slots {
			n.inFlight[s] = repropose[s].Value
			n.acceptVotes[s] = map[string]bool{}
			n.bcast(acceptMsg{Ballot: n.ballot, Slot: s, Value: repropose[s].Value})
			if s >= n.nextSlot {
				n.nextSlot = s + 1
			}
		}
		// Seal holes: any slot below the highest known slot with no accepted
		// value anywhere in the promise quorum is unchosen (choice requires a
		// majority, which intersects the quorum), so a no-op can take it.
		// Without this, a slot abandoned by a dead proposer would block
		// contiguous application forever.
		maxKnown := n.nextSlot - 1
		for s := range n.log {
			if s > maxKnown {
				maxKnown = s
			}
		}
		for s := 0; s <= maxKnown; s++ {
			if _, done := n.log[s]; done {
				continue
			}
			if _, busy := n.inFlight[s]; busy {
				continue
			}
			n.proposeSeq++
			e := entry{ID: fmt.Sprintf("%s#fill%d", n.name, n.proposeSeq), Value: noop{}}
			n.inFlight[s] = e
			n.acceptVotes[s] = map[string]bool{}
			n.bcast(acceptMsg{Ballot: n.ballot, Slot: s, Value: e})
		}
		n.pump()
	case acceptMsg:
		if m.Ballot >= n.promised {
			n.promised = m.Ballot
			n.accepted[m.Slot] = acceptedVal{Ballot: m.Ballot, Value: m.Value}
			n.net.Send(n.name, msg.From, acceptedMsg{Ballot: m.Ballot, Slot: m.Slot, ID: m.Value.ID})
		} else {
			n.net.Send(n.name, msg.From, nackMsg{Promised: n.promised})
		}
	case acceptedMsg:
		if m.Ballot != n.ballot || !n.leader {
			return
		}
		if cur, busy := n.inFlight[m.Slot]; !busy || cur.ID != m.ID {
			return // vote for a value this slot is no longer driving
		}
		votes, ok := n.acceptVotes[m.Slot]
		if !ok {
			return
		}
		votes[msg.From] = true
		if len(votes) >= n.majority() {
			v := n.inFlight[m.Slot]
			delete(n.inFlight, m.Slot)
			delete(n.acceptVotes, m.Slot)
			n.bcast(decideMsg{Slot: m.Slot, Value: v})
		}
	case decideMsg:
		if n.noteDecided(m.Slot, m.Value) {
			n.kick()
		}
		n.applyContiguous()
	case nackMsg:
		if m.Promised > n.ballot {
			n.leader = false
			// A higher ballot exists; back off and retry via timeout.
		}
	case timeoutMsg:
		if m.Seq != n.timeoutSeq {
			return // stale timer
		}
		if n.leader && len(n.inFlight) > 0 {
			// Still leader: retry the stuck slots in place. Re-queuing them
			// would assign fresh slots (nextSlot never reuses an abandoned
			// one), leaving permanent holes that stall OnDecide.
			var slots []int
			for s := range n.inFlight {
				slots = append(slots, s)
			}
			sort.Ints(slots)
			for _, s := range slots {
				n.acceptVotes[s] = map[string]bool{}
				n.bcast(acceptMsg{Ballot: n.ballot, Slot: s, Value: n.inFlight[s]})
			}
			n.pump() // flush anything pending; re-arms the timeout
			return
		}
		// Not leader: re-queue undecided in-flight values and retry
		// leadership — the phase 1 promises re-bind them to safe slots.
		var slots []int
		for s := range n.inFlight {
			slots = append(slots, s)
		}
		sort.Ints(slots)
		for _, s := range slots {
			n.pending = append(n.pending, n.inFlight[s])
			delete(n.inFlight, s)
			delete(n.acceptVotes, s)
		}
		if len(n.pending) > 0 {
			n.startPhase1()
		}
	case learnReq:
		slots := make(map[int]entry, len(n.log))
		for s, e := range n.log {
			slots[s] = e
		}
		n.net.Send(n.name, msg.From, learnRsp{Slots: slots})
	case learnRsp:
		var slots []int
		for s := range m.Slots {
			slots = append(slots, s)
		}
		sort.Ints(slots)
		requeued := false
		for _, s := range slots {
			if n.noteDecided(s, m.Slots[s]) {
				requeued = true
			}
		}
		if requeued {
			n.kick()
		}
		n.applyContiguous()
	}
}

func (n *Node) applyContiguous() {
	for {
		e, ok := n.log[n.applied]
		if !ok {
			return
		}
		if !n.seenIDs[e.ID] {
			n.seenIDs[e.ID] = true
			if _, isNoop := e.Value.(noop); !isNoop && n.OnDecide != nil {
				n.OnDecide(n.applied, e.Value)
			}
		}
		n.applied++
	}
}

// noteDecided records a decided slot, drops pending duplicates of the
// decided command, and re-queues any competing in-flight value that just
// lost this slot. Reports whether a value was re-queued (caller should
// kick the proposer).
//
// An in-flight copy of the decided command at a DIFFERENT slot is left
// running: its accepts may already hold a majority there, and replacing
// an in-flight value at the same ballot would put two different values
// under one (ballot, slot) — acceptors overwrite on m.Ballot >= promised,
// so a quorum could be split across both values yet report the same
// ballot to a later phase 1, letting different leaders resurrect
// different values for the slot (divergent decides). A duplicate decide
// is harmless instead — the learner dedupes by proposal ID at apply
// time — and if this node dies first, the next leader's phase-1 hole
// fill seals the slot under a strictly higher ballot with quorum
// evidence it is unchosen.
func (n *Node) noteDecided(slot int, e entry) bool {
	if _, done := n.log[slot]; done {
		return false
	}
	n.log[slot] = e
	n.decided++
	n.dropPending(e.ID)
	if cur, busy := n.inFlight[slot]; busy {
		delete(n.inFlight, slot)
		delete(n.acceptVotes, slot)
		if cur.ID != e.ID {
			// Our proposal lost the slot race; drive it to a fresh slot.
			n.pending = append(n.pending, cur)
			return true
		}
	}
	return false
}

// dropPending removes a command from the pending queue once it is known
// decided, so it is never assigned a fresh slot.
func (n *Node) dropPending(id string) {
	kept := n.pending[:0]
	for _, e := range n.pending {
		if e.ID != id {
			kept = append(kept, e)
		}
	}
	n.pending = kept
}
