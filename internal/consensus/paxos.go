// Package consensus implements multi-decree Paxos over the simulated
// network. It is the "traditional heavyweight" coordination mechanism from
// §7.2 — the thing CALM analysis lets monotone code avoid, and the thing
// Hydrolysis inserts at coordination points (serializable handlers,
// state-machine replication for the availability facet).
//
// The implementation is the classic collapsed-roles design: every node is
// proposer, acceptor and learner. A node becomes leader by completing
// phase 1 (prepare/promise) for a ballot; it then runs phase 2
// (accept/accepted) per log slot. Timeouts with per-node randomized backoff
// restore liveness after leader failure.
package consensus

import (
	"fmt"
	"math/rand"
	"sort"

	"hydro/internal/simnet"
)

// Ballot orders proposal rounds. Uniqueness comes from embedding the node
// index: ballot = round*len(peers) + nodeIndex.
type Ballot int64

type prepareMsg struct {
	Ballot Ballot
}

type promiseMsg struct {
	Ballot   Ballot
	Accepted map[int]acceptedVal // slot → highest accepted
}

type acceptMsg struct {
	Ballot Ballot
	Slot   int
	Value  entry
}

type acceptedMsg struct {
	Ballot Ballot
	Slot   int
}

type decideMsg struct {
	Slot  int
	Value entry
}

type nackMsg struct {
	Promised Ballot
}

type timeoutMsg struct {
	Seq uint64
}

type acceptedVal struct {
	Ballot Ballot
	Value  entry
}

// entry is a proposed command tagged with a unique proposal ID. A command
// may occupy more than one slot when its original proposer times out and
// re-proposes while the first accept quietly succeeds; the learner dedupes
// by ID at application time — the standard SMR at-most-once discipline.
type entry struct {
	ID    string
	Value any
}

// Node is one Paxos participant.
type Node struct {
	name  string
	index int
	peers []string // includes self
	net   *simnet.Network
	rng   *rand.Rand

	// Acceptor state.
	promised Ballot
	accepted map[int]acceptedVal

	// Proposer/leader state.
	ballot      Ballot
	leader      bool
	phase1Votes map[string]promiseMsg
	pending     []entry       // values waiting for a slot
	inFlight    map[int]entry // slot → value being accepted
	acceptVotes map[int]map[string]bool
	nextSlot    int
	proposeSeq  uint64
	timeoutSeq  uint64
	backoffBase simnet.Time

	// Learner state.
	log     map[int]entry
	decided int // count of decided slots

	// OnDecide, when set, is invoked once per distinct command in slot
	// order as the log becomes contiguous (state-machine application).
	// Duplicate slots for the same proposal ID are skipped.
	OnDecide func(slot int, value any)
	applied  int
	seenIDs  map[string]bool
}

// Group is a set of Paxos nodes sharing a network.
type Group struct {
	Nodes map[string]*Node
	names []string
	net   *simnet.Network
}

// NewGroup wires n Paxos nodes named "p0".."p{n-1}" into the network.
func NewGroup(net *simnet.Network, n int, seed int64) *Group {
	g := &Group{Nodes: map[string]*Node{}, net: net}
	for i := 0; i < n; i++ {
		g.names = append(g.names, fmt.Sprintf("p%d", i))
	}
	for i, name := range g.names {
		node := &Node{
			name:        name,
			index:       i,
			peers:       g.names,
			net:         net,
			rng:         rand.New(rand.NewSource(seed + int64(i))),
			accepted:    map[int]acceptedVal{},
			phase1Votes: map[string]promiseMsg{},
			inFlight:    map[int]entry{},
			acceptVotes: map[int]map[string]bool{},
			log:         map[int]entry{},
			seenIDs:     map[string]bool{},
			backoffBase: 2000,
		}
		g.Nodes[name] = node
		net.AddNode(name, node.handle)
	}
	return g
}

// Names returns the node names in index order.
func (g *Group) Names() []string { return append([]string(nil), g.names...) }

// Propose submits a value through the given node.
func (g *Group) Propose(node string, value any) {
	n := g.Nodes[node]
	n.proposeSeq++
	n.pending = append(n.pending, entry{ID: fmt.Sprintf("%s#%d", n.name, n.proposeSeq), Value: value})
	n.kick()
}

// Log returns a node's decided command sequence: the dense slot prefix with
// duplicate proposal IDs collapsed (at-most-once application order).
func (g *Group) Log(node string) []any {
	n := g.Nodes[node]
	var out []any
	seen := map[string]bool{}
	for slot := 0; ; slot++ {
		e, ok := n.log[slot]
		if !ok {
			return out
		}
		if seen[e.ID] {
			continue
		}
		seen[e.ID] = true
		out = append(out, e.Value)
	}
}

// DecidedCount returns the number of decided slots at a node.
func (g *Group) DecidedCount(node string) int { return g.Nodes[node].decided }

func (n *Node) majority() int { return len(n.peers)/2 + 1 }

func (n *Node) bcast(payload any) {
	for _, p := range n.peers {
		if p == n.name {
			// Deliver to self through the network too, keeping one code
			// path (self messages get latency like any other).
			n.net.Send(n.name, n.name, payload)
			continue
		}
		n.net.Send(n.name, p, payload)
	}
}

// kick starts (or continues) proposing if there is work.
func (n *Node) kick() {
	if len(n.pending) == 0 && len(n.inFlight) == 0 {
		return
	}
	if n.leader {
		n.pump()
		return
	}
	n.startPhase1()
}

func (n *Node) startPhase1() {
	// Choose a ballot above anything seen, tagged with our index.
	round := int64(n.promised)/int64(len(n.peers)) + 1
	n.ballot = Ballot(round*int64(len(n.peers)) + int64(n.index))
	n.phase1Votes = map[string]promiseMsg{}
	n.leader = false
	n.bcast(prepareMsg{Ballot: n.ballot})
	n.armTimeout()
}

func (n *Node) armTimeout() {
	n.timeoutSeq++
	// Randomized backoff avoids dueling leaders.
	delay := n.backoffBase + simnet.Time(n.rng.Int63n(int64(n.backoffBase)))
	n.net.After(n.name, delay, timeoutMsg{Seq: n.timeoutSeq})
}

// pump assigns pending values to slots and sends accepts (leader only).
func (n *Node) pump() {
	for len(n.pending) > 0 {
		v := n.pending[0]
		n.pending = n.pending[1:]
		for {
			if _, used := n.log[n.nextSlot]; used {
				n.nextSlot++
				continue
			}
			if _, used := n.inFlight[n.nextSlot]; used {
				n.nextSlot++
				continue
			}
			break
		}
		slot := n.nextSlot
		n.nextSlot++
		n.inFlight[slot] = v
		n.acceptVotes[slot] = map[string]bool{}
		n.bcast(acceptMsg{Ballot: n.ballot, Slot: slot, Value: v})
	}
	if len(n.inFlight) > 0 {
		n.armTimeout()
	}
}

func (n *Node) handle(now simnet.Time, msg simnet.Message) {
	switch m := msg.Payload.(type) {
	case prepareMsg:
		if m.Ballot > n.promised {
			n.promised = m.Ballot
			if m.Ballot != n.ballot {
				n.leader = false
			}
			acc := make(map[int]acceptedVal, len(n.accepted))
			for s, av := range n.accepted {
				acc[s] = av
			}
			n.net.Send(n.name, msg.From, promiseMsg{Ballot: m.Ballot, Accepted: acc})
		} else {
			n.net.Send(n.name, msg.From, nackMsg{Promised: n.promised})
		}
	case promiseMsg:
		if m.Ballot != n.ballot || n.leader {
			return
		}
		n.phase1Votes[msg.From] = m
		if len(n.phase1Votes) < n.majority() {
			return
		}
		n.leader = true
		// Re-propose the highest-ballot accepted value per slot.
		repropose := map[int]acceptedVal{}
		for _, pm := range n.phase1Votes {
			for slot, av := range pm.Accepted {
				if _, done := n.log[slot]; done {
					continue
				}
				if cur, ok := repropose[slot]; !ok || av.Ballot > cur.Ballot {
					repropose[slot] = av
				}
			}
		}
		slots := make([]int, 0, len(repropose))
		for s := range repropose {
			slots = append(slots, s)
		}
		sort.Ints(slots)
		for _, s := range slots {
			n.inFlight[s] = repropose[s].Value
			n.acceptVotes[s] = map[string]bool{}
			n.bcast(acceptMsg{Ballot: n.ballot, Slot: s, Value: repropose[s].Value})
			if s >= n.nextSlot {
				n.nextSlot = s + 1
			}
		}
		n.pump()
	case acceptMsg:
		if m.Ballot >= n.promised {
			n.promised = m.Ballot
			n.accepted[m.Slot] = acceptedVal{Ballot: m.Ballot, Value: m.Value}
			n.net.Send(n.name, msg.From, acceptedMsg{Ballot: m.Ballot, Slot: m.Slot})
		} else {
			n.net.Send(n.name, msg.From, nackMsg{Promised: n.promised})
		}
	case acceptedMsg:
		if m.Ballot != n.ballot || !n.leader {
			return
		}
		votes, ok := n.acceptVotes[m.Slot]
		if !ok {
			return
		}
		votes[msg.From] = true
		if len(votes) >= n.majority() {
			v := n.inFlight[m.Slot]
			delete(n.inFlight, m.Slot)
			delete(n.acceptVotes, m.Slot)
			n.bcast(decideMsg{Slot: m.Slot, Value: v})
		}
	case decideMsg:
		if _, done := n.log[m.Slot]; !done {
			n.log[m.Slot] = m.Value
			n.decided++
			// Drop any local re-proposal of the now-decided command.
			n.dropCommand(m.Value.ID)
			n.applyContiguous()
		}
	case nackMsg:
		if m.Promised > n.ballot {
			n.leader = false
			// A higher ballot exists; back off and retry via timeout.
		}
	case timeoutMsg:
		if m.Seq != n.timeoutSeq {
			return // stale timer
		}
		// Re-queue undecided in-flight values and retry leadership.
		var slots []int
		for s := range n.inFlight {
			slots = append(slots, s)
		}
		sort.Ints(slots)
		for _, s := range slots {
			n.pending = append(n.pending, n.inFlight[s])
			delete(n.inFlight, s)
			delete(n.acceptVotes, s)
		}
		if len(n.pending) > 0 {
			n.startPhase1()
		}
	}
}

func (n *Node) applyContiguous() {
	for {
		e, ok := n.log[n.applied]
		if !ok {
			return
		}
		if !n.seenIDs[e.ID] {
			n.seenIDs[e.ID] = true
			if n.OnDecide != nil {
				n.OnDecide(n.applied, e.Value)
			}
		}
		n.applied++
	}
}

// dropCommand removes a command from pending and in-flight proposals once
// it is known decided (prevents duplicate slots where we can).
func (n *Node) dropCommand(id string) {
	kept := n.pending[:0]
	for _, e := range n.pending {
		if e.ID != id {
			kept = append(kept, e)
		}
	}
	n.pending = kept
	for slot, e := range n.inFlight {
		if e.ID == id {
			delete(n.inFlight, slot)
			delete(n.acceptVotes, slot)
		}
	}
}
