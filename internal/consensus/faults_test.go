package consensus

import (
	"fmt"
	"testing"

	"hydro/internal/simnet"
)

// Fault-injection tests: Paxos safety and liveness under lossy and
// partitioned networks, beyond the clean-network tests in paxos_test.go.

func TestDecidesUnderMessageLoss(t *testing.T) {
	net := simnet.New(simnet.Config{Seed: 21, MinLatency: 10, MaxLatency: 100, DropRate: 0.15})
	g := NewGroup(net, 3, 21)
	for i := 0; i < 5; i++ {
		g.Propose("p0", fmt.Sprintf("v%d", i))
		net.Drain(40000) // timeouts retransmit through the loss
	}
	net.Drain(400000)
	log := agreeOnPrefix(t, g)
	seen := map[string]bool{}
	for _, v := range log {
		if seen[v.(string)] {
			t.Fatalf("duplicate decision for %v despite dedup: %v", v, log)
		}
		seen[v.(string)] = true
	}
	if len(seen) != 5 {
		t.Fatalf("decided %d distinct values, want 5: %v", len(seen), log)
	}
}

func TestSafetyAcrossPartitionAndHeal(t *testing.T) {
	net := newNet(22)
	g := NewGroup(net, 5, 22)
	g.Propose("p0", "before")
	net.Drain(100000)

	// Partition p0,p1 away from p2,p3,p4: only the majority side can make
	// progress.
	for _, a := range []string{"p0", "p1"} {
		for _, b := range []string{"p2", "p3", "p4"} {
			net.Partition(a, b)
		}
	}
	g.Propose("p0", "minority-side") // cannot decide yet
	g.Propose("p2", "majority-side") // can decide
	net.Drain(30000)
	if len(g.Log("p2")) < 2 {
		t.Fatalf("majority side stalled: %v", g.Log("p2"))
	}
	minorityLog := g.Log("p0")
	for _, v := range minorityLog {
		if v == "minority-side" {
			t.Fatal("minority partition decided a value")
		}
	}

	// Heal: the minority's proposal must eventually decide, and all logs
	// must agree (no divergent history from the partition era).
	for _, a := range []string{"p0", "p1"} {
		for _, b := range []string{"p2", "p3", "p4"} {
			net.Heal(a, b)
		}
	}
	net.Drain(800000)
	log := agreeOnPrefix(t, g)
	found := map[string]bool{}
	for _, v := range log {
		found[v.(string)] = true
	}
	for _, want := range []string{"before", "minority-side", "majority-side"} {
		if !found[want] {
			t.Fatalf("value %q lost across partition/heal: %v", want, log)
		}
	}
}

func TestRepeatedLeaderCrashes(t *testing.T) {
	net := newNet(23)
	g := NewGroup(net, 5, 23)
	// Crash each would-be leader in turn; with 5 nodes we can lose 2.
	g.Propose("p0", "a")
	net.Drain(100000)
	net.SetDown("p0", true)
	g.Propose("p1", "b")
	net.Drain(300000)
	net.SetDown("p1", true)
	g.Propose("p2", "c")
	net.Drain(600000)
	log := agreeOnPrefix(t, g)
	found := map[string]bool{}
	for _, v := range log {
		found[v.(string)] = true
	}
	for _, want := range []string{"a", "b", "c"} {
		if !found[want] {
			t.Fatalf("value %q lost across leader crashes: %v", want, log)
		}
	}
}
