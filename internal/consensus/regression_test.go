package consensus

import (
	"testing"

	"hydro/internal/simnet"
)

// Regression tests for two proposer-state races found in review: a
// timeout-requeued command double-driven after re-winning phase 1, and
// the same-ballot noop seal that could replace a value a quorum already
// accepted. Both are staged directly against node internals because the
// interleavings need exact message orderings the network fuzzers only
// rarely produce.

// TestPromiseFiltersRequeuedPendingAgainstQuorumSlots stages the phase-1
// race: a command this node was driving is re-queued into pending by the
// non-leader timeout path, then the node re-wins phase 1 and the promise
// quorum reports that same command accepted at a slot. The command must
// be re-driven ONLY at its quorum-reported slot — assigning the pending
// copy a second fresh slot under the same ballot would let one decide
// abandon the other copy's slot with no safe way to seal it.
func TestPromiseFiltersRequeuedPendingAgainstQuorumSlots(t *testing.T) {
	net := newNet(31)
	g := NewGroup(net, 3, 31)
	n := g.Nodes["p0"]

	e := entry{ID: "p0#1", Value: "v"}
	n.pending = []entry{e} // as left by the non-leader timeout re-queue
	n.ballot = Ballot(3)   // round 1, index 0
	n.leader = false
	n.phase1Votes = map[string]promiseMsg{}

	acc := map[int]acceptedVal{0: {Ballot: 1, Value: e}}
	n.handle(0, simnet.Message{From: "p1", To: "p0", Payload: promiseMsg{Ballot: n.ballot, Accepted: acc}})
	n.handle(0, simnet.Message{From: "p2", To: "p0", Payload: promiseMsg{Ballot: n.ballot, Accepted: acc}})

	if !n.leader {
		t.Fatal("quorum of promises did not elect the proposer")
	}
	if len(n.pending) != 0 {
		t.Fatalf("quorum-reported command left in pending: %v", n.pending)
	}
	slots := 0
	for s, cur := range n.inFlight {
		if cur.ID != e.ID {
			t.Fatalf("unexpected in-flight value at slot %d: %+v", s, cur)
		}
		slots++
	}
	if slots != 1 {
		t.Fatalf("command driven at %d slots, want exactly 1 (inFlight=%v)", slots, n.inFlight)
	}
	if cur, ok := n.inFlight[0]; !ok || cur.ID != e.ID {
		t.Fatalf("command not re-driven at its quorum-reported slot 0: %v", n.inFlight)
	}
}

// TestDecideElsewhereDoesNotReplaceInFlightValue stages the noop-seal
// hazard: the leader is driving command e at slot 0 when a decide for e
// arrives at a different slot (another leader re-proposed it there). The
// in-flight copy must keep driving slot 0 unchanged — replacing it with a
// noop at the SAME ballot would put two values under one (ballot, slot),
// and late accepted votes for e could then be credited to a noop no
// quorum accepted. The duplicate decide is harmless: the learner dedupes
// by proposal ID.
func TestDecideElsewhereDoesNotReplaceInFlightValue(t *testing.T) {
	net := newNet(32)
	g := NewGroup(net, 3, 32)
	n := g.Nodes["p0"]

	e := entry{ID: "p9#1", Value: "v"}
	n.ballot = Ballot(3)
	n.leader = true
	n.nextSlot = 1
	n.inFlight = map[int]entry{0: e}
	n.acceptVotes = map[int]map[string]bool{0: {}}

	n.handle(0, simnet.Message{From: "p1", To: "p0", Payload: decideMsg{Slot: 5, Value: e}})

	cur, ok := n.inFlight[0]
	if !ok {
		t.Fatal("in-flight slot 0 abandoned after duplicate decide")
	}
	if cur.ID != e.ID {
		t.Fatalf("in-flight value at slot 0 replaced: got %+v, want %+v", cur, e)
	}
	if _, isNoop := cur.Value.(noop); isNoop {
		t.Fatal("slot 0 noop-sealed at the same ballot")
	}

	// The slot still decides with the duplicate value once votes arrive.
	n.handle(0, simnet.Message{From: "p1", To: "p0", Payload: acceptedMsg{Ballot: n.ballot, Slot: 0, ID: e.ID}})
	n.handle(0, simnet.Message{From: "p2", To: "p0", Payload: acceptedMsg{Ballot: n.ballot, Slot: 0, ID: e.ID}})
	net.Drain(10000)
	if got, ok := n.log[0]; !ok || got.ID != e.ID {
		t.Fatalf("slot 0 did not decide with the duplicate value: %v", n.log)
	}
	// Dedup at read time: one copy across both slots.
	count := 0
	for _, v := range g.Log("p0") {
		if v == "v" {
			count++
		}
	}
	if count > 1 {
		t.Fatalf("duplicate command surfaced %d times in Log", count)
	}
}

// TestAcceptedVoteWithWrongIDNotCounted pins the vote-identity guard: an
// accepted vote naming a value the slot is no longer driving must not
// count toward the current value's quorum.
func TestAcceptedVoteWithWrongIDNotCounted(t *testing.T) {
	net := newNet(33)
	g := NewGroup(net, 3, 33)
	n := g.Nodes["p0"]

	e := entry{ID: "p0#1", Value: "v"}
	n.ballot = Ballot(3)
	n.leader = true
	n.nextSlot = 1
	n.inFlight = map[int]entry{0: e}
	n.acceptVotes = map[int]map[string]bool{0: {}}

	// Two stale votes for a different value: quorum-sized, must not decide.
	n.handle(0, simnet.Message{From: "p1", To: "p0", Payload: acceptedMsg{Ballot: n.ballot, Slot: 0, ID: "p0#stale"}})
	n.handle(0, simnet.Message{From: "p2", To: "p0", Payload: acceptedMsg{Ballot: n.ballot, Slot: 0, ID: "p0#stale"}})
	net.Drain(10000)
	if _, decided := n.log[0]; decided {
		t.Fatal("slot decided from votes for a different value")
	}
	if len(n.acceptVotes[0]) != 0 {
		t.Fatalf("stale votes credited: %v", n.acceptVotes[0])
	}

	// Matching votes still decide.
	n.handle(0, simnet.Message{From: "p1", To: "p0", Payload: acceptedMsg{Ballot: n.ballot, Slot: 0, ID: e.ID}})
	n.handle(0, simnet.Message{From: "p2", To: "p0", Payload: acceptedMsg{Ballot: n.ballot, Slot: 0, ID: e.ID}})
	net.Drain(10000)
	if got, ok := n.log[0]; !ok || got.ID != e.ID {
		t.Fatalf("matching votes did not decide the slot: %v", n.log)
	}
}
