package consensus

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"hydro/internal/simnet"
)

// runElectionScenario drives one seeded crash/recover schedule against a
// 3-node group and returns the longest decided log. The schedule is a
// pure function of the seed, so two invocations must produce identical
// decree sequences — the determinism the replicated shard coordinator
// leans on (same quorum + same seed ⇒ same leader history ⇒ same log).
func runElectionScenario(seed int64) *Group {
	net := simnet.New(simnet.Config{Seed: seed, MinLatency: 10, MaxLatency: 100})
	g := NewGroup(net, 3, seed)
	r := rand.New(rand.NewSource(seed ^ 0x7ead))
	names := g.Names()
	down := map[string]bool{}
	next := 0
	for round := 0; round < 8; round++ {
		// Propose a burst through a random live node.
		proposer := names[r.Intn(len(names))]
		for down[proposer] {
			proposer = names[r.Intn(len(names))]
		}
		for k := 0; k < 1+r.Intn(3); k++ {
			g.Propose(proposer, fmt.Sprintf("cmd%d", next))
			next++
		}
		// Crash at most one node at a time (keep a quorum alive), recover
		// it a couple of rounds later.
		switch r.Intn(3) {
		case 0:
			if len(down) == 0 {
				victim := names[r.Intn(len(names))]
				if victim != proposer {
					net.SetDown(victim, true)
					down[victim] = true
				}
			}
		case 1:
			for name := range down {
				net.SetDown(name, false)
				delete(down, name)
				// A recovered node's timers were discarded; a fresh proposal
				// would re-kick it, but catch-up is the deterministic path.
				g.Nodes[name].RequestLearn(names[(g.Nodes[name].index+1)%len(names)])
			}
		}
		net.Drain(20000)
	}
	for name := range down {
		net.SetDown(name, false)
		g.Nodes[name].RequestLearn(names[0])
	}
	net.Drain(50000)
	return g
}

// TestElectionDeterminism50Seeds runs each seeded crash/recover schedule
// twice and requires byte-identical decided logs — and, within a run,
// prefix-consistent logs across all nodes. Run under -race by
// `make test-failover`.
func TestElectionDeterminism50Seeds(t *testing.T) {
	if testing.Short() {
		t.Skip("50-seed sweep")
	}
	for seed := int64(0); seed < 50; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			first := agreeOnPrefix(t, runElectionScenario(seed))
			if len(first) == 0 {
				t.Fatalf("seed %d decided nothing", seed)
			}
			second := agreeOnPrefix(t, runElectionScenario(seed))
			if !reflect.DeepEqual(first, second) {
				t.Fatalf("seed %d: non-deterministic log:\nrun1: %v\nrun2: %v", seed, first, second)
			}
		})
	}
}
