package datalog

// This file is the DRed (delete-and-rederive) maintenance path for
// recursive monotone components: the classic three-phase algorithm that
// makes deletions as cheap as inserts where the counting algebra is
// unsound (cyclic self-support under recursion).
//
//  1. Over-delete: propagate the batch's deletions through the compiled
//     delta-first plans to a fixpoint, tentatively deleting every head
//     tuple with at least one derivation that used a deleted tuple. The
//     non-delta body positions must read the PRE-batch view — a derivation
//     both of whose body tuples were deleted is only found if the other
//     one is still visible — so the plans run with an augmentation map
//     (runAug) holding the batch's removed inputs plus the tuples
//     over-deleted so far: tuples only ever move from the relation into
//     the augmentation, keeping the joined view constant without mutating
//     relations shared with concurrently evaluating components.
//  2. Re-derive: a tentatively deleted tuple survives if it has any
//     derivation from tuples still alive. Each rule's support plan (the
//     body compiled with the head variables pre-bound, see plan.go) makes
//     that a selective existence query; reinstated tuples can support
//     other candidates, so passes repeat until none is reinstated.
//  3. Insert: the batch's additions propagate with the ordinary semi-naive
//     insert path against the post-deletion state.
//
// The emitted delta is exact and net: a tuple over-deleted but re-derived
// (or re-inserted by phase 3) produces no record, so downstream counting
// components keep their one-signed-change-per-tuple precondition.

// applyDRed folds a batch with deletions into a recursive monotone
// component, reading input changes from in and recording net realized head
// changes into out. It returns the number of realized set-level changes.
func (inc *Incremental) applyDRed(c *incComponent, in, out *Delta) int {
	ensureHeadsPlanned(inc.db, c.plans)

	// Phase 1: over-delete to fixpoint. aug is the "still visible" overlay:
	// removed base inputs plus over-deleted heads, growing as the phase
	// discovers more.
	aug := map[string][]Tuple{}
	for _, input := range c.inputs {
		if rm := in.removed[input]; len(rm) > 0 {
			aug[input] = append([]Tuple(nil), rm...)
		}
	}
	overDel := map[string]*tupleSet{}
	deleted := map[string][]Tuple{} // discovery order per head, for determinism
	for _, h := range c.heads {
		overDel[h] = newTupleSet()
	}
	driveRounds(inc.db, c.plans,
		deltaRelations(c.inputs, func(pred string) []Tuple { return in.removed[pred] }),
		func(pl *rulePlan, i int, dr *Relation, collect func(Tuple)) {
			pl.runAug(inc.db, i, dr, aug, nil, collect)
		},
		func(h string, rel *Relation, t Tuple) bool {
			if overDel[h].has(t) || !rel.Contains(t) {
				return false // already tentative, or never part of the fixpoint
			}
			rel.Delete(t)
			overDel[h].add(t)
			deleted[h] = append(deleted[h], t)
			aug[h] = append(aug[h], t)
			return true
		})

	// Phase 2: re-derive survivors from live support. One support query per
	// candidate establishes the directly re-derivable set; after that, a
	// candidate can only become derivable through a tuple reinstated later,
	// so reinstatements propagate semi-naively — each one drives the
	// delta-first plans once, and emitted heads that are still-dead
	// candidates are themselves reinstated. Near-linear in the cascade,
	// with no full-candidate rescans.
	reinstated := map[string]*tupleSet{}
	frontier := map[string]*Relation{}
	for _, h := range c.heads {
		reinstated[h] = newTupleSet()
		rel := inc.db.Get(h)
		for _, t := range deleted[h] {
			if inc.rederivable(c, h, t) {
				rel.Insert(t)
				reinstated[h].add(t)
				fr := frontier[h]
				if fr == nil {
					fr = NewRelation(h, rel.Arity)
					frontier[h] = fr
				}
				fr.appendRaw(t)
			}
		}
	}
	driveRounds(inc.db, c.plans, frontier,
		func(pl *rulePlan, i int, dr *Relation, collect func(Tuple)) {
			pl.run(inc.db, i, dr, nil, collect)
		},
		func(h string, rel *Relation, t Tuple) bool {
			if !overDel[h].has(t) || reinstated[h].has(t) {
				return false // live already, or not a dead candidate
			}
			rel.Insert(t)
			reinstated[h].add(t)
			return true
		})

	// Phase 3: propagate the batch's inserts, recording locally so the
	// final emission can net them against the deletions.
	inserted := map[string][]Tuple{}
	insertedSet := map[string]*tupleSet{}
	inc.propagateInserts(c, in, func(pred string, t Tuple) {
		s := insertedSet[pred]
		if s == nil {
			s = newTupleSet()
			insertedSet[pred] = s
		}
		s.add(t)
		inserted[pred] = append(inserted[pred], t)
	})

	// Net emission: a tuple deleted and not re-derived nor re-inserted is a
	// realized deletion; an inserted tuple that does not merely undo a
	// tentative deletion is a realized insertion.
	changes := 0
	for _, h := range c.heads {
		ins := insertedSet[h]
		for _, t := range deleted[h] {
			if reinstated[h].has(t) || (ins != nil && ins.has(t)) {
				continue
			}
			out.Delete(h, t)
			changes++
		}
		for _, t := range inserted[h] {
			if overDel[h].has(t) && !reinstated[h].has(t) {
				continue // present before the batch and present after: net zero
			}
			out.Insert(h, t)
			changes++
		}
	}
	return changes
}

// rederivable reports whether some rule for head pred h still derives t
// from the current database (over-deleted tuples absent, reinstated ones
// present): it binds t onto each rule's support plan and asks for any
// surviving body instantiation.
func (inc *Incremental) rederivable(c *incComponent, h string, t Tuple) bool {
	for _, pl := range c.plans {
		r := pl.r
		if r.Head.Pred != h || pl.support == nil || len(r.Head.Args) != len(t) {
			continue
		}
		// Bind the head: constants must match, repeated variables must agree.
		preset := make([]any, len(pl.supportVars))
		bound := map[string]any{}
		ok := true
		for j, a := range r.Head.Args {
			if !a.IsVar() {
				if a.Const != t[j] {
					ok = false
					break
				}
				continue
			}
			if v, seen := bound[a.Var]; seen {
				if v != t[j] {
					ok = false
					break
				}
				continue
			}
			bound[a.Var] = t[j]
		}
		if !ok {
			continue
		}
		for k, v := range pl.supportVars {
			preset[k] = bound[v]
		}
		found := false
		pl.support.runAugUntil(inc.db, -1, nil, nil, preset, func(Tuple) bool {
			found = true
			return false // existence established: abandon the walk
		})
		if found {
			return true
		}
	}
	return false
}
