package datalog

// This file is the DRed (delete-and-rederive) maintenance path for
// recursive monotone components: the classic three-phase algorithm that
// makes deletions as cheap as inserts where the counting algebra is
// unsound (cyclic self-support under recursion).
//
//  1. Over-delete: propagate the batch's deletions through the compiled
//     delta-first plans to a fixpoint, tentatively deleting every head
//     tuple with at least one derivation that used a deleted tuple. The
//     non-delta body positions must read the PRE-batch view — a derivation
//     both of whose body tuples were deleted is only found if the other
//     one is still visible — so the plans run against an augmentation
//     overlay (augOverlay) holding the batch's removed inputs plus the
//     tuples over-deleted so far: tuples only ever move from the relation
//     into the overlay, keeping the joined view constant without mutating
//     relations shared with concurrently evaluating components. The
//     overlay is indexed per probe-column set (the same colIndex machinery
//     relations use), so probing it is O(1) per join step — the previous
//     linear scan made the phase quadratic in the cascade size.
//  2. Re-derive: a tentatively deleted tuple survives if it has any
//     derivation from tuples still alive. Candidates queue in discovery
//     order, which is support-dependency order — a tuple over-deleted in
//     round r can only be supported by tuples from rounds < r — so one
//     ordered pass reinstates every directly-supported candidate with its
//     reinstated predecessors already visible, and each rule's support
//     plan (the body compiled with the head variables pre-bound, see
//     plan.go) makes the check a selective existence query. Cross-rule
//     stragglers (support arriving only through a tuple reinstated later
//     in the queue) then propagate semi-naively — each reinstatement
//     drives the delta-first plans once — so no pass ever restarts:
//     both phases stay near-linear in the cascade.
//  3. Insert: the batch's additions propagate with the ordinary semi-naive
//     insert path against the post-deletion state.
//
// Phase 1 and the two propagation fixpoints of phase 2/3 shard their large
// per-round deltas across the partition budget (driveDelta), with
// emissions stitched back into serial order before the serial accept steps
// mutate relations and the overlay.
//
// The emitted delta is exact and net: a tuple over-deleted but re-derived
// (or re-inserted by phase 3) produces no record, so downstream counting
// components keep their one-signed-change-per-tuple precondition.

// headTuple is one over-deleted candidate in discovery order.
type headTuple struct {
	h string
	t Tuple
}

// applyDRed folds a batch with deletions into a recursive monotone
// component, reading input changes from in and recording net realized head
// changes into out. parts is the intra-component partition budget for the
// phase fixpoints. It returns the number of realized set-level changes.
func (inc *Incremental) applyDRed(c *incComponent, in, out *Delta, parts int) int {
	ensureHeadsPlanned(inc.db, c.plans)

	// Phase 1: over-delete to fixpoint. aug is the "still visible" overlay:
	// removed base inputs plus over-deleted heads, growing as the phase
	// discovers more, indexed up front for every probe set the plans use.
	aug := newAugOverlay(c.plans)
	for _, input := range c.inputs {
		for _, t := range in.removed[input] {
			aug.add(input, t)
		}
	}
	overDel := map[string]*tupleSet{}
	var deletedSeq []headTuple // global discovery order = support-dependency order
	for _, h := range c.heads {
		overDel[h] = newTupleSet()
	}
	driveRounds(inc.db, c.plans,
		deltaRelations(c.inputs, func(pred string) []Tuple { return in.removed[pred] }),
		aug, parts,
		func(h string, rel *Relation, t Tuple) bool {
			// Delete doubles as the dedup check: a tuple already tentative
			// (or never part of the fixpoint) is absent from the relation,
			// since nothing re-inserts heads during this phase.
			if !rel.Delete(t) {
				return false
			}
			overDel[h].add(t)
			deletedSeq = append(deletedSeq, headTuple{h: h, t: t})
			aug.add(h, t)
			return true
		})

	// Phase 2: re-derive survivors from live support, in dependency order.
	// Walking deletedSeq means every candidate's support check already sees
	// the candidates reinstated before it — including other heads of the
	// same component — so direct support resolves in one ordered pass.
	// After that, a candidate can only become derivable through a tuple
	// reinstated later in the queue, so reinstatements propagate
	// semi-naively: each one drives the delta-first plans once, and emitted
	// heads that are still-dead candidates are themselves reinstated.
	// Near-linear in the cascade, with no full-candidate rescans.
	reinstated := map[string]*tupleSet{}
	frontier := map[string]*Relation{}
	for _, h := range c.heads {
		reinstated[h] = newTupleSet()
	}
	checker := newSupportChecker(inc.db, c)
	for _, ht := range deletedSeq {
		if checker.rederivable(ht.h, ht.t) {
			rel := inc.db.Get(ht.h)
			rel.Insert(ht.t)
			reinstated[ht.h].add(ht.t)
			fr := frontier[ht.h]
			if fr == nil {
				fr = NewRelation(ht.h, rel.Arity)
				frontier[ht.h] = fr
			}
			fr.appendRaw(ht.t)
		}
	}
	driveRounds(inc.db, c.plans, frontier, nil, parts,
		func(h string, rel *Relation, t Tuple) bool {
			if !overDel[h].has(t) || !reinstated[h].addNew(t) {
				return false // live already, or not a dead candidate
			}
			rel.Insert(t)
			return true
		})

	// Phase 3: propagate the batch's inserts, recording locally so the
	// final emission can net them against the deletions.
	inserted := map[string][]Tuple{}
	insertedSet := map[string]*tupleSet{}
	inc.propagateInserts(c, in, parts, func(pred string, t Tuple) {
		s := insertedSet[pred]
		if s == nil {
			s = newTupleSet()
			insertedSet[pred] = s
		}
		s.add(t)
		inserted[pred] = append(inserted[pred], t)
	})

	// Net emission: a tuple deleted and not re-derived nor re-inserted is a
	// realized deletion; an inserted tuple that does not merely undo a
	// tentative deletion is a realized insertion. Deletions replay the
	// discovery queue (per-predicate order inside the output delta is the
	// per-head discovery order, as before).
	changes := 0
	for _, ht := range deletedSeq {
		ins := insertedSet[ht.h]
		if reinstated[ht.h].has(ht.t) || (ins != nil && ins.has(ht.t)) {
			continue
		}
		out.Delete(ht.h, ht.t)
		changes++
	}
	for _, h := range c.heads {
		for _, t := range inserted[h] {
			if overDel[h].has(t) && !reinstated[h].has(t) {
				continue // present before the batch and present after: net zero
			}
			out.Insert(h, t)
			changes++
		}
	}
	return changes
}

// supportChecker answers "does any derivation of this over-deleted tuple
// survive in the current database?" for the candidates of one phase-2
// pass. Each support plan gets one reusable executor (rearmed per
// candidate), and candidate binding runs off the metadata Prepare
// precomputed — no per-candidate maps, closures or scratch allocation,
// which matters when a cascade queues tens of thousands of candidates.
type supportChecker struct {
	plans   []*rulePlan
	execs   []*planExec
	presets [][]any
	found   bool
}

func newSupportChecker(db *Database, c *incComponent) *supportChecker {
	sc := &supportChecker{plans: c.plans}
	sc.execs = make([]*planExec, len(c.plans))
	sc.presets = make([][]any, len(c.plans))
	stop := func(Tuple) bool {
		sc.found = true
		return false // existence established: abandon the walk
	}
	for i, pl := range c.plans {
		if pl.support == nil {
			continue
		}
		sc.execs[i] = pl.support.newExec(db, pl.support.orders[0], -1, nil, nil, nil, stop)
		sc.presets[i] = make([]any, len(pl.supportVars))
	}
	return sc
}

// rederivable binds t onto each of h's support plans and asks for any
// surviving body instantiation (over-deleted tuples absent, reinstated
// ones present).
func (sc *supportChecker) rederivable(h string, t Tuple) bool {
	for i, pl := range sc.plans {
		r := pl.r
		if r.Head.Pred != h || sc.execs[i] == nil || len(r.Head.Args) != len(t) {
			continue
		}
		// Bind the head: constants must match, repeated variables must agree.
		ok := true
		for _, j := range pl.supportConsts {
			if r.Head.Args[j].Const != t[j] {
				ok = false
				break
			}
		}
		for _, ch := range pl.supportChecks {
			if !ok || t[ch[0]] != t[ch[1]] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		preset := sc.presets[i]
		for k, j := range pl.supportBindPos {
			preset[k] = t[j]
		}
		e := sc.execs[i]
		e.rerun(preset)
		sc.found = false
		if !e.preFiltersPass() {
			continue
		}
		e.walk(0)
		if sc.found {
			return true
		}
	}
	return false
}
