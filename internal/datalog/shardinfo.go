package datalog

// This file exports the compile-time metadata a distributed deployment
// needs to shard a program across replicas (internal/shard): the
// evaluation-component structure in topological order, per-predicate
// partition-column hints derived from the compiled plans' partition keys
// (the same keys the intra-process partitioned drives shard on, see
// partition.go), the tuple→shard hash, and the filter comparison
// semantics — so a remote evaluator derives byte-identical results
// without reaching into unexported plan state.

// Component describes one evaluation component (an SCC-refined stratum,
// see plan.go) for external schedulers. Components returns them in
// topological order: a component only reads head predicates of earlier
// components (plus base relations).
type Component struct {
	// Rules holds the component's rules in program order.
	Rules []Rule
	// Heads lists the distinct head predicates, first-appearance order.
	Heads []string
	// Inputs lists the distinct non-head body predicates (including
	// negated ones), first-appearance order.
	Inputs []string
	// Recursive reports a positive body literal reading a component head.
	Recursive bool
	// NonMono reports negation or aggregation anywhere in the component.
	NonMono bool
}

// Components compiles the program (if needed) and returns its evaluation
// components in topological order.
func (p *Program) Components() ([]Component, error) {
	if err := p.Prepare(); err != nil {
		return nil, err
	}
	var out []Component
	for _, plans := range p.prep.strata {
		c := Component{}
		headSet := map[string]bool{}
		inputSet := map[string]bool{}
		for _, pl := range plans {
			c.Rules = append(c.Rules, pl.r)
			if !headSet[pl.r.Head.Pred] {
				headSet[pl.r.Head.Pred] = true
				c.Heads = append(c.Heads, pl.r.Head.Pred)
			}
			if pl.r.Agg != "" {
				c.NonMono = true
			}
		}
		for _, pl := range plans {
			for _, l := range pl.r.Body {
				if l.Negated {
					c.NonMono = true
				}
				if headSet[l.Pred] {
					if !l.Negated {
						c.Recursive = true
					}
					continue
				}
				if !inputSet[l.Pred] {
					inputSet[l.Pred] = true
					c.Inputs = append(c.Inputs, l.Pred)
				}
			}
		}
		out = append(out, c)
	}
	return out, nil
}

// PartitionHints returns, per predicate, the partition column the compiled
// plans vote for: each (rule, delta position) pair contributes its
// rulePlan.partCol — the first bound join column of the driven literal —
// as a vote for the driven predicate, and the column with the most votes
// wins (ties break toward the smaller column). Predicates no plan ever
// drives through a join column are absent from the map.
func (p *Program) PartitionHints() (map[string]int, error) {
	if err := p.Prepare(); err != nil {
		return nil, err
	}
	votes := map[string]map[int]int{}
	for _, plans := range p.prep.strata {
		for _, pl := range plans {
			for i, l := range pl.r.Body {
				if l.Negated {
					continue
				}
				c := pl.partCol[i]
				if c < 0 {
					continue
				}
				v := votes[l.Pred]
				if v == nil {
					v = map[int]int{}
					votes[l.Pred] = v
				}
				v[c]++
			}
		}
	}
	hints := make(map[string]int, len(votes))
	for pred, v := range votes {
		best, bestN := -1, -1
		for col, n := range v {
			if n > bestN || (n == bestN && col < best) {
				best, bestN = col, n
			}
		}
		hints[pred] = best
	}
	return hints, nil
}

// ShardOf maps a tuple to a shard in [0, n) by hashing column col (or the
// whole tuple when col is out of range) — the same hash the intra-process
// partitioned drives use, so intra- and inter-node placement agree.
func ShardOf(t Tuple, col, n int) int {
	if n <= 1 {
		return 0
	}
	var h uint64
	if col >= 0 && col < len(t) {
		h = hashValue(fnvOffset, t[col])
	} else {
		h = hashTuple(t)
	}
	return int(h % uint64(n))
}

// ShardOfValue maps a single partition-key value to a shard in [0, n).
// ShardOf(t, col, n) == ShardOfValue(t[col], n) for in-range col.
func ShardOfValue(v any, n int) int {
	if n <= 1 {
		return 0
	}
	return int(hashValue(fnvOffset, v) % uint64(n))
}

// Compare applies a filter comparison with the engine's coercion rules
// (numeric across int/int64/uint64/float64, string ordering otherwise) —
// exported so external evaluators reproduce filter semantics exactly.
func Compare(op CmpOp, l, r any) bool { return compareValues(op, l, r) }
