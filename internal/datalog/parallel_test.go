package datalog

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// fingerprint renders a database byte-for-byte: every relation in name
// order, every live tuple in insertion (slot) order. Two databases with the
// same fingerprint are indistinguishable to any observer, including ones
// sensitive to enumeration order.
func fingerprint(db *Database) string {
	var b strings.Builder
	for _, name := range db.Names() {
		fmt.Fprintf(&b, "%s:", name)
		db.Get(name).scan(func(t Tuple) bool {
			fmt.Fprintf(&b, "%v;", t)
			return true
		})
		b.WriteByte('\n')
	}
	return b.String()
}

// TestComponentLevels pins the level partition: independent components
// share a level, dependent ones are strictly deeper.
func TestComponentLevels(t *testing.T) {
	p, err := NewProgram(
		// Two independent closures...
		Rule{Head: Atom{Pred: "p", Args: []Term{V("x"), V("y")}}, Body: []Literal{{Atom: Atom{Pred: "e1", Args: []Term{V("x"), V("y")}}}}},
		Rule{Head: Atom{Pred: "q", Args: []Term{V("x"), V("y")}}, Body: []Literal{{Atom: Atom{Pred: "e2", Args: []Term{V("x"), V("y")}}}}},
		// ...and a join over both, which must wait for both.
		Rule{Head: Atom{Pred: "r", Args: []Term{V("x"), V("z")}}, Body: []Literal{
			{Atom: Atom{Pred: "p", Args: []Term{V("x"), V("y")}}},
			{Atom: Atom{Pred: "q", Args: []Term{V("y"), V("z")}}},
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.prep.levels); got != 2 {
		t.Fatalf("levels = %d, want 2 (%v)", got, p.prep.levels)
	}
	if got := len(p.prep.levels[0]); got != 2 {
		t.Fatalf("level 0 width = %d, want 2 (independent components)", got)
	}
	if got := len(p.prep.levels[1]); got != 1 {
		t.Fatalf("level 1 width = %d, want 1 (the join)", got)
	}
	if p.prep.maxWidth != 2 {
		t.Fatalf("maxWidth = %d, want 2", p.prep.maxWidth)
	}
}

// TestParallelEvalDeterminism is the regression gate for the parallel
// component scheduler: across 50 random programs and databases, parallel
// evaluation must produce byte-identical relation contents (including
// insertion order) to the serial mode. CI runs this under -race, so it
// doubles as the scheduler's data-race probe.
// forceParallel drops the fan-out size cutoffs for the duration of a test
// so the randomized small workloads genuinely take the concurrent path.
func forceParallel(t *testing.T) {
	t.Helper()
	oldIn, oldDelta := parallelMinInputTuples, parallelMinDeltaTuples
	parallelMinInputTuples, parallelMinDeltaTuples = 0, 0
	t.Cleanup(func() { parallelMinInputTuples, parallelMinDeltaTuples = oldIn, oldDelta })
}

func TestParallelEvalDeterminism(t *testing.T) {
	forceParallel(t)
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		rules := randRules(r)
		db := randEDB(r)

		serial, err := NewProgram(rules...)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		serial.SetParallelism(1)
		par, err := NewProgram(rules...)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		par.SetParallelism(8)

		dbS, dbP := db.Clone(), db.Clone()
		nS, errS := serial.Eval(dbS)
		nP, errP := par.Eval(dbP)
		if (errS == nil) != (errP == nil) {
			t.Fatalf("seed %d: error divergence: serial=%v parallel=%v", seed, errS, errP)
		}
		if nS != nP {
			t.Fatalf("seed %d: derived counts diverge: serial=%d parallel=%d", seed, nS, nP)
		}
		if fS, fP := fingerprint(dbS), fingerprint(dbP); fS != fP {
			t.Fatalf("seed %d: parallel fixpoint differs from serial\nserial:\n%s\nparallel:\n%s", seed, fS, fP)
		}
	}
}

// TestParallelIncrementalDeterminism: the same 50-seed gate for parallel
// Incremental.Apply — identical tick sequences of interleaved inserts and
// deletes through a serial and a parallel evaluator must realize identical
// change counts and byte-identical databases after every tick.
func TestParallelIncrementalDeterminism(t *testing.T) {
	forceParallel(t)
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		rules := randRules(r)
		edb := randEDB(r)

		serialP, err := NewProgram(rules...)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		serialP.SetParallelism(1)
		parP, err := NewProgram(rules...)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		parP.SetParallelism(8)

		serial, err := NewIncremental(serialP, edb.Clone())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		par, err := NewIncremental(parP, edb.Clone())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for tick := 0; tick < 6; tick++ {
			dS, dP := NewDelta(), NewDelta()
			for op := 0; op < 1+r.Intn(5); op++ {
				pred := edbPreds[r.Intn(len(edbPreds))]
				if r.Intn(2) == 0 {
					tup := randEDBTuple(r, pred)
					if edb.Get(pred).Insert(tup) {
						serial.DB().Get(pred).Insert(tup)
						par.DB().Get(pred).Insert(tup)
						dS.Insert(pred, tup)
						dP.Insert(pred, tup)
					}
				} else if existing := edb.Get(pred).Tuples(); len(existing) > 0 {
					tup := existing[r.Intn(len(existing))]
					edb.Get(pred).Delete(tup)
					serial.DB().Get(pred).Delete(tup)
					par.DB().Get(pred).Delete(tup)
					dS.Delete(pred, tup)
					dP.Delete(pred, tup)
				}
			}
			nS, errS := serial.Apply(dS)
			nP, errP := par.Apply(dP)
			if (errS == nil) != (errP == nil) {
				t.Fatalf("seed %d tick %d: error divergence: serial=%v parallel=%v", seed, tick, errS, errP)
			}
			if errS != nil {
				break
			}
			if nS != nP {
				t.Fatalf("seed %d tick %d: realized changes diverge: serial=%d parallel=%d", seed, tick, nS, nP)
			}
			// The extended deltas must agree too: downstream consumers (the
			// transducer, chained components) see them.
			if fS, fP := fmt.Sprint(dS.preds, dS.added, dS.removed), fmt.Sprint(dP.preds, dP.added, dP.removed); fS != fP {
				t.Fatalf("seed %d tick %d: extended deltas diverge\nserial:   %s\nparallel: %s", seed, tick, fS, fP)
			}
			if fS, fP := fingerprint(serial.DB()), fingerprint(par.DB()); fS != fP {
				t.Fatalf("seed %d tick %d: parallel fixpoint differs from serial\nserial:\n%s\nparallel:\n%s", seed, tick, fS, fP)
			}
		}
	}
}
