package datalog

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustProgram(t testing.TB, rules ...Rule) *Program {
	t.Helper()
	p, err := NewProgram(rules...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func edgeDB(edges ...[2]string) *Database {
	db := NewDatabase()
	e := db.Ensure("edge", 2)
	for _, pair := range edges {
		e.Insert(Tuple{pair[0], pair[1]})
	}
	return db
}

// tc returns the standard transitive-closure program — the paper's `trace`
// query (Fig 3, lines 16-18).
func tc() []Rule {
	return []Rule{
		{
			Head: Atom{Pred: "path", Args: []Term{V("x"), V("y")}},
			Body: []Literal{{Atom: Atom{Pred: "edge", Args: []Term{V("x"), V("y")}}}},
		},
		{
			Head: Atom{Pred: "path", Args: []Term{V("x"), V("z")}},
			Body: []Literal{
				{Atom: Atom{Pred: "path", Args: []Term{V("x"), V("y")}}},
				{Atom: Atom{Pred: "edge", Args: []Term{V("y"), V("z")}}},
			},
		},
	}
}

func TestTransitiveClosure(t *testing.T) {
	db := edgeDB([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "d"})
	p := mustProgram(t, tc()...)
	if _, err := p.Eval(db); err != nil {
		t.Fatal(err)
	}
	path := db.Get("path")
	if path.Len() != 6 {
		t.Fatalf("path has %d tuples, want 6: %v", path.Len(), path.Tuples())
	}
	if !path.Contains(Tuple{"a", "d"}) {
		t.Fatal("missing transitive fact a->d")
	}
	if path.Contains(Tuple{"d", "a"}) {
		t.Fatal("derived a non-fact")
	}
}

func TestCyclicClosureTerminates(t *testing.T) {
	db := edgeDB([2]string{"a", "b"}, [2]string{"b", "a"})
	p := mustProgram(t, tc()...)
	if _, err := p.Eval(db); err != nil {
		t.Fatal(err)
	}
	if db.Get("path").Len() != 4 {
		t.Fatalf("cyclic closure = %v", db.Get("path").Tuples())
	}
}

func TestSemiNaiveMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nodes := []string{"a", "b", "c", "d", "e"}
		var edges [][2]string
		for i := 0; i < 8; i++ {
			edges = append(edges, [2]string{nodes[r.Intn(5)], nodes[r.Intn(5)]})
		}
		db1, db2 := edgeDB(edges...), edgeDB(edges...)
		p := mustProgram(t, tc()...)
		if _, err := p.Eval(db1); err != nil {
			return false
		}
		if _, err := p.EvalNaive(db2); err != nil {
			return false
		}
		t1, t2 := db1.Get("path").Tuples(), db2.Get("path").Tuples()
		if len(t1) != len(t2) {
			return false
		}
		for i := range t1 {
			if !t1[i].Equal(t2[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStratifiedNegation(t *testing.T) {
	// unreached(x) :- node(x), !path("a", x).
	rules := append(tc(),
		Rule{
			Head: Atom{Pred: "unreached", Args: []Term{V("x")}},
			Body: []Literal{
				{Atom: Atom{Pred: "node", Args: []Term{V("x")}}},
				{Atom: Atom{Pred: "path", Args: []Term{C("a"), V("x")}}, Negated: true},
			},
		})
	db := edgeDB([2]string{"a", "b"}, [2]string{"c", "d"})
	n := db.Ensure("node", 1)
	for _, x := range []string{"a", "b", "c", "d"} {
		n.Insert(Tuple{x})
	}
	p := mustProgram(t, rules...)
	if _, err := p.Eval(db); err != nil {
		t.Fatal(err)
	}
	un := db.Get("unreached")
	for _, want := range []string{"a", "c", "d"} {
		if !un.Contains(Tuple{want}) {
			t.Fatalf("unreached should contain %s: %v", want, un.Tuples())
		}
	}
	if un.Contains(Tuple{"b"}) {
		t.Fatal("b is reachable from a, must not be derived")
	}
}

func TestUnstratifiableRejected(t *testing.T) {
	// p :- !q. q :- !p.  — classic non-stratifiable program.
	rules := []Rule{
		{
			Head: Atom{Pred: "p", Args: []Term{V("x")}},
			Body: []Literal{
				{Atom: Atom{Pred: "base", Args: []Term{V("x")}}},
				{Atom: Atom{Pred: "q", Args: []Term{V("x")}}, Negated: true},
			},
		},
		{
			Head: Atom{Pred: "q", Args: []Term{V("x")}},
			Body: []Literal{
				{Atom: Atom{Pred: "base", Args: []Term{V("x")}}},
				{Atom: Atom{Pred: "p", Args: []Term{V("x")}}, Negated: true},
			},
		},
	}
	if _, err := NewProgram(rules...); err == nil {
		t.Fatal("unstratifiable program accepted")
	}
}

func TestValidateRangeRestriction(t *testing.T) {
	bad := Rule{
		Head: Atom{Pred: "h", Args: []Term{V("x"), V("y")}},
		Body: []Literal{{Atom: Atom{Pred: "b", Args: []Term{V("x")}}}},
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("unbound head variable accepted")
	}
	badNeg := Rule{
		Head: Atom{Pred: "h", Args: []Term{V("x")}},
		Body: []Literal{
			{Atom: Atom{Pred: "b", Args: []Term{V("x")}}},
			{Atom: Atom{Pred: "c", Args: []Term{V("z")}}, Negated: true},
		},
	}
	if err := badNeg.Validate(); err == nil {
		t.Fatal("negation-only variable accepted")
	}
}

func TestFilters(t *testing.T) {
	db := NewDatabase()
	n := db.Ensure("num", 1)
	for i := 0; i < 10; i++ {
		n.Insert(Tuple{int64(i)})
	}
	p := mustProgram(t, Rule{
		Head:    Atom{Pred: "small", Args: []Term{V("x")}},
		Body:    []Literal{{Atom: Atom{Pred: "num", Args: []Term{V("x")}}}},
		Filters: []Filter{{Op: OpLt, L: V("x"), R: C(int64(3))}},
	})
	if _, err := p.Eval(db); err != nil {
		t.Fatal(err)
	}
	if db.Get("small").Len() != 3 {
		t.Fatalf("small = %v", db.Get("small").Tuples())
	}
}

func TestJoinWithConstants(t *testing.T) {
	db := NewDatabase()
	likes := db.Ensure("likes", 2)
	likes.Insert(Tuple{"ann", "go"})
	likes.Insert(Tuple{"bob", "go"})
	likes.Insert(Tuple{"ann", "rust"})
	p := mustProgram(t, Rule{
		Head: Atom{Pred: "go_fans", Args: []Term{V("p")}},
		Body: []Literal{{Atom: Atom{Pred: "likes", Args: []Term{V("p"), C("go")}}}},
	})
	if _, err := p.Eval(db); err != nil {
		t.Fatal(err)
	}
	if db.Get("go_fans").Len() != 2 {
		t.Fatalf("go_fans = %v", db.Get("go_fans").Tuples())
	}
}

func TestAggregates(t *testing.T) {
	db := NewDatabase()
	sales := db.Ensure("sale", 3) // (region, item, amount)
	rows := []Tuple{
		{"west", "a", int64(10)},
		{"west", "b", int64(5)},
		{"east", "a", int64(7)},
	}
	for _, r := range rows {
		sales.Insert(r)
	}
	body := []Literal{{Atom: Atom{Pred: "sale", Args: []Term{V("r"), V("i"), V("amt")}}}}
	p := mustProgram(t,
		Rule{Head: Atom{Pred: "total", Args: []Term{V("r"), V("amt")}}, Body: body, Agg: AggSum, AggVar: "amt"},
		Rule{Head: Atom{Pred: "n_items", Args: []Term{V("r"), V("i")}}, Body: body, Agg: AggCount, AggVar: "i"},
		Rule{Head: Atom{Pred: "biggest", Args: []Term{V("r"), V("amt")}}, Body: body, Agg: AggMax, AggVar: "amt"},
		Rule{Head: Atom{Pred: "smallest", Args: []Term{V("r"), V("amt")}}, Body: body, Agg: AggMin, AggVar: "amt"},
	)
	if _, err := p.Eval(db); err != nil {
		t.Fatal(err)
	}
	if !db.Get("total").Contains(Tuple{"west", int64(15)}) {
		t.Fatalf("total = %v", db.Get("total").Tuples())
	}
	if !db.Get("n_items").Contains(Tuple{"west", int64(2)}) || !db.Get("n_items").Contains(Tuple{"east", int64(1)}) {
		t.Fatalf("n_items = %v", db.Get("n_items").Tuples())
	}
	if !db.Get("biggest").Contains(Tuple{"west", int64(10)}) {
		t.Fatalf("biggest = %v", db.Get("biggest").Tuples())
	}
	if !db.Get("smallest").Contains(Tuple{"west", int64(5)}) {
		t.Fatalf("smallest = %v", db.Get("smallest").Tuples())
	}
}

func TestAggregateOverRecursion(t *testing.T) {
	// reach_count(n) :- count of nodes reachable from "a": aggregation must
	// be stratified above the recursive path computation.
	rules := append(tc(), Rule{
		Head:   Atom{Pred: "reach_count", Args: []Term{V("c")}},
		Body:   []Literal{{Atom: Atom{Pred: "path", Args: []Term{C("a"), V("y")}}}},
		Agg:    AggCount,
		AggVar: "y",
	})
	db := edgeDB([2]string{"a", "b"}, [2]string{"b", "c"})
	p := mustProgram(t, rules...)
	if _, err := p.Eval(db); err != nil {
		t.Fatal(err)
	}
	if !db.Get("reach_count").Contains(Tuple{int64(2)}) {
		t.Fatalf("reach_count = %v", db.Get("reach_count").Tuples())
	}
}

func TestRelationOps(t *testing.T) {
	r := NewRelation("t", 2)
	if !r.Insert(Tuple{"a", int64(1)}) || r.Insert(Tuple{"a", int64(1)}) {
		t.Fatal("insert dedup broken")
	}
	if r.Len() != 1 || !r.Contains(Tuple{"a", int64(1)}) {
		t.Fatal("contains broken")
	}
	// Type-prefixed keys: int 1 and string "1" must not collide.
	r.Insert(Tuple{"a", "1"})
	if r.Len() != 2 {
		t.Fatal("key encoding conflated int and string")
	}
	if !r.Delete(Tuple{"a", "1"}) || r.Delete(Tuple{"a", "1"}) {
		t.Fatal("delete semantics broken")
	}
	c := r.Clone()
	c.Insert(Tuple{"b", int64(2)})
	if r.Len() != 1 {
		t.Fatal("clone shares state")
	}
}

func TestLookupIndex(t *testing.T) {
	r := NewRelation("t", 3)
	for i := 0; i < 100; i++ {
		r.Insert(Tuple{fmt.Sprintf("k%d", i%10), int64(i), "x"})
	}
	got := r.Lookup([]int{0}, []any{"k3"})
	if len(got) != 10 {
		t.Fatalf("indexed lookup returned %d rows, want 10", len(got))
	}
	// Index must track later inserts.
	r.Insert(Tuple{"k3", int64(1000), "x"})
	if len(r.Lookup([]int{0}, []any{"k3"})) != 11 {
		t.Fatal("index went stale after insert")
	}
	// Multi-column lookup.
	got = r.Lookup([]int{0, 1}, []any{"k3", int64(3)})
	if len(got) != 1 {
		t.Fatalf("multi-column lookup = %d rows", len(got))
	}
}

func TestDatabaseCloneIsolated(t *testing.T) {
	db := edgeDB([2]string{"a", "b"})
	snap := db.Clone()
	db.Get("edge").Insert(Tuple{"x", "y"})
	if snap.Get("edge").Len() != 1 {
		t.Fatal("snapshot saw later mutation")
	}
}

func TestArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch must panic")
		}
	}()
	NewRelation("r", 2).Insert(Tuple{"only-one"})
}

func TestRuleString(t *testing.T) {
	r := tc()[1]
	want := "path(?x, ?z) :- path(?x, ?y), edge(?y, ?z)."
	if r.String() != want {
		t.Fatalf("String = %q, want %q", r.String(), want)
	}
}

// Monotonicity property: adding base facts can only grow the derived
// relations of a positive program (the CALM intuition, checked empirically).
func TestPositiveProgramMonotoneQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nodes := []string{"a", "b", "c", "d"}
		var base, extra [][2]string
		for i := 0; i < 5; i++ {
			base = append(base, [2]string{nodes[r.Intn(4)], nodes[r.Intn(4)]})
		}
		for i := 0; i < 3; i++ {
			extra = append(extra, [2]string{nodes[r.Intn(4)], nodes[r.Intn(4)]})
		}
		p := mustProgram(t, tc()...)
		small := edgeDB(base...)
		big := edgeDB(append(append([][2]string{}, base...), extra...)...)
		if _, err := p.Eval(small); err != nil {
			return false
		}
		if _, err := p.Eval(big); err != nil {
			return false
		}
		for _, tup := range small.Get("path").Tuples() {
			if !big.Get("path").Contains(tup) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
