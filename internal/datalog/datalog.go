// Package datalog is the query core of HydroLogic (§3): relations, rules
// with stratified negation, lattice-style aggregation, and a semi-naive
// (differential) fixpoint evaluator. HydroLogic queries such as the
// transitive-closure `trace` in the COVID example compile to rules here, and
// the evaluator is what runs "to fixpoint" inside each transducer tick.
package datalog

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Tuple is one fact: a row of constants. Elements must be comparable Go
// values (string, integer, float, bool).
type Tuple []any

// encodeKey renders a tuple (or projection of one) as a hashable string.
// A type prefix prevents 1 and "1" from colliding.
func encodeKey(vals []any) string {
	var b strings.Builder
	for _, v := range vals {
		switch x := v.(type) {
		case string:
			b.WriteByte('s')
			b.WriteString(strconv.Itoa(len(x)))
			b.WriteByte(':')
			b.WriteString(x)
		case int:
			b.WriteByte('i')
			b.WriteString(strconv.FormatInt(int64(x), 10))
		case int64:
			b.WriteByte('i')
			b.WriteString(strconv.FormatInt(x, 10))
		case uint64:
			b.WriteByte('u')
			b.WriteString(strconv.FormatUint(x, 10))
		case float64:
			b.WriteByte('f')
			b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
		case bool:
			if x {
				b.WriteString("bT")
			} else {
				b.WriteString("bF")
			}
		default:
			b.WriteByte('?')
			fmt.Fprintf(&b, "%v", x)
		}
		b.WriteByte('|')
	}
	return b.String()
}

// Key returns the canonical hash key of the tuple.
func (t Tuple) Key() string { return encodeKey(t) }

// Equal reports elementwise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if t[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the tuple as (a, b, c).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = fmt.Sprint(v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Relation is a named set of tuples of fixed arity, with hash indexes built
// on demand over column subsets (the "access path" machinery of §5.1).
type Relation struct {
	Name  string
	Arity int

	rows map[string]Tuple
	// indexes maps an encoded column-position list to a hash index from
	// projected key to tuples.
	indexes map[string]map[string][]Tuple
}

// NewRelation returns an empty relation.
func NewRelation(name string, arity int) *Relation {
	return &Relation{Name: name, Arity: arity, rows: map[string]Tuple{}, indexes: map[string]map[string][]Tuple{}}
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.rows) }

// Insert adds a tuple, returning true if it was new. Panics on arity
// mismatch: that is a compiler bug, not a data error.
func (r *Relation) Insert(t Tuple) bool {
	if len(t) != r.Arity {
		panic(fmt.Sprintf("datalog: arity mismatch inserting %v into %s/%d", t, r.Name, r.Arity))
	}
	k := t.Key()
	if _, ok := r.rows[k]; ok {
		return false
	}
	r.rows[k] = t
	for cols, idx := range r.indexes {
		pos := decodeCols(cols)
		idx[projectKey(t, pos)] = append(idx[projectKey(t, pos)], t)
	}
	return true
}

// Delete removes a tuple, returning true if it was present. Deletion is
// non-monotonic; the transducer only applies it atomically between ticks.
func (r *Relation) Delete(t Tuple) bool {
	k := t.Key()
	if _, ok := r.rows[k]; !ok {
		return false
	}
	delete(r.rows, k)
	// Rebuilding indexes on delete keeps Insert fast; deletes happen only
	// at tick boundaries and are rare relative to lookups.
	r.indexes = map[string]map[string][]Tuple{}
	return true
}

// Contains reports membership of t.
func (r *Relation) Contains(t Tuple) bool {
	_, ok := r.rows[t.Key()]
	return ok
}

// Tuples returns all tuples in deterministic (sorted-key) order.
func (r *Relation) Tuples() []Tuple {
	keys := make([]string, 0, len(r.rows))
	for k := range r.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Tuple, len(keys))
	for i, k := range keys {
		out[i] = r.rows[k]
	}
	return out
}

// Clone returns a deep copy sharing no state.
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.Name, r.Arity)
	for k, t := range r.rows {
		c.rows[k] = t
	}
	return c
}

func encodeCols(pos []int) string {
	parts := make([]string, len(pos))
	for i, p := range pos {
		parts[i] = strconv.Itoa(p)
	}
	return strings.Join(parts, ",")
}

func decodeCols(s string) []int {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		out[i], _ = strconv.Atoi(p)
	}
	return out
}

func projectKey(t Tuple, pos []int) string {
	proj := make([]any, len(pos))
	for i, p := range pos {
		proj[i] = t[p]
	}
	return encodeKey(proj)
}

// Lookup returns the tuples whose columns at pos equal vals, using (and
// building if needed) a hash index on those columns.
func (r *Relation) Lookup(pos []int, vals []any) []Tuple {
	if len(pos) == 0 {
		return r.Tuples()
	}
	cols := encodeCols(pos)
	idx, ok := r.indexes[cols]
	if !ok {
		idx = make(map[string][]Tuple, len(r.rows))
		for _, t := range r.rows {
			k := projectKey(t, pos)
			idx[k] = append(idx[k], t)
		}
		r.indexes[cols] = idx
	}
	return idx[encodeKey(vals)]
}

// Database is a set of named relations.
type Database struct {
	rels map[string]*Relation
}

// NewDatabase returns an empty database.
func NewDatabase() *Database { return &Database{rels: map[string]*Relation{}} }

// Ensure returns the relation, creating it with the given arity if missing.
func (db *Database) Ensure(name string, arity int) *Relation {
	if r, ok := db.rels[name]; ok {
		return r
	}
	r := NewRelation(name, arity)
	db.rels[name] = r
	return r
}

// Get returns the named relation, or nil.
func (db *Database) Get(name string) *Relation { return db.rels[name] }

// Names returns relation names sorted.
func (db *Database) Names() []string {
	out := make([]string, 0, len(db.rels))
	for n := range db.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Clone deep-copies the database — the transducer's state snapshot.
func (db *Database) Clone() *Database {
	c := NewDatabase()
	for n, r := range db.rels {
		c.rels[n] = r.Clone()
	}
	return c
}
