// Package datalog is the query core of HydroLogic (§3): relations, rules
// with stratified negation, lattice-style aggregation, and a semi-naive
// (differential) fixpoint evaluator. HydroLogic queries such as the
// transitive-closure `trace` in the COVID example compile to rules here, and
// the evaluator is what runs "to fixpoint" inside each transducer tick.
//
// Storage is hash-native: tuples live in an insertion-ordered slot array
// keyed by a 64-bit typed FNV-1a hash with collision buckets, and column
// indexes (the access paths of §5.1) are maintained incrementally on both
// Insert and Delete. Rules execute as compiled plans (see plan.go).
package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is one fact: a row of constants. Elements must be comparable Go
// values (string, integer, float, bool).
type Tuple []any

// Equal reports elementwise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if t[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the tuple as (a, b, c).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = fmt.Sprint(v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Relation is a named set of tuples of fixed arity. Rows are stored in an
// insertion-ordered slot array (deleted rows leave tombstones that are
// compacted once they dominate); membership is a typed-hash table whose
// collision chains thread through a parallel next-slot array (one map
// entry per hash, no per-bucket slice allocations — chain order is
// unobservable because a tuple's slot is unique); column indexes over any
// column subset are built on first use and maintained incrementally
// afterwards.
type Relation struct {
	Name  string
	Arity int

	slots  []Tuple // insertion order; nil = tombstone
	dead   int
	byHash map[uint64]int32 // full-tuple hash → head of live-slot chain; nil after Clone (lazily rebuilt)
	next   []int32          // collision chain links, parallel to slots; -1 terminates
	idx    []*colIndex
}

// NewRelation returns an empty relation.
func NewRelation(name string, arity int) *Relation {
	return &Relation{Name: name, Arity: arity, byHash: map[uint64]int32{}}
}

// Len returns the number of live tuples.
func (r *Relation) Len() int { return len(r.slots) - r.dead }

// ensureByHash rebuilds the membership hash after a lazy Clone.
func (r *Relation) ensureByHash() {
	if r.byHash != nil {
		return
	}
	r.byHash = make(map[uint64]int32, nextPow2(len(r.slots)))
	r.next = make([]int32, len(r.slots))
	for i, t := range r.slots {
		r.next[i] = -1
		if t == nil {
			continue
		}
		h := hashTuple(t)
		if head, ok := r.byHash[h]; ok {
			r.next[i] = head
		}
		r.byHash[h] = int32(i)
	}
}

// findSlot returns the slot of t, or -1. Chains hold live slots only.
func (r *Relation) findSlot(h uint64, t Tuple) int32 {
	s, ok := r.byHash[h]
	if !ok {
		return -1
	}
	for s >= 0 {
		if r.slots[s].Equal(t) {
			return s
		}
		s = r.next[s]
	}
	return -1
}

// Insert adds a tuple, returning true if it was new. Panics on arity
// mismatch: that is a compiler bug, not a data error.
func (r *Relation) Insert(t Tuple) bool {
	if len(t) != r.Arity {
		panic(fmt.Sprintf("datalog: arity mismatch inserting %v into %s/%d", t, r.Name, r.Arity))
	}
	r.ensureByHash()
	h := hashTuple(t)
	if r.findSlot(h, t) >= 0 {
		return false
	}
	slot := int32(len(r.slots))
	r.slots = append(r.slots, t)
	link := int32(-1)
	if head, ok := r.byHash[h]; ok {
		link = head
	}
	r.next = append(r.next, link)
	r.byHash[h] = slot
	for _, ci := range r.idx {
		ci.add(t, slot)
	}
	return true
}

// Delete removes a tuple, returning true if it was present. Deletion is
// non-monotonic; the transducer only applies it atomically between ticks.
// Indexes are maintained incrementally — no rebuild.
func (r *Relation) Delete(t Tuple) bool {
	r.ensureByHash()
	h := hashTuple(t)
	slot := r.findSlot(h, t)
	if slot < 0 {
		return false
	}
	// Unlink from the collision chain.
	if head := r.byHash[h]; head == slot {
		if r.next[slot] >= 0 {
			r.byHash[h] = r.next[slot]
		} else {
			delete(r.byHash, h)
		}
	} else {
		p := head
		for r.next[p] != slot {
			p = r.next[p]
		}
		r.next[p] = r.next[slot]
	}
	r.next[slot] = -1
	for _, ci := range r.idx {
		ci.remove(r.slots[slot], slot)
	}
	r.slots[slot] = nil
	r.dead++
	r.maybeCompact()
	return true
}

// maybeCompact squeezes out tombstones (preserving insertion order) once
// they dominate the slot array, rebuilding hash and indexes.
func (r *Relation) maybeCompact() {
	if r.dead <= 32 || r.dead*2 <= len(r.slots) {
		return
	}
	live := make([]Tuple, 0, len(r.slots)-r.dead)
	for _, t := range r.slots {
		if t != nil {
			live = append(live, t)
		}
	}
	r.slots = live
	r.dead = 0
	r.byHash = nil
	r.ensureByHash()
	for _, ci := range r.idx {
		ci.m = make(map[uint64][]int32, nextPow2(len(live)))
		for i, t := range live {
			ci.add(t, int32(i))
		}
	}
}

// Clear removes every tuple in place, keeping the relation's identity (the
// same *Relation stays registered in its database — callers holding the
// pointer observe the emptied state). Indexes are dropped and rebuilt on
// demand. The incremental evaluator's recompute path and the transducer's
// query re-registration both clear derived relations this way so that no
// concurrent reader of the database map is ever invalidated.
func (r *Relation) Clear() {
	r.slots = nil
	r.dead = 0
	r.byHash = map[uint64]int32{}
	r.next = nil
	r.idx = nil
}

// Contains reports membership of t.
func (r *Relation) Contains(t Tuple) bool {
	r.ensureByHash()
	return r.findSlot(hashTuple(t), t) >= 0
}

// Tuples returns all tuples in a deterministic (sorted) order. Evaluation
// never calls this on the hot path — it scans insertion order directly.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, 0, r.Len())
	for _, t := range r.slots {
		if t != nil {
			out = append(out, t)
		}
	}
	sortTuples(out)
	return out
}

// appendRaw appends a tuple without the duplicate check or hash/index
// maintenance (byHash is rebuilt lazily if ever consulted). The evaluator
// uses it for delta relations, whose tuples are pre-deduplicated and only
// ever scanned.
func (r *Relation) appendRaw(t Tuple) {
	r.byHash = nil
	r.next = nil
	r.idx = nil
	r.slots = append(r.slots, t)
}

// bulkLoad appends pre-deduplicated tuples in order and builds the
// membership hash once — the snapshot-restore fast path. Callers guarantee
// the tuples are distinct (snapshot contents are checksummed); arity is
// still verified per tuple.
func (r *Relation) bulkLoad(ts []Tuple) error {
	for _, t := range ts {
		if len(t) != r.Arity {
			return fmt.Errorf("datalog: arity mismatch loading %v into %s/%d", t, r.Name, r.Arity)
		}
	}
	r.byHash = nil
	r.next = nil
	r.idx = nil
	r.slots = append(r.slots, ts...)
	r.ensureByHash()
	return nil
}

// scan calls fn for every live tuple in insertion order; fn returning
// false stops the scan.
func (r *Relation) scan(fn func(t Tuple) bool) {
	for _, t := range r.slots {
		if t != nil && !fn(t) {
			return
		}
	}
}

// Clone returns a deep copy sharing no mutable state. The membership hash
// and indexes are rebuilt lazily on first use, so cloning (the transducer's
// per-tick snapshot) is a single slice copy for relations the tick never
// touches.
func (r *Relation) Clone() *Relation {
	c := &Relation{Name: r.Name, Arity: r.Arity}
	c.slots = make([]Tuple, 0, r.Len())
	for _, t := range r.slots {
		if t != nil {
			c.slots = append(c.slots, t)
		}
	}
	return c
}

// index returns (building on first use) the incrementally-maintained index
// over the column subset pos.
func (r *Relation) index(pos []int) *colIndex {
	for _, ci := range r.idx {
		if sameCols(ci.pos, pos) {
			return ci
		}
	}
	ci := &colIndex{pos: append([]int(nil), pos...), m: make(map[uint64][]int32, nextPow2(r.Len()))}
	for i, t := range r.slots {
		if t != nil {
			ci.add(t, int32(i))
		}
	}
	r.idx = append(r.idx, ci)
	return ci
}

// lookupSlots returns candidate slot numbers whose projection hash matches;
// callers must verify equality (hash collisions are possible).
func (r *Relation) lookupSlots(pos []int, vals []any) []int32 {
	return r.index(pos).m[hashVals(vals)]
}

// Lookup returns the tuples whose columns at pos equal vals, using (and
// building if needed) a hash index on those columns. With no columns it
// returns the full relation in deterministic sorted order.
func (r *Relation) Lookup(pos []int, vals []any) []Tuple {
	if len(pos) == 0 {
		return r.Tuples()
	}
	var out []Tuple
	for _, s := range r.lookupSlots(pos, vals) {
		if t := r.slots[s]; projEqual(t, pos, vals) {
			out = append(out, t)
		}
	}
	return out
}

// Database is a set of named relations.
type Database struct {
	rels map[string]*Relation
	// names caches sorted relation names; invalidated by Ensure.
	names []string
}

// NewDatabase returns an empty database.
func NewDatabase() *Database { return &Database{rels: map[string]*Relation{}} }

// Ensure returns the relation, creating it with the given arity if missing.
func (db *Database) Ensure(name string, arity int) *Relation {
	if r, ok := db.rels[name]; ok {
		return r
	}
	r := NewRelation(name, arity)
	db.rels[name] = r
	db.names = nil
	return r
}

// Get returns the named relation, or nil.
func (db *Database) Get(name string) *Relation { return db.rels[name] }

// remove deregisters a relation entirely — the incremental evaluator's
// construction rollback uses it for relations it created itself, so a
// failed NewIncremental leaves no phantom (possibly wrong-arity) entries
// behind.
func (db *Database) remove(name string) {
	if _, ok := db.rels[name]; ok {
		delete(db.rels, name)
		db.names = nil
	}
}

// Names returns relation names sorted.
func (db *Database) Names() []string {
	if db.names == nil {
		out := make([]string, 0, len(db.rels))
		for n := range db.rels {
			out = append(out, n)
		}
		sort.Strings(out)
		db.names = out
	}
	return db.names
}

// Clone deep-copies the database — the transducer's state snapshot.
func (db *Database) Clone() *Database {
	c := &Database{rels: make(map[string]*Relation, len(db.rels))}
	for n, r := range db.rels {
		c.rels[n] = r.Clone()
	}
	return c
}
