package datalog

import "fmt"

// This file is the serialization boundary of the incremental evaluator: a
// FixpointState captures everything an Incremental needs beyond its compiled
// program — the database (base relations plus the materialized fixpoint, in
// insertion order) and the counted-derivation multiplicities of the
// non-recursive monotone components — and RestoreIncremental rebuilds a
// working evaluator from one without re-deriving anything. The durable
// layer (internal/durable) encodes FixpointStates into snapshot files and
// replays changelog suffixes through Apply; keeping the state shape here
// means the encoding never reaches into evaluator internals.
//
// Capture and restore both preserve insertion order (relations) and
// first-seen order (counts), so a restored evaluator is byte-for-byte
// equivalent to the one that was captured: identical scan orders, identical
// future emission orders, identical subsequent snapshots.

// RelationState is one relation's persisted form: tuples in insertion
// (scan) order.
type RelationState struct {
	Name   string
	Arity  int
	Tuples []Tuple
}

// CountEntry is one maintained derivation count (always positive: zero
// counts are dropped from the live state).
type CountEntry struct {
	Tuple Tuple
	Count int
}

// CountsState is the derivation-count table of one counting component's
// head predicate, in first-seen order.
type CountsState struct {
	Pred    string
	Entries []CountEntry
}

// FixpointState is a point-in-time capture of an Incremental's maintained
// state. Relations are listed in sorted-name order (deterministic bytes for
// a fixed state), tuples within each in insertion order.
type FixpointState struct {
	Relations []RelationState
	Counts    []CountsState
}

// State captures the maintained database and derivation counts. It fails on
// a broken evaluator — persisting a half-applied batch would make the
// corruption durable.
func (inc *Incremental) State() (*FixpointState, error) {
	if inc.broken {
		return nil, fmt.Errorf("datalog: incremental evaluator unusable after earlier error")
	}
	st := &FixpointState{}
	for _, name := range inc.db.Names() {
		rel := inc.db.Get(name)
		rs := RelationState{Name: name, Arity: rel.Arity, Tuples: make([]Tuple, 0, rel.Len())}
		rel.scan(func(t Tuple) bool {
			rs.Tuples = append(rs.Tuples, t)
			return true
		})
		st.Relations = append(st.Relations, rs)
	}
	// Count tables in sorted-pred order; entries in first-seen order
	// (live entries only — drop tombstones are compaction artifacts).
	for _, name := range inc.db.Names() {
		c := inc.counts[name]
		if c == nil {
			continue
		}
		cs := CountsState{Pred: name}
		for _, e := range c.ents {
			if e.t != nil {
				cs.Entries = append(cs.Entries, CountEntry{Tuple: e.t, Count: e.n})
			}
		}
		if len(cs.Entries) > 0 {
			st.Counts = append(st.Counts, cs)
		}
	}
	return st, nil
}

// RestoreIncremental rebuilds an evaluator from a captured state: relations
// are loaded into db (which must not already hold tuples for them), the
// program is compiled and classified exactly as NewIncremental would, and
// the derivation counts are adopted instead of re-seeding the fixpoint.
// Restore is O(state) — no joins, no fixpoint — which is what makes
// snapshot recovery beat cold recomputation.
func RestoreIncremental(p *Program, db *Database, st *FixpointState) (*Incremental, error) {
	for _, rs := range st.Relations {
		rel := db.Ensure(rs.Name, rs.Arity)
		if rel.Arity != rs.Arity {
			return nil, fmt.Errorf("datalog: restore: relation %s has arity %d but state says %d", rs.Name, rel.Arity, rs.Arity)
		}
		if rel.Len() > 0 {
			return nil, fmt.Errorf("datalog: restore: relation %s already holds tuples", rs.Name)
		}
		if err := rel.bulkLoad(rs.Tuples); err != nil {
			return nil, err
		}
	}
	inc, err := newIncrementalCore(p, db)
	if err != nil {
		return nil, err
	}
	counting := map[string]bool{}
	for _, c := range inc.comps {
		if !c.recursive && !c.nonMono {
			for _, h := range c.heads {
				counting[h] = true
			}
		}
	}
	for _, cs := range st.Counts {
		if !counting[cs.Pred] {
			return nil, fmt.Errorf("datalog: restore: %s carries derivation counts but is not a counting component head", cs.Pred)
		}
		c := inc.countsFor(cs.Pred)
		rel := inc.db.Get(cs.Pred)
		for _, e := range cs.Entries {
			if e.Count <= 0 {
				return nil, fmt.Errorf("datalog: restore: non-positive derivation count %d for %s%v", e.Count, cs.Pred, e.Tuple)
			}
			if rel == nil || !rel.Contains(e.Tuple) {
				return nil, fmt.Errorf("datalog: restore: counted tuple %s%v is not in the restored fixpoint", cs.Pred, e.Tuple)
			}
			c.add(e.Tuple, e.Count)
		}
	}
	// Every counting head's count table must cover its relation exactly:
	// an uncounted tuple (or a count without a tuple, caught above) would
	// corrupt every future zero-crossing decision.
	for h := range counting {
		rel := inc.db.Get(h)
		n := 0
		if c := inc.counts[h]; c != nil {
			n = len(c.ents)
		}
		if rel != nil && rel.Len() != n {
			return nil, fmt.Errorf("datalog: restore: %s has %d tuples but %d derivation counts", h, rel.Len(), n)
		}
	}
	return inc, nil
}
