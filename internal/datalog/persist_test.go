package datalog

import (
	"errors"
	"math/rand"
	"testing"
)

// tcProgram is a two-component program: a recursive closure (semi-naive /
// DRed maintenance) feeding a non-recursive join (counting maintenance) —
// both persistence-relevant state classes.
func persistProgram(t testing.TB) *Program {
	t.Helper()
	p, err := NewProgram(
		Rule{
			Head: Atom{Pred: "path", Args: []Term{V("x"), V("y")}},
			Body: []Literal{{Atom: Atom{Pred: "edge", Args: []Term{V("x"), V("y")}}}},
		},
		Rule{
			Head: Atom{Pred: "path", Args: []Term{V("x"), V("z")}},
			Body: []Literal{
				{Atom: Atom{Pred: "path", Args: []Term{V("x"), V("y")}}},
				{Atom: Atom{Pred: "edge", Args: []Term{V("y"), V("z")}}},
			},
		},
		Rule{
			Head: Atom{Pred: "reach_attr", Args: []Term{V("x"), V("v")}},
			Body: []Literal{
				{Atom: Atom{Pred: "path", Args: []Term{V("x"), V("y")}}},
				{Atom: Atom{Pred: "attr", Args: []Term{V("y"), V("v")}}},
			},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestStateRoundTrip: capture → restore must reproduce the maintained state
// exactly, and the restored evaluator must maintain subsequent ticks
// identically to the original.
func TestStateRoundTrip(t *testing.T) {
	p := persistProgram(t)
	db := NewDatabase()
	edge := db.Ensure("edge", 2)
	attr := db.Ensure("attr", 2)
	for i := int64(0); i < 6; i++ {
		edge.Insert(Tuple{i, i + 1})
	}
	attr.Insert(Tuple{int64(3), int64(30)})
	attr.Insert(Tuple{int64(6), int64(60)})
	inc, err := NewIncremental(p, db)
	if err != nil {
		t.Fatal(err)
	}
	// Churn a little so counts have seen drops and re-adds.
	d := NewDelta()
	edge.Delete(Tuple{int64(2), int64(3)})
	d.Delete("edge", Tuple{int64(2), int64(3)})
	if _, err := inc.Apply(d); err != nil {
		t.Fatal(err)
	}
	d = NewDelta()
	edge.Insert(Tuple{int64(2), int64(3)})
	d.Insert("edge", Tuple{int64(2), int64(3)})
	if _, err := inc.Apply(d); err != nil {
		t.Fatal(err)
	}

	st, err := inc.State()
	if err != nil {
		t.Fatal(err)
	}
	db2 := NewDatabase()
	inc2, err := RestoreIncremental(p, db2, st)
	if err != nil {
		t.Fatal(err)
	}
	if err := diffDatabases("restored vs original", inc2.DB(), inc.DB()); err != nil {
		t.Fatal(err)
	}

	// Both evaluators must track the same future ticks, including deletes
	// that exercise the restored derivation counts and DRed.
	mutate := func(e *Incremental, del bool, tup Tuple) {
		d := NewDelta()
		rel := e.DB().Get("edge")
		if del {
			if rel.Delete(tup) {
				d.Delete("edge", tup)
			}
		} else if rel.Insert(tup) {
			d.Insert("edge", tup)
		}
		if _, err := e.Apply(d); err != nil {
			t.Fatal(err)
		}
	}
	steps := []struct {
		del bool
		tup Tuple
	}{
		{false, Tuple{int64(6), int64(0)}}, // close the cycle
		{true, Tuple{int64(3), int64(4)}},  // cut the chain
		{true, Tuple{int64(6), int64(0)}},
		{false, Tuple{int64(3), int64(4)}},
	}
	for _, s := range steps {
		mutate(inc, s.del, s.tup)
		mutate(inc2, s.del, s.tup)
		if err := diffDatabases("restored vs original after tick", inc2.DB(), inc.DB()); err != nil {
			t.Fatal(err)
		}
	}

	// And the re-captured states must be structurally identical (orders
	// included) — the byte-for-byte recovery guarantee rests on this.
	st1, err := inc.State()
	if err != nil {
		t.Fatal(err)
	}
	st2, err := inc2.State()
	if err != nil {
		t.Fatal(err)
	}
	if len(st1.Relations) != len(st2.Relations) || len(st1.Counts) != len(st2.Counts) {
		t.Fatalf("state shapes diverge: %d/%d relations, %d/%d counts",
			len(st1.Relations), len(st2.Relations), len(st1.Counts), len(st2.Counts))
	}
	for i := range st1.Relations {
		a, b := st1.Relations[i], st2.Relations[i]
		if a.Name != b.Name || a.Arity != b.Arity || len(a.Tuples) != len(b.Tuples) {
			t.Fatalf("relation state %s diverges", a.Name)
		}
		for j := range a.Tuples {
			if !a.Tuples[j].Equal(b.Tuples[j]) {
				t.Fatalf("relation %s tuple order diverges at %d: %v vs %v", a.Name, j, a.Tuples[j], b.Tuples[j])
			}
		}
	}
	for i := range st1.Counts {
		a, b := st1.Counts[i], st2.Counts[i]
		if a.Pred != b.Pred || len(a.Entries) != len(b.Entries) {
			t.Fatalf("counts state %s diverges", a.Pred)
		}
		for j := range a.Entries {
			if !a.Entries[j].Tuple.Equal(b.Entries[j].Tuple) || a.Entries[j].Count != b.Entries[j].Count {
				t.Fatalf("counts %s entry %d diverges", a.Pred, j)
			}
		}
	}
}

// TestStateRoundTripRandomized: the three-way differential harness's
// program shapes, with a capture/restore in the middle of a random tick
// sequence — the restored evaluator must stay equivalent to scratch Eval.
func TestStateRoundTripRandomized(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		p, err := NewProgram(randRules(r)...)
		if err != nil {
			t.Fatal(err)
		}
		edb := randEDB(r)
		inc, err := NewIncremental(p, edb.Clone())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for tick := 0; tick < 8; tick++ {
			d := NewDelta()
			for n := 0; n < 1+r.Intn(3); n++ {
				pred := edbPreds[r.Intn(len(edbPreds))]
				if r.Intn(3) > 0 {
					tup := randEDBTuple(r, pred)
					if edb.Get(pred).Insert(tup) {
						inc.DB().Get(pred).Insert(tup)
						d.Insert(pred, tup)
					}
				} else if existing := edb.Get(pred).Tuples(); len(existing) > 0 {
					tup := existing[r.Intn(len(existing))]
					edb.Get(pred).Delete(tup)
					inc.DB().Get(pred).Delete(tup)
					d.Delete(pred, tup)
				}
			}
			if _, err := inc.Apply(d); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if tick == 3 { // close/reopen mid-sequence
				st, err := inc.State()
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				inc, err = RestoreIncremental(p, NewDatabase(), st)
				if err != nil {
					t.Fatalf("seed %d: restore: %v", seed, err)
				}
			}
			ref := edb.Clone()
			if _, err := p.Eval(ref); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if err := diffDatabases("restored incremental vs compiled", inc.DB(), ref); err != nil {
				t.Fatalf("seed %d tick %d: %v", seed, tick, err)
			}
		}
	}
}

// TestRestoreRejectsCorruptState: hand-corrupted states must be refused.
func TestRestoreRejectsCorruptState(t *testing.T) {
	p := persistProgram(t)
	db := NewDatabase()
	db.Ensure("edge", 2).Insert(Tuple{"a", "b"})
	db.Ensure("attr", 2).Insert(Tuple{"b", int64(1)})
	inc, err := NewIncremental(p, db)
	if err != nil {
		t.Fatal(err)
	}
	good, err := inc.State()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(st *FixpointState){
		"count for non-counting pred": func(st *FixpointState) {
			st.Counts = append(st.Counts, CountsState{Pred: "path", Entries: []CountEntry{{Tuple: Tuple{"a", "b"}, Count: 1}}})
		},
		"non-positive count": func(st *FixpointState) {
			st.Counts[0].Entries[0].Count = 0
		},
		"counted tuple missing from fixpoint": func(st *FixpointState) {
			st.Counts[0].Entries[0].Tuple = Tuple{"zz", int64(9)}
		},
		"uncounted fixpoint tuple": func(st *FixpointState) {
			st.Counts = nil
		},
	}
	for name, corrupt := range cases {
		st, err := inc.State()
		if err != nil {
			t.Fatal(err)
		}
		corrupt(st)
		if _, err := RestoreIncremental(p, NewDatabase(), st); err == nil {
			t.Errorf("%s: restore must fail", name)
		}
	}
	// The untouched capture still restores.
	if _, err := RestoreIncremental(p, NewDatabase(), good); err != nil {
		t.Fatalf("good state must restore: %v", err)
	}
}

// TestApplyRejectsInconsistentDelta: batches contradicting retained state
// surface ErrInconsistentDelta pre-mutation — the prior fixpoint stays
// intact and the evaluator keeps serving (the graceful-degradation
// regression for the serving loop).
func TestApplyRejectsInconsistentDelta(t *testing.T) {
	setup := func() (*Incremental, *Database) {
		p := persistProgram(t)
		db := NewDatabase()
		db.Ensure("edge", 2).Insert(Tuple{"a", "b"})
		db.Ensure("attr", 2).Insert(Tuple{"b", int64(1)})
		inc, err := NewIncremental(p, db)
		if err != nil {
			t.Fatal(err)
		}
		return inc, db
	}

	t.Run("insert never applied", func(t *testing.T) {
		inc, _ := setup()
		d := NewDelta()
		d.Insert("edge", Tuple{"x", "y"}) // not actually in the relation
		if _, err := inc.Apply(d); !errors.Is(err, ErrInconsistentDelta) {
			t.Fatalf("want ErrInconsistentDelta, got %v", err)
		}
	})
	t.Run("delete never applied", func(t *testing.T) {
		inc, _ := setup()
		d := NewDelta()
		d.Delete("edge", Tuple{"a", "b"}) // still present
		if _, err := inc.Apply(d); !errors.Is(err, ErrInconsistentDelta) {
			t.Fatalf("want ErrInconsistentDelta, got %v", err)
		}
	})
	t.Run("phantom delete breaks counts", func(t *testing.T) {
		// A delete of a tuple that was never present passes the membership
		// check (it is absent now) but would drive a derivation count of the
		// counting component below zero: the two-phase commit must surface
		// the error before mutating.
		inc, db := setup()
		d := NewDelta()
		d.Delete("attr", Tuple{"b", int64(7)}) // never existed; joins with path(a,b)
		_, err := inc.Apply(d)
		if !errors.Is(err, ErrInconsistentDelta) {
			t.Fatalf("want ErrInconsistentDelta, got %v", err)
		}
		if !inc.DB().Get("reach_attr").Contains(Tuple{"a", int64(1)}) {
			t.Fatal("prior fixpoint must stay intact")
		}
		// Still serving: a good tick lands.
		db.Get("edge").Insert(Tuple{"b", "c"})
		good := NewDelta()
		good.Insert("edge", Tuple{"b", "c"})
		if _, err := inc.Apply(good); err != nil {
			t.Fatalf("evaluator must keep serving: %v", err)
		}
		if !inc.DB().Get("path").Contains(Tuple{"a", "c"}) {
			t.Fatal("good tick after rejection must maintain the fixpoint")
		}
	})
}
