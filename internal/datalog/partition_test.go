package datalog

import (
	"fmt"
	"math/rand"
	"testing"
)

// forcePartition drops the sharding size cutoff for the duration of a test
// so the randomized small workloads genuinely take the partitioned path
// (and the component fan-out cutoffs too, so both axes are exercised).
func forcePartition(t *testing.T) {
	t.Helper()
	oldPart, oldIn, oldDelta := partitionMinDeltaTuples, parallelMinInputTuples, parallelMinDeltaTuples
	partitionMinDeltaTuples, parallelMinInputTuples, parallelMinDeltaTuples = 0, 0, 0
	t.Cleanup(func() {
		partitionMinDeltaTuples, parallelMinInputTuples, parallelMinDeltaTuples = oldPart, oldIn, oldDelta
	})
}

// TestPartitionKeySelection pins the partition-key choice on the
// transitive-closure shape: the delta literal's first column that a later
// literal in the delta-first order probes on, -1 when no join column
// exists (whole-tuple hash fallback).
func TestPartitionKeySelection(t *testing.T) {
	p, err := NewProgram(
		Rule{
			Head: Atom{Pred: "path", Args: []Term{V("x"), V("y")}},
			Body: []Literal{{Atom: Atom{Pred: "edge", Args: []Term{V("x"), V("y")}}}},
		},
		Rule{
			Head: Atom{Pred: "path", Args: []Term{V("x"), V("z")}},
			Body: []Literal{
				{Atom: Atom{Pred: "path", Args: []Term{V("x"), V("y")}}},
				{Atom: Atom{Pred: "edge", Args: []Term{V("y"), V("z")}}},
			},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	var base, rec *rulePlan
	for _, plans := range p.prep.strata {
		for _, pl := range plans {
			if len(pl.r.Body) == 1 {
				base = pl
			} else {
				rec = pl
			}
		}
	}
	// Base rule edge(x,y): single literal, nothing downstream joins on the
	// delta — whole-tuple fallback.
	if got := base.partCol[0]; got != -1 {
		t.Fatalf("base rule partCol = %d, want -1 (no join column)", got)
	}
	// Recursive rule, delta at path(x,y): edge is probed on y = column 1.
	if got := rec.partCol[0]; got != 1 {
		t.Fatalf("delta-at-path partCol = %d, want 1 (join on y)", got)
	}
	// Delta at edge(y,z): path is probed on y = column 0 of the edge literal.
	if got := rec.partCol[1]; got != 0 {
		t.Fatalf("delta-at-edge partCol = %d, want 0 (join on y)", got)
	}
}

// TestPartitionedEvalDeterminism is the regression gate for intra-component
// partitioned evaluation: across 50 random programs and databases, every
// partition count must produce byte-identical relation contents (including
// insertion order) to the fully serial mode. CI runs this under -race, so
// it doubles as the sharded drive's data-race probe.
func TestPartitionedEvalDeterminism(t *testing.T) {
	forcePartition(t)
	before := partitionedDrives.Load()
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		rules := randRules(r)
		db := randEDB(r)

		serial, err := NewProgram(rules...)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		serial.SetParallelism(1)
		dbS := db.Clone()
		nS, errS := serial.Eval(dbS)
		fS := fingerprint(dbS)

		for _, parts := range []int{1, 2, 8} {
			par, err := NewProgram(rules...)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			par.SetParallelism(parts)
			dbP := db.Clone()
			nP, errP := par.Eval(dbP)
			if (errS == nil) != (errP == nil) {
				t.Fatalf("seed %d parts %d: error divergence: serial=%v partitioned=%v", seed, parts, errS, errP)
			}
			if nS != nP {
				t.Fatalf("seed %d parts %d: derived counts diverge: serial=%d partitioned=%d", seed, parts, nS, nP)
			}
			if fP := fingerprint(dbP); fS != fP {
				t.Fatalf("seed %d parts %d: partitioned fixpoint differs from serial\nserial:\n%s\npartitioned:\n%s", seed, parts, fS, fP)
			}
		}
	}
	if partitionedDrives.Load() == before {
		t.Fatal("partitioned path never engaged despite forced cutoffs")
	}
}

// TestPartitionedIncrementalDeterminism: the same gate for partitioned
// Incremental.Apply — identical tick sequences of interleaved inserts and
// deletes (driving DRed and insert propagation through sharded drives)
// must realize identical change counts and byte-identical databases after
// every tick for partition counts 1/2/8.
func TestPartitionedIncrementalDeterminism(t *testing.T) {
	forcePartition(t)
	for seed := int64(0); seed < 50; seed++ {
		parts := []int{1, 2, 8}
		progs := make([]*Program, len(parts))
		incs := make([]*Incremental, len(parts))
		r := rand.New(rand.NewSource(seed))
		rules := randRules(r)
		edb := randEDB(r)
		ok := true
		for k, pc := range parts {
			p, err := NewProgram(rules...)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			p.SetParallelism(pc)
			progs[k] = p
			incs[k], err = NewIncremental(p, edb.Clone())
			if err != nil {
				ok = false // seeding rejected (e.g. derived/base collision): same for all
				break
			}
		}
		if !ok {
			continue
		}
		for tick := 0; tick < 6; tick++ {
			deltas := make([]*Delta, len(parts))
			for k := range deltas {
				deltas[k] = NewDelta()
			}
			for op := 0; op < 1+r.Intn(5); op++ {
				pred := edbPreds[r.Intn(len(edbPreds))]
				if r.Intn(2) == 0 {
					tup := randEDBTuple(r, pred)
					if edb.Get(pred).Insert(tup) {
						for k := range incs {
							incs[k].DB().Get(pred).Insert(tup)
							deltas[k].Insert(pred, tup)
						}
					}
				} else if existing := edb.Get(pred).Tuples(); len(existing) > 0 {
					tup := existing[r.Intn(len(existing))]
					edb.Get(pred).Delete(tup)
					for k := range incs {
						incs[k].DB().Get(pred).Delete(tup)
						deltas[k].Delete(pred, tup)
					}
				}
			}
			ns := make([]int, len(parts))
			var firstErr error
			for k := range incs {
				n, err := incs[k].Apply(deltas[k])
				ns[k] = n
				if k == 0 {
					firstErr = err
				} else if (firstErr == nil) != (err == nil) {
					t.Fatalf("seed %d tick %d parts %d: error divergence: %v vs %v", seed, tick, parts[k], firstErr, err)
				}
			}
			if firstErr != nil {
				break
			}
			ref := fingerprint(incs[0].DB())
			refDelta := fmt.Sprint(deltas[0].preds, deltas[0].added, deltas[0].removed)
			for k := 1; k < len(parts); k++ {
				if ns[k] != ns[0] {
					t.Fatalf("seed %d tick %d parts %d: realized changes diverge: %d vs %d", seed, tick, parts[k], ns[0], ns[k])
				}
				// The extended deltas must agree too: downstream consumers
				// (the transducer, chained components) see them.
				if got := fmt.Sprint(deltas[k].preds, deltas[k].added, deltas[k].removed); got != refDelta {
					t.Fatalf("seed %d tick %d parts %d: extended deltas diverge\nserial:      %s\npartitioned: %s", seed, tick, parts[k], refDelta, got)
				}
				if got := fingerprint(incs[k].DB()); got != ref {
					t.Fatalf("seed %d tick %d parts %d: partitioned fixpoint differs from serial\nserial:\n%s\npartitioned:\n%s", seed, tick, parts[k], ref, got)
				}
			}
		}
	}
}
