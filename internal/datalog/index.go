package datalog

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// This file is the hash-native storage core: 64-bit typed FNV-1a hashing of
// tuple values (replacing the old string key encoding on the hot path),
// collision-bucketed hash sets, and incrementally maintained column indexes
// — the "access path" machinery of §5.1 in compiled form.

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// hashByte folds one byte into an FNV-1a state.
func hashByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

// hashUint64 folds eight bytes into the state.
func hashUint64(h uint64, v uint64) uint64 {
	for i := 0; i < 64; i += 8 {
		h = hashByte(h, byte(v>>i))
	}
	return h
}

// hashValue folds one tuple element, prefixed by a type tag so that 1,
// "1", uint64(1) and 1.0 never collide (the hash analog of the old string
// key's type prefixes). Signed integers of different Go widths hash
// identically but compare unequal under Tuple.Equal, so int(1) and
// int64(1) are distinct tuples sharing a hash bucket. (The old string
// encoding conflated them on insert while Tuple.Equal distinguished them —
// an inconsistency; hash and equality now agree. This codebase normalizes
// integers to int64 at its boundaries.)
func hashValue(h uint64, v any) uint64 {
	switch x := v.(type) {
	case string:
		h = hashByte(h, 's')
		for i := 0; i < len(x); i++ {
			h = hashByte(h, x[i])
		}
		h = hashByte(h, 0xff)
	case int:
		h = hashByte(h, 'i')
		h = hashUint64(h, uint64(int64(x)))
	case int64:
		h = hashByte(h, 'i')
		h = hashUint64(h, uint64(x))
	case uint64:
		h = hashByte(h, 'u')
		h = hashUint64(h, x)
	case float64:
		h = hashByte(h, 'f')
		h = hashUint64(h, math.Float64bits(x))
	case bool:
		if x {
			h = hashByte(h, 'T')
		} else {
			h = hashByte(h, 'F')
		}
	default:
		h = hashByte(h, '?')
		s := fmt.Sprint(x)
		for i := 0; i < len(s); i++ {
			h = hashByte(h, s[i])
		}
		h = hashByte(h, 0xff)
	}
	return h
}

// hashTuple hashes a full tuple.
func hashTuple(t Tuple) uint64 {
	h := fnvOffset
	for _, v := range t {
		h = hashValue(h, v)
	}
	return h
}

// hashVals hashes an explicit value list (projections, group keys).
func hashVals(vals []any) uint64 {
	h := fnvOffset
	for _, v := range vals {
		h = hashValue(h, v)
	}
	return h
}

// hashProj hashes the projection of t onto the columns pos without
// materializing it.
func hashProj(t Tuple, pos []int) uint64 {
	h := fnvOffset
	for _, p := range pos {
		h = hashValue(h, t[p])
	}
	return h
}

// projEqual reports whether t's columns at pos equal vals elementwise.
func projEqual(t Tuple, pos []int, vals []any) bool {
	for i, p := range pos {
		if t[p] != vals[i] {
			return false
		}
	}
	return true
}

// colIndex is a hash index over a column subset, mapping the projection
// hash to the slot numbers of matching rows (in insertion order). It is
// maintained incrementally on both Insert and Delete.
type colIndex struct {
	pos []int
	m   map[uint64][]int32
}

func (ci *colIndex) add(t Tuple, slot int32) {
	h := hashProj(t, ci.pos)
	ci.m[h] = append(ci.m[h], slot)
}

func (ci *colIndex) remove(t Tuple, slot int32) {
	h := hashProj(t, ci.pos)
	bucket := ci.m[h]
	for i, s := range bucket {
		if s == slot {
			// Ordered removal keeps bucket enumeration in insertion order.
			ci.m[h] = append(bucket[:i], bucket[i+1:]...)
			if len(ci.m[h]) == 0 {
				delete(ci.m, h)
			}
			return
		}
	}
}

func sameCols(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// typeRank orders Go value types for the deterministic tuple ordering used
// by Relation.Tuples. The specific order is arbitrary but fixed.
func typeRank(v any) int {
	switch v.(type) {
	case bool:
		return 0
	case int, int64:
		return 1
	case uint64:
		return 2
	case float64:
		return 3
	case string:
		return 4
	}
	return 5
}

// valueLess is a deterministic total order on tuple elements: type rank
// first, then value.
func valueLess(a, b any) bool {
	ra, rb := typeRank(a), typeRank(b)
	if ra != rb {
		return ra < rb
	}
	switch ra {
	case 0:
		return !a.(bool) && b.(bool)
	case 1:
		return asInt64(a) < asInt64(b)
	case 2:
		return a.(uint64) < b.(uint64)
	case 3:
		return a.(float64) < b.(float64)
	case 4:
		return a.(string) < b.(string)
	}
	return fmt.Sprint(a) < fmt.Sprint(b)
}

func asInt64(v any) int64 {
	switch x := v.(type) {
	case int:
		return int64(x)
	case int64:
		return x
	}
	return 0
}

// tupleLess orders tuples elementwise under valueLess.
func tupleLess(a, b Tuple) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return valueLess(a[i], b[i])
		}
	}
	return len(a) < len(b)
}

// sortTuples sorts in place under the deterministic order.
func sortTuples(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool { return tupleLess(ts[i], ts[j]) })
}

// valueSet is a hash set of single values with collision buckets — used by
// count-distinct aggregation in place of the old string-key set.
type valueSet struct {
	m map[uint64][]any
	n int
}

func newValueSet() *valueSet { return &valueSet{m: map[uint64][]any{}} }

func (s *valueSet) add(v any) {
	h := hashValue(fnvOffset, v)
	for _, x := range s.m[h] {
		if x == v {
			return
		}
	}
	s.m[h] = append(s.m[h], v)
	s.n++
}

func (s *valueSet) len() int { return s.n }

// augOverlay is the DRed over-deletion phase's pre-batch augmentation
// view: per predicate, the tuples the batch removed plus the tuples
// over-deleted so far, visible to the delta plans as if still present.
// Every probe-column set the component's compiled plans can use is
// registered up front and indexed with the same colIndex machinery the
// relations use, so join probes against the overlay are hash lookups —
// the previous per-probe linear scan made large deletion cascades
// quadratic in the cascade size. Appends maintain every registered index
// and reads never build anything, which is what lets partitioned drives
// share the overlay read-only across worker goroutines.
type augOverlay struct {
	rels map[string]*augRel
}

// augRel is one predicate's overlay: rows in append (discovery) order plus
// one maintained index per registered probe-column set.
type augRel struct {
	rows []Tuple
	idx  []*colIndex
}

// newAugOverlay builds an empty overlay with the probe-column sets of
// every positive literal in the given plans' join orders pre-registered
// (all-bound existence probes register the full column set).
func newAugOverlay(plans []*rulePlan) *augOverlay {
	o := &augOverlay{rels: map[string]*augRel{}}
	for _, pl := range plans {
		for _, order := range pl.orders {
			for i := range order {
				lp := &order[i]
				if lp.negated || len(lp.probePos) == 0 {
					continue // negation ignores the overlay; full scans read rows directly
				}
				o.register(lp.pred, lp.probePos)
			}
		}
	}
	return o
}

func (o *augOverlay) register(pred string, pos []int) {
	r := o.rels[pred]
	if r == nil {
		r = &augRel{}
		o.rels[pred] = r
	}
	for _, ci := range r.idx {
		if sameCols(ci.pos, pos) {
			return
		}
	}
	// m stays nil until the probe set is actually used: many registered
	// sets are never probed while their overlay is non-empty (a head's
	// overlay is only ever probed by round-1 input-delta drives), and
	// maintaining dead indexes across a large cascade is pure overhead.
	r.idx = append(r.idx, &colIndex{pos: append([]int(nil), pos...)})
}

// add appends t to pred's overlay and maintains every built index (unbuilt
// ones index all rows if and when a probe builds them). Appends happen
// only between drives (the serial accept step), never while worker
// goroutines read the overlay.
func (o *augOverlay) add(pred string, t Tuple) {
	r := o.rels[pred]
	if r == nil {
		r = &augRel{}
		o.rels[pred] = r
	}
	slot := int32(len(r.rows))
	r.rows = append(r.rows, t)
	for _, ci := range r.idx {
		if ci.m != nil {
			ci.add(t, slot)
		}
	}
}

// warmOrder builds the registered-but-unbuilt indexes for exactly the
// probe sets one join order can use. Partitioned drives call it before
// fanning out so concurrent matches never build lazily — and only the
// driven order's sets get built, so indexes no drive probes stay
// unmaintained across the cascade.
func (o *augOverlay) warmOrder(order []litPlan) {
	for i := range order {
		lp := &order[i]
		if lp.negated || len(lp.probePos) == 0 {
			continue
		}
		r := o.rels[lp.pred]
		if r == nil {
			continue
		}
		for _, ci := range r.idx {
			if sameCols(ci.pos, lp.probePos) {
				if ci.m == nil {
					r.build(ci)
				}
				break
			}
		}
	}
}

func (r *augRel) build(ci *colIndex) {
	ci.m = make(map[uint64][]int32, nextPow2(len(r.rows)))
	for i, t := range r.rows {
		ci.add(t, int32(i))
	}
}

// matches enumerates, in append order, the overlay tuples whose columns at
// pos equal vals, calling each for every match until it returns false. It
// reports whether any match existed. The first probe of a registered set
// builds its index (serial drives only — partitioned drives pre-warm); an
// unregistered probe set falls back to the linear scan (defensive —
// newAugOverlay registers every set the plans can produce), preserving
// semantics either way.
func (r *augRel) matches(pos []int, vals []any, each func(Tuple) bool) bool {
	for _, ci := range r.idx {
		if !sameCols(ci.pos, pos) {
			continue
		}
		if ci.m == nil {
			r.build(ci)
		}
		found := false
		for _, s := range ci.m[hashVals(vals)] {
			t := r.rows[s]
			if !projEqual(t, pos, vals) {
				continue // projection-hash collision
			}
			found = true
			if !each(t) {
				return true
			}
		}
		return found
	}
	found := false
	for _, t := range r.rows {
		if projEqual(t, pos, vals) {
			found = true
			if !each(t) {
				return true
			}
		}
	}
	return found
}

// tupleSet is a hash set of tuples with collision buckets — the incremental
// evaluator's membership filter for batch views.
type tupleSet struct {
	m map[uint64][]Tuple
}

func newTupleSet() *tupleSet { return &tupleSet{m: map[uint64][]Tuple{}} }

func (s *tupleSet) add(t Tuple) { s.addNew(t) }

// addNew inserts t and reports whether it was absent — membership check
// and insertion in one hash, for accept paths that do both.
func (s *tupleSet) addNew(t Tuple) bool {
	h := hashTuple(t)
	for _, x := range s.m[h] {
		if x.Equal(t) {
			return false
		}
	}
	s.m[h] = append(s.m[h], t)
	return true
}

func (s *tupleSet) has(t Tuple) bool {
	if len(s.m) == 0 {
		return false // skip the tuple hash entirely on empty sets
	}
	for _, x := range s.m[hashTuple(t)] {
		if x.Equal(t) {
			return true
		}
	}
	return false
}

// tupleCounts maps tuples to signed counts (derivation multiplicities and
// batch-delta accumulation), preserving first-seen order for deterministic
// realization. Dropped entries leave tombstones (nil tuple) compacted once
// they dominate, so long-lived maintained counts track the live fixpoint
// rather than every tuple ever derived.
type tupleCounts struct {
	m    map[uint64][]int
	ents []tcEntry
	dead int
}

type tcEntry struct {
	t Tuple
	n int
}

func newTupleCounts() *tupleCounts { return &tupleCounts{m: map[uint64][]int{}} }

// add adjusts t's count by d, creating the entry at zero first, and returns
// the count before and after.
func (c *tupleCounts) add(t Tuple, d int) (old, now int) {
	h := hashTuple(t)
	for _, i := range c.m[h] {
		if c.ents[i].t.Equal(t) {
			old = c.ents[i].n
			c.ents[i].n = old + d
			return old, old + d
		}
	}
	c.m[h] = append(c.m[h], len(c.ents))
	c.ents = append(c.ents, tcEntry{t: t, n: d})
	return 0, d
}

// get returns t's current count without creating an entry.
func (c *tupleCounts) get(t Tuple) int {
	if len(c.m) == 0 {
		return 0
	}
	for _, i := range c.m[hashTuple(t)] {
		if c.ents[i].t.Equal(t) {
			return c.ents[i].n
		}
	}
	return 0
}

// drop removes t's entry entirely (callers drop maintained counts that
// returned to zero).
func (c *tupleCounts) drop(t Tuple) {
	h := hashTuple(t)
	bucket := c.m[h]
	for i, idx := range bucket {
		if c.ents[idx].t.Equal(t) {
			c.ents[idx] = tcEntry{}
			c.m[h] = append(bucket[:i], bucket[i+1:]...)
			if len(c.m[h]) == 0 {
				delete(c.m, h)
			}
			c.dead++
			c.maybeCompact()
			return
		}
	}
}

// maybeCompact squeezes out tombstones (preserving first-seen order) once
// they dominate, rebuilding the index.
func (c *tupleCounts) maybeCompact() {
	if c.dead <= 32 || c.dead*2 <= len(c.ents) {
		return
	}
	live := make([]tcEntry, 0, len(c.ents)-c.dead)
	for _, e := range c.ents {
		if e.t != nil {
			live = append(live, e)
		}
	}
	c.ents = live
	c.dead = 0
	c.m = make(map[uint64][]int, nextPow2(len(live)))
	for i, e := range live {
		c.m[hashTuple(e.t)] = append(c.m[hashTuple(e.t)], i)
	}
}

// nextPow2 rounds up to a power of two (initial sizing hints).
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}
