package datalog

import (
	"fmt"
)

// This file is the cross-tick incremental evaluator: instead of re-running
// the fixpoint from a fresh snapshot on every transducer tick (O(database)
// per tick), an Incremental retains the fixpoint in its database and folds
// in each tick's base-relation delta (O(delta) amortized on monotone
// workloads). The strategy is chosen per evaluation component (an
// SCC-refined stratum, see plan.go):
//
//   - Non-recursive monotone components maintain a derivation count per
//     head tuple (the classic counting algorithm): an insert or delete on
//     an input enumerates exactly the derivations gained or lost, and a
//     head tuple appears or disappears when its count crosses zero.
//     Exactness comes from the positional old/new discipline — driving the
//     delta through body position i joins positions before i against the
//     post-batch state and positions after i against the pre-batch view.
//   - Recursive monotone components (e.g. transitive closure) propagate
//     insert-only deltas with the compiled semi-naive plans. Counting is
//     unsound under recursion (cyclic self-support), so a delta that
//     deletes one of their inputs falls back to recomputing the component
//     and diffing, which feeds precise deltas downstream.
//   - Components containing negation or aggregates recompute whenever any
//     input (including negated ones) changed, then diff.

// Delta is a batch of realized set-level changes to base relations: every
// recorded insert/delete must have actually changed membership, in the
// order it was applied. Apply normalizes away insert/delete churn on the
// same tuple, and extends the delta with the derived-relation changes it
// realizes so downstream components (and the caller, if interested) see
// the full cascade.
type Delta struct {
	added   map[string][]Tuple
	removed map[string][]Tuple
	preds   []string // first-touch order, for deterministic iteration
}

// NewDelta returns an empty change batch.
func NewDelta() *Delta {
	return &Delta{added: map[string][]Tuple{}, removed: map[string][]Tuple{}}
}

func (d *Delta) touch(pred string) {
	if _, ok := d.added[pred]; ok {
		return
	}
	if _, ok := d.removed[pred]; ok {
		return
	}
	d.preds = append(d.preds, pred)
}

// Insert records that t was inserted into rel (and was not present before).
func (d *Delta) Insert(rel string, t Tuple) {
	d.touch(rel)
	d.added[rel] = append(d.added[rel], t)
}

// Delete records that t was deleted from rel (and was present before).
func (d *Delta) Delete(rel string, t Tuple) {
	d.touch(rel)
	d.removed[rel] = append(d.removed[rel], t)
}

// Empty reports whether the batch contains no changes.
func (d *Delta) Empty() bool {
	for _, ts := range d.added {
		if len(ts) > 0 {
			return false
		}
	}
	for _, ts := range d.removed {
		if len(ts) > 0 {
			return false
		}
	}
	return true
}

// normalize nets out same-tuple churn (insert→delete→insert within one
// batch), leaving at most one signed change per tuple — the precondition
// for the counting algebra and for old-view reconstruction.
func (d *Delta) normalize() {
	for _, pred := range d.preds {
		add, rem := d.added[pred], d.removed[pred]
		if len(add) == 0 || len(rem) == 0 {
			continue // realized changes on one side cannot repeat a tuple
		}
		net := newTupleCounts()
		for _, t := range add {
			net.add(t, 1)
		}
		for _, t := range rem {
			net.add(t, -1)
		}
		var na, nr []Tuple
		for _, e := range net.ents {
			switch {
			case e.n > 0:
				na = append(na, e.t)
			case e.n < 0:
				nr = append(nr, e.t)
			}
		}
		d.added[pred], d.removed[pred] = na, nr
	}
}

// relView is a relation as of a point in the batch: the current relation
// minus tuples added by the batch plus tuples it removed (the pre-batch
// "old" view), or just the current relation (the "new" view).
type relView struct {
	rel   *Relation
	hide  *tupleSet // batch-added tuples, excluded from the old view
	extra []Tuple   // batch-removed tuples, re-included in the old view
}

func (v relView) lookup(pos []int, vals []any) []Tuple {
	var out []Tuple
	if v.rel != nil {
		for _, t := range v.rel.Lookup(pos, vals) {
			if v.hide == nil || !v.hide.has(t) {
				out = append(out, t)
			}
		}
	}
	for _, t := range v.extra {
		if projEqual(t, pos, vals) {
			out = append(out, t)
		}
	}
	return out
}

// incComponent classifies one evaluation component for maintenance.
type incComponent struct {
	plans     []*rulePlan
	heads     []string // distinct head preds, first-appearance order
	headSet   map[string]bool
	inputs    []string // distinct non-head body preds, first-appearance order
	inputSet  map[string]bool
	recursive bool // some positive body literal reads a component head
	nonMono   bool // some rule negates or aggregates
}

// Incremental maintains a program's fixpoint across base-relation change
// batches. The database handed to NewIncremental becomes the maintained
// state: base relations are mutated by the caller (reporting realized
// changes through Apply), derived relations belong to the evaluator.
type Incremental struct {
	prog   *Program
	db     *Database
	comps  []incComponent
	counts map[string]*tupleCounts // derivation counts for counting comps
	idb    map[string]bool
	broken bool
}

// NewIncremental compiles p, classifies its evaluation components, and
// seeds the fixpoint (with derivation counts where counting applies) into
// db. Derived relations must not contain base tuples.
func NewIncremental(p *Program, db *Database) (*Incremental, error) {
	if err := p.Prepare(); err != nil {
		return nil, err
	}
	inc := &Incremental{prog: p, db: db, counts: map[string]*tupleCounts{}, idb: p.idbPreds()}
	for pred := range inc.idb {
		if r := db.Get(pred); r != nil && r.Len() > 0 {
			return nil, fmt.Errorf("datalog: incremental: relation %s is derived by rules but already holds base tuples", pred)
		}
	}
	for _, plans := range p.prep.strata {
		c := incComponent{plans: plans, headSet: map[string]bool{}, inputSet: map[string]bool{}}
		for _, pl := range plans {
			if !c.headSet[pl.r.Head.Pred] {
				c.headSet[pl.r.Head.Pred] = true
				c.heads = append(c.heads, pl.r.Head.Pred)
			}
			if pl.r.Agg != "" {
				c.nonMono = true
			}
		}
		for _, pl := range plans {
			for _, l := range pl.r.Body {
				if l.Negated {
					c.nonMono = true
				}
				if c.headSet[l.Pred] {
					if !l.Negated {
						c.recursive = true
					}
					continue
				}
				if !c.inputSet[l.Pred] {
					c.inputSet[l.Pred] = true
					c.inputs = append(c.inputs, l.Pred)
				}
			}
		}
		inc.comps = append(inc.comps, c)
	}
	for i := range inc.comps {
		if err := inc.seed(&inc.comps[i]); err != nil {
			return nil, err
		}
	}
	return inc, nil
}

// DB returns the maintained database: base relations plus the current
// fixpoint of every derived relation.
func (inc *Incremental) DB() *Database { return inc.db }

func (inc *Incremental) countsFor(pred string) *tupleCounts {
	c := inc.counts[pred]
	if c == nil {
		c = newTupleCounts()
		inc.counts[pred] = c
	}
	return c
}

// seed computes a component's initial fixpoint. Counting components
// enumerate every derivation exactly once (the full join order emits one
// head per body binding); the rest run the normal component fixpoint.
func (inc *Incremental) seed(c *incComponent) error {
	ensureHeadsPlanned(inc.db, c.plans)
	if c.recursive || c.nonMono {
		_, err := evalStratumSemiNaive(inc.db, c.plans)
		return err
	}
	for _, pl := range c.plans {
		rel := inc.db.Get(pl.r.Head.Pred)
		cnt := inc.countsFor(pl.r.Head.Pred)
		pl.run(inc.db, -1, nil, nil, func(t Tuple) {
			if _, now := cnt.add(t, 1); now == 1 {
				rel.Insert(t)
			}
		})
	}
	return nil
}

// Apply folds one batch of base-relation changes — already applied to the
// database by the caller — into the maintained fixpoint. It returns the
// number of derived-relation set changes realized. On error the evaluator
// is marked broken (its state may be inconsistent) and refuses further use.
func (inc *Incremental) Apply(d *Delta) (int, error) {
	if inc.broken {
		return 0, fmt.Errorf("datalog: incremental evaluator unusable after earlier error")
	}
	d.normalize()
	for _, pred := range d.preds {
		if inc.idb[pred] && (len(d.added[pred]) > 0 || len(d.removed[pred]) > 0) {
			inc.broken = true
			return 0, fmt.Errorf("datalog: incremental: derived relation %s was mutated as a base relation", pred)
		}
	}
	changes := 0
	for i := range inc.comps {
		c := &inc.comps[i]
		hasAdd, hasDel := false, false
		for _, in := range c.inputs {
			if len(d.added[in]) > 0 {
				hasAdd = true
			}
			if len(d.removed[in]) > 0 {
				hasDel = true
			}
		}
		if !hasAdd && !hasDel {
			continue
		}
		switch {
		case !c.recursive && !c.nonMono:
			changes += inc.applyCounting(c, d)
		case c.nonMono || hasDel:
			n, err := inc.recompute(c, d)
			if err != nil {
				inc.broken = true
				return changes, err
			}
			changes += n
		default:
			changes += inc.propagateInserts(c, d)
		}
	}
	return changes, nil
}

// applyCounting maintains a non-recursive monotone component exactly: the
// batch's input changes enumerate the derivations gained and lost, signed
// counts accumulate per head tuple, and zero crossings realize set-level
// changes (which extend the delta for downstream components).
func (inc *Incremental) applyCounting(c *incComponent, d *Delta) int {
	acc := map[string]*tupleCounts{}
	oldViews := map[string]relView{}
	oldOf := func(pred string) relView {
		v, ok := oldViews[pred]
		if !ok {
			v = relView{rel: inc.db.Get(pred), extra: d.removed[pred]}
			if add := d.added[pred]; len(add) > 0 {
				v.hide = newTupleSet()
				for _, t := range add {
					v.hide.add(t)
				}
			}
			oldViews[pred] = v
		}
		return v
	}
	for _, pl := range c.plans {
		r := pl.r
		for i := range r.Body {
			pred := r.Body[i].Pred
			for _, t := range d.added[pred] {
				inc.deltaJoin(r, i, t, 1, oldOf, acc)
			}
			for _, t := range d.removed[pred] {
				inc.deltaJoin(r, i, t, -1, oldOf, acc)
			}
		}
	}
	changes := 0
	for _, h := range c.heads {
		a := acc[h]
		if a == nil {
			continue
		}
		rel := inc.db.Get(h)
		cnt := inc.countsFor(h)
		for _, e := range a.ents {
			if e.n == 0 {
				continue
			}
			old, now := cnt.add(e.t, e.n)
			if now < 0 {
				panic(fmt.Sprintf("datalog: incremental: negative derivation count for %s%v", h, e.t))
			}
			switch {
			case old == 0 && now > 0:
				rel.Insert(e.t)
				d.Insert(h, e.t)
				changes++
			case old > 0 && now == 0:
				cnt.drop(e.t) // keep maintained counts bounded by the live fixpoint
				rel.Delete(e.t)
				d.Delete(h, e.t)
				changes++
			}
		}
	}
	return changes
}

// deltaJoin enumerates the body bindings of r in which position di is the
// changed tuple dt, with positions before di reading the post-batch state
// and positions after di reading the pre-batch view, and accumulates the
// signed head contributions. Summed over every position of every changed
// tuple, this counts each gained or lost derivation exactly once.
func (inc *Incremental) deltaJoin(r Rule, di int, dt Tuple, sign int, oldOf func(string) relView, acc map[string]*tupleCounts) {
	lit := r.Body[di]
	if len(lit.Args) != len(dt) {
		return
	}
	b := binding{}
	for j, a := range lit.Args {
		if !a.IsVar() {
			if a.Const != dt[j] {
				return
			}
			continue
		}
		if v, ok := b[a.Var]; ok {
			if v != dt[j] {
				return
			}
			continue
		}
		b[a.Var] = dt[j]
	}
	var walk func(j int, b binding)
	walk = func(j int, b binding) {
		if j == len(r.Body) {
			for _, f := range r.Filters {
				if !evalFilter(f, b) {
					return
				}
			}
			head := make(Tuple, len(r.Head.Args))
			for k, t := range r.Head.Args {
				v, ok := b.resolve(t)
				if !ok {
					return
				}
				head[k] = v
			}
			a := acc[r.Head.Pred]
			if a == nil {
				a = newTupleCounts()
				acc[r.Head.Pred] = a
			}
			a.add(head, sign)
			return
		}
		if j == di {
			walk(j+1, b)
			return
		}
		l := r.Body[j]
		var view relView
		if j < di {
			view = relView{rel: inc.db.Get(l.Pred)}
		} else {
			view = oldOf(l.Pred)
		}
		var pos []int
		var vals []any
		for k, a := range l.Args {
			if v, ok := b.resolve(a); ok {
				pos = append(pos, k)
				vals = append(vals, v)
			}
		}
		for _, t := range view.lookup(pos, vals) {
			nb := b
			cloned := false
			ok := true
			for k, a := range l.Args {
				if !a.IsVar() {
					if t[k] != a.Const {
						ok = false
						break
					}
					continue
				}
				if v, bound := nb[a.Var]; bound {
					if v != t[k] {
						ok = false
						break
					}
					continue
				}
				if !cloned {
					nb = b.clone()
					cloned = true
				}
				nb[a.Var] = t[k]
			}
			if ok {
				walk(j+1, nb)
			}
		}
	}
	walk(0, b)
}

// propagateInserts folds an insert-only delta into a recursive monotone
// component with the compiled semi-naive plans: the incoming additions seed
// the delta relations, and newly realized head tuples keep driving the
// delta-first join orders until quiescence.
func (inc *Incremental) propagateInserts(c *incComponent, d *Delta) int {
	ensureHeadsPlanned(inc.db, c.plans)
	delta := map[string]*Relation{}
	for _, in := range c.inputs {
		list := d.added[in]
		if len(list) == 0 {
			continue
		}
		dr := NewRelation(in, len(list[0]))
		for _, t := range list {
			dr.appendRaw(t)
		}
		delta[in] = dr
	}
	changes := 0
	var out []Tuple
	collect := func(t Tuple) { out = append(out, t) }
	for {
		next := map[string]*Relation{}
		any := false
		for _, pl := range c.plans {
			rel := inc.db.Get(pl.r.Head.Pred)
			for i, l := range pl.r.Body {
				if l.Negated {
					continue
				}
				dr, ok := delta[l.Pred]
				if !ok || dr.Len() == 0 {
					continue
				}
				out = out[:0]
				pl.run(inc.db, i, dr, nil, collect)
				for _, t := range out {
					if rel.Insert(t) {
						nd := next[pl.r.Head.Pred]
						if nd == nil {
							nd = NewRelation(pl.r.Head.Pred, rel.Arity)
							next[pl.r.Head.Pred] = nd
						}
						nd.appendRaw(t)
						d.Insert(pl.r.Head.Pred, t)
						changes++
						any = true
					}
				}
			}
		}
		if !any {
			break
		}
		delta = next
	}
	return changes
}

// recompute is the fallback for components with negation or aggregates
// (any input change) and for recursive components facing deletions: clear
// the component's derived relations, re-run its fixpoint from the current
// inputs, and diff old against new so downstream components still receive
// a precise delta.
func (inc *Incremental) recompute(c *incComponent, d *Delta) (int, error) {
	ensureHeadsPlanned(inc.db, c.plans)
	old := map[string][]Tuple{}
	for _, h := range c.heads {
		rel := inc.db.Get(h)
		old[h] = rel.Tuples()
		inc.db.reset(h, rel.Arity)
	}
	if _, err := evalStratumSemiNaive(inc.db, c.plans); err != nil {
		return 0, err
	}
	changes := 0
	for _, h := range c.heads {
		newT := inc.db.Get(h).Tuples() // sorted, as is old[h]
		oldT := old[h]
		i, j := 0, 0
		for i < len(oldT) || j < len(newT) {
			switch {
			case i >= len(oldT):
				d.Insert(h, newT[j])
				changes++
				j++
			case j >= len(newT):
				d.Delete(h, oldT[i])
				changes++
				i++
			case oldT[i].Equal(newT[j]):
				i++
				j++
			case tupleLess(oldT[i], newT[j]):
				d.Delete(h, oldT[i])
				changes++
				i++
			default:
				d.Insert(h, newT[j])
				changes++
				j++
			}
		}
	}
	return changes, nil
}
