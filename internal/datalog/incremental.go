package datalog

import (
	"errors"
	"fmt"
)

// ErrInconsistentDelta reports a change batch that contradicts the
// maintained state — e.g. an insert whose tuple is not actually present in
// the base relation, or a delete the caller never applied. Apply returns it
// (wrapped with detail) *before* mutating anything, so the prior fixpoint
// stays intact and a serving loop can reject the bad tick and keep running.
var ErrInconsistentDelta = errors.New("datalog: delta inconsistent with retained state")

// This file is the cross-tick incremental evaluator: instead of re-running
// the fixpoint from a fresh snapshot on every transducer tick (O(database)
// per tick), an Incremental retains the fixpoint in its database and folds
// in each tick's base-relation delta (O(delta) amortized on monotone
// workloads). The strategy is chosen per evaluation component (an
// SCC-refined stratum, see plan.go):
//
//   - Non-recursive monotone components maintain a derivation count per
//     head tuple (the classic counting algorithm): an insert or delete on
//     an input enumerates exactly the derivations gained or lost, and a
//     head tuple appears or disappears when its count crosses zero.
//     Exactness comes from the positional old/new discipline — driving the
//     delta through body position i joins positions before i against the
//     post-batch state and positions after i against the pre-batch view.
//   - Recursive monotone components (e.g. transitive closure) propagate
//     insert-only deltas with the compiled semi-naive plans. Counting is
//     unsound under recursion (cyclic self-support), so a delta that
//     deletes one of their inputs falls back to recomputing the component
//     and diffing, which feeds precise deltas downstream.
//   - Components containing negation or aggregates recompute whenever any
//     input (including negated ones) changed, then diff.

// Delta is a batch of realized set-level changes to base relations: every
// recorded insert/delete must have actually changed membership, in the
// order it was applied. Apply normalizes away insert/delete churn on the
// same tuple, and extends the delta with the derived-relation changes it
// realizes so downstream components (and the caller, if interested) see
// the full cascade.
type Delta struct {
	added   map[string][]Tuple
	removed map[string][]Tuple
	preds   []string // first-touch order, for deterministic iteration
	// ops, when recording is enabled, preserves every change in exact
	// application order — the per-pred added/removed lists lose the
	// interleaving across predicates and across inserts vs deletes, which a
	// write-ahead changelog (and a rollback) needs to replay faithfully.
	ops    []DeltaOp
	record bool
}

// DeltaOp is one realized change in exact application order. Del selects
// delete over insert.
type DeltaOp struct {
	Del  bool
	Pred string
	T    Tuple
}

// NewDelta returns an empty change batch.
func NewDelta() *Delta {
	return &Delta{added: map[string][]Tuple{}, removed: map[string][]Tuple{}}
}

// SetRecording toggles exact-order op capture (see Ops). The transducer
// enables it in incremental mode so ticks can be journaled to a durable
// changelog and rolled back when rejected; plain evaluator callers leave it
// off and pay nothing.
func (d *Delta) SetRecording(on bool) { d.record = on }

// Ops returns the recorded changes in exact application order. The slice is
// owned by the Delta: callers must not mutate it. Note that once Apply has
// folded the batch in, the ops also include the realized derived-relation
// cascade (appended after the base changes) — changelog writers serialize
// before Apply, so they see base changes only.
func (d *Delta) Ops() []DeltaOp { return d.ops }

func (d *Delta) touch(pred string) {
	if _, ok := d.added[pred]; ok {
		return
	}
	if _, ok := d.removed[pred]; ok {
		return
	}
	d.preds = append(d.preds, pred)
}

// Insert records that t was inserted into rel (and was not present before).
func (d *Delta) Insert(rel string, t Tuple) {
	d.touch(rel)
	d.added[rel] = append(d.added[rel], t)
	if d.record {
		d.ops = append(d.ops, DeltaOp{Pred: rel, T: t})
	}
}

// Delete records that t was deleted from rel (and was present before).
func (d *Delta) Delete(rel string, t Tuple) {
	d.touch(rel)
	d.removed[rel] = append(d.removed[rel], t)
	if d.record {
		d.ops = append(d.ops, DeltaOp{Del: true, Pred: rel, T: t})
	}
}

// merge folds another batch's records into d, preserving o's deterministic
// first-touch order — the level barrier merges per-component output deltas
// this way in component order.
func (d *Delta) merge(o *Delta) {
	for _, pred := range o.preds {
		for _, t := range o.added[pred] {
			d.Insert(pred, t)
		}
		for _, t := range o.removed[pred] {
			d.Delete(pred, t)
		}
	}
}

// Empty reports whether the batch contains no changes.
func (d *Delta) Empty() bool {
	for _, ts := range d.added {
		if len(ts) > 0 {
			return false
		}
	}
	for _, ts := range d.removed {
		if len(ts) > 0 {
			return false
		}
	}
	return true
}

// normalize nets out same-tuple churn (insert→delete→insert within one
// batch), leaving at most one signed change per tuple — the precondition
// for the counting algebra and for old-view reconstruction.
func (d *Delta) normalize() {
	for _, pred := range d.preds {
		add, rem := d.added[pred], d.removed[pred]
		if len(add) == 0 || len(rem) == 0 {
			continue // realized changes on one side cannot repeat a tuple
		}
		net := newTupleCounts()
		for _, t := range add {
			net.add(t, 1)
		}
		for _, t := range rem {
			net.add(t, -1)
		}
		var na, nr []Tuple
		for _, e := range net.ents {
			switch {
			case e.n > 0:
				na = append(na, e.t)
			case e.n < 0:
				nr = append(nr, e.t)
			}
		}
		d.added[pred], d.removed[pred] = na, nr
	}
}

// relView is a relation as of a point in the batch: the current relation
// minus tuples added by the batch plus tuples it removed (the pre-batch
// "old" view), or just the current relation (the "new" view).
type relView struct {
	rel   *Relation
	hide  *tupleSet // batch-added tuples, excluded from the old view
	extra []Tuple   // batch-removed tuples, re-included in the old view
}

func (v relView) lookup(pos []int, vals []any) []Tuple {
	var out []Tuple
	if v.rel != nil {
		if len(pos) == 0 {
			// Unconstrained enumeration: scan insertion order directly
			// (Lookup(nil) would copy and sort the whole relation).
			v.rel.scan(func(t Tuple) bool {
				if v.hide == nil || !v.hide.has(t) {
					out = append(out, t)
				}
				return true
			})
		} else {
			for _, t := range v.rel.Lookup(pos, vals) {
				if v.hide == nil || !v.hide.has(t) {
					out = append(out, t)
				}
			}
		}
	}
	for _, t := range v.extra {
		if projEqual(t, pos, vals) {
			out = append(out, t)
		}
	}
	return out
}

// incComponent classifies one evaluation component for maintenance.
type incComponent struct {
	plans     []*rulePlan
	heads     []string // distinct head preds, first-appearance order
	headSet   map[string]bool
	inputs    []string // distinct non-head body preds, first-appearance order
	inputSet  map[string]bool
	recursive bool // some positive body literal reads a component head
	nonMono   bool // some rule negates or aggregates
}

// Incremental maintains a program's fixpoint across base-relation change
// batches. The database handed to NewIncremental becomes the maintained
// state: base relations are mutated by the caller (reporting realized
// changes through Apply), derived relations belong to the evaluator.
type Incremental struct {
	prog   *Program
	db     *Database
	comps  []incComponent
	counts map[string]*tupleCounts // derivation counts for counting comps
	idb    map[string]bool
	broken bool
	// forceRecompute disables the DRed path, restoring the historical
	// recompute-and-diff fallback for recursive deletions — kept as the
	// baseline the delete-heavy benchmarks and tests compare against.
	forceRecompute bool
}

// newIncrementalCore compiles p and classifies its evaluation components
// without touching db — the shared front half of NewIncremental (which then
// seeds the fixpoint) and RestoreIncremental (which adopts a persisted one).
func newIncrementalCore(p *Program, db *Database) (*Incremental, error) {
	if err := p.Prepare(); err != nil {
		return nil, err
	}
	inc := &Incremental{prog: p, db: db, counts: map[string]*tupleCounts{}, idb: p.idbPreds()}
	for _, plans := range p.prep.strata {
		c := incComponent{plans: plans, headSet: map[string]bool{}, inputSet: map[string]bool{}}
		for _, pl := range plans {
			if !c.headSet[pl.r.Head.Pred] {
				c.headSet[pl.r.Head.Pred] = true
				c.heads = append(c.heads, pl.r.Head.Pred)
			}
			if pl.r.Agg != "" {
				c.nonMono = true
			}
		}
		for _, pl := range plans {
			for _, l := range pl.r.Body {
				if l.Negated {
					c.nonMono = true
				}
				if c.headSet[l.Pred] {
					if !l.Negated {
						c.recursive = true
					}
					continue
				}
				if !c.inputSet[l.Pred] {
					c.inputSet[l.Pred] = true
					c.inputs = append(c.inputs, l.Pred)
				}
			}
		}
		inc.comps = append(inc.comps, c)
	}
	return inc, nil
}

// NewIncremental compiles p, classifies its evaluation components, and
// seeds the fixpoint (with derivation counts where counting applies) into
// db. Derived relations must not contain base tuples.
func NewIncremental(p *Program, db *Database) (*Incremental, error) {
	inc, err := newIncrementalCore(p, db)
	if err != nil {
		return nil, err
	}
	for pred := range inc.idb {
		if r := db.Get(pred); r != nil && r.Len() > 0 {
			return nil, fmt.Errorf("datalog: incremental: relation %s is derived by rules but already holds base tuples", pred)
		}
	}
	preExisting := map[string]bool{}
	for pred := range inc.idb {
		if db.Get(pred) != nil {
			preExisting[pred] = true
		}
	}
	parts := p.workers() // one snapshot governs the whole seeding pass
	for i := range inc.comps {
		if err := inc.seed(&inc.comps[i], parts); err != nil {
			// Roll the partial materialization back: earlier components
			// already seeded their fixpoints into db, and leaving them
			// behind would serve the caller stale derived tuples as base
			// facts. Relations seeding itself registered are deregistered
			// (a retry may use a different arity); pre-existing ones were
			// verified empty above, so clearing restores the pre-call
			// state exactly.
			for pred := range inc.idb {
				if !preExisting[pred] {
					db.remove(pred)
				} else if rel := db.Get(pred); rel != nil {
					rel.Clear()
				}
			}
			return nil, err
		}
	}
	return inc, nil
}

// DB returns the maintained database: base relations plus the current
// fixpoint of every derived relation.
func (inc *Incremental) DB() *Database { return inc.db }

// Broken reports whether an earlier Apply failed past the validation phase,
// leaving the maintained fixpoint inconsistent. A rejected delta that was
// caught pre-mutation (ErrInconsistentDelta with zero realized changes) does
// NOT break the evaluator — callers distinguish a droppable bad tick from a
// poisoned evaluator with this.
func (inc *Incremental) Broken() bool { return inc.broken }

func (inc *Incremental) countsFor(pred string) *tupleCounts {
	c := inc.counts[pred]
	if c == nil {
		c = newTupleCounts()
		inc.counts[pred] = c
	}
	return c
}

// seed computes a component's initial fixpoint. Counting components
// enumerate every derivation exactly once (the full join order emits one
// head per body binding); the rest run the normal component fixpoint.
func (inc *Incremental) seed(c *incComponent, parts int) error {
	ensureHeadsPlanned(inc.db, c.plans)
	if c.recursive || c.nonMono {
		_, err := evalStratumSemiNaive(inc.db, c.plans, parts)
		return err
	}
	for _, pl := range c.plans {
		rel := inc.db.Get(pl.r.Head.Pred)
		cnt := inc.countsFor(pl.r.Head.Pred)
		pl.run(inc.db, -1, nil, nil, func(t Tuple) {
			if _, now := cnt.add(t, 1); now == 1 {
				rel.Insert(t)
			}
		})
	}
	return nil
}

// Apply folds one batch of base-relation changes — already applied to the
// database by the caller — into the maintained fixpoint. It returns the
// number of derived-relation set changes realized. On error the evaluator
// is marked broken (its state may be inconsistent) and refuses further use.
//
// Components are processed level by level along the component DAG
// (prepared.levels). Within a level, the touched components are independent
// and run concurrently when the program's parallelism allows it: each
// component reads the shared input delta and writes its realized changes to
// a private output delta, merged into the batch in component order at the
// level barrier — so parallel and serial application realize identical
// deltas and identical relation contents.
func (inc *Incremental) Apply(d *Delta) (int, error) {
	if inc.broken {
		return 0, fmt.Errorf("datalog: incremental evaluator unusable after earlier error")
	}
	d.normalize()
	for _, pred := range d.preds {
		if inc.idb[pred] && (len(d.added[pred]) > 0 || len(d.removed[pred]) > 0) {
			// Nothing has been mutated yet: the prior fixpoint is intact, so
			// the evaluator stays usable and the caller can drop the tick.
			return 0, fmt.Errorf("%w: derived relation %s was mutated as a base relation", ErrInconsistentDelta, pred)
		}
	}
	if err := inc.validateDelta(d); err != nil {
		return 0, err // pre-mutation: prior fixpoint intact, evaluator usable
	}
	// One snapshot of the parallelism knob governs the whole batch: both
	// the per-level component fan-out and the partition count of
	// intra-component drives (semi-naive rounds, DRed phases).
	workers := inc.prog.workers()
	changes := 0
	for _, level := range inc.prog.prep.levels {
		var active []int
		for _, ci := range level {
			c := &inc.comps[ci]
			if add, del := c.touchedBy(d); add || del {
				active = append(active, ci)
			}
		}
		if len(active) == 0 {
			continue
		}
		// Tiny batches run inline: a typical transducer tick realizes a
		// handful of changes, and goroutine + warming overhead would dwarf
		// the O(delta) maintenance work.
		deltaSize := 0
		for _, ci := range active {
			for _, in := range inc.comps[ci].inputs {
				deltaSize += len(d.added[in]) + len(d.removed[in])
			}
		}
		if workers <= 1 || len(active) == 1 || deltaSize < parallelMinDeltaTuples {
			// Inline component order: the worker budget goes to partitioning
			// inside each component instead — a tiny input delta can still
			// cascade into huge per-round deltas (one retracted edge of a
			// large closure), which is exactly when sharding pays.
			for _, ci := range active {
				n, err := inc.applyComponent(&inc.comps[ci], d, d, workers)
				if err != nil {
					// A consistency error raised before any component realized
					// a change is pre-mutation by construction (each strategy
					// validates before committing): the fixpoint is intact and
					// the evaluator stays usable. Past that point the batch is
					// half-applied and the evaluator must refuse further use.
					if errors.Is(err, ErrInconsistentDelta) && changes == 0 {
						return 0, err
					}
					inc.broken = true
					return changes, err
				}
				changes += n
			}
			continue
		}
		for _, ci := range active {
			inc.warmComponent(&inc.comps[ci], d)
		}
		outs := make([]*Delta, len(active))
		ns := make([]int, len(active))
		errs := make([]error, len(active))
		// Fanned-out components run unpartitioned (parts 1): the level
		// already saturates the worker budget.
		runWorkers(len(active), workers, func(k int) {
			outs[k] = NewDelta()
			ns[k], errs[k] = inc.applyComponent(&inc.comps[active[k]], d, outs[k], 1)
		})
		for k := range active {
			if errs[k] != nil {
				inc.broken = true
				return changes, errs[k]
			}
			d.merge(outs[k])
			changes += ns[k]
		}
	}
	return changes, nil
}

// validateDelta cross-checks a normalized batch against the database the
// caller claims to have applied it to: every recorded insert must be
// present and every recorded delete absent. It catches the realistic
// corruption classes — a caller that recorded changes without applying
// them, or applied them twice — before any maintenance state is touched.
// (A caller that re-reports an unchanged tuple as "realized" is
// undetectable here; the counting components catch that class when the
// derivation counts would cross below zero, also before mutating.)
func (inc *Incremental) validateDelta(d *Delta) error {
	for _, pred := range d.preds {
		rel := inc.db.Get(pred)
		for _, t := range d.added[pred] {
			if rel == nil || !rel.Contains(t) {
				return fmt.Errorf("%w: recorded insert %s%v is not present in the base relation", ErrInconsistentDelta, pred, t)
			}
		}
		for _, t := range d.removed[pred] {
			if rel != nil && rel.Contains(t) {
				return fmt.Errorf("%w: recorded delete %s%v is still present in the base relation", ErrInconsistentDelta, pred, t)
			}
		}
	}
	return nil
}

// touchedBy reports whether the batch changes any of the component's inputs.
func (c *incComponent) touchedBy(d *Delta) (hasAdd, hasDel bool) {
	for _, in := range c.inputs {
		if len(d.added[in]) > 0 {
			hasAdd = true
		}
		if len(d.removed[in]) > 0 {
			hasDel = true
		}
	}
	return hasAdd, hasDel
}

// dredReady reports whether every rule in the component carries a compiled
// support plan (always true for recursive monotone components; defensive).
func (c *incComponent) dredReady() bool {
	for _, pl := range c.plans {
		if pl.support == nil {
			return false
		}
	}
	return true
}

// applyComponent folds the batch into one component with the maintenance
// strategy its class calls for, reading input changes from in and recording
// realized head changes into out (serial callers pass the same Delta for
// both). parts is the intra-component partition budget for the strategies
// built on semi-naive drives (insert propagation, DRed, recompute).
func (inc *Incremental) applyComponent(c *incComponent, in, out *Delta, parts int) (int, error) {
	_, hasDel := c.touchedBy(in)
	switch {
	case c.nonMono:
		return inc.recompute(c, out, parts)
	case !c.recursive:
		return inc.applyCounting(c, in, out)
	case hasDel:
		if inc.forceRecompute || !c.dredReady() {
			return inc.recompute(c, out, parts)
		}
		return inc.applyDRed(c, in, out, parts), nil
	default:
		return inc.propagateInserts(c, in, parts, func(pred string, t Tuple) {
			out.Insert(pred, t)
		}), nil
	}
}

// warmComponent pre-builds, before a parallel fan-out, every shared access
// path the maintenance strategy this component will take for batch d can
// lazily construct. Support plans are warmed only when the DRed path will
// actually run — their indexes, once built, are maintained by every future
// mutation of the probed relations.
func (inc *Incremental) warmComponent(c *incComponent, d *Delta) {
	if !c.recursive && !c.nonMono {
		warmForCounting(inc.db, c.plans)
		return
	}
	_, hasDel := c.touchedBy(d)
	dred := !c.nonMono && hasDel && !inc.forceRecompute && c.dredReady()
	warmForPlans(inc.db, c.plans, dred)
}

// applyCounting maintains a non-recursive monotone component exactly: the
// batch's input changes enumerate the derivations gained and lost, signed
// counts accumulate per head tuple, and zero crossings realize set-level
// changes (which extend the delta for downstream components). The commit is
// two-phase: the accumulated deltas are validated against the maintained
// counts first (a crossing below zero means the batch contradicts retained
// state), so an inconsistent tick surfaces as ErrInconsistentDelta before
// the component mutates anything.
func (inc *Incremental) applyCounting(c *incComponent, in, out *Delta) (int, error) {
	acc := map[string]*tupleCounts{}
	oldViews := map[string]relView{}
	oldOf := func(pred string) relView {
		v, ok := oldViews[pred]
		if !ok {
			v = relView{rel: inc.db.Get(pred), extra: in.removed[pred]}
			if add := in.added[pred]; len(add) > 0 {
				v.hide = newTupleSet()
				for _, t := range add {
					v.hide.add(t)
				}
			}
			oldViews[pred] = v
		}
		return v
	}
	for _, pl := range c.plans {
		r := pl.r
		for i := range r.Body {
			pred := r.Body[i].Pred
			for _, t := range in.added[pred] {
				inc.deltaJoin(r, i, t, 1, oldOf, acc)
			}
			for _, t := range in.removed[pred] {
				inc.deltaJoin(r, i, t, -1, oldOf, acc)
			}
		}
	}
	// Phase 1: validate every prospective count against the maintained
	// state without mutating — a crossing below zero means the delta claims
	// to retract derivations the component never recorded.
	for _, h := range c.heads {
		a := acc[h]
		if a == nil {
			continue
		}
		cnt := inc.countsFor(h)
		for _, e := range a.ents {
			if e.n != 0 && cnt.get(e.t)+e.n < 0 {
				return 0, fmt.Errorf("%w: derivation count for %s%v would fall below zero", ErrInconsistentDelta, h, e.t)
			}
		}
	}
	// Phase 2: commit.
	changes := 0
	for _, h := range c.heads {
		a := acc[h]
		if a == nil {
			continue
		}
		rel := inc.db.Get(h)
		cnt := inc.countsFor(h)
		for _, e := range a.ents {
			if e.n == 0 {
				continue
			}
			old, now := cnt.add(e.t, e.n)
			switch {
			case old == 0 && now > 0:
				rel.Insert(e.t)
				out.Insert(h, e.t)
				changes++
			case old > 0 && now == 0:
				cnt.drop(e.t) // keep maintained counts bounded by the live fixpoint
				rel.Delete(e.t)
				out.Delete(h, e.t)
				changes++
			}
		}
	}
	return changes, nil
}

// deltaJoin enumerates the body bindings of r in which position di is the
// changed tuple dt, with positions before di reading the post-batch state
// and positions after di reading the pre-batch view, and accumulates the
// signed head contributions. Summed over every position of every changed
// tuple, this counts each gained or lost derivation exactly once.
func (inc *Incremental) deltaJoin(r Rule, di int, dt Tuple, sign int, oldOf func(string) relView, acc map[string]*tupleCounts) {
	lit := r.Body[di]
	if len(lit.Args) != len(dt) {
		return
	}
	b := binding{}
	for j, a := range lit.Args {
		if !a.IsVar() {
			if a.Const != dt[j] {
				return
			}
			continue
		}
		if v, ok := b[a.Var]; ok {
			if v != dt[j] {
				return
			}
			continue
		}
		b[a.Var] = dt[j]
	}
	var walk func(j int, b binding)
	walk = func(j int, b binding) {
		if j == len(r.Body) {
			for _, f := range r.Filters {
				if !evalFilter(f, b) {
					return
				}
			}
			head := make(Tuple, len(r.Head.Args))
			for k, t := range r.Head.Args {
				v, ok := b.resolve(t)
				if !ok {
					return
				}
				head[k] = v
			}
			a := acc[r.Head.Pred]
			if a == nil {
				a = newTupleCounts()
				acc[r.Head.Pred] = a
			}
			a.add(head, sign)
			return
		}
		if j == di {
			walk(j+1, b)
			return
		}
		l := r.Body[j]
		var view relView
		if j < di {
			view = relView{rel: inc.db.Get(l.Pred)}
		} else {
			view = oldOf(l.Pred)
		}
		var pos []int
		var vals []any
		for k, a := range l.Args {
			if v, ok := b.resolve(a); ok {
				pos = append(pos, k)
				vals = append(vals, v)
			}
		}
		for _, t := range view.lookup(pos, vals) {
			nb := b
			cloned := false
			ok := true
			for k, a := range l.Args {
				if !a.IsVar() {
					if t[k] != a.Const {
						ok = false
						break
					}
					continue
				}
				if v, bound := nb[a.Var]; bound {
					if v != t[k] {
						ok = false
						break
					}
					continue
				}
				if !cloned {
					nb = b.clone()
					cloned = true
				}
				nb[a.Var] = t[k]
			}
			if ok {
				walk(j+1, nb)
			}
		}
	}
	walk(0, b)
}

// driveRounds is the shared semi-naive round skeleton behind insert
// propagation and both DRed phases: each round drives every plan's
// positive body literals from the per-predicate delta relations (augmented
// with the pre-batch overlay when aug is non-nil, and sharded across parts
// workers when a delta is large enough) and accept decides, per emitted
// head tuple, whether the tuple's consequence was realized and should
// drive the next round. Emissions reach accept serially in deterministic
// (serial-execution) order, so accept may freely mutate relations and the
// overlay between drives. Rounds repeat until no tuple is accepted.
func driveRounds(db *Database, plans []*rulePlan, delta map[string]*Relation,
	aug *augOverlay, parts int,
	accept func(h string, rel *Relation, t Tuple) bool) {
	var buf []Tuple
	collect := func(t Tuple) { buf = append(buf, t) }
	for len(delta) > 0 {
		next := map[string]*Relation{}
		for _, pl := range plans {
			h := pl.r.Head.Pred
			rel := db.Get(h)
			for i, l := range pl.r.Body {
				if l.Negated {
					continue
				}
				dr, ok := delta[l.Pred]
				if !ok || dr.Len() == 0 {
					continue
				}
				buf = buf[:0]
				driveDelta(db, pl, i, dr, aug, parts, collect)
				for _, t := range buf {
					if accept(h, rel, t) {
						nd := next[h]
						if nd == nil {
							nd = NewRelation(h, rel.Arity)
							next[h] = nd
						}
						nd.appendRaw(t)
					}
				}
			}
		}
		delta = next
	}
}

// deltaRelations materializes a Delta's per-predicate tuple lists (added
// or removed, selected by pick) for the given predicates as scan-only
// relations seeding a driveRounds loop.
func deltaRelations(preds []string, pick func(pred string) []Tuple) map[string]*Relation {
	delta := map[string]*Relation{}
	for _, pred := range preds {
		list := pick(pred)
		if len(list) == 0 {
			continue
		}
		dr := NewRelation(pred, len(list[0]))
		for _, t := range list {
			dr.appendRaw(t)
		}
		delta[pred] = dr
	}
	return delta
}

// propagateInserts folds an insert-only delta into a recursive monotone
// component with the compiled semi-naive plans: the incoming additions seed
// the delta relations, and newly realized head tuples keep driving the
// delta-first join orders until quiescence, sharded across parts workers
// when rounds grow large. Every realized insert is handed to record (the
// pure-insert path records straight into the output delta; DRed defers
// recording to net insertions against its over-deletions).
func (inc *Incremental) propagateInserts(c *incComponent, in *Delta, parts int, record func(pred string, t Tuple)) int {
	ensureHeadsPlanned(inc.db, c.plans)
	changes := 0
	driveRounds(inc.db, c.plans,
		deltaRelations(c.inputs, func(pred string) []Tuple { return in.added[pred] }),
		nil, parts,
		func(h string, rel *Relation, t Tuple) bool {
			if !rel.Insert(t) {
				return false
			}
			record(h, t)
			changes++
			return true
		})
	return changes
}

// recompute is the fallback for components with negation or aggregates
// (any input change): clear the component's derived relations in place,
// re-run its fixpoint from the current inputs, and diff old against new so
// downstream components still receive a precise delta. (It was also the
// pre-DRed fallback for recursive deletions, retained behind
// forceRecompute as the benchmark baseline.)
func (inc *Incremental) recompute(c *incComponent, out *Delta, parts int) (int, error) {
	ensureHeadsPlanned(inc.db, c.plans)
	old := map[string][]Tuple{}
	for _, h := range c.heads {
		rel := inc.db.Get(h)
		old[h] = rel.Tuples()
		rel.Clear() // in place: the *Relation stays valid for concurrent readers of the db map
	}
	if _, err := evalStratumSemiNaive(inc.db, c.plans, parts); err != nil {
		return 0, err
	}
	changes := 0
	for _, h := range c.heads {
		newT := inc.db.Get(h).Tuples() // sorted, as is old[h]
		oldT := old[h]
		i, j := 0, 0
		for i < len(oldT) || j < len(newT) {
			switch {
			case i >= len(oldT):
				out.Insert(h, newT[j])
				changes++
				j++
			case j >= len(newT):
				out.Delete(h, oldT[i])
				changes++
				i++
			case oldT[i].Equal(newT[j]):
				i++
				j++
			case tupleLess(oldT[i], newT[j]):
				out.Delete(h, oldT[i])
				changes++
				i++
			default:
				out.Insert(h, newT[j])
				changes++
				j++
			}
		}
	}
	return changes, nil
}
