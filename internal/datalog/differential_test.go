package datalog

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// This file is the differential property test guarding the compiled
// evaluator: random small programs (chains, cycles, multi-way joins,
// stratified negation, aggregates, filters) run through both the planned
// semi-naive Eval and the interpretive naive EvalNaive, and the fixpoints
// must be identical relation by relation. A planner or executor bug that
// changes semantics, not just speed, fails here.

// randFact returns a random constant from a small mixed-type domain.
func randConst(r *rand.Rand) any {
	if r.Intn(2) == 0 {
		return string(rune('a' + r.Intn(4)))
	}
	return int64(r.Intn(4))
}

// randEDB populates edge/2, attr/2 (entity, numeric value) and node/1.
func randEDB(r *rand.Rand) *Database {
	db := NewDatabase()
	edge := db.Ensure("edge", 2)
	for i := 0; i < 3+r.Intn(10); i++ {
		edge.Insert(Tuple{randConst(r), randConst(r)})
	}
	attr := db.Ensure("attr", 2)
	for i := 0; i < 2+r.Intn(6); i++ {
		attr.Insert(Tuple{randConst(r), int64(r.Intn(10))})
	}
	node := db.Ensure("node", 1)
	for i := 0; i < 2+r.Intn(5); i++ {
		node.Insert(Tuple{randConst(r)})
	}
	return db
}

// randRules builds a stratifiable random program in layers: a recursive
// positive layer over the EDB, an optional negation layer over it, and an
// optional aggregate layer on top.
func randRules(r *rand.Rand) []Rule {
	var rules []Rule

	// Layer 1: transitive closure with randomized recursion shape.
	rules = append(rules, Rule{
		Head: Atom{Pred: "p1", Args: []Term{V("x"), V("y")}},
		Body: []Literal{{Atom: Atom{Pred: "edge", Args: []Term{V("x"), V("y")}}}},
	})
	switch r.Intn(3) {
	case 0: // left-recursive
		rules = append(rules, Rule{
			Head: Atom{Pred: "p1", Args: []Term{V("x"), V("z")}},
			Body: []Literal{
				{Atom: Atom{Pred: "p1", Args: []Term{V("x"), V("y")}}},
				{Atom: Atom{Pred: "edge", Args: []Term{V("y"), V("z")}}},
			},
		})
	case 1: // right-recursive
		rules = append(rules, Rule{
			Head: Atom{Pred: "p1", Args: []Term{V("x"), V("z")}},
			Body: []Literal{
				{Atom: Atom{Pred: "edge", Args: []Term{V("x"), V("y")}}},
				{Atom: Atom{Pred: "p1", Args: []Term{V("y"), V("z")}}},
			},
		})
	default: // nonlinear (doubling)
		rules = append(rules, Rule{
			Head: Atom{Pred: "p1", Args: []Term{V("x"), V("z")}},
			Body: []Literal{
				{Atom: Atom{Pred: "p1", Args: []Term{V("x"), V("y")}}},
				{Atom: Atom{Pred: "p1", Args: []Term{V("y"), V("z")}}},
			},
		})
	}
	// Symmetric-edge join: the second literal is fully bound when
	// scheduled — exercises the plan's existence-check (Contains) path.
	if r.Intn(2) == 0 {
		rules = append(rules, Rule{
			Head: Atom{Pred: "sym", Args: []Term{V("x"), V("y")}},
			Body: []Literal{
				{Atom: Atom{Pred: "edge", Args: []Term{V("x"), V("y")}}},
				{Atom: Atom{Pred: "edge", Args: []Term{V("y"), V("x")}}},
			},
		})
	}
	// Self-loop: a variable repeated within one literal — exercises the
	// plan's within-literal equality checks.
	if r.Intn(2) == 0 {
		rules = append(rules, Rule{
			Head: Atom{Pred: "loop", Args: []Term{V("x")}},
			Body: []Literal{{Atom: Atom{Pred: "p1", Args: []Term{V("x"), V("x")}}}},
		})
	}
	// Random multi-way join with an attribute filter.
	if r.Intn(2) == 0 {
		rules = append(rules, Rule{
			Head: Atom{Pred: "p2", Args: []Term{V("x"), V("v")}},
			Body: []Literal{
				{Atom: Atom{Pred: "p1", Args: []Term{V("x"), V("y")}}},
				{Atom: Atom{Pred: "attr", Args: []Term{V("y"), V("v")}}},
			},
			Filters: []Filter{{Op: OpGe, L: V("v"), R: C(int64(r.Intn(5)))}},
		})
	}
	// Layer 2: stratified negation over layer 1.
	if r.Intn(2) == 0 {
		rules = append(rules, Rule{
			Head: Atom{Pred: "q", Args: []Term{V("x")}},
			Body: []Literal{
				{Atom: Atom{Pred: "node", Args: []Term{V("x")}}},
				{Atom: Atom{Pred: "p1", Args: []Term{C(randConst(r)), V("x")}}, Negated: true},
			},
		})
	}
	// Layer 3: aggregates over the closure and attributes.
	switch r.Intn(4) {
	case 0:
		rules = append(rules, Rule{
			Head:   Atom{Pred: "fanout", Args: []Term{V("x"), V("y")}},
			Body:   []Literal{{Atom: Atom{Pred: "p1", Args: []Term{V("x"), V("y")}}}},
			Agg:    AggCount,
			AggVar: "y",
		})
	case 1:
		rules = append(rules, Rule{
			Head: Atom{Pred: "wsum", Args: []Term{V("x"), V("v")}},
			Body: []Literal{
				{Atom: Atom{Pred: "p1", Args: []Term{V("x"), V("y")}}},
				{Atom: Atom{Pred: "attr", Args: []Term{V("y"), V("v")}}},
			},
			Agg:    AggSum,
			AggVar: "v",
		})
	case 2:
		rules = append(rules, Rule{
			Head:   Atom{Pred: "best", Args: []Term{V("x"), V("v")}},
			Body:   []Literal{{Atom: Atom{Pred: "attr", Args: []Term{V("x"), V("v")}}}},
			Agg:    AggMax,
			AggVar: "v",
		})
	}
	return rules
}

// runBoth evaluates the same program over clones of the same EDB with the
// compiled and the naive evaluator and reports any divergence.
func runBoth(rules []Rule, db *Database) error {
	p, err := NewProgram(rules...)
	if err != nil {
		return fmt.Errorf("program rejected: %w", err)
	}
	dbC, dbN := db.Clone(), db.Clone()
	nC, err := p.Eval(dbC)
	if err != nil {
		return fmt.Errorf("Eval: %w", err)
	}
	nN, err := p.EvalNaive(dbN)
	if err != nil {
		return fmt.Errorf("EvalNaive: %w", err)
	}
	if nC != nN {
		return fmt.Errorf("derived counts diverge: compiled=%d naive=%d", nC, nN)
	}
	names := map[string]bool{}
	for _, n := range dbC.Names() {
		names[n] = true
	}
	for _, n := range dbN.Names() {
		names[n] = true
	}
	for n := range names {
		rc, rn := dbC.Get(n), dbN.Get(n)
		if (rc == nil) != (rn == nil) {
			return fmt.Errorf("relation %s exists in one fixpoint only", n)
		}
		if rc == nil {
			continue
		}
		tc, tn := rc.Tuples(), rn.Tuples()
		if len(tc) != len(tn) {
			return fmt.Errorf("relation %s: %d vs %d tuples\ncompiled: %v\nnaive:    %v", n, len(tc), len(tn), tc, tn)
		}
		for i := range tc {
			if !tc[i].Equal(tn[i]) {
				return fmt.Errorf("relation %s diverges at %d: %v vs %v", n, i, tc[i], tn[i])
			}
		}
	}
	return nil
}

// TestDifferentialCompiledVsNaive is the headline property: for random
// programs and databases, compiled semi-naive evaluation computes exactly
// the interpretive naive fixpoint.
func TestDifferentialCompiledVsNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rules := randRules(r)
		db := randEDB(r)
		if err := runBoth(rules, db); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialPreparedDerive checks that the prepared (pre-bound
// parameter) derivation path agrees with per-call Derive on the same rule
// with constants substituted.
func TestDifferentialPreparedDerive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randEDB(r)
		p, err := NewProgram(randRules(r)...)
		if err != nil {
			return false
		}
		if _, err := p.Eval(db); err != nil {
			return false
		}
		pivot := randConst(r)
		dynamic := Rule{
			Head: Atom{Pred: "__send", Args: []Term{V("y")}},
			Body: []Literal{{Atom: Atom{Pred: "p1", Args: []Term{C(pivot), V("y")}}}},
		}
		param := Rule{
			Head: Atom{Pred: "__send", Args: []Term{V("y")}},
			Body: []Literal{{Atom: Atom{Pred: "p1", Args: []Term{V("pid"), V("y")}}}},
		}
		want, err := Derive(db, dynamic)
		if err != nil {
			t.Logf("seed %d: Derive: %v", seed, err)
			return false
		}
		pr, err := PrepareRule(param, "pid")
		if err != nil {
			t.Logf("seed %d: PrepareRule: %v", seed, err)
			return false
		}
		got, err := pr.Derive(db, map[string]any{"pid": pivot})
		if err != nil {
			t.Logf("seed %d: prepared Derive: %v", seed, err)
			return false
		}
		sortTuples(want)
		sortTuples(got)
		if len(want) != len(got) {
			t.Logf("seed %d: %v vs %v", seed, want, got)
			return false
		}
		for i := range want {
			if !want[i].Equal(got[i]) {
				t.Logf("seed %d: %v vs %v", seed, want, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// diffDatabases reports the first relation on which two fixpoints diverge.
func diffDatabases(label string, a, b *Database) error {
	names := map[string]bool{}
	for _, n := range a.Names() {
		names[n] = true
	}
	for _, n := range b.Names() {
		names[n] = true
	}
	for n := range names {
		ra, rb := a.Get(n), b.Get(n)
		var ta, tb []Tuple
		if ra != nil {
			ta = ra.Tuples()
		}
		if rb != nil {
			tb = rb.Tuples()
		}
		if len(ta) != len(tb) {
			return fmt.Errorf("%s: relation %s: %d vs %d tuples\nleft:  %v\nright: %v", label, n, len(ta), len(tb), ta, tb)
		}
		for i := range ta {
			if !ta[i].Equal(tb[i]) {
				return fmt.Errorf("%s: relation %s diverges at %d: %v vs %v", label, n, i, ta[i], tb[i])
			}
		}
	}
	return nil
}

// edbPreds are the base relations the random tick sequences mutate.
var edbPreds = []string{"edge", "attr", "node"}

// randEDBTuple draws a tuple for one of the base relations.
func randEDBTuple(r *rand.Rand, pred string) Tuple {
	switch pred {
	case "edge":
		return Tuple{randConst(r), randConst(r)}
	case "attr":
		return Tuple{randConst(r), int64(r.Intn(10))}
	default:
		return Tuple{randConst(r)}
	}
}

// TestDifferentialThreeWayIncremental is this PR's headline property: across
// randomized tick sequences with interleaved inserts AND deletes, the
// cross-tick incremental evaluator maintains exactly the fixpoint that both
// the compiled semi-naive Eval and the interpretive EvalNaive compute from
// scratch on the same base data. The failing seed is printed for
// reproduction.
func TestDifferentialThreeWayIncremental(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rules := randRules(r)
		p, err := NewProgram(rules...)
		if err != nil {
			t.Logf("seed %d: program rejected: %v", seed, err)
			return false
		}
		edb := randEDB(r) // pure base data, never touched by evaluation
		inc, err := NewIncremental(p, edb.Clone())
		if err != nil {
			t.Logf("seed %d: NewIncremental: %v", seed, err)
			return false
		}
		for tick := 0; tick < 6; tick++ {
			// Random base changes: inserts of fresh tuples and deletes of
			// existing ones, mirrored into the reference EDB and the
			// incremental database, with realized changes recorded.
			delta := NewDelta()
			for op := 0; op < 1+r.Intn(4); op++ {
				pred := edbPreds[r.Intn(len(edbPreds))]
				ref, live := edb.Get(pred), inc.DB().Get(pred)
				if r.Intn(2) == 0 {
					tup := randEDBTuple(r, pred)
					was := ref.Insert(tup)
					if live.Insert(tup) != was {
						t.Logf("seed %d tick %d: base insert diverged on %s%v", seed, tick, pred, tup)
						return false
					}
					if was {
						delta.Insert(pred, tup)
					}
				} else if existing := ref.Tuples(); len(existing) > 0 {
					tup := existing[r.Intn(len(existing))]
					ref.Delete(tup)
					if !live.Delete(tup) {
						t.Logf("seed %d tick %d: base delete diverged on %s%v", seed, tick, pred, tup)
						return false
					}
					delta.Delete(pred, tup)
				}
			}
			if _, err := inc.Apply(delta); err != nil {
				t.Logf("seed %d tick %d: Apply: %v", seed, tick, err)
				return false
			}
			refC := edb.Clone()
			if _, err := p.Eval(refC); err != nil {
				t.Logf("seed %d tick %d: Eval: %v", seed, tick, err)
				return false
			}
			if err := diffDatabases("incremental vs compiled", inc.DB(), refC); err != nil {
				t.Logf("seed %d tick %d: %v", seed, tick, err)
				return false
			}
			refN := edb.Clone()
			if _, err := p.EvalNaive(refN); err != nil {
				t.Logf("seed %d tick %d: EvalNaive: %v", seed, tick, err)
				return false
			}
			if err := diffDatabases("incremental vs naive", inc.DB(), refN); err != nil {
				t.Logf("seed %d tick %d: %v", seed, tick, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalRejectsDerivedMutation: feeding a batch that claims to
// have mutated a derived relation must error rather than corrupt counts —
// and, because the error is raised before anything is mutated, the prior
// fixpoint stays intact and the evaluator keeps serving good ticks
// (graceful degradation: a serving loop rejects the bad tick and moves on).
func TestIncrementalRejectsDerivedMutation(t *testing.T) {
	p, err := NewProgram(Rule{
		Head: Atom{Pred: "p1", Args: []Term{V("x"), V("y")}},
		Body: []Literal{{Atom: Atom{Pred: "edge", Args: []Term{V("x"), V("y")}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	db.Ensure("edge", 2).Insert(Tuple{"a", "b"})
	inc, err := NewIncremental(p, db)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDelta()
	d.Insert("p1", Tuple{"x", "y"})
	if _, err := inc.Apply(d); !errors.Is(err, ErrInconsistentDelta) {
		t.Fatalf("mutating a derived relation as base must fail with ErrInconsistentDelta, got %v", err)
	}
	if !inc.DB().Get("p1").Contains(Tuple{"a", "b"}) {
		t.Fatal("prior fixpoint must stay intact after a rejected batch")
	}
	// The evaluator stays usable: a subsequent good tick applies normally.
	db.Get("edge").Insert(Tuple{"b", "c"})
	good := NewDelta()
	good.Insert("edge", Tuple{"b", "c"})
	if _, err := inc.Apply(good); err != nil {
		t.Fatalf("evaluator must keep serving after a rejected batch: %v", err)
	}
	if !inc.DB().Get("p1").Contains(Tuple{"b", "c"}) {
		t.Fatal("good tick after rejection must maintain the fixpoint")
	}
}

// TestIncrementalSeedFailureRollsBack: when a later component's seeding
// fails (here: a sum aggregate over a non-numeric column), the components
// seeded before it must not stay materialized in the caller's database —
// leftovers would be served as phantom base facts by whatever evaluator is
// installed next, and would make a retried NewIncremental reject the
// relation as "derived but already holds base tuples".
func TestIncrementalSeedFailureRollsBack(t *testing.T) {
	p, err := NewProgram(
		Rule{
			Head: Atom{Pred: "path", Args: []Term{V("x"), V("y")}},
			Body: []Literal{{Atom: Atom{Pred: "edge", Args: []Term{V("x"), V("y")}}}},
		},
		Rule{
			Head: Atom{Pred: "path", Args: []Term{V("x"), V("z")}},
			Body: []Literal{
				{Atom: Atom{Pred: "path", Args: []Term{V("x"), V("y")}}},
				{Atom: Atom{Pred: "edge", Args: []Term{V("y"), V("z")}}},
			},
		},
		Rule{
			Head:   Atom{Pred: "total", Args: []Term{V("x"), V("v")}},
			Body:   []Literal{{Atom: Atom{Pred: "attr", Args: []Term{V("x"), V("v")}}}},
			Agg:    AggSum,
			AggVar: "v",
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	e := db.Ensure("edge", 2)
	e.Insert(Tuple{"a", "b"})
	e.Insert(Tuple{"b", "c"})
	db.Ensure("attr", 2).Insert(Tuple{"a", "oops"}) // sum over a string fails
	if _, err := NewIncremental(p, db); err == nil {
		t.Fatal("seeding must fail on sum over non-numeric value")
	}
	for _, pred := range []string{"path", "total"} {
		// Seeding registered these relations itself, so rollback must
		// deregister them entirely — a lingering empty entry would pin the
		// arity for any retried program.
		if rel := db.Get(pred); rel != nil {
			t.Fatalf("seed failure left phantom relation %s (%d tuples)", pred, rel.Len())
		}
	}
	// The database is back to base-only state: fixing the data and retrying
	// must succeed.
	db.Get("attr").Delete(Tuple{"a", "oops"})
	db.Get("attr").Insert(Tuple{"a", int64(1)})
	inc, err := NewIncremental(p, db)
	if err != nil {
		t.Fatalf("retry after rollback: %v", err)
	}
	if got := inc.DB().Get("path").Len(); got != 3 {
		t.Fatalf("retried fixpoint wrong: path = %v", inc.DB().Get("path").Tuples())
	}
}

// TestIncrementalCountsStayBounded: an upsert-churn workload (every tick
// deletes and re-inserts rows) through a counting component must not
// accumulate dead count entries — the maintained multiplicity map tracks
// the live fixpoint, not every tuple ever derived.
func TestIncrementalCountsStayBounded(t *testing.T) {
	p, err := NewProgram(Rule{
		Head: Atom{Pred: "view", Args: []Term{V("x"), V("v")}},
		Body: []Literal{{Atom: Atom{Pred: "row", Args: []Term{V("x"), V("v")}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	rows := db.Ensure("row", 2)
	for i := int64(0); i < 16; i++ {
		rows.Insert(Tuple{i, int64(0)})
	}
	inc, err := NewIncremental(p, db)
	if err != nil {
		t.Fatal(err)
	}
	current := map[int64]int64{} // key → live version
	for ver := int64(1); ver <= 500; ver++ {
		d := NewDelta()
		key := ver % 16
		old := Tuple{key, current[key]}
		rows.Delete(old)
		d.Delete("row", old)
		updated := Tuple{key, ver}
		rows.Insert(updated)
		d.Insert("row", updated)
		current[key] = ver
		if _, err := inc.Apply(d); err != nil {
			t.Fatal(err)
		}
	}
	cnt := inc.counts["view"]
	if live := len(cnt.ents) - cnt.dead; live != 16 {
		t.Fatalf("live count entries = %d, want 16", live)
	}
	if len(cnt.ents) > 128 {
		t.Fatalf("count entries grew to %d after churn (tombstones not compacted)", len(cnt.ents))
	}
	if got := inc.DB().Get("view").Len(); got != 16 {
		t.Fatalf("view has %d rows, want 16", got)
	}
}

// TestDeleteKeepsIndexesConsistent hammers interleaved inserts, deletes and
// indexed lookups — the transducer's upsert pattern — and cross-checks the
// incremental index against a brute-force scan.
func TestDeleteKeepsIndexesConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rel := NewRelation("t", 2)
		var live []Tuple
		for step := 0; step < 200; step++ {
			if r.Intn(3) == 0 && len(live) > 0 {
				i := r.Intn(len(live))
				if !rel.Delete(live[i]) {
					t.Logf("seed %d: delete of live tuple failed", seed)
					return false
				}
				live = append(live[:i], live[i+1:]...)
			} else {
				tup := Tuple{randConst(r), int64(r.Intn(4))}
				if rel.Insert(tup) {
					live = append(live, tup)
				}
			}
			// Indexed lookup vs brute force on a random probe.
			probe := randConst(r)
			got := rel.Lookup([]int{0}, []any{probe})
			want := 0
			for _, tu := range live {
				if tu[0] == probe {
					want++
				}
			}
			if len(got) != want {
				t.Logf("seed %d step %d: lookup=%d scan=%d", seed, step, len(got), want)
				return false
			}
		}
		return rel.Len() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
