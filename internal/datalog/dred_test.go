package datalog

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func tcRules() []Rule {
	return []Rule{
		{
			Head: Atom{Pred: "path", Args: []Term{V("x"), V("y")}},
			Body: []Literal{{Atom: Atom{Pred: "edge", Args: []Term{V("x"), V("y")}}}},
		},
		{
			Head: Atom{Pred: "path", Args: []Term{V("x"), V("z")}},
			Body: []Literal{
				{Atom: Atom{Pred: "path", Args: []Term{V("x"), V("y")}}},
				{Atom: Atom{Pred: "edge", Args: []Term{V("y"), V("z")}}},
			},
		},
	}
}

// applyBase mutates both the reference EDB and the incremental database and
// feeds the realized changes through Apply.
func applyBase(t *testing.T, inc *Incremental, edb *Database, ins, del []Tuple) {
	t.Helper()
	d := NewDelta()
	for _, tup := range del {
		edb.Get("edge").Delete(tup)
		inc.DB().Get("edge").Delete(tup)
		d.Delete("edge", tup)
	}
	for _, tup := range ins {
		edb.Get("edge").Insert(tup)
		inc.DB().Get("edge").Insert(tup)
		d.Insert("edge", tup)
	}
	if _, err := inc.Apply(d); err != nil {
		t.Fatal(err)
	}
	ref := edb.Clone()
	p, err := NewProgram(tcRules()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Eval(ref); err != nil {
		t.Fatal(err)
	}
	if err := diffDatabases("dred vs eval", inc.DB(), ref); err != nil {
		t.Fatal(err)
	}
}

// TestDRedCycleDeletion is the classic DRed trap: in a cycle every path
// tuple transitively supports itself, so a counting-style decrement would
// leave the closure intact after the cycle is cut. Over-delete must take
// the whole cyclic closure down and re-derivation must reinstate exactly
// what the remaining chain still supports.
func TestDRedCycleDeletion(t *testing.T) {
	p, err := NewProgram(tcRules()...)
	if err != nil {
		t.Fatal(err)
	}
	edb := NewDatabase()
	e := edb.Ensure("edge", 2)
	for i := int64(0); i < 5; i++ {
		e.Insert(Tuple{i, (i + 1) % 5}) // 0→1→2→3→4→0
	}
	inc, err := NewIncremental(p, edb.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if got := inc.DB().Get("path").Len(); got != 25 {
		t.Fatalf("cyclic closure = %d tuples, want 25", got)
	}
	// Cut the cycle: the closure collapses to the 0→1→2→3→4 chain.
	applyBase(t, inc, edb, nil, []Tuple{{int64(4), int64(0)}})
	if got := inc.DB().Get("path").Len(); got != 10 {
		t.Fatalf("chain closure = %d tuples, want 10", got)
	}
	// Close it again, then delete a middle edge: two disjoint chains.
	applyBase(t, inc, edb, []Tuple{{int64(4), int64(0)}}, nil)
	applyBase(t, inc, edb, nil, []Tuple{{int64(2), int64(3)}})
}

// TestDRedRederivesFromAlternativeSupport: a tuple whose derivation through
// the deleted edge dies must survive when a parallel edge still supports it.
func TestDRedRederivesFromAlternativeSupport(t *testing.T) {
	p, err := NewProgram(tcRules()...)
	if err != nil {
		t.Fatal(err)
	}
	edb := NewDatabase()
	e := edb.Ensure("edge", 2)
	// Diamond: a→b→d and a→c→d, then d→e. Deleting b→d must keep path(a,d)
	// and path(a,e) alive through c.
	for _, tup := range []Tuple{{"a", "b"}, {"b", "d"}, {"a", "c"}, {"c", "d"}, {"d", "e"}} {
		e.Insert(tup)
	}
	inc, err := NewIncremental(p, edb.Clone())
	if err != nil {
		t.Fatal(err)
	}
	applyBase(t, inc, edb, nil, []Tuple{{"b", "d"}})
	for _, want := range []Tuple{{"a", "d"}, {"a", "e"}, {"c", "e"}} {
		if !inc.DB().Get("path").Contains(want) {
			t.Fatalf("path%v lost despite alternative support; path = %v", want, inc.DB().Get("path").Tuples())
		}
	}
	if inc.DB().Get("path").Contains(Tuple{"b", "d"}) {
		t.Fatalf("path(b,d) survived with no support")
	}
}

// TestDRedDeltaExactness: the delta a DRed component emits must be exact —
// a downstream counting component consuming it stays correct even when the
// same batch deletes and re-inserts support (net-zero churn).
func TestDRedDeltaExactness(t *testing.T) {
	rules := append(tcRules(), Rule{
		Head: Atom{Pred: "reach2", Args: []Term{V("x"), V("v")}},
		Body: []Literal{
			{Atom: Atom{Pred: "path", Args: []Term{V("x"), V("y")}}},
			{Atom: Atom{Pred: "attr", Args: []Term{V("y"), V("v")}}},
		},
	})
	p, err := NewProgram(rules...)
	if err != nil {
		t.Fatal(err)
	}
	edb := NewDatabase()
	e := edb.Ensure("edge", 2)
	for i := int64(0); i < 6; i++ {
		e.Insert(Tuple{i, i + 1})
	}
	a := edb.Ensure("attr", 2)
	a.Insert(Tuple{int64(3), int64(30)})
	a.Insert(Tuple{int64(6), int64(60)})
	inc, err := NewIncremental(p, edb.Clone())
	if err != nil {
		t.Fatal(err)
	}
	// One batch: delete edge 2→3 and add a bypass 2→3 via a fresh node
	// (delete 2→3, add 2→9 and 9→3): reach2 results must track exactly.
	d := NewDelta()
	for _, tup := range []Tuple{{int64(2), int64(3)}} {
		edb.Get("edge").Delete(tup)
		inc.DB().Get("edge").Delete(tup)
		d.Delete("edge", tup)
	}
	for _, tup := range []Tuple{{int64(2), int64(9)}, {int64(9), int64(3)}} {
		edb.Get("edge").Insert(tup)
		inc.DB().Get("edge").Insert(tup)
		d.Insert("edge", tup)
	}
	if _, err := inc.Apply(d); err != nil {
		t.Fatal(err)
	}
	ref := edb.Clone()
	if _, err := p.Eval(ref); err != nil {
		t.Fatal(err)
	}
	if err := diffDatabases("dred+counting vs eval", inc.DB(), ref); err != nil {
		t.Fatal(err)
	}
}

// TestAugOverlayIndexedLookup pins the indexed augmentation overlay: probe
// sets registered from the component's plans answer by hash (hit and miss),
// the all-columns set doubles as the membership probe, and an unregistered
// probe set falls back to the linear scan with identical semantics.
func TestAugOverlayIndexedLookup(t *testing.T) {
	p, err := NewProgram(tcRules()...)
	if err != nil {
		t.Fatal(err)
	}
	var plans []*rulePlan
	for _, ps := range p.prep.strata {
		plans = append(plans, ps...)
	}
	o := newAugOverlay(plans)
	// The TC plans probe edge on [0] and [1] and path on [0] and [1]
	// across their orders; both predicates must be registered.
	for _, pred := range []string{"edge", "path"} {
		if o.rels[pred] == nil {
			t.Fatalf("overlay did not register %s", pred)
		}
	}
	o.add("path", Tuple{"a", "b"})
	o.add("path", Tuple{"a", "c"})
	o.add("path", Tuple{"b", "c"})

	collect := func(pos []int, vals []any) []Tuple {
		var got []Tuple
		o.rels["path"].matches(pos, vals, func(t Tuple) bool {
			got = append(got, t)
			return true
		})
		return got
	}
	// Probe-column hit: two tuples start at "a", in append order.
	if got := collect([]int{0}, []any{"a"}); len(got) != 2 || !got[0].Equal(Tuple{"a", "b"}) || !got[1].Equal(Tuple{"a", "c"}) {
		t.Fatalf("hit lookup = %v, want [(a,b) (a,c)]", got)
	}
	// Probe-column miss.
	if got := collect([]int{0}, []any{"z"}); len(got) != 0 {
		t.Fatalf("miss lookup = %v, want empty", got)
	}
	// All-columns membership (the allBound existence probe).
	if !o.rels["path"].matches([]int{0, 1}, []any{"b", "c"}, func(Tuple) bool { return false }) {
		t.Fatal("membership probe missed a present tuple")
	}
	if o.rels["path"].matches([]int{0, 1}, []any{"b", "z"}, func(Tuple) bool { return false }) {
		t.Fatal("membership probe matched an absent tuple")
	}
	// Registered indexes must be maintained across interleaved add/lookup
	// (the phase-1 pattern: accept appends, next drive probes).
	o.add("path", Tuple{"a", "d"})
	if got := collect([]int{0}, []any{"a"}); len(got) != 3 {
		t.Fatalf("post-append hit lookup = %v, want 3 tuples", got)
	}
	// Unregistered probe set: the defensive linear fallback answers the
	// same question.
	if got := collect([]int{1}, []any{"c"}); len(got) != 2 {
		t.Fatalf("fallback lookup = %v, want [(a,c) (b,c)]", got)
	}
}

// TestDRedDependencyOrderedRederivation: phase 2 walks candidates in
// discovery order, which is support-dependency order — a candidate whose
// only surviving support runs through another candidate reinstated earlier
// in the queue must be reinstated in the same ordered pass (no restart, no
// reliance on extra fixpoint rounds for the chain of direct supports).
func TestDRedDependencyOrderedRederivation(t *testing.T) {
	p, err := NewProgram(tcRules()...)
	if err != nil {
		t.Fatal(err)
	}
	edb := NewDatabase()
	e := edb.Ensure("edge", 2)
	// a→b→c→d plus the shortcut a→c. Deleting a→b over-deletes, in
	// discovery order, path(a,b), then path(a,c), then path(a,d).
	// path(a,c) re-derives directly from edge(a,c); path(a,d) only from
	// path(a,c)+edge(c,d) — i.e. through the candidate reinstated just
	// before it in the queue.
	for _, tup := range []Tuple{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"a", "c"}} {
		e.Insert(tup)
	}
	inc, err := NewIncremental(p, edb.Clone())
	if err != nil {
		t.Fatal(err)
	}
	applyBase(t, inc, edb, nil, []Tuple{{"a", "b"}})
	for _, want := range []Tuple{{"a", "c"}, {"a", "d"}} {
		if !inc.DB().Get("path").Contains(want) {
			t.Fatalf("path%v lost despite support through an earlier reinstatement; path = %v", want, inc.DB().Get("path").Tuples())
		}
	}
	for _, gone := range []Tuple{{"a", "b"}} {
		if inc.DB().Get("path").Contains(gone) {
			t.Fatalf("path%v survived with no support", gone)
		}
	}
}

// TestDRedMatchesRecomputeFallback runs randomized delete-heavy tick
// sequences through both the DRed path and the forced recompute-and-diff
// fallback and requires identical fixpoints at every tick — the same
// property the two paths' shared acceptance benchmark depends on.
func TestDRedMatchesRecomputeFallback(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rules := randRules(r)
		pd, err := NewProgram(rules...)
		if err != nil {
			return false
		}
		pr, err := NewProgram(rules...)
		if err != nil {
			return false
		}
		edb := randEDB(r)
		dred, err := NewIncremental(pd, edb.Clone())
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		reco, err := NewIncremental(pr, edb.Clone())
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		reco.forceRecompute = true
		for tick := 0; tick < 5; tick++ {
			d1, d2 := NewDelta(), NewDelta()
			// Delete-heavy: two deletes per insert on average.
			for op := 0; op < 2+r.Intn(4); op++ {
				pred := edbPreds[r.Intn(len(edbPreds))]
				if r.Intn(3) == 0 {
					tup := randEDBTuple(r, pred)
					if edb.Get(pred).Insert(tup) {
						dred.DB().Get(pred).Insert(tup)
						reco.DB().Get(pred).Insert(tup)
						d1.Insert(pred, tup)
						d2.Insert(pred, tup)
					}
				} else if existing := edb.Get(pred).Tuples(); len(existing) > 0 {
					tup := existing[r.Intn(len(existing))]
					edb.Get(pred).Delete(tup)
					dred.DB().Get(pred).Delete(tup)
					reco.DB().Get(pred).Delete(tup)
					d1.Delete(pred, tup)
					d2.Delete(pred, tup)
				}
			}
			n1, err := dred.Apply(d1)
			if err != nil {
				t.Logf("seed %d: dred: %v", seed, err)
				return false
			}
			n2, err := reco.Apply(d2)
			if err != nil {
				t.Logf("seed %d: recompute: %v", seed, err)
				return false
			}
			if n1 != n2 {
				t.Logf("seed %d tick %d: realized changes diverge: dred=%d recompute=%d", seed, tick, n1, n2)
				return false
			}
			if err := diffDatabases("dred vs recompute", dred.DB(), reco.DB()); err != nil {
				t.Logf("seed %d tick %d: %v", seed, tick, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
