package datalog

import (
	"math/rand"
	"testing"
)

// FuzzIncrementalEquivalence is the native fuzz face of the three-way
// differential harness: the seed picks a random program shape (chains,
// cycles, nonlinear recursion, stratified negation, aggregates — see
// randRules) and a starting EDB, and the op bytes drive a tick sequence of
// interleaved base-relation inserts and deletes. After every tick the
// maintained incremental fixpoint must equal both the compiled semi-naive
// Eval and the interpretive EvalNaive run from scratch on the same base
// data. The seed corpus under testdata/fuzz/ pins delete-heavy and
// churn-heavy sequences; `make fuzz` runs a short generative smoke in CI.
//
// Op encoding (3 bytes per op, self-delimiting, any byte string is valid):
//
//	byte 0: bits 0-1 pick the base relation (edge/attr/node),
//	        bit 2 picks insert (0) or delete (1),
//	        bit 3 forces a tick flush after the op,
//	        bit 4 closes and reopens the evaluator after the tick: the
//	        fixpoint round-trips through State/RestoreIncremental — the
//	        snapshot half of the durability path,
//	        bit 5 crash-restarts instead: every base mutation since the
//	        last committed tick is lost (as an unjournaled tail would be),
//	        then the survivor round-trips through State/Restore.
//	bytes 1-2: tuple constants (inserts) or victim index (deletes).
//
// A tick also flushes every 4 ops, and once more at the end.
func FuzzIncrementalEquivalence(f *testing.F) {
	f.Add(int64(1), []byte{})
	f.Add(int64(2), []byte("\x00\x01\x02\x04\x00\x00\x01\x05\x07"))
	f.Add(int64(3), []byte("\x04\x00\x00\x04\x01\x00\x04\x02\x00\x00\x03\x03"))
	f.Add(int64(7), []byte("\x0c\xff\xfe\x0c\x01\x02\x08\x10\x20\x04\x00\x01"))
	f.Add(int64(11), []byte("edge-churn-and-deletes"))
	f.Add(int64(3), []byte{0x00, 0x01, 0x02, 0x10, 0x00, 0x03, 0x04, 0x00, 0x00, 0x10, 0x01, 0x05})
	f.Add(int64(16), []byte{0x00, 0x01, 0x02, 0x20, 0x03, 0x04, 0x24, 0x00, 0x01, 0x30, 0x02, 0x02})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		if len(ops) > 96 {
			ops = ops[:96] // bound per-input work
		}
		r := rand.New(rand.NewSource(seed))
		rules := randRules(r)
		p, err := NewProgram(rules...)
		if err != nil {
			t.Fatalf("randRules produced an invalid program: %v", err)
		}
		// The seed also picks the evaluation parallelism (partition counts
		// 1/2/8, with the sharding cutoff dropped so tiny fuzz deltas still
		// take the partitioned path): maintenance must be byte-equivalent
		// across all of them, so the oracle fuzzes the partitioned drives
		// and the DRed phases together.
		pc := []int{1, 2, 8}[int(uint64(seed)%3)]
		p.SetParallelism(pc)
		oldPart := partitionMinDeltaTuples
		partitionMinDeltaTuples = 0
		defer func() { partitionMinDeltaTuples = oldPart }()
		edb := randEDB(r) // reference base data, never evaluated in place
		inc, err := NewIncremental(p, edb.Clone())
		if err != nil {
			t.Fatalf("NewIncremental: %v", err)
		}

		// decode one byte into a constant from the same small mixed-type
		// domain randConst draws from, so fuzz tuples collide with seeded
		// ones (collisions are where maintenance bugs live).
		constOf := func(b byte) any {
			if b%2 == 0 {
				return string(rune('a' + int(b/2)%4))
			}
			return int64(int(b/2) % 4)
		}
		tupleOf := func(pred string, a, b byte) Tuple {
			switch pred {
			case "edge":
				return Tuple{constOf(a), constOf(b)}
			case "attr":
				return Tuple{constOf(a), int64(int(b) % 10)}
			default:
				return Tuple{constOf(a)}
			}
		}

		delta := NewDelta()
		var tail []DeltaOp // realized base mutations since the last committed tick
		flush := func() {
			if _, err := inc.Apply(delta); err != nil {
				t.Fatalf("Apply: %v", err)
			}
			delta = NewDelta()
			tail = nil
			refC := edb.Clone()
			if _, err := p.Eval(refC); err != nil {
				t.Fatalf("Eval: %v", err)
			}
			if err := diffDatabases("incremental vs compiled", inc.DB(), refC); err != nil {
				t.Fatal(err)
			}
			refN := edb.Clone()
			if _, err := p.EvalNaive(refN); err != nil {
				t.Fatalf("EvalNaive: %v", err)
			}
			if err := diffDatabases("incremental vs naive", inc.DB(), refN); err != nil {
				t.Fatal(err)
			}
		}

		// reopen replaces the evaluator with one rebuilt from its own
		// serialized fixpoint — the datalog half of a durable restart. The
		// restored instance must match the original exactly and then keep
		// maintaining.
		reopen := func() {
			fx, err := inc.State()
			if err != nil {
				t.Fatalf("State: %v", err)
			}
			restored, err := RestoreIncremental(p, NewDatabase(), fx)
			if err != nil {
				t.Fatalf("RestoreIncremental: %v", err)
			}
			if err := diffDatabases("restored vs original", restored.DB(), inc.DB()); err != nil {
				t.Fatal(err)
			}
			inc = restored
		}
		// crash loses every base mutation since the last committed tick, in
		// both the evaluator's database and the reference EDB — the fate of
		// an unjournaled tail — before restarting from serialized state.
		crash := func() {
			for i := len(tail) - 1; i >= 0; i-- {
				op := tail[i]
				for _, db := range []*Database{edb, inc.DB()} {
					if op.Del {
						db.Get(op.Pred).Insert(op.T)
					} else {
						db.Get(op.Pred).Delete(op.T)
					}
				}
			}
			tail = nil
			delta = NewDelta()
			reopen()
		}

		sinceFlush := 0
		for i := 0; i+2 < len(ops); i += 3 {
			op, a, b := ops[i], ops[i+1], ops[i+2]
			pred := edbPreds[int(op&3)%len(edbPreds)]
			if op&4 == 0 {
				tup := tupleOf(pred, a, b)
				if edb.Get(pred).Insert(tup) {
					if !inc.DB().Get(pred).Insert(tup) {
						t.Fatalf("mirrored insert diverged on %s%v", pred, tup)
					}
					delta.Insert(pred, tup)
					tail = append(tail, DeltaOp{Pred: pred, T: tup})
				}
			} else if existing := edb.Get(pred).Tuples(); len(existing) > 0 {
				tup := existing[(int(a)<<8|int(b))%len(existing)]
				edb.Get(pred).Delete(tup)
				if !inc.DB().Get(pred).Delete(tup) {
					t.Fatalf("mirrored delete diverged on %s%v", pred, tup)
				}
				delta.Delete(pred, tup)
				tail = append(tail, DeltaOp{Del: true, Pred: pred, T: tup})
			}
			sinceFlush++
			switch {
			case op&0x20 != 0:
				crash()
				sinceFlush = 0
			case op&0x10 != 0:
				flush()
				reopen()
				sinceFlush = 0
			case op&8 != 0 || sinceFlush >= 4:
				flush()
				sinceFlush = 0
			}
		}
		flush()
	})
}
