package datalog

import "sync/atomic"

// This file is the intra-component partitioned evaluator: PR 3
// parallelized across evaluation components, but a single recursive
// component (the transitive-closure shape) still ran its whole fixpoint on
// one goroutine. Here each semi-naive drive — one (rule, delta position)
// step of a round — shards the delta relation across a worker set by the
// rule's partition key (rulePlan.partCol: the first bound join column,
// falling back to the whole-tuple hash) and joins every shard against the
// shared read-only relations concurrently.
//
// Determinism: a serial drive emits, for each delta tuple in insertion
// order, that tuple's derivations in plan-walk order. runSegmented
// preserves those per-tuple segments inside each shard, and the stitch
// step below replays segments in global delta order — so the merged
// emission stream is byte-identical to the serial one, and everything
// downstream (head-relation insertion order, delta contents, fingerprints)
// is too.
//
// Safety: shards only read. The driving plan's access paths (membership
// hashes, column indexes) are warmed serially before the fan-out, the DRed
// augmentation overlay registers its probe indexes up front, and all
// writes — head inserts, over-deletions, overlay appends — happen in the
// caller's serial accept step after the merged emissions return.

// partitionMinDeltaTuples gates sharding per drive: a delta smaller than
// this runs the serial path, where goroutine and merge overhead would
// dominate the join work. A variable, not a constant, so the determinism
// tests can force the partitioned path on small randomized workloads.
var partitionMinDeltaTuples = 128

// partitionedDrives counts sharded drives across the process — a testing
// hook proving the partitioned path actually engaged.
var partitionedDrives atomic.Int64

// driveDelta executes one semi-naive drive: plan pl with body literal i
// reading delta d (optionally against the DRed augmentation overlay),
// sharded across parts workers when the delta is large enough. collect
// receives the emissions in exactly serial order either way.
func driveDelta(db *Database, pl *rulePlan, i int, d *Relation, aug *augOverlay, parts int, collect func(Tuple)) {
	if parts <= 1 || d.Len() < partitionMinDeltaTuples || pl.orders[1+i] == nil {
		pl.runAug(db, i, d, aug, nil, collect)
		return
	}
	tuples := make([]Tuple, 0, d.Len())
	d.scan(func(t Tuple) bool { tuples = append(tuples, t); return true })
	runPartitioned(db, pl, i, tuples, aug, parts, collect)
}

// runPartitioned shards the delta tuples by partition key, fans the shards
// out over parts workers, and stitches the per-shard outputs back into
// serial emission order.
func runPartitioned(db *Database, pl *rulePlan, i int, tuples []Tuple, aug *augOverlay, parts int, collect func(Tuple)) {
	partitionedDrives.Add(1)
	// Access paths the walk can touch must exist before goroutines share
	// the relations (and the overlay) read-only — a no-op when already
	// warm; relations mutated between drives maintain their indexes
	// incrementally.
	warmOrder(db, pl.orders[1+i])
	if aug != nil {
		aug.warmOrder(pl.orders[1+i])
	}

	col := pl.partCol[i]
	shardOf := make([]int32, len(tuples))
	counts := make([]int, parts)
	for j, t := range tuples {
		var h uint64
		if col >= 0 && col < len(t) {
			h = hashValue(fnvOffset, t[col])
		} else {
			h = hashTuple(t)
		}
		s := int32(h % uint64(parts))
		shardOf[j] = s
		counts[s]++
	}
	shards := make([][]Tuple, parts)
	for s := range shards {
		shards[s] = make([]Tuple, 0, counts[s])
	}
	for j, t := range tuples {
		shards[shardOf[j]] = append(shards[shardOf[j]], t)
	}

	// Per-shard output: a flat emission buffer plus segment boundaries —
	// segStarts[s][k] is where the k-th local delta tuple's emissions
	// begin, so segment k is out[segStarts[k]:segStarts[k+1]].
	outs := make([][]Tuple, parts)
	segStarts := make([][]int32, parts)
	runWorkers(parts, parts, func(s int) {
		local := shards[s]
		if len(local) == 0 {
			return
		}
		out := make([]Tuple, 0, len(local))
		starts := make([]int32, len(local)+1)
		cur := 0
		pl.runSegmented(db, i, local, aug, func(seg int, t Tuple) {
			for cur < seg {
				cur++
				starts[cur] = int32(len(out))
			}
			out = append(out, t)
		})
		for cur < len(local) {
			cur++
			starts[cur] = int32(len(out))
		}
		outs[s], segStarts[s] = out, starts
	})

	// Stitch: within a shard, segments appear in ascending global order,
	// so one cursor per shard replays segments in exactly delta order.
	cursors := make([]int32, parts)
	for j := range tuples {
		s := shardOf[j]
		k := cursors[s]
		cursors[s]++
		for _, t := range outs[s][segStarts[s][k]:segStarts[s][k+1]] {
			collect(t)
		}
	}
}
