package datalog

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Program is a set of rules over a database. Evaluation computes the least
// fixpoint of all rules, stratum by stratum. Rules are compiled to plans
// (slot-numbered bindings, boundness-ordered joins, cached stratification)
// once, on the first evaluation or an explicit Prepare call.
type Program struct {
	Rules []Rule

	prepOnce sync.Once
	prep     *prepared
	prepErr  error

	// parallel is the evaluation parallelism knob: 0 = GOMAXPROCS default,
	// 1 = serial, n > 1 = cap (SetParallelism). Atomic so the knob may be
	// set while another goroutine evaluates; each Eval/Apply snapshots it
	// exactly once at entry, so one fixpoint never spans two settings.
	parallel atomic.Int32
}

// NewProgram validates, bundles and compiles rules.
func NewProgram(rules ...Rule) (*Program, error) {
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	p := &Program{Rules: rules}
	if err := p.Prepare(); err != nil {
		return nil, err
	}
	return p, nil
}

// idbPreds returns the set of predicates defined by some rule head.
func (p *Program) idbPreds() map[string]bool {
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	return idb
}

// Stratify partitions rules into strata such that negated or aggregated
// dependencies always point to strictly lower strata. It returns an error
// when negation/aggregation occurs through recursion (unstratifiable).
// Evaluation uses the cached result inside Prepare; this method recomputes
// and exists for diagnostics and tests.
func (p *Program) Stratify() ([][]Rule, error) {
	idb := p.idbPreds()
	// stratum number per predicate, computed by the classic iterative
	// lifting algorithm.
	stratum := map[string]int{}
	for pred := range idb {
		stratum[pred] = 0
	}
	n := len(idb)
	for iter := 0; iter <= n*n+1; iter++ {
		changed := false
		for _, r := range p.Rules {
			h := r.Head.Pred
			for _, l := range r.Body {
				if !idb[l.Pred] {
					continue
				}
				need := stratum[l.Pred]
				if l.Negated || r.Agg != "" {
					need++ // must be fully computed first
				}
				if stratum[h] < need {
					stratum[h] = need
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		if iter == n*n+1 {
			return nil, fmt.Errorf("datalog: program is not stratifiable (negation or aggregation through recursion)")
		}
	}
	maxS := 0
	for _, s := range stratum {
		if s > n {
			return nil, fmt.Errorf("datalog: program is not stratifiable (negation or aggregation through recursion)")
		}
		if s > maxS {
			maxS = s
		}
	}
	out := make([][]Rule, maxS+1)
	for _, r := range p.Rules {
		s := stratum[r.Head.Pred]
		out[s] = append(out[s], r)
	}
	return out, nil
}

// Eval runs the program to fixpoint over db using semi-naive (differential)
// evaluation per stratum, executing compiled plans. It mutates db in place,
// creating IDB relations as needed, and returns the number of derived
// tuples. Evaluation components on the same topological level of the
// component DAG are independent and run concurrently when the program's
// parallelism allows it (SetParallelism); serial and parallel runs produce
// byte-identical relations.
func (p *Program) Eval(db *Database) (int, error) {
	if err := p.Prepare(); err != nil {
		return 0, err
	}
	// One snapshot of the parallelism knob governs this whole evaluation —
	// the component fan-out width and the intra-component partition count
	// both derive from it, so a concurrent SetParallelism cannot split one
	// fixpoint across two settings.
	workers := p.workers()
	if workers <= 1 || p.prep.maxWidth <= 1 {
		// Component-serial path. A chain-shaped DAG with workers > 1 is
		// exactly the giant-single-component case the intra-component
		// partitioning exists for, so the parallelism budget goes to
		// sharding the semi-naive rounds instead.
		derived := 0
		for _, plans := range p.prep.strata {
			n, err := evalStratumSemiNaive(db, plans, workers)
			if err != nil {
				return derived, err
			}
			derived += n
		}
		return derived, nil
	}
	// Parallel path: pre-create every head relation (no database-map writes
	// inside goroutines), then fan each level out with a barrier between
	// levels. Per-component derived counts and errors land in
	// index-addressed slots, so the summary is independent of completion
	// order; errors surface in component order.
	for _, plans := range p.prep.strata {
		ensureHeadsPlanned(db, plans)
	}
	derived := make([]int, len(p.prep.strata))
	errs := make([]error, len(p.prep.strata))
	sum := func() int {
		total := 0
		for _, n := range derived {
			total += n
		}
		return total
	}
	for _, level := range p.prep.levels {
		if len(level) == 1 || levelInputSize(db, p.prep.strata, level) < parallelMinInputTuples {
			// Singleton level, or too little data to amortize the fan-out:
			// run inline, in component order, with the worker budget spent
			// on intra-component partitioning instead.
			for _, ci := range level {
				n, err := evalStratumSemiNaive(db, p.prep.strata[ci], workers)
				derived[ci] = n
				if err != nil {
					return sum(), err
				}
			}
			continue
		}
		for _, ci := range level {
			warmForPlans(db, p.prep.strata[ci], false)
		}
		// Components fanned out in parallel evaluate unpartitioned (parts
		// 1): the level already saturates the worker budget, and nesting
		// the two axes would oversubscribe it quadratically.
		runWorkers(len(level), workers, func(k int) {
			ci := level[k]
			derived[ci], errs[ci] = evalStratumSemiNaive(db, p.prep.strata[ci], 1)
		})
		for _, ci := range level {
			if errs[ci] != nil {
				return sum(), errs[ci]
			}
		}
	}
	return sum(), nil
}

// EvalNaive runs the program with naive (all-at-once) iteration: every rule
// re-derives from the full relations each round, walking rules
// interpretively (map bindings, no plans). It is the baseline for
// experiment E8 (differential vs all-at-once flows, §8.2) and the reference
// implementation the differential property test checks Eval against.
func (p *Program) EvalNaive(db *Database) (int, error) {
	// Stratification comes from the Prepare cache (so E8 times evaluation
	// strategy, not per-call stratification); derivation itself stays
	// interpretive.
	if err := p.Prepare(); err != nil {
		return 0, err
	}
	derived := 0
	for _, plans := range p.prep.strata {
		rules := make([]Rule, len(plans))
		for i, pl := range plans {
			rules[i] = pl.r
		}
		ensureHeads(db, rules)
		for {
			changed := 0
			for _, r := range rules {
				if r.Agg != "" {
					continue
				}
				for _, t := range deriveRule(db, r) {
					if db.Get(r.Head.Pred).Insert(t) {
						changed++
					}
				}
			}
			derived += changed
			if changed == 0 {
				break
			}
		}
		n, err := evalAggregatesNaive(db, rules)
		if err != nil {
			return derived, err
		}
		derived += n
	}
	return derived, nil
}

func ensureHeads(db *Database, rules []Rule) {
	for _, r := range rules {
		db.Ensure(r.Head.Pred, len(r.Head.Args))
	}
}

func ensureHeadsPlanned(db *Database, plans []*rulePlan) {
	for _, pl := range plans {
		db.Ensure(pl.r.Head.Pred, len(pl.r.Head.Args))
	}
}

// evalStratumSemiNaive computes the fixpoint of one stratum off compiled
// plans. Aggregate rules run once after the non-aggregate fixpoint (they
// depend only on lower strata plus this stratum's final relations). parts
// is the intra-component partition budget: rounds whose deltas are large
// enough shard each drive across that many workers (driveDelta), with
// emissions stitched back into serial order — parts 1 is the fully serial
// mode and produces byte-identical results by construction.
func evalStratumSemiNaive(db *Database, plans []*rulePlan, parts int) (int, error) {
	ensureHeadsPlanned(db, plans)
	derived := 0

	// delta holds tuples derived in the previous round, per predicate.
	// Delta relations are append-only scan targets: tuples enter them
	// already deduplicated (guarded by the head relation's Insert), so
	// they skip hash/index maintenance entirely.
	delta := map[string]*Relation{}
	var out []Tuple // reused derivation buffer
	collect := func(t Tuple) { out = append(out, t) }
	// Round 0: full derivation to seed deltas.
	for _, pl := range plans {
		if pl.r.Agg != "" {
			continue
		}
		rel := db.Get(pl.r.Head.Pred)
		d := delta[pl.r.Head.Pred]
		if d == nil {
			d = NewRelation(pl.r.Head.Pred, rel.Arity)
			delta[pl.r.Head.Pred] = d
		}
		out = out[:0]
		pl.run(db, -1, nil, nil, collect)
		for _, t := range out {
			if rel.Insert(t) {
				d.appendRaw(t)
				derived++
			}
		}
	}

	for {
		next := map[string]*Relation{}
		any := false
		for _, pl := range plans {
			if pl.r.Agg != "" {
				continue
			}
			rel := db.Get(pl.r.Head.Pred)
			// Differential step: for each positive body literal with a
			// non-empty delta, re-derive driving that literal from the
			// delta (delta-first join order) and the rest from full
			// relations.
			for i, l := range pl.r.Body {
				if l.Negated {
					continue
				}
				d, ok := delta[l.Pred]
				if !ok || d.Len() == 0 {
					continue
				}
				out = out[:0]
				driveDelta(db, pl, i, d, nil, parts, collect)
				for _, t := range out {
					if rel.Insert(t) {
						nd := next[pl.r.Head.Pred]
						if nd == nil {
							nd = NewRelation(pl.r.Head.Pred, rel.Arity)
							next[pl.r.Head.Pred] = nd
						}
						nd.appendRaw(t)
						derived++
						any = true
					}
				}
			}
		}
		if !any {
			break
		}
		delta = next
	}

	n, err := evalAggregatesPlanned(db, plans)
	return derived + n, err
}

// Derive evaluates one rule's body against the database and returns the
// head tuples, without fixpoint iteration. The Hydrolysis compiler uses it
// for send-rules inside handlers (`send alert(p) :- transitive(pid, p)`),
// which run against an already-fixpointed snapshot. Callers that derive the
// same rule repeatedly should compile it once with PrepareRule instead.
func Derive(db *Database, r Rule) ([]Tuple, error) {
	if r.Agg != "" {
		return nil, fmt.Errorf("datalog: Derive does not support aggregates")
	}
	pl, err := compileRule(r, nil, false)
	if err != nil {
		return nil, err
	}
	var out []Tuple
	pl.run(db, -1, nil, nil, func(t Tuple) { out = append(out, t) })
	return out, nil
}

// deriveRule is the interpretive evaluator kept as the naive baseline: it
// enumerates all bindings satisfying the body with a cloned-map environment
// and returns head tuples. (Semi-naive delta substitution lives entirely in
// the compiled plans now.)
func deriveRule(db *Database, r Rule) []Tuple {
	if r.Agg != "" {
		return nil
	}
	var out []Tuple
	var walk func(i int, b binding)
	walk = func(i int, b binding) {
		if i == len(r.Body) {
			for _, f := range r.Filters {
				if !evalFilter(f, b) {
					return
				}
			}
			head := make(Tuple, len(r.Head.Args))
			for j, t := range r.Head.Args {
				v, ok := b.resolve(t)
				if !ok {
					return // unbound head var (Validate prevents this)
				}
				head[j] = v
			}
			out = append(out, head)
			return
		}
		l := r.Body[i]
		rel := db.Get(l.Pred)
		if rel == nil {
			if l.Negated {
				walk(i+1, b) // absent relation: negation trivially holds
			}
			return
		}
		if l.Negated {
			// All args are bound (range restriction): membership test.
			probe := make(Tuple, len(l.Args))
			for j, t := range l.Args {
				v, ok := b.resolve(t)
				if !ok {
					return
				}
				probe[j] = v
			}
			if !rel.Contains(probe) {
				walk(i+1, b)
			}
			return
		}
		// Positive literal: probe with whatever is bound.
		var pos []int
		var vals []any
		for j, t := range l.Args {
			if v, ok := b.resolve(t); ok {
				pos = append(pos, j)
				vals = append(vals, v)
			}
		}
		for _, t := range rel.Lookup(pos, vals) {
			nb := b
			cloned := false
			ok := true
			for j, at := range l.Args {
				if !at.IsVar() {
					if t[j] != at.Const {
						ok = false
						break
					}
					continue
				}
				if v, bound := nb[at.Var]; bound {
					if v != t[j] {
						ok = false
						break
					}
					continue
				}
				if !cloned {
					nb = b.clone()
					cloned = true
				}
				nb[at.Var] = t[j]
			}
			if ok {
				walk(i+1, nb)
			}
		}
	}
	walk(0, binding{})
	return out
}

// groupTable accumulates (group..., value) rows by the typed hash of the
// group prefix, with collision buckets and first-seen ordering — the
// aggregate path's replacement for string group keys.
type groupTable struct {
	m    map[uint64][]int
	accs []*groupAcc // first-seen order
}

type groupAcc struct {
	prefix []any
	rows   []Tuple
}

func newGroupTable() *groupTable { return &groupTable{m: map[uint64][]int{}} }

func (g *groupTable) add(row Tuple) {
	prefix := row[:len(row)-1]
	h := hashVals(prefix)
	for _, i := range g.m[h] {
		if projEqualVals(g.accs[i].prefix, prefix) {
			g.accs[i].rows = append(g.accs[i].rows, row)
			return
		}
	}
	g.m[h] = append(g.m[h], len(g.accs))
	g.accs = append(g.accs, &groupAcc{prefix: prefix, rows: []Tuple{row}})
}

func projEqualVals(a []any, b Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// foldGroups folds each group with the aggregate and inserts head rows.
func foldGroups(rel *Relation, kind AggKind, headPred string, g *groupTable) (int, error) {
	derived := 0
	for _, acc := range g.accs {
		val, err := aggregate(kind, acc.rows)
		if err != nil {
			return derived, fmt.Errorf("rule %s: %w", headPred, err)
		}
		head := make(Tuple, len(acc.prefix)+1)
		copy(head, acc.prefix)
		head[len(acc.prefix)] = val
		if rel.Insert(head) {
			derived++
		}
	}
	return derived, nil
}

// evalAggregatesPlanned runs a stratum's aggregate rules once off compiled
// plans, grouping by the non-aggregate head arguments via the hash
// machinery.
func evalAggregatesPlanned(db *Database, plans []*rulePlan) (int, error) {
	derived := 0
	for _, pl := range plans {
		if pl.r.Agg == "" {
			continue
		}
		rel := db.Ensure(pl.r.Head.Pred, len(pl.r.Head.Args))
		g := newGroupTable()
		pl.run(db, -1, nil, nil, g.add)
		n, err := foldGroups(rel, pl.r.Agg, pl.r.Head.Pred, g)
		derived += n
		if err != nil {
			return derived, err
		}
	}
	return derived, nil
}

// evalAggregatesNaive is the interpretive aggregate path used by EvalNaive:
// derivation via deriveRule, grouping via the same hash group table.
func evalAggregatesNaive(db *Database, rules []Rule) (int, error) {
	derived := 0
	for _, r := range rules {
		if r.Agg == "" {
			continue
		}
		rel := db.Ensure(r.Head.Pred, len(r.Head.Args))
		// Build grouping rule: derive (groupVars..., aggVar) rows.
		groupArgs := r.Head.Args[:len(r.Head.Args)-1]
		probe := Rule{
			Head:    Atom{Pred: r.Head.Pred, Args: append(append([]Term{}, groupArgs...), V(r.AggVar))},
			Body:    r.Body,
			Filters: r.Filters,
		}
		g := newGroupTable()
		for _, row := range deriveRule(db, probe) {
			g.add(row)
		}
		n, err := foldGroups(rel, r.Agg, r.Head.Pred, g)
		derived += n
		if err != nil {
			return derived, err
		}
	}
	return derived, nil
}

func aggregate(kind AggKind, rows []Tuple) (any, error) {
	last := func(t Tuple) any { return t[len(t)-1] }
	switch kind {
	case AggCount:
		seen := newValueSet()
		for _, t := range rows {
			seen.add(last(t))
		}
		return int64(seen.len()), nil
	case AggSum:
		var s float64
		allInt := true
		for _, t := range rows {
			f, ok := toFloat(last(t))
			if !ok {
				return nil, fmt.Errorf("sum over non-numeric value %v", last(t))
			}
			if _, isF := last(t).(float64); isF {
				allInt = false
			}
			s += f
		}
		if allInt {
			return int64(s), nil
		}
		return s, nil
	case AggMax, AggMin:
		if len(rows) == 0 {
			return nil, fmt.Errorf("%s over empty group", kind)
		}
		best := last(rows[0])
		for _, t := range rows[1:] {
			v := last(t)
			if kind == AggMax && compareValues(OpGt, v, best) {
				best = v
			}
			if kind == AggMin && compareValues(OpLt, v, best) {
				best = v
			}
		}
		return best, nil
	}
	return nil, fmt.Errorf("unknown aggregate %q", kind)
}
