package datalog

import (
	"fmt"
	"sort"
)

// Program is a set of rules over a database. Evaluation computes the least
// fixpoint of all rules, stratum by stratum.
type Program struct {
	Rules []Rule
}

// NewProgram validates and bundles rules.
func NewProgram(rules ...Rule) (*Program, error) {
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	p := &Program{Rules: rules}
	if _, err := p.Stratify(); err != nil {
		return nil, err
	}
	return p, nil
}

// idbPreds returns the set of predicates defined by some rule head.
func (p *Program) idbPreds() map[string]bool {
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	return idb
}

// Stratify partitions rules into strata such that negated or aggregated
// dependencies always point to strictly lower strata. It returns an error
// when negation/aggregation occurs through recursion (unstratifiable).
func (p *Program) Stratify() ([][]Rule, error) {
	idb := p.idbPreds()
	// stratum number per predicate, computed by the classic iterative
	// lifting algorithm.
	stratum := map[string]int{}
	for pred := range idb {
		stratum[pred] = 0
	}
	n := len(idb)
	for iter := 0; iter <= n*n+1; iter++ {
		changed := false
		for _, r := range p.Rules {
			h := r.Head.Pred
			for _, l := range r.Body {
				if !idb[l.Pred] {
					continue
				}
				need := stratum[l.Pred]
				if l.Negated || r.Agg != "" {
					need++ // must be fully computed first
				}
				if stratum[h] < need {
					stratum[h] = need
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		if iter == n*n+1 {
			return nil, fmt.Errorf("datalog: program is not stratifiable (negation or aggregation through recursion)")
		}
	}
	maxS := 0
	for _, s := range stratum {
		if s > n {
			return nil, fmt.Errorf("datalog: program is not stratifiable (negation or aggregation through recursion)")
		}
		if s > maxS {
			maxS = s
		}
	}
	out := make([][]Rule, maxS+1)
	for _, r := range p.Rules {
		s := stratum[r.Head.Pred]
		out[s] = append(out[s], r)
	}
	return out, nil
}

// Eval runs the program to fixpoint over db using semi-naive (differential)
// evaluation per stratum. It mutates db in place, creating IDB relations as
// needed, and returns the number of derived tuples.
func (p *Program) Eval(db *Database) (int, error) {
	strata, err := p.Stratify()
	if err != nil {
		return 0, err
	}
	derived := 0
	for _, rules := range strata {
		n, err := evalStratumSemiNaive(db, rules)
		if err != nil {
			return derived, err
		}
		derived += n
	}
	return derived, nil
}

// EvalNaive runs the program with naive (all-at-once) iteration: every rule
// re-derives from the full relations each round. It exists as the baseline
// for experiment E8 (differential vs all-at-once flows, §8.2).
func (p *Program) EvalNaive(db *Database) (int, error) {
	strata, err := p.Stratify()
	if err != nil {
		return 0, err
	}
	derived := 0
	for _, rules := range strata {
		ensureHeads(db, rules)
		for {
			changed := 0
			for _, r := range rules {
				if r.Agg != "" {
					continue
				}
				for _, t := range deriveRule(db, r, nil, nil) {
					if db.Get(r.Head.Pred).Insert(t) {
						changed++
					}
				}
			}
			derived += changed
			if changed == 0 {
				break
			}
		}
		n, err := evalAggregates(db, rules)
		if err != nil {
			return derived, err
		}
		derived += n
	}
	return derived, nil
}

func ensureHeads(db *Database, rules []Rule) {
	for _, r := range rules {
		db.Ensure(r.Head.Pred, len(r.Head.Args))
	}
}

// evalStratumSemiNaive computes the fixpoint of one stratum. Aggregate
// rules run once after the non-aggregate fixpoint (they depend only on
// lower strata plus this stratum's final relations).
func evalStratumSemiNaive(db *Database, rules []Rule) (int, error) {
	ensureHeads(db, rules)
	derived := 0

	// delta holds tuples derived in the previous round, per predicate.
	delta := map[string]*Relation{}
	// Round 0: full derivation to seed deltas.
	for _, r := range rules {
		if r.Agg != "" {
			continue
		}
		rel := db.Get(r.Head.Pred)
		d := delta[r.Head.Pred]
		if d == nil {
			d = NewRelation(r.Head.Pred, rel.Arity)
			delta[r.Head.Pred] = d
		}
		for _, t := range deriveRule(db, r, nil, nil) {
			if rel.Insert(t) {
				d.Insert(t)
				derived++
			}
		}
	}

	for {
		next := map[string]*Relation{}
		any := false
		for _, r := range rules {
			if r.Agg != "" {
				continue
			}
			rel := db.Get(r.Head.Pred)
			// Differential step: for each positive body literal with a
			// non-empty delta, derive joining that literal against the
			// delta and the rest against full relations.
			for i, l := range r.Body {
				if l.Negated {
					continue
				}
				d, ok := delta[l.Pred]
				if !ok || d.Len() == 0 {
					continue
				}
				for _, t := range deriveRule(db, r, &i, d) {
					if rel.Insert(t) {
						nd := next[r.Head.Pred]
						if nd == nil {
							nd = NewRelation(r.Head.Pred, rel.Arity)
							next[r.Head.Pred] = nd
						}
						nd.Insert(t)
						derived++
						any = true
					}
				}
			}
		}
		if !any {
			break
		}
		delta = next
	}

	n, err := evalAggregates(db, rules)
	return derived + n, err
}

// Derive evaluates one rule's body against the database and returns the
// head tuples, without fixpoint iteration. The Hydrolysis compiler uses it
// for send-rules inside handlers (`send alert(p) :- transitive(pid, p)`),
// which run against an already-fixpointed snapshot.
func Derive(db *Database, r Rule) ([]Tuple, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if r.Agg != "" {
		return nil, fmt.Errorf("datalog: Derive does not support aggregates")
	}
	return deriveRule(db, r, nil, nil), nil
}

// deriveRule enumerates all bindings satisfying the body and returns head
// tuples. If deltaIdx is non-nil, body literal *deltaIdx is evaluated
// against deltaRel instead of the full relation (the semi-naive rewrite).
func deriveRule(db *Database, r Rule, deltaIdx *int, deltaRel *Relation) []Tuple {
	if r.Agg != "" {
		return nil
	}
	var out []Tuple
	var walk func(i int, b binding)
	walk = func(i int, b binding) {
		if i == len(r.Body) {
			for _, f := range r.Filters {
				if !evalFilter(f, b) {
					return
				}
			}
			head := make(Tuple, len(r.Head.Args))
			for j, t := range r.Head.Args {
				v, ok := b.resolve(t)
				if !ok {
					return // unbound head var (Validate prevents this)
				}
				head[j] = v
			}
			out = append(out, head)
			return
		}
		l := r.Body[i]
		rel := db.Get(l.Pred)
		if deltaIdx != nil && i == *deltaIdx {
			rel = deltaRel
		}
		if rel == nil {
			if l.Negated {
				walk(i+1, b) // absent relation: negation trivially holds
			}
			return
		}
		if l.Negated {
			// All args are bound (range restriction): membership test.
			probe := make(Tuple, len(l.Args))
			for j, t := range l.Args {
				v, ok := b.resolve(t)
				if !ok {
					return
				}
				probe[j] = v
			}
			if !rel.Contains(probe) {
				walk(i+1, b)
			}
			return
		}
		// Positive literal: probe with whatever is bound.
		var pos []int
		var vals []any
		for j, t := range l.Args {
			if v, ok := b.resolve(t); ok {
				pos = append(pos, j)
				vals = append(vals, v)
			}
		}
		for _, t := range rel.Lookup(pos, vals) {
			nb := b
			cloned := false
			ok := true
			for j, at := range l.Args {
				if !at.IsVar() {
					if t[j] != at.Const {
						ok = false
						break
					}
					continue
				}
				if v, bound := nb[at.Var]; bound {
					if v != t[j] {
						ok = false
						break
					}
					continue
				}
				if !cloned {
					nb = b.clone()
					cloned = true
				}
				nb[at.Var] = t[j]
			}
			if ok {
				walk(i+1, nb)
			}
		}
	}
	walk(0, binding{})
	return out
}

// evalAggregates runs aggregate rules of a stratum once, grouping by the
// non-aggregate head arguments.
func evalAggregates(db *Database, rules []Rule) (int, error) {
	derived := 0
	for _, r := range rules {
		if r.Agg == "" {
			continue
		}
		rel := db.Ensure(r.Head.Pred, len(r.Head.Args))
		// Build grouping rule: derive (groupVars..., aggVar) rows.
		groupArgs := r.Head.Args[:len(r.Head.Args)-1]
		probe := Rule{
			Head:    Atom{Pred: r.Head.Pred, Args: append(append([]Term{}, groupArgs...), V(r.AggVar))},
			Body:    r.Body,
			Filters: r.Filters,
		}
		rows := deriveRule(db, probe, nil, nil)
		groups := map[string][]Tuple{}
		for _, row := range rows {
			k := encodeKey(row[:len(row)-1])
			groups[k] = append(groups[k], row)
		}
		keys := make([]string, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			rows := groups[k]
			val, err := aggregate(r.Agg, rows)
			if err != nil {
				return derived, fmt.Errorf("rule %s: %w", r.Head.Pred, err)
			}
			head := append(append(Tuple{}, rows[0][:len(rows[0])-1]...), val)
			if rel.Insert(head) {
				derived++
			}
		}
	}
	return derived, nil
}

func aggregate(kind AggKind, rows []Tuple) (any, error) {
	last := func(t Tuple) any { return t[len(t)-1] }
	switch kind {
	case AggCount:
		seen := map[string]bool{}
		for _, t := range rows {
			seen[encodeKey([]any{last(t)})] = true
		}
		return int64(len(seen)), nil
	case AggSum:
		var s float64
		allInt := true
		for _, t := range rows {
			f, ok := toFloat(last(t))
			if !ok {
				return nil, fmt.Errorf("sum over non-numeric value %v", last(t))
			}
			if _, isF := last(t).(float64); isF {
				allInt = false
			}
			s += f
		}
		if allInt {
			return int64(s), nil
		}
		return s, nil
	case AggMax, AggMin:
		if len(rows) == 0 {
			return nil, fmt.Errorf("%s over empty group", kind)
		}
		best := last(rows[0])
		for _, t := range rows[1:] {
			v := last(t)
			if kind == AggMax && compareValues(OpGt, v, best) {
				best = v
			}
			if kind == AggMin && compareValues(OpLt, v, best) {
				best = v
			}
		}
		return best, nil
	}
	return nil, fmt.Errorf("unknown aggregate %q", kind)
}
