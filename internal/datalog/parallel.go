package datalog

import (
	"runtime"
	"sync"
)

// This file is the parallel component scheduler: evaluation components that
// share a topological level of the component DAG (prepared.levels) neither
// read nor write each other's heads, so they can evaluate concurrently —
// both full Eval runs and Incremental.Apply batches fan a level out over a
// bounded worker pool and barrier before the next level.
//
// Safety rests on two disciplines:
//
//   - Ownership: a head predicate belongs to exactly one component
//     (stratification assigns all rules for a head the same stratum, and
//     SCC refinement groups by head), so every relation mutated during a
//     level has a single writing goroutine. Shared input relations are
//     read-only for the level's duration.
//   - Warming: reads are not entirely side-effect free — relations build
//     membership hashes and column indexes lazily on first use. Before a
//     level fans out, every access path its plans can touch is built
//     serially (warmForPlans / warmForCounting), leaving the shared
//     relations genuinely read-only inside the goroutines.

// SetParallelism fixes the program's evaluation parallelism: 1 forces
// fully serial evaluation (the deterministic-debugging mode), n > 1 caps
// the worker pool, and 0 restores the GOMAXPROCS-aware default. The one
// knob governs both axes of parallelism — how many independent evaluation
// components run concurrently per topological level, and how many shards a
// single recursive component's semi-naive rounds (and DRed phases) are
// partitioned into when a level has no width to exploit. The setting is
// stored atomically and snapshotted exactly once at the start of every
// Eval and Incremental.Apply, so it may be changed at any time without a
// data race and without ever splitting one fixpoint across two settings
// (the new value takes effect at the next evaluation). Parallel,
// partitioned and serial runs all produce byte-identical relation contents
// — components own disjoint relations, and partitioned drives stitch
// per-shard emissions back into serial order — so the knob trades only
// wall-clock against goroutine overhead.
func (p *Program) SetParallelism(n int) {
	if n < 0 {
		n = 1
	}
	p.parallel.Store(int32(n))
}

// workers resolves the effective worker count from one atomic read of the
// knob — callers snapshot it once per evaluation and plumb the value down.
func (p *Program) workers() int {
	if n := p.parallel.Load(); n != 0 {
		return int(n)
	}
	if w := runtime.GOMAXPROCS(0); w > 1 {
		return w
	}
	return 1
}

// parallelMinInputTuples is the fan-out cutoff: a level whose components
// read fewer base/input tuples than this in total runs inline — goroutine
// and barrier overhead would dominate the evaluation of tiny relations.
// (Input size is a proxy; recursive components can derive much more than
// they read, but under this bound even their fixpoints are small.)
// Variables, not constants, so the determinism tests can force the
// parallel path on small randomized workloads.
var parallelMinInputTuples = 256

// parallelMinDeltaTuples is Incremental.Apply's fan-out cutoff: levels
// whose active components receive fewer input changes than this run
// inline. Maintenance work is O(delta)-ish, and a typical transducer tick
// carries single-digit changes.
var parallelMinDeltaTuples = 64

// levelInputSize sums the live sizes of the relations the level's plans
// read, as the fan-out heuristic's workload estimate.
func levelInputSize(db *Database, strata [][]*rulePlan, level []int) int {
	total := 0
	seen := map[string]bool{}
	for _, ci := range level {
		for _, pl := range strata[ci] {
			for _, l := range pl.r.Body {
				if seen[l.Pred] {
					continue
				}
				seen[l.Pred] = true
				if rel := db.Get(l.Pred); rel != nil {
					total += rel.Len()
				}
			}
		}
	}
	return total
}

// runWorkers executes fn(0..n-1) on at most `workers` concurrent
// goroutines. fn must confine its writes to per-index state; result
// ordering is the caller's concern (index-addressed slices keep merges
// deterministic).
func runWorkers(n, workers int, fn func(int)) {
	if n == 1 {
		fn(0)
		return
	}
	if workers > n {
		workers = n
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// warmForPlans pre-builds every access path the given plans can exercise:
// membership hashes for negation and existence probes, column indexes for
// every compiled probe set. withSupport additionally warms the DRed
// support plans (standard order only — rederivable never runs their delta
// variants); pass it only for components that can actually take the DRed
// path, since a column index once built is maintained by every future
// Insert/Delete on that relation.
func warmForPlans(db *Database, plans []*rulePlan, withSupport bool) {
	for _, pl := range plans {
		for _, order := range pl.orders {
			warmOrder(db, order)
		}
		if withSupport && pl.support != nil {
			warmOrder(db, pl.support.orders[0])
		}
	}
}

func warmOrder(db *Database, order []litPlan) {
	for i := range order {
		lp := &order[i]
		rel := db.Get(lp.pred)
		if rel == nil {
			continue // stays absent for the level: heads are pre-ensured
		}
		rel.ensureByHash()
		if !lp.negated && !lp.allBound && len(lp.probePos) > 0 {
			rel.index(lp.probePos)
		}
	}
}

// warmForCounting pre-builds the access paths a counting component's
// deltaJoin walks can touch. The walk binds variables in original body
// order with the delta literal's variables pre-bound, so the probe column
// set of every (rule, delta position, literal) combination is structural
// and enumerable without running the join.
func warmForCounting(db *Database, plans []*rulePlan) {
	for _, pl := range plans {
		r := pl.r
		for di := range r.Body {
			bound := map[string]bool{}
			for _, a := range r.Body[di].Args {
				if a.IsVar() {
					bound[a.Var] = true
				}
			}
			for j := range r.Body {
				if j == di {
					continue
				}
				l := r.Body[j]
				var pos []int
				for k, a := range l.Args {
					if !a.IsVar() || bound[a.Var] {
						pos = append(pos, k)
					}
				}
				if rel := db.Get(l.Pred); rel != nil {
					rel.ensureByHash()
					if len(pos) > 0 {
						// Lookup indexes any non-empty probe set, including
						// the all-columns one — warm exactly what it builds.
						rel.index(pos)
					}
				}
				for _, a := range l.Args {
					if a.IsVar() {
						bound[a.Var] = true
					}
				}
			}
		}
	}
}
