package datalog

import (
	"fmt"
)

// This file is the rule-compilation layer (the Hydrolysis access-path story
// of §5.1 applied to the evaluator itself): a one-time Prepare step numbers
// variables into slots so bindings are a flat []any instead of cloned maps,
// caches stratification, splits every literal's columns into bound (probe)
// and free (bind) sets, greedily reorders body literals by boundness, and
// pushes filters to the earliest point they are evaluable. Eval, Derive and
// the aggregate path all execute these plans; EvalNaive keeps the
// interpretive walk in eval.go as the E8 baseline and as a reference
// implementation for differential testing.

// slotTerm is a compiled term: a slot in the flat binding environment, or
// an inline constant when slot < 0.
type slotTerm struct {
	slot int
	c    any
}

func (st slotTerm) value(env []any) any {
	if st.slot >= 0 {
		return env[st.slot]
	}
	return st.c
}

// filterPlan is a comparison compiled onto slots, scheduled at the earliest
// plan position where both sides are bound.
type filterPlan struct {
	op   CmpOp
	l, r slotTerm
}

func (fp filterPlan) eval(env []any) bool {
	return compareValues(fp.op, fp.l.value(env), fp.r.value(env))
}

// litPlan is one body literal compiled against the binding state at its
// scheduled position in the join order.
type litPlan struct {
	pred    string
	origIdx int // index in Rule.Body (delta substitution key)
	negated bool

	// Positive literals: probe columns (bound at this point) and free
	// columns (bound by this literal). checkPos/checkSlots handle a
	// variable repeated within the same literal.
	probePos   []int
	probeArgs  []slotTerm
	freePos    []int
	freeSlots  []int
	checkPos   []int
	checkSlots []int
	// allBound marks a positive literal with every column bound: a pure
	// existence check answered by the relation's membership hash, with no
	// column index needed.
	allBound bool

	// Negated literals probe the full tuple (range restriction guarantees
	// every column is bound here).
	negArgs []slotTerm

	// Filters that become fully bound once this literal binds its slots.
	filters []filterPlan
}

// rulePlan is a fully compiled rule: slot count, join orders, head builder.
type rulePlan struct {
	r      Rule
	nslots int

	// preFilters involve only constants and pre-bound slots; checked once.
	preFilters []filterPlan
	// orders[0] is the standard greedy order. orders[1+i] starts with body
	// literal i — the semi-naive variant that drives the (small) delta
	// first; nil for negated literals.
	orders [][]litPlan
	// head builds the emitted tuple. For aggregate rules the last entry is
	// the aggregation variable's slot and grouping happens in the caller.
	head []slotTerm

	// support is the rule's body compiled with the distinct head variables
	// pre-bound (supportVars, in first-appearance order): binding a concrete
	// head tuple and running it answers "does any derivation of this tuple
	// survive in the current database?" — the DRed re-derivation check.
	// Compiled in Prepare for every non-aggregate rule; nil otherwise.
	// supportBindPos[k] is the head-arg position whose value binds
	// supportVars[k]; supportConsts lists head positions holding constants
	// (a candidate must match them) and supportChecks lists (pos, firstPos)
	// pairs where a head variable repeats (the candidate's columns must
	// agree) — precomputed so binding a candidate is straight array work,
	// with no per-candidate map.
	support        *rulePlan
	supportVars    []string
	supportBindPos []int
	supportConsts  []int
	supportChecks  [][2]int

	// partCol[i] is the partition key for sharding a delta driven through
	// body literal i across workers (intra-component partitioned
	// evaluation): the first column of literal i whose variable a later
	// literal in the delta-first order probes on — the first bound join
	// column, so tuples probing the same index buckets land on the same
	// worker. -1 falls back to hashing the whole delta tuple (no join
	// column: cross products, single-literal bodies).
	partCol []int
}

// validateWith is Rule.Validate extended with caller-provided pre-bound
// variables (handler parameters in compiled send-rules).
func validateWith(r Rule, preBound []string) error {
	bound := map[string]bool{}
	for _, v := range preBound {
		bound[v] = true
	}
	for _, l := range r.Body {
		if l.Negated {
			continue
		}
		for _, t := range l.Args {
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
	}
	for _, l := range r.Body {
		if !l.Negated {
			continue
		}
		for _, t := range l.Args {
			if t.IsVar() && !bound[t.Var] {
				return fmt.Errorf("rule %s: variable ?%s appears only under negation", r.Head.Pred, t.Var)
			}
		}
	}
	headArgs := r.Head.Args
	if r.Agg != "" && len(headArgs) > 0 {
		headArgs = headArgs[:len(headArgs)-1]
	}
	for _, t := range headArgs {
		if t.IsVar() && !bound[t.Var] {
			return fmt.Errorf("rule %s: head variable ?%s not bound in body", r.Head.Pred, t.Var)
		}
	}
	if r.Agg != "" && r.AggVar != "" && !bound[r.AggVar] {
		return fmt.Errorf("rule %s: aggregate variable ?%s not bound in body", r.Head.Pred, r.AggVar)
	}
	for _, f := range r.Filters {
		for _, t := range []Term{f.L, f.R} {
			if t.IsVar() && !bound[t.Var] {
				return fmt.Errorf("rule %s: filter variable ?%s not bound in body", r.Head.Pred, t.Var)
			}
		}
	}
	return nil
}

// compileRule builds the plan for one rule. preBound variables occupy the
// first slots and are filled by the caller before execution. supportMode
// tweaks the join-order tie-break for DRed support plans: on equal
// boundness, probe literals that are not the rule's own head predicate
// first — the head relation is exactly what the over-deletion phase is
// churning, and enumerating it per candidate is what made re-derivation
// degrade toward O(D²) on long chains (the stable input literal usually
// answers in O(1)).
func compileRule(r Rule, preBound []string, supportMode bool) (*rulePlan, error) {
	if err := validateWith(r, preBound); err != nil {
		return nil, err
	}
	// Slot numbering: pre-bound vars first, then first appearance in body
	// text order, then head/filters (defensive; validation implies bound).
	slotOf := map[string]int{}
	assign := func(name string) int {
		if s, ok := slotOf[name]; ok {
			return s
		}
		s := len(slotOf)
		slotOf[name] = s
		return s
	}
	for _, v := range preBound {
		assign(v)
	}
	for _, l := range r.Body {
		for _, t := range l.Args {
			if t.IsVar() {
				assign(t.Var)
			}
		}
	}
	for _, t := range r.Head.Args {
		if t.IsVar() {
			assign(t.Var)
		}
	}
	for _, f := range r.Filters {
		for _, t := range []Term{f.L, f.R} {
			if t.IsVar() {
				assign(t.Var)
			}
		}
	}
	if r.Agg != "" && r.AggVar != "" {
		assign(r.AggVar)
	}

	p := &rulePlan{r: r, nslots: len(slotOf)}

	term := func(t Term) slotTerm {
		if t.IsVar() {
			return slotTerm{slot: slotOf[t.Var]}
		}
		return slotTerm{slot: -1, c: t.Const}
	}

	// Filters whose variables are all pre-bound run before any literal.
	preBoundSet := map[string]bool{}
	for _, v := range preBound {
		preBoundSet[v] = true
	}
	filterVarsBound := func(f Filter, bound map[string]bool) bool {
		for _, t := range []Term{f.L, f.R} {
			if t.IsVar() && !bound[t.Var] {
				return false
			}
		}
		return true
	}
	filterUsed := make([]bool, len(r.Filters))
	for fi, f := range r.Filters {
		if filterVarsBound(f, preBoundSet) {
			p.preFilters = append(p.preFilters, filterPlan{op: f.Op, l: term(f.L), r: term(f.R)})
			filterUsed[fi] = true
		}
	}

	// buildOrder compiles one join order, optionally forcing body literal
	// `first` (the delta literal) to the front.
	buildOrder := func(first int) []litPlan {
		bound := map[string]bool{}
		for v := range preBoundSet {
			bound[v] = true
		}
		used := make([]bool, len(r.Body))
		fused := append([]bool(nil), filterUsed...)
		var order []litPlan

		schedule := func(bi int) {
			l := r.Body[bi]
			lp := litPlan{pred: l.Pred, origIdx: bi, negated: l.Negated}
			if l.Negated {
				lp.negArgs = make([]slotTerm, len(l.Args))
				for j, t := range l.Args {
					lp.negArgs[j] = term(t)
				}
			} else {
				seenHere := map[string]bool{}
				for j, t := range l.Args {
					switch {
					case !t.IsVar():
						lp.probePos = append(lp.probePos, j)
						lp.probeArgs = append(lp.probeArgs, term(t))
					case bound[t.Var]:
						lp.probePos = append(lp.probePos, j)
						lp.probeArgs = append(lp.probeArgs, term(t))
					case seenHere[t.Var]:
						lp.checkPos = append(lp.checkPos, j)
						lp.checkSlots = append(lp.checkSlots, slotOf[t.Var])
					default:
						lp.freePos = append(lp.freePos, j)
						lp.freeSlots = append(lp.freeSlots, slotOf[t.Var])
						seenHere[t.Var] = true
					}
				}
				lp.allBound = len(lp.freePos) == 0 && len(lp.checkPos) == 0 && len(lp.probePos) == len(l.Args)
				for _, t := range l.Args {
					if t.IsVar() {
						bound[t.Var] = true
					}
				}
			}
			// Attach every not-yet-scheduled filter that just became
			// evaluable: filtering as early as possible prunes the walk.
			for fi, f := range r.Filters {
				if !fused[fi] && filterVarsBound(f, bound) {
					lp.filters = append(lp.filters, filterPlan{op: f.Op, l: term(f.L), r: term(f.R)})
					fused[fi] = true
				}
			}
			used[bi] = true
			order = append(order, lp)
		}

		if first >= 0 {
			schedule(first)
		}
		for len(order) < len(r.Body) {
			best, bestScore := -1, -1
			for bi, l := range r.Body {
				if used[bi] {
					continue
				}
				allBound := true
				boundCount := 0
				for _, t := range l.Args {
					if !t.IsVar() || bound[t.Var] {
						boundCount++
					} else {
						allBound = false
					}
				}
				var score int
				if l.Negated {
					if !allBound {
						continue // not schedulable yet
					}
					// Negation is a pure filter: run it as soon as legal.
					score = 1 << 20
				} else {
					// Greedy boundness: more probe columns ≈ more selective.
					score = boundCount*16 - len(l.Args)
					if allBound {
						score += 8 // existence check, maximally selective
					}
					if supportMode && l.Pred == r.Head.Pred {
						score -= 4 // break ties away from the churning head
					}
				}
				if best < 0 || score > bestScore {
					best, bestScore = bi, score
				}
			}
			if best < 0 {
				// Only possible for unschedulable negation, which
				// validateWith rules out.
				panic(fmt.Sprintf("datalog: no schedulable literal in %s", r.Head.Pred))
			}
			schedule(best)
		}
		return order
	}

	p.orders = make([][]litPlan, 1+len(r.Body))
	p.orders[0] = buildOrder(-1)
	for bi, l := range r.Body {
		if !l.Negated {
			p.orders[1+bi] = buildOrder(bi)
		}
	}

	// Partition keys: for each delta-first order, find the first column the
	// delta literal binds that a later literal probes on.
	p.partCol = make([]int, len(r.Body))
	for bi := range r.Body {
		p.partCol[bi] = -1
		order := p.orders[1+bi]
		if order == nil {
			continue
		}
		first := &order[0]
		colOf := map[int]int{} // slot → delta-literal column binding it
		for k, s := range first.freeSlots {
			colOf[s] = first.freePos[k]
		}
		for li := 1; li < len(order) && p.partCol[bi] < 0; li++ {
			lp := &order[li]
			probes := lp.probeArgs
			if lp.negated {
				probes = lp.negArgs
			}
			for _, st := range probes {
				if st.slot < 0 {
					continue
				}
				if c, ok := colOf[st.slot]; ok {
					p.partCol[bi] = c
					break
				}
			}
		}
	}

	headArgs := r.Head.Args
	if r.Agg != "" {
		// Aggregate rules emit (groupVars..., aggVar) rows; grouping and
		// folding happen in the caller over these rows.
		headArgs = append(append([]Term{}, headArgs[:len(headArgs)-1]...), V(r.AggVar))
	}
	p.head = make([]slotTerm, len(headArgs))
	for i, t := range headArgs {
		p.head[i] = term(t)
	}
	return p, nil
}

// run executes the plan: deltaIdx < 0 selects the standard order; otherwise
// body literal deltaIdx reads from delta instead of its full relation and
// the delta-first order is used. emit receives each derived head row.
func (p *rulePlan) run(db *Database, deltaIdx int, delta *Relation, preset []any, emit func(Tuple)) {
	p.runAug(db, deltaIdx, delta, nil, preset, emit)
}

// runAug is run with an optional augmentation overlay: every positive
// non-delta literal on predicate P also matches the overlay's tuples for P,
// as if they were still present in the relation. The DRed over-deletion
// phase reads the pre-batch view this way — the database plus the batch's
// removed tuples — without mutating relations shared with concurrently
// evaluating components. Augmentation is defined for positive literals only
// (DRed runs on monotone components); negated probes ignore it.
func (p *rulePlan) runAug(db *Database, deltaIdx int, delta *Relation, aug *augOverlay, preset []any, emit func(Tuple)) {
	p.runAugUntil(db, deltaIdx, delta, aug, preset, func(t Tuple) bool {
		emit(t)
		return true
	})
}

// runAugUntil is runAug with early termination: emit returning false
// abandons the walk immediately. Existence queries (the DRed re-derivation
// check) stop at the first surviving derivation instead of enumerating
// them all.
func (p *rulePlan) runAugUntil(db *Database, deltaIdx int, delta *Relation, aug *augOverlay, preset []any, emit func(Tuple) bool) {
	order := p.orders[0]
	if deltaIdx >= 0 {
		if o := p.orders[1+deltaIdx]; o != nil {
			order = o
		}
	}
	e := p.newExec(db, order, deltaIdx, delta, aug, preset, emit)
	if !e.preFiltersPass() {
		return
	}
	e.walk(0)
}

// runSegmented drives the delta-first order for body literal deltaIdx over
// an explicit slice of delta tuples, tagging every emission with the index
// of the driving tuple. Segment indexes are non-decreasing and one
// segment's emissions are exactly what a serial whole-delta run would emit
// while processing that tuple — the invariant the partitioned scheduler
// relies on to stitch per-shard outputs back into serial emission order.
// deltaIdx must name a non-negated body literal (those have a delta-first
// order); env and scratch are allocated once and reused across tuples.
func (p *rulePlan) runSegmented(db *Database, deltaIdx int, tuples []Tuple, aug *augOverlay, emit func(seg int, t Tuple)) {
	order := p.orders[1+deltaIdx]
	cur := 0
	e := p.newExec(db, order, deltaIdx, nil, aug, nil, func(t Tuple) bool {
		emit(cur, t)
		return true
	})
	if !e.preFiltersPass() {
		return
	}
	first := &order[0]
	vals := e.scratch[0]
	for k, st := range first.probeArgs {
		vals[k] = st.value(e.env) // constants only: no slot is bound yet
	}
	for j, t := range tuples {
		cur = j
		// Inline litPlan matching for the delta literal: constant columns
		// must agree, free columns bind slots, repeated variables check,
		// then the literal's filters — the same acceptance test the serial
		// path applies via index lookup + step.
		if !projEqual(t, first.probePos, vals) {
			continue
		}
		for k, pos := range first.freePos {
			e.env[first.freeSlots[k]] = t[pos]
		}
		ok := true
		for k, pos := range first.checkPos {
			if t[pos] != e.env[first.checkSlots[k]] {
				ok = false
				break
			}
		}
		for _, f := range first.filters {
			if !ok || !f.eval(e.env) {
				ok = false
				break
			}
		}
		if ok {
			e.walk(1)
		}
	}
}

// planExec is one execution of a compiled join order: the flat binding
// environment, per-position probe scratch, and the recursive join walk.
// It is built once per run — or once per shard in partitioned evaluation,
// where it is reused across every delta tuple the shard drives.
type planExec struct {
	p        *rulePlan
	db       *Database
	order    []litPlan
	deltaIdx int
	delta    *Relation
	aug      *augOverlay
	env      []any
	scratch  [][]any
	stopped  bool
	emit     func(Tuple) bool
}

func (p *rulePlan) newExec(db *Database, order []litPlan, deltaIdx int, delta *Relation, aug *augOverlay, preset []any, emit func(Tuple) bool) *planExec {
	e := &planExec{p: p, db: db, order: order, deltaIdx: deltaIdx, delta: delta, aug: aug, emit: emit}
	e.env = make([]any, p.nslots)
	copy(e.env, preset)
	// Per-position scratch for probe values and negation probes, allocated
	// once per execution.
	e.scratch = make([][]any, len(order))
	for i := range order {
		lp := &order[i]
		if lp.negated {
			e.scratch[i] = make([]any, len(lp.negArgs))
		} else {
			e.scratch[i] = make([]any, len(lp.probeArgs))
		}
	}
	return e
}

// rerun re-arms a finished executor for another run with fresh preset
// values — the DRed support checker amortizes one executor across every
// candidate of a phase-2 pass this way. Only the preset prefix and the
// stop flag need resetting: a slot beyond the preset is always written by
// the literal that binds it before any deeper position reads it, so stale
// values from the previous run are never observed.
func (e *planExec) rerun(preset []any) {
	copy(e.env, preset)
	e.stopped = false
}

func (e *planExec) preFiltersPass() bool {
	for _, f := range e.p.preFilters {
		if !f.eval(e.env) {
			return false
		}
	}
	return true
}

// walk recurses through the join order from position i, emitting head
// tuples at the leaves.
func (e *planExec) walk(i int) {
	if e.stopped {
		return
	}
	if i == len(e.order) {
		head := make(Tuple, len(e.p.head))
		for j, st := range e.p.head {
			head[j] = st.value(e.env)
		}
		if !e.emit(head) {
			e.stopped = true
		}
		return
	}
	lp := &e.order[i]
	rel := e.db.Get(lp.pred)
	var augRel *augRel
	if e.aug != nil && !lp.negated {
		augRel = e.aug.rels[lp.pred]
	}
	if e.deltaIdx >= 0 && lp.origIdx == e.deltaIdx {
		rel = e.delta
		augRel = nil // the delta position reads the delta verbatim
	}
	if rel == nil && augRel == nil {
		if lp.negated {
			e.walk(i + 1) // absent relation: negation trivially holds
		}
		return
	}
	if lp.negated {
		probe := e.scratch[i]
		for j, st := range lp.negArgs {
			probe[j] = st.value(e.env)
		}
		if !rel.Contains(Tuple(probe)) {
			e.walk(i + 1)
		}
		return
	}
	step := func(t Tuple) bool {
		for k, pos := range lp.freePos {
			e.env[lp.freeSlots[k]] = t[pos]
		}
		for k, pos := range lp.checkPos {
			if t[pos] != e.env[lp.checkSlots[k]] {
				return true
			}
		}
		for _, f := range lp.filters {
			if !f.eval(e.env) {
				return true
			}
		}
		e.walk(i + 1)
		return !e.stopped
	}
	if len(lp.probePos) == 0 {
		if rel != nil {
			rel.scan(step)
		}
		if augRel != nil {
			for _, t := range augRel.rows {
				if e.stopped || !step(t) {
					return
				}
			}
		}
		return
	}
	vals := e.scratch[i]
	for k, st := range lp.probeArgs {
		vals[k] = st.value(e.env)
	}
	if lp.allBound {
		// Existence check: probePos covers every column in order, so
		// vals is the full tuple; the membership hash answers directly.
		present := rel != nil && rel.Contains(Tuple(vals))
		if !present && augRel != nil {
			present = augRel.matches(lp.probePos, vals, func(Tuple) bool { return false })
		}
		if present {
			for _, f := range lp.filters {
				if !f.eval(e.env) {
					return
				}
			}
			e.walk(i + 1)
		}
		return
	}
	if rel != nil {
		for _, s := range rel.lookupSlots(lp.probePos, vals) {
			t := rel.slots[s]
			if !projEqual(t, lp.probePos, vals) {
				continue // projection-hash collision
			}
			if !step(t) {
				return
			}
		}
	}
	if augRel != nil {
		augRel.matches(lp.probePos, vals, func(t Tuple) bool {
			return !e.stopped && step(t)
		})
	}
}

// prepared is the cached compilation of a whole program.
type prepared struct {
	// strata[i] holds the plans of evaluation component i, preserving rule
	// order. Components refine the classic strata: each stratum is split
	// into the strongly-connected components of its head-dependency graph,
	// topologically ordered, so independent rule groups evaluate (and are
	// incrementally maintained) separately.
	strata [][]*rulePlan
	// levels groups component indexes by topological depth in the component
	// DAG: a component's level is one past the deepest component whose head
	// it reads (positively, negatively, or under aggregation). Components
	// sharing a level are pairwise independent — they neither read nor write
	// each other's heads — which is what licenses evaluating them
	// concurrently with a barrier between levels. Indexes within a level
	// stay in component (topological) order for deterministic serial runs.
	levels [][]int
	// maxWidth is the widest level: 1 means the DAG is a chain and parallel
	// scheduling can never help.
	maxWidth int
}

// componentLevels builds the level partition of the component DAG. Component
// i depends on component j < i when any rule body in i mentions a head of j;
// strata and Tarjan ordering guarantee dependencies only point backwards.
func componentLevels(strata [][]*rulePlan) ([][]int, int) {
	heads := make([]map[string]bool, len(strata))
	for i, plans := range strata {
		heads[i] = map[string]bool{}
		for _, pl := range plans {
			heads[i][pl.r.Head.Pred] = true
		}
	}
	level := make([]int, len(strata))
	maxLevel := 0
	for i, plans := range strata {
		lv := 0
		for j := 0; j < i; j++ {
			if level[j] < lv {
				continue // cannot raise i's level even if it depends on j
			}
			depends := false
			for _, pl := range plans {
				for _, l := range pl.r.Body {
					if heads[j][l.Pred] {
						depends = true
						break
					}
				}
				if depends {
					break
				}
			}
			if depends {
				lv = level[j] + 1
			}
		}
		level[i] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	levels := make([][]int, maxLevel+1)
	for i, lv := range level {
		levels[lv] = append(levels[lv], i)
	}
	maxWidth := 1
	for _, l := range levels {
		if len(l) > maxWidth {
			maxWidth = len(l)
		}
	}
	return levels, maxWidth
}

// refineComponents splits one stratum's rules into the strongly-connected
// components of the head-dependency graph restricted to this stratum's
// heads, in topological (dependencies-first) order. Rule order inside a
// component follows the original rule order, and the whole refinement is
// deterministic, keeping evaluation reproducible.
func refineComponents(rules []Rule) [][]Rule {
	heads := map[string]bool{}
	var preds []string
	for _, r := range rules {
		if !heads[r.Head.Pred] {
			heads[r.Head.Pred] = true
			preds = append(preds, r.Head.Pred)
		}
	}
	// deps[H] lists the same-stratum preds H's rules read (H depends on
	// them), in first-appearance order for determinism.
	deps := map[string][]string{}
	for _, r := range rules {
		h := r.Head.Pred
		for _, l := range r.Body {
			if !heads[l.Pred] {
				continue
			}
			dup := false
			for _, d := range deps[h] {
				if d == l.Pred {
					dup = true
					break
				}
			}
			if !dup {
				deps[h] = append(deps[h], l.Pred)
			}
		}
	}
	// Tarjan over the dependency edges H→B pops each SCC only after every
	// SCC it depends on has been popped: emission order is topological.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var order [][]string
	next := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range deps[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			order = append(order, comp)
		}
	}
	for _, v := range preds {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	var out [][]Rule
	for _, comp := range order {
		inComp := map[string]bool{}
		for _, pred := range comp {
			inComp[pred] = true
		}
		var group []Rule
		for _, r := range rules {
			if inComp[r.Head.Pred] {
				group = append(group, r)
			}
		}
		out = append(out, group)
	}
	return out
}

// Prepare compiles the program once: stratification, component refinement,
// slot numbering, join orders, filter placement. It is idempotent and safe
// for concurrent use; Eval and EvalNaive call it implicitly. Mutating Rules
// after the first Prepare (or after NewProgram) is not supported.
func (p *Program) Prepare() error {
	p.prepOnce.Do(func() {
		strata, err := p.Stratify()
		if err != nil {
			p.prepErr = err
			return
		}
		pr := &prepared{}
		for _, stratum := range strata {
			for _, rules := range refineComponents(stratum) {
				var plans []*rulePlan
				for _, r := range rules {
					pl, err := compileRule(r, nil, false)
					if err != nil {
						p.prepErr = err
						return
					}
					if r.Agg == "" {
						// Support plan for DRed re-derivation: the body with
						// the distinct head variables pre-bound, plus the
						// precomputed candidate-binding metadata.
						var headVars []string
						firstPos := map[string]int{}
						var consts []int
						var checks [][2]int
						for j, t := range r.Head.Args {
							if !t.IsVar() {
								consts = append(consts, j)
								continue
							}
							if fp, ok := firstPos[t.Var]; ok {
								checks = append(checks, [2]int{j, fp})
								continue
							}
							firstPos[t.Var] = j
							headVars = append(headVars, t.Var)
						}
						if sp, serr := compileRule(r, headVars, true); serr == nil {
							pl.support = sp
							pl.supportVars = headVars
							pl.supportBindPos = make([]int, len(headVars))
							for k, v := range headVars {
								pl.supportBindPos[k] = firstPos[v]
							}
							pl.supportConsts = consts
							pl.supportChecks = checks
						}
					}
					plans = append(plans, pl)
				}
				pr.strata = append(pr.strata, plans)
			}
		}
		pr.levels, pr.maxWidth = componentLevels(pr.strata)
		p.prep = pr
	})
	return p.prepErr
}

// PreparedRule is a single rule compiled once for repeated Derive calls,
// optionally with variables that the caller binds per call (the Hydrolysis
// compiler pre-binds handler parameters this way).
type PreparedRule struct {
	plan      *rulePlan
	boundVars []string
}

// PrepareRule compiles r for repeated derivation. boundVars names variables
// the caller will supply at Derive time; they count as bound for range
// restriction.
func PrepareRule(r Rule, boundVars ...string) (*PreparedRule, error) {
	if r.Agg != "" {
		return nil, fmt.Errorf("datalog: PrepareRule does not support aggregates")
	}
	plan, err := compileRule(r, boundVars, false)
	if err != nil {
		return nil, err
	}
	return &PreparedRule{plan: plan, boundVars: boundVars}, nil
}

// Derive evaluates the compiled rule against db. bound supplies values for
// the declared boundVars (missing entries are an error).
func (pr *PreparedRule) Derive(db *Database, bound map[string]any) ([]Tuple, error) {
	preset := make([]any, len(pr.boundVars))
	for i, v := range pr.boundVars {
		val, ok := bound[v]
		if !ok {
			return nil, fmt.Errorf("datalog: prepared rule %s: no binding for ?%s", pr.plan.r.Head.Pred, v)
		}
		preset[i] = val
	}
	var out []Tuple
	pr.plan.run(db, -1, nil, preset, func(t Tuple) { out = append(out, t) })
	return out, nil
}
