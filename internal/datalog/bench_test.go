package datalog

import (
	"fmt"
	"testing"
)

// Micro-benchmarks for the storage and plan layers. The end-to-end numbers
// live in the repository root (BenchmarkDatalogTC et al.); these isolate
// the pieces this package optimizes: hash-native insert/probe, incremental
// index maintenance under deletes, compiled plans vs interpretive walks.

func tcProgram(b *testing.B) *Program {
	b.Helper()
	p, err := NewProgram(
		Rule{
			Head: Atom{Pred: "path", Args: []Term{V("x"), V("y")}},
			Body: []Literal{{Atom: Atom{Pred: "edge", Args: []Term{V("x"), V("y")}}}},
		},
		Rule{
			Head: Atom{Pred: "path", Args: []Term{V("x"), V("z")}},
			Body: []Literal{
				{Atom: Atom{Pred: "path", Args: []Term{V("x"), V("y")}}},
				{Atom: Atom{Pred: "edge", Args: []Term{V("y"), V("z")}}},
			},
		},
	)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func chainDB(n int) *Database {
	db := NewDatabase()
	e := db.Ensure("edge", 2)
	for i := 0; i < n; i++ {
		e.Insert(Tuple{int64(i), int64(i + 1)})
	}
	return db
}

func BenchmarkRelationInsert(b *testing.B) {
	b.ReportAllocs()
	rel := NewRelation("t", 3)
	for i := 0; i < b.N; i++ {
		rel.Insert(Tuple{int64(i), "payload", int64(i % 64)})
	}
}

func BenchmarkRelationContains(b *testing.B) {
	rel := NewRelation("t", 2)
	for i := 0; i < 1024; i++ {
		rel.Insert(Tuple{int64(i), "v"})
	}
	probe := Tuple{int64(512), "v"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !rel.Contains(probe) {
			b.Fatal("missing")
		}
	}
}

func BenchmarkRelationLookupIndexed(b *testing.B) {
	rel := NewRelation("t", 2)
	for i := 0; i < 4096; i++ {
		rel.Insert(Tuple{int64(i % 64), int64(i)})
	}
	pos := []int{0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := rel.Lookup(pos, []any{int64(i % 64)}); len(got) != 64 {
			b.Fatalf("lookup = %d rows", len(got))
		}
	}
}

// BenchmarkRelationUpsert is the transducer's applyInsert pattern: indexed
// lookup, delete, re-insert. Under the old storage every delete rebuilt all
// indexes from scratch.
func BenchmarkRelationUpsert(b *testing.B) {
	rel := NewRelation("people", 3)
	for i := 0; i < 512; i++ {
		rel.Insert(Tuple{int64(i), "us", false})
	}
	pos := []int{0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := int64(i % 512)
		rows := rel.Lookup(pos, []any{key})
		for _, row := range rows {
			rel.Delete(row)
			updated := Tuple{row[0], row[1], i%2 == 0}
			rel.Insert(updated)
		}
	}
}

func BenchmarkEvalTCChain(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p := tcProgram(b)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				db := chainDB(n)
				if _, err := p.Eval(db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEvalNaiveTCChain(b *testing.B) {
	p := tcProgram(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db := chainDB(64)
		if _, err := p.EvalNaive(db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregateGrouping(b *testing.B) {
	p, err := NewProgram(Rule{
		Head:   Atom{Pred: "fanout", Args: []Term{V("x"), V("y")}},
		Body:   []Literal{{Atom: Atom{Pred: "edge", Args: []Term{V("x"), V("y")}}}},
		Agg:    AggCount,
		AggVar: "y",
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db := NewDatabase()
		e := db.Ensure("edge", 2)
		for j := 0; j < 1024; j++ {
			e.Insert(Tuple{int64(j % 32), int64(j)})
		}
		if _, err := p.Eval(db); err != nil {
			b.Fatal(err)
		}
	}
}

// multiChainDB builds chains disjoint 64-node chains: a large database
// whose transitive closure has chains*64*65/2 path tuples.
func multiChainDB(chains int) *Database {
	db := NewDatabase()
	e := db.Ensure("edge", 2)
	for c := 0; c < chains; c++ {
		base := int64(c * 1000)
		for i := int64(0); i < 64; i++ {
			e.Insert(Tuple{base + i, base + i + 1})
		}
	}
	return db
}

// BenchmarkFullEvalSmallDeltaTC is the per-tick cost of the pre-PR
// strategy on a small-delta/large-DB workload: every tick clones the
// database (the transducer snapshot) and re-derives the full fixpoint,
// regardless of how little changed.
func BenchmarkFullEvalSmallDeltaTC(b *testing.B) {
	p := tcProgram(b)
	db := multiChainDB(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := db.Clone()
		if _, err := p.Eval(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalSmallDeltaTC is the same workload under cross-tick
// maintenance: each tick one new edge arrives and only its consequences
// are derived. The ratio against BenchmarkFullEvalSmallDeltaTC is the
// headline O(delta)-vs-O(database) number.
func BenchmarkIncrementalSmallDeltaTC(b *testing.B) {
	p := tcProgram(b)
	inc, err := NewIncremental(p, multiChainDB(8))
	if err != nil {
		b.Fatal(err)
	}
	edge := inc.DB().Get("edge")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := int64(1_000_000+2*i), int64(1_000_001+2*i)
		tup := Tuple{u, v}
		edge.Insert(tup)
		d := NewDelta()
		d.Insert("edge", tup)
		if _, err := inc.Apply(d); err != nil {
			b.Fatal(err)
		}
	}
}

// tickDeleteHeavy is the delete-heavy tick workload on a large graph: each
// tick retracts one mid-chain edge of the prebuilt closure and the next
// re-inserts it — steady state, all cost in deletion maintenance. force
// selects the PR 2 recompute-and-diff fallback; the DRed/Recompute pair is
// the acceptance ratio for delete-and-rederive (≥10×).
func tickDeleteHeavy(b *testing.B, force bool) {
	p := tcProgram(b)
	inc, err := NewIncremental(p, multiChainDB(16))
	if err != nil {
		b.Fatal(err)
	}
	inc.forceRecompute = force
	edge := inc.DB().Get("edge")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chain, k := int64((i*7)%16), int64(11+(i*13)%40)
		tup := Tuple{chain*1000 + k, chain*1000 + k + 1}
		edge.Delete(tup)
		d := NewDelta()
		d.Delete("edge", tup)
		if _, err := inc.Apply(d); err != nil {
			b.Fatal(err)
		}
		edge.Insert(tup)
		d = NewDelta()
		d.Insert("edge", tup)
		if _, err := inc.Apply(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTickDeleteHeavyDRed(b *testing.B)      { tickDeleteHeavy(b, false) }
func BenchmarkTickDeleteHeavyRecompute(b *testing.B) { tickDeleteHeavy(b, true) }

// tickDeleteCascade is the large-cascade DRed workload: one chain of n
// nodes, whose closure holds n(n+1)/2 path tuples. Each tick retracts the
// mid-chain edge, over-deleting the ~n²/4 paths that cross it (none
// re-derivable), and the next tick restores it, re-deriving them — one
// deletion cascade and one insertion cascade of D ≈ n²/4 tuples per
// iteration. Cost should be near-linear in D. The pre-PR path was
// superlinear through two terms this sizing makes visible (Large is 36×
// Small's cascade but was far more than 36× its time): join probes
// scanned the augmentation overlay linearly, and — dominant on long
// chains — every phase-2 support query enumerated the churning head
// relation (O(n) live path(x,·) tuples per candidate, ~n³/16 total)
// instead of probing the stable input literal in O(1).
func tickDeleteCascade(b *testing.B, n int) {
	p := tcProgram(b)
	inc, err := NewIncremental(p, chainDB(n))
	if err != nil {
		b.Fatal(err)
	}
	edge := inc.DB().Get("edge")
	mid := Tuple{int64(n / 2), int64(n/2 + 1)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		edge.Delete(mid)
		d := NewDelta()
		d.Delete("edge", mid)
		if _, err := inc.Apply(d); err != nil {
			b.Fatal(err)
		}
		edge.Insert(mid)
		d = NewDelta()
		d.Insert("edge", mid)
		if _, err := inc.Apply(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTickDeleteCascadeSmall(b *testing.B) { tickDeleteCascade(b, 64) }
func BenchmarkTickDeleteCascadeLarge(b *testing.B) { tickDeleteCascade(b, 384) }

// evalParallel evaluates a program of 8 independent transitive closures
// (disjoint edge relations) — a component DAG with a wide level — under
// the given scheduler parallelism. Serial vs Auto is the component
// scheduler's speedup on embarrassingly parallel programs.
func evalParallel(b *testing.B, workers int) {
	const comps = 8
	var rules []Rule
	for c := 0; c < comps; c++ {
		e, pth := fmt.Sprintf("edge%d", c), fmt.Sprintf("path%d", c)
		rules = append(rules,
			Rule{
				Head: Atom{Pred: pth, Args: []Term{V("x"), V("y")}},
				Body: []Literal{{Atom: Atom{Pred: e, Args: []Term{V("x"), V("y")}}}},
			},
			Rule{
				Head: Atom{Pred: pth, Args: []Term{V("x"), V("z")}},
				Body: []Literal{
					{Atom: Atom{Pred: pth, Args: []Term{V("x"), V("y")}}},
					{Atom: Atom{Pred: e, Args: []Term{V("y"), V("z")}}},
				},
			},
		)
	}
	p, err := NewProgram(rules...)
	if err != nil {
		b.Fatal(err)
	}
	p.SetParallelism(workers)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := NewDatabase()
		for c := 0; c < comps; c++ {
			e := db.Ensure(fmt.Sprintf("edge%d", c), 2)
			for j := int64(0); j < 64; j++ {
				e.Insert(Tuple{j, j + 1})
			}
		}
		if _, err := p.Eval(db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalParallelSerial(b *testing.B) { evalParallel(b, 1) }

// Auto follows GOMAXPROCS (on a single-CPU host it degrades to the serial
// path); Workers8 forces the scheduled path so its overhead stays visible
// in BENCH_1.json even where no parallel speedup is available.
func BenchmarkEvalParallelAuto(b *testing.B)     { evalParallel(b, 0) }
func BenchmarkEvalParallelWorkers8(b *testing.B) { evalParallel(b, 8) }

// BenchmarkDeriveAdHoc vs BenchmarkDerivePrepared: the cost of per-call
// rule compilation against the pre-compiled path handlers use.
func BenchmarkDeriveAdHoc(b *testing.B) {
	db := chainDB(64)
	p := tcProgram(b)
	if _, err := p.Eval(db); err != nil {
		b.Fatal(err)
	}
	rule := Rule{
		Head: Atom{Pred: "__send", Args: []Term{V("y")}},
		Body: []Literal{{Atom: Atom{Pred: "path", Args: []Term{C(int64(0)), V("y")}}}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Derive(db, rule); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDerivePrepared(b *testing.B) {
	db := chainDB(64)
	p := tcProgram(b)
	if _, err := p.Eval(db); err != nil {
		b.Fatal(err)
	}
	pr, err := PrepareRule(Rule{
		Head: Atom{Pred: "__send", Args: []Term{V("y")}},
		Body: []Literal{{Atom: Atom{Pred: "path", Args: []Term{V("pid"), V("y")}}}},
	}, "pid")
	if err != nil {
		b.Fatal(err)
	}
	bound := map[string]any{"pid": int64(0)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pr.Derive(db, bound); err != nil {
			b.Fatal(err)
		}
	}
}
